// Symmetry-reduction benchmark: the k-client scaling curves of the
// "millions of interchangeable users" lever. For each symmetric scenario
// family (pyswitch ping fan-in, load balancer, traffic engineering) and
// client count k = 2..max, runs the exhaustive search with symmetry off
// and on and records unique states, transitions and wall time — with the
// soundness contract enforced at runtime: whenever both runs exhaust,
// they must report the identical canonicalized violation set and the
// symmetric run must visit no more unique states, or the run aborts
// loudly.
//
// Symmetry-off explodes factorially, so off runs are capped by a
// transition budget: the first k whose off run blows the budget is
// recorded as censored ("off_exhausted": false) and larger k in that
// family run symmetry-on only. The canonical space still grows (the k!
// cut removes role permutations, not interleavings), so on runs carry
// their own larger budget: the first censored on run ends the family's
// curve. Wall times are the minimum over `reps` runs.
//
// Usage: bench_sym [--json out.json] [reps] [max_clients] [off_budget]
//                  [on_budget]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/sym_reduce.h"
#include "util/resource.h"

using namespace nicemc;

namespace {

mc::CheckerResult run_once(const std::function<apps::Scenario(int)>& make,
                           int k, bool symmetry, std::uint64_t budget,
                           int reps) {
  mc::CheckerResult best;
  for (int r = 0; r < reps; ++r) {
    apps::Scenario s = make(k);
    mc::CheckerOptions opt;
    opt.stop_at_first_violation = false;
    opt.symmetry = symmetry;
    opt.max_transitions = budget;
    mc::Checker checker(s.config, opt, s.properties);
    mc::CheckerResult cr = checker.run();
    if (r == 0 || cr.seconds < best.seconds) best = std::move(cr);
  }
  return best;
}

std::set<std::string> canonical_violations(const mc::CheckerResult& r,
                                           const mc::SymContext& sym) {
  std::vector<mc::Violation> vs;
  vs.reserve(r.violations.size());
  for (const mc::ViolationRecord& rec : r.violations) {
    vs.push_back(mc::Violation{
        rec.violation.property,
        sym.canonicalize_violation(rec.violation.message)});
  }
  const std::vector<std::string> keys = mc::violation_keys(vs);
  return {keys.begin(), keys.end()};
}

struct Point {
  int clients{0};
  mc::CheckerResult on;
  mc::CheckerResult off;
  bool off_ran{false};
};

struct Family {
  std::string name;
  std::function<apps::Scenario(int)> make;
  std::vector<Point> points;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      pos.push_back(argv[i]);
    }
  }
  int reps = pos.size() > 0 ? std::atoi(pos[0]) : 2;
  if (reps < 1) reps = 1;
  int max_clients = pos.size() > 1 ? std::atoi(pos[1]) : 10;
  if (max_clients < 2) max_clients = 2;
  const std::uint64_t off_budget =
      pos.size() > 2 ? std::strtoull(pos[2], nullptr, 10) : 2000000ULL;
  const std::uint64_t on_budget =
      pos.size() > 3 ? std::strtoull(pos[3], nullptr, 10) : 5000000ULL;

  std::vector<Family> families;
  families.push_back(
      {"sym-ping", [](int k) { return apps::sym_ping_scenario(k); }, {}});
  families.push_back(
      {"lb-sym", [](int k) { return apps::lb_sym_scenario(k); }, {}});
  families.push_back(
      {"te-sym", [](int k) { return apps::te_sym_scenario(k); }, {}});

  std::printf("%-10s %3s %12s %12s %8s %10s %10s %8s\n", "family", "k",
              "unique(off)", "unique(on)", "ratio", "t_off(s)", "t_on(s)",
              "speedup");
  for (Family& fam : families) {
    bool off_alive = true;
    for (int k = 2; k <= max_clients; ++k) {
      Point p;
      p.clients = k;
      p.on = run_once(fam.make, k, true, on_budget, reps);
      if (!p.on.exhausted) {
        // Even the canonical space blew the budget: the curve ends here.
        std::printf("%-10s %3d %12s %12s %8s %10s %10s %8s\n",
                    fam.name.c_str(), k, "-", ">budget", "-", "-", "-", "-");
        fam.points.push_back(std::move(p));
        break;
      }
      if (off_alive) {
        p.off = run_once(fam.make, k, false, off_budget, reps);
        p.off_ran = true;
        if (!p.off.exhausted) off_alive = false;  // censored from here up
      }
      if (p.off_ran && p.off.exhausted) {
        // The runtime soundness gate.
        const apps::Scenario ref = fam.make(k);
        const mc::SymContext sym(ref.config);
        if (canonical_violations(p.on, sym) !=
                canonical_violations(p.off, sym) ||
            p.on.unique_states > p.off.unique_states) {
          std::fprintf(stderr,
                       "FATAL: %s k=%d symmetry run disagrees with the "
                       "unreduced search (unique %llu vs %llu, violation "
                       "sets %zu vs %zu)\n",
                       fam.name.c_str(), k,
                       static_cast<unsigned long long>(p.on.unique_states),
                       static_cast<unsigned long long>(p.off.unique_states),
                       canonical_violations(p.on, sym).size(),
                       canonical_violations(p.off, sym).size());
          return 1;
        }
      }
      const bool have_off = p.off_ran && p.off.exhausted;
      std::printf(
          "%-10s %3d %12s %12llu %7s %10s %10.3f %7s\n", fam.name.c_str(),
          k,
          have_off
              ? std::to_string(p.off.unique_states).c_str()
              : (p.off_ran ? ">budget" : "-"),
          static_cast<unsigned long long>(p.on.unique_states),
          have_off
              ? (std::to_string(p.off.unique_states /
                                (p.on.unique_states ? p.on.unique_states
                                                    : 1)) +
                 "x")
                    .c_str()
              : "-",
          have_off ? std::to_string(p.off.seconds).substr(0, 8).c_str()
                   : "-",
          p.on.seconds,
          have_off && p.on.seconds > 0
              ? (std::to_string(p.off.seconds / p.on.seconds).substr(0, 6) +
                 "x")
                    .c_str()
              : "-");
      fam.points.push_back(std::move(p));
    }
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"sym\",\n  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"max_clients\": %d,\n", max_clients);
    std::fprintf(f, "  \"off_transition_budget\": %llu,\n",
                 static_cast<unsigned long long>(off_budget));
    std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(util::peak_rss_bytes()));
    std::fprintf(f, "  \"families\": [\n");
    for (std::size_t fi = 0; fi < families.size(); ++fi) {
      const Family& fam = families[fi];
      std::fprintf(f, "    {\n      \"name\": \"%s\",\n      \"points\": [\n",
                   fam.name.c_str());
      for (std::size_t pi = 0; pi < fam.points.size(); ++pi) {
        const Point& p = fam.points[pi];
        const bool have_off = p.off_ran && p.off.exhausted;
        std::fprintf(
            f,
            "        {\"clients\": %d, \"on\": {\"unique_states\": %llu, "
            "\"transitions\": %llu, \"seconds\": %.4f, "
            "\"canonicalizations\": %llu, \"violations\": %zu}, "
            "\"on_exhausted\": %s",
            p.clients, static_cast<unsigned long long>(p.on.unique_states),
            static_cast<unsigned long long>(p.on.transitions), p.on.seconds,
            static_cast<unsigned long long>(p.on.symmetry.canonicalizations),
            p.on.violations.size(), p.on.exhausted ? "true" : "false");
        if (p.off_ran) {
          std::fprintf(
              f,
              ", \"off\": {\"unique_states\": %llu, \"transitions\": %llu, "
              "\"seconds\": %.4f, \"violations\": %zu}, "
              "\"off_exhausted\": %s",
              static_cast<unsigned long long>(p.off.unique_states),
              static_cast<unsigned long long>(p.off.transitions),
              p.off.seconds, p.off.violations.size(),
              p.off.exhausted ? "true" : "false");
        }
        if (have_off && p.on.unique_states > 0) {
          std::fprintf(f, ", \"state_ratio\": %.2f",
                       static_cast<double>(p.off.unique_states) /
                           static_cast<double>(p.on.unique_states));
        }
        std::fprintf(f, "}%s\n",
                     pi + 1 < fam.points.size() ? "," : "");
      }
      std::fprintf(f, "      ]\n    }%s\n",
                   fi + 1 < families.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("benchmark record written to %s\n", json_path);
  }
  return 0;
}
