// Ablations of the design choices DESIGN.md calls out (paper Section 6,
// "Model checker details"):
//
//   1. State restoration: cloning states (our default) vs replaying the
//      transition sequence from the initial state (the paper's choice, to
//      save memory). We measure both costs on real search prefixes.
//   2. Explored-set representation: 128-bit hashes vs full serialized
//      states vs COLLAPSE-interned component-id tuples (memory per state).
//   3. Canonical vs raw flow-table serialization cost (the price of the
//      Section 2.2.2 reduction).
#include <chrono>
#include <cstdio>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/trace.h"

using namespace nicemc;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("Ablation 1: clone-based vs replay-based state restoration\n");
  {
    auto s = apps::pyswitch_ping_chain(2);
    mc::Executor ex(s.config, s.properties);
    mc::DiscoveryCache cache;

    // Drive one deterministic execution to quiescence, keeping the trace.
    mc::SystemState st = ex.make_initial();
    std::vector<mc::Transition> trace;
    std::vector<mc::Violation> v;
    for (;;) {
      const auto ts = ex.enabled(st, cache);
      if (ts.empty()) break;
      trace.push_back(ts.front());
      ex.apply(st, ts.front(), v);
    }
    std::printf("  execution depth: %zu transitions\n", trace.size());

    constexpr int kReps = 2000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      mc::SystemState c = st.clone();
      (void)c;
    }
    const double clone_s = seconds_since(t0) / kReps;

    const auto t1 = Clock::now();
    constexpr int kReplayReps = 200;
    for (int i = 0; i < kReplayReps; ++i) {
      std::vector<mc::Violation> vs;
      (void)mc::replay(ex, trace, vs);
    }
    const double replay_s = seconds_since(t1) / kReplayReps;

    std::printf("  clone restore:  %9.2f us/state\n", clone_s * 1e6);
    std::printf("  replay restore: %9.2f us/state (%.0fx clone)\n",
                replay_s * 1e6, replay_s / clone_s);
    std::printf("  -> the paper replays to save memory; in C++ the clone is "
                "cheap\n     enough to prefer, so we clone and note the "
                "trade-off here.\n\n");
  }

  std::printf("Ablation 2: explored-set representation (hashes vs full "
              "states vs collapsed)\n");
  {
    auto run = [](util::ShardedSeenSet::Mode mode) {
      auto s = apps::pyswitch_ping_chain(2);
      mc::CheckerOptions opt;
      opt.state_store = mode;
      mc::Checker c(s.config, opt, s.properties);
      return c.run();
    };
    const auto hashes = run(util::ShardedSeenSet::Mode::kHash);
    const auto full = run(util::ShardedSeenSet::Mode::kFullState);
    const auto collapsed = run(util::ShardedSeenSet::Mode::kCollapsed);
    std::printf("  hash store:      %llu states, %llu bytes (%.1f B/state)\n",
                static_cast<unsigned long long>(hashes.unique_states),
                static_cast<unsigned long long>(hashes.store_bytes),
                static_cast<double>(hashes.store_bytes) /
                    static_cast<double>(hashes.unique_states));
    std::printf("  full store:      %llu states, %llu bytes (%.1f B/state, "
                "%.0fx hash)\n",
                static_cast<unsigned long long>(full.unique_states),
                static_cast<unsigned long long>(full.store_bytes),
                static_cast<double>(full.store_bytes) /
                    static_cast<double>(full.unique_states),
                static_cast<double>(full.store_bytes) /
                    static_cast<double>(hashes.store_bytes));
    std::printf("  collapsed store: %llu states, %llu bytes (%.1f B/state, "
                "%.1fx smaller than full, collision-proof)\n\n",
                static_cast<unsigned long long>(collapsed.unique_states),
                static_cast<unsigned long long>(collapsed.store_bytes),
                static_cast<double>(collapsed.store_bytes) /
                    static_cast<double>(collapsed.unique_states),
                static_cast<double>(full.store_bytes) /
                    static_cast<double>(collapsed.store_bytes));
  }

  std::printf("Ablation 3: canonical vs raw flow-table serialization\n");
  {
    of::FlowTable table;
    for (int i = 0; i < 32; ++i) {
      of::Rule r;
      r.match.fields = static_cast<std::uint16_t>(of::MatchField::kEthDst);
      r.match.eth_dst = 0x1000 + static_cast<std::uint64_t>(i);
      r.priority = static_cast<std::uint16_t>(100 + (i % 4));
      r.actions = {of::Action::output(static_cast<of::PortId>(i % 8))};
      table.add(r);
    }
    constexpr int kReps = 20000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      util::Ser s;
      table.serialize(s, /*canonical=*/true);
    }
    const double canon_s = seconds_since(t0) / kReps;
    const auto t1 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      util::Ser s;
      table.serialize(s, /*canonical=*/false);
    }
    const double raw_s = seconds_since(t1) / kReps;
    std::printf("  canonical: %8.2f us/table (32 rules)\n", canon_s * 1e6);
    std::printf("  raw:       %8.2f us/table  -> canonicalization costs "
                "%.1fx,\n",
                raw_s * 1e6, canon_s / raw_s);
    std::printf("  but buys the Table 1 state-space reduction (rho).\n");
  }
  return 0;
}
