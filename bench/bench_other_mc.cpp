// Section 7's "comparison to other model checkers", reproduced with
// degraded configurations of our own checker (see DESIGN.md §1):
//
//   * NICE-MC            — hash-based state matching, handler-atomic
//                          controller transitions;
//   * FULL-STATE-STORE   — stores complete serialized states like SPIN's
//                          default state vector (same search, SPIN-like
//                          memory footprint: the paper notes SPIN runs out
//                          of memory at 7 pings);
//   * FINE-INTERLEAVING  — every command a handler emits becomes its own
//                          interleavable transition, approximating JPF's
//                          thread-level granularity (the paper measures JPF
//                          up to 290x slower than NICE).
#include <cstdio>
#include <cstdlib>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

struct Config {
  const char* name;
  bool full_store;
  bool fine_interleaving;
};

mc::CheckerResult run(int pings, const Config& c, std::uint64_t cap) {
  auto s = apps::pyswitch_ping_chain(pings);
  s.config.fine_interleaving = c.fine_interleaving;
  mc::CheckerOptions opt;
  opt.max_transitions = cap;
  opt.state_store = c.full_store ? util::ShardedSeenSet::Mode::kFullState
                                 : util::ShardedSeenSet::Mode::kHash;
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

}  // namespace

int main(int argc, char** argv) {
  const int max_pings = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t cap =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10'000'000ULL;

  const Config configs[] = {
      {"NICE-MC", false, false},
      {"FULL-STATE-STORE", true, false},
      {"FINE-INTERLEAVING", false, true},
  };

  std::printf("Model-checker comparison on the pyswitch ping workload "
              "(Section 7).\n\n");
  std::printf("%5s  %-18s %12s %13s %10s %14s\n", "pings", "config",
              "transitions", "unique-states", "time[s]", "store-bytes");
  for (int pings = 2; pings <= max_pings; ++pings) {
    mc::CheckerResult base;
    for (const Config& c : configs) {
      const auto r = run(pings, c, cap);
      std::printf("%5d  %-18s %12llu %13llu %10.3f %14llu%s\n", pings,
                  c.name, static_cast<unsigned long long>(r.transitions),
                  static_cast<unsigned long long>(r.unique_states),
                  r.seconds, static_cast<unsigned long long>(r.store_bytes),
                  r.exhausted ? "" : "  (capped)");
      if (std::string_view(c.name) == "NICE-MC") {
        base = r;
      } else if (base.transitions > 0) {
        std::printf("       -> vs NICE-MC: %.1fx transitions, %.1fx time, "
                    "%.1fx store bytes\n",
                    static_cast<double>(r.transitions) /
                        static_cast<double>(base.transitions),
                    base.seconds > 0 ? r.seconds / base.seconds : 0.0,
                    base.store_bytes > 0
                        ? static_cast<double>(r.store_bytes) /
                              static_cast<double>(base.store_bytes)
                        : 0.0);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper's shape: NICE strikes the balance — the SPIN-like "
      "configuration\npays orders of magnitude more memory per state; the "
      "JPF-like granularity\nexplodes the interleaving space (JPF was 290x "
      "slower on 3 pings, 5.5x\nafter hand-tuning).\n");
  return 0;
}
