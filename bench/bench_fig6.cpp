// Figure 6 of the paper: relative state-space reduction of the
// heuristic-based search strategies (NO-DELAY, FLOW-IR, UNUSUAL) versus the
// full search (NICE-MC, PKT-SEQ only), on the Table 1 workload.
//
// For each ping count we report 1 − (strategy / full) for both explored
// transitions and CPU time — the quantity plotted in Figure 6.
//
// Usage: bench_fig6 [max_pings] [transition_cap]
#include <cstdio>
#include <cstdlib>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

mc::CheckerResult run(int pings, mc::Strategy strategy, std::uint64_t cap) {
  auto s = apps::pyswitch_ping_chain(pings);
  mc::CheckerOptions opt;
  opt.max_transitions = cap;
  apps::set_strategy(s, opt, strategy);
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

double reduction(std::uint64_t strategy_v, std::uint64_t full_v) {
  if (full_v == 0) return 0.0;
  return 1.0 - static_cast<double>(strategy_v) / static_cast<double>(full_v);
}

}  // namespace

int main(int argc, char** argv) {
  const int max_pings = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t cap =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000'000ULL;

  std::printf(
      "Figure 6: relative reduction of heuristic search strategies vs the "
      "full\nsearch (1 - strategy/full; higher is better). Workload: "
      "pyswitch pings.\n\n");
  std::printf("pings | NO-DELAY trans  NO-DELAY cpu | FLOW-IR trans  "
              "FLOW-IR cpu | UNUSUAL trans  UNUSUAL cpu\n");
  std::printf("------+------------------------------+-----------------------"
              "------+----------------------------\n");

  for (int pings = 2; pings <= max_pings; ++pings) {
    const auto full = run(pings, mc::Strategy::kPktSeqOnly, cap);
    const auto nodelay = run(pings, mc::Strategy::kNoDelay, cap);
    const auto flowir = run(pings, mc::Strategy::kFlowIr, cap);
    const auto unusual = run(pings, mc::Strategy::kUnusual, cap);
    std::printf("%5d | %13.2f  %12.2f | %12.2f  %11.2f | %12.2f  %11.2f\n",
                pings, reduction(nodelay.transitions, full.transitions),
                reduction(static_cast<std::uint64_t>(nodelay.seconds * 1e6),
                          static_cast<std::uint64_t>(full.seconds * 1e6)),
                reduction(flowir.transitions, full.transitions),
                reduction(static_cast<std::uint64_t>(flowir.seconds * 1e6),
                          static_cast<std::uint64_t>(full.seconds * 1e6)),
                reduction(unusual.transitions, full.transitions),
                reduction(static_cast<std::uint64_t>(unusual.seconds * 1e6),
                          static_cast<std::uint64_t>(full.seconds * 1e6)));
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper's shape: both NO-DELAY and FLOW-IR reduce transitions and "
      "CPU\nsubstantially (about a factor of four for three pings), with "
      "the\nreduction growing with the number of pings; UNUSUAL behaves "
      "similarly.\n");
  return 0;
}
