// State-pipeline microbenchmarks: the clone → serialize → hash hot path
// that dominates SearchCore::expand, plus end-to-end search throughput on
// the paper scenarios.
//
// Micro rows (ns/op on a representative mid-search state):
//   clone           — SystemState::clone()
//   serialize       — canonical serialization into a fresh Ser
//   hash            — SystemState::hash(canonical)
//   clone_remember  — clone + hash of the clone (the remember() path for
//                     an unchanged child; COW + memoized component hashes
//                     make this nearly free)
//   expand_step     — clone + apply(one transition) + hash (the full
//                     per-transition state cost, semantics included)
//
// End-to-end rows: full search transitions/sec on pyswitch ping-chain and
// the fixed load balancer (the Section 7 workloads).
//
// Deliberately restricted to APIs that exist both before and after the
// copy-on-write state pipeline, so the same source builds against either
// library revision for before/after comparisons.
//
// Usage: bench_pipeline [--json FILE] [pings] [micro_iters]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/execute.h"
#include "util/resource.h"
#include "util/ser.h"
#include "util/telemetry.h"

using namespace nicemc;
using Clock = std::chrono::steady_clock;

namespace {

double ns_per_op(const Clock::time_point& t0, const Clock::time_point& t1,
                 int iters) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

// A mid-search state is more representative than the initial one: packets
// in flight, controller state populated. Walk a few transitions in
// (deterministically: always the first enabled transition).
mc::SystemState representative_state(const mc::Executor& ex,
                                     mc::DiscoveryCache& cache, int depth) {
  mc::SystemState st = ex.make_initial();
  for (int i = 0; i < depth; ++i) {
    const auto ts = ex.enabled(st, cache);
    if (ts.empty()) break;
    std::vector<mc::Violation> vs;
    ex.apply(st, ts.front(), vs);
  }
  return st;
}

struct MicroResult {
  double clone_ns{0};
  double serialize_ns{0};
  double hash_ns{0};
  double clone_remember_ns{0};
  double expand_step_ns{0};
};

MicroResult run_micro(const apps::Scenario& s, int iters) {
  mc::Executor ex(s.config, s.properties);
  mc::DiscoveryCache cache;
  mc::SystemState st = representative_state(ex, cache, 6);
  const bool canon = s.config.canonical_flowtables;
  MicroResult r;

  {
    auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      mc::SystemState c = st.clone();
      asm volatile("" : : "r"(&c) : "memory");
    }
    r.clone_ns = ns_per_op(t0, Clock::now(), iters);
  }
  {
    auto t0 = Clock::now();
    std::size_t total = 0;
    for (int i = 0; i < iters; ++i) {
      util::Ser ser;
      st.serialize(ser, canon);
      total += ser.size();
    }
    asm volatile("" : : "r"(&total) : "memory");
    r.serialize_ns = ns_per_op(t0, Clock::now(), iters);
  }
  {
    // Hash fresh clones so memoization across iterations reflects exactly
    // what a search sees: each child shares the parent's component forms.
    auto t0 = Clock::now();
    std::uint64_t acc = 0;
    for (int i = 0; i < iters; ++i) {
      acc ^= st.clone().hash(canon).lo;
    }
    asm volatile("" : : "r"(&acc) : "memory");
    r.hash_ns = ns_per_op(t0, Clock::now(), iters);
  }
  {
    // clone + hash(clone): the remember() pipeline cost for a child state,
    // excluding transition semantics.
    auto t0 = Clock::now();
    std::uint64_t acc = 0;
    for (int i = 0; i < iters; ++i) {
      mc::SystemState c = st.clone();
      acc ^= c.hash(canon).lo;
    }
    asm volatile("" : : "r"(&acc) : "memory");
    r.clone_remember_ns = ns_per_op(t0, Clock::now(), iters);
  }
  {
    const auto ts = ex.enabled(st, cache);
    if (!ts.empty()) {
      auto t0 = Clock::now();
      std::uint64_t acc = 0;
      for (int i = 0; i < iters; ++i) {
        mc::SystemState c = st.clone();
        std::vector<mc::Violation> vs;
        ex.apply(c, ts.front(), vs);
        acc ^= c.hash(canon).lo;
      }
      asm volatile("" : : "r"(&acc) : "memory");
      r.expand_step_ns = ns_per_op(t0, Clock::now(), iters);
    }
  }
  return r;
}

struct E2eResult {
  std::string name;
  std::uint64_t transitions{0};
  std::uint64_t unique_states{0};
  double seconds{0};
  [[nodiscard]] double tps() const {
    return seconds > 0 ? static_cast<double>(transitions) / seconds : 0;
  }
};

E2eResult run_e2e(const char* name, apps::Scenario s) {
  mc::CheckerOptions opt;
  opt.stop_at_first_violation = false;
  mc::Checker checker(s.config, opt, s.properties);
  const mc::CheckerResult r = checker.run();
  return E2eResult{name, r.transitions, r.unique_states, r.seconds};
}

/// Separate telemetry-on run per e2e scenario: the headline tps numbers
/// above stay uninstrumented; this run only answers "where does the time
/// go" with the per-phase breakdown.
mc::CheckerResult run_e2e_telemetry(apps::Scenario s) {
  mc::CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.telemetry = true;
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

void print_phases(const char* name, const mc::CheckerResult& r) {
  std::printf("%-26s", name);
  for (std::size_t p = 0; p < util::kPhaseCount; ++p) {
    const double frac =
        r.telemetry.wall_ns > 0
            ? static_cast<double>(r.telemetry.phases[p].total_ns) /
                  static_cast<double>(r.telemetry.wall_ns)
            : 0.0;
    std::printf(" %s=%.0f%%", util::phase_name(static_cast<util::Phase>(p)),
                100.0 * frac);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      pos.push_back(argv[i]);
    }
  }
  int pings = pos.size() > 0 ? std::atoi(pos[0]) : 3;
  if (pings < 1) pings = 1;
  int iters = pos.size() > 1 ? std::atoi(pos[1]) : 20000;
  if (iters < 1) iters = 1;

  std::printf("state pipeline micro (pyswitch pings=%d, %d iters)\n", pings,
              iters);
  const MicroResult m = run_micro(apps::pyswitch_ping_chain(pings), iters);
  std::printf("%18s %12.1f ns/op\n", "clone", m.clone_ns);
  std::printf("%18s %12.1f ns/op\n", "serialize", m.serialize_ns);
  std::printf("%18s %12.1f ns/op\n", "hash", m.hash_ns);
  std::printf("%18s %12.1f ns/op\n", "clone_remember", m.clone_remember_ns);
  std::printf("%18s %12.1f ns/op\n", "expand_step", m.expand_step_ns);

  apps::LbScenarioOptions lbo;
  lbo.fix_release_packet = true;
  lbo.fix_install_before_delete = true;
  lbo.fix_discard_arp = true;
  lbo.fix_check_assignments = true;
  lbo.client_sends_arp = true;
  lbo.data_segments = 2;

  std::vector<E2eResult> e2e;
  e2e.push_back(run_e2e("pyswitch_full_search",
                        apps::pyswitch_ping_chain(pings)));
  e2e.push_back(run_e2e("loadbalancer_full_search", apps::lb_scenario(lbo)));

  std::printf("\n%-26s %12s %12s %10s %14s\n", "scenario", "transitions",
              "unique", "seconds", "trans/sec");
  for (const E2eResult& r : e2e) {
    std::printf("%-26s %12llu %12llu %10.3f %14.0f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.transitions),
                static_cast<unsigned long long>(r.unique_states), r.seconds,
                r.tps());
  }

  std::vector<std::pair<std::string, mc::CheckerResult>> phases;
  phases.emplace_back("pyswitch_full_search",
                      run_e2e_telemetry(apps::pyswitch_ping_chain(pings)));
  phases.emplace_back("loadbalancer_full_search",
                      run_e2e_telemetry(apps::lb_scenario(lbo)));
  std::printf("\nphase breakdown (separate telemetry-on runs)\n");
  for (const auto& [name, r] : phases) print_phases(name.c_str(), r);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"pipeline\",\n");
    std::fprintf(f, "  \"pings\": %d,\n  \"micro_iters\": %d,\n", pings,
                 iters);
    std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(util::peak_rss_bytes()));
    std::fprintf(f,
                 "  \"micro_ns\": {\"clone\": %.1f, \"serialize\": %.1f, "
                 "\"hash\": %.1f, \"clone_remember\": %.1f, "
                 "\"expand_step\": %.1f},\n",
                 m.clone_ns, m.serialize_ns, m.hash_ns, m.clone_remember_ns,
                 m.expand_step_ns);
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < e2e.size(); ++i) {
      const E2eResult& r = e2e[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"transitions\": %llu, "
                   "\"unique_states\": %llu, \"seconds\": %.3f, "
                   "\"transitions_per_sec\": %.0f}%s\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.transitions),
                   static_cast<unsigned long long>(r.unique_states),
                   r.seconds, r.tps(), i + 1 < e2e.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Additive key: downstream bench_pipeline.sh parsing reads named keys
    // only, so the telemetry block does not perturb existing consumers.
    std::fprintf(f, "  \"telemetry\": [\n");
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const auto& [name, r] = phases[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"wall_ns\": %llu, \"phases\": {",
                   name.c_str(),
                   static_cast<unsigned long long>(r.telemetry.wall_ns));
      for (std::size_t p = 0; p < util::kPhaseCount; ++p) {
        std::fprintf(f, "%s\"%s\": %llu", p == 0 ? "" : ", ",
                     util::phase_name(static_cast<util::Phase>(p)),
                     static_cast<unsigned long long>(
                         r.telemetry.phases[p].total_ns));
      }
      std::fprintf(f, "}}%s\n", i + 1 < phases.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
