// Table 2 of the paper: for each of the eleven bugs, the number of
// transitions and the time to the *first* property violation, under the
// four strategies PKT-SEQ-only, NO-DELAY, FLOW-IR and UNUSUAL. "Missed"
// means the (bounded) search completed without finding the violation —
// the paper reports NO-DELAY missing the race/load bugs (V, X, XI) and
// FLOW-IR missing the duplicate-SYN bug (VII).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

struct BugCase {
  const char* name;
  std::function<apps::Scenario()> make;
};

std::vector<BugCase> bug_cases() {
  using apps::LbScenarioOptions;
  using apps::TeScenarioOptions;
  return {
      {"I", [] { return apps::pyswitch_bug1(); }},
      {"II", [] { return apps::pyswitch_bug2(); }},
      {"III", [] { return apps::pyswitch_bug3(); }},
      {"IV",
       [] {
         LbScenarioOptions o;
         o.fix_install_before_delete = true;
         return apps::lb_scenario(o);
       }},
      {"V",
       [] {
         LbScenarioOptions o;
         o.fix_release_packet = true;
         return apps::lb_scenario(o);
       }},
      {"VI",
       [] {
         LbScenarioOptions o;
         o.fix_release_packet = true;
         o.fix_install_before_delete = true;
         o.client_sends_arp = true;
         return apps::lb_scenario(o);
       }},
      {"VII",
       [] {
         LbScenarioOptions o;
         o.fix_release_packet = true;
         o.fix_install_before_delete = true;
         o.client_can_dup_syn = true;
         o.data_segments = 2;
         o.check_flow_affinity = true;
         return apps::lb_scenario(o);
       }},
      {"VIII", [] { return apps::te_scenario({}); }},
      {"IX",
       [] {
         TeScenarioOptions o;
         o.fix_release_packet = true;
         return apps::te_scenario(o);
       }},
      {"X",
       [] {
         TeScenarioOptions o;
         o.fix_release_packet = true;
         o.fix_handle_intermediate = true;
         o.stats_rounds = 1;
         o.check_routing_table = true;
         return apps::te_scenario(o);
       }},
      {"XI",
       [] {
         TeScenarioOptions o;
         o.fix_release_packet = true;
         o.fix_handle_intermediate = true;
         o.stats_rounds = 2;
         return apps::te_scenario(o);
       }},
  };
}

std::string run_cell(const BugCase& bug, mc::Strategy strategy) {
  auto s = bug.make();
  mc::CheckerOptions opt;
  opt.max_transitions = 5'000'000;
  apps::set_strategy(s, opt, strategy);
  mc::Checker checker(s.config, opt, s.properties);
  const mc::CheckerResult r = checker.run();
  if (!r.found_violation()) return "Missed";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu / %.3fs",
                static_cast<unsigned long long>(r.transitions), r.seconds);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "Table 2: transitions / time to the first violation uncovering each "
      "bug.\n'Missed' = bounded search exhausted without a violation.\n\n");
  std::printf("%-5s | %-18s | %-18s | %-18s | %-18s\n", "BUG",
              "PKT-SEQ only", "NO-DELAY", "FLOW-IR", "UNUSUAL");
  std::printf("------+--------------------+--------------------+------------"
              "--------+-------------------\n");
  for (const BugCase& bug : bug_cases()) {
    const std::string pktseq = run_cell(bug, mc::Strategy::kPktSeqOnly);
    const std::string nodelay = run_cell(bug, mc::Strategy::kNoDelay);
    const std::string flowir = run_cell(bug, mc::Strategy::kFlowIr);
    const std::string unusual = run_cell(bug, mc::Strategy::kUnusual);
    std::printf("%-5s | %-18s | %-18s | %-18s | %-18s\n", bug.name,
                pktseq.c_str(), nodelay.c_str(), flowir.c_str(),
                unusual.c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper's shape: every bug found under PKT-SEQ-only; NO-DELAY misses "
      "the\nrace/load-dependent bugs; FLOW-IR misses BUG-VII (duplicate SYN "
      "treated\nas an independent flow); counts to first violation are "
      "small except\nBUG-VII, where UNUSUAL is an order of magnitude faster "
      "than PKT-SEQ.\n");
  return 0;
}
