// Table 1 of the paper: exhaustive search with NICE-MC vs
// NO-SWITCH-REDUCTION (no canonical flow-table representation), on the
// Figure 1 topology with pyswitch and N concurrent pings. Reports
// transitions, unique states, CPU time, and the state-space reduction
// ratio ρ = (U_nsr − U_nice) / U_nsr.
//
// Usage: bench_table1 [max_pings] [transition_cap]
//   default max_pings = 4 (5 in the paper takes ~14M transitions — allowed
//   but capped so the harness terminates in bounded time).
#include <cstdio>
#include <cstdlib>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

mc::CheckerResult run(int pings, bool canonical, std::uint64_t cap) {
  auto s = apps::pyswitch_ping_chain(pings, canonical);
  mc::CheckerOptions opt;
  opt.max_transitions = cap;
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

void print_row(int pings, const mc::CheckerResult& nice,
               const mc::CheckerResult& nsr) {
  const double rho =
      nsr.unique_states == 0
          ? 0.0
          : static_cast<double>(nsr.unique_states - nice.unique_states) /
                static_cast<double>(nsr.unique_states);
  std::printf("%5d | %11llu %13llu %9.2f%s | %11llu %13llu %9.2f%s | %5.2f\n",
              pings, static_cast<unsigned long long>(nice.transitions),
              static_cast<unsigned long long>(nice.unique_states),
              nice.seconds, nice.exhausted ? " " : "*",
              static_cast<unsigned long long>(nsr.transitions),
              static_cast<unsigned long long>(nsr.unique_states),
              nsr.seconds, nsr.exhausted ? " " : "*", rho);
}

}  // namespace

int main(int argc, char** argv) {
  const int max_pings = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t cap =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000'000ULL;

  std::printf(
      "Table 1: NICE-MC vs NO-SWITCH-REDUCTION (pyswitch, Figure 1 "
      "topology,\nN concurrent pings, full DFS, symbolic execution off).\n"
      "Entries marked * hit the transition cap (%llu) before exhausting.\n\n",
      static_cast<unsigned long long>(cap));
  std::printf("      |             NICE-MC                  |      "
              "NO-SWITCH-REDUCTION            |\n");
  std::printf("pings | transitions unique-states   time[s]  | transitions "
              "unique-states   time[s]  |  rho\n");
  std::printf("------+--------------------------------------+---------------"
              "-----------------------+-----\n");

  for (int pings = 2; pings <= max_pings; ++pings) {
    const auto nice = run(pings, /*canonical=*/true, cap);
    const auto nsr = run(pings, /*canonical=*/false, cap);
    print_row(pings, nice, nsr);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper's shape: transitions/states grow ~exponentially with pings;\n"
      "the canonical switch model explores ~half the unique-state growth "
      "rate,\nwith rho rising with problem size (0.38 / 0.71 / 0.84 for "
      "2/3/4 pings\non the authors' Python prototype).\n");
  return 0;
}
