// State-store representation benchmark: hash vs full-state vs collapsed
// (COLLAPSE component interning) on every bundled scenario — store bytes,
// interning dedupe, unique states and wall time per mode — with the
// count-equivalence soundness contract enforced at runtime: all three
// modes must report identical unique-state / quiescent-state / transition
// counts and identical violation key sets on exhaustive runs, or the run
// aborts loudly.
//
// Wall times are the minimum over `reps` runs (timing only; the counts
// and byte totals of every run feed the soundness check and the record).
//
// Usage: bench_collapse [--json out.json] [reps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "util/resource.h"
#include "util/seen_set.h"
#include "util/telemetry.h"

using namespace nicemc;
using mc::violation_key_set;
using StoreMode = util::ShardedSeenSet::Mode;

namespace {

const char* mode_key(StoreMode m) {
  switch (m) {
    case StoreMode::kHash:
      return "hash";
    case StoreMode::kFullState:
      return "full_state";
    case StoreMode::kCollapsed:
      return "collapsed";
  }
  return "?";
}

mc::CheckerResult run_mode(const apps::NamedScenario& ns, StoreMode mode,
                           int reps, bool telemetry = false) {
  mc::CheckerResult best;
  for (int r = 0; r < reps; ++r) {
    auto s = ns.make();
    mc::CheckerOptions opt;
    opt.stop_at_first_violation = false;
    opt.state_store = mode;
    opt.telemetry = telemetry;
    mc::Checker checker(s.config, opt, s.properties);
    mc::CheckerResult cr = checker.run();
    if (r == 0 || cr.seconds < best.seconds) best = std::move(cr);
  }
  return best;
}

void check_equivalent(const char* scenario, const mc::CheckerResult& base,
                      const char* mode, const mc::CheckerResult& r) {
  if (r.unique_states != base.unique_states ||
      r.quiescent_states != base.quiescent_states ||
      r.transitions != base.transitions || !r.exhausted ||
      violation_key_set(r) != violation_key_set(base)) {
    std::fprintf(stderr,
                 "FATAL: %s store mode %s is not count-equivalent to hash "
                 "mode (unique %llu vs %llu, transitions %llu vs %llu, "
                 "violations %zu vs %zu, exhausted %d)\n",
                 scenario, mode,
                 static_cast<unsigned long long>(r.unique_states),
                 static_cast<unsigned long long>(base.unique_states),
                 static_cast<unsigned long long>(r.transitions),
                 static_cast<unsigned long long>(base.transitions),
                 violation_key_set(r).size(), violation_key_set(base).size(),
                 r.exhausted ? 1 : 0);
    std::exit(1);
  }
}

struct Row {
  std::string name;
  mc::CheckerResult hash, full, collapsed;
  /// Telemetry-on re-run of the collapsed mode: where does the collapsed
  /// store's extra wall time go (kRemember holds the interning)?
  mc::CheckerResult telem;

  [[nodiscard]] double compression() const {
    return collapsed.store_bytes > 0
               ? static_cast<double>(full.store_bytes) /
                     static_cast<double>(collapsed.store_bytes)
               : 0.0;
  }
  [[nodiscard]] double time_vs_full() const {
    return full.seconds > 0 ? collapsed.seconds / full.seconds : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      pos.push_back(argv[i]);
    }
  }
  int reps = pos.size() > 0 ? std::atoi(pos[0]) : 3;
  if (reps < 1) reps = 1;

  std::vector<Row> rows;
  std::printf("%-22s %9s %12s %12s %12s %8s %7s %7s %9s\n", "scenario",
              "unique", "B(hash)", "B(full)", "B(collapsed)", "dedupe",
              "xfull", "t/full", "remember%");
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    Row row;
    row.name = ns.name;
    row.hash = run_mode(ns, StoreMode::kHash, reps);
    row.full = run_mode(ns, StoreMode::kFullState, reps);
    row.collapsed = run_mode(ns, StoreMode::kCollapsed, reps);
    row.telem = run_mode(ns, StoreMode::kCollapsed, reps, /*telemetry=*/true);
    check_equivalent(ns.name.c_str(), row.hash, "full_state", row.full);
    check_equivalent(ns.name.c_str(), row.hash, "collapsed", row.collapsed);
    // The observer-effect half of the telemetry contract: an instrumented
    // collapsed run must match the uninstrumented one count for count.
    check_equivalent(ns.name.c_str(), row.hash, "collapsed+telemetry",
                     row.telem);
    const double remember_frac =
        row.telem.telemetry.wall_ns > 0
            ? static_cast<double>(
                  row.telem.telemetry
                      .phases[static_cast<std::size_t>(
                          util::Phase::kRemember)]
                      .total_ns) /
                  static_cast<double>(row.telem.telemetry.wall_ns)
            : 0.0;
    std::printf(
        "%-22s %9llu %12llu %12llu %12llu %7.1fx %6.1fx %6.2fx %8.0f%%\n",
        ns.name.c_str(),
        static_cast<unsigned long long>(row.hash.unique_states),
        static_cast<unsigned long long>(row.hash.store_bytes),
        static_cast<unsigned long long>(row.full.store_bytes),
        static_cast<unsigned long long>(row.collapsed.store_bytes),
        row.collapsed.collapse.dedupe_ratio, row.compression(),
        row.time_vs_full(), 100.0 * remember_frac);
    rows.push_back(std::move(row));
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"collapse\",\n  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(util::peak_rss_bytes()));
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f, "    {\n      \"name\": \"%s\",\n", r.name.c_str());
      std::fprintf(
          f,
          "      \"unique_states\": %llu,\n      \"transitions\": %llu,\n"
          "      \"violations\": %zu,\n",
          static_cast<unsigned long long>(r.hash.unique_states),
          static_cast<unsigned long long>(r.hash.transitions),
          violation_key_set(r.hash).size());
      const mc::CheckerResult* modes[3] = {&r.hash, &r.full, &r.collapsed};
      const StoreMode kinds[3] = {StoreMode::kHash, StoreMode::kFullState,
                                  StoreMode::kCollapsed};
      for (int m = 0; m < 3; ++m) {
        std::fprintf(f,
                     "      \"%s\": {\"store_bytes\": %llu, \"seconds\": "
                     "%.4f}%s\n",
                     mode_key(kinds[m]),
                     static_cast<unsigned long long>(modes[m]->store_bytes),
                     modes[m]->seconds, ",");
      }
      std::fprintf(
          f,
          "      \"collapse\": {\"unique_blobs\": %llu, \"interned_bytes\": "
          "%llu, \"intern_calls\": %llu, \"dedupe_ratio\": %.2f},\n",
          static_cast<unsigned long long>(r.collapsed.collapse.unique_blobs),
          static_cast<unsigned long long>(
              r.collapsed.collapse.interned_bytes),
          static_cast<unsigned long long>(r.collapsed.collapse.intern_calls),
          r.collapsed.collapse.dedupe_ratio);
      std::fprintf(f,
                   "      \"telemetry\": {\"seconds_on\": %.4f, \"wall_ns\": "
                   "%llu, \"phases\": {",
                   r.telem.seconds,
                   static_cast<unsigned long long>(r.telem.telemetry.wall_ns));
      for (std::size_t p = 0; p < util::kPhaseCount; ++p) {
        std::fprintf(f, "%s\"%s\": %llu", p == 0 ? "" : ", ",
                     util::phase_name(static_cast<util::Phase>(p)),
                     static_cast<unsigned long long>(
                         r.telem.telemetry.phases[p].total_ns));
      }
      std::fprintf(f, "}},\n");
      std::fprintf(f,
                   "      \"compression_vs_full\": %.2f,\n"
                   "      \"collapsed_time_vs_full\": %.3f\n    }%s\n",
                   r.compression(), r.time_vs_full(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("benchmark record written to %s\n", json_path);
  }
  return 0;
}
