// Micro-benchmarks of the building blocks (google-benchmark): constraint
// solving, concolic discovery, flow-table operations, state hashing and
// cloning, and a small end-to-end model-checking run.
#include <benchmark/benchmark.h>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/discover.h"
#include "sym/concolic.h"
#include "sym/solver.h"

using namespace nicemc;

namespace {

void BM_SolverMacEquality(benchmark::State& state) {
  sym::ExprArena a;
  const sym::ExprRef mac = a.var(0, 48);
  const std::uint64_t macs[] = {0x00aa0000000aULL, 0x00aa0000000bULL,
                                0xffffffffffffULL, 0x00feed000001ULL};
  const sym::ExprRef dom = a.any_of(mac, macs);
  const sym::ExprRef ne =
      a.cmp(sym::Op::kNe, mac, a.constant(0x00aa0000000aULL, 48));
  for (auto _ : state) {
    sym::Solver solver(a);
    const std::vector<sym::ExprRef> q = {dom, ne};
    benchmark::DoNotOptimize(solver.solve(q));
  }
}
BENCHMARK(BM_SolverMacEquality);

void BM_ConcolicTableScan(benchmark::State& state) {
  const auto entries = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sym::Concolic engine;
    const sym::VarHandle key = engine.add_var("key", 16, 0);
    const auto results = engine.explore([&](const sym::Inputs& in) {
      const sym::Value k = in[key];
      for (std::uint64_t e = 0; e < entries; ++e) {
        if (k == sym::Value(e * 3 + 1, 16)) return;
      }
    });
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ConcolicTableScan)->Arg(2)->Arg(4)->Arg(8);

void BM_DiscoverPacketsPySwitch(benchmark::State& state) {
  auto s = apps::pyswitch_bug2();
  mc::Executor ex(s.config, s.properties);
  const mc::SystemState st = ex.make_initial();
  for (auto _ : state) {
    mc::DiscoveryStats stats;
    benchmark::DoNotOptimize(
        mc::discover_packets(s.config, st, /*host=*/0, stats));
  }
}
BENCHMARK(BM_DiscoverPacketsPySwitch);

void BM_FlowTableLookup(benchmark::State& state) {
  of::FlowTable table;
  const auto rules = static_cast<int>(state.range(0));
  for (int i = 0; i < rules; ++i) {
    of::Rule r;
    r.match.fields = static_cast<std::uint16_t>(of::MatchField::kEthDst);
    r.match.eth_dst = 0x1000 + static_cast<std::uint64_t>(i);
    r.actions = {of::Action::output(1)};
    table.add(r);
  }
  sym::PacketFields h;
  h.eth_dst = 0x1000 + static_cast<std::uint64_t>(rules - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(1, h));
  }
}
BENCHMARK(BM_FlowTableLookup)->Arg(4)->Arg(16)->Arg(64);

void BM_FlowTableCanonicalSerialize(benchmark::State& state) {
  of::FlowTable table;
  for (int i = 0; i < 16; ++i) {
    of::Rule r;
    r.match.fields = static_cast<std::uint16_t>(of::MatchField::kEthDst);
    r.match.eth_dst = 0x1000 + static_cast<std::uint64_t>(i);
    r.priority = static_cast<std::uint16_t>(100 + (i % 3));
    r.actions = {of::Action::output(1)};
    table.add(r);
  }
  for (auto _ : state) {
    util::Ser s;
    table.serialize(s, true);
    benchmark::DoNotOptimize(s.hash());
  }
}
BENCHMARK(BM_FlowTableCanonicalSerialize);

void BM_SystemStateHash(benchmark::State& state) {
  auto s = apps::pyswitch_ping_chain(2);
  mc::Executor ex(s.config, s.properties);
  const mc::SystemState st = ex.make_initial();
  for (auto _ : state) {
    benchmark::DoNotOptimize(st.hash(true));
  }
}
BENCHMARK(BM_SystemStateHash);

void BM_SystemStateClone(benchmark::State& state) {
  auto s = apps::pyswitch_ping_chain(2);
  mc::Executor ex(s.config, s.properties);
  const mc::SystemState st = ex.make_initial();
  for (auto _ : state) {
    mc::SystemState c = st.clone();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SystemStateClone);

void BM_CheckerPingExhaustive(benchmark::State& state) {
  const int pings = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto s = apps::pyswitch_ping_chain(pings);
    mc::Checker checker(s.config, mc::CheckerOptions{}, s.properties);
    benchmark::DoNotOptimize(checker.run());
  }
}
BENCHMARK(BM_CheckerPingExhaustive)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

void BM_CheckerFindBug2(benchmark::State& state) {
  for (auto _ : state) {
    auto s = apps::pyswitch_bug2();
    mc::Checker checker(s.config, mc::CheckerOptions{}, s.properties);
    benchmark::DoNotOptimize(checker.run());
  }
}
BENCHMARK(BM_CheckerFindBug2)->Unit(benchmark::kMillisecond);

}  // namespace
