// Partial-order-reduction benchmark: transitions explored without DPOR
// and under each reducing mode (sleep sets / sleep + persistent
// scheduling / Source-DPOR with wakeup trees) on every bundled scenario,
// plus the soundness contract enforced at runtime — each reduced run
// must report the identical violation set and the identical unique-state
// count as the unreduced search, with fewer (or equal) transitions — and
// the Source-DPOR gate: kSourceDpor must never explore more transitions
// than kSleepPersistent. The run aborts loudly on any mismatch, so a
// successful run doubles as a check (the CI bench-por job relies on it).
//
// Usage: bench_por [--json out.json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;
using mc::violation_key_set;

namespace {

mc::CheckerResult run_scenario(apps::Scenario s, mc::Reduction reduction) {
  mc::CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.reduction = reduction;
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

void check_sound(const char* scenario, const char* mode,
                 const mc::CheckerResult& none, const mc::CheckerResult& red) {
  if (red.unique_states != none.unique_states ||
      red.quiescent_states != none.quiescent_states ||
      red.transitions > none.transitions ||
      violation_key_set(red) != violation_key_set(none)) {
    std::fprintf(stderr,
                 "FATAL: %s under %s is not sound vs NONE "
                 "(unique %llu vs %llu, transitions %llu vs %llu, "
                 "violations %zu vs %zu)\n",
                 scenario, mode,
                 static_cast<unsigned long long>(red.unique_states),
                 static_cast<unsigned long long>(none.unique_states),
                 static_cast<unsigned long long>(red.transitions),
                 static_cast<unsigned long long>(none.transitions),
                 violation_key_set(red).size(), violation_key_set(none).size());
    std::exit(1);
  }
}

struct Row {
  std::string name;
  mc::CheckerResult none, sleep, persistent, source;
};

double ratio(const mc::CheckerResult& none, const mc::CheckerResult& red) {
  return red.transitions > 0
             ? static_cast<double>(none.transitions) /
                   static_cast<double>(red.transitions)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  std::vector<Row> rows;
  std::printf("%-22s %10s %10s %10s %10s %10s %7s %7s %7s\n", "scenario",
              "unique", "t(NONE)", "t(SLEEP)", "t(S+P)", "t(SRC)", "xSLEEP",
              "xS+P", "xSRC");
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    Row row;
    row.name = ns.name;
    row.none = run_scenario(ns.make(), mc::Reduction::kNone);
    row.sleep = run_scenario(ns.make(), mc::Reduction::kSleep);
    row.persistent = run_scenario(ns.make(), mc::Reduction::kSleepPersistent);
    row.source = run_scenario(ns.make(), mc::Reduction::kSourceDpor);
    check_sound(ns.name.c_str(), "SLEEP", row.none, row.sleep);
    check_sound(ns.name.c_str(), "SLEEP+PERSISTENT", row.none,
                row.persistent);
    check_sound(ns.name.c_str(), "SOURCE-DPOR", row.none, row.source);
    if (row.source.transitions > row.persistent.transitions) {
      std::fprintf(stderr,
                   "FATAL: %s: SOURCE-DPOR explored %llu transitions > "
                   "SLEEP+PERSISTENT's %llu (replays %llu woken %llu)\n",
                   ns.name.c_str(),
                   static_cast<unsigned long long>(row.source.transitions),
                   static_cast<unsigned long long>(
                       row.persistent.transitions),
                   static_cast<unsigned long long>(row.source.wakeup.replays),
                   static_cast<unsigned long long>(row.source.wakeup.woken));
      std::exit(1);
    }
    std::printf("%-22s %10llu %10llu %10llu %10llu %10llu %6.2fx %6.2fx "
                "%6.2fx\n",
                ns.name.c_str(),
                static_cast<unsigned long long>(row.none.unique_states),
                static_cast<unsigned long long>(row.none.transitions),
                static_cast<unsigned long long>(row.sleep.transitions),
                static_cast<unsigned long long>(row.persistent.transitions),
                static_cast<unsigned long long>(row.source.transitions),
                ratio(row.none, row.sleep), ratio(row.none, row.persistent),
                ratio(row.none, row.source));
    rows.push_back(std::move(row));
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"por\",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      auto emit = [&](const char* key, const mc::CheckerResult& cr,
                      const char* tail) {
        std::fprintf(f,
                     "      \"%s\": {\"transitions\": %llu, \"unique_states\""
                     ": %llu, \"revisits\": %llu, \"violations\": %zu, "
                     "\"seconds\": %.4f}%s\n",
                     key, static_cast<unsigned long long>(cr.transitions),
                     static_cast<unsigned long long>(cr.unique_states),
                     static_cast<unsigned long long>(cr.revisits),
                     violation_key_set(cr).size(), cr.seconds, tail);
      };
      std::fprintf(f, "    {\n      \"name\": \"%s\",\n", r.name.c_str());
      emit("none", r.none, ",");
      emit("sleep", r.sleep, ",");
      emit("sleep_persistent", r.persistent, ",");
      emit("source_dpor", r.source, ",");
      std::fprintf(
          f,
          "      \"wakeup\": {\"replays\": %llu, \"woken\": %llu, "
          "\"trees\": %llu, \"sequences\": %llu},\n",
          static_cast<unsigned long long>(r.source.wakeup.replays),
          static_cast<unsigned long long>(r.source.wakeup.woken),
          static_cast<unsigned long long>(r.source.wakeup.trees),
          static_cast<unsigned long long>(r.source.wakeup.sequences));
      std::fprintf(f,
                   "      \"reduction_sleep\": %.3f,\n"
                   "      \"reduction_sleep_persistent\": %.3f,\n"
                   "      \"reduction_source_dpor\": %.3f\n    }%s\n",
                   ratio(r.none, r.sleep), ratio(r.none, r.persistent),
                   ratio(r.none, r.source), i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("benchmark record written to %s\n", json_path);
  }
  return 0;
}
