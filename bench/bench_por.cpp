// Partial-order-reduction benchmark: transitions explored without DPOR
// and under each reducing mode (sleep sets / sleep + persistent
// scheduling / Source-DPOR with wakeup trees) on every bundled scenario,
// plus the soundness contract enforced at runtime — each reduced run
// must report the identical violation set and the identical unique-state
// count as the unreduced search, with fewer (or equal) transitions — and
// the Source-DPOR gate: kSourceDpor must never explore more transitions
// than kSleepPersistent. The run aborts loudly on any mismatch, so a
// successful run doubles as a check (the CI bench-por job relies on it).
//
// Every (scenario, reduction) cell runs twice — memo on and memo off
// (CheckerOptions::memo, the footprint/discovery memoization layer) —
// with two more runtime gates:
//   * the memo knob must not change violation/unique/quiescent/transition
//     counts (pure-function caching, differentially enforced);
//   * the footprint-memo hit rate of every reduced memo-on run must stay
//     above a floor on the bundled scenarios (CI fails on regression).
//
// A third runtime gate exercises the durability layer (mc/checkpoint.h):
// for every scenario, a transition-capped run checkpoints at its halt and
// a fresh process-state Checker resumes it — the resumed totals
// (transitions, unique states, quiescent states, violation set) must be
// identical to the uninterrupted search's, under kNone and kSourceDpor.
//
// A fourth runtime gate covers the observability layer (util/telemetry.h):
// for every scenario an extra telemetry-on run must report counts
// identical to the telemetry-off search (observation must not perturb the
// search), and its wall time must stay within 1.05x of the off run plus a
// small absolute slack for sub-100ms cells. The telemetry run's per-phase
// breakdown lands in the stdout table and the JSON record.
//
// Usage: bench_por [--json out.json] [--repeat N] [--progress FILE]
//   --repeat N re-runs every cell N times and records the minimum wall
//   time (counts are asserted identical across repeats); use when
//   regenerating the committed BENCH_por.json on a noisy machine.
//   --progress FILE streams NDJSON snapshots of the telemetry-on runs
//   (scenarios append to one file; CI uploads it as an artifact).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "util/resource.h"
#include "util/telemetry.h"

using namespace nicemc;
using mc::violation_key_set;

namespace {

/// Minimum footprint-memo hit rate on every bundled scenario's reduced
/// memo-on runs (only rows with enough lookups to be meaningful — see
/// check_hit_rate_floor). Sequential searches are deterministic, so the
/// rates are exactly reproducible; the lowest today is lb-fixed under
/// SLEEP+PERSISTENT at 0.357 (most sit between 0.44 and 0.86). The floor
/// is a regression tripwire for the key scheme — a keying change that
/// silently turns the memo into a miss machine trips it — not a target.
constexpr double kFootprintHitRateFloor = 0.30;

mc::CheckerResult run_scenario(const apps::NamedScenario& ns,
                               mc::Reduction reduction, bool memo,
                               int repeats, bool telemetry = false,
                               const char* progress = nullptr) {
  mc::CheckerResult best;
  for (int i = 0; i < repeats; ++i) {
    apps::Scenario s = ns.make();
    mc::CheckerOptions opt;
    opt.stop_at_first_violation = false;
    opt.reduction = reduction;
    opt.memo = memo;
    opt.telemetry = telemetry;
    if (progress != nullptr && i == 0) {
      // Scenarios chain their snapshots into one NDJSON stream; only the
      // first repeat streams so repeats don't re-report the same search.
      opt.progress_path = progress;
      opt.progress_interval_seconds = 0.05;
      opt.progress_append = true;
    }
    mc::Checker checker(s.config, opt, s.properties);
    mc::CheckerResult r = checker.run();
    if (i == 0) {
      best = std::move(r);
      continue;
    }
    if (r.transitions != best.transitions ||
        r.unique_states != best.unique_states) {
      std::fprintf(stderr, "FATAL: %s: nondeterministic repeat\n",
                   ns.name.c_str());
      std::exit(1);
    }
    if (r.seconds < best.seconds) best = std::move(r);
  }
  return best;
}

void check_sound(const char* scenario, const char* mode,
                 const mc::CheckerResult& none, const mc::CheckerResult& red) {
  if (red.unique_states != none.unique_states ||
      red.quiescent_states != none.quiescent_states ||
      red.transitions > none.transitions ||
      violation_key_set(red) != violation_key_set(none)) {
    std::fprintf(stderr,
                 "FATAL: %s under %s is not sound vs NONE "
                 "(unique %llu vs %llu, transitions %llu vs %llu, "
                 "violations %zu vs %zu)\n",
                 scenario, mode,
                 static_cast<unsigned long long>(red.unique_states),
                 static_cast<unsigned long long>(none.unique_states),
                 static_cast<unsigned long long>(red.transitions),
                 static_cast<unsigned long long>(none.transitions),
                 violation_key_set(red).size(), violation_key_set(none).size());
    std::exit(1);
  }
}

/// The memo-knob soundness gate: memoization is pure-function caching, so
/// flipping it must be invisible in every search count.
void check_memo_identical(const char* scenario, const char* mode,
                          const mc::CheckerResult& on,
                          const mc::CheckerResult& off) {
  if (on.transitions != off.transitions ||
      on.unique_states != off.unique_states ||
      on.quiescent_states != off.quiescent_states ||
      violation_key_set(on) != violation_key_set(off)) {
    std::fprintf(
        stderr,
        "FATAL: %s under %s differs across the memo knob "
        "(transitions %llu vs %llu, unique %llu vs %llu, quiescent %llu "
        "vs %llu, violations %zu vs %zu)\n",
        scenario, mode, static_cast<unsigned long long>(on.transitions),
        static_cast<unsigned long long>(off.transitions),
        static_cast<unsigned long long>(on.unique_states),
        static_cast<unsigned long long>(off.unique_states),
        static_cast<unsigned long long>(on.quiescent_states),
        static_cast<unsigned long long>(off.quiescent_states),
        violation_key_set(on).size(), violation_key_set(off).size());
    std::exit(1);
  }
}

/// The observer-effect gate: telemetry must not perturb the search —
/// identical counts and violation sets — and must stay cheap. The wall
/// gate is 1.05x plus a small absolute slack: bundled-scenario cells run
/// tens of milliseconds, where a single scheduler hiccup exceeds 5%.
void check_telemetry(const char* scenario, const mc::CheckerResult& on,
                     const mc::CheckerResult& off) {
  if (on.transitions != off.transitions ||
      on.unique_states != off.unique_states ||
      on.quiescent_states != off.quiescent_states ||
      violation_key_set(on) != violation_key_set(off)) {
    std::fprintf(stderr,
                 "FATAL: %s differs across the telemetry knob "
                 "(transitions %llu vs %llu, unique %llu vs %llu)\n",
                 scenario, static_cast<unsigned long long>(on.transitions),
                 static_cast<unsigned long long>(off.transitions),
                 static_cast<unsigned long long>(on.unique_states),
                 static_cast<unsigned long long>(off.unique_states));
    std::exit(1);
  }
  if (!on.telemetry.enabled) {
    std::fprintf(stderr, "FATAL: %s: telemetry run reports enabled=false\n",
                 scenario);
    std::exit(1);
  }
  if (on.seconds > off.seconds * 1.05 + 0.05) {
    std::fprintf(stderr,
                 "FATAL: %s: telemetry overhead %.3fs on vs %.3fs off "
                 "exceeds 1.05x + 50ms\n",
                 scenario, on.seconds, off.seconds);
    std::exit(1);
  }
}

double phase_fraction(const mc::CheckerResult& r, util::Phase p) {
  return r.telemetry.wall_ns > 0
             ? static_cast<double>(
                   r.telemetry.phases[static_cast<std::size_t>(p)].total_ns) /
                   static_cast<double>(r.telemetry.wall_ns)
             : 0.0;
}

double hit_rate(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(lookups);
}

double fp_hit_rate(const mc::CheckerResult& r) {
  return hit_rate(r.memo.footprint_hits, r.memo.footprint_misses);
}

void check_hit_rate_floor(const char* scenario, const char* mode,
                          const mc::CheckerResult& on) {
  const std::uint64_t lookups =
      on.memo.footprint_hits + on.memo.footprint_misses;
  // Tiny searches have nothing to reuse (every footprint is computed
  // once); the floor is about sustained reuse on real state spaces.
  if (lookups < 500) return;
  const double rate = fp_hit_rate(on);
  if (rate < kFootprintHitRateFloor) {
    std::fprintf(stderr,
                 "FATAL: %s under %s: footprint memo hit rate %.3f below "
                 "floor %.2f (%llu hits / %llu lookups)\n",
                 scenario, mode, rate, kFootprintHitRateFloor,
                 static_cast<unsigned long long>(on.memo.footprint_hits),
                 static_cast<unsigned long long>(lookups));
    std::exit(1);
  }
}

/// The resume differential gate: cap the search mid-way (the halt writes a
/// final checkpoint), resume it in a fresh Checker, and require the
/// resumed run's totals to match the uninterrupted search exactly. Both
/// runs are sequential DFS, so identity must hold down to the transition
/// count.
void check_resume_identity(const apps::NamedScenario& ns,
                           mc::Reduction reduction, const char* mode,
                           const mc::CheckerResult& full) {
  const std::string path = "/tmp/bench_por_ckpt_" + ns.name;
  std::remove((path + ".a").c_str());
  std::remove((path + ".b").c_str());

  mc::CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.reduction = reduction;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;  // at-halt checkpoint only
  opt.max_transitions = full.transitions / 2 + 1;
  apps::Scenario s1 = ns.make();
  mc::Checker first(s1.config, opt, s1.properties);
  (void)first.run();

  opt.max_transitions = ~0ULL;
  opt.resume = true;
  apps::Scenario s2 = ns.make();
  mc::Checker second(s2.config, opt, s2.properties);
  const mc::CheckerResult resumed = second.run();

  if (!resumed.exhausted || resumed.transitions != full.transitions ||
      resumed.unique_states != full.unique_states ||
      resumed.quiescent_states != full.quiescent_states ||
      violation_key_set(resumed) != violation_key_set(full)) {
    std::fprintf(stderr,
                 "FATAL: %s under %s: interrupted+resumed run differs from "
                 "uninterrupted (transitions %llu vs %llu, unique %llu vs "
                 "%llu, resumed=%d exhausted=%d)\n",
                 ns.name.c_str(), mode,
                 static_cast<unsigned long long>(resumed.transitions),
                 static_cast<unsigned long long>(full.transitions),
                 static_cast<unsigned long long>(resumed.unique_states),
                 static_cast<unsigned long long>(full.unique_states),
                 resumed.durability.resumed ? 1 : 0,
                 resumed.exhausted ? 1 : 0);
    std::exit(1);
  }
  std::remove((path + ".a").c_str());
  std::remove((path + ".b").c_str());
}

/// One (scenario, reduction) cell: the same search with the memo on and
/// off. Counts are gate-checked identical; `on.seconds` vs `off.seconds`
/// is the layer's wall-time effect.
struct ModePair {
  mc::CheckerResult on, off;
};

struct Row {
  std::string name;
  std::string faults;
  ModePair none, sleep, persistent, source;
  /// Telemetry-on re-run of the NONE cell (the largest transition count,
  /// so per-transition instrumentation cost is most visible there).
  mc::CheckerResult telem;
};

/// Compact description of the fault classes a scenario arms and their
/// per-execution budgets ("-" when the scenario injects no faults). The
/// fault scenarios flow through every gate above like any other bundled
/// scenario — this column is what makes their fault surface visible in
/// the table and the committed JSON record.
std::string fault_desc(const mc::SystemConfig& cfg) {
  std::string out;
  const auto add = [&](const char* tag, bool on, std::uint32_t cap) {
    if (!on) return;
    if (!out.empty()) out += ',';
    out += tag;
    out += '=';
    out += cap == mc::kUnboundedFaults ? std::string("inf")
                                       : std::to_string(cap);
  };
  add("link", cfg.enable_link_faults, cfg.max_link_failures);
  add("chan", cfg.enable_ctrl_channel_faults, cfg.max_channel_losses);
  add("rst", cfg.enable_switch_restarts, cfg.max_switch_restarts);
  add("pkt", cfg.enable_channel_faults, cfg.max_packet_faults);
  return out.empty() ? "-" : out;
}

double ratio(const mc::CheckerResult& none, const mc::CheckerResult& red) {
  return red.transitions > 0
             ? static_cast<double>(none.transitions) /
                   static_cast<double>(red.transitions)
             : 0.0;
}

double wall_ratio(double base, double red) {
  return base > 0.0 ? red / base : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* progress_path = nullptr;
  int repeats = 1;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--progress") == 0) progress_path = argv[i + 1];
    if (std::strcmp(argv[i], "--repeat") == 0) {
      repeats = std::atoi(argv[i + 1]);
      if (repeats < 1) repeats = 1;
    }
  }
  if (progress_path != nullptr) std::remove(progress_path);

  std::vector<Row> rows;
  std::printf("%-22s %-14s %10s %9s %9s %9s %7s %7s %7s %7s %6s %6s %6s\n",
              "scenario", "faults", "t(NONE)", "t(S+P)", "t(SRC)", "s(NONE)",
              "s(S+P)", "s(SRC)", "noMemo", "xWALL", "fpHit", "xTEL",
              "apply%");
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    Row row;
    row.name = ns.name;
    row.faults = fault_desc(ns.make().config);
    auto pair = [&](mc::Reduction r) {
      return ModePair{run_scenario(ns, r, /*memo=*/true, repeats),
                      run_scenario(ns, r, /*memo=*/false, repeats)};
    };
    row.none = pair(mc::Reduction::kNone);
    row.sleep = pair(mc::Reduction::kSleep);
    row.persistent = pair(mc::Reduction::kSleepPersistent);
    row.source = pair(mc::Reduction::kSourceDpor);
    row.telem = run_scenario(ns, mc::Reduction::kNone, /*memo=*/true,
                             repeats, /*telemetry=*/true, progress_path);
    check_telemetry(ns.name.c_str(), row.telem, row.none.on);

    check_sound(ns.name.c_str(), "SLEEP", row.none.on, row.sleep.on);
    check_sound(ns.name.c_str(), "SLEEP+PERSISTENT", row.none.on,
                row.persistent.on);
    check_sound(ns.name.c_str(), "SOURCE-DPOR", row.none.on, row.source.on);
    check_memo_identical(ns.name.c_str(), "NONE", row.none.on, row.none.off);
    check_memo_identical(ns.name.c_str(), "SLEEP", row.sleep.on,
                         row.sleep.off);
    check_memo_identical(ns.name.c_str(), "SLEEP+PERSISTENT",
                         row.persistent.on, row.persistent.off);
    check_memo_identical(ns.name.c_str(), "SOURCE-DPOR", row.source.on,
                         row.source.off);
    check_hit_rate_floor(ns.name.c_str(), "SLEEP", row.sleep.on);
    check_hit_rate_floor(ns.name.c_str(), "SLEEP+PERSISTENT",
                         row.persistent.on);
    check_hit_rate_floor(ns.name.c_str(), "SOURCE-DPOR", row.source.on);
    check_resume_identity(ns, mc::Reduction::kNone, "NONE", row.none.on);
    check_resume_identity(ns, mc::Reduction::kSourceDpor, "SOURCE-DPOR",
                          row.source.on);
    if (row.source.on.transitions > row.persistent.on.transitions) {
      std::fprintf(
          stderr,
          "FATAL: %s: SOURCE-DPOR explored %llu transitions > "
          "SLEEP+PERSISTENT's %llu (replays %llu woken %llu)\n",
          ns.name.c_str(),
          static_cast<unsigned long long>(row.source.on.transitions),
          static_cast<unsigned long long>(row.persistent.on.transitions),
          static_cast<unsigned long long>(row.source.on.wakeup.replays),
          static_cast<unsigned long long>(row.source.on.wakeup.woken));
      std::exit(1);
    }

    std::printf(
        "%-22s %-14s %10llu %9llu %9llu %6.3fs %6.3fs %6.3fs %6.3fs %6.2fx "
        "%5.0f%% %5.2fx %5.0f%%\n",
        ns.name.c_str(), row.faults.c_str(),
        static_cast<unsigned long long>(row.none.on.transitions),
        static_cast<unsigned long long>(row.persistent.on.transitions),
        static_cast<unsigned long long>(row.source.on.transitions),
        row.none.on.seconds, row.persistent.on.seconds, row.source.on.seconds,
        row.source.off.seconds,
        wall_ratio(row.none.on.seconds, row.source.on.seconds),
        100.0 * fp_hit_rate(row.source.on),
        wall_ratio(row.none.on.seconds, row.telem.seconds),
        100.0 * phase_fraction(row.telem, util::Phase::kApply));
    rows.push_back(std::move(row));
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"por\",\n  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(util::peak_rss_bytes()));
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      auto emit = [&](const char* key, const ModePair& mp) {
        const mc::CheckerResult& cr = mp.on;
        std::fprintf(f,
                     "      \"%s\": {\"transitions\": %llu, \"unique_states\""
                     ": %llu, \"revisits\": %llu, \"violations\": %zu, "
                     "\"seconds\": %.4f, \"seconds_memo_off\": %.4f, "
                     "\"memo\": {\"footprint_hits\": %llu, "
                     "\"footprint_misses\": %llu, \"footprint_hit_rate\": "
                     "%.3f, \"discover_hits\": %llu, \"discover_misses\": "
                     "%llu, \"bytes\": %llu}},\n",
                     key, static_cast<unsigned long long>(cr.transitions),
                     static_cast<unsigned long long>(cr.unique_states),
                     static_cast<unsigned long long>(cr.revisits),
                     violation_key_set(cr).size(), cr.seconds,
                     mp.off.seconds,
                     static_cast<unsigned long long>(cr.memo.footprint_hits),
                     static_cast<unsigned long long>(
                         cr.memo.footprint_misses),
                     fp_hit_rate(cr),
                     static_cast<unsigned long long>(cr.memo.discover_hits),
                     static_cast<unsigned long long>(
                         cr.memo.discover_misses),
                     static_cast<unsigned long long>(cr.memo.bytes));
      };
      std::fprintf(f, "    {\n      \"name\": \"%s\",\n", r.name.c_str());
      std::fprintf(f, "      \"faults\": \"%s\",\n", r.faults.c_str());
      emit("none", r.none);
      emit("sleep", r.sleep);
      emit("sleep_persistent", r.persistent);
      emit("source_dpor", r.source);
      std::fprintf(f,
                   "      \"telemetry\": {\"seconds_on\": %.4f, "
                   "\"seconds_off\": %.4f, \"overhead\": %.3f, \"wall_ns\": "
                   "%llu, \"phases\": {",
                   r.telem.seconds, r.none.on.seconds,
                   wall_ratio(r.none.on.seconds, r.telem.seconds),
                   static_cast<unsigned long long>(r.telem.telemetry.wall_ns));
      for (std::size_t p = 0; p < util::kPhaseCount; ++p) {
        std::fprintf(f, "%s\"%s\": %llu", p == 0 ? "" : ", ",
                     util::phase_name(static_cast<util::Phase>(p)),
                     static_cast<unsigned long long>(
                         r.telem.telemetry.phases[p].total_ns));
      }
      std::fprintf(f, "}},\n");
      std::fprintf(
          f,
          "      \"wakeup\": {\"replays\": %llu, \"woken\": %llu, "
          "\"trees\": %llu, \"sequences\": %llu},\n",
          static_cast<unsigned long long>(r.source.on.wakeup.replays),
          static_cast<unsigned long long>(r.source.on.wakeup.woken),
          static_cast<unsigned long long>(r.source.on.wakeup.trees),
          static_cast<unsigned long long>(r.source.on.wakeup.sequences));
      std::fprintf(f,
                   "      \"reduction_sleep\": %.3f,\n"
                   "      \"reduction_sleep_persistent\": %.3f,\n"
                   "      \"reduction_source_dpor\": %.3f,\n"
                   "      \"wall_overhead_sleep_persistent\": %.3f,\n"
                   "      \"wall_overhead_source_dpor\": %.3f\n    }%s\n",
                   ratio(r.none.on, r.sleep.on),
                   ratio(r.none.on, r.persistent.on),
                   ratio(r.none.on, r.source.on),
                   wall_ratio(r.none.on.seconds, r.persistent.on.seconds),
                   wall_ratio(r.none.on.seconds, r.source.on.seconds),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("benchmark record written to %s\n", json_path);
  }
  return 0;
}
