// Partial-order-reduction benchmark: transitions explored with and
// without DPOR (sleep sets / sleep + persistent scheduling) on every
// bundled scenario, plus the soundness contract enforced at runtime —
// each reduced run must report the identical violation set and the
// identical unique-state count as the unreduced search, with fewer (or
// equal) transitions. The run aborts loudly on any mismatch.
//
// Usage: bench_por [--json out.json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;
using mc::violation_key_set;

namespace {

mc::CheckerResult run_scenario(apps::Scenario s, mc::Reduction reduction) {
  mc::CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.reduction = reduction;
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

void check_sound(const char* scenario, const char* mode,
                 const mc::CheckerResult& none, const mc::CheckerResult& red) {
  if (red.unique_states != none.unique_states ||
      red.quiescent_states != none.quiescent_states ||
      red.transitions > none.transitions ||
      violation_key_set(red) != violation_key_set(none)) {
    std::fprintf(stderr,
                 "FATAL: %s under %s is not sound vs NONE "
                 "(unique %llu vs %llu, transitions %llu vs %llu, "
                 "violations %zu vs %zu)\n",
                 scenario, mode,
                 static_cast<unsigned long long>(red.unique_states),
                 static_cast<unsigned long long>(none.unique_states),
                 static_cast<unsigned long long>(red.transitions),
                 static_cast<unsigned long long>(none.transitions),
                 violation_key_set(red).size(), violation_key_set(none).size());
    std::exit(1);
  }
}

struct Row {
  std::string name;
  mc::CheckerResult none, sleep, persistent;
};

double ratio(const mc::CheckerResult& none, const mc::CheckerResult& red) {
  return red.transitions > 0
             ? static_cast<double>(none.transitions) /
                   static_cast<double>(red.transitions)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  std::vector<Row> rows;
  std::printf("%-22s %12s %12s %12s %10s %8s %8s\n", "scenario", "unique",
              "t(NONE)", "t(SLEEP)", "t(S+P)", "xSLEEP", "xS+P");
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    Row row;
    row.name = ns.name;
    row.none = run_scenario(ns.make(), mc::Reduction::kNone);
    row.sleep = run_scenario(ns.make(), mc::Reduction::kSleep);
    row.persistent = run_scenario(ns.make(), mc::Reduction::kSleepPersistent);
    check_sound(ns.name.c_str(), "SLEEP", row.none, row.sleep);
    check_sound(ns.name.c_str(), "SLEEP+PERSISTENT", row.none,
                row.persistent);
    std::printf("%-22s %12llu %12llu %12llu %10llu %7.2fx %7.2fx\n",
                ns.name.c_str(),
                static_cast<unsigned long long>(row.none.unique_states),
                static_cast<unsigned long long>(row.none.transitions),
                static_cast<unsigned long long>(row.sleep.transitions),
                static_cast<unsigned long long>(row.persistent.transitions),
                ratio(row.none, row.sleep), ratio(row.none, row.persistent));
    rows.push_back(std::move(row));
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"por\",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      auto emit = [&](const char* key, const mc::CheckerResult& cr,
                      const char* tail) {
        std::fprintf(f,
                     "      \"%s\": {\"transitions\": %llu, \"unique_states\""
                     ": %llu, \"revisits\": %llu, \"violations\": %zu, "
                     "\"seconds\": %.4f}%s\n",
                     key, static_cast<unsigned long long>(cr.transitions),
                     static_cast<unsigned long long>(cr.unique_states),
                     static_cast<unsigned long long>(cr.revisits),
                     violation_key_set(cr).size(), cr.seconds, tail);
      };
      std::fprintf(f, "    {\n      \"name\": \"%s\",\n", r.name.c_str());
      emit("none", r.none, ",");
      emit("sleep", r.sleep, ",");
      emit("sleep_persistent", r.persistent, ",");
      std::fprintf(f,
                   "      \"reduction_sleep\": %.3f,\n"
                   "      \"reduction_sleep_persistent\": %.3f\n    }%s\n",
                   ratio(r.none, r.sleep), ratio(r.none, r.persistent),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("benchmark record written to %s\n", json_path);
  }
  return 0;
}
