// Parallel search throughput: states/sec vs worker-thread count on the
// pyswitch full-search and load-balancer scenarios.
//
// The 1-thread row uses the deterministic sequential driver (the exact
// seed DFS); rows with threads > 1 use the shared-deque parallel driver.
// All rows of one scenario must agree on transitions/unique states — the
// run aborts loudly if they do not (count-equivalence is the correctness
// contract of the parallel engine).
//
// Usage: bench_parallel [pings] [max_threads]
//   default pings = 3, max_threads = 8 (threads sweep 1,2,4,...).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

struct Row {
  unsigned threads;
  mc::CheckerResult r;
};

mc::CheckerResult run_scenario(apps::Scenario s, unsigned threads) {
  mc::CheckerOptions opt;
  opt.threads = threads;
  opt.stop_at_first_violation = false;
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

void report(const char* name, const std::vector<Row>& rows) {
  std::printf("\n== %s ==\n", name);
  std::printf("%8s %12s %12s %10s %12s %9s\n", "threads", "transitions",
              "unique", "seconds", "states/sec", "speedup");
  const double base = rows.front().r.seconds > 0
                          ? static_cast<double>(rows.front().r.unique_states) /
                                rows.front().r.seconds
                          : 0.0;
  for (const Row& row : rows) {
    const double sps =
        row.r.seconds > 0
            ? static_cast<double>(row.r.unique_states) / row.r.seconds
            : 0.0;
    std::printf("%8u %12llu %12llu %10.3f %12.0f %8.2fx\n", row.threads,
                static_cast<unsigned long long>(row.r.transitions),
                static_cast<unsigned long long>(row.r.unique_states),
                row.r.seconds, sps, base > 0 ? sps / base : 0.0);
  }
  for (const Row& row : rows) {
    if (row.r.transitions != rows.front().r.transitions ||
        row.r.unique_states != rows.front().r.unique_states) {
      std::fprintf(stderr,
                   "FATAL: %u-thread run not count-equivalent to 1-thread "
                   "(transitions %llu vs %llu, unique %llu vs %llu)\n",
                   row.threads,
                   static_cast<unsigned long long>(row.r.transitions),
                   static_cast<unsigned long long>(
                       rows.front().r.transitions),
                   static_cast<unsigned long long>(row.r.unique_states),
                   static_cast<unsigned long long>(
                       rows.front().r.unique_states));
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int pings = argc > 1 ? std::atoi(argv[1]) : 3;
  if (pings < 1) pings = 1;
  int max_threads_arg = argc > 2 ? std::atoi(argv[2]) : 8;
  if (max_threads_arg < 1) max_threads_arg = 1;
  const unsigned max_threads = static_cast<unsigned>(max_threads_arg);

  std::printf("parallel search scaling (pings=%d, threads up to %u)\n",
              pings, max_threads);

  {
    std::vector<Row> rows;
    for (unsigned t = 1; t <= max_threads; t *= 2) {
      rows.push_back(Row{t, run_scenario(apps::pyswitch_ping_chain(pings),
                                         t)});
    }
    report("pyswitch full search", rows);
  }

  {
    apps::LbScenarioOptions o;
    o.fix_release_packet = true;
    o.fix_install_before_delete = true;
    o.fix_discard_arp = true;
    o.fix_check_assignments = true;
    o.client_sends_arp = true;
    o.data_segments = 2;
    std::vector<Row> rows;
    for (unsigned t = 1; t <= max_threads; t *= 2) {
      rows.push_back(Row{t, run_scenario(apps::lb_scenario(o), t)});
    }
    report("load balancer full search", rows);
  }

  {
    std::printf("\n== pyswitch random-walk portfolio ==\n");
    std::printf("%8s %12s %12s %10s %12s\n", "threads", "transitions",
                "unique", "seconds", "walks/sec");
    for (unsigned t = 1; t <= max_threads; t *= 2) {
      auto s = apps::pyswitch_ping_chain(pings);
      mc::CheckerOptions opt;
      opt.threads = t;
      mc::Checker checker(s.config, opt, s.properties);
      const auto r = checker.random_walk(/*seed=*/7, /*walks=*/256,
                                         /*max_steps=*/400);
      std::printf("%8u %12llu %12llu %10.3f %12.0f\n", t,
                  static_cast<unsigned long long>(r.transitions),
                  static_cast<unsigned long long>(r.unique_states),
                  r.seconds, r.seconds > 0 ? 256.0 / r.seconds : 0.0);
    }
  }
  return 0;
}
