// Parallel search: the same state space explored four ways.
//
// Runs the pyswitch BUG-II scenario (Section 8.1) with the DFS, BFS and
// random-priority frontiers, then with 4 worker threads, and shows that
// every mode finds the violation — BFS with the shortest counterexample —
// while exhaustive runs agree on the state-space size.
#include <cstdio>
#include <string>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

void report(const char* title, const mc::CheckerResult& r) {
  std::printf("%-22s transitions=%-7llu unique=%-7llu %.3fs", title,
              static_cast<unsigned long long>(r.transitions),
              static_cast<unsigned long long>(r.unique_states), r.seconds);
  if (r.found_violation()) {
    std::printf("  VIOLATION %s (trace %zu steps)",
                r.violations.front().violation.property.c_str(),
                r.violations.front().trace.size());
  }
  std::printf("\n");
}

mc::CheckerResult run_bug2(mc::CheckerOptions opt) {
  auto s = apps::pyswitch_bug2();
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

}  // namespace

int main() {
  std::printf(
      "Exploring pyswitch BUG-II with pluggable frontiers and the parallel "
      "driver.\n\n");

  for (const mc::FrontierKind kind :
       {mc::FrontierKind::kDfs, mc::FrontierKind::kBfs,
        mc::FrontierKind::kRandom}) {
    mc::CheckerOptions opt;  // defaults otherwise: 1 thread — DFS is the
    opt.frontier = kind;     // seed search
    opt.frontier_seed = 7;
    const std::string title = mc::frontier_name(kind) + " (1 thread)";
    report(title.c_str(), run_bug2(opt));
  }
  {
    mc::CheckerOptions opt;
    opt.threads = 4;
    report("parallel (4 threads)", run_bug2(opt));
  }

  std::printf(
      "\nExhaustive count-equivalence on the bug-free 2-ping chain:\n");
  for (unsigned threads : {1u, 4u}) {
    auto s = apps::pyswitch_ping_chain(2);
    mc::CheckerOptions opt;
    opt.threads = threads;
    opt.stop_at_first_violation = false;
    mc::Checker checker(s.config, opt, s.properties);
    const auto r = checker.run();
    std::printf("  threads=%u: transitions=%llu unique=%llu exhausted=%s\n",
                threads, static_cast<unsigned long long>(r.transitions),
                static_cast<unsigned long long>(r.unique_states),
                r.exhausted ? "yes" : "no");
  }
  return 0;
}
