// Durable search: crash-safe checkpointed exploration from the command
// line.
//
// Runs any bundled scenario with the durability layer on: periodic
// A/B-slot checkpoints, cooperative SIGINT/SIGTERM handling, an optional
// memory budget, and --resume to continue a previous (killed or
// interrupted) run as if it had never stopped. The CI kill-and-resume
// smoke job drives this binary: start it with a tiny checkpoint
// interval, SIGKILL it mid-search, resume, and require totals identical
// to an uninterrupted run.
//
//   durable_search --scenario pyswitch-bug1 --checkpoint /tmp/ck \
//                  --interval 0.01 --handle-signals --json out.json
//   durable_search --scenario pyswitch-bug1 --checkpoint /tmp/ck --resume
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

const char* limit_name(mc::LimitReason r) {
  switch (r) {
    case mc::LimitReason::kNone: return "none";
    case mc::LimitReason::kTransitions: return "transitions";
    case mc::LimitReason::kUniqueStates: return "unique_states";
    case mc::LimitReason::kTime: return "time";
    case mc::LimitReason::kMemory: return "memory";
    case mc::LimitReason::kInterrupted: return "interrupted";
  }
  return "?";
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario NAME] [--checkpoint PATH] [--interval SECS]\n"
      "          [--resume] [--handle-signals] [--memory-budget BYTES]\n"
      "          [--threads N] [--frontier dfs|bfs|random]\n"
      "          [--reduction none|sleep|sleep-persistent|source-dpor]\n"
      "          [--store hash|full|collapsed] [--max-transitions N]\n"
      "          [--json PATH] [--list]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "pyswitch-bug1";
  std::string json_path;
  mc::CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.checkpoint_interval_seconds = 30.0;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& ns : apps::bundled_scenarios()) {
        std::printf("%s\n", ns.name.c_str());
      }
      return 0;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      scenario = v;
    } else if (arg == "--checkpoint") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.checkpoint_path = v;
    } else if (arg == "--interval") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.checkpoint_interval_seconds = std::atof(v);
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--handle-signals") {
      opt.handle_signals = true;
    } else if (arg == "--memory-budget") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.memory_budget_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.threads = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--max-transitions") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.max_transitions = std::strtoull(v, nullptr, 10);
    } else if (arg == "--frontier") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "dfs") == 0) opt.frontier = mc::FrontierKind::kDfs;
      else if (std::strcmp(v, "bfs") == 0) opt.frontier = mc::FrontierKind::kBfs;
      else if (std::strcmp(v, "random") == 0) opt.frontier = mc::FrontierKind::kRandom;
      else return usage(argv[0]);
    } else if (arg == "--reduction") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "none") == 0) opt.reduction = mc::Reduction::kNone;
      else if (std::strcmp(v, "sleep") == 0) opt.reduction = mc::Reduction::kSleep;
      else if (std::strcmp(v, "sleep-persistent") == 0) opt.reduction = mc::Reduction::kSleepPersistent;
      else if (std::strcmp(v, "source-dpor") == 0) opt.reduction = mc::Reduction::kSourceDpor;
      else return usage(argv[0]);
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--store") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "hash") == 0) opt.state_store = util::ShardedSeenSet::Mode::kHash;
      else if (std::strcmp(v, "full") == 0) opt.state_store = util::ShardedSeenSet::Mode::kFullState;
      else if (std::strcmp(v, "collapsed") == 0) opt.state_store = util::ShardedSeenSet::Mode::kCollapsed;
      else return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  apps::Scenario s;
  bool found = false;
  for (const auto& ns : apps::bundled_scenarios()) {
    if (ns.name == scenario) {
      s = ns.make();
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                 scenario.c_str());
    return 2;
  }

  mc::Checker checker(s.config, opt, s.properties);
  const mc::CheckerResult r = checker.run();

  std::printf(
      "%s: transitions=%llu unique=%llu revisits=%llu quiescent=%llu "
      "violations=%zu exhausted=%d limit=%s resumed=%d checkpoints=%llu "
      "%.3fs\n",
      scenario.c_str(), static_cast<unsigned long long>(r.transitions),
      static_cast<unsigned long long>(r.unique_states),
      static_cast<unsigned long long>(r.revisits),
      static_cast<unsigned long long>(r.quiescent_states),
      r.violations.size(), static_cast<int>(r.exhausted),
      limit_name(r.hit_limit), static_cast<int>(r.durability.resumed),
      static_cast<unsigned long long>(r.durability.checkpoints_written),
      r.seconds);

  // JSON record (the stdout line above is for humans): lets the CI smoke
  // job diff interrupted-and-resumed totals against an uninterrupted run
  // field by field.
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"scenario\": \"%s\",\n", scenario.c_str());
    std::fprintf(f, "  \"transitions\": %llu,\n",
                 static_cast<unsigned long long>(r.transitions));
    std::fprintf(f, "  \"unique_states\": %llu,\n",
                 static_cast<unsigned long long>(r.unique_states));
    std::fprintf(f, "  \"revisits\": %llu,\n",
                 static_cast<unsigned long long>(r.revisits));
    std::fprintf(f, "  \"quiescent_states\": %llu,\n",
                 static_cast<unsigned long long>(r.quiescent_states));
    std::fprintf(f, "  \"violations\": %zu,\n", r.violations.size());
    std::fprintf(f, "  \"exhausted\": %s,\n", r.exhausted ? "true" : "false");
    std::fprintf(f, "  \"limit\": \"%s\",\n", limit_name(r.hit_limit));
    std::fprintf(f, "  \"resumed\": %s,\n",
                 r.durability.resumed ? "true" : "false");
    std::fprintf(f, "  \"checkpoints_written\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.durability.checkpoints_written));
    std::fprintf(f, "  \"checkpoint_bytes\": %llu,\n",
                 static_cast<unsigned long long>(r.durability.checkpoint_bytes));
    std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(r.peak_rss_bytes));
    std::fprintf(f, "  \"seconds\": %.6f\n", r.seconds);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return 0;
}
