// Durable search: crash-safe checkpointed exploration from the command
// line.
//
// Runs any bundled scenario with the durability layer on: periodic
// A/B-slot checkpoints, cooperative SIGINT/SIGTERM handling, an optional
// memory budget, and --resume to continue a previous (killed or
// interrupted) run as if it had never stopped. The CI kill-and-resume
// smoke job drives this binary: start it with a tiny checkpoint
// interval, SIGKILL it mid-search, resume, and require totals identical
// to an uninterrupted run.
//
//   durable_search --scenario pyswitch-bug1 --checkpoint /tmp/ck \
//                  --interval 0.01 --handle-signals --json out.json
//   durable_search --scenario pyswitch-bug1 --checkpoint /tmp/ck --resume
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/trace.h"

using namespace nicemc;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario NAME] [--checkpoint PATH] [--interval SECS]\n"
      "          [--resume] [--handle-signals] [--memory-budget BYTES]\n"
      "          [--threads N] [--frontier dfs|bfs|random]\n"
      "          [--reduction none|sleep|sleep-persistent|source-dpor]\n"
      "          [--store hash|full|collapsed] [--max-transitions N]\n"
      "          [--telemetry] [--progress PATH] [--progress-interval SECS]\n"
      "          [--tty] [--trace-json PATH] [--trace-dot PATH]\n"
      "          [--json PATH] [--list] [--symmetry]\n"
      "          [--faults CLASSES] [--fault-budget N|unbounded]\n"
      "\n"
      "--symmetry merges states that differ only by a permutation of the\n"
      "scenario's declared interchangeable hosts (plus uid renumbering);\n"
      "forces --reduction none.\n"
      "\n"
      "fault injection (bounded environment faults, on top of whatever the\n"
      "scenario already enables):\n"
      "  --faults CLASSES       comma list of link,channel,restart,packet\n"
      "                         (or 'all'): enable those fault transition\n"
      "                         classes on the selected scenario\n"
      "  --fault-budget N       per-execution cap for every enabled class\n"
      "                         ('unbounded' removes the cap — searches may\n"
      "                         not terminate; that is your choice)\n"
      "\n"
      "observability (--telemetry; --progress/--tty imply it):\n"
      "  metric                 meaning\n"
      "  transitions_per_sec    expansion rate over the last interval\n"
      "  unique_per_sec         new canonical states per second\n"
      "  frontier               nodes currently queued for expansion\n"
      "  utilization            1 - idle fraction across bound workers\n"
      "  memo_*_hit_rate        footprint / discovery memo effectiveness\n"
      "  wakeup_replays/woken   source-DPOR wakeup-tree activity\n"
      "  engine_bytes           engine-accounted resident bytes\n"
      "  peak_rss_bytes         OS-reported high-water mark\n"
      "  phase_*_ns             per-phase time (clone, apply, enabled,\n"
      "                         footprint, property_check, remember,\n"
      "                         checkpoint, idle, other)\n"
      "--progress streams NDJSON snapshots of those metrics; a resumed run\n"
      "appends and continues the sequence numbers. --trace-json/--trace-dot\n"
      "export the first violation's counterexample trace.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "pyswitch-bug1";
  std::string json_path;
  std::string trace_json_path;
  std::string trace_dot_path;
  std::string faults;
  bool have_fault_budget = false;
  std::uint32_t fault_budget = 0;
  mc::CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.checkpoint_interval_seconds = 30.0;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& ns : apps::bundled_scenarios()) {
        std::printf("%s\n", ns.name.c_str());
      }
      return 0;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      scenario = v;
    } else if (arg == "--checkpoint") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.checkpoint_path = v;
    } else if (arg == "--interval") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.checkpoint_interval_seconds = std::atof(v);
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--symmetry") {
      opt.symmetry = true;
    } else if (arg == "--handle-signals") {
      opt.handle_signals = true;
    } else if (arg == "--memory-budget") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.memory_budget_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.threads = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--max-transitions") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.max_transitions = std::strtoull(v, nullptr, 10);
    } else if (arg == "--frontier") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "dfs") == 0) opt.frontier = mc::FrontierKind::kDfs;
      else if (std::strcmp(v, "bfs") == 0) opt.frontier = mc::FrontierKind::kBfs;
      else if (std::strcmp(v, "random") == 0) opt.frontier = mc::FrontierKind::kRandom;
      else return usage(argv[0]);
    } else if (arg == "--reduction") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "none") == 0) opt.reduction = mc::Reduction::kNone;
      else if (std::strcmp(v, "sleep") == 0) opt.reduction = mc::Reduction::kSleep;
      else if (std::strcmp(v, "sleep-persistent") == 0) opt.reduction = mc::Reduction::kSleepPersistent;
      else if (std::strcmp(v, "source-dpor") == 0) opt.reduction = mc::Reduction::kSourceDpor;
      else return usage(argv[0]);
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--telemetry") {
      opt.telemetry = true;
    } else if (arg == "--progress") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.telemetry = true;
      opt.progress_path = v;
    } else if (arg == "--progress-interval") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.progress_interval_seconds = std::atof(v);
    } else if (arg == "--tty") {
      opt.telemetry = true;
      opt.progress_tty = true;
    } else if (arg == "--trace-json") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      trace_json_path = v;
    } else if (arg == "--trace-dot") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      trace_dot_path = v;
    } else if (arg == "--faults") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      faults = v;
    } else if (arg == "--fault-budget") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      have_fault_budget = true;
      fault_budget = std::strcmp(v, "unbounded") == 0
                         ? mc::kUnboundedFaults
                         : static_cast<std::uint32_t>(
                               std::strtoul(v, nullptr, 10));
    } else if (arg == "--store") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "hash") == 0) opt.state_store = util::ShardedSeenSet::Mode::kHash;
      else if (std::strcmp(v, "full") == 0) opt.state_store = util::ShardedSeenSet::Mode::kFullState;
      else if (std::strcmp(v, "collapsed") == 0) opt.state_store = util::ShardedSeenSet::Mode::kCollapsed;
      else return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  apps::Scenario s;
  bool found = false;
  for (const auto& ns : apps::bundled_scenarios()) {
    if (ns.name == scenario) {
      s = ns.make();
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                 scenario.c_str());
    return 2;
  }

  if (!faults.empty()) {
    // Strict comma-separated parse: every token must name a known class
    // ('--faults chanel' used to be silently ignored as long as some
    // other token matched — a typo'd class is a misconfigured search).
    std::string rest = faults;
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string cls = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      if (cls == "all") {
        s.config.enable_link_faults = true;
        s.config.enable_ctrl_channel_faults = true;
        s.config.enable_switch_restarts = true;
        s.config.enable_channel_faults = true;
      } else if (cls == "link") {
        s.config.enable_link_faults = true;
      } else if (cls == "channel") {
        s.config.enable_ctrl_channel_faults = true;
      } else if (cls == "restart") {
        s.config.enable_switch_restarts = true;
      } else if (cls == "packet") {
        s.config.enable_channel_faults = true;
      } else {
        std::fprintf(stderr,
                     "unknown fault class '%s' in '--faults %s' "
                     "(known: link, channel, restart, packet, all)\n",
                     cls.c_str(), faults.c_str());
        return 2;
      }
    }
  }
  if (have_fault_budget) {
    s.config.max_link_failures = fault_budget;
    s.config.max_channel_losses = fault_budget;
    s.config.max_switch_restarts = fault_budget;
    s.config.max_packet_faults = fault_budget;
  }

  mc::Checker checker(s.config, opt, s.properties);
  const mc::CheckerResult r = checker.run();

  std::printf(
      "%s: transitions=%llu unique=%llu revisits=%llu quiescent=%llu "
      "violations=%zu exhausted=%d limit=%s resumed=%d checkpoints=%llu "
      "%.3fs\n",
      scenario.c_str(), static_cast<unsigned long long>(r.transitions),
      static_cast<unsigned long long>(r.unique_states),
      static_cast<unsigned long long>(r.revisits),
      static_cast<unsigned long long>(r.quiescent_states),
      r.violations.size(), static_cast<int>(r.exhausted),
      mc::limit_reason_name(r.hit_limit),
      static_cast<int>(r.durability.resumed),
      static_cast<unsigned long long>(r.durability.checkpoints_written),
      r.seconds);

  if (r.symmetry.enabled) {
    std::printf("symmetry: orbits=%u orbit_hosts=%u canonicalizations=%llu\n",
                r.symmetry.orbits, r.symmetry.orbit_hosts,
                static_cast<unsigned long long>(
                    r.symmetry.canonicalizations));
  }

  if (r.telemetry.enabled) {
    std::printf("phases:");
    for (std::size_t p = 0; p < util::kPhaseCount; ++p) {
      std::printf(" %s=%.3fs", util::phase_name(static_cast<util::Phase>(p)),
                  static_cast<double>(r.telemetry.phases[p].total_ns) / 1e9);
    }
    std::printf(" (workers=%llu wall=%.3fs snapshots=%llu)\n",
                static_cast<unsigned long long>(r.telemetry.workers),
                static_cast<double>(r.telemetry.wall_ns) / 1e9,
                static_cast<unsigned long long>(
                    r.telemetry.progress_snapshots));
    for (const std::string& line : r.telemetry.flight) {
      std::printf("flight: %s\n", line.c_str());
    }
  }

  if ((!trace_json_path.empty() || !trace_dot_path.empty()) &&
      !r.violations.empty()) {
    const mc::ViolationRecord& vr = r.violations.front();
    if (!trace_json_path.empty()) {
      std::FILE* f = std::fopen(trace_json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", trace_json_path.c_str());
        return 2;
      }
      const std::string body = mc::violation_trace_json(
          vr.violation.property, vr.violation.message, vr.trace);
      std::fwrite(body.data(), 1, body.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
    if (!trace_dot_path.empty()) {
      std::FILE* f = std::fopen(trace_dot_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", trace_dot_path.c_str());
        return 2;
      }
      const std::string body = mc::violation_trace_dot(
          vr.violation.property, vr.violation.message, vr.trace);
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
    }
  }

  // JSON record (the stdout line above is for humans): lets the CI smoke
  // job diff interrupted-and-resumed totals against an uninterrupted run
  // field by field.
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"scenario\": \"%s\",\n", scenario.c_str());
    std::fprintf(f, "  \"transitions\": %llu,\n",
                 static_cast<unsigned long long>(r.transitions));
    std::fprintf(f, "  \"unique_states\": %llu,\n",
                 static_cast<unsigned long long>(r.unique_states));
    std::fprintf(f, "  \"revisits\": %llu,\n",
                 static_cast<unsigned long long>(r.revisits));
    std::fprintf(f, "  \"quiescent_states\": %llu,\n",
                 static_cast<unsigned long long>(r.quiescent_states));
    std::fprintf(f, "  \"violations\": %zu,\n", r.violations.size());
    std::fprintf(f, "  \"exhausted\": %s,\n", r.exhausted ? "true" : "false");
    std::fprintf(f, "  \"limit\": \"%s\",\n",
                 mc::limit_reason_name(r.hit_limit));
    std::fprintf(f, "  \"resumed\": %s,\n",
                 r.durability.resumed ? "true" : "false");
    std::fprintf(f, "  \"checkpoints_written\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.durability.checkpoints_written));
    std::fprintf(f, "  \"checkpoint_bytes\": %llu,\n",
                 static_cast<unsigned long long>(r.durability.checkpoint_bytes));
    std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(r.peak_rss_bytes));
    std::fprintf(f, "  \"symmetry\": {\"enabled\": %s, \"orbits\": %u, "
                 "\"orbit_hosts\": %u, \"canonicalizations\": %llu},\n",
                 r.symmetry.enabled ? "true" : "false", r.symmetry.orbits,
                 r.symmetry.orbit_hosts,
                 static_cast<unsigned long long>(
                     r.symmetry.canonicalizations));
    std::fprintf(f, "  \"telemetry\": {\n");
    std::fprintf(f, "    \"enabled\": %s,\n",
                 r.telemetry.enabled ? "true" : "false");
    std::fprintf(f, "    \"workers\": %llu,\n",
                 static_cast<unsigned long long>(r.telemetry.workers));
    std::fprintf(f, "    \"wall_ns\": %llu,\n",
                 static_cast<unsigned long long>(r.telemetry.wall_ns));
    std::fprintf(f, "    \"progress_snapshots\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.telemetry.progress_snapshots));
    std::fprintf(f, "    \"phases\": {");
    for (std::size_t p = 0; p < util::kPhaseCount; ++p) {
      std::fprintf(f, "%s\"%s\": %llu", p == 0 ? "" : ", ",
                   util::phase_name(static_cast<util::Phase>(p)),
                   static_cast<unsigned long long>(
                       r.telemetry.phases[p].total_ns));
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "    \"flight\": [");
    for (std::size_t i = 0; i < r.telemetry.flight.size(); ++i) {
      std::string esc;
      for (const char c : r.telemetry.flight[i]) {
        if (c == '"' || c == '\\') esc += '\\';
        esc += c;
      }
      std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", esc.c_str());
    }
    std::fprintf(f, "]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"seconds\": %.6f\n", r.seconds);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return 0;
}
