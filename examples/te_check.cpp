// Testing the energy-efficient traffic-engineering app (paper Section 8.3).
//
// Exercises the full NICE pipeline including discover_stats: the port-stats
// handler is symbolically executed to find the load classes (utilization
// above/below threshold), which lets the checker explore both energy states
// without generating traffic.
#include <cstdio>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

mc::CheckerResult run(apps::Scenario& s,
                      mc::Strategy strategy = mc::Strategy::kPktSeqOnly) {
  mc::CheckerOptions opt;
  apps::set_strategy(s, opt, strategy);
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

void report(const char* title, const mc::CheckerResult& r) {
  std::printf("== %s ==\n", title);
  std::printf("  transitions: %llu, unique states: %llu, %.3f s\n",
              static_cast<unsigned long long>(r.transitions),
              static_cast<unsigned long long>(r.unique_states), r.seconds);
  std::printf("  symbolic discovery: %llu handler runs, %llu solver "
              "queries\n",
              static_cast<unsigned long long>(r.discovery.handler_runs),
              static_cast<unsigned long long>(r.discovery.solver_queries));
  if (!r.found_violation()) {
    std::printf("  clean (%s)\n\n", r.exhausted ? "exhausted" : "bounded");
    return;
  }
  const auto& v = r.violations.front();
  std::printf("  VIOLATION of %s:\n    %s\n", v.violation.property.c_str(),
              v.violation.message.c_str());
  for (const auto& line : mc::trace_lines(v.trace)) {
    std::printf("    %s\n", line.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("REsPoNse-style TE app on a 3-switch triangle: ingress S0, "
              "egress S1,\non-demand S2; flows split between always-on and "
              "on-demand paths by load.\n\n");

  {
    auto s = apps::te_scenario({});
    report("BUG-VIII: first packet of a flow never released", run(s));
  }
  {
    apps::TeScenarioOptions o;
    o.fix_release_packet = true;
    auto s = apps::te_scenario(o);
    report("BUG-IX: packet outraces rule installation at the 2nd switch",
           run(s));
    auto s2 = apps::te_scenario(o);
    report("BUG-IX hunted with the UNUSUAL strategy",
           run(s2, mc::Strategy::kUnusual));
  }
  {
    apps::TeScenarioOptions o;
    o.fix_release_packet = true;
    o.fix_handle_intermediate = true;
    o.stats_rounds = 1;
    o.check_routing_table = true;
    auto s = apps::te_scenario(o);
    report("BUG-X: all flows on on-demand routes under high load", run(s));
  }
  {
    apps::TeScenarioOptions o;
    o.fix_release_packet = true;
    o.fix_handle_intermediate = true;
    o.stats_rounds = 2;
    auto s = apps::te_scenario(o);
    report("BUG-XI: packets dropped when the load reduces", run(s));
  }
  {
    apps::TeScenarioOptions o;
    o.fix_release_packet = true;
    o.fix_handle_intermediate = true;
    o.fix_per_flow_table = true;
    o.fix_lookup_all_tables = true;
    o.stats_rounds = 2;
    auto s = apps::te_scenario(o);
    report("all fixes applied", run(s));
  }
  return 0;
}
