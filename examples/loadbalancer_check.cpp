// Testing the wildcard-rule server load balancer (paper Section 8.2).
//
// Walks the paper's debugging session: BUG-IV → fix → BUG-V → fix →
// BUG-VI (ARP) → fix → BUG-VII (duplicate SYN, FlowAffinity), showing the
// first counterexample trace for each, and the effect of the NO-DELAY
// strategy (which misses the BUG-V race).
#include <cstdio>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

mc::CheckerResult run(apps::Scenario& s,
                      mc::Strategy strategy = mc::Strategy::kPktSeqOnly) {
  mc::CheckerOptions opt;
  apps::set_strategy(s, opt, strategy);
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

void report(const char* title, const mc::CheckerResult& r,
            bool print_trace = true) {
  std::printf("== %s ==\n", title);
  std::printf("  transitions: %llu, unique states: %llu, %.3f s\n",
              static_cast<unsigned long long>(r.transitions),
              static_cast<unsigned long long>(r.unique_states), r.seconds);
  if (!r.found_violation()) {
    std::printf("  clean (%s)\n\n", r.exhausted ? "exhausted" : "bounded");
    return;
  }
  const auto& v = r.violations.front();
  std::printf("  VIOLATION of %s: %s\n", v.violation.property.c_str(),
              v.violation.message.c_str());
  if (print_trace) {
    for (const auto& line : mc::trace_lines(v.trace)) {
      std::printf("    %s\n", line.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Server load balancer: 1 client, 2 replicas, 1 switch, "
              "policy change mid-run.\n\n");

  {
    apps::LbScenarioOptions o;
    o.fix_install_before_delete = true;  // isolate BUG-IV
    auto s = apps::lb_scenario(o);
    report("BUG-IV: handler forgets the trigger packet", run(s));
  }
  {
    apps::LbScenarioOptions o;
    o.fix_release_packet = true;  // BUG-IV fixed; BUG-V remains
    auto s = apps::lb_scenario(o);
    report("BUG-V: delete-before-install reconfiguration race", run(s));
    auto s2 = apps::lb_scenario(o);
    report("BUG-V under NO-DELAY (race invisible in lock-step)",
           run(s2, mc::Strategy::kNoDelay), false);
  }
  {
    apps::LbScenarioOptions o;
    o.fix_release_packet = true;
    o.fix_install_before_delete = true;
    o.client_sends_arp = true;
    auto s = apps::lb_scenario(o);
    report("BUG-VI: proxied ARP request never freed from the buffer",
           run(s));
  }
  {
    apps::LbScenarioOptions o;
    o.fix_release_packet = true;
    o.fix_install_before_delete = true;
    o.client_can_dup_syn = true;
    o.data_segments = 2;
    o.check_flow_affinity = true;
    auto s = apps::lb_scenario(o);
    report("BUG-VII: duplicate SYN splits a connection across replicas",
           run(s));
  }
  {
    apps::LbScenarioOptions o;
    o.fix_release_packet = true;
    o.fix_install_before_delete = true;
    o.fix_discard_arp = true;
    o.fix_check_assignments = true;
    o.client_sends_arp = true;
    auto s = apps::lb_scenario(o);
    report("all fixes applied: NoForgottenPackets", run(s), false);
  }
  return 0;
}
