// Quickstart: test the MAC-learning switch of Figure 3 with NICE.
//
// Builds the single-switch topology with two hosts, turns on symbolic
// discovery of relevant packets, checks the StrictDirectPaths property, and
// prints the counterexample trace for BUG-II ("delayed direct path",
// paper Section 8.1) — then shows that the paper's correct fix passes.
#include <cstdio>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

namespace {

void report(const char* title, const mc::CheckerResult& r) {
  std::printf("== %s ==\n", title);
  std::printf("  transitions explored: %llu\n",
              static_cast<unsigned long long>(r.transitions));
  std::printf("  unique states:        %llu\n",
              static_cast<unsigned long long>(r.unique_states));
  std::printf("  wall clock:           %.3f s\n", r.seconds);
  if (!r.found_violation()) {
    std::printf("  no property violation — state space %s\n\n",
                r.exhausted ? "exhausted" : "search bounded");
    return;
  }
  const auto& v = r.violations.front();
  std::printf("  VIOLATION of %s:\n    %s\n",
              v.violation.property.c_str(), v.violation.message.c_str());
  std::printf("  counterexample trace (%zu steps):\n", v.trace.size());
  for (const auto& line : mc::trace_lines(v.trace)) {
    std::printf("    %s\n", line.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "NICE quickstart: MAC-learning switch (pyswitch), one switch, two "
      "hosts.\nSymbolic execution discovers the relevant packets; the model "
      "checker\nexplores event interleavings; StrictDirectPaths is the "
      "correctness property.\n\n");

  {
    auto scenario = apps::pyswitch_bug2();
    mc::Checker checker(scenario.config, mc::CheckerOptions{},
                        scenario.properties);
    report("pyswitch as shipped (BUG-II expected)", checker.run());
  }
  {
    apps::PySwitchOptions fix;
    fix.bug2 = apps::PySwitchOptions::Bug2Fix::kNaive;
    auto scenario = apps::pyswitch_bug2(fix);
    mc::Checker checker(scenario.config, mc::CheckerOptions{},
                        scenario.properties);
    report("naive fix: reverse rule installed after packet_out (still racy)",
           checker.run());
  }
  {
    apps::PySwitchOptions fix;
    fix.bug2 = apps::PySwitchOptions::Bug2Fix::kCorrect;
    auto scenario = apps::pyswitch_bug2(fix);
    mc::Checker checker(scenario.config, mc::CheckerOptions{},
                        scenario.properties);
    report("correct fix: reverse rule installed first", checker.run());
  }
  return 0;
}
