// NICE as a simulator (paper Section 1.3): instead of exhaustive search,
// perform seeded random walks through the system's behaviours — useful for
// quick smoke-testing an app before paying for a full model-checking run.
#include <cstdio>
#include <cstdlib>

#include "apps/scenarios.h"
#include "mc/checker.h"

using namespace nicemc;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const int walks = argc > 2 ? std::atoi(argv[2]) : 64;

  std::printf("Random-walk simulation of the buggy load balancer "
              "(seed=%llu, walks=%d)\n\n",
              static_cast<unsigned long long>(seed), walks);

  apps::LbScenarioOptions o;  // all bugs present
  auto s = apps::lb_scenario(o);
  mc::CheckerOptions opt;
  opt.stop_at_first_violation = true;
  mc::Checker checker(s.config, opt, s.properties);
  const mc::CheckerResult r =
      checker.random_walk(seed, walks, /*max_steps=*/400);

  std::printf("steps simulated: %llu, distinct states seen: %llu\n",
              static_cast<unsigned long long>(r.transitions),
              static_cast<unsigned long long>(r.unique_states));
  if (r.found_violation()) {
    const auto& v = r.violations.front();
    std::printf("violation of %s found by random walk:\n  %s\n",
                v.violation.property.c_str(), v.violation.message.c_str());
    std::printf("replayable trace (%zu steps):\n", v.trace.size());
    for (const auto& line : mc::trace_lines(v.trace)) {
      std::printf("  %s\n", line.c_str());
    }
  } else {
    std::printf("no violation encountered — random walks are cheap but "
                "incomplete;\nthe exhaustive checker finds the bug "
                "deterministically.\n");
  }
  return 0;
}
