// Property-style sweeps over the symbolic-execution stack: randomized
// solver queries validated against brute force, concolic exploration of
// randomized branching programs validated against exhaustive enumeration
// of feasible paths.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "sym/concolic.h"
#include "sym/solver.h"
#include "util/hash.h"

namespace nicemc::sym {
namespace {

// ---- solver sweeps: random domain + comparison conjunctions ----

class SolverSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverSweepTest, ModelsSatisfyAndUnsatAgreesWithBruteForce) {
  util::SplitMix64 rng(GetParam());
  constexpr unsigned kW = 8;
  ExprArena a;
  const ExprRef x = a.var(0, kW);
  const ExprRef y = a.var(1, kW);

  // Random candidate domain for x, random comparisons between x, y, const.
  std::vector<std::uint64_t> dom;
  const std::size_t dom_size = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < dom_size; ++i) dom.push_back(rng.next_below(256));
  std::vector<ExprRef> conj = {a.any_of(x, dom)};
  const std::size_t n_cmps = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < n_cmps; ++i) {
    const ExprRef lhs = rng.next_below(2) == 0 ? x : y;
    const ExprRef rhs = rng.next_below(2) == 0
                            ? (lhs == x ? y : x)
                            : a.constant(rng.next_below(256), kW);
    const Op op = std::array{Op::kEq, Op::kNe, Op::kUlt,
                             Op::kUle}[rng.next_below(4)];
    conj.push_back(a.cmp(op, lhs, rhs));
  }

  const ExprRef all = a.all_of(conj);
  bool brute = false;
  for (std::uint64_t xv = 0; xv < 256 && !brute; ++xv) {
    for (std::uint64_t yv = 0; yv < 256; ++yv) {
      if (a.eval(all, {xv, yv}) == 1) {
        brute = true;
        break;
      }
    }
  }
  Solver solver(a);
  const auto model = solver.solve(conj);
  ASSERT_EQ(model.has_value(), brute);
  if (model) {
    std::vector<std::uint64_t> asg(2, 0);
    for (const auto& [var, val] : *model) asg[var] = val;
    EXPECT_EQ(a.eval(all, asg), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSweepTest,
                         ::testing::Range<std::uint64_t>(500, 560));

// ---- concolic sweeps: random branching programs over 2 small inputs ----

struct BranchProgram {
  // Each node: compare var[v] against constant c; the program descends a
  // random binary tree of depth <= 3.
  struct Node {
    int var;
    std::uint64_t c;
    Op op;
  };
  std::vector<Node> nodes;  // heap layout: children of i at 2i+1 / 2i+2

  void run(const Value& v0, const Value& v1) const {
    std::size_t i = 0;
    while (i < nodes.size()) {
      const Node& n = nodes[i];
      const Value& v = n.var == 0 ? v0 : v1;
      bool taken = false;
      switch (n.op) {
        case Op::kEq: taken = (v == n.c); break;
        case Op::kUlt: taken = (v < n.c); break;
        default: taken = (v != n.c); break;
      }
      i = taken ? 2 * i + 1 : 2 * i + 2;
    }
  }

  /// Path signature under concrete inputs (for brute-force enumeration).
  std::uint64_t path_of(std::uint64_t x0, std::uint64_t x1) const {
    std::size_t i = 0;
    std::uint64_t sig = 1;
    while (i < nodes.size()) {
      const Node& n = nodes[i];
      const std::uint64_t v = n.var == 0 ? x0 : x1;
      bool taken = false;
      switch (n.op) {
        case Op::kEq: taken = v == n.c; break;
        case Op::kUlt: taken = v < n.c; break;
        default: taken = v != n.c; break;
      }
      sig = sig * 2 + (taken ? 1 : 0);
      i = taken ? 2 * i + 1 : 2 * i + 2;
    }
    return sig;
  }
};

class ConcolicSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConcolicSweepTest, DiscoversExactlyTheFeasiblePaths) {
  util::SplitMix64 rng(GetParam());
  constexpr unsigned kW = 5;  // 32 values per variable: brute-forceable
  BranchProgram prog;
  const std::size_t n_nodes = 3 + rng.next_below(4);  // depth <= 3
  for (std::size_t i = 0; i < n_nodes; ++i) {
    prog.nodes.push_back(BranchProgram::Node{
        static_cast<int>(rng.next_below(2)), rng.next_below(32),
        std::array{Op::kEq, Op::kUlt, Op::kNe}[rng.next_below(3)]});
  }

  // Brute force: the set of feasible path signatures.
  std::set<std::uint64_t> feasible;
  for (std::uint64_t x0 = 0; x0 < 32; ++x0) {
    for (std::uint64_t x1 = 0; x1 < 32; ++x1) {
      feasible.insert(prog.path_of(x0, x1));
    }
  }

  // Concolic exploration must find one representative per feasible path.
  Concolic engine;
  const VarHandle v0 = engine.add_var("x0", kW, 0);
  const VarHandle v1 = engine.add_var("x1", kW, 0);
  const auto results = engine.explore(
      [&](const Inputs& in) { prog.run(in[v0], in[v1]); });

  std::set<std::uint64_t> discovered;
  for (const Assignment& asg : results) {
    discovered.insert(prog.path_of(asg[0], asg[1]));
  }
  EXPECT_EQ(discovered, feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcolicSweepTest,
                         ::testing::Range<std::uint64_t>(900, 960));

}  // namespace
}  // namespace nicemc::sym
