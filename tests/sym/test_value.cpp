#include "sym/value.h"

#include <gtest/gtest.h>

namespace nicemc::sym {
namespace {

TEST(Value, ConcreteArithmeticOutsideTracer) {
  const Value a(200, 8);
  const Value b(100, 8);
  EXPECT_EQ((a + b).concrete(), 44u);  // wraps at width 8
  EXPECT_EQ((a - b).concrete(), 100u);
  EXPECT_EQ((a & b).concrete(), 200u & 100u);
  EXPECT_EQ((a | b).concrete(), 200u | 100u);
  EXPECT_EQ((a ^ b).concrete(), 200u ^ 100u);
  EXPECT_FALSE((a + b).symbolic());
}

TEST(Value, ComparisonsYieldConcreteBools) {
  const Value a(5, 16);
  const Value b(9, 16);
  EXPECT_TRUE(static_cast<bool>(a < b));
  EXPECT_TRUE(static_cast<bool>(a != b));
  EXPECT_FALSE(static_cast<bool>(a == b));
  EXPECT_TRUE(static_cast<bool>(b >= a));
}

TEST(Value, WidthMaskingOnConstruction) {
  const Value v(0x1ff, 8);
  EXPECT_EQ(v.concrete(), 0xffu);
  EXPECT_EQ(v.width(), 8u);
}

TEST(Value, ExtractAndShifts) {
  const Value mac(0x010203040506ULL, 48);
  EXPECT_EQ(mac.lshr(40).concrete(), 0x01u);
  EXPECT_EQ(mac.extract(0, 8).concrete(), 0x06u);
  EXPECT_EQ(mac.extract(40, 8).concrete(), 0x01u);
  EXPECT_EQ(Value(1, 8).shl(3).concrete(), 8u);
  EXPECT_EQ(Value(0xff, 8).zext(16).width(), 16u);
}

TEST(Value, TracerRecordsBranchesWithDirection) {
  ExprArena arena;
  Tracer tracer(arena);
  Tracer::Activation act(tracer);

  const Value v = Value::input(0, 8, 42);
  EXPECT_TRUE(v.symbolic());
  if (v == 42) {
    // taken
  }
  if (v < 10) {
    ADD_FAILURE() << "42 < 10 should be false";
  }
  ASSERT_EQ(tracer.path().size(), 2u);
  EXPECT_TRUE(tracer.path()[0].taken);
  EXPECT_FALSE(tracer.path()[1].taken);
  // The recorded conditions evaluate consistently with the directions.
  EXPECT_EQ(arena.eval(tracer.path()[0].cond, {42}), 1u);
  EXPECT_EQ(arena.eval(tracer.path()[1].cond, {42}), 0u);
}

TEST(Value, NoBranchRecordedForConcreteComparisons) {
  ExprArena arena;
  Tracer tracer(arena);
  Tracer::Activation act(tracer);
  const Value a(1, 8);
  const Value b(2, 8);
  if (a < b) {
    // concrete compare: no symbolic operand, nothing recorded
  }
  EXPECT_TRUE(tracer.path().empty());
}

TEST(Value, MixedSymbolicConcreteBuildsExpressions) {
  ExprArena arena;
  Tracer tracer(arena);
  Tracer::Activation act(tracer);
  const Value v = Value::input(0, 16, 7);
  const Value sum = v + Value(3, 16);
  EXPECT_TRUE(sum.symbolic());
  EXPECT_EQ(sum.concrete(), 10u);
  EXPECT_EQ(arena.eval(sum.expr(), {7}), 10u);
  EXPECT_EQ(arena.eval(sum.expr(), {90}), 93u);
}

TEST(Value, BoolNegationPreservesExpression) {
  ExprArena arena;
  Tracer tracer(arena);
  Tracer::Activation act(tracer);
  const Value v = Value::input(0, 8, 5);
  const Bool eq = (v == 5);
  const Bool neq = !eq;
  EXPECT_FALSE(neq.concrete());
  EXPECT_TRUE(neq.symbolic());
  EXPECT_EQ(arena.eval(neq.expr(), {6}), 1u);
}

TEST(Value, ShortCircuitOperatorsRecordNestedBranches) {
  ExprArena arena;
  Tracer tracer(arena);
  Tracer::Activation act(tracer);
  const Value v = Value::input(0, 8, 5);
  const Value w = Value::input(1, 8, 9);
  // C++ && on Bool converts each side to bool in turn — exactly the
  // nested-if decomposition of composite predicates the paper performs.
  if ((v == 5) && (w == 9)) {
    // both branches recorded
  }
  EXPECT_EQ(tracer.path().size(), 2u);
}

TEST(Value, ActivationRestoresPreviousTracer) {
  ExprArena arena;
  Tracer outer(arena);
  Tracer inner(arena);
  EXPECT_EQ(Tracer::current(), nullptr);
  {
    Tracer::Activation a1(outer);
    EXPECT_EQ(Tracer::current(), &outer);
    {
      Tracer::Activation a2(inner);
      EXPECT_EQ(Tracer::current(), &inner);
    }
    EXPECT_EQ(Tracer::current(), &outer);
  }
  EXPECT_EQ(Tracer::current(), nullptr);
}

}  // namespace
}  // namespace nicemc::sym
