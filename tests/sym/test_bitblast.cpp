// Cross-validation of the bit-blaster: for randomly generated small
// expressions, any model the SAT solver finds must satisfy the expression
// under direct evaluation, and brute-force satisfiability must agree.
#include "sym/bitblast.h"

#include <gtest/gtest.h>

#include "sym/sat.h"
#include "util/hash.h"

namespace nicemc::sym {
namespace {

/// Solve a single width-1 expression; returns the model values of vars
/// 0..num_vars-1 if SAT.
std::optional<std::vector<std::uint64_t>> solve_expr(const ExprArena& a,
                                                     ExprRef e,
                                                     std::size_t num_vars) {
  SatSolver sat;
  BitBlaster bb(a, sat);
  sat.add_unit(bb.bit1(e));
  if (sat.solve() == SatResult::kUnsat) return std::nullopt;
  std::vector<std::uint64_t> model(num_vars, 0);
  for (const auto& [var, lits] : bb.input_bits()) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      if (sat.model_value(lit_var(lits[i])) != lit_sign(lits[i])) {
        v |= 1ULL << i;
      }
    }
    if (var < num_vars) model[var] = v;
  }
  return model;
}

TEST(BitBlast, EqualityFindsTheOnlyModel) {
  ExprArena a;
  const ExprRef v = a.var(0, 16);
  const ExprRef e = a.cmp(Op::kEq, v, a.constant(0xbeef, 16));
  const auto model = solve_expr(a, e, 1);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ((*model)[0], 0xbeefu);
}

TEST(BitBlast, AdditionCarriesAcrossBytes) {
  ExprArena a;
  const ExprRef v = a.var(0, 16);
  const ExprRef sum = a.bin(Op::kAdd, v, a.constant(1, 16));
  const ExprRef e = a.cmp(Op::kEq, sum, a.constant(0x0100, 16));
  const auto model = solve_expr(a, e, 1);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ((*model)[0], 0xffu);
}

TEST(BitBlast, SubtractionIsAddOfComplement) {
  ExprArena a;
  const ExprRef v = a.var(0, 8);
  const ExprRef diff = a.bin(Op::kSub, a.constant(5, 8), v);
  const ExprRef e = a.cmp(Op::kEq, diff, a.constant(250, 8));  // wraps
  const auto model = solve_expr(a, e, 1);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ((*model)[0], 11u);
}

TEST(BitBlast, UnsignedComparisonBoundaries) {
  ExprArena a;
  const ExprRef v = a.var(0, 8);
  // v < 1 has exactly one solution: 0.
  const auto m1 = solve_expr(a, a.cmp(Op::kUlt, v, a.constant(1, 8)), 1);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ((*m1)[0], 0u);
  // v < 0 is unsatisfiable.
  EXPECT_FALSE(
      solve_expr(a, a.cmp(Op::kUlt, v, a.constant(0, 8)), 1).has_value());
  // 255 <= v has exactly one solution: 255.
  const auto m2 =
      solve_expr(a, a.cmp(Op::kUle, a.constant(255, 8), v), 1);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ((*m2)[0], 255u);
}

TEST(BitBlast, IteSelectsBranch) {
  ExprArena a;
  const ExprRef v = a.var(0, 8);
  const ExprRef w = a.var(1, 8);
  const ExprRef cond = a.cmp(Op::kEq, v, a.constant(1, 8));
  const ExprRef ite = a.ite(cond, a.constant(10, 8), a.constant(20, 8));
  // ite == 10 forces v == 1.
  const ExprRef e =
      a.bin(Op::kAnd, a.cmp(Op::kEq, ite, a.constant(10, 8)),
            a.cmp(Op::kEq, w, a.constant(3, 8)));
  const auto model = solve_expr(a, e, 2);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ((*model)[0], 1u);
  EXPECT_EQ((*model)[1], 3u);
}

/// Property sweep: random expression trees over two 6-bit variables —
/// solver verdict must match brute force, and models must evaluate true.
class BitBlastRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

ExprRef random_bv_expr(ExprArena& a, util::SplitMix64& rng, int depth) {
  constexpr unsigned kW = 6;
  if (depth == 0) {
    if (rng.next_below(2) == 0) {
      return a.var(static_cast<VarId>(rng.next_below(2)), kW);
    }
    return a.constant(rng.next_below(1ULL << kW), kW);
  }
  const ExprRef x = random_bv_expr(a, rng, depth - 1);
  const ExprRef y = random_bv_expr(a, rng, depth - 1);
  switch (rng.next_below(7)) {
    case 0: return a.bin(Op::kAnd, x, y);
    case 1: return a.bin(Op::kOr, x, y);
    case 2: return a.bin(Op::kXor, x, y);
    case 3: return a.bin(Op::kAdd, x, y);
    case 4: return a.bin(Op::kSub, x, y);
    case 5: return a.not_of(x);
    default: return a.lshr(x, static_cast<unsigned>(rng.next_below(kW)));
  }
}

TEST_P(BitBlastRandomTest, SolverAgreesWithBruteForce) {
  util::SplitMix64 rng(GetParam());
  ExprArena a;
  const ExprRef lhs = random_bv_expr(a, rng, 3);
  const ExprRef rhs = random_bv_expr(a, rng, 3);
  const Op cmp = rng.next_below(2) == 0 ? Op::kEq : Op::kUlt;
  const ExprRef e = a.cmp(cmp, lhs, rhs);

  bool brute_sat = false;
  for (std::uint64_t v0 = 0; v0 < 64 && !brute_sat; ++v0) {
    for (std::uint64_t v1 = 0; v1 < 64; ++v1) {
      if (a.eval(e, {v0, v1}) == 1) {
        brute_sat = true;
        break;
      }
    }
  }
  const auto model = solve_expr(a, e, 2);
  EXPECT_EQ(model.has_value(), brute_sat);
  if (model) {
    EXPECT_EQ(a.eval(e, *model), 1u)
        << "solver model does not satisfy the formula";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitBlastRandomTest,
                         ::testing::Range<std::uint64_t>(100, 160));

}  // namespace
}  // namespace nicemc::sym
