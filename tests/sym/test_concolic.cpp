// The concolic explorer must discover exactly one representative input per
// feasible control-flow path of the explored function — the core of NICE's
// discover_packets (paper Section 3).
#include "sym/concolic.h"

#include <gtest/gtest.h>

#include <map>

namespace nicemc::sym {
namespace {

TEST(Concolic, SingleBranchYieldsTwoPaths) {
  Concolic engine;
  const VarHandle x = engine.add_var("x", 8, 0);
  const auto results = engine.explore([&](const Inputs& in) {
    if (in[x] == 42) {
      // path A
    }
  });
  ASSERT_EQ(results.size(), 2u);
  // One representative per side of the branch.
  bool saw_42 = false;
  bool saw_other = false;
  for (const auto& asg : results) {
    (asg[0] == 42 ? saw_42 : saw_other) = true;
  }
  EXPECT_TRUE(saw_42);
  EXPECT_TRUE(saw_other);
}

TEST(Concolic, NestedBranchesYieldAllFeasiblePaths) {
  Concolic engine;
  const VarHandle x = engine.add_var("x", 8, 0);
  const VarHandle y = engine.add_var("y", 8, 0);
  const auto results = engine.explore([&](const Inputs& in) {
    if (in[x] < 10) {
      if (in[y] == 3) {
        // path 1
      }  // path 2
    } else {
      if (in[y] == in[x]) {
        // path 3
      }  // path 4
    }
  });
  EXPECT_EQ(results.size(), 4u);
}

TEST(Concolic, InfeasiblePathIsNotExplored) {
  Concolic engine;
  const VarHandle x = engine.add_var("x", 8, 0);
  const auto results = engine.explore([&](const Inputs& in) {
    if (in[x] < 10) {
      if (in[x] > 20) {
        ADD_FAILURE() << "x<10 && x>20 is infeasible";
      }
    }
  });
  // Paths: x>=10; x<10 (inner else). The contradictory path must not run.
  EXPECT_EQ(results.size(), 2u);
}

TEST(Concolic, DomainRestrictsRepresentatives) {
  Concolic engine;
  const VarHandle x = engine.add_var("x", 48, 0x0a);
  engine.restrict_to(x, {0x0a, 0x0b, 0xff});
  const auto results = engine.explore([&](const Inputs& in) {
    if (in[x] == 0x0b) {
      // one class
    }
  });
  ASSERT_EQ(results.size(), 2u);
  for (const auto& asg : results) {
    EXPECT_TRUE(asg[0] == 0x0a || asg[0] == 0x0b || asg[0] == 0xff);
  }
}

TEST(Concolic, TableScanDiscoversOneClassPerEntry) {
  // The MAC-table pattern: lookup of a symbolic key against concrete keys
  // must yield one representative per entry plus the not-found class.
  const std::map<std::uint64_t, std::uint64_t> table = {{5, 100}, {9, 200}};
  Concolic engine;
  const VarHandle key = engine.add_var("key", 16, 0);
  const auto results = engine.explore([&](const Inputs& in) {
    const Value k = in[key];
    for (const auto& [kk, vv] : table) {
      if (k == Value(kk, 16)) return;
    }
  });
  ASSERT_EQ(results.size(), 3u);
  std::set<std::uint64_t> reps;
  for (const auto& asg : results) reps.insert(asg[0]);
  EXPECT_TRUE(reps.contains(5));
  EXPECT_TRUE(reps.contains(9));
}

TEST(Concolic, MaxPathsBoundsExploration) {
  ConcolicConfig cfg;
  cfg.max_paths = 3;
  Concolic engine(cfg);
  const VarHandle x = engine.add_var("x", 8, 0);
  const auto results = engine.explore([&](const Inputs& in) {
    // 256 feasible paths without the bound.
    for (std::uint64_t v = 0; v < 255; ++v) {
      if (in[x] == v) return;
    }
  });
  EXPECT_EQ(results.size(), 3u);
}

TEST(Concolic, DeterministicAcrossRuns) {
  auto run_once = []() {
    Concolic engine;
    const VarHandle x = engine.add_var("x", 8, 7);
    const VarHandle y = engine.add_var("y", 8, 1);
    return engine.explore([&](const Inputs& in) {
      if (in[x] < in[y]) {
        if (in[x] == 0) return;
      }
    });
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Concolic, MulticastBitClassesLikePySwitch) {
  // Reproduce the Figure 3 line 4 pattern: branch on the multicast bit of
  // a 48-bit MAC restricted to a topology domain.
  Concolic engine;
  const VarHandle src = engine.add_var("eth_src", 48, 0x00aa0000000aULL);
  engine.restrict_to(src, {0x00aa0000000aULL, 0xffffffffffffULL});
  const auto results = engine.explore([&](const Inputs& in) {
    const Value v = in[src];
    if (v.lshr(40).extract(0, 1) == Value(1, 1)) {
      // multicast source: not learned
    }
  });
  ASSERT_EQ(results.size(), 2u);
  std::set<std::uint64_t> reps;
  for (const auto& asg : results) reps.insert(asg[0]);
  EXPECT_TRUE(reps.contains(0x00aa0000000aULL));
  EXPECT_TRUE(reps.contains(0xffffffffffffULL));
}

TEST(Concolic, StatsCountRunsAndQueries) {
  Concolic engine;
  const VarHandle x = engine.add_var("x", 8, 0);
  (void)engine.explore([&](const Inputs& in) {
    if (in[x] == 1) {
    }
  });
  EXPECT_GE(engine.stats().runs, 2u);
  EXPECT_EQ(engine.stats().paths, 2u);
  EXPECT_GE(engine.stats().solver_queries, 1u);
}

}  // namespace
}  // namespace nicemc::sym
