#include "sym/sat.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/hash.h"

namespace nicemc::sym {
namespace {

TEST(Sat, EmptyInstanceIsSat) {
  SatSolver s;
  EXPECT_EQ(s.solve(), SatResult::kSat);
}

TEST(Sat, SingleUnitClause) {
  SatSolver s;
  const SatVar v = s.new_var();
  s.add_unit(make_lit(v, false));
  ASSERT_EQ(s.solve(), SatResult::kSat);
  EXPECT_TRUE(s.model_value(v));
}

TEST(Sat, ContradictingUnitsAreUnsat) {
  SatSolver s;
  const SatVar v = s.new_var();
  s.add_unit(make_lit(v, false));
  s.add_unit(make_lit(v, true));
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver s;
  s.new_var();
  s.add_clause({});
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, TautologicalClauseIsDropped) {
  SatSolver s;
  const SatVar v = s.new_var();
  s.add_clause({make_lit(v, false), make_lit(v, true)});
  EXPECT_EQ(s.num_clauses(), 0u);
  EXPECT_EQ(s.solve(), SatResult::kSat);
}

TEST(Sat, UnitPropagationChain) {
  // (a) ∧ (¬a ∨ b) ∧ (¬b ∨ c) forces a=b=c=true.
  SatSolver s;
  const SatVar a = s.new_var();
  const SatVar b = s.new_var();
  const SatVar c = s.new_var();
  s.add_unit(make_lit(a, false));
  s.add_binary(make_lit(a, true), make_lit(b, false));
  s.add_binary(make_lit(b, true), make_lit(c, false));
  ASSERT_EQ(s.solve(), SatResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
}

TEST(Sat, RequiresBacktracking) {
  // XOR-like constraints that defeat pure propagation.
  SatSolver s;
  const SatVar a = s.new_var();
  const SatVar b = s.new_var();
  // a ≠ b: (a ∨ b) ∧ (¬a ∨ ¬b)
  s.add_binary(make_lit(a, false), make_lit(b, false));
  s.add_binary(make_lit(a, true), make_lit(b, true));
  ASSERT_EQ(s.solve(), SatResult::kSat);
  EXPECT_NE(s.model_value(a), s.model_value(b));
}

TEST(Sat, PigeonholeTwoIntoOneIsUnsat) {
  // Two pigeons, one hole: p1h1, p2h1; both must be placed; not both.
  SatSolver s;
  const SatVar p1 = s.new_var();
  const SatVar p2 = s.new_var();
  s.add_unit(make_lit(p1, false));
  s.add_unit(make_lit(p2, false));
  s.add_binary(make_lit(p1, true), make_lit(p2, true));
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, PigeonholeThreeIntoTwoIsUnsat) {
  // var p_ij: pigeon i in hole j; 3 pigeons, 2 holes.
  SatSolver s;
  SatVar p[3][2];
  for (auto& row : p) {
    for (SatVar& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) {
    s.add_binary(make_lit(p[i][0], false), make_lit(p[i][1], false));
  }
  for (int j = 0; j < 2; ++j) {
    for (int i1 = 0; i1 < 3; ++i1) {
      for (int i2 = i1 + 1; i2 < 3; ++i2) {
        s.add_binary(make_lit(p[i1][j], true), make_lit(p[i2][j], true));
      }
    }
  }
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

/// Brute-force checker for randomized cross-validation.
bool brute_force_sat(std::size_t num_vars,
                     const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint64_t m = 0; m < (1ULL << num_vars); ++m) {
    bool all = true;
    for (const auto& c : clauses) {
      bool any = false;
      for (Lit l : c) {
        const bool val = ((m >> lit_var(l)) & 1) != 0;
        if (val != lit_sign(l)) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class SatRandom3SatTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatRandom3SatTest, AgreesWithBruteForce) {
  util::SplitMix64 rng(GetParam());
  constexpr std::size_t kVars = 8;
  const std::size_t num_clauses = 10 + rng.next_below(30);
  std::vector<std::vector<Lit>> clauses;
  SatSolver s;
  for (std::size_t i = 0; i < kVars; ++i) s.new_var();
  for (std::size_t i = 0; i < num_clauses; ++i) {
    std::vector<Lit> c;
    for (int k = 0; k < 3; ++k) {
      const SatVar v = static_cast<SatVar>(rng.next_below(kVars));
      c.push_back(make_lit(v, rng.next_below(2) == 0));
    }
    clauses.push_back(c);
    s.add_clause(c);
  }
  const bool expected = brute_force_sat(kVars, clauses);
  const bool actual = s.solve() == SatResult::kSat;
  EXPECT_EQ(actual, expected);
  if (actual) {
    // Verify the model actually satisfies every clause.
    for (const auto& c : clauses) {
      bool any = false;
      for (Lit l : c) {
        if (s.model_value(lit_var(l)) != lit_sign(l)) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandom3SatTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace nicemc::sym
