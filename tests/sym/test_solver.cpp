#include "sym/solver.h"

#include <gtest/gtest.h>

namespace nicemc::sym {
namespace {

TEST(Solver, ConjunctionOfConstraints) {
  ExprArena a;
  const ExprRef x = a.var(0, 8);
  const ExprRef y = a.var(1, 8);
  const ExprRef sum_is_9 =
      a.cmp(Op::kEq, a.bin(Op::kAdd, x, y), a.constant(9, 8));
  const ExprRef x_lt_y = a.cmp(Op::kUlt, x, y);
  Solver s(a);
  const std::vector<ExprRef> q = {sum_is_9, x_lt_y};
  const auto model = s.solve(q);
  ASSERT_TRUE(model.has_value());
  const std::uint64_t xv = model->at(0);
  const std::uint64_t yv = model->at(1);
  EXPECT_EQ((xv + yv) & 0xff, 9u);
  EXPECT_LT(xv, yv);
}

TEST(Solver, UnsatisfiableConjunction) {
  ExprArena a;
  const ExprRef x = a.var(0, 8);
  Solver s(a);
  const std::vector<ExprRef> q = {
      a.cmp(Op::kEq, x, a.constant(3, 8)),
      a.cmp(Op::kEq, x, a.constant(4, 8)),
  };
  EXPECT_FALSE(s.solve(q).has_value());
  EXPECT_EQ(s.stats().unsat, 1u);
}

TEST(Solver, DomainConstraintSelectsCandidate) {
  // The load-balancer style query: mac ∈ {topology macs}, mac != macA.
  ExprArena a;
  const ExprRef mac = a.var(0, 48);
  const std::uint64_t macs[] = {0x00aa0000000aULL, 0x00aa0000000bULL,
                                0xffffffffffffULL};
  Solver s(a);
  const std::vector<ExprRef> q = {
      a.any_of(mac, macs),
      a.cmp(Op::kNe, mac, a.constant(0x00aa0000000aULL, 48)),
      // Unicast: multicast bit clear.
      a.cmp(Op::kEq, a.extract(a.lshr(mac, 40), 0, 1), a.constant(0, 1)),
  };
  const auto model = s.solve(q);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->at(0), 0x00aa0000000bULL);
}

TEST(Solver, EmptyQueryIsSatWithEmptyModel) {
  ExprArena a;
  Solver s(a);
  const auto model = s.solve({});
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(model->empty());
}

TEST(Solver, WideVariables48Bit) {
  ExprArena a;
  const ExprRef mac = a.var(0, 48);
  Solver s(a);
  const std::vector<ExprRef> q = {
      a.cmp(Op::kEq, a.bin(Op::kXor, mac, a.constant(0x0000ffff0000ULL, 48)),
            a.constant(0x123456789abcULL, 48)),
  };
  const auto model = s.solve(q);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->at(0), 0x123456789abcULL ^ 0x0000ffff0000ULL);
}

TEST(Solver, StatsCountQueries) {
  ExprArena a;
  const ExprRef x = a.var(0, 4);
  Solver s(a);
  const std::vector<ExprRef> q1 = {a.cmp(Op::kEq, x, a.constant(1, 4))};
  const std::vector<ExprRef> q2 = {a.cmp(Op::kNe, x, x)};
  (void)s.solve(q1);
  (void)s.solve(q2);
  EXPECT_EQ(s.stats().queries, 2u);
  EXPECT_EQ(s.stats().sat, 1u);
  EXPECT_EQ(s.stats().unsat, 1u);
}

}  // namespace
}  // namespace nicemc::sym
