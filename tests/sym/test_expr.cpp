#include "sym/expr.h"

#include <gtest/gtest.h>

namespace nicemc::sym {
namespace {

TEST(Expr, ConstantFoldingBinaryOps) {
  ExprArena a;
  const ExprRef x = a.constant(0x0f, 8);
  const ExprRef y = a.constant(0x3c, 8);
  EXPECT_EQ(a.node(a.bin(Op::kAnd, x, y)).aux, 0x0cu);
  EXPECT_EQ(a.node(a.bin(Op::kOr, x, y)).aux, 0x3fu);
  EXPECT_EQ(a.node(a.bin(Op::kXor, x, y)).aux, 0x33u);
  EXPECT_EQ(a.node(a.bin(Op::kAdd, x, y)).aux, 0x4bu);
  EXPECT_EQ(a.node(a.bin(Op::kSub, y, x)).aux, 0x2du);
}

TEST(Expr, AdditionWrapsAtWidth) {
  ExprArena a;
  const ExprRef x = a.constant(0xff, 8);
  const ExprRef one = a.constant(1, 8);
  EXPECT_EQ(a.node(a.bin(Op::kAdd, x, one)).aux, 0u);
}

TEST(Expr, HashConsingSharesStructurallyEqualNodes) {
  ExprArena a;
  const ExprRef v = a.var(0, 16);
  const ExprRef c = a.constant(7, 16);
  const ExprRef e1 = a.bin(Op::kAnd, v, c);
  const ExprRef e2 = a.bin(Op::kAnd, v, c);
  EXPECT_EQ(e1, e2);
}

TEST(Expr, CommutativeOpsNormalizeOperandOrder) {
  ExprArena a;
  const ExprRef v = a.var(0, 16);
  const ExprRef w = a.var(1, 16);
  EXPECT_EQ(a.bin(Op::kAdd, v, w), a.bin(Op::kAdd, w, v));
  EXPECT_EQ(a.cmp(Op::kEq, v, w), a.cmp(Op::kEq, w, v));
}

TEST(Expr, IdentitySimplifications) {
  ExprArena a;
  const ExprRef v = a.var(0, 8);
  const ExprRef zero = a.constant(0, 8);
  const ExprRef ones = a.constant(0xff, 8);
  EXPECT_EQ(a.bin(Op::kOr, v, zero), v);
  EXPECT_EQ(a.bin(Op::kAdd, v, zero), v);
  EXPECT_EQ(a.bin(Op::kAnd, v, ones), v);
  EXPECT_EQ(a.bin(Op::kAnd, v, zero), zero);
}

TEST(Expr, NotPushesThroughComparisons) {
  ExprArena a;
  const ExprRef v = a.var(0, 8);
  const ExprRef c = a.constant(5, 8);
  EXPECT_EQ(a.not_of(a.cmp(Op::kEq, v, c)), a.cmp(Op::kNe, v, c));
  EXPECT_EQ(a.not_of(a.cmp(Op::kUlt, v, c)), a.cmp(Op::kUle, c, v));
  // Double negation cancels.
  const ExprRef e = a.cmp(Op::kEq, v, c);
  EXPECT_EQ(a.not_of(a.not_of(e)), e);
}

TEST(Expr, ComparisonOfIdenticalOperandsFolds) {
  ExprArena a;
  const ExprRef v = a.var(0, 8);
  EXPECT_EQ(a.node(a.cmp(Op::kEq, v, v)).aux, 1u);
  EXPECT_EQ(a.node(a.cmp(Op::kUlt, v, v)).aux, 0u);
  EXPECT_EQ(a.node(a.cmp(Op::kUle, v, v)).aux, 1u);
}

TEST(Expr, EvalRespectsAssignment) {
  ExprArena a;
  const ExprRef v = a.var(0, 16);
  const ExprRef w = a.var(1, 16);
  const ExprRef sum = a.bin(Op::kAdd, v, w);
  const ExprRef pred = a.cmp(Op::kUlt, sum, a.constant(100, 16));
  EXPECT_EQ(a.eval(sum, {30, 40}), 70u);
  EXPECT_EQ(a.eval(pred, {30, 40}), 1u);
  EXPECT_EQ(a.eval(pred, {90, 40}), 0u);
}

TEST(Expr, EvalShiftExtractZext) {
  ExprArena a;
  const ExprRef v = a.var(0, 48);
  // Multicast bit of a MAC: (v >> 40) & 1.
  const ExprRef bit = a.extract(a.lshr(v, 40), 0, 1);
  EXPECT_EQ(a.eval(bit, {0x010000000000ULL}), 1u);
  EXPECT_EQ(a.eval(bit, {0x020000000000ULL}), 0u);
  const ExprRef wide = a.zext(bit, 32);
  EXPECT_EQ(a.node(wide).width, 32);
  EXPECT_EQ(a.eval(wide, {0x0100000000c3ULL}), 1u);
  const ExprRef shl = a.shl(a.constant(1, 8), 3);
  EXPECT_EQ(a.node(shl).aux, 8u);
}

TEST(Expr, AnyOfBuildsDisjunction) {
  ExprArena a;
  const ExprRef v = a.var(0, 8);
  const std::uint64_t candidates[] = {3, 9, 12};
  const ExprRef dom = a.any_of(v, candidates);
  EXPECT_EQ(a.eval(dom, {9}), 1u);
  EXPECT_EQ(a.eval(dom, {4}), 0u);
}

TEST(Expr, AllOfEmptyIsTrue) {
  ExprArena a;
  EXPECT_EQ(a.node(a.all_of({})).aux, 1u);
}

TEST(Expr, CollectVarsFindsAllVariables) {
  ExprArena a;
  const ExprRef v = a.var(3, 8);
  const ExprRef w = a.var(7, 8);
  const ExprRef e = a.cmp(Op::kEq, a.bin(Op::kXor, v, w), a.constant(1, 8));
  std::set<VarId> vars;
  a.collect_vars(e, vars);
  EXPECT_EQ(vars, (std::set<VarId>{3, 7}));
}

TEST(Expr, IteSelectsAndSimplifies) {
  ExprArena a;
  const ExprRef t = a.constant(1, 1);
  const ExprRef x = a.var(0, 8);
  const ExprRef y = a.var(1, 8);
  EXPECT_EQ(a.ite(t, x, y), x);
  EXPECT_EQ(a.ite(a.constant(0, 1), x, y), y);
  EXPECT_EQ(a.ite(a.cmp(Op::kEq, x, y), x, x), x);
  const ExprRef cond = a.cmp(Op::kUlt, x, y);
  const ExprRef ite = a.ite(cond, x, y);
  EXPECT_EQ(a.eval(ite, {3, 9}), 3u);
  EXPECT_EQ(a.eval(ite, {9, 3}), 3u);
}

TEST(Expr, ToStringRendersStructure) {
  ExprArena a;
  const ExprRef v = a.var(0, 8);
  const ExprRef e = a.cmp(Op::kEq, v, a.constant(0x2a, 8));
  EXPECT_EQ(a.to_string(e), "(eq v0:8 0x2a)");
}

}  // namespace
}  // namespace nicemc::sym
