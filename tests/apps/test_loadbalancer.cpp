// Handler-level tests of the Section 8.2 load balancer.
#include "apps/loadbalancer.h"

#include <gtest/gtest.h>

namespace nicemc::apps {
namespace {

constexpr std::uint32_t kVip = 0x0a000064;
constexpr std::uint64_t kVmac = 0x00aa00000099ULL;

LbOptions base_options() {
  LbOptions o;
  o.sw = 0;
  o.vip = kVip;
  o.vmac = kVmac;
  o.replicas = {LbReplica{1, 2, 0x11, 0x0a000101},
                LbReplica{2, 3, 0x12, 0x0a000102}};
  return o;
}

sym::SymPacket tcp_to_vip(std::uint32_t src_ip, std::uint64_t flags) {
  sym::PacketFields f;
  f.eth_src = 0x0a;
  f.eth_dst = kVmac;
  f.eth_type = of::kEthTypeIpv4;
  f.ip_src = src_ip;
  f.ip_dst = kVip;
  f.ip_proto = of::kIpProtoTcp;
  f.tp_src = 1024;
  f.tp_dst = 80;
  f.tcp_flags = flags;
  return sym::SymPacket::concrete(f);
}

std::vector<ctrl::Command> run_packet_in(
    const LoadBalancer& app, ctrl::AppState& state, const sym::SymPacket& pkt,
    of::PacketIn::Reason reason = of::PacketIn::Reason::kAction) {
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  app.packet_in(state, ctx, 0, 1, pkt, 1, reason);
  return ctx.take_commands();
}

TEST(LoadBalancer, JoinInstallsTwoWildcardRules) {
  LoadBalancer app(base_options());
  auto state = app.make_initial_state();
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  app.switch_join(*state, ctx, 0);
  const auto cmds = ctx.take_commands();
  ASSERT_EQ(cmds.size(), 2u);
  for (const auto& c : cmds) {
    const auto& install = std::get<ctrl::CmdInstallRule>(c);
    EXPECT_EQ(install.rule.match.ip_dst, kVip);
    EXPECT_EQ(install.rule.match.ip_src_plen, 1);  // /1 client split
    ASSERT_EQ(install.rule.actions.size(), 1u);
    EXPECT_EQ(install.rule.actions[0].type, of::ActionType::kOutput);
  }
}

TEST(LoadBalancer, ReconfigBuggyOrderDeletesBeforeInstalling) {
  LoadBalancer app(base_options());
  auto state = app.make_initial_state();
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  app.on_external(*state, ctx, 0);
  const auto cmds = ctx.take_commands();
  ASSERT_EQ(cmds.size(), 4u);
  // BUG-V: delete, install, delete, install.
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdDeleteRule>(cmds[0]));
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdInstallRule>(cmds[1]));
  const auto& inspect = std::get<ctrl::CmdInstallRule>(cmds[1]);
  ASSERT_EQ(inspect.rule.actions.size(), 1u);
  EXPECT_EQ(inspect.rule.actions[0].type, of::ActionType::kController);
}

TEST(LoadBalancer, ReconfigFixedOrderInstallsFirstAtLowerPriority) {
  auto opt = base_options();
  opt.fix_install_before_delete = true;
  LoadBalancer app(opt);
  auto state = app.make_initial_state();
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  app.on_external(*state, ctx, 0);
  const auto cmds = ctx.take_commands();
  ASSERT_EQ(cmds.size(), 4u);
  const auto& install = std::get<ctrl::CmdInstallRule>(cmds[0]);
  EXPECT_LT(install.rule.priority, 100);  // below the wildcard rules
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdDeleteRule>(cmds[1]));
}

TEST(LoadBalancer, ReconfigIsEnabledExactlyOnce) {
  LoadBalancer app(base_options());
  auto state = app.make_initial_state();
  EXPECT_EQ(app.external_events(*state).size(), 1u);
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  app.on_external(*state, ctx, 0);
  EXPECT_TRUE(app.external_events(*state).empty());
}

TEST(LoadBalancer, Bug4MicroflowRuleWithoutPacketOut) {
  LoadBalancer app(base_options());
  auto state = app.make_initial_state();
  static_cast<LoadBalancerState&>(*state).in_transition = true;
  const auto cmds = run_packet_in(app, *state, tcp_to_vip(1, of::kTcpSyn));
  ASSERT_EQ(cmds.size(), 1u);  // BUG-IV: install only, no packet_out
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdInstallRule>(cmds[0]));
}

TEST(LoadBalancer, Bug4FixReleasesTriggerPacket) {
  auto opt = base_options();
  opt.fix_release_packet = true;
  LoadBalancer app(opt);
  auto state = app.make_initial_state();
  const auto cmds = run_packet_in(app, *state, tcp_to_vip(1, of::kTcpSyn));
  ASSERT_EQ(cmds.size(), 2u);
  const auto& po = std::get<ctrl::CmdPacketOut>(cmds[1]);
  EXPECT_EQ(po.msg.buffer_id, 1u);
}

TEST(LoadBalancer, Bug5HandlerIgnoresNoMatchPackets) {
  LoadBalancer app(base_options());
  auto state = app.make_initial_state();
  const auto cmds = run_packet_in(app, *state, tcp_to_vip(1, 0),
                                  of::PacketIn::Reason::kNoMatch);
  EXPECT_TRUE(cmds.empty());  // packet stays buffered: NoForgottenPackets
}

TEST(LoadBalancer, ArpRequestIsAnsweredButBufferLeaks) {
  LoadBalancer app(base_options());
  auto state = app.make_initial_state();
  sym::PacketFields f;
  f.eth_src = 0x0a;
  f.eth_dst = of::kBroadcastMac;
  f.eth_type = of::kEthTypeArp;
  f.ip_src = 0x0a000001;
  f.ip_dst = kVip;
  const auto cmds =
      run_packet_in(app, *state, sym::SymPacket::concrete(f),
                    of::PacketIn::Reason::kNoMatch);
  ASSERT_EQ(cmds.size(), 1u);  // BUG-VI: reply only, no buffer discard
  const auto& po = std::get<ctrl::CmdPacketOut>(cmds[0]);
  ASSERT_TRUE(po.msg.packet.has_value());
  EXPECT_EQ(po.msg.packet->hdr.eth_src, kVmac);
  EXPECT_EQ(po.msg.packet->hdr.eth_dst, 0x0au);
}

TEST(LoadBalancer, ArpFixDiscardsBufferedRequest) {
  auto opt = base_options();
  opt.fix_discard_arp = true;
  LoadBalancer app(opt);
  auto state = app.make_initial_state();
  sym::PacketFields f;
  f.eth_type = of::kEthTypeArp;
  f.eth_src = 0x0a;
  const auto cmds = run_packet_in(app, *state, sym::SymPacket::concrete(f),
                                  of::PacketIn::Reason::kNoMatch);
  ASSERT_EQ(cmds.size(), 2u);
  const auto& discard = std::get<ctrl::CmdPacketOut>(cmds[1]);
  EXPECT_TRUE(discard.msg.actions.empty());
  EXPECT_EQ(discard.msg.buffer_id, 1u);
}

TEST(LoadBalancer, DuplicateSynSwitchesReplicaDuringTransition) {
  // BUG-VII mechanism at the handler level.
  LoadBalancer app(base_options());
  auto state = app.make_initial_state();
  auto& st = static_cast<LoadBalancerState&>(*state);
  st.in_transition = true;
  st.policy = 1;
  // The connection is established on replica 0 (old policy).
  const of::FiveTuple conn{0x0a000001, kVip, of::kIpProtoTcp, 1024, 80};
  st.assignments[conn] = 0;
  // A duplicate SYN arrives mid-transition: new policy says replica 1.
  const auto cmds =
      run_packet_in(app, *state, tcp_to_vip(0x0a000001, of::kTcpSyn));
  ASSERT_FALSE(cmds.empty());
  const auto& install = std::get<ctrl::CmdInstallRule>(cmds[0]);
  EXPECT_EQ(install.rule.actions[0].port, 3u);  // replica 1's port: split!
  EXPECT_EQ(st.assignments.at(conn), 1);
}

TEST(LoadBalancer, Bug7FixKeepsEstablishedAssignment) {
  auto opt = base_options();
  opt.fix_check_assignments = true;
  LoadBalancer app(opt);
  auto state = app.make_initial_state();
  auto& st = static_cast<LoadBalancerState&>(*state);
  st.in_transition = true;
  st.policy = 1;
  const of::FiveTuple conn{0x0a000001, kVip, of::kIpProtoTcp, 1024, 80};
  st.assignments[conn] = 0;
  const auto cmds =
      run_packet_in(app, *state, tcp_to_vip(0x0a000001, of::kTcpSyn));
  ASSERT_FALSE(cmds.empty());
  const auto& install = std::get<ctrl::CmdInstallRule>(cmds[0]);
  EXPECT_EQ(install.rule.actions[0].port, 2u);  // sticks with replica 0
}

TEST(LoadBalancer, PolicySplitsClientsByTopAddressBit) {
  auto opt = base_options();
  opt.fix_release_packet = true;
  LoadBalancer app(opt);
  auto state = app.make_initial_state();
  const auto low = run_packet_in(app, *state, tcp_to_vip(0x0a000001,
                                                         of::kTcpSyn));
  const auto& low_install = std::get<ctrl::CmdInstallRule>(low[0]);
  EXPECT_EQ(low_install.rule.actions[0].port, 2u);  // policy 0: low → R1
  auto state2 = app.make_initial_state();
  const auto high = run_packet_in(app, *state2, tcp_to_vip(0xc0000001,
                                                           of::kTcpSyn));
  const auto& high_install = std::get<ctrl::CmdInstallRule>(high[0]);
  EXPECT_EQ(high_install.rule.actions[0].port, 3u);  // high → R2
}

TEST(LoadBalancer, NonVipTrafficIsIgnored) {
  LoadBalancer app(base_options());
  auto state = app.make_initial_state();
  sym::PacketFields f;
  f.eth_type = of::kEthTypeIpv4;
  f.ip_proto = of::kIpProtoTcp;
  f.ip_dst = 0x01020304;  // not the VIP
  EXPECT_TRUE(run_packet_in(app, *state, sym::SymPacket::concrete(f))
                  .empty());
}

TEST(LoadBalancer, SynPacketsAreTheirOwnFlowGroups) {
  LoadBalancer app(base_options());
  sym::PacketFields syn;
  syn.ip_proto = of::kIpProtoTcp;
  syn.tcp_flags = of::kTcpSyn;
  sym::PacketFields data = syn;
  data.tcp_flags = of::kTcpAck;
  EXPECT_FALSE(app.is_same_flow(syn, data));  // why FLOW-IR misses BUG-VII
  EXPECT_TRUE(app.is_same_flow(data, data));
}

}  // namespace
}  // namespace nicemc::apps
