// End-to-end reproduction of the paper's eleven bugs (Section 8): for each
// bug, NICE's search must find the documented property violation, and the
// fixed application must come up clean (where the paper's fix is complete).
#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/checker.h"

namespace nicemc::apps {
namespace {

mc::CheckerResult search(Scenario& s, mc::Strategy strategy =
                                          mc::Strategy::kPktSeqOnly,
                         std::uint64_t max_transitions = 2'000'000) {
  mc::CheckerOptions opt;
  opt.max_transitions = max_transitions;
  set_strategy(s, opt, strategy);
  mc::Checker checker(s.config, opt, s.properties);
  return checker.run();
}

// ---- Section 8.1: pyswitch ----

TEST(Bugs, Bug1HostUnreachableAfterMoving) {
  auto s = pyswitch_bug1();
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoBlackHoles");
}

TEST(Bugs, Bug2DelayedDirectPath) {
  auto s = pyswitch_bug2();
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "StrictDirectPaths");
}

TEST(Bugs, Bug2NaiveFixStillRaces) {
  PySwitchOptions opt;
  opt.bug2 = PySwitchOptions::Bug2Fix::kNaive;
  auto s = pyswitch_bug2(opt);
  const auto r = search(s);
  // The naive fix installs the reverse rule after releasing the packet:
  // the race of Section 8.1 persists.
  EXPECT_TRUE(r.found_violation());
}

TEST(Bugs, Bug2CorrectFixIsClean) {
  PySwitchOptions opt;
  opt.bug2 = PySwitchOptions::Bug2Fix::kCorrect;
  auto s = pyswitch_bug2(opt);
  const auto r = search(s);
  EXPECT_FALSE(r.found_violation());
  EXPECT_TRUE(r.exhausted);
}

TEST(Bugs, Bug3ForwardingLoopOnCyclicTopology) {
  auto s = pyswitch_bug3();
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoForwardingLoops");
}

// ---- Section 8.2: load balancer ----

TEST(Bugs, Bug4NextPacketDroppedAfterReconfiguration) {
  LbScenarioOptions o;
  o.fix_install_before_delete = true;  // isolate BUG-IV from BUG-V
  auto s = lb_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoForgottenPackets");
}

TEST(Bugs, Bug5NoMatchWindowDuringReconfiguration) {
  LbScenarioOptions o;
  o.fix_release_packet = true;  // BUG-IV fixed; the race remains
  auto s = lb_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoForgottenPackets");
}

TEST(Bugs, Bug5FixedOrderIsClean) {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  auto s = lb_scenario(o);
  const auto r = search(s);
  EXPECT_FALSE(r.found_violation());
  EXPECT_TRUE(r.exhausted);
}

TEST(Bugs, Bug6ClientArpForgotten) {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  o.client_sends_arp = true;
  auto s = lb_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoForgottenPackets");
}

TEST(Bugs, Bug6ServerArpForgotten) {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  o.replica_sends_arp = true;
  auto s = lb_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoForgottenPackets");
}

TEST(Bugs, Bug6FixIsClean) {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  o.fix_discard_arp = true;
  o.client_sends_arp = true;
  o.replica_sends_arp = true;
  auto s = lb_scenario(o);
  const auto r = search(s);
  EXPECT_FALSE(r.found_violation());
}

TEST(Bugs, Bug7DuplicateSynSplitsConnection) {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  o.client_can_dup_syn = true;
  o.data_segments = 2;
  o.check_flow_affinity = true;
  auto s = lb_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "FlowAffinity");
}

TEST(Bugs, Bug7HasNoEasyFix) {
  // Consulting the assignment map (fix_check_assignments) only helps when
  // the controller has already inspected a packet of the connection. A
  // duplicate SYN arriving before any such packet still splits the
  // connection — the paper notes the authors "only realized this was a
  // problem after careful consideration" and offers no complete fix.
  LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  o.fix_check_assignments = true;
  o.client_can_dup_syn = true;
  o.data_segments = 2;
  o.check_flow_affinity = true;
  auto s = lb_scenario(o);
  const auto r = search(s);
  EXPECT_TRUE(r.found_violation());
}

// ---- Section 8.3: traffic engineering ----

TEST(Bugs, Bug8FirstPacketOfFlowDropped) {
  TeScenarioOptions o;
  auto s = te_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoForgottenPackets");
}

TEST(Bugs, Bug9PacketOutracesRuleInstallation) {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  auto s = te_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoForgottenPackets");
}

TEST(Bugs, Bug9FixIsClean) {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  auto s = te_scenario(o);
  const auto r = search(s);
  EXPECT_FALSE(r.found_violation());
  EXPECT_TRUE(r.exhausted);
}

TEST(Bugs, Bug10OnlyOnDemandRoutesUnderHighLoad) {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.stats_rounds = 1;
  o.check_routing_table = true;
  auto s = te_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property,
            "UseCorrectRoutingTable");
}

TEST(Bugs, Bug10FixSplitsCorrectly) {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.fix_per_flow_table = true;
  o.stats_rounds = 1;
  o.check_routing_table = true;
  auto s = te_scenario(o);
  const auto r = search(s);
  EXPECT_FALSE(r.found_violation());
}

TEST(Bugs, Bug11PacketsDroppedWhenLoadReduces) {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.stats_rounds = 2;  // load can rise and then fall
  auto s = te_scenario(o);
  const auto r = search(s);
  ASSERT_TRUE(r.found_violation());
  EXPECT_EQ(r.violations.front().violation.property, "NoForgottenPackets");
}

TEST(Bugs, Bug11FixIsClean) {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.fix_lookup_all_tables = true;
  o.stats_rounds = 2;
  auto s = te_scenario(o);
  const auto r = search(s);
  EXPECT_FALSE(r.found_violation());
}

// ---- Strategy behaviour on the bug suite (Table 2's qualitative claims) --

TEST(Bugs, NoDelayMissesBug5Race) {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  auto s = lb_scenario(o);
  const auto r = search(s, mc::Strategy::kNoDelay);
  // The delete/install window closes under lock-step semantics.
  EXPECT_FALSE(r.found_violation());
}

TEST(Bugs, UnusualFindsBug9) {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  auto s = te_scenario(o);
  const auto r = search(s, mc::Strategy::kUnusual);
  EXPECT_TRUE(r.found_violation());
}

TEST(Bugs, FlowIrStillFindsBug2) {
  auto s = pyswitch_bug2();
  const auto r = search(s, mc::Strategy::kFlowIr);
  EXPECT_TRUE(r.found_violation());
}

}  // namespace
}  // namespace nicemc::apps
