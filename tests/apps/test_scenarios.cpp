// Scenario construction sanity plus cross-cutting integration properties:
// every bug's counterexample trace must replay deterministically, random
// walks must find bugs, and the strategies must agree on clean programs.
#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/trace.h"

namespace nicemc::apps {
namespace {

struct BugCase {
  const char* name;
  Scenario (*make)();
  const char* property;
};

Scenario make_bug4() {
  LbScenarioOptions o;
  o.fix_install_before_delete = true;
  return lb_scenario(o);
}
Scenario make_bug5() {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  return lb_scenario(o);
}
Scenario make_bug6() {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  o.client_sends_arp = true;
  return lb_scenario(o);
}
Scenario make_bug7() {
  LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  o.client_can_dup_syn = true;
  o.data_segments = 2;
  o.check_flow_affinity = true;
  return lb_scenario(o);
}
Scenario make_bug8() { return te_scenario({}); }
Scenario make_bug9() {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  return te_scenario(o);
}
Scenario make_bug10() {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.stats_rounds = 1;
  o.check_routing_table = true;
  return te_scenario(o);
}
Scenario make_bug11() {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.stats_rounds = 2;
  return te_scenario(o);
}

std::vector<BugCase> all_bugs() {
  return {
      {"I", [] { return pyswitch_bug1(); }, "NoBlackHoles"},
      {"II", [] { return pyswitch_bug2(); }, "StrictDirectPaths"},
      {"III", [] { return pyswitch_bug3(); }, "NoForwardingLoops"},
      {"IV", make_bug4, "NoForgottenPackets"},
      {"V", make_bug5, "NoForgottenPackets"},
      {"VI", make_bug6, "NoForgottenPackets"},
      {"VII", make_bug7, "FlowAffinity"},
      {"VIII", make_bug8, "NoForgottenPackets"},
      {"IX", make_bug9, "NoForgottenPackets"},
      {"X", make_bug10, "UseCorrectRoutingTable"},
      {"XI", make_bug11, "NoForgottenPackets"},
  };
}

class BugTraceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BugTraceTest, CounterexampleReplaysDeterministically) {
  const BugCase bug = all_bugs()[GetParam()];
  auto s = bug.make();
  mc::Checker checker(s.config, mc::CheckerOptions{}, s.properties);
  const mc::CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation()) << "bug " << bug.name;
  const auto& record = r.violations.front();
  EXPECT_EQ(record.violation.property, bug.property) << "bug " << bug.name;

  // Replay the counterexample twice on fresh systems: the violation and
  // the final state hash must be identical (the paper's deterministic
  // replay guarantee, Section 6).
  auto s2 = bug.make();
  mc::Executor ex(s2.config, s2.properties);
  std::vector<mc::Violation> v1;
  std::vector<mc::Violation> v2;
  const mc::SystemState a = mc::replay(ex, record.trace, v1);
  const mc::SystemState b = mc::replay(ex, record.trace, v2);
  // Quiescence-checked properties fire at end-of-execution, not during the
  // replayed prefix; check them explicitly on the replayed state.
  if (v1.empty()) {
    mc::SystemState a2 = a.clone();
    ex.at_quiescence(a2, v1);
  }
  ASSERT_FALSE(v1.empty()) << "bug " << bug.name;
  EXPECT_EQ(v1.front().property, bug.property);
  EXPECT_EQ(a.hash(true), b.hash(true));
}

TEST_P(BugTraceTest, SearchResultsAreRunToRunDeterministic) {
  const BugCase bug = all_bugs()[GetParam()];
  auto run = [&]() {
    auto s = bug.make();
    mc::Checker checker(s.config, mc::CheckerOptions{}, s.properties);
    return checker.run();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.unique_states, b.unique_states);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.violations.front().trace.size(),
            b.violations.front().trace.size());
}

INSTANTIATE_TEST_SUITE_P(AllEleven, BugTraceTest,
                         ::testing::Range<std::size_t>(0, 11));

TEST(Scenarios, PingChainTopologyWiring) {
  auto s = pyswitch_ping_chain(3);
  ASSERT_EQ(s.topology->switches().size(), 2u);
  ASSERT_EQ(s.topology->hosts().size(), 2u);
  // The inter-switch link is symmetric.
  const auto peer = s.topology->switch_peer(0, 2);
  EXPECT_EQ(peer.kind, topo::PortPeer::Kind::kSwitchLink);
  EXPECT_EQ(peer.sw, 1u);
  const auto back = s.topology->switch_peer(1, 2);
  EXPECT_EQ(back.sw, 0u);
  // Host-facing ports have no switch peer.
  EXPECT_EQ(s.topology->switch_peer(0, 1).kind,
            topo::PortPeer::Kind::kNone);
  // Three scripted pings with distinct echo ids, burst-matched.
  EXPECT_EQ(s.config.host_behavior[0].script.size(), 3u);
  EXPECT_EQ(s.config.host_behavior[0].initial_burst, 3);
  EXPECT_NE(s.config.host_behavior[0].script[0].hdr.tp_src,
            s.config.host_behavior[0].script[1].hdr.tp_src);
}

TEST(Scenarios, LbTopologyAndDomain) {
  LbScenarioOptions o;
  auto s = lb_scenario(o);
  ASSERT_EQ(s.topology->hosts().size(), 3u);
  // The VIP participates in the packet-field domain (for discovery runs).
  bool vip_in_domain = false;
  for (std::uint64_t ip : s.config.extra_domain_ips) {
    if (ip == 0x0a000064) vip_in_domain = true;
  }
  EXPECT_TRUE(vip_in_domain);
  // Client's script is a TCP connection to the VIP.
  const auto& script = s.config.host_behavior[0].script;
  ASSERT_FALSE(script.empty());
  EXPECT_EQ(script[0].hdr.ip_dst, 0x0a000064u);
  EXPECT_EQ(script[0].hdr.tcp_flags, of::kTcpSyn);
}

TEST(Scenarios, TeTopologyPathsAreConsistent) {
  TeScenarioOptions o;
  o.flows = 2;
  auto s = te_scenario(o);
  const auto& te = static_cast<const RespondTe&>(*s.config.app);
  for (const auto& [dst, tables] : te.options().paths) {
    for (const TePath& p : tables) {
      ASSERT_FALSE(p.hops.empty());
      EXPECT_EQ(p.hops.front().first, te.options().ingress);
      // Consecutive hops are physically linked.
      for (std::size_t i = 0; i + 1 < p.hops.size(); ++i) {
        const auto peer =
            s.topology->switch_peer(p.hops[i].first, p.hops[i].second);
        EXPECT_EQ(peer.kind, topo::PortPeer::Kind::kSwitchLink);
        EXPECT_EQ(peer.sw, p.hops[i + 1].first);
      }
    }
  }
  // Two flows, alternating destinations.
  EXPECT_EQ(s.config.host_behavior[0].script.size(), 2u);
}

TEST(Scenarios, SetStrategyTogglesNoDelaySemantics) {
  auto s = pyswitch_ping_chain(1);
  mc::CheckerOptions opt;
  set_strategy(s, opt, mc::Strategy::kNoDelay);
  EXPECT_TRUE(s.config.no_delay);
  EXPECT_EQ(opt.strategy, mc::Strategy::kNoDelay);
  set_strategy(s, opt, mc::Strategy::kFlowIr);
  EXPECT_FALSE(s.config.no_delay);
}

TEST(Scenarios, RandomWalkFindsShallowBugs) {
  // BUG-VIII is three transitions deep; a handful of random walks must
  // stumble into it.
  auto s = te_scenario({});
  mc::Checker checker(s.config, mc::CheckerOptions{}, s.properties);
  const auto r = checker.random_walk(/*seed=*/1, /*walks=*/50,
                                     /*max_steps=*/100);
  EXPECT_TRUE(r.found_violation());
}

TEST(Scenarios, CleanAppsStayCleanUnderEveryStrategy) {
  for (const mc::Strategy strategy :
       {mc::Strategy::kPktSeqOnly, mc::Strategy::kNoDelay,
        mc::Strategy::kFlowIr, mc::Strategy::kUnusual}) {
    TeScenarioOptions o;
    o.fix_release_packet = true;
    o.fix_handle_intermediate = true;
    o.fix_per_flow_table = true;
    o.fix_lookup_all_tables = true;
    o.stats_rounds = 1;
    auto s = te_scenario(o);
    mc::CheckerOptions opt;
    set_strategy(s, opt, strategy);
    mc::Checker checker(s.config, opt, s.properties);
    const auto r = checker.run();
    EXPECT_FALSE(r.found_violation())
        << "strategy " << mc::strategy_name(strategy);
  }
}

TEST(Scenarios, Bug2FoundUnderEveryStrategy) {
  // Table 2 row II: every strategy uncovers the delayed-direct-path bug.
  for (const mc::Strategy strategy :
       {mc::Strategy::kPktSeqOnly, mc::Strategy::kNoDelay,
        mc::Strategy::kFlowIr, mc::Strategy::kUnusual}) {
    auto s = pyswitch_bug2();
    mc::CheckerOptions opt;
    set_strategy(s, opt, strategy);
    mc::Checker checker(s.config, opt, s.properties);
    EXPECT_TRUE(checker.run().found_violation())
        << "strategy " << mc::strategy_name(strategy);
  }
}

}  // namespace
}  // namespace nicemc::apps
