// Handler-level tests of the Section 8.3 traffic-engineering app.
#include "apps/respond_te.h"

#include <gtest/gtest.h>

namespace nicemc::apps {
namespace {

TeOptions base_options() {
  TeOptions o;
  o.ingress = 0;
  o.monitored_port = 2;
  o.threshold = 500;
  o.paths[0x0a000201] = {TePath{{{0, 2}, {1, 1}}},
                         TePath{{{0, 3}, {2, 3}, {1, 1}}}};
  return o;
}

sym::SymPacket flow_packet(std::uint16_t tp_src) {
  sym::PacketFields f;
  f.eth_type = of::kEthTypeIpv4;
  f.ip_proto = of::kIpProtoTcp;
  f.ip_src = 0x0a000001;
  f.ip_dst = 0x0a000201;
  f.tp_src = tp_src;
  f.tp_dst = 80;
  return sym::SymPacket::concrete(f);
}

std::vector<ctrl::Command> run_packet_in(const RespondTe& app,
                                         ctrl::AppState& state,
                                         of::SwitchId sw,
                                         const sym::SymPacket& pkt) {
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  app.packet_in(state, ctx, sw, 1, pkt, 1, of::PacketIn::Reason::kNoMatch);
  return ctx.take_commands();
}

void run_stats(const RespondTe& app, ctrl::AppState& state,
               std::uint64_t tx_bytes) {
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  ctrl::SymStats stats;
  stats.tx_bytes.emplace(2, sym::Value(tx_bytes, 32));
  app.stats_in(state, ctx, 0, stats);
}

TEST(RespondTe, LowLoadInstallsAlwaysOnPathEgressFirst) {
  RespondTe app(base_options());
  auto state = app.make_initial_state();
  const auto cmds = run_packet_in(app, *state, 0, flow_packet(1024));
  ASSERT_EQ(cmds.size(), 2u);  // two hops, no packet_out (BUG-VIII)
  // Rules are installed egress-first (the BUG-IX mitigation the paper
  // notes is still insufficient).
  EXPECT_EQ(std::get<ctrl::CmdInstallRule>(cmds[0]).sw, 1u);
  EXPECT_EQ(std::get<ctrl::CmdInstallRule>(cmds[1]).sw, 0u);
}

TEST(RespondTe, StatsAboveThresholdRaisesEnergyState) {
  RespondTe app(base_options());
  auto state = app.make_initial_state();
  run_stats(app, *state, 501);
  EXPECT_TRUE(static_cast<RespondTeState&>(*state).energy_high);
  run_stats(app, *state, 100);
  EXPECT_FALSE(static_cast<RespondTeState&>(*state).energy_high);
}

TEST(RespondTe, Bug10AllFlowsTakeOnDemandUnderHighLoad) {
  RespondTe app(base_options());
  auto state = app.make_initial_state();
  run_stats(app, *state, 1000);
  // Even-parity flow *should* stay always-on, but the global table wins.
  const auto cmds = run_packet_in(app, *state, 0, flow_packet(1024));
  ASSERT_EQ(cmds.size(), 3u);  // on-demand path has three hops
  EXPECT_EQ(std::get<ctrl::CmdInstallRule>(cmds[1]).sw, 2u);
}

TEST(RespondTe, Bug10FixSplitsFlowsByParity) {
  auto opt = base_options();
  opt.fix_per_flow_table = true;
  RespondTe app(opt);
  auto state = app.make_initial_state();
  run_stats(app, *state, 1000);
  const auto even = run_packet_in(app, *state, 0, flow_packet(1024));
  EXPECT_EQ(even.size(), 2u);  // always-on
  const auto odd = run_packet_in(app, *state, 0, flow_packet(1025));
  EXPECT_EQ(odd.size(), 3u);  // on-demand
}

TEST(RespondTe, Bug8FixReleasesFirstPacket) {
  auto opt = base_options();
  opt.fix_release_packet = true;
  RespondTe app(opt);
  auto state = app.make_initial_state();
  const auto cmds = run_packet_in(app, *state, 0, flow_packet(1024));
  ASSERT_EQ(cmds.size(), 3u);
  const auto& po = std::get<ctrl::CmdPacketOut>(cmds[2]);
  ASSERT_EQ(po.msg.actions.size(), 1u);
  EXPECT_EQ(po.msg.actions[0].port, 2u);  // first hop of the path
}

TEST(RespondTe, Bug9IntermediateSwitchPacketIgnored) {
  RespondTe app(base_options());
  auto state = app.make_initial_state();
  const auto cmds = run_packet_in(app, *state, 1, flow_packet(1024));
  EXPECT_TRUE(cmds.empty());  // ignored: NoForgottenPackets fodder
}

TEST(RespondTe, Bug9FixHandlesIntermediateSwitch) {
  auto opt = base_options();
  opt.fix_handle_intermediate = true;
  RespondTe app(opt);
  auto state = app.make_initial_state();
  const auto cmds = run_packet_in(app, *state, 1, flow_packet(1024));
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(std::get<ctrl::CmdInstallRule>(cmds[0]).sw, 1u);
  const auto& po = std::get<ctrl::CmdPacketOut>(cmds[1]);
  EXPECT_EQ(po.msg.actions[0].port, 1u);  // egress toward the receiver
}

TEST(RespondTe, Bug11SwitchOffRecomputedPathIgnored) {
  auto opt = base_options();
  opt.fix_handle_intermediate = true;  // BUG-IX fixed, XI remains
  RespondTe app(opt);
  auto state = app.make_initial_state();
  // Load was high when the flow started, has dropped since: the always-on
  // list no longer contains the on-demand switch 2.
  run_stats(app, *state, 100);
  const auto cmds = run_packet_in(app, *state, 2, flow_packet(1025));
  EXPECT_TRUE(cmds.empty());  // BUG-XI
}

TEST(RespondTe, Bug11FixSearchesBothTables) {
  auto opt = base_options();
  opt.fix_handle_intermediate = true;
  opt.fix_lookup_all_tables = true;
  RespondTe app(opt);
  auto state = app.make_initial_state();
  run_stats(app, *state, 100);
  const auto cmds = run_packet_in(app, *state, 2, flow_packet(1025));
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(std::get<ctrl::CmdInstallRule>(cmds[0]).sw, 2u);
}

TEST(RespondTe, CorrectTableSplitsOnlyUnderHighLoad) {
  RespondTe app(base_options());
  RespondTeState st;
  sym::PacketFields even;
  even.tp_src = 1024;
  sym::PacketFields odd;
  odd.tp_src = 1025;
  EXPECT_EQ(app.correct_table(st, even), TeTable::kAlwaysOn);
  EXPECT_EQ(app.correct_table(st, odd), TeTable::kAlwaysOn);
  st.energy_high = true;
  EXPECT_EQ(app.correct_table(st, even), TeTable::kAlwaysOn);
  EXPECT_EQ(app.correct_table(st, odd), TeTable::kOnDemand);
}

TEST(RespondTe, UnknownDestinationIsIgnored) {
  RespondTe app(base_options());
  auto state = app.make_initial_state();
  sym::PacketFields f;
  f.eth_type = of::kEthTypeIpv4;
  f.ip_proto = of::kIpProtoTcp;
  f.ip_dst = 0x01020304;
  EXPECT_TRUE(
      run_packet_in(app, *state, 0, sym::SymPacket::concrete(f)).empty());
}

TEST(RespondTe, WantsStatsOnlyFromIngress) {
  RespondTe app(base_options());
  auto state = app.make_initial_state();
  EXPECT_TRUE(app.wants_stats(*state, 0));
  EXPECT_FALSE(app.wants_stats(*state, 1));
  EXPECT_FALSE(app.wants_stats(*state, 2));
}

}  // namespace
}  // namespace nicemc::apps
