// Handler-level tests of the Figure 3 MAC-learning switch.
#include "apps/pyswitch.h"

#include <gtest/gtest.h>

namespace nicemc::apps {
namespace {

class PySwitchTest : public ::testing::Test {
 protected:
  sym::SymPacket packet(std::uint64_t src, std::uint64_t dst) {
    sym::PacketFields f;
    f.eth_src = src;
    f.eth_dst = dst;
    f.eth_type = of::kEthTypeIpv4;
    return sym::SymPacket::concrete(f);
  }

  std::vector<ctrl::Command> run_packet_in(const PySwitch& app,
                                           ctrl::AppState& state,
                                           of::PortId in_port,
                                           const sym::SymPacket& pkt) {
    std::uint32_t xid = 1;
    ctrl::Ctx ctx(&xid);
    app.packet_in(state, ctx, 0, in_port, pkt, 1,
                  of::PacketIn::Reason::kNoMatch);
    return ctx.take_commands();
  }
};

TEST_F(PySwitchTest, LearnsSourceMacOnArrival) {
  PySwitch app;
  auto state = app.make_initial_state();
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  app.switch_join(*state, ctx, 0);
  run_packet_in(app, *state, 3, packet(0x0a, 0x0b));
  const auto& st = static_cast<PySwitchState&>(*state);
  EXPECT_EQ(st.mactable.at(0).raw().at(0x0a), 3u);
}

TEST_F(PySwitchTest, BroadcastSourceIsNotLearned) {
  PySwitch app;
  auto state = app.make_initial_state();
  run_packet_in(app, *state, 3, packet(of::kBroadcastMac, 0x0b));
  const auto& st = static_cast<PySwitchState&>(*state);
  EXPECT_TRUE(st.mactable.at(0).raw().empty());
}

TEST_F(PySwitchTest, UnknownDestinationFloods) {
  PySwitch app;
  auto state = app.make_initial_state();
  const auto cmds = run_packet_in(app, *state, 1, packet(0x0a, 0x0b));
  ASSERT_EQ(cmds.size(), 1u);
  const auto& po = std::get<ctrl::CmdPacketOut>(cmds[0]);
  ASSERT_EQ(po.msg.actions.size(), 1u);
  EXPECT_EQ(po.msg.actions[0].type, of::ActionType::kFlood);
}

TEST_F(PySwitchTest, KnownDestinationInstallsRuleAndForwards) {
  PySwitch app;
  auto state = app.make_initial_state();
  run_packet_in(app, *state, 2, packet(0x0b, 0x0a));  // learn B@2
  const auto cmds = run_packet_in(app, *state, 1, packet(0x0a, 0x0b));
  ASSERT_EQ(cmds.size(), 2u);
  const auto& install = std::get<ctrl::CmdInstallRule>(cmds[0]);
  EXPECT_EQ(install.rule.match.eth_dst, 0x0bu);
  EXPECT_EQ(install.rule.match.in_port, 1u);
  EXPECT_EQ(install.rule.idle_timeout, 5);  // soft_timer=5, Figure 3
  EXPECT_EQ(install.rule.hard_timeout, of::kPermanent);  // BUG-I
  const auto& po = std::get<ctrl::CmdPacketOut>(cmds[1]);
  ASSERT_EQ(po.msg.actions.size(), 1u);
  EXPECT_EQ(po.msg.actions[0].port, 2u);
}

TEST_F(PySwitchTest, SameInAndOutPortFloodsInstead) {
  PySwitch app;
  auto state = app.make_initial_state();
  run_packet_in(app, *state, 1, packet(0x0b, 0x0a));  // learn B@1
  // Packet to B arriving on B's own port: outport == inport → flood path.
  const auto cmds = run_packet_in(app, *state, 1, packet(0x0a, 0x0b));
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdPacketOut>(cmds[0]));
}

TEST_F(PySwitchTest, HardTimeoutFixSetsTimeout) {
  PySwitchOptions opt;
  opt.fix_hard_timeout = true;
  PySwitch app(opt);
  auto state = app.make_initial_state();
  run_packet_in(app, *state, 2, packet(0x0b, 0x0a));
  const auto cmds = run_packet_in(app, *state, 1, packet(0x0a, 0x0b));
  const auto& install = std::get<ctrl::CmdInstallRule>(cmds[0]);
  EXPECT_EQ(install.rule.hard_timeout, opt.hard_timeout);
}

TEST_F(PySwitchTest, Bug2NaiveFixInstallsReverseAfterPacketOut) {
  PySwitchOptions opt;
  opt.bug2 = PySwitchOptions::Bug2Fix::kNaive;
  PySwitch app(opt);
  auto state = app.make_initial_state();
  run_packet_in(app, *state, 2, packet(0x0b, 0x0a));
  const auto cmds = run_packet_in(app, *state, 1, packet(0x0a, 0x0b));
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdInstallRule>(cmds[0]));
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdPacketOut>(cmds[1]));
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdInstallRule>(cmds[2]));
}

TEST_F(PySwitchTest, Bug2CorrectFixInstallsReverseFirst) {
  PySwitchOptions opt;
  opt.bug2 = PySwitchOptions::Bug2Fix::kCorrect;
  PySwitch app(opt);
  auto state = app.make_initial_state();
  run_packet_in(app, *state, 2, packet(0x0b, 0x0a));
  const auto cmds = run_packet_in(app, *state, 1, packet(0x0a, 0x0b));
  ASSERT_EQ(cmds.size(), 3u);
  const auto& reverse = std::get<ctrl::CmdInstallRule>(cmds[0]);
  // The reverse rule matches the *other* direction at the learned port.
  EXPECT_EQ(reverse.rule.match.eth_src, 0x0bu);
  EXPECT_EQ(reverse.rule.match.eth_dst, 0x0au);
  EXPECT_EQ(reverse.rule.match.in_port, 2u);
  EXPECT_TRUE(std::holds_alternative<ctrl::CmdPacketOut>(cmds[2]));
}

TEST_F(PySwitchTest, SwitchLeaveForgetsTable) {
  PySwitch app;
  auto state = app.make_initial_state();
  std::uint32_t xid = 1;
  ctrl::Ctx ctx(&xid);
  app.switch_join(*state, ctx, 0);
  run_packet_in(app, *state, 1, packet(0x0a, 0x0b));
  app.switch_leave(*state, ctx, 0);
  const auto& st = static_cast<PySwitchState&>(*state);
  EXPECT_FALSE(st.mactable.contains(0));
}

TEST_F(PySwitchTest, StateCloneAndSerializeRoundTrip) {
  PySwitch app;
  auto state = app.make_initial_state();
  run_packet_in(app, *state, 1, packet(0x0a, 0x0b));
  auto clone = state->clone();
  util::Ser s1;
  util::Ser s2;
  state->serialize(s1);
  clone->serialize(s2);
  EXPECT_EQ(s1.hash(), s2.hash());
}

}  // namespace
}  // namespace nicemc::apps
