#include "of/channel.h"

#include <gtest/gtest.h>

#include <string>

namespace nicemc::of {
namespace {

TEST(Fifo, PreservesOrder) {
  Fifo<int> f;
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_EQ(f.pop(), 3);
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, FrontDoesNotConsume) {
  Fifo<int> f;
  f.push(7);
  EXPECT_EQ(f.front(), 7);
  EXPECT_EQ(f.size(), 1u);
}

TEST(Fifo, DuplicateHeadFaultModel) {
  Fifo<int> f;
  f.push(1);
  f.push(2);
  f.duplicate_head();
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
}

TEST(Fifo, DropHeadFaultModel) {
  Fifo<int> f;
  f.push(1);
  f.push(2);
  f.drop_head();
  EXPECT_EQ(f.pop(), 2);
}

TEST(Fifo, EqualityComparesContents) {
  Fifo<int> a;
  Fifo<int> b;
  a.push(1);
  b.push(1);
  EXPECT_EQ(a, b);
  b.push(2);
  EXPECT_NE(a, b);
}

TEST(Fifo, SerializationIsOrderSensitive) {
  auto ser = [](const Fifo<int>& f) {
    util::Ser s;
    f.serialize(s, [](util::Ser& ss, const int& v) {
      ss.put_u32(static_cast<std::uint32_t>(v));
    });
    return s.hash();
  };
  Fifo<int> a;
  a.push(1);
  a.push(2);
  Fifo<int> b;
  b.push(2);
  b.push(1);
  EXPECT_NE(ser(a), ser(b));
}

}  // namespace
}  // namespace nicemc::of
