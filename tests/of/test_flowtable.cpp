#include "of/flowtable.h"

#include <gtest/gtest.h>

#include "util/hash.h"

namespace nicemc::of {
namespace {

Rule make_rule(std::uint64_t dst, std::uint16_t priority, PortId out) {
  Rule r;
  r.match.fields = static_cast<std::uint16_t>(MatchField::kEthDst);
  r.match.eth_dst = dst;
  r.priority = priority;
  r.actions = {Action::output(out)};
  return r;
}

sym::PacketFields to_dst(std::uint64_t dst) {
  sym::PacketFields h;
  h.eth_dst = dst;
  return h;
}

TEST(FlowTable, AddReplacesSameMatchAndPriority) {
  FlowTable t;
  t.add(make_rule(0x0a, 100, 1));
  t.add(make_rule(0x0a, 100, 2));  // same match+priority: replace
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rules()[0].actions[0].port, 2u);
  t.add(make_rule(0x0a, 200, 3));  // different priority: append
  EXPECT_EQ(t.size(), 2u);
}

TEST(FlowTable, LookupPicksHighestPriority) {
  FlowTable t;
  t.add(make_rule(0x0a, 100, 1));
  t.add(make_rule(0x0a, 200, 2));
  const auto hit = t.lookup(5, to_dst(0x0a));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(t.rules()[*hit].priority, 200);
}

TEST(FlowTable, LookupMissReturnsNullopt) {
  FlowTable t;
  t.add(make_rule(0x0a, 100, 1));
  EXPECT_FALSE(t.lookup(5, to_dst(0x0b)).has_value());
}

TEST(FlowTable, RemoveStrictRequiresPriority) {
  FlowTable t;
  t.add(make_rule(0x0a, 100, 1));
  t.add(make_rule(0x0a, 200, 2));
  EXPECT_EQ(t.remove(make_rule(0x0a, 100, 1).match, 100), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rules()[0].priority, 200);
}

TEST(FlowTable, RemoveNonStrictDropsAllPriorities) {
  FlowTable t;
  t.add(make_rule(0x0a, 100, 1));
  t.add(make_rule(0x0a, 200, 2));
  EXPECT_EQ(t.remove(make_rule(0x0a, 100, 1).match, std::nullopt), 2u);
  EXPECT_TRUE(t.empty());
}

TEST(FlowTable, CountersUpdateOnHit) {
  FlowTable t;
  t.add(make_rule(0x0a, 100, 1));
  const auto hit = t.lookup(1, to_dst(0x0a));
  ASSERT_TRUE(hit.has_value());
  t.count_hit(*hit, 100);
  t.count_hit(*hit, 100);
  EXPECT_EQ(t.rules()[0].packet_count, 2u);
  EXPECT_EQ(t.rules()[0].byte_count, 200u);
}

// The heart of Section 2.2.2's "merging equivalent flow tables": two tables
// holding the same rules in different insertion orders hash identically
// under canonical serialization, and differently under raw serialization.
TEST(FlowTable, CanonicalSerializationMergesInsertionOrders) {
  FlowTable t1;
  t1.add(make_rule(0x0a, 100, 1));
  t1.add(make_rule(0x0b, 100, 2));
  FlowTable t2;
  t2.add(make_rule(0x0b, 100, 2));
  t2.add(make_rule(0x0a, 100, 1));

  util::Ser c1;
  util::Ser c2;
  t1.serialize(c1, /*canonical=*/true);
  t2.serialize(c2, /*canonical=*/true);
  EXPECT_EQ(c1.hash(), c2.hash());

  util::Ser r1;
  util::Ser r2;
  t1.serialize(r1, /*canonical=*/false);
  t2.serialize(r2, /*canonical=*/false);
  EXPECT_NE(r1.hash(), r2.hash());  // the NO-SWITCH-REDUCTION baseline
}

TEST(FlowTable, LookupIsInsertionOrderIndependent) {
  // Same-priority overlapping rules must resolve identically regardless of
  // insertion order (canonical tie-break).
  Rule broad = make_rule(0, 100, 1);
  broad.match = Match::any();
  Rule narrow = make_rule(0x0a, 100, 2);

  FlowTable t1;
  t1.add(broad);
  t1.add(narrow);
  FlowTable t2;
  t2.add(narrow);
  t2.add(broad);

  const auto h1 = t1.lookup(1, to_dst(0x0a));
  const auto h2 = t2.lookup(1, to_dst(0x0a));
  ASSERT_TRUE(h1 && h2);
  EXPECT_EQ(t1.rules()[*h1].actions[0].port, t2.rules()[*h2].actions[0].port);
}

class FlowTablePermutationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTablePermutationTest, CanonicalHashInvariantUnderShuffle) {
  util::SplitMix64 rng(GetParam());
  std::vector<Rule> rules;
  for (int i = 0; i < 6; ++i) {
    rules.push_back(make_rule(0x10 + static_cast<std::uint64_t>(i),
                              static_cast<std::uint16_t>(100 + 10 * (i % 3)),
                              static_cast<PortId>(i)));
  }
  FlowTable reference;
  for (const Rule& r : rules) reference.add(r);

  // Fisher-Yates with the deterministic rng.
  for (std::size_t i = rules.size(); i > 1; --i) {
    std::swap(rules[i - 1], rules[rng.next_below(i)]);
  }
  FlowTable shuffled;
  for (const Rule& r : rules) shuffled.add(r);

  util::Ser a;
  util::Ser b;
  reference.serialize(a, true);
  shuffled.serialize(b, true);
  EXPECT_EQ(a.hash(), b.hash());
}

INSTANTIATE_TEST_SUITE_P(Shuffles, FlowTablePermutationTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(FlowTable, ExpirableRulesFilteredByTimeout) {
  FlowTable t;
  Rule permanent = make_rule(0x0a, 100, 1);
  Rule soft = make_rule(0x0b, 100, 2);
  soft.idle_timeout = 5;
  t.add(permanent);
  t.add(soft);
  EXPECT_FALSE(t.rules()[0].can_expire());
  EXPECT_TRUE(t.rules()[1].can_expire());
}

}  // namespace
}  // namespace nicemc::of
