#include "of/match.h"

#include <gtest/gtest.h>

namespace nicemc::of {
namespace {

sym::PacketFields tcp_packet() {
  sym::PacketFields h;
  h.eth_src = 0x0a;
  h.eth_dst = 0x0b;
  h.eth_type = kEthTypeIpv4;
  h.ip_src = 0x0a000001;
  h.ip_dst = 0x0a000064;
  h.ip_proto = kIpProtoTcp;
  h.tp_src = 1024;
  h.tp_dst = 80;
  return h;
}

TEST(Match, WildcardMatchesEverything) {
  const Match m = Match::any();
  EXPECT_TRUE(m.matches(1, tcp_packet()));
  EXPECT_TRUE(m.matches(99, sym::PacketFields{}));
}

TEST(Match, L2ExactRequiresAllFields) {
  const auto h = tcp_packet();
  const Match m = Match::l2_exact(3, h);
  EXPECT_TRUE(m.matches(3, h));
  EXPECT_FALSE(m.matches(4, h));  // wrong in_port
  auto h2 = h;
  h2.eth_dst = 0x0c;
  EXPECT_FALSE(m.matches(3, h2));
  auto h3 = h;
  h3.eth_type = kEthTypeArp;
  EXPECT_FALSE(m.matches(3, h3));
  // L2-exact ignores L3/L4.
  auto h4 = h;
  h4.ip_src = 0xdeadbeef;
  h4.tp_src = 9999;
  EXPECT_TRUE(m.matches(3, h4));
}

TEST(Match, FiveTupleIgnoresL2Addresses) {
  const auto h = tcp_packet();
  const Match m = Match::five_tuple(h);
  auto h2 = h;
  h2.eth_src = 0xffff;
  h2.eth_dst = 0xeeee;
  EXPECT_TRUE(m.matches(1, h2));
  auto h3 = h;
  h3.tp_src = 1025;
  EXPECT_FALSE(m.matches(1, h3));
}

TEST(Match, IpPrefixHalvesAddressSpace) {
  // The load balancer's /1 split on ip_src.
  Match low;
  low.fields = static_cast<std::uint16_t>(MatchField::kIpSrc);
  low.ip_src = 0;
  low.ip_src_plen = 1;
  Match high = low;
  high.ip_src = 0x80000000;

  auto h = tcp_packet();
  h.ip_src = 0x0a000001;  // top bit clear
  EXPECT_TRUE(low.matches(1, h));
  EXPECT_FALSE(high.matches(1, h));
  h.ip_src = 0xc0000001;  // top bit set
  EXPECT_FALSE(low.matches(1, h));
  EXPECT_TRUE(high.matches(1, h));
}

TEST(Match, PrefixLengthZeroIsWildcard) {
  Match m;
  m.fields = static_cast<std::uint16_t>(MatchField::kIpDst);
  m.ip_dst = 0x12345678;
  m.ip_dst_plen = 0;
  auto h = tcp_packet();
  h.ip_dst = 0;
  EXPECT_TRUE(m.matches(1, h));
}

class MatchPrefixTest : public ::testing::TestWithParam<int> {};

TEST_P(MatchPrefixTest, PrefixSemanticsMatchBitArithmetic) {
  const int plen = GetParam();
  Match m;
  m.fields = static_cast<std::uint16_t>(MatchField::kIpSrc);
  m.ip_src = 0xabcd1234;
  m.ip_src_plen = static_cast<std::uint8_t>(plen);
  const std::uint32_t mask =
      plen == 0 ? 0 : (plen >= 32 ? 0xffffffffu : ~((1u << (32 - plen)) - 1));
  for (std::uint32_t probe :
       {0xabcd1234u, 0xabcd1235u, 0xabc00000u, 0x00000000u, 0xffffffffu}) {
    auto h = tcp_packet();
    h.ip_src = probe;
    EXPECT_EQ(m.matches(1, h), (probe & mask) == (0xabcd1234u & mask))
        << "plen=" << plen << " probe=" << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrefixLengths, MatchPrefixTest,
                         ::testing::Values(0, 1, 8, 16, 24, 31, 32));

TEST(Match, SerializationIsCanonical) {
  const auto h = tcp_packet();
  const Match m1 = Match::five_tuple(h);
  const Match m2 = Match::five_tuple(h);
  util::Ser s1;
  util::Ser s2;
  m1.serialize(s1);
  m2.serialize(s2);
  EXPECT_EQ(s1.hash(), s2.hash());
}

TEST(Match, BriefMentionsPresentFields) {
  const Match m = Match::five_tuple(tcp_packet());
  const std::string b = m.brief();
  EXPECT_NE(b.find("nw_dst"), std::string::npos);
  EXPECT_NE(b.find("tp_src"), std::string::npos);
  EXPECT_EQ(b.find("dst=00:"), std::string::npos);  // no L2 fields present
}

}  // namespace
}  // namespace nicemc::of
