#include "of/switch.h"

#include <gtest/gtest.h>

namespace nicemc::of {
namespace {

Packet packet_to(std::uint64_t dst, std::uint32_t uid = 1) {
  Packet p;
  p.hdr.eth_src = 0x0a;
  p.hdr.eth_dst = dst;
  p.hdr.eth_type = kEthTypeIpv4;
  p.uid = uid;
  return p;
}

Rule forward_rule(std::uint64_t dst, PortId out) {
  Rule r;
  r.match.fields = static_cast<std::uint16_t>(MatchField::kEthDst);
  r.match.eth_dst = dst;
  r.actions = {Action::output(out)};
  return r;
}

TEST(Switch, NoMatchBuffersAndSendsPacketIn) {
  Switch sw(0, {1, 2});
  sw.enqueue_packet(1, packet_to(0x0b));
  ASSERT_TRUE(sw.can_process_pkt());
  const auto outcomes = sw.process_pkt();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].to_controller);
  EXPECT_EQ(outcomes[0].reason, PacketIn::Reason::kNoMatch);
  EXPECT_EQ(sw.buffer.size(), 1u);
  ASSERT_EQ(sw.of_out.size(), 1u);
  const auto& pin = std::get<PacketIn>(sw.of_out.front());
  EXPECT_EQ(pin.in_port, 1u);
  EXPECT_EQ(pin.buffer_id, outcomes[0].buffer_id);
}

TEST(Switch, MatchingRuleForwardsAndCounts) {
  Switch sw(0, {1, 2});
  sw.of_in.push(FlowMod{FlowMod::Cmd::kAdd, forward_rule(0x0b, 2)});
  sw.process_of();
  sw.enqueue_packet(1, packet_to(0x0b));
  const auto outcomes = sw.process_pkt();
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_EQ(outcomes[0].forwards.size(), 1u);
  EXPECT_EQ(outcomes[0].forwards[0].first, 2u);
  EXPECT_EQ(sw.table.rules()[0].packet_count, 1u);
  EXPECT_EQ(sw.port_stats[2].tx_packets, 1u);
  EXPECT_EQ(sw.port_stats[1].rx_packets, 1u);
}

TEST(Switch, FloodExpandsToAllPortsExceptIngress) {
  Switch sw(0, {1, 2, 3, 4});
  Rule r = forward_rule(0x0b, 0);
  r.actions = {Action::flood()};
  sw.of_in.push(FlowMod{FlowMod::Cmd::kAdd, r});
  sw.process_of();
  sw.enqueue_packet(2, packet_to(0x0b));
  const auto outcomes = sw.process_pkt();
  ASSERT_EQ(outcomes[0].forwards.size(), 3u);
  for (const auto& [port, pkt] : outcomes[0].forwards) {
    EXPECT_NE(port, 2u);
  }
}

TEST(Switch, ProcessPktDequeuesHeadOfEveryChannel) {
  // Paper Section 2.2.2: one transition processes the head packet of every
  // non-empty ingress channel.
  Switch sw(0, {1, 2});
  sw.enqueue_packet(1, packet_to(0x0b, 1));
  sw.enqueue_packet(1, packet_to(0x0b, 2));
  sw.enqueue_packet(2, packet_to(0x0c, 3));
  const auto outcomes = sw.process_pkt();
  EXPECT_EQ(outcomes.size(), 2u);  // heads of port 1 and port 2
  EXPECT_EQ(sw.in_ports.at(1).size(), 1u);
  EXPECT_TRUE(sw.in_ports.at(2).empty());
}

TEST(Switch, RuleWithControllerActionBuffersWithActionReason) {
  Switch sw(0, {1, 2});
  Rule r = forward_rule(0x0b, 0);
  r.actions = {Action::controller()};
  sw.of_in.push(FlowMod{FlowMod::Cmd::kAdd, r});
  sw.process_of();
  sw.enqueue_packet(1, packet_to(0x0b));
  const auto outcomes = sw.process_pkt();
  EXPECT_TRUE(outcomes[0].to_controller);
  EXPECT_EQ(outcomes[0].reason, PacketIn::Reason::kAction);
}

TEST(Switch, EmptyActionListDropsPacket) {
  Switch sw(0, {1, 2});
  Rule r = forward_rule(0x0b, 0);
  r.actions = {};
  sw.of_in.push(FlowMod{FlowMod::Cmd::kAdd, r});
  sw.process_of();
  sw.enqueue_packet(1, packet_to(0x0b));
  const auto outcomes = sw.process_pkt();
  EXPECT_TRUE(outcomes[0].dropped_by_rule);
  EXPECT_TRUE(outcomes[0].forwards.empty());
}

TEST(Switch, PacketOutReleasesBufferedPacket) {
  Switch sw(0, {1, 2});
  sw.enqueue_packet(1, packet_to(0x0b));
  const auto in = sw.process_pkt();
  const std::uint32_t bid = in[0].buffer_id;

  PacketOut po;
  po.buffer_id = bid;
  po.actions = {Action::output(2)};
  sw.of_in.push(po);
  const auto oc = sw.process_of();
  ASSERT_TRUE(oc.packet.has_value());
  EXPECT_TRUE(oc.packet->from_buffer);
  ASSERT_EQ(oc.packet->forwards.size(), 1u);
  EXPECT_EQ(oc.packet->forwards[0].first, 2u);
  EXPECT_TRUE(sw.buffer.empty());
}

TEST(Switch, PacketOutWithEmptyActionsConsumesBuffer) {
  Switch sw(0, {1, 2});
  sw.enqueue_packet(1, packet_to(0x0b));
  const auto in = sw.process_pkt();
  PacketOut po;
  po.buffer_id = in[0].buffer_id;
  sw.of_in.push(po);
  const auto oc = sw.process_of();
  ASSERT_TRUE(oc.packet.has_value());
  EXPECT_TRUE(oc.packet->explicit_discard);
  EXPECT_TRUE(sw.buffer.empty());
  EXPECT_EQ(sw.forgotten_packets(), 0u);
}

TEST(Switch, PacketOutForUnknownBufferFlagsMissing) {
  Switch sw(0, {1});
  PacketOut po;
  po.buffer_id = 42;
  sw.of_in.push(po);
  const auto oc = sw.process_of();
  EXPECT_TRUE(oc.missing_buffer);
}

TEST(Switch, BufferCapacityDropsExcessPackets) {
  Switch sw(0, {1, 2}, /*buf_capacity=*/1);
  sw.enqueue_packet(1, packet_to(0x0b, 1));
  sw.enqueue_packet(1, packet_to(0x0c, 2));
  (void)sw.process_pkt();  // buffers uid 1
  const auto outcomes = sw.process_pkt();
  EXPECT_TRUE(outcomes[0].dropped_buffer_full);
  EXPECT_EQ(sw.buffer.size(), 1u);
}

TEST(Switch, StatsRequestRepliesWithPortCounters) {
  Switch sw(0, {1, 2});
  sw.of_in.push(FlowMod{FlowMod::Cmd::kAdd, forward_rule(0x0b, 2)});
  sw.process_of();
  sw.enqueue_packet(1, packet_to(0x0b));
  sw.process_pkt();
  sw.of_in.push(StatsRequest{.xid = 7});
  const auto oc = sw.process_of();
  EXPECT_TRUE(oc.stats_replied);
  const auto& reply = std::get<StatsReply>(sw.of_out.front());
  EXPECT_EQ(reply.xid, 7u);
  EXPECT_EQ(reply.ports.at(2).tx_bytes, 100u);
}

TEST(Switch, BarrierRequestIsAcknowledged) {
  Switch sw(0, {1});
  sw.of_in.push(BarrierRequest{.xid = 9});
  const auto oc = sw.process_of();
  EXPECT_TRUE(oc.barrier_replied);
  EXPECT_EQ(std::get<BarrierReply>(sw.of_out.front()).xid, 9u);
}

TEST(Switch, LoopDetectionOnRevisit) {
  Switch sw(0, {1, 2});
  Packet p = packet_to(0x0b);
  p.visited.push_back(Hop{0, 1});  // already entered sw0 on port 1
  sw.enqueue_packet(1, p);
  const auto outcomes = sw.process_pkt();
  EXPECT_TRUE(outcomes[0].revisited);
}

TEST(Switch, SerializationDistinguishesCanonicalAndRawTables) {
  auto build = [](bool reorder) {
    Switch sw(0, {1});
    Rule r1 = forward_rule(0x0a, 1);
    Rule r2 = forward_rule(0x0b, 1);
    sw.of_in.push(FlowMod{FlowMod::Cmd::kAdd, reorder ? r2 : r1});
    sw.process_of();
    sw.of_in.push(FlowMod{FlowMod::Cmd::kAdd, reorder ? r1 : r2});
    sw.process_of();
    return sw;
  };
  const Switch a = build(false);
  const Switch b = build(true);
  util::Ser ca;
  util::Ser cb;
  a.serialize(ca, true);
  b.serialize(cb, true);
  EXPECT_EQ(ca.hash(), cb.hash());
  util::Ser ra;
  util::Ser rb;
  a.serialize(ra, false);
  b.serialize(rb, false);
  EXPECT_NE(ra.hash(), rb.hash());
}

TEST(Switch, FlowModDeleteRemovesRules) {
  Switch sw(0, {1, 2});
  sw.of_in.push(FlowMod{FlowMod::Cmd::kAdd, forward_rule(0x0b, 2)});
  sw.process_of();
  FlowMod del;
  del.cmd = FlowMod::Cmd::kDelete;
  del.rule.match = forward_rule(0x0b, 2).match;
  sw.of_in.push(del);
  const auto oc = sw.process_of();
  EXPECT_EQ(oc.removed_count, 1u);
  ASSERT_TRUE(oc.removed_match.has_value());
  EXPECT_TRUE(sw.table.empty());
}

}  // namespace
}  // namespace nicemc::of
