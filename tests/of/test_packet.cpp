#include "of/packet.h"

#include <gtest/gtest.h>

namespace nicemc::of {
namespace {

TEST(Packet, VisitedBeforeChecksHopList) {
  Packet p;
  p.visited = {Hop{0, 1}, Hop{1, 3}};
  EXPECT_TRUE(p.visited_before(0, 1));
  EXPECT_TRUE(p.visited_before(1, 3));
  EXPECT_FALSE(p.visited_before(0, 3));
  EXPECT_FALSE(p.visited_before(2, 1));
}

TEST(Packet, SerializationCoversMetadata) {
  Packet a;
  a.hdr.eth_src = 0x0a;
  a.uid = 1;
  Packet b = a;
  util::Ser sa;
  util::Ser sb;
  a.serialize(sa);
  b.serialize(sb);
  EXPECT_EQ(sa.hash(), sb.hash());
  b.visited.push_back(Hop{0, 1});
  util::Ser sb2;
  b.serialize(sb2);
  EXPECT_NE(sa.hash(), sb2.hash());  // visited history is state
}

TEST(Packet, FiveTupleAndMacPairExtraction) {
  sym::PacketFields h;
  h.ip_src = 1;
  h.ip_dst = 2;
  h.ip_proto = kIpProtoTcp;
  h.tp_src = 1024;
  h.tp_dst = 80;
  h.eth_src = 0x0a;
  h.eth_dst = 0x0b;
  const FiveTuple t = FiveTuple::of_packet(h);
  EXPECT_EQ(t.ip_src, 1u);
  EXPECT_EQ(t.tp_dst, 80u);
  const MacPair m = MacPair::of_packet(h);
  EXPECT_EQ(m.reversed().src, 0x0bu);
  EXPECT_EQ(m.reversed().dst, 0x0au);
}

TEST(Packet, BriefRendersAddresses) {
  Packet p;
  p.hdr.eth_src = 0x00aa0000000aULL;
  p.hdr.eth_dst = 0x00aa0000000bULL;
  p.hdr.eth_type = kEthTypeIpv4;
  p.hdr.ip_src = 0x0a000001;
  p.hdr.ip_dst = 0x0a000002;
  p.hdr.ip_proto = kIpProtoTcp;
  const std::string b = p.brief();
  EXPECT_NE(b.find("00:aa:00:00:00:0a"), std::string::npos);
  EXPECT_NE(b.find("10.0.0.1"), std::string::npos);
}

}  // namespace
}  // namespace nicemc::of
