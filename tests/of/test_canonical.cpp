// Tests of the canonical switch-state representation (paper Section 2.2.2,
// "merging equivalent flow tables" — generalized to buffer-id and copy-id
// naming): interleavings that produce behaviourally isomorphic states must
// serialize identically in canonical mode and (usually) differently in the
// raw NO-SWITCH-REDUCTION form.
#include <gtest/gtest.h>

#include "of/switch.h"

namespace nicemc::of {
namespace {

Packet pkt(std::uint64_t dst, std::uint32_t uid, std::uint32_t copy) {
  Packet p;
  p.hdr.eth_src = 0x0a;
  p.hdr.eth_dst = dst;
  p.uid = uid;
  p.copy_id = copy;
  return p;
}

util::Hash128 hash_switch(const Switch& sw, bool canonical) {
  util::Ser s;
  sw.serialize(s, canonical);
  return s.hash();
}

TEST(Canonical, BufferIdsRenamedByContent) {
  // Buffer the same two packets in opposite orders: raw ids swap, so the
  // raw serialization differs while the canonical one matches.
  auto build = [](bool reversed) {
    Switch sw(0, {1, 2});
    const Packet a = pkt(0xb1, 1, 0);
    const Packet b = pkt(0xb2, 2, 0);
    sw.enqueue_packet(1, reversed ? b : a);
    sw.process_pkt();
    sw.enqueue_packet(1, reversed ? a : b);
    sw.process_pkt();
    // Drain of_out so only the buffers differ in naming.
    while (!sw.of_out.empty()) sw.of_out.pop();
    return sw;
  };
  const Switch fwd = build(false);
  const Switch rev = build(true);
  EXPECT_EQ(hash_switch(fwd, true), hash_switch(rev, true));
  EXPECT_NE(hash_switch(fwd, false), hash_switch(rev, false));
}

TEST(Canonical, PendingPacketInMessagesRenamedConsistently) {
  // Same as above but keep the packet_in messages in flight: their buffer
  // ids must be renamed with the same map as the buffer entries.
  auto build = [](bool reversed) {
    Switch sw(0, {1, 2});
    const Packet a = pkt(0xb1, 1, 0);
    const Packet b = pkt(0xb2, 2, 0);
    sw.enqueue_packet(1, reversed ? b : a);
    sw.process_pkt();
    sw.enqueue_packet(1, reversed ? a : b);
    sw.process_pkt();
    return sw;
  };
  const Switch fwd = build(false);
  const Switch rev = build(true);
  // The of_out FIFO order still differs (messages arrived in different
  // orders) — that is a real behavioural difference, so canonical hashes
  // must differ here.
  EXPECT_NE(hash_switch(fwd, true), hash_switch(rev, true));
}

TEST(Canonical, CopyIdsExcludedFromCanonicalForm) {
  auto build = [](std::uint32_t copy) {
    Switch sw(0, {1, 2});
    sw.enqueue_packet(1, pkt(0xb1, 1, copy));
    return sw;
  };
  const Switch a = build(7);
  const Switch b = build(9);
  EXPECT_EQ(hash_switch(a, true), hash_switch(b, true));
  EXPECT_NE(hash_switch(a, false), hash_switch(b, false));
}

TEST(Canonical, NextBufferIdExcludedFromCanonicalForm) {
  auto build = [](bool churn) {
    Switch sw(0, {1, 2});
    if (churn) {
      // Buffer and release once: bumps next_buffer_id, leaves no trace.
      sw.enqueue_packet(1, pkt(0xbb, 9, 0));
      sw.process_pkt();
      const auto& pin = std::get<PacketIn>(sw.of_out.front());
      PacketOut po;
      po.buffer_id = pin.buffer_id;
      po.actions = {Action::output(2)};
      sw.of_in.push(po);
      sw.of_out.pop();
      sw.process_of();
      // Also reset the port counters the churn perturbed.
      sw.port_stats[1] = PortStatsEntry{};
      sw.port_stats[2] = PortStatsEntry{};
    }
    return sw;
  };
  const Switch clean = build(false);
  const Switch churned = build(true);
  EXPECT_EQ(hash_switch(clean, true), hash_switch(churned, true));
  EXPECT_NE(hash_switch(clean, false), hash_switch(churned, false));
}

TEST(Canonical, DifferentBufferContentsStayDistinct) {
  auto build = [](std::uint64_t dst) {
    Switch sw(0, {1, 2});
    sw.enqueue_packet(1, pkt(dst, 1, 0));
    sw.process_pkt();
    while (!sw.of_out.empty()) sw.of_out.pop();
    return sw;
  };
  EXPECT_NE(hash_switch(build(0xb1), true), hash_switch(build(0xb2), true));
}

TEST(Canonical, UidRemainsSemanticallySignificant) {
  // uids feed the correctness monitors; they are NOT erased by
  // canonicalization.
  auto build = [](std::uint32_t uid) {
    Switch sw(0, {1, 2});
    sw.enqueue_packet(1, pkt(0xb1, uid, 0));
    return sw;
  };
  EXPECT_NE(hash_switch(build(1), true), hash_switch(build(2), true));
}

}  // namespace
}  // namespace nicemc::of
