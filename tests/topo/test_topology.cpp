#include "topo/topology.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nicemc::topo {
namespace {

TEST(Topology, IdsAreAssignedSequentially) {
  Topology t;
  EXPECT_EQ(t.add_switch({1, 2}), 0u);
  EXPECT_EQ(t.add_switch({1}), 1u);
  EXPECT_EQ(t.add_host("a", 0xa, 1, 0, 1), 0u);
  EXPECT_EQ(t.add_host("b", 0xb, 2, 1, 1), 1u);
}

TEST(Topology, LinksAreBidirectional) {
  Topology t;
  t.add_switch({1, 2});
  t.add_switch({1, 2});
  t.add_link(0, 2, 1, 2);
  const PortPeer ab = t.switch_peer(0, 2);
  EXPECT_EQ(ab.kind, PortPeer::Kind::kSwitchLink);
  EXPECT_EQ(ab.sw, 1u);
  EXPECT_EQ(ab.port, 2u);
  const PortPeer ba = t.switch_peer(1, 2);
  EXPECT_EQ(ba.sw, 0u);
  EXPECT_EQ(ba.port, 2u);
}

TEST(Topology, UnlinkedPortsHaveNoPeer) {
  Topology t;
  t.add_switch({1, 2});
  EXPECT_EQ(t.switch_peer(0, 1).kind, PortPeer::Kind::kNone);
}

TEST(Topology, HostByMac) {
  Topology t;
  t.add_switch({1, 2});
  t.add_host("a", 0x0a, 1, 0, 1);
  t.add_host("b", 0x0b, 2, 0, 2);
  EXPECT_EQ(t.host_by_mac(0x0b), std::optional<of::HostId>{1});
  EXPECT_FALSE(t.host_by_mac(0xff).has_value());
}

TEST(Topology, AltLocationsForMobility) {
  Topology t;
  t.add_switch({1, 2, 3});
  const auto h = t.add_host("b", 0x0b, 2, 0, 2);
  t.add_alt_location(h, 0, 3);
  ASSERT_EQ(t.host(h).alt_locations.size(), 1u);
  EXPECT_EQ(t.host(h).alt_locations[0], (std::pair<of::SwitchId,
                                                   of::PortId>{0, 3}));
}

TEST(Topology, PacketDomainCoversHostsBroadcastAndFresh) {
  Topology t;
  t.add_switch({1, 2});
  t.add_host("a", 0x0a, 0x01020304, 0, 1);
  t.add_host("b", 0x0b, 0x01020305, 0, 2);
  const sym::PacketDomain d = t.packet_domain();
  auto contains = [](const std::vector<std::uint64_t>& v, std::uint64_t x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  EXPECT_TRUE(contains(d.eth_addrs, 0x0a));
  EXPECT_TRUE(contains(d.eth_addrs, 0x0b));
  EXPECT_TRUE(contains(d.eth_addrs, of::kBroadcastMac));
  // One MAC outside the topology so discovery can produce the
  // "unknown destination" class.
  bool has_fresh = false;
  for (std::uint64_t m : d.eth_addrs) {
    if (m != 0x0a && m != 0x0b && m != of::kBroadcastMac) has_fresh = true;
  }
  EXPECT_TRUE(has_fresh);
  EXPECT_TRUE(contains(d.ip_addrs, 0x01020304));
  EXPECT_TRUE(contains(d.eth_types, of::kEthTypeIpv4));
  EXPECT_TRUE(contains(d.eth_types, of::kEthTypeArp));
}

TEST(Topology, PacketDomainExtrasAndDeduplication) {
  Topology t;
  t.add_switch({1});
  t.add_host("a", 0x0a, 5, 0, 1);
  t.add_host("dup", 0x0a, 5, 0, 1);  // duplicate identity
  const sym::PacketDomain d = t.packet_domain({99, 5}, {8080});
  EXPECT_EQ(std::count(d.ip_addrs.begin(), d.ip_addrs.end(), 5), 1);
  EXPECT_EQ(std::count(d.eth_addrs.begin(), d.eth_addrs.end(), 0x0a), 1);
  EXPECT_NE(std::find(d.ip_addrs.begin(), d.ip_addrs.end(), 99),
            d.ip_addrs.end());
  EXPECT_NE(std::find(d.tp_ports.begin(), d.tp_ports.end(), 8080),
            d.tp_ports.end());
}

}  // namespace
}  // namespace nicemc::topo
