// CollapseTable: the interning contract (id equality ⇔ blob equality),
// dense id allocation, byte/dedupe accounting, concurrent interning, and
// the Snap::form_id memoization that feeds it.
#include "util/collapse.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/hash.h"
#include "util/ser.h"
#include "util/snap.h"

namespace nicemc::util {
namespace {

TEST(CollapseTable, InterningContractIdEqualityIffBlobEquality) {
  CollapseTable table(4);
  const auto a1 = table.intern("blob-a");
  const auto b = table.intern("blob-b");
  const auto a2 = table.intern("blob-a");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(table.unique_blobs(), 2u);
}

TEST(CollapseTable, IdsAreDense) {
  CollapseTable table(8);
  std::set<std::uint32_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.insert(table.intern("blob-" + std::to_string(i)));
  }
  EXPECT_EQ(ids.size(), 100u);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 99u);
}

TEST(CollapseTable, ByteAndDedupeAccounting) {
  CollapseTable table(2);
  table.intern("aaaa");
  table.intern("bb");
  table.intern("aaaa");
  table.intern("aaaa");
  EXPECT_EQ(table.interned_bytes(), 6u);  // one copy per distinct blob
  EXPECT_EQ(table.intern_calls(), 4u);
  EXPECT_DOUBLE_EQ(table.dedupe_ratio(), 2.0);
  table.clear();
  EXPECT_EQ(table.unique_blobs(), 0u);
  EXPECT_EQ(table.interned_bytes(), 0u);
}

TEST(CollapseTable, ConcurrentInterningIsStableAndExact) {
  // 4 workers intern overlapping blob sets; every worker must observe the
  // same id for the same bytes and the table must hold each blob once.
  CollapseTable table(16);
  constexpr int kBlobs = 2000;
  constexpr unsigned kWorkers = 4;
  std::vector<std::vector<std::uint32_t>> ids(
      kWorkers, std::vector<std::uint32_t>(kBlobs));
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&table, &ids, w] {
      for (int i = 0; i < kBlobs; ++i) {
        const std::string blob = "blob-" + std::to_string(i);
        ids[w][static_cast<std::size_t>(i)] = table.intern(blob);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(table.unique_blobs(), static_cast<std::uint64_t>(kBlobs));
  for (unsigned w = 1; w < kWorkers; ++w) EXPECT_EQ(ids[w], ids[0]);
  std::set<std::uint32_t> distinct(ids[0].begin(), ids[0].end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kBlobs));
}

// A minimal serializable component for Snap<T> tests.
struct Comp {
  std::uint64_t v{0};
  void serialize(Ser& s) const { s.put_u64(v); }
};

TEST(SnapFormId, MemoizesPerTableAndInvalidatesOnMut) {
  CollapseTable table(2);
  Snap<Comp> a(Comp{7});
  const auto id1 = a.form_id(true, table);
  // Second call is a memo hit: no new intern request reaches the table.
  const auto calls_after_first = table.intern_calls();
  const auto id2 = a.form_id(true, table);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(table.intern_calls(), calls_after_first);

  // A copy shares the snapshot and its memoized id.
  Snap<Comp> b = a;
  EXPECT_EQ(b.form_id(true, table), id1);
  EXPECT_EQ(table.intern_calls(), calls_after_first);

  // Mutation invalidates the memo; an equal value re-interns to the SAME
  // id (blob equality), a different value gets a fresh id.
  b.mut().v = 7;
  EXPECT_EQ(b.form_id(true, table), id1);
  b.mut().v = 8;
  EXPECT_NE(b.form_id(true, table), id1);
  // The original snapshot is untouched.
  EXPECT_EQ(a.form_id(true, table), id1);
}

TEST(SnapFormId, DistinctTablesGetDistinctMemos) {
  // Differential runs intern one snapshot in several tables; the memo is
  // per-table, so switching tables must re-intern rather than reuse a
  // stale id.
  CollapseTable t1(1);
  CollapseTable t2(1);
  t2.intern("occupy-id-0");  // offset t2's id space
  Snap<Comp> a(Comp{7});
  const auto id1 = a.form_id(true, t1);
  const auto id2 = a.form_id(true, t2);
  EXPECT_EQ(id1, 0u);
  EXPECT_EQ(id2, 1u);
  // Returning to t1 re-interns there and finds the same blob → same id.
  EXPECT_EQ(a.form_id(true, t1), id1);
}

TEST(SnapFormId, ClearedTableInvalidatesMemoizedIds) {
  // clear() restarts the id space in a new epoch; a snapshot that
  // memoized an id against the old epoch must re-intern, not serve the
  // stale id for bytes the new epoch assigned to someone else.
  CollapseTable table(2);
  Snap<Comp> a(Comp{7});
  EXPECT_EQ(a.form_id(true, table), 0u);
  table.clear();
  table.intern("usurper-of-id-0");
  EXPECT_EQ(a.form_id(true, table), 1u);
  // The re-interned id is memoized against the new epoch.
  const auto calls = table.intern_calls();
  EXPECT_EQ(a.form_id(true, table), 1u);
  EXPECT_EQ(table.intern_calls(), calls);
}

TEST(SnapFormId, DoesNotPinBytesButReusesMemoizedForm) {
  // form_id after form() must intern the already-memoized bytes (no
  // re-serialization), and agree with the id of an identical component
  // interned without bytes pinned.
  CollapseTable table(2);
  Snap<Comp> with_form(Comp{42});
  (void)with_form.form(true);  // memoize bytes + hash
  Snap<Comp> without_form(Comp{42});
  EXPECT_EQ(with_form.form_id(true, table),
            without_form.form_id(true, table));
  EXPECT_EQ(table.unique_blobs(), 1u);
}

}  // namespace
}  // namespace nicemc::util
