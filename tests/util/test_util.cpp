#include <gtest/gtest.h>

#include <algorithm>

#include "util/hash.h"
#include "util/ser.h"
#include "util/strings.h"

namespace nicemc::util {
namespace {

TEST(Hash, Fnv1aKnownValues) {
  const std::byte empty[1] = {};
  EXPECT_EQ(fnv1a64({empty, 0}), 0xcbf29ce484222325ULL);  // offset basis
  const std::byte a[] = {std::byte{'a'}};
  EXPECT_EQ(fnv1a64({a, 1}), 0xaf63dc4c8601ec8cULL);  // FNV-1a("a")
}

TEST(Hash, Hash128HalvesAreIndependent) {
  const std::byte data[] = {std::byte{1}, std::byte{2}, std::byte{3}};
  const Hash128 h = hash128(data);
  EXPECT_NE(h.lo, h.hi);
}

TEST(Hash, DifferentInputsDiffer) {
  const std::byte a[] = {std::byte{1}};
  const std::byte b[] = {std::byte{2}};
  EXPECT_NE(hash128(a), hash128(b));
}

TEST(Hash, CombineIsOrderSensitive) {
  const std::uint64_t ab = hash_combine(hash_combine(0, 1), 2);
  const std::uint64_t ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

class SplitMixTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitMixTest, DeterministicPerSeed) {
  SplitMix64 a(GetParam());
  SplitMix64 b(GetParam());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST_P(SplitMixTest, BoundedDrawsAreInRange) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitMixTest,
                         ::testing::Values(0, 1, 42, 0xdeadbeef));

TEST(Ser, IntegersAreBigEndianCanonical) {
  Ser s;
  s.put_u16(0x0102);
  s.put_u32(0x03040506);
  const auto b = s.bytes();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], std::byte{1});
  EXPECT_EQ(b[1], std::byte{2});
  EXPECT_EQ(b[2], std::byte{3});
  EXPECT_EQ(b[5], std::byte{6});
}

TEST(Ser, StringsAreLengthPrefixed) {
  // "ab" + "c" must not collide with "a" + "bc".
  Ser s1;
  s1.put_str("ab");
  s1.put_str("c");
  Ser s2;
  s2.put_str("a");
  s2.put_str("bc");
  EXPECT_NE(s1.hash(), s2.hash());
}

TEST(Ser, MapSerializationIsCanonical) {
  std::map<std::uint64_t, std::uint64_t> m1{{2, 20}, {1, 10}};
  std::map<std::uint64_t, std::uint64_t> m2{{1, 10}, {2, 20}};
  Ser s1;
  s1.put_map_u64(m1);
  Ser s2;
  s2.put_map_u64(m2);
  EXPECT_EQ(s1.hash(), s2.hash());
}

TEST(Ser, ClearResets) {
  Ser s;
  s.put_u64(42);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
}

TEST(Ser, AppendIsByteIdenticalToElementwisePuts) {
  // append() of a pre-serialized fragment must splice the exact bytes the
  // elementwise puts would have produced (the canonical-bytes invariant
  // the COW state pipeline leans on).
  Ser frag;
  frag.put_u32(0x01020304);
  frag.put_str("hello");
  Ser a;
  a.put_u8(9);
  a.append(frag.bytes());
  a.put_u8(7);
  Ser b;
  b.put_u8(9);
  b.put_u32(0x01020304);
  b.put_str("hello");
  b.put_u8(7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.bytes().begin(), a.bytes().end(),
                         b.bytes().begin()));
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Ser, TakeMovesBytesOutAndEmptiesBuffer) {
  Ser s;
  s.put_str("abc");
  const Hash128 h = s.hash();
  const std::size_t n = s.size();
  const std::string blob = s.take();
  EXPECT_EQ(blob.size(), n);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(hash128({reinterpret_cast<const std::byte*>(blob.data()),
                     blob.size()}),
            h);
  // The drained buffer is reusable.
  s.put_u8(1);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Ser, ReserveDoesNotChangeContents) {
  Ser a;
  a.reserve(4096);
  a.put_str("xyz");
  Ser b;
  b.put_str("xyz");
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Hash, Hash128CombineIsOrderSensitiveAndStreamsIndependent) {
  const Hash128 x{1, 2};
  const Hash128 y{3, 4};
  const Hash128 seed{0, 0};
  const Hash128 xy = hash128_combine(hash128_combine(seed, x), y);
  const Hash128 yx = hash128_combine(hash128_combine(seed, y), x);
  EXPECT_NE(xy, yx);
  EXPECT_NE(xy.lo, xy.hi);
  // Integer overload: distinct counts must produce distinct combines.
  EXPECT_NE(hash128_combine(seed, std::uint64_t{1}),
            hash128_combine(seed, std::uint64_t{2}));
}

TEST(Strings, MacFormatting) {
  EXPECT_EQ(mac_to_string(0x0102030a0b0cULL), "01:02:03:0a:0b:0c");
  EXPECT_EQ(mac_to_string(0xffffffffffffULL), "ff:ff:ff:ff:ff:ff");
  EXPECT_EQ(mac_to_string(0), "00:00:00:00:00:00");
}

TEST(Strings, IpFormatting) {
  EXPECT_EQ(ip_to_string(0x0a000001), "10.0.0.1");
  EXPECT_EQ(ip_to_string(0xffffffff), "255.255.255.255");
  EXPECT_EQ(ip_to_string(0), "0.0.0.0");
}

TEST(Strings, HexFixedWidth) {
  EXPECT_EQ(hex_u64(0x2a, 4), "002a");
  EXPECT_EQ(hex_u64(0xdeadbeef, 8), "deadbeef");
  EXPECT_EQ(hex_u64(0, 2), "00");
}

TEST(Des, RoundTripsSerOutput) {
  Ser s;
  s.put_u8(7);
  s.put_u64(0x0102030405060708ULL);
  s.put_bool(true);
  s.put_str("payload");
  const std::string bytes = s.take();  // Des aliases the buffer (no copy)
  Des d(bytes);
  EXPECT_EQ(d.get_u8(), 7u);
  EXPECT_EQ(d.get_u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(d.get_bool());
  EXPECT_EQ(d.get_str(), "payload");
  EXPECT_TRUE(d.done());
}

TEST(Des, UnderflowLatchesNotOk) {
  Ser s;
  s.put_u32(42);
  const std::string bytes = s.take();
  Des d(bytes);
  (void)d.get_u64();  // asks for more than the buffer holds
  EXPECT_FALSE(d.ok());
  EXPECT_FALSE(d.done());
  // Latched: every later read is a zero-value no-op, never a re-read.
  EXPECT_EQ(d.get_u32(), 0u);
  EXPECT_EQ(d.get_str(), "");
  EXPECT_FALSE(d.ok());
}

TEST(Des, TruncatedStringRejected) {
  Ser s;
  s.put_str("hello");
  const std::string bytes = s.take();
  Des d(bytes.substr(0, bytes.size() - 2));
  EXPECT_EQ(d.get_str(), "");
  EXPECT_FALSE(d.ok());
}

TEST(Des, GetCountRejectsImpossibleCounts) {
  // A corrupt length claiming more elements than the remaining bytes can
  // hold must fail fast, never drive a huge allocation.
  Ser s;
  s.put_u64(~0ULL);
  const std::string huge = s.take();
  Des d(huge);
  EXPECT_EQ(d.get_count(8), 0u);
  EXPECT_FALSE(d.ok());

  Ser ok;
  ok.put_u64(2);
  ok.put_u64(1);
  ok.put_u64(2);
  const std::string two = ok.take();
  Des d2(two);
  EXPECT_EQ(d2.get_count(8), 2u);
  EXPECT_EQ(d2.get_u64(), 1u);
  EXPECT_EQ(d2.get_u64(), 2u);
  EXPECT_TRUE(d2.done());
}

TEST(Des, FailLatchesCallerDetectedErrors) {
  Ser s;
  s.put_u8(1);
  const std::string one = s.take();
  Des d(one);
  EXPECT_TRUE(d.ok());
  d.fail();
  EXPECT_FALSE(d.ok());
  EXPECT_FALSE(d.done());
}

TEST(Des, DoneRequiresFullConsumption) {
  Ser s;
  s.put_u16(1);
  s.put_u16(2);
  const std::string bytes = s.take();
  Des d(bytes);
  EXPECT_EQ(d.get_u16(), 1u);
  EXPECT_FALSE(d.done()) << "unread bytes remain";
  EXPECT_EQ(d.get_u16(), 2u);
  EXPECT_TRUE(d.done());
}

}  // namespace
}  // namespace nicemc::util
