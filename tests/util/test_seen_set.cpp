// ShardedSeenSet: hash vs full-state modes, store_bytes accounting, shard
// rounding, and concurrent insert correctness.
#include "util/seen_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/hash.h"

namespace nicemc::util {
namespace {

Hash128 h(std::uint64_t lo, std::uint64_t hi) { return Hash128{lo, hi}; }

TEST(ShardedSeenSet, HashModeDeduplicates) {
  ShardedSeenSet set(ShardedSeenSet::Mode::kHash, 4);
  EXPECT_TRUE(set.insert(h(1, 2)));
  EXPECT_FALSE(set.insert(h(1, 2)));
  EXPECT_TRUE(set.insert(h(1, 3)));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.store_bytes(), 2 * sizeof(Hash128));
}

TEST(ShardedSeenSet, FullStateModeKeysOnBlobNotHash) {
  ShardedSeenSet set(ShardedSeenSet::Mode::kFullState, 4);
  // Different blobs are distinct states; the shard-selection hash is
  // derived internally from the key bytes and can never merge them.
  EXPECT_TRUE(set.insert_key("state-a"));
  EXPECT_TRUE(set.insert_key("state-bb"));
  EXPECT_FALSE(set.insert_key("state-a"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.store_bytes(), std::string("state-a").size() +
                                   std::string("state-bb").size());
}

TEST(ShardedSeenSet, CollapsedModeKeysOnIdTupleNotHash) {
  ShardedSeenSet set(ShardedSeenSet::Mode::kCollapsed, 4);
  // Packed id tuples are the keys; a shard-hash collision between
  // different tuples keeps both states.
  const std::string tuple_a("\x00\x00\x00\x01\x00\x00\x00\x02", 8);
  const std::string tuple_b("\x00\x00\x00\x01\x00\x00\x00\x03", 8);
  EXPECT_TRUE(set.insert_key(tuple_a));
  EXPECT_TRUE(set.insert_key(tuple_b));
  EXPECT_FALSE(set.insert_key(tuple_a));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.store_bytes(), tuple_a.size() + tuple_b.size());
}

TEST(ShardedSeenSet, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedSeenSet(ShardedSeenSet::Mode::kHash, 0).shard_count(), 1u);
  EXPECT_EQ(ShardedSeenSet(ShardedSeenSet::Mode::kHash, 1).shard_count(), 1u);
  EXPECT_EQ(ShardedSeenSet(ShardedSeenSet::Mode::kHash, 3).shard_count(), 4u);
  EXPECT_EQ(ShardedSeenSet(ShardedSeenSet::Mode::kHash, 16).shard_count(),
            16u);
  EXPECT_EQ(ShardedSeenSet(ShardedSeenSet::Mode::kHash, 17).shard_count(),
            32u);
}

TEST(ShardedSeenSet, SpreadsAcrossShardsByTopBits) {
  // Keys differing only in the top bits of `hi` land in different shards;
  // all are retained regardless.
  ShardedSeenSet set(ShardedSeenSet::Mode::kHash, 8);
  for (std::uint64_t top = 0; top < 8; ++top) {
    EXPECT_TRUE(set.insert(h(42, top << 61)));
  }
  EXPECT_EQ(set.size(), 8u);
}

TEST(ShardedSeenSet, ClearResetsCounts) {
  ShardedSeenSet set(ShardedSeenSet::Mode::kHash, 2);
  set.insert(h(1, 1));
  set.insert(h(2, 2));
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.store_bytes(), 0u);
  EXPECT_TRUE(set.insert(h(1, 1)));
}

TEST(ShardedSeenSet, ConcurrentInsertsCountExactly) {
  // 4 workers insert overlapping ranges; exactly one worker wins each key
  // and the aggregate size matches the number of distinct keys.
  ShardedSeenSet set(ShardedSeenSet::Mode::kHash, 16);
  constexpr std::uint64_t kKeys = 20000;
  constexpr unsigned kWorkers = 4;
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&set, &wins] {
      SplitMix64 mix(12345);  // same stream: all workers race on all keys
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        const std::uint64_t lo = mix.next();
        if (set.insert(Hash128{lo, lo * 0x9e3779b97f4a7c15ULL})) {
          wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(set.size(), kKeys);
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(set.store_bytes(), kKeys * sizeof(Hash128));
}

TEST(ShardedSeenSet, ConcurrentFullStateInserts) {
  ShardedSeenSet set(ShardedSeenSet::Mode::kFullState, 8);
  constexpr int kBlobs = 2000;
  std::atomic<int> wins{0};
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < 4; ++w) {
    workers.emplace_back([&set, &wins] {
      for (int i = 0; i < kBlobs; ++i) {
        std::string blob = "blob-" + std::to_string(i);
        if (set.insert_key(std::move(blob))) {
          wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kBlobs));
  EXPECT_EQ(wins.load(), kBlobs);
}

}  // namespace
}  // namespace nicemc::util
