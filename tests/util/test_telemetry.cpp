// Unit tests for the observability layer (util/telemetry.h): phase
// slicing, histogram invariants, flight-ring wraparound, the NDJSON
// snapshot round-trip, and the reporter's file stream.
#include "util/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace nicemc::util {
namespace {

void spin_for(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(Telemetry, PhaseScopesAttributeTimeAndSumToWall) {
  Telemetry t(1);
  {
    const Telemetry::Binding bind(&t, 0);
    {
      const PhaseScope ps(Phase::kApply);
      spin_for(std::chrono::microseconds(2000));
      {
        // Nested scope slices: kClone time must not double-count into
        // kApply.
        const PhaseScope inner(Phase::kClone);
        spin_for(std::chrono::microseconds(2000));
      }
    }
  }
  const WorkerTelemetry& w = t.worker(0);
  const std::uint64_t apply = w.phase(Phase::kApply).total_ns;
  const std::uint64_t clone = w.phase(Phase::kClone).total_ns;
  EXPECT_GE(apply, 1000000u);
  EXPECT_GE(clone, 1000000u);

  // Exhaustive attribution: phases partition the bound wall time.
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    sum += w.phase(static_cast<Phase>(p)).total_ns;
  }
  const std::uint64_t wall = w.wall_ns();
  EXPECT_GT(wall, 0u);
  // Calibration error bounds: the TSC-derived sum tracks the wall total
  // to within a few percent plus a small absolute slack.
  EXPECT_LE(sum, wall + wall / 10 + 1000000);
  EXPECT_GE(sum + wall / 10 + 1000000, wall);
}

TEST(Telemetry, HistogramCountEqualsBucketSum) {
  Telemetry t(1);
  {
    const Telemetry::Binding bind(&t, 0);
    for (int i = 0; i < 100; ++i) {
      const PhaseScope ps(Phase::kRemember);
    }
  }
  const PhaseStat s = t.worker(0).phase(Phase::kRemember);
  EXPECT_EQ(s.count, 100u);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : s.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, s.count);
}

TEST(Telemetry, PhaseStatMergeAddsEverything) {
  PhaseStat a;
  a.count = 3;
  a.total_ns = 30;
  a.buckets[2] = 3;
  PhaseStat b;
  b.count = 5;
  b.total_ns = 70;
  b.buckets[2] = 1;
  b.buckets[4] = 4;
  a.merge(b);
  EXPECT_EQ(a.count, 8u);
  EXPECT_EQ(a.total_ns, 100u);
  EXPECT_EQ(a.buckets[2], 4u);
  EXPECT_EQ(a.buckets[4], 4u);
}

TEST(Telemetry, NullBindingMakesEverythingNoOp) {
  // Telemetry off: no slot bound, scopes and counters must be inert.
  EXPECT_EQ(Telemetry::current(), nullptr);
  {
    const Telemetry::Binding bind(nullptr, 0);
    EXPECT_EQ(Telemetry::current(), nullptr);
    const PhaseScope ps(Phase::kApply);
    WorkerTelemetry* const wt = Telemetry::current();
    EXPECT_EQ(wt, nullptr);
  }
}

TEST(Telemetry, BindingRestoresPreviousSlot) {
  Telemetry t(2);
  {
    const Telemetry::Binding outer(&t, 0);
    EXPECT_EQ(Telemetry::current(), &t.worker(0));
    {
      const Telemetry::Binding inner(&t, 1);
      EXPECT_EQ(Telemetry::current(), &t.worker(1));
    }
    EXPECT_EQ(Telemetry::current(), &t.worker(0));
  }
  EXPECT_EQ(Telemetry::current(), nullptr);
}

TEST(Telemetry, CountersAggregateIntoTotalsWithBase) {
  Telemetry t(2);
  t.set_base(100, 10, 5, 1);
  t.worker(0).add_transitions(7);
  t.worker(1).add_transitions(3);
  t.worker(0).add_unique(2);
  t.worker(1).add_revisits(4);
  t.worker(0).add_quiescent();
  const Telemetry::Totals totals = t.totals();
  EXPECT_EQ(totals.transitions, 110u);
  EXPECT_EQ(totals.unique_states, 12u);
  EXPECT_EQ(totals.revisits, 9u);
  EXPECT_EQ(totals.quiescent_states, 2u);
}

TEST(Telemetry, FlightRingWrapsKeepingTheMostRecent) {
  FlightRing ring;
  for (std::uint64_t i = 0; i < FlightRing::kSize + 40; ++i) {
    FlightEvent e;
    e.value = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.recorded(), FlightRing::kSize + 40);
  const std::vector<FlightEvent> events = ring.events();
  ASSERT_EQ(events.size(), FlightRing::kSize);
  // Oldest surviving event first; values are the last kSize pushes.
  EXPECT_EQ(events.front().value, 40u);
  EXPECT_EQ(events.back().value, FlightRing::kSize + 39);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(Telemetry, RecordExpandLandsInTheRing) {
  Telemetry t(1);
  {
    const Telemetry::Binding bind(&t, 0);
    WorkerTelemetry* const wt = Telemetry::current();
    ASSERT_NE(wt, nullptr);
    wt->record_expand(3, 7, 9);
    wt->record_event(FlightEvent::Kind::kCheckpoint, 4096, "slot_a");
  }
  const std::vector<FlightEvent> events = t.worker(0).ring().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEvent::Kind::kExpand);
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[0].b, 7u);
  EXPECT_EQ(events[0].c, 9u);
  EXPECT_EQ(events[1].kind, FlightEvent::Kind::kCheckpoint);
  EXPECT_EQ(events[1].value, 4096u);
  EXPECT_STREQ(events[1].detail, "slot_a");
}

TEST(Telemetry, SnapshotNdjsonRoundTrips) {
  ProgressSnapshot s;
  s.event = "progress";
  s.seq = 42;
  s.elapsed_seconds = 1.5;
  s.workers = 4;
  s.transitions = 123456;
  s.unique_states = 9999;
  s.revisits = 88;
  s.quiescent_states = 7;
  s.frontier = 321;
  s.transitions_per_sec = 25000.5;
  s.unique_per_sec = 1234.25;
  s.utilization = 0.75;
  s.memo_footprint_hit_rate = 0.5;
  s.memo_discover_hit_rate = 0.25;
  s.wakeup_replays = 3;
  s.wakeup_woken = 2;
  s.engine_bytes = 1 << 20;
  s.peak_rss_bytes = 1 << 22;
  for (std::size_t p = 0; p < kPhaseCount; ++p) s.phase_ns[p] = p * 1000;

  const std::string line = s.to_ndjson();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  ProgressSnapshot back;
  ASSERT_TRUE(ProgressSnapshot::parse(line, back));
  EXPECT_EQ(back.event, s.event);
  EXPECT_EQ(back.seq, s.seq);
  EXPECT_EQ(back.workers, s.workers);
  EXPECT_EQ(back.transitions, s.transitions);
  EXPECT_EQ(back.unique_states, s.unique_states);
  EXPECT_EQ(back.revisits, s.revisits);
  EXPECT_EQ(back.quiescent_states, s.quiescent_states);
  EXPECT_EQ(back.frontier, s.frontier);
  EXPECT_EQ(back.wakeup_replays, s.wakeup_replays);
  EXPECT_EQ(back.wakeup_woken, s.wakeup_woken);
  EXPECT_EQ(back.engine_bytes, s.engine_bytes);
  EXPECT_EQ(back.peak_rss_bytes, s.peak_rss_bytes);
  EXPECT_NEAR(back.elapsed_seconds, s.elapsed_seconds, 1e-6);
  EXPECT_NEAR(back.transitions_per_sec, s.transitions_per_sec, 1e-3);
  EXPECT_NEAR(back.unique_per_sec, s.unique_per_sec, 1e-3);
  EXPECT_NEAR(back.utilization, s.utilization, 1e-6);
  EXPECT_NEAR(back.memo_footprint_hit_rate, s.memo_footprint_hit_rate, 1e-6);
  EXPECT_NEAR(back.memo_discover_hit_rate, s.memo_discover_hit_rate, 1e-6);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    EXPECT_EQ(back.phase_ns[p], s.phase_ns[p]) << p;
  }

  ProgressSnapshot halt;
  halt.event = "halt";
  halt.reason = "memory";
  ProgressSnapshot halt_back;
  ASSERT_TRUE(ProgressSnapshot::parse(halt.to_ndjson(), halt_back));
  EXPECT_EQ(halt_back.event, "halt");
  EXPECT_EQ(halt_back.reason, "memory");

  ProgressSnapshot junk;
  EXPECT_FALSE(ProgressSnapshot::parse("not json\n", junk));
  EXPECT_FALSE(ProgressSnapshot::parse("{}", junk));
}

TEST(Telemetry, ReporterStreamsParseableMonotoneLines) {
  const std::string path =
      ::testing::TempDir() + "nicemc_test_progress.ndjson";
  std::remove(path.c_str());
  Telemetry t(1);
  {
    ProgressReporter::Options po;
    po.path = path;
    po.interval_seconds = 0.01;
    ProgressReporter reporter(t, po);
    ASSERT_TRUE(reporter.start());
    const Telemetry::Binding bind(&t, 0);
    WorkerTelemetry* const wt = Telemetry::current();
    for (int i = 0; i < 50; ++i) {
      wt->add_transitions(10);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    reporter.stop("transitions");
    EXPECT_GE(reporter.snapshots_emitted(), 2u);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  std::uint64_t prev_seq = 0;
  std::uint64_t prev_transitions = 0;
  std::string last_event;
  while (std::getline(in, line)) {
    ProgressSnapshot snap;
    ASSERT_TRUE(ProgressSnapshot::parse(line + "\n", snap)) << line;
    if (lines > 0) {
      EXPECT_GT(snap.seq, prev_seq);
      EXPECT_GE(snap.transitions, prev_transitions);
    }
    prev_seq = snap.seq;
    prev_transitions = snap.transitions;
    last_event = snap.event;
    ++lines;
  }
  EXPECT_GE(lines, 2u);
  EXPECT_EQ(last_event, "halt");
  EXPECT_EQ(prev_transitions, 500u);
  std::remove(path.c_str());
}

TEST(Telemetry, ReporterAppendContinuesSequenceNumbers) {
  const std::string path =
      ::testing::TempDir() + "nicemc_test_progress_append.ndjson";
  std::remove(path.c_str());
  auto run_once = [&](bool append) {
    Telemetry t(1);
    ProgressReporter::Options po;
    po.path = path;
    po.interval_seconds = 0.005;
    po.append = append;
    ProgressReporter reporter(t, po);
    ASSERT_TRUE(reporter.start());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    reporter.stop("none");
  };
  run_once(false);
  run_once(true);

  std::ifstream in(path);
  std::string line;
  std::uint64_t prev_seq = 0;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ProgressSnapshot snap;
    ASSERT_TRUE(ProgressSnapshot::parse(line + "\n", snap)) << line;
    if (lines > 0) EXPECT_GT(snap.seq, prev_seq) << "line " << lines;
    prev_seq = snap.seq;
    ++lines;
  }
  EXPECT_GE(lines, 4u);  // two runs x (>=1 progress + 1 halt)
  std::remove(path.c_str());
}

TEST(Telemetry, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(Phase::kClone), "clone");
  EXPECT_STREQ(phase_name(Phase::kApply), "apply");
  EXPECT_STREQ(phase_name(Phase::kEnabled), "enabled");
  EXPECT_STREQ(phase_name(Phase::kFootprint), "footprint");
  EXPECT_STREQ(phase_name(Phase::kPropertyCheck), "property_check");
  EXPECT_STREQ(phase_name(Phase::kRemember), "remember");
  EXPECT_STREQ(phase_name(Phase::kCheckpoint), "checkpoint");
  EXPECT_STREQ(phase_name(Phase::kIdle), "idle");
  EXPECT_STREQ(phase_name(Phase::kOther), "other");
}

}  // namespace
}  // namespace nicemc::util
