// Execution-semantics tests: channel fault injection, rule expiry, stats
// request/reply round trips, and the state-matching effects of the
// canonical representation across different interleavings.
#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/discover.h"
#include "mc/execute.h"
#include "props/no_black_holes.h"

namespace nicemc::mc {
namespace {

bool has_kind(const std::vector<Transition>& ts, TKind kind) {
  for (const Transition& t : ts) {
    if (t.kind == kind) return true;
  }
  return false;
}

Transition find_kind(const std::vector<Transition>& ts, TKind kind) {
  for (const Transition& t : ts) {
    if (t.kind == kind) return t;
  }
  ADD_FAILURE() << "transition kind not enabled";
  return {};
}

TEST(Semantics, ChannelFaultTransitionsAppearWhenEnabled) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_channel_faults = true;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  st.sw_mut(0).pkt_channel_faults = {.may_drop = true,
                                       .may_duplicate = true};
  std::vector<Violation> v;
  ex.apply(st, Transition{.kind = TKind::kHostSendScript, .a = 0}, v);
  const auto ts = ex.enabled(st, cache);
  EXPECT_TRUE(has_kind(ts, TKind::kChannelDropHead));
  EXPECT_TRUE(has_kind(ts, TKind::kChannelDupHead));
}

TEST(Semantics, ChannelDropRemovesPacketWithoutViolation) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_channel_faults = true;
  s.properties.push_back(std::make_unique<props::NoBlackHoles>());
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  st.sw_mut(0).pkt_channel_faults.may_drop = true;
  std::vector<Violation> v;
  ex.apply(st, Transition{.kind = TKind::kHostSendScript, .a = 0}, v);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDropHead), v);
  EXPECT_FALSE(st.sw(0).can_process_pkt());
  // A fault-model drop is environment behaviour, not a controller bug.
  EXPECT_TRUE(v.empty());
  ex.at_quiescence(st, v);
  EXPECT_TRUE(v.empty());
}

TEST(Semantics, ChannelDuplicateCreatesSecondCopy) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_channel_faults = true;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  st.sw_mut(0).pkt_channel_faults.may_duplicate = true;
  std::vector<Violation> v;
  ex.apply(st, Transition{.kind = TKind::kHostSendScript, .a = 0}, v);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDupHead), v);
  EXPECT_EQ(st.sw(0).in_ports.at(1).size(), 2u);
}

TEST(Semantics, RuleExpiryTransitionRemovesRule) {
  apps::PySwitchOptions opt;
  opt.fix_hard_timeout = true;  // installed rules carry a hard timeout
  auto s = apps::pyswitch_bug2(opt);
  s.config.enable_rule_expiry = true;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  // Install a rule directly with a timeout.
  of::Rule r;
  r.match = of::Match::any();
  r.actions = {of::Action::output(2)};
  r.hard_timeout = 10;
  st.sw_mut(0).table.add(r);
  const auto ts = ex.enabled(st, cache);
  ASSERT_TRUE(has_kind(ts, TKind::kRuleExpire));
  std::vector<Violation> v;
  ex.apply(st, find_kind(ts, TKind::kRuleExpire), v);
  EXPECT_TRUE(st.sw(0).table.empty());
}

TEST(Semantics, PermanentRulesNeverExpire) {
  auto s = apps::pyswitch_bug2();
  s.config.enable_rule_expiry = true;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  of::Rule r;
  r.match = of::Match::any();
  r.actions = {of::Action::output(2)};
  st.sw_mut(0).table.add(r);  // no timeouts
  EXPECT_FALSE(has_kind(ex.enabled(st, cache), TKind::kRuleExpire));
}

TEST(Semantics, StatsRequestRoundTripWithoutDiscovery) {
  apps::TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.stats_rounds = 1;
  auto s = apps::te_scenario(o);
  s.config.symbolic_discovery = false;  // concrete stats path
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  auto ts = ex.enabled(st, cache);
  ASSERT_TRUE(has_kind(ts, TKind::kCtrlRequestStats));
  ex.apply(st, find_kind(ts, TKind::kCtrlRequestStats), v);
  EXPECT_TRUE(st.ctrl().pending_stats.contains(0));
  // Request is only issued once per round budget.
  EXPECT_FALSE(has_kind(ex.enabled(st, cache), TKind::kCtrlRequestStats));

  ex.apply(st, Transition{.kind = TKind::kSwitchProcessOf, .a = 0}, v);
  ts = ex.enabled(st, cache);
  ASSERT_TRUE(has_kind(ts, TKind::kCtrlDispatch));
  ex.apply(st, find_kind(ts, TKind::kCtrlDispatch), v);
  EXPECT_FALSE(st.ctrl().pending_stats.contains(0));
  // Concrete stats (no traffic yet) keep the energy state low.
  EXPECT_FALSE(
      static_cast<const apps::RespondTeState&>(*st.ctrl().app).energy_high);
}

TEST(Semantics, StatsDiscoveryReplacesConcreteDispatch) {
  apps::TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.stats_rounds = 1;
  auto s = apps::te_scenario(o);  // symbolic_discovery on (stats_rounds > 0)
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;
  ex.apply(st, Transition{.kind = TKind::kCtrlRequestStats, .a = 0}, v);
  ex.apply(st, Transition{.kind = TKind::kSwitchProcessOf, .a = 0}, v);
  const auto ts = ex.enabled(st, cache);
  EXPECT_FALSE(has_kind(ts, TKind::kCtrlDispatch));
  // Two representative stats classes: below and above the threshold.
  int stats_transitions = 0;
  for (const Transition& t : ts) {
    if (t.kind == TKind::kCtrlProcessStats) ++stats_transitions;
  }
  EXPECT_EQ(stats_transitions, 2);
}

TEST(Semantics, ProcessStatsAppliesRepresentativeValues) {
  apps::TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.stats_rounds = 1;
  auto s = apps::te_scenario(o);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;
  ex.apply(st, Transition{.kind = TKind::kCtrlRequestStats, .a = 0}, v);
  ex.apply(st, Transition{.kind = TKind::kSwitchProcessOf, .a = 0}, v);
  Transition high;
  for (const Transition& t : ex.enabled(st, cache)) {
    if (t.kind != TKind::kCtrlProcessStats) continue;
    for (const auto& [port, bytes] : t.stats) {
      if (port == 2 && bytes > 500) high = t;
    }
  }
  ASSERT_EQ(high.kind, TKind::kCtrlProcessStats);
  ex.apply(st, high, v);
  EXPECT_TRUE(
      static_cast<const apps::RespondTeState&>(*st.ctrl().app).energy_high);
}

TEST(Semantics, EquivalentInterleavingsMergeOnlyCanonically) {
  // Two switches each hold a packet whose forwarding assigns a fresh copy
  // id from the shared counter: processing them in either order reaches
  // behaviourally isomorphic states that differ only in copy-id naming.
  // The canonical hash merges the two orders; the raw
  // (NO-SWITCH-REDUCTION) hash keeps them distinct — the mechanism behind
  // Table 1's state-space reduction.
  auto run_order = [](bool sw0_first, bool canonical) {
    auto s = apps::pyswitch_ping_chain(1);
    s.config.canonical_flowtables = canonical;
    Executor ex(s.config, s.properties);
    SystemState st = ex.make_initial();
    of::Rule fwd;
    fwd.match = of::Match::any();
    fwd.actions = {of::Action::output(1)};  // hairpin to the local host
    st.sw_mut(0).table.add(fwd);
    st.sw_mut(1).table.add(fwd);
    of::Packet p1;
    p1.hdr.eth_src = 0x0a;
    p1.uid = 1;
    of::Packet p2;
    p2.hdr.eth_src = 0x0b;
    p2.uid = 2;
    st.sw_mut(0).enqueue_packet(1, p1);
    st.sw_mut(1).enqueue_packet(1, p2);

    std::vector<Violation> v;
    const Transition proc0{.kind = TKind::kSwitchProcessPkt, .a = 0};
    const Transition proc1{.kind = TKind::kSwitchProcessPkt, .a = 1};
    ex.apply(st, sw0_first ? proc0 : proc1, v);
    ex.apply(st, sw0_first ? proc1 : proc0, v);
    return st.hash(canonical);
  };
  EXPECT_EQ(run_order(true, true), run_order(false, true));
  EXPECT_NE(run_order(true, false), run_order(false, false));
}

TEST(Semantics, ControllerInjectedPacketGetsFreshUid) {
  apps::LbScenarioOptions o;
  o.fix_discard_arp = true;
  o.client_sends_arp = true;
  auto s = apps::lb_scenario(o);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;
  // ARP request in, proxied reply out.
  ex.apply(st, Transition{.kind = TKind::kHostSendScript, .a = 0}, v);
  ex.apply(st, Transition{.kind = TKind::kSwitchProcessPkt, .a = 0}, v);
  ex.apply(st, Transition{.kind = TKind::kCtrlDispatch, .a = 0}, v);
  const std::uint32_t uid_before = st.next_uid;
  EXPECT_GE(uid_before, 3u);  // request + injected reply
  // Apply the two packet_outs (reply + buffer discard).
  while (st.sw(0).can_process_of()) {
    ex.apply(st, Transition{.kind = TKind::kSwitchProcessOf, .a = 0}, v);
  }
  // The reply is on its way back to the client.
  EXPECT_FALSE(st.host(0).input.empty());
  EXPECT_EQ(st.sw(0).forgotten_packets(), 0u);
}

}  // namespace
}  // namespace nicemc::mc
