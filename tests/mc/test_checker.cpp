#include "mc/checker.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"

namespace nicemc::mc {
namespace {

TEST(Checker, OnePingChainExploresAndQuiesces) {
  auto s = apps::pyswitch_ping_chain(1);
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.found_violation());
  EXPECT_GT(r.transitions, 0u);
  EXPECT_GT(r.unique_states, 1u);
  EXPECT_GT(r.quiescent_states, 0u);
}

TEST(Checker, SearchIsDeterministic) {
  auto run_once = []() {
    auto s = apps::pyswitch_ping_chain(2);
    Checker checker(s.config, CheckerOptions{}, s.properties);
    return checker.run();
  };
  const CheckerResult a = run_once();
  const CheckerResult b = run_once();
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.unique_states, b.unique_states);
  EXPECT_EQ(a.revisits, b.revisits);
}

TEST(Checker, StateSpaceGrowsWithPings) {
  auto count_states = [](int pings) {
    auto s = apps::pyswitch_ping_chain(pings);
    Checker checker(s.config, CheckerOptions{}, s.properties);
    return checker.run().unique_states;
  };
  const auto one = count_states(1);
  const auto two = count_states(2);
  EXPECT_GT(two, 2 * one);  // super-linear growth (Table 1's shape)
}

TEST(Checker, CanonicalTablesShrinkStateSpace) {
  auto count_states = [](bool canonical) {
    auto s = apps::pyswitch_ping_chain(2, canonical);
    Checker checker(s.config, CheckerOptions{}, s.properties);
    return checker.run().unique_states;
  };
  const auto with = count_states(true);
  const auto without = count_states(false);
  // NO-SWITCH-REDUCTION explores at least as many unique states (Table 1).
  EXPECT_GE(without, with);
}

TEST(Checker, RevisitsOccurBecauseOfStateMatching) {
  auto s = apps::pyswitch_ping_chain(2);
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_GT(r.revisits, 0u);
}

TEST(Checker, TransitionLimitTruncatesSearch) {
  auto s = apps::pyswitch_ping_chain(3);
  CheckerOptions opt;
  opt.max_transitions = 50;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.transitions, 50u);
}

TEST(Checker, FullStateStoreCountsSameUniqueStates) {
  auto run_mode = [](util::ShardedSeenSet::Mode mode) {
    auto s = apps::pyswitch_ping_chain(2);
    CheckerOptions opt;
    opt.state_store = mode;
    Checker c(s.config, opt, s.properties);
    return c.run();
  };
  const auto hash_mode = run_mode(util::ShardedSeenSet::Mode::kHash);
  const auto full_mode = run_mode(util::ShardedSeenSet::Mode::kFullState);
  const auto collapsed = run_mode(util::ShardedSeenSet::Mode::kCollapsed);
  EXPECT_EQ(hash_mode.unique_states, full_mode.unique_states);
  EXPECT_EQ(hash_mode.transitions, full_mode.transitions);
  EXPECT_EQ(hash_mode.unique_states, collapsed.unique_states);
  EXPECT_EQ(hash_mode.transitions, collapsed.transitions);
  // Full states dwarf 16-byte hashes (the SPIN-memory effect, Section 7);
  // interning component blobs collapses that gap while staying
  // collision-proof.
  EXPECT_GT(full_mode.store_bytes, 10 * hash_mode.store_bytes);
  EXPECT_LT(collapsed.store_bytes, full_mode.store_bytes);
  EXPECT_GT(collapsed.collapse.unique_blobs, 0u);
  EXPECT_GE(collapsed.collapse.dedupe_ratio, 1.0);
}

TEST(Checker, RandomWalkTerminatesAndCounts) {
  auto s = apps::pyswitch_ping_chain(2);
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.random_walk(/*seed=*/42, /*walks=*/5,
                                              /*max_steps=*/200);
  EXPECT_GT(r.transitions, 0u);
  EXPECT_FALSE(r.found_violation());
}

TEST(Checker, NoDelayExploresFewerTransitions) {
  auto full = []() {
    auto s = apps::pyswitch_ping_chain(2);
    CheckerOptions opt;
    Checker c(s.config, opt, s.properties);
    return c.run();
  }();
  auto nodelay = []() {
    auto s = apps::pyswitch_ping_chain(2);
    CheckerOptions opt;
    apps::set_strategy(s, opt, Strategy::kNoDelay);
    Checker c(s.config, opt, s.properties);
    return c.run();
  }();
  EXPECT_LT(nodelay.transitions, full.transitions);  // Figure 6's shape
  EXPECT_TRUE(nodelay.exhausted);
}

TEST(Checker, FineInterleavingExploresMoreTransitions) {
  auto normal = []() {
    auto s = apps::pyswitch_ping_chain(2);
    Checker c(s.config, CheckerOptions{}, s.properties);
    return c.run();
  }();
  auto fine = []() {
    auto s = apps::pyswitch_ping_chain(2);
    s.config.fine_interleaving = true;
    Checker c(s.config, CheckerOptions{}, s.properties);
    return c.run();
  }();
  // JPF-like granularity explodes the ordering space (Section 7).
  EXPECT_GT(fine.transitions, normal.transitions);
}

}  // namespace
}  // namespace nicemc::mc
