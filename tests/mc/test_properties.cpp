// Unit tests of the correctness-property library (paper Section 5.2),
// driven by synthetic event streams.
#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/execute.h"
#include "props/direct_paths.h"
#include "props/flow_affinity.h"
#include "props/no_black_holes.h"
#include "props/no_forgotten_packets.h"
#include "props/no_forwarding_loops.h"

namespace nicemc::mc {
namespace {

class PropertiesTest : public ::testing::Test {
 protected:
  PropertiesTest()
      : scenario_(apps::pyswitch_ping_chain(1)),
        executor_(scenario_.config, scenario_.properties),
        state_(executor_.make_initial()) {}

  static of::Packet packet(std::uint32_t uid, std::uint64_t src,
                           std::uint64_t dst) {
    of::Packet p;
    p.uid = uid;
    p.hdr.eth_src = src;
    p.hdr.eth_dst = dst;
    return p;
  }

  apps::Scenario scenario_;
  Executor executor_;
  SystemState state_;
  std::vector<Violation> out_;
};

TEST_F(PropertiesTest, NoForwardingLoopsFlagsRevisit) {
  props::NoForwardingLoops prop;
  auto ps = prop.make_state();
  EvPacketProcessed ev;
  ev.revisited = true;
  ev.pkt = packet(1, 0xa, 0xb);
  const std::vector<Event> events = {ev};
  prop.on_events(*ps, events, state_, out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].property, "NoForwardingLoops");
}

TEST_F(PropertiesTest, NoForwardingLoopsSilentOnNormalForwarding) {
  props::NoForwardingLoops prop;
  auto ps = prop.make_state();
  EvPacketProcessed ev;
  ev.copies_out = 1;
  const std::vector<Event> events = {ev};
  prop.on_events(*ps, events, state_, out_);
  EXPECT_TRUE(out_.empty());
}

TEST_F(PropertiesTest, NoBlackHolesFlagsRuleDrop) {
  props::NoBlackHoles prop;
  auto ps = prop.make_state();
  EvPacketProcessed ev;
  ev.dropped_by_rule = true;
  ev.pkt = packet(1, 0xa, 0xb);
  const std::vector<Event> events = {ev};
  prop.on_events(*ps, events, state_, out_);
  ASSERT_EQ(out_.size(), 1u);
}

TEST_F(PropertiesTest, NoBlackHolesFlagsDeadPort) {
  props::NoBlackHoles prop;
  auto ps = prop.make_state();
  const std::vector<Event> events = {EvPacketDeadPort{0, 2, packet(1, 1, 2)}};
  prop.on_events(*ps, events, state_, out_);
  ASSERT_EQ(out_.size(), 1u);
}

TEST_F(PropertiesTest, NoBlackHolesBalancedFloodIsClean) {
  props::NoBlackHoles prop;
  auto ps = prop.make_state();
  const of::Packet p = packet(1, 0xa, 0xb);
  EvPacketProcessed flood;  // 1 in, 2 copies out
  flood.pkt = p;
  flood.copies_out = 2;
  const std::vector<Event> events = {
      EvPacketSent{0, p}, flood, EvPacketDelivered{1, p},
      EvPacketDelivered{2, p}};
  prop.on_events(*ps, events, state_, out_);
  prop.at_quiescence(*ps, state_, out_);
  EXPECT_TRUE(out_.empty());
}

TEST_F(PropertiesTest, NoBlackHolesImbalanceAtQuiescence) {
  props::NoBlackHoles prop;
  auto ps = prop.make_state();
  const std::vector<Event> events = {EvPacketSent{0, packet(1, 0xa, 0xb)}};
  prop.on_events(*ps, events, state_, out_);
  prop.at_quiescence(*ps, state_, out_);
  ASSERT_EQ(out_.size(), 1u);  // sent but never delivered/consumed
}

TEST_F(PropertiesTest, NoBlackHolesCountsChannelDupAsExtraCopy) {
  props::NoBlackHoles prop;
  auto ps = prop.make_state();
  const of::Packet p = packet(1, 0xa, 0xb);
  // Sent, duplicated in the channel, but only one copy delivered: the
  // duplicate is still in flight — imbalance at quiescence.
  const std::vector<Event> events = {EvPacketSent{0, p}, EvChannelDup{0, 1, p},
                                     EvPacketDelivered{1, p}};
  prop.on_events(*ps, events, state_, out_);
  prop.at_quiescence(*ps, state_, out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].property, "NoBlackHoles");
}

TEST_F(PropertiesTest, NoBlackHolesBalancesChannelDupAndDrop) {
  props::NoBlackHoles prop;
  auto ps = prop.make_state();
  const of::Packet p = packet(1, 0xa, 0xb);
  // The duplicated copy is dropped by a second fault, the original is
  // delivered: the books balance without a violation.
  const std::vector<Event> events = {EvPacketSent{0, p}, EvChannelDup{0, 1, p},
                                     EvChannelDrop{0, 1, p},
                                     EvPacketDelivered{1, p}};
  prop.on_events(*ps, events, state_, out_);
  prop.at_quiescence(*ps, state_, out_);
  EXPECT_TRUE(out_.empty());
}

TEST_F(PropertiesTest, NoBlackHolesTreatsBufferingAsConsumption) {
  props::NoBlackHoles prop;
  auto ps = prop.make_state();
  const of::Packet p = packet(1, 0xa, 0xb);
  EvPacketProcessed buffered;
  buffered.pkt = p;
  buffered.to_controller = true;  // 0 copies out, buffered at the switch
  const std::vector<Event> events = {EvPacketSent{0, p}, buffered};
  prop.on_events(*ps, events, state_, out_);
  prop.at_quiescence(*ps, state_, out_);
  EXPECT_TRUE(out_.empty());  // forgotten packets are another property's job
}

TEST_F(PropertiesTest, DirectPathsWatchesOnlyPacketsSentAfterDelivery) {
  props::DirectPaths prop;
  auto ps = prop.make_state();
  const of::Packet first = packet(1, 0xa, 0xb);
  const of::Packet second = packet(2, 0xa, 0xb);

  // First packet delivered; second sent afterwards, then hits controller.
  {
    const std::vector<Event> events = {EvPacketSent{0, first},
                                       EvPacketDelivered{1, first, 0xb}};
    prop.on_events(*ps, events, state_, out_);
  }
  EXPECT_TRUE(out_.empty());
  {
    const std::vector<Event> events = {
        EvPacketSent{0, second},
        EvPacketIn{0, 1, second, of::PacketIn::Reason::kNoMatch}};
    prop.on_events(*ps, events, state_, out_);
  }
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].property, "DirectPaths");
}

TEST_F(PropertiesTest, DirectPathsRobustToInFlightPackets) {
  props::DirectPaths prop;
  auto ps = prop.make_state();
  const of::Packet first = packet(1, 0xa, 0xb);
  const of::Packet second = packet(2, 0xa, 0xb);
  // Second packet was sent BEFORE the first was delivered (both in
  // flight): its packet_in must NOT be a violation ("safe time").
  const std::vector<Event> events = {
      EvPacketSent{0, first}, EvPacketSent{0, second},
      EvPacketDelivered{1, first, 0xb},
      EvPacketIn{0, 1, second, of::PacketIn::Reason::kNoMatch}};
  prop.on_events(*ps, events, state_, out_);
  EXPECT_TRUE(out_.empty());
}

TEST_F(PropertiesTest, StrictDirectPathsRequiresBothDirections) {
  props::StrictDirectPaths prop;
  auto ps = prop.make_state();
  const of::Packet ab = packet(1, 0xa, 0xb);
  const of::Packet ba = packet(2, 0xb, 0xa);
  const of::Packet later = packet(3, 0xa, 0xb);

  // Only A→B delivered: a later packet reaching the controller is fine.
  {
    const std::vector<Event> events = {
        EvPacketSent{0, ab}, EvPacketDelivered{1, ab, 0xb}, EvPacketSent{0, later},
        EvPacketIn{0, 1, later, of::PacketIn::Reason::kNoMatch}};
    prop.on_events(*ps, events, state_, out_);
  }
  EXPECT_TRUE(out_.empty());

  // After B→A also delivers, a subsequent packet must not reach the
  // controller.
  const of::Packet after = packet(4, 0xa, 0xb);
  {
    const std::vector<Event> events = {
        EvPacketSent{1, ba}, EvPacketDelivered{0, ba, 0xa}, EvPacketSent{0, after},
        EvPacketIn{0, 1, after, of::PacketIn::Reason::kNoMatch}};
    prop.on_events(*ps, events, state_, out_);
  }
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].property, "StrictDirectPaths");
}

TEST_F(PropertiesTest, NoForgottenPacketsChecksSwitchBuffers) {
  props::NoForgottenPackets prop;
  auto ps = prop.make_state();
  prop.at_quiescence(*ps, state_, out_);
  EXPECT_TRUE(out_.empty());
  // Park a packet in SW0's buffer.
  state_.sw_mut(0).enqueue_packet(1, packet(1, 0xa, 0xb));
  state_.sw_mut(0).process_pkt();
  prop.at_quiescence(*ps, state_, out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].property, "NoForgottenPackets");
}

TEST_F(PropertiesTest, FlowAffinityFlagsSplitConnections) {
  props::FlowAffinity prop({1, 2});
  auto ps = prop.make_state();
  of::Packet seg1 = packet(1, 0xa, 0xb);
  seg1.hdr.ip_proto = of::kIpProtoTcp;
  seg1.hdr.ip_src = 1;
  seg1.hdr.ip_dst = 2;
  seg1.hdr.tp_src = 1024;
  seg1.hdr.tp_dst = 80;
  of::Packet seg2 = seg1;
  seg2.uid = 2;

  const std::vector<Event> ok = {EvPacketDelivered{1, seg1},
                                 EvPacketDelivered{1, seg2}};
  prop.on_events(*ps, ok, state_, out_);
  EXPECT_TRUE(out_.empty());

  of::Packet seg3 = seg1;
  seg3.uid = 3;
  const std::vector<Event> bad = {EvPacketDelivered{2, seg3}};
  prop.on_events(*ps, bad, state_, out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].property, "FlowAffinity");
}

TEST_F(PropertiesTest, FlowAffinityIgnoresNonReplicaHosts) {
  props::FlowAffinity prop({1, 2});
  auto ps = prop.make_state();
  of::Packet p = packet(1, 0xa, 0xb);
  p.hdr.ip_proto = of::kIpProtoTcp;
  const std::vector<Event> events = {EvPacketDelivered{0, p}};  // host 0
  prop.on_events(*ps, events, state_, out_);
  EXPECT_TRUE(out_.empty());
}

TEST_F(PropertiesTest, PropertyStateCloneIsIndependent) {
  props::DirectPaths prop;
  auto ps = prop.make_state();
  const of::Packet p = packet(1, 0xa, 0xb);
  auto clone = ps->clone();
  const std::vector<Event> events = {EvPacketSent{0, p},
                                     EvPacketDelivered{1, p, 0xb}};
  prop.on_events(*ps, events, state_, out_);
  // The clone must not have seen the delivery.
  util::Ser s1;
  util::Ser s2;
  ps->serialize(s1);
  clone->serialize(s2);
  EXPECT_NE(s1.hash(), s2.hash());
}

}  // namespace
}  // namespace nicemc::mc
