// Three-way differential sweep over the explored-state store modes: on
// every bundled scenario, kHash, kFullState and kCollapsed must explore
// the identical state space — identical violation key sets, unique-state
// and quiescent-state counts, and transitions — under the sequential
// driver, the threads=4 shared-deque driver, and partial-order reduction
// (kSleepPersistent). Collapsed mode must also deliver its reason to
// exist: collision-proof storage at a fraction of full-state bytes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "util/seen_set.h"

namespace nicemc::mc {
namespace {

using StoreMode = util::ShardedSeenSet::Mode;

const char* mode_name(StoreMode m) {
  switch (m) {
    case StoreMode::kHash:
      return "kHash";
    case StoreMode::kFullState:
      return "kFullState";
    case StoreMode::kCollapsed:
      return "kCollapsed";
  }
  return "?";
}

CheckerResult run_mode(apps::Scenario s, StoreMode mode, unsigned threads = 1,
                       Reduction reduction = Reduction::kNone) {
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.state_store = mode;
  opt.threads = threads;
  opt.reduction = reduction;
  Checker checker(s.config, opt, s.properties);
  return checker.run();
}

constexpr StoreMode kAllModes[] = {StoreMode::kHash, StoreMode::kFullState,
                                   StoreMode::kCollapsed};

// The store representation must be invisible to the search: same states,
// same counts, same violations, transition for transition. Hash mode is
// the baseline; any divergence would mean either a real 128-bit collision
// (astronomically unlikely on these state counts) or a bug in the
// blob/id-tuple keying.
TEST(CollapseModes, SequentialSweepAllBundledScenarios) {
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const CheckerResult base = run_mode(ns.make(), StoreMode::kHash);
    ASSERT_TRUE(base.exhausted) << ns.name;
    for (const StoreMode mode :
         {StoreMode::kFullState, StoreMode::kCollapsed}) {
      const CheckerResult r = run_mode(ns.make(), mode);
      const std::string tag = ns.name + " / " + mode_name(mode);
      EXPECT_TRUE(r.exhausted) << tag;
      EXPECT_EQ(r.unique_states, base.unique_states) << tag;
      EXPECT_EQ(r.quiescent_states, base.quiescent_states) << tag;
      EXPECT_EQ(r.transitions, base.transitions) << tag;
      EXPECT_EQ(violation_key_set(r), violation_key_set(base)) << tag;
    }
  }
}

TEST(CollapseModes, ParallelSweepAllBundledScenarios) {
  // threads=4 exhaustive runs are count-equivalent to sequential in every
  // store mode (transitions included — only ordering differs).
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const CheckerResult base = run_mode(ns.make(), StoreMode::kHash);
    for (const StoreMode mode : kAllModes) {
      const CheckerResult r = run_mode(ns.make(), mode, /*threads=*/4);
      const std::string tag = ns.name + " / " + mode_name(mode) + " / par4";
      EXPECT_TRUE(r.exhausted) << tag;
      EXPECT_EQ(r.unique_states, base.unique_states) << tag;
      EXPECT_EQ(r.quiescent_states, base.quiescent_states) << tag;
      EXPECT_EQ(r.transitions, base.transitions) << tag;
      EXPECT_EQ(violation_key_set(r), violation_key_set(base)) << tag;
    }
  }
}

TEST(CollapseModes, ReducedSweepAllBundledScenarios) {
  // Under kSleepPersistent the SleepStore keys on the store's true state
  // identity (hash bytes / blob / id tuple), so the reduced search must
  // be mode-invariant too: the sequential reduced run is deterministic,
  // transitions included.
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const CheckerResult base = run_mode(ns.make(), StoreMode::kHash,
                                        /*threads=*/1,
                                        Reduction::kSleepPersistent);
    ASSERT_TRUE(base.exhausted) << ns.name;
    for (const StoreMode mode :
         {StoreMode::kFullState, StoreMode::kCollapsed}) {
      const CheckerResult r = run_mode(ns.make(), mode, /*threads=*/1,
                                       Reduction::kSleepPersistent);
      const std::string tag =
          ns.name + " / " + mode_name(mode) + " / reduced";
      EXPECT_TRUE(r.exhausted) << tag;
      EXPECT_EQ(r.unique_states, base.unique_states) << tag;
      EXPECT_EQ(r.quiescent_states, base.quiescent_states) << tag;
      EXPECT_EQ(r.transitions, base.transitions) << tag;
      EXPECT_EQ(violation_key_set(r), violation_key_set(base)) << tag;
    }
  }
}

TEST(CollapseModes, ReducedParallelKeepsTheSoundnessContract) {
  // Parallel + reduction: which arrival claims a sleep re-expansion is
  // schedule-dependent, so transition counts may vary — states and
  // violations may not.
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const CheckerResult base = run_mode(ns.make(), StoreMode::kHash);
    for (const StoreMode mode : kAllModes) {
      const CheckerResult r =
          run_mode(ns.make(), mode, /*threads=*/4,
                   Reduction::kSleepPersistent);
      const std::string tag =
          ns.name + " / " + mode_name(mode) + " / reduced par4";
      EXPECT_TRUE(r.exhausted) << tag;
      EXPECT_EQ(r.unique_states, base.unique_states) << tag;
      EXPECT_EQ(r.quiescent_states, base.quiescent_states) << tag;
      EXPECT_LE(r.transitions, base.transitions) << tag;
      EXPECT_EQ(violation_key_set(r), violation_key_set(base)) << tag;
    }
  }
}

TEST(CollapseModes, CollapsedShrinksFullStateStore) {
  // The acceptance bar of the COLLAPSE PR on its canonical workload: on
  // the 2-ping chain the id-tuple store (tuples + interned table) must be
  // at most 0.2× the full blobs, with heavy component-level dedupe.
  const CheckerResult full =
      run_mode(apps::pyswitch_ping_chain(2), StoreMode::kFullState);
  const CheckerResult collapsed =
      run_mode(apps::pyswitch_ping_chain(2), StoreMode::kCollapsed);
  ASSERT_EQ(full.unique_states, collapsed.unique_states);
  EXPECT_LE(5 * collapsed.store_bytes, full.store_bytes);
  // Far fewer distinct component blobs than state·component slots.
  EXPECT_LT(collapsed.collapse.unique_blobs, collapsed.unique_states);
  EXPECT_GT(collapsed.collapse.dedupe_ratio, 1.0);
  // Hash mode reports no interning activity.
  const CheckerResult hash =
      run_mode(apps::pyswitch_ping_chain(2), StoreMode::kHash);
  EXPECT_EQ(hash.collapse.unique_blobs, 0u);
  EXPECT_EQ(hash.collapse.intern_calls, 0u);
}

}  // namespace
}  // namespace nicemc::mc
