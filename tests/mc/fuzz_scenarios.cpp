#include "fuzz_scenarios.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "hosts/client.h"
#include "props/direct_paths.h"
#include "props/no_forgotten_packets.h"
#include "props/no_forwarding_loops.h"
#include "util/hash.h"

namespace nicemc::apps {

namespace {

constexpr std::uint64_t kMacBase = 0x00bb00000001ULL;
constexpr std::uint32_t kIpBase = 0x0a010001;  // 10.1.0.1

struct Rng {
  util::SplitMix64 sm;
  explicit Rng(std::uint64_t seed) : sm(seed * 0x9e3779b97f4a7c15ULL + 1) {}
  std::uint64_t below(std::uint64_t n) { return sm.next_below(n); }
  bool chance(unsigned percent) { return below(100) < percent; }
};

void finish(Scenario& s) {
  s.config.topology = s.topology.get();
  s.config.app = s.app.get();
}

/// Free-form pyswitch world: random chain/ring of 1–3 switches, 2–3
/// hosts on random free ports, random ping scripts and behaviour flags.
/// Ports 1–2 of every switch host; ports 3 (left) and 4 (right) link.
Scenario fuzz_pyswitch(Rng& rng, std::string* name) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();

  // Chains only: a ring floods broadcast copies around the loop and every
  // delivery to an echo host mints a reply, so ringed echo worlds have
  // unbounded state spaces (the bundled pyswitch-bug3 preset covers the
  // ring-with-loop-property case with a bounded packet budget).
  const int nsw = 1 + static_cast<int>(rng.below(3));
  std::vector<topo::SwitchId> sws;
  for (int i = 0; i < nsw; ++i) {
    sws.push_back(s.topology->add_switch({1, 2, 3, 4}));
  }
  for (int i = 0; i + 1 < nsw; ++i) {
    s.topology->add_link(sws[static_cast<std::size_t>(i)], 4,
                         sws[static_cast<std::size_t>(i + 1)], 3);
  }

  // Hosts on distinct (switch, port ∈ {1, 2}) slots — at most the 2·nsw
  // the topology offers.
  const int nhosts =
      std::min(2 + static_cast<int>(rng.below(2)), 2 * nsw);
  std::vector<std::pair<topo::SwitchId, of::PortId>> free_slots;
  for (const topo::SwitchId sw : sws) {
    free_slots.emplace_back(sw, 1);
    free_slots.emplace_back(sw, 2);
  }
  std::vector<of::HostId> hosts;
  for (int j = 0; j < nhosts; ++j) {
    const std::size_t pick = rng.below(free_slots.size());
    const auto [sw, port] = free_slots[pick];
    free_slots.erase(free_slots.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    hosts.push_back(s.topology->add_host(
        "h" + std::to_string(j), kMacBase + static_cast<std::uint64_t>(j),
        kIpBase + static_cast<std::uint32_t>(j), sw, port));
  }

  // One mobile host, sometimes (needs a free slot to move to).
  bool mobile = false;
  if (!free_slots.empty() && rng.chance(20)) {
    mobile = true;
    const auto [sw, port] = free_slots.front();
    s.topology->add_alt_location(hosts.back(), sw, port);
  }

  PySwitchOptions ps;
  ps.microflow_grouping = rng.chance(50);
  s.app = std::make_unique<PySwitch>(ps);

  // Long chains multiply the in-flight interleavings per packet, so the
  // 3-switch worlds get a single ping; shorter ones 1–2, occasionally
  // with an ARP warm-up.
  const int pings = nsw == 3 ? 1 : 1 + static_cast<int>(rng.below(2));
  std::vector<hosts::HostBehavior> hb(static_cast<std::size_t>(nhosts));
  const std::size_t sender = 0;
  const std::size_t target = 1 + rng.below(static_cast<std::size_t>(
                                     nhosts - 1));
  hb[sender].script = hosts::l2_ping_script(
      s.topology->host(hosts[sender]), s.topology->host(hosts[target]),
      pings, /*first_flow_id=*/1);
  for (std::size_t i = 0; i < hb[sender].script.size(); ++i) {
    hb[sender].script[i].hdr.tp_src = 3000 + i;
  }
  const bool arp = rng.chance(25);
  if (arp) {
    hb[sender].script.insert(
        hb[sender].script.begin(),
        hosts::arp_request(s.topology->host(hosts[sender]),
                           kIpBase + static_cast<std::uint32_t>(target),
                           90));
  }
  hb[sender].initial_burst =
      1 + static_cast<int>(rng.below(hb[sender].script.size()));
  for (std::size_t j = 1; j < hb.size(); ++j) {
    hb[j].echo = rng.chance(60);
  }
  if (mobile) hb.back().can_move = true;

  s.config.host_behavior = std::move(hb);
  s.config.symbolic_discovery = false;
  s.config.canonical_flowtables = !rng.chance(25);
  // Fault/expiry transitions multiply the space; only with one packet.
  if (pings == 1 && !arp) {
    s.config.enable_rule_expiry = rng.chance(15);
    s.config.enable_channel_faults = rng.chance(15);
  }
  finish(s);

  switch (rng.below(4)) {
    case 0:
      s.properties.push_back(std::make_unique<props::NoForwardingLoops>());
      break;
    case 1:
      s.properties.push_back(std::make_unique<props::StrictDirectPaths>());
      break;
    case 2:
      s.properties.push_back(
          std::make_unique<props::NoForgottenPackets>());
      break;
    default:
      break;  // no property: pure state-space differential
  }

  if (name != nullptr) {
    *name = "pyswitch sw=" + std::to_string(nsw) + " hosts=" +
            std::to_string(nhosts) + " pings=" + std::to_string(pings) +
            (arp ? " arp" : "") + (mobile ? " mobile" : "") +
            (s.config.canonical_flowtables ? "" : " raw") +
            (s.config.enable_rule_expiry ? " expiry" : "") +
            (s.config.enable_channel_faults ? " faults" : "");
  }
  return s;
}

Scenario fuzz_lb(Rng& rng, std::string* name) {
  LbScenarioOptions o;
  o.fix_release_packet = rng.chance(50);
  o.fix_install_before_delete = rng.chance(50);
  o.fix_discard_arp = rng.chance(50);
  o.fix_check_assignments = rng.chance(50);
  // The concurrency knobs (ARP warm-up, replica ARP, duplicate SYN, data
  // segments) multiply each other's interleavings; allow at most one of
  // the heavy ones per scenario so broken-app variants stay exhaustively
  // searchable.
  o.client_sends_arp = rng.chance(40);
  o.client_can_dup_syn = !o.client_sends_arp && rng.chance(25);
  o.replica_sends_arp =
      !o.client_sends_arp && !o.client_can_dup_syn && rng.chance(25);
  o.data_segments =
      o.client_can_dup_syn || o.replica_sends_arp
          ? 0
          : static_cast<int>(rng.below(2));
  o.check_flow_affinity = rng.chance(30);
  if (name != nullptr) {
    *name = std::string("lb") + (o.client_sends_arp ? " arp" : "") +
            (o.replica_sends_arp ? " rarp" : "") +
            (o.client_can_dup_syn ? " dup" : "") + " seg=" +
            std::to_string(o.data_segments) +
            (o.check_flow_affinity ? " affinity" : "");
  }
  return lb_scenario(o);
}

Scenario fuzz_te(Rng& rng, std::string* name) {
  TeScenarioOptions o;
  o.fix_release_packet = rng.chance(50);
  o.fix_handle_intermediate = rng.chance(50);
  o.fix_per_flow_table = rng.chance(50);
  o.fix_lookup_all_tables = rng.chance(50);
  o.stats_rounds = static_cast<std::uint32_t>(rng.below(2));
  o.check_routing_table = rng.chance(40);
  o.flows = 1 + static_cast<int>(rng.below(2));
  if (name != nullptr) {
    *name = "te flows=" + std::to_string(o.flows) + " stats=" +
            std::to_string(o.stats_rounds) +
            (o.check_routing_table ? " routing" : "");
  }
  return te_scenario(o);
}

Scenario make(std::uint64_t seed, std::string* name) {
  Rng rng(seed);
  // Half the corpus gets the free-form topology; the app presets with
  // randomized bug knobs split the rest.
  switch (rng.below(4)) {
    case 0:
    case 1:
      return fuzz_pyswitch(rng, name);
    case 2:
      return fuzz_lb(rng, name);
    default:
      return fuzz_te(rng, name);
  }
}

}  // namespace

Scenario fuzz_scenario(std::uint64_t seed) { return make(seed, nullptr); }

std::string fuzz_scenario_name(std::uint64_t seed) {
  std::string name;
  (void)make(seed, &name);
  return "seed=" + std::to_string(seed) + " [" + name + "]";
}

}  // namespace nicemc::apps
