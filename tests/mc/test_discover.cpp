// discover_packets against the real pyswitch handler: the discovered
// equivalence classes must track the controller state, exactly as in
// Figure 4 of the paper.
#include "mc/discover.h"

#include <gtest/gtest.h>

#include "apps/pyswitch.h"
#include "apps/scenarios.h"
#include "mc/execute.h"

namespace nicemc::mc {
namespace {

TEST(Discover, EmptyMacTableYieldsFloodClasses) {
  auto s = apps::pyswitch_bug2();
  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();
  DiscoveryStats stats;
  const auto packets = discover_packets(s.config, st, /*host=*/0, stats);
  // With an empty mactable the handler has two feasible outcomes for a
  // unicast-source packet: broadcast destination vs unknown unicast
  // destination — both flood. The classes split on dst's multicast bit.
  ASSERT_GE(packets.size(), 2u);
  bool saw_bcast_dst = false;
  bool saw_unicast_dst = false;
  for (const auto& p : packets) {
    EXPECT_EQ(p.eth_src, s.config.topology->host(0).mac)
        << "source constrained to the sender";
    (((p.eth_dst >> 40) & 1) != 0 ? saw_bcast_dst : saw_unicast_dst) = true;
  }
  EXPECT_TRUE(saw_bcast_dst);
  EXPECT_TRUE(saw_unicast_dst);
}

TEST(Discover, LearnedMacCreatesNewClass) {
  auto s = apps::pyswitch_bug2();
  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();
  DiscoveryStats stats;
  const auto before = discover_packets(s.config, st, 0, stats);

  // Teach the controller where B lives; re-discovery must now contain a
  // class whose representative targets B (the install-rule path).
  auto& app_state = static_cast<apps::PySwitchState&>(*st.ctrl_mut().app);
  const auto& b = s.config.topology->host(1);
  app_state.mactable[0].put(b.mac, 2);

  const auto after = discover_packets(s.config, st, 0, stats);
  EXPECT_GT(after.size(), before.size());
  bool targets_b = false;
  for (const auto& p : after) {
    if (p.eth_dst == b.mac) targets_b = true;
  }
  EXPECT_TRUE(targets_b);
}

TEST(Discover, CacheIsKeyedByControllerState) {
  auto s = apps::pyswitch_bug2();
  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();
  DiscoveryCache cache;
  const auto h0 = st.ctrl_hash();
  cache.store_packets(0, h0, {sym::PacketFields{}});
  EXPECT_NE(cache.find_packets(0, h0), nullptr);
  EXPECT_EQ(cache.find_packets(1, h0), nullptr);

  auto& app_state = static_cast<apps::PySwitchState&>(*st.ctrl_mut().app);
  app_state.mactable[0].put(0x42, 1);
  EXPECT_EQ(cache.find_packets(0, st.ctrl_hash()), nullptr);
}

TEST(Discover, SpoofedSourcesWhenUnconstrained) {
  auto s = apps::pyswitch_bug2();
  s.config.constrain_src_to_sender = false;
  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();
  DiscoveryStats stats;
  const auto packets = discover_packets(s.config, st, 0, stats);
  // Without the domain constraint the broadcast-source class appears
  // (Figure 3 line 6 not taken).
  bool saw_mcast_src = false;
  for (const auto& p : packets) {
    if (((p.eth_src >> 40) & 1) != 0) saw_mcast_src = true;
  }
  EXPECT_TRUE(saw_mcast_src);
}

TEST(Discover, StatsClassesSplitOnThreshold) {
  auto s = apps::te_scenario(apps::TeScenarioOptions{
      .fix_release_packet = true,
      .fix_handle_intermediate = true,
      .stats_rounds = 1,
  });
  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();
  DiscoveryStats stats;
  const auto classes = discover_stats(s.config, st, /*sw=*/0, stats);
  // The TE stats handler branches once on tx_bytes > threshold: two
  // classes, one on each side.
  ASSERT_EQ(classes.size(), 2u);
  const auto& te = static_cast<const apps::RespondTe&>(*s.config.app);
  const std::uint32_t threshold = te.options().threshold;
  bool low = false;
  bool high = false;
  for (const auto& cls : classes) {
    for (const auto& [port, bytes] : cls) {
      if (port == te.options().monitored_port) {
        (bytes > threshold ? high : low) = true;
      }
    }
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

}  // namespace
}  // namespace nicemc::mc
