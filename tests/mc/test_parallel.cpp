// The parallel search core: 1-thread determinism against an independent
// reference DFS (the original recursive checker's algorithm, re-implemented
// here from scratch), count-equivalence of the N-thread driver and the
// alternative frontiers, and the random-walk portfolio.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"

namespace nicemc::mc {
namespace {

struct RefCounts {
  std::uint64_t transitions{0};
  std::uint64_t unique_states{0};
  std::uint64_t revisits{0};
  std::uint64_t quiescent_states{0};
};

/// Straight-line re-implementation of the original single-threaded DFS
/// (explicit stack, one global seen-set, clone-per-transition). Kept
/// independent of SearchCore/Frontier so it pins the semantics the
/// refactored engine must reproduce.
RefCounts reference_dfs(const apps::Scenario& s) {
  const CheckerOptions options;
  Executor executor(s.config, s.properties);
  DiscoveryCache cache;
  std::unordered_set<util::Hash128> seen;
  RefCounts r;

  struct Entry {
    std::shared_ptr<const SystemState> state;
    Transition transition;
  };

  SystemState initial = executor.make_initial();
  seen.insert(initial.hash(s.config.canonical_flowtables));
  r.unique_states = 1;

  std::vector<Entry> stack;
  auto initial_sp = std::make_shared<const SystemState>(initial.clone());
  auto ts0 = apply_strategy(options.strategy, s.config, *initial_sp,
                            executor.enabled(*initial_sp, cache));
  if (ts0.empty()) ++r.quiescent_states;
  for (Transition& t : ts0) stack.push_back(Entry{initial_sp, std::move(t)});

  while (!stack.empty()) {
    Entry e = std::move(stack.back());
    stack.pop_back();
    SystemState next = e.state->clone();
    std::vector<Violation> violations;
    executor.apply(next, e.transition, violations);
    ++r.transitions;
    if (!violations.empty()) continue;
    if (!seen.insert(next.hash(s.config.canonical_flowtables)).second) {
      ++r.revisits;
      continue;
    }
    ++r.unique_states;
    auto ts = apply_strategy(options.strategy, s.config, next,
                             executor.enabled(next, cache));
    if (ts.empty()) {
      ++r.quiescent_states;
      continue;
    }
    auto sp = std::make_shared<const SystemState>(std::move(next));
    for (Transition& t : ts) stack.push_back(Entry{sp, std::move(t)});
  }
  return r;
}

CheckerResult run_with(const apps::Scenario& s, CheckerOptions opt) {
  Checker checker(s.config, opt, s.properties);
  return checker.run();
}

TEST(ParallelSearch, OneThreadDfsMatchesReferenceDfs) {
  for (int pings : {1, 2}) {
    auto s = apps::pyswitch_ping_chain(pings);
    const RefCounts ref = reference_dfs(s);
    const CheckerResult r = run_with(s, CheckerOptions{});
    EXPECT_EQ(r.transitions, ref.transitions) << "pings=" << pings;
    EXPECT_EQ(r.unique_states, ref.unique_states) << "pings=" << pings;
    EXPECT_EQ(r.revisits, ref.revisits) << "pings=" << pings;
    EXPECT_EQ(r.quiescent_states, ref.quiescent_states)
        << "pings=" << pings;
    EXPECT_TRUE(r.exhausted);
  }
}

TEST(ParallelSearch, MultiThreadCountEquivalentToSequential) {
  CheckerOptions base;
  base.stop_at_first_violation = false;
  const CheckerResult seq = run_with(apps::pyswitch_ping_chain(2), base);
  for (unsigned threads : {2u, 4u}) {
    CheckerOptions opt = base;
    opt.threads = threads;
    const CheckerResult par = run_with(apps::pyswitch_ping_chain(2), opt);
    EXPECT_EQ(par.unique_states, seq.unique_states) << threads;
    EXPECT_EQ(par.transitions, seq.transitions) << threads;
    EXPECT_EQ(par.revisits, seq.revisits) << threads;
    EXPECT_EQ(par.quiescent_states, seq.quiescent_states) << threads;
    EXPECT_EQ(par.store_bytes, seq.store_bytes) << threads;
    EXPECT_TRUE(par.exhausted) << threads;
  }
}

TEST(ParallelSearch, MultiThreadCountEquivalentUnderStrategies) {
  // bench_parallel's runtime equivalence check only exercises the default
  // strategy; pin the contract for the heuristic strategies too. FLOW-IR
  // is a pure function of the canonical state, so its equality is
  // structural. UNUSUAL reads send-order tags excluded from state
  // identity; on this scenario the surviving subspaces of divergently-
  // tagged arrivals are count-symmetric (stress-verified), but if this
  // ever flakes under real parallelism, weaken the kUnusual case to
  // violation-set equality rather than papering over it with a retry.
  for (const Strategy strategy : {Strategy::kFlowIr, Strategy::kUnusual}) {
    auto make = [&] {
      auto s = apps::pyswitch_ping_chain(2);
      CheckerOptions opt;
      opt.stop_at_first_violation = false;
      apps::set_strategy(s, opt, strategy);
      return std::pair{std::move(s), opt};
    };
    auto [s_seq, opt_seq] = make();
    const CheckerResult seq = run_with(s_seq, opt_seq);
    ASSERT_TRUE(seq.exhausted) << strategy_name(strategy);
    for (unsigned threads : {2u, 4u}) {
      auto [s_par, opt_par] = make();
      opt_par.threads = threads;
      const CheckerResult par = run_with(s_par, opt_par);
      const std::string tag =
          strategy_name(strategy) + " threads=" + std::to_string(threads);
      EXPECT_EQ(par.transitions, seq.transitions) << tag;
      EXPECT_EQ(par.unique_states, seq.unique_states) << tag;
      EXPECT_EQ(par.revisits, seq.revisits) << tag;
      EXPECT_EQ(par.quiescent_states, seq.quiescent_states) << tag;
      EXPECT_TRUE(par.exhausted) << tag;
    }
  }
}

TEST(ParallelSearch, MultiThreadFindsSameViolationSet) {
  apps::LbScenarioOptions o;
  o.fix_install_before_delete = true;
  o.client_sends_arp = true;
  CheckerOptions base;
  base.stop_at_first_violation = false;

  // Messages embed packet uid.copy_id values, which are path-dependent:
  // several interleavings reach the same canonical state and the thread
  // that wins the seen-set insert reports the violation, so the raw text
  // varies run to run. violation_keys (mc/search_core.h) normalizes the
  // uid=X.Y naming before comparing; multiplicity is preserved.
  const CheckerResult seq = run_with(apps::lb_scenario(o), base);
  CheckerOptions opt = base;
  opt.threads = 4;
  const CheckerResult par = run_with(apps::lb_scenario(o), opt);
  EXPECT_EQ(par.unique_states, seq.unique_states);
  EXPECT_EQ(violation_keys(par), violation_keys(seq));
  EXPECT_TRUE(par.exhausted);
}

TEST(ParallelSearch, MultiThreadStopsAtFirstViolation) {
  auto s = apps::pyswitch_bug2();
  CheckerOptions opt;
  opt.threads = 4;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation());
  EXPECT_FALSE(r.exhausted);
  // The violation carries a usable replay trace.
  EXPECT_FALSE(r.violations.front().trace.empty());
}

TEST(ParallelSearch, BfsFrontierCountEquivalent) {
  const CheckerResult dfs =
      run_with(apps::pyswitch_ping_chain(2), CheckerOptions{});
  CheckerOptions opt;
  opt.frontier = FrontierKind::kBfs;
  const CheckerResult bfs = run_with(apps::pyswitch_ping_chain(2), opt);
  EXPECT_EQ(bfs.unique_states, dfs.unique_states);
  EXPECT_EQ(bfs.transitions, dfs.transitions);
  EXPECT_EQ(bfs.revisits, dfs.revisits);
  EXPECT_TRUE(bfs.exhausted);
}

TEST(ParallelSearch, RandomFrontierCountEquivalentAndSeedStable) {
  CheckerOptions opt;
  opt.frontier = FrontierKind::kRandom;
  opt.frontier_seed = 7;
  const CheckerResult a = run_with(apps::pyswitch_ping_chain(2), opt);
  const CheckerResult b = run_with(apps::pyswitch_ping_chain(2), opt);
  const CheckerResult dfs =
      run_with(apps::pyswitch_ping_chain(2), CheckerOptions{});
  EXPECT_EQ(a.unique_states, dfs.unique_states);
  EXPECT_EQ(a.transitions, dfs.transitions);
  EXPECT_EQ(a.transitions, b.transitions);  // same seed → same order
  EXPECT_TRUE(a.exhausted);
}

TEST(ParallelSearch, BfsFindsShortestCounterexample) {
  // BFS counterexamples are minimal-length; DFS traces can only be equal
  // or longer on the same scenario.
  auto run_bug = [](FrontierKind kind) {
    auto s = apps::pyswitch_bug2();
    CheckerOptions opt;
    opt.frontier = kind;
    Checker checker(s.config, opt, s.properties);
    return checker.run();
  };
  const CheckerResult bfs = run_bug(FrontierKind::kBfs);
  const CheckerResult dfs = run_bug(FrontierKind::kDfs);
  ASSERT_TRUE(bfs.found_violation());
  ASSERT_TRUE(dfs.found_violation());
  EXPECT_LE(bfs.violations.front().trace.size(),
            dfs.violations.front().trace.size());
}

TEST(ParallelSearch, RandomWalkCountsRevisits) {
  // Repeated walks traverse overlapping prefixes: remember_state misses
  // must be counted as revisits (the seed walker silently dropped them).
  auto s = apps::pyswitch_ping_chain(1);
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.random_walk(/*seed=*/1, /*walks=*/10,
                                              /*max_steps=*/100);
  EXPECT_GT(r.revisits, 0u);
  EXPECT_EQ(r.transitions, r.unique_states + r.revisits);
}

TEST(ParallelSearch, RandomWalkPortfolioTerminatesAndCounts) {
  auto s = apps::pyswitch_ping_chain(2);
  CheckerOptions opt;
  opt.threads = 4;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.random_walk(/*seed=*/42, /*walks=*/8,
                                              /*max_steps=*/200);
  EXPECT_GT(r.transitions, 0u);
  EXPECT_GT(r.unique_states, 0u);
  EXPECT_EQ(r.transitions, r.unique_states + r.revisits);
  EXPECT_FALSE(r.found_violation());
}

TEST(ParallelSearch, RandomWalkPortfolioFindsKnownBug) {
  auto s = apps::pyswitch_bug2();
  CheckerOptions opt;
  opt.threads = 4;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.random_walk(/*seed=*/3, /*walks=*/64,
                                              /*max_steps=*/400);
  EXPECT_TRUE(r.found_violation());
}

TEST(ParallelSearch, ParallelFullStateStoreCountEquivalent) {
  CheckerOptions base;
  base.stop_at_first_violation = false;
  base.state_store = util::ShardedSeenSet::Mode::kFullState;
  const CheckerResult seq = run_with(apps::pyswitch_ping_chain(2), base);
  CheckerOptions opt = base;
  opt.threads = 4;
  const CheckerResult par = run_with(apps::pyswitch_ping_chain(2), opt);
  EXPECT_EQ(par.unique_states, seq.unique_states);
  EXPECT_EQ(par.store_bytes, seq.store_bytes);
}

TEST(ParallelSearch, ParallelCollapsedStoreCountEquivalent) {
  // The interning path is the one with real cross-thread sharing (the
  // CollapseTable and the per-snapshot id memos); the parallel run must
  // land on the identical explored set and the identical id-tuple bytes.
  CheckerOptions base;
  base.stop_at_first_violation = false;
  base.state_store = util::ShardedSeenSet::Mode::kCollapsed;
  const CheckerResult seq = run_with(apps::pyswitch_ping_chain(2), base);
  CheckerOptions opt = base;
  opt.threads = 4;
  const CheckerResult par = run_with(apps::pyswitch_ping_chain(2), opt);
  EXPECT_EQ(par.unique_states, seq.unique_states);
  EXPECT_EQ(par.store_bytes, seq.store_bytes);
  EXPECT_EQ(par.collapse.unique_blobs, seq.collapse.unique_blobs);
  EXPECT_EQ(par.collapse.interned_bytes, seq.collapse.interned_bytes);
}

TEST(ParallelSearch, ParallelRespectsTransitionLimitApproximately) {
  auto s = apps::pyswitch_ping_chain(3);
  CheckerOptions opt;
  opt.threads = 4;
  opt.max_transitions = 200;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_FALSE(r.exhausted);
  // Workers in flight when the limit trips may each add one transition.
  EXPECT_LE(r.transitions, 200u + opt.threads);
}

}  // namespace
}  // namespace nicemc::mc
