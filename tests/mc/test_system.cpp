#include "mc/system.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/execute.h"

namespace nicemc::mc {
namespace {

TEST(System, InitialStateIsDeterministic) {
  auto s = apps::pyswitch_ping_chain(2);
  Executor ex(s.config, s.properties);
  const SystemState a = ex.make_initial();
  const SystemState b = ex.make_initial();
  EXPECT_EQ(a.hash(true), b.hash(true));
}

TEST(System, CloneIsDeepForControllerState) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  SystemState a = ex.make_initial();
  SystemState b = a.clone();
  EXPECT_EQ(a.hash(true), b.hash(true));
  // Mutating the clone's app state must not affect the original.
  auto& st = static_cast<apps::PySwitchState&>(*b.ctrl_mut().app);
  st.mactable[0].put(0x42, 7);
  EXPECT_NE(a.hash(true), b.hash(true));
}

TEST(System, CloneIsDeepForSwitchesAndHosts) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  SystemState a = ex.make_initial();
  SystemState b = a.clone();
  b.sw_mut(0).enqueue_packet(1, of::Packet{});
  EXPECT_NE(a.hash(true), b.hash(true));
  SystemState c = a.clone();
  c.host_mut(0).burst += 1;
  EXPECT_NE(a.hash(true), c.hash(true));
}

TEST(System, CtrlHashIgnoresNetworkState) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  SystemState a = ex.make_initial();
  const auto before = a.ctrl_hash();
  a.sw_mut(0).enqueue_packet(1, of::Packet{});
  a.host_mut(0).burst += 3;
  EXPECT_EQ(a.ctrl_hash(), before);
  auto& st = static_cast<apps::PySwitchState&>(*a.ctrl_mut().app);
  st.mactable[0].put(0x42, 7);
  EXPECT_NE(a.ctrl_hash(), before);
}

TEST(System, UidCountersAffectHash) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  SystemState a = ex.make_initial();
  SystemState b = a.clone();
  b.next_uid += 1;
  EXPECT_NE(a.hash(true), b.hash(true));
}

TEST(System, TotalForgottenSumsSwitchBuffers) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  SystemState a = ex.make_initial();
  EXPECT_EQ(a.total_forgotten(), 0u);
  a.sw_mut(0).enqueue_packet(1, of::Packet{});
  a.sw_mut(0).process_pkt();  // no rule: buffers the packet
  EXPECT_EQ(a.total_forgotten(), 1u);
}

}  // namespace
}  // namespace nicemc::mc
