// Randomized scenario differential fuzz: ≥100 seeded mini-scenarios
// (fuzz_scenarios.h — random topology, random app, random host mix and
// packet counts), each swept across every reduction mode × every
// state-store representation × sequential and 4-thread drivers. On an
// exhaustive run every combination must agree with the unreduced
// hash-store baseline on the violation key set, the unique-state count
// and the quiescent-state count; reducing modes must never explore more
// transitions, and kSourceDpor must never explore more than
// kSleepPersistent (sequential, per store — parallel transition counts
// are schedule-dependent and only bounded by the unreduced count).
//
// This is the mechanical soundness argument for the reduction layer: the
// algebra of sleep sets, wakeup trees and store identities is easy to
// get subtly wrong, so it is established by differential search over a
// generated corpus rather than by inspection.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fuzz_scenarios.h"
#include "mc/checker.h"
#include "mc/checkpoint.h"
#include "util/hash.h"

namespace nicemc::mc {
namespace {

constexpr std::uint64_t kSeedBase = 1000;
constexpr std::uint64_t kSeeds = 120;  // ≥ 100, per the harness contract

CheckerResult run(std::uint64_t seed, Reduction reduction,
                  util::ShardedSeenSet::Mode store, unsigned threads,
                  bool memo = true, bool telemetry = false) {
  apps::Scenario s = apps::fuzz_scenario(seed);
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.reduction = reduction;
  opt.state_store = store;
  opt.threads = threads;
  opt.memo = memo;
  opt.telemetry = telemetry;
  Checker checker(s.config, opt, s.properties);
  return checker.run();
}

constexpr Reduction kReductions[] = {
    Reduction::kNone, Reduction::kSleep, Reduction::kSleepPersistent,
    Reduction::kSourceDpor};
constexpr util::ShardedSeenSet::Mode kStores[] = {
    util::ShardedSeenSet::Mode::kHash,
    util::ShardedSeenSet::Mode::kFullState,
    util::ShardedSeenSet::Mode::kCollapsed};

TEST(FuzzScenarios, DifferentialSweepAcrossReductionsStoresAndThreads) {
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + kSeeds; ++seed) {
    const CheckerResult base =
        run(seed, Reduction::kNone, util::ShardedSeenSet::Mode::kHash, 1);
    const std::string tag = apps::fuzz_scenario_name(seed);
    ASSERT_TRUE(base.exhausted) << tag;
    // Generator contract: mini-scenarios stay exhaustively searchable.
    ASSERT_LT(base.transitions, 40000u) << tag;

    const auto base_keys = violation_key_set(base);
    for (const util::ShardedSeenSet::Mode store : kStores) {
      std::uint64_t persistent_seq = 0;
      for (const Reduction r : kReductions) {
        for (const unsigned threads : {1u, 4u}) {
          if (r == Reduction::kNone && threads == 1 &&
              store == util::ShardedSeenSet::Mode::kHash) {
            persistent_seq = base.transitions;
            continue;  // that run is `base` itself
          }
          const CheckerResult cr = run(seed, r, store, threads);
          const std::string cell = tag + " / " + reduction_name(r) +
                                   " store=" +
                                   std::to_string(static_cast<int>(store)) +
                                   " threads=" + std::to_string(threads);
          EXPECT_TRUE(cr.exhausted) << cell;
          EXPECT_EQ(cr.unique_states, base.unique_states) << cell;
          EXPECT_EQ(cr.quiescent_states, base.quiescent_states) << cell;
          EXPECT_EQ(violation_key_set(cr), base_keys) << cell;
          if (r == Reduction::kNone) {
            // Unreduced exhaustive runs are count-equivalent in every
            // store and thread configuration.
            EXPECT_EQ(cr.transitions, base.transitions) << cell;
          } else {
            EXPECT_LE(cr.transitions, base.transitions) << cell;
          }
          if (threads == 1) {
            if (r == Reduction::kSleepPersistent) {
              persistent_seq = cr.transitions;
            } else if (r == Reduction::kSourceDpor) {
              // The Source-DPOR gate, per store mode: lazily-paid
              // replays never make the sequential search worse than
              // persistent-scheduled sleep sets.
              EXPECT_LE(cr.transitions, persistent_seq) << cell;
            }
          }
        }
      }
    }
  }
}

TEST(FuzzScenarios, FaultBudgetAxisIsCountIdenticalAcrossTheGrid) {
  // The bounded fault-injection axis: layer one seeded fault class (link
  // failures / controller-channel loss / switch restarts) with a seeded
  // budget of 0–2 onto generated worlds and require the full reduction ×
  // store × thread grid to agree with the unreduced hash-store baseline
  // of the same faulty configuration. Budget 0 pins the cap-gate (the
  // class is enabled but can never fire); budgets 1–2 grow the space with
  // real fault interleavings.
  constexpr std::uint64_t kSubset = 18;
  std::uint64_t swept = 0;
  for (std::uint64_t seed = kSeedBase;
       swept < kSubset && seed < kSeedBase + kSeeds; ++seed) {
    const CheckerResult plain =
        run(seed, Reduction::kNone, util::ShardedSeenSet::Mode::kHash, 1);
    // Faults multiply the space; keep the grid affordable by lifting the
    // axis only onto the smaller worlds.
    if (!plain.exhausted || plain.transitions > 2000) continue;
    const std::uint64_t i = swept++;
    const std::uint32_t budget = static_cast<std::uint32_t>(i % 3);
    const std::uint64_t fault_class = (i / 3) % 3;

    auto make_faulty = [&] {
      apps::Scenario s = apps::fuzz_scenario(seed);
      switch (fault_class) {
        case 0:
          if (!s.topology->links().empty()) {
            s.config.enable_link_faults = true;
            s.config.max_link_failures = budget;
            break;
          }
          [[fallthrough]];  // single-switch world: no links to fail
        case 1:
          s.config.enable_ctrl_channel_faults = true;
          s.config.max_channel_losses = budget;
          break;
        default:
          // Restarts are the heaviest class (they re-enable from any
          // state until the budget runs dry): cap at one reboot.
          s.config.enable_switch_restarts = true;
          s.config.max_switch_restarts = budget == 0 ? 0 : 1;
          break;
      }
      return s;
    };
    auto frun = [&](Reduction r, util::ShardedSeenSet::Mode store,
                    unsigned threads) {
      apps::Scenario s = make_faulty();
      CheckerOptions opt;
      opt.stop_at_first_violation = false;
      opt.reduction = r;
      opt.state_store = store;
      opt.threads = threads;
      Checker checker(s.config, opt, s.properties);
      return checker.run();
    };

    const CheckerResult base =
        frun(Reduction::kNone, util::ShardedSeenSet::Mode::kHash, 1);
    const std::string tag = apps::fuzz_scenario_name(seed) + " class=" +
                            std::to_string(fault_class) + " budget=" +
                            std::to_string(budget);
    ASSERT_TRUE(base.exhausted) << tag;
    if (budget == 0) {
      // Cap 0: the class contributes no transitions at all.
      EXPECT_EQ(base.transitions, plain.transitions) << tag;
      EXPECT_EQ(base.unique_states, plain.unique_states) << tag;
    }
    const auto base_keys = violation_key_set(base);
    for (const util::ShardedSeenSet::Mode store : kStores) {
      for (const Reduction r : kReductions) {
        for (const unsigned threads : {1u, 4u}) {
          if (r == Reduction::kNone && threads == 1 &&
              store == util::ShardedSeenSet::Mode::kHash) {
            continue;  // that run is `base` itself
          }
          const CheckerResult cr = frun(r, store, threads);
          const std::string cell = tag + " / " + reduction_name(r) +
                                   " store=" +
                                   std::to_string(static_cast<int>(store)) +
                                   " threads=" + std::to_string(threads);
          EXPECT_TRUE(cr.exhausted) << cell;
          EXPECT_EQ(cr.unique_states, base.unique_states) << cell;
          EXPECT_EQ(cr.quiescent_states, base.quiescent_states) << cell;
          EXPECT_EQ(violation_key_set(cr), base_keys) << cell;
          if (r == Reduction::kNone) {
            EXPECT_EQ(cr.transitions, base.transitions) << cell;
          } else {
            EXPECT_LE(cr.transitions, base.transitions) << cell;
          }
        }
      }
    }
  }
  EXPECT_EQ(swept, kSubset);
}

TEST(FuzzScenarios, MemoKnobIsCountInvisibleAcrossReductionsAndStores) {
  // The memoization layer (CheckerOptions::memo) caches pure functions —
  // footprints and discovery results — so flipping it must change wall
  // time only, never what the search explores or reports. Differential
  // sweep on a corpus subset: memo-off must reproduce the memo-on counts
  // exactly, per reduction × store cell (sequential, where counts are
  // deterministic).
  constexpr std::uint64_t kSubset = 24;
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + kSubset; ++seed) {
    const std::string tag = apps::fuzz_scenario_name(seed);
    for (const util::ShardedSeenSet::Mode store : kStores) {
      for (const Reduction r : kReductions) {
        const CheckerResult on = run(seed, r, store, 1, /*memo=*/true);
        const CheckerResult off = run(seed, r, store, 1, /*memo=*/false);
        const std::string cell = tag + " / " + reduction_name(r) +
                                 " store=" +
                                 std::to_string(static_cast<int>(store));
        EXPECT_EQ(on.transitions, off.transitions) << cell;
        EXPECT_EQ(on.unique_states, off.unique_states) << cell;
        EXPECT_EQ(on.quiescent_states, off.quiescent_states) << cell;
        EXPECT_EQ(violation_key_set(on), violation_key_set(off)) << cell;
        // The off runs must not touch the memo at all.
        EXPECT_EQ(off.memo.footprint_hits + off.memo.footprint_misses +
                      off.memo.discover_hits + off.memo.discover_misses +
                      off.memo.bytes,
                  0u)
            << cell;
      }
    }
  }
}

TEST(FuzzScenarios, TelemetryKnobIsCountInvisibleAcrossDrivers) {
  // The observability axis: telemetry is pure observation, so flipping it
  // must never change what the search explores or reports — per
  // reduction, sequential and 4-thread (the parallel driver has its own
  // instrumentation points: idle scopes, gauge publication under the
  // shared lock). Full-binary sanitizer CI jobs run this sweep under
  // TSan/ASan, which is where the reporter-vs-worker relaxed-atomic
  // protocol earns its keep.
  constexpr std::uint64_t kSubset = 16;
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + kSubset; ++seed) {
    const std::string tag = apps::fuzz_scenario_name(seed);
    for (const Reduction r : kReductions) {
      for (const unsigned threads : {1u, 4u}) {
        const CheckerResult off =
            run(seed, r, util::ShardedSeenSet::Mode::kHash, threads,
                /*memo=*/true, /*telemetry=*/false);
        const CheckerResult on =
            run(seed, r, util::ShardedSeenSet::Mode::kHash, threads,
                /*memo=*/true, /*telemetry=*/true);
        const std::string cell = tag + " / " + reduction_name(r) +
                                 " threads=" + std::to_string(threads);
        EXPECT_EQ(on.unique_states, off.unique_states) << cell;
        EXPECT_EQ(on.quiescent_states, off.quiescent_states) << cell;
        EXPECT_EQ(violation_key_set(on), violation_key_set(off)) << cell;
        if (threads == 1) {
          // Sequential searches are fully deterministic, so the
          // transition count must match exactly too.
          EXPECT_EQ(on.transitions, off.transitions) << cell;
        }
        EXPECT_TRUE(on.telemetry.enabled) << cell;
        EXPECT_FALSE(off.telemetry.enabled) << cell;
      }
    }
  }
}

TEST(FuzzScenarios, SourceDporKeepsTheContractAcrossFrontiers) {
  // Under DFS the lazily-attached wakeup replays almost never activate
  // (the commuted twin of a re-expanded child is already seen); BFS and
  // random-priority orders are where re-expanded children win first
  // arrivals, conditional sleeps engage, and the targeted/claim-free
  // arrival machinery actually runs. Sweep the whole corpus under both
  // and require the activation path to be genuinely exercised.
  std::uint64_t replays = 0;
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + kSeeds; ++seed) {
    const CheckerResult base =
        run(seed, Reduction::kNone, util::ShardedSeenSet::Mode::kHash, 1);
    for (const FrontierKind kind :
         {FrontierKind::kBfs, FrontierKind::kRandom}) {
      apps::Scenario s = apps::fuzz_scenario(seed);
      CheckerOptions opt;
      opt.stop_at_first_violation = false;
      opt.reduction = Reduction::kSourceDpor;
      opt.frontier = kind;
      Checker checker(s.config, opt, s.properties);
      const CheckerResult cr = checker.run();
      const std::string cell =
          apps::fuzz_scenario_name(seed) + " / " + frontier_name(kind);
      EXPECT_TRUE(cr.exhausted) << cell;
      EXPECT_EQ(cr.unique_states, base.unique_states) << cell;
      EXPECT_EQ(cr.quiescent_states, base.quiescent_states) << cell;
      EXPECT_EQ(violation_key_set(cr), violation_key_set(base)) << cell;
      EXPECT_LE(cr.transitions, base.transitions) << cell;
      replays += cr.wakeup.replays;
    }
  }
  EXPECT_GT(replays, 0u);
}

TEST(FuzzScenarios, InterruptAtSeededPointAndResumeIsCountIdentical) {
  // The durability axis (mc/checkpoint.h) of the differential harness:
  // each scenario's search is cut at a seeded random transition count
  // (the halt writes the at-halt checkpoint), resumed without the cap,
  // and must report totals identical to the uninterrupted run. The
  // reduction, store, frontier and thread axes rotate per seed so the
  // subset still covers every combination class. Kill points past the
  // end of the search double as resume-of-a-finished-run coverage.
  constexpr std::uint64_t kSubset = 32;
  constexpr FrontierKind kFrontiers[] = {
      FrontierKind::kDfs, FrontierKind::kBfs, FrontierKind::kRandom};
  util::SplitMix64 kill_rng(0xD00DFEEDULL);
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + kSubset; ++seed) {
    const std::uint64_t i = seed - kSeedBase;
    CheckerOptions opt;
    opt.stop_at_first_violation = false;
    opt.reduction = kReductions[i % 4];
    opt.state_store = kStores[i % 3];
    opt.frontier = kFrontiers[i % 3];
    opt.threads = (i % 2) == 0 ? 1u : 4u;

    apps::Scenario s = apps::fuzz_scenario(seed);
    const CheckerResult full = [&] {
      apps::Scenario sf = apps::fuzz_scenario(seed);
      Checker c(sf.config, opt, sf.properties);
      return c.run();
    }();
    const std::string cell = apps::fuzz_scenario_name(seed) + " / " +
                             reduction_name(opt.reduction) + " store=" +
                             std::to_string(static_cast<int>(opt.state_store)) +
                             " " + frontier_name(opt.frontier) +
                             " threads=" + std::to_string(opt.threads);
    ASSERT_TRUE(full.exhausted) << cell;

    const std::string path =
        ::testing::TempDir() + "nicemc_fuzz_ckpt_" + std::to_string(seed);
    std::remove(checkpoint_slot_a(path).c_str());
    std::remove(checkpoint_slot_b(path).c_str());
    CheckerOptions cut = opt;
    cut.checkpoint_path = path;
    cut.checkpoint_interval_seconds = 0;
    cut.max_transitions = 1 + kill_rng.next_below(full.transitions + 1);
    {
      apps::Scenario sc = apps::fuzz_scenario(seed);
      Checker c(sc.config, cut, sc.properties);
      (void)c.run();
    }
    cut.max_transitions = ~0ULL;
    cut.resume = true;
    apps::Scenario sr = apps::fuzz_scenario(seed);
    Checker c(sr.config, cut, sr.properties);
    const CheckerResult resumed = c.run();
    EXPECT_TRUE(resumed.exhausted) << cell;
    EXPECT_EQ(resumed.unique_states, full.unique_states) << cell;
    EXPECT_EQ(resumed.quiescent_states, full.quiescent_states) << cell;
    EXPECT_EQ(violation_key_set(resumed), violation_key_set(full)) << cell;
    if (opt.threads == 1 || opt.reduction == Reduction::kNone) {
      EXPECT_EQ(resumed.transitions, full.transitions) << cell;
    }
    std::remove(checkpoint_slot_a(path).c_str());
    std::remove(checkpoint_slot_b(path).c_str());
  }
}

TEST(FuzzScenarios, SymmetryAxisKeepsViolationSetsOnTheCorpus) {
  // The symmetry axis over generated worlds. No fuzz scenario declares
  // orbits, so this isolates the uid-renumbering half of the canonical
  // key (plus the next_uid exclusion rule): across stores and drivers,
  // a symmetry-on run may merge states that differ only in uid
  // allocation history but must report the identical violation key set
  // (violation keys already normalize uid digits) and never *more*
  // unique states than the unreduced baseline.
  constexpr std::uint64_t kSubset = 24;
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + kSubset; ++seed) {
    const CheckerResult base =
        run(seed, Reduction::kNone, util::ShardedSeenSet::Mode::kHash, 1);
    const std::string tag = apps::fuzz_scenario_name(seed);
    ASSERT_TRUE(base.exhausted) << tag;
    const auto base_keys = violation_key_set(base);
    for (const util::ShardedSeenSet::Mode store : kStores) {
      for (const unsigned threads : {1u, 4u}) {
        apps::Scenario s = apps::fuzz_scenario(seed);
        CheckerOptions opt;
        opt.stop_at_first_violation = false;
        opt.symmetry = true;
        opt.state_store = store;
        opt.threads = threads;
        Checker checker(s.config, opt, s.properties);
        const CheckerResult cr = checker.run();
        const std::string cell = tag + " / sym store=" +
                                 std::to_string(static_cast<int>(store)) +
                                 " threads=" + std::to_string(threads);
        EXPECT_TRUE(cr.exhausted) << cell;
        EXPECT_EQ(violation_key_set(cr), base_keys) << cell;
        EXPECT_LE(cr.unique_states, base.unique_states) << cell;
        EXPECT_LE(cr.quiescent_states, base.quiescent_states) << cell;
        EXPECT_TRUE(cr.symmetry.enabled) << cell;
        EXPECT_EQ(cr.symmetry.orbits, 0u) << cell;
      }
    }
  }
}

TEST(FuzzScenarios, GeneratorIsDeterministicPerSeed) {
  // Same seed → same scenario: the differential sweep compares runs of
  // independently constructed Scenario objects, which is only meaningful
  // if reconstruction is bit-stable.
  for (const std::uint64_t seed : {kSeedBase, kSeedBase + 17}) {
    const CheckerResult a =
        run(seed, Reduction::kNone, util::ShardedSeenSet::Mode::kHash, 1);
    const CheckerResult b =
        run(seed, Reduction::kNone, util::ShardedSeenSet::Mode::kHash, 1);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.unique_states, b.unique_states);
    EXPECT_EQ(violation_key_set(a), violation_key_set(b));
    EXPECT_EQ(apps::fuzz_scenario_name(seed), apps::fuzz_scenario_name(seed));
  }
}

TEST(FuzzScenarios, CorpusCoversAllFamiliesAndFindsViolations) {
  // The corpus must actually exercise the interesting axes: every app
  // family appears, some scenario reports a violation, and some scenario
  // is violation-free (so the equality checks are not vacuous).
  bool pyswitch = false, lb = false, te = false;
  bool violating = false, clean = false;
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + kSeeds; ++seed) {
    const std::string name = apps::fuzz_scenario_name(seed);
    pyswitch = pyswitch || name.find("pyswitch") != std::string::npos;
    lb = lb || name.find("[lb") != std::string::npos;
    te = te || name.find("[te") != std::string::npos;
    const CheckerResult r =
        run(seed, Reduction::kNone, util::ShardedSeenSet::Mode::kHash, 1);
    violating = violating || r.found_violation();
    clean = clean || (!r.found_violation() && r.exhausted);
  }
  EXPECT_TRUE(pyswitch);
  EXPECT_TRUE(lb);
  EXPECT_TRUE(te);
  EXPECT_TRUE(violating);
  EXPECT_TRUE(clean);
}

}  // namespace
}  // namespace nicemc::mc
