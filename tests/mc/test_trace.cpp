#include "mc/trace.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/checker.h"

namespace nicemc::mc {
namespace {

TEST(Trace, ViolationTraceReplaysDeterministically) {
  auto s = apps::pyswitch_bug2();
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation());
  const auto& record = r.violations.front();
  ASSERT_FALSE(record.trace.empty());

  // Replaying the trace re-raises the same property violation.
  auto s2 = apps::pyswitch_bug2();
  Executor ex(s2.config, s2.properties);
  std::vector<Violation> violations;
  (void)replay(ex, record.trace, violations);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().property, record.violation.property);
}

TEST(Trace, ReplayTwiceYieldsIdenticalFinalState) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  // Drive a short fixed run and capture its transitions.
  SystemState st = ex.make_initial();
  std::vector<Transition> trace;
  std::vector<Violation> v;
  for (int i = 0; i < 6; ++i) {
    const auto ts = ex.enabled(st, cache);
    if (ts.empty()) break;
    trace.push_back(ts.front());
    ex.apply(st, ts.front(), v);
  }
  std::vector<Violation> v1;
  std::vector<Violation> v2;
  const SystemState a = replay(ex, trace, v1);
  const SystemState b = replay(ex, trace, v2);
  EXPECT_EQ(a.hash(true), b.hash(true));
  EXPECT_EQ(a.hash(true), st.hash(true));
}

TEST(Trace, TraceLinesAreHumanReadable) {
  std::vector<Transition> trace = {
      Transition{.kind = TKind::kHostSendScript, .a = 0},
      Transition{.kind = TKind::kSwitchProcessPkt, .a = 1},
  };
  const auto lines = trace_lines(trace);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "1. host0.send[script]");
  EXPECT_EQ(lines[1], "2. sw1.process_pkt");
}

TEST(Trace, TraceJsonGoldenRendering) {
  // Golden file for the structured export schema: tooling downstream
  // parses these exact keys, so any change here is a breaking change.
  std::vector<Transition> trace = {
      Transition{.kind = TKind::kHostSendScript, .a = 0},
      Transition{.kind = TKind::kSwitchProcessPkt, .a = 1},
  };
  EXPECT_EQ(
      trace_json(trace),
      "{\"length\":2,\"steps\":["
      "{\"step\":1,\"kind\":\"host_send_script\",\"actor\":0,\"aux\":0,"
      "\"label\":\"host0.send[script]\"},"
      "{\"step\":2,\"kind\":\"switch_process_pkt\",\"actor\":1,\"aux\":0,"
      "\"label\":\"sw1.process_pkt\"}]}");
  EXPECT_EQ(
      violation_trace_json("NoBlackHoles", "packet stuck at sw1", trace),
      "{\"property\":\"NoBlackHoles\",\"message\":\"packet stuck at sw1\","
      "\"length\":2,\"steps\":["
      "{\"step\":1,\"kind\":\"host_send_script\",\"actor\":0,\"aux\":0,"
      "\"label\":\"host0.send[script]\"},"
      "{\"step\":2,\"kind\":\"switch_process_pkt\",\"actor\":1,\"aux\":0,"
      "\"label\":\"sw1.process_pkt\"}]}");
}

TEST(Trace, TraceDotGoldenRendering) {
  std::vector<Transition> trace = {
      Transition{.kind = TKind::kHostSendScript, .a = 0},
      Transition{.kind = TKind::kSwitchProcessPkt, .a = 1},
  };
  EXPECT_EQ(trace_dot(trace),
            "digraph trace {\n"
            "  rankdir=LR;\n"
            "  node [shape=box, fontname=\"monospace\"];\n"
            "  s0 [label=\"s0: initial\"];\n"
            "  s1 [label=\"s1\"];\n"
            "  s0 -> s1 [label=\"1. host0.send[script]\"];\n"
            "  s2 [label=\"s2\"];\n"
            "  s1 -> s2 [label=\"2. sw1.process_pkt\"];\n"
            "}\n");
  const std::string dot =
      violation_trace_dot("NoBlackHoles", "packet stuck", trace);
  // The final state carries the violation, rendered red.
  EXPECT_NE(dot.find("s2 [label=\"s2: VIOLATION NoBlackHoles\\npacket "
                     "stuck\", color=red, fontcolor=red];"),
            std::string::npos);
  EXPECT_NE(dot.find("s1 -> s2"), std::string::npos);
}

TEST(Trace, FaultTransitionsRenderWithStableNamesAndLabels) {
  // The fault kinds are part of the structured export schema too.
  std::vector<Transition> trace = {
      Transition{.kind = TKind::kLinkDown, .a = 0},
      Transition{.kind = TKind::kLinkUp, .a = 0},
      Transition{.kind = TKind::kCtrlChannelDown, .a = 1},
      Transition{.kind = TKind::kCtrlChannelUp, .a = 1},
      Transition{.kind = TKind::kSwitchRestart, .a = 0},
  };
  const auto lines = trace_lines(trace);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "1. link0.down");
  EXPECT_EQ(lines[1], "2. link0.up");
  EXPECT_EQ(lines[2], "3. sw1.ctrl_channel_down");
  EXPECT_EQ(lines[3], "4. sw1.ctrl_channel_up");
  EXPECT_EQ(lines[4], "5. sw0.restart");

  const std::string json = trace_json(trace);
  for (const char* kind : {"\"kind\":\"link_down\"", "\"kind\":\"link_up\"",
                           "\"kind\":\"ctrl_channel_down\"",
                           "\"kind\":\"ctrl_channel_up\"",
                           "\"kind\":\"switch_restart\""}) {
    EXPECT_NE(json.find(kind), std::string::npos) << kind;
  }
  EXPECT_EQ(trace_json({Transition{.kind = TKind::kLinkDown, .a = 0}}),
            "{\"length\":1,\"steps\":["
            "{\"step\":1,\"kind\":\"link_down\",\"actor\":0,\"aux\":0,"
            "\"label\":\"link0.down\"}]}");
}

TEST(Trace, FaultCounterexampleRendersStructurally) {
  // End-to-end: the fault-only violation of the bundled link-failure
  // scenario exports with one step per transition and includes the
  // link_down step that makes it reachable at all.
  auto s = apps::pyswitch_linkfail(/*react=*/false);
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation());
  const auto& record = r.violations.front();
  ASSERT_FALSE(record.trace.empty());

  bool has_fault_step = false;
  for (const Transition& t : record.trace) {
    has_fault_step = has_fault_step || t.kind == TKind::kLinkDown;
  }
  EXPECT_TRUE(has_fault_step);

  const std::string json = violation_trace_json(
      record.violation.property, record.violation.message, record.trace);
  EXPECT_NE(json.find("\"kind\":\"link_down\""), std::string::npos);
  std::size_t steps = 0;
  for (std::size_t pos = 0;
       (pos = json.find("{\"step\":", pos)) != std::string::npos; ++pos) {
    ++steps;
  }
  EXPECT_EQ(steps, record.trace.size());

  const std::string dot = violation_trace_dot(
      record.violation.property, record.violation.message, record.trace);
  EXPECT_NE(dot.find("link0.down"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  std::size_t edges = 0;
  for (std::size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++edges;
  }
  EXPECT_EQ(edges, record.trace.size());
}

TEST(Trace, FaultTransitionsSurviveSerializationRoundTrip) {
  // Checkpointed frontiers store transitions verbatim; the new kinds must
  // round-trip like the rest.
  const std::vector<Transition> trace = {
      Transition{.kind = TKind::kLinkDown, .a = 3, .aux = 0},
      Transition{.kind = TKind::kCtrlChannelUp, .a = 2},
      Transition{.kind = TKind::kSwitchRestart, .a = 1},
  };
  for (const Transition& t : trace) {
    util::Ser s;
    t.serialize(s);
    const std::string bytes = s.take();
    util::Des d(bytes);
    EXPECT_EQ(Transition::deserialize(d), t);
  }
}

TEST(Trace, ExportEscapesQuotesAndBackslashes) {
  std::vector<Transition> trace = {
      Transition{.kind = TKind::kHostSendScript, .a = 0},
  };
  const std::string json =
      violation_trace_json("P", "say \"hi\" \\ done", trace);
  EXPECT_NE(json.find("\"message\":\"say \\\"hi\\\" \\\\ done\""),
            std::string::npos);
  const std::string dot = violation_trace_dot("P", "say \"hi\"", trace);
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(Trace, BundledViolationRendersStructurally) {
  // End-to-end: a real counterexample from a bundled buggy scenario must
  // export as well-formed JSON/DOT with one step per transition.
  auto s = apps::pyswitch_bug2();
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation());
  const auto& record = r.violations.front();

  const std::string json = violation_trace_json(
      record.violation.property, record.violation.message, record.trace);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  std::size_t steps = 0;
  for (std::size_t pos = 0;
       (pos = json.find("{\"step\":", pos)) != std::string::npos; ++pos) {
    ++steps;
  }
  EXPECT_EQ(steps, record.trace.size());
  EXPECT_NE(json.find("\"property\":\"" + record.violation.property + "\""),
            std::string::npos);

  const std::string dot = violation_trace_dot(
      record.violation.property, record.violation.message, record.trace);
  EXPECT_EQ(dot.rfind("digraph trace {", 0), 0u);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  std::size_t edges = 0;
  for (std::size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++edges;
  }
  EXPECT_EQ(edges, record.trace.size());
}

TEST(Trace, TraceOfBuildsRootToLeafOrder) {
  auto n1 = std::make_shared<const PathNode>(
      PathNode{nullptr, Transition{.kind = TKind::kHostSendScript, .a = 0}});
  auto n2 = std::make_shared<const PathNode>(
      PathNode{n1, Transition{.kind = TKind::kHostRecv, .a = 1}});
  const auto trace = trace_of(n2);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, TKind::kHostSendScript);
  EXPECT_EQ(trace[1].kind, TKind::kHostRecv);
}

}  // namespace
}  // namespace nicemc::mc
