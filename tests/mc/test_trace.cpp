#include "mc/trace.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/checker.h"

namespace nicemc::mc {
namespace {

TEST(Trace, ViolationTraceReplaysDeterministically) {
  auto s = apps::pyswitch_bug2();
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation());
  const auto& record = r.violations.front();
  ASSERT_FALSE(record.trace.empty());

  // Replaying the trace re-raises the same property violation.
  auto s2 = apps::pyswitch_bug2();
  Executor ex(s2.config, s2.properties);
  std::vector<Violation> violations;
  (void)replay(ex, record.trace, violations);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().property, record.violation.property);
}

TEST(Trace, ReplayTwiceYieldsIdenticalFinalState) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  // Drive a short fixed run and capture its transitions.
  SystemState st = ex.make_initial();
  std::vector<Transition> trace;
  std::vector<Violation> v;
  for (int i = 0; i < 6; ++i) {
    const auto ts = ex.enabled(st, cache);
    if (ts.empty()) break;
    trace.push_back(ts.front());
    ex.apply(st, ts.front(), v);
  }
  std::vector<Violation> v1;
  std::vector<Violation> v2;
  const SystemState a = replay(ex, trace, v1);
  const SystemState b = replay(ex, trace, v2);
  EXPECT_EQ(a.hash(true), b.hash(true));
  EXPECT_EQ(a.hash(true), st.hash(true));
}

TEST(Trace, TraceLinesAreHumanReadable) {
  std::vector<Transition> trace = {
      Transition{.kind = TKind::kHostSendScript, .a = 0},
      Transition{.kind = TKind::kSwitchProcessPkt, .a = 1},
  };
  const auto lines = trace_lines(trace);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "1. host0.send[script]");
  EXPECT_EQ(lines[1], "2. sw1.process_pkt");
}

TEST(Trace, TraceOfBuildsRootToLeafOrder) {
  auto n1 = std::make_shared<const PathNode>(
      PathNode{nullptr, Transition{.kind = TKind::kHostSendScript, .a = 0}});
  auto n2 = std::make_shared<const PathNode>(
      PathNode{n1, Transition{.kind = TKind::kHostRecv, .a = 1}});
  const auto trace = trace_of(n2);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, TKind::kHostSendScript);
  EXPECT_EQ(trace[1].kind, TKind::kHostRecv);
}

}  // namespace
}  // namespace nicemc::mc
