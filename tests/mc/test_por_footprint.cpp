// The footprint layer (mc/por/footprint.h): unit checks of the conflict
// relation plus the property-based commutation sweep — transition pairs
// sampled from states of real scenario runs that the footprints declare
// independent must actually commute: both orders stay applicable and
// produce byte-identical canonical states and equivalent violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/por/footprint.h"
#include "util/collapse.h"
#include "util/hash.h"

namespace nicemc::mc {
namespace {

std::string canonical_bytes(const SystemState& st, bool canonical) {
  util::Ser s;
  st.serialize(s, canonical);
  const auto b = s.bytes();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

bool contains(const std::vector<Transition>& ts, const Transition& t) {
  return std::find(ts.begin(), ts.end(), t) != ts.end();
}

/// Seeded random walk through a scenario; at every visited state, check
/// commutation of every enabled pair the footprints declare independent.
/// Returns the number of independent pairs exercised.
std::size_t sweep_scenario(const apps::Scenario& s, std::uint64_t seed,
                           int max_steps) {
  Executor executor(s.config, s.properties);
  DiscoveryCache cache;
  util::SplitMix64 rng(seed);
  const bool keys = packet_keyed(s.properties);
  const bool canonical = s.config.canonical_flowtables;
  std::size_t pairs = 0;

  SystemState state = executor.make_initial();
  for (int step = 0; step < max_steps; ++step) {
    const auto ts = apply_strategy(CheckerOptions{}.strategy, s.config,
                                   state, executor.enabled(state, cache));
    if (ts.empty()) break;

    std::vector<por::Footprint> fps(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      fps[i] = por::compute_footprint(s.config, state, ts[i]);
    }
    for (std::size_t i = 0; i < ts.size(); ++i) {
      for (std::size_t j = i + 1; j < ts.size(); ++j) {
        if (por::may_conflict(fps[i], fps[j], keys)) continue;
        ++pairs;
        const std::string tag =
            ts[i].label() + " vs " + ts[j].label() + " @step " +
            std::to_string(step);

        std::vector<Violation> vab;
        SystemState ab = state.clone();
        executor.apply(ab, ts[i], vab);
        // Independence implies the partner stays enabled in either order.
        const bool ab_ok = contains(executor.enabled(ab, cache), ts[j]);
        EXPECT_TRUE(ab_ok) << tag;

        std::vector<Violation> vba;
        SystemState ba = state.clone();
        executor.apply(ba, ts[j], vba);
        const bool ba_ok = contains(executor.enabled(ba, cache), ts[i]);
        EXPECT_TRUE(ba_ok) << tag;
        if (!ab_ok || !ba_ok) continue;
        executor.apply(ab, ts[j], vab);
        executor.apply(ba, ts[i], vba);

        EXPECT_EQ(canonical_bytes(ab, canonical),
                  canonical_bytes(ba, canonical))
            << tag;
        EXPECT_EQ(ab.hash(canonical), ba.hash(canonical)) << tag;
        // Sorted-with-duplicates comparison: copy ids in the messages are
        // normalized (assigned in processing order, which legitimately
        // differs between the two orders), multiplicity is not.
        EXPECT_EQ(violation_keys(vab), violation_keys(vba)) << tag;
      }
    }

    // Random step (never through a violating transition — the search
    // would stop there too).
    const Transition& t =
        ts[static_cast<std::size_t>(rng.next_below(ts.size()))];
    std::vector<Violation> ignored;
    executor.apply(state, t, ignored);
  }
  return pairs;
}

TEST(PorFootprint, IndependentPairsCommuteOnAllBundledScenarios) {
  std::size_t total = 0;
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const apps::Scenario s = ns.make();
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      SCOPED_TRACE(ns.name + " seed=" + std::to_string(seed));
      total += sweep_scenario(s, seed, /*max_steps=*/60);
    }
  }
  // The sweep must actually exercise independence, not vacuously pass.
  EXPECT_GT(total, 100u);
}

/// Walk `max_steps` random steps through a scenario collecting every
/// (state, enabled transition) pair along the way. The states are shared
/// so the pairs stay valid after the walk moves on.
std::vector<std::pair<std::shared_ptr<const SystemState>, Transition>>
collect_pairs(const apps::Scenario& s, Executor& executor,
              std::uint64_t seed, int max_steps) {
  DiscoveryCache cache;
  util::SplitMix64 rng(seed);
  std::vector<std::pair<std::shared_ptr<const SystemState>, Transition>>
      pairs;
  SystemState state = executor.make_initial();
  for (int step = 0; step < max_steps; ++step) {
    const auto ts = apply_strategy(CheckerOptions{}.strategy, s.config,
                                   state, executor.enabled(state, cache));
    if (ts.empty()) break;
    auto sp = std::make_shared<const SystemState>(state.clone());
    for (const Transition& t : ts) pairs.emplace_back(sp, t);
    const Transition& t =
        ts[static_cast<std::size_t>(rng.next_below(ts.size()))];
    std::vector<Violation> ignored;
    executor.apply(state, t, ignored);
  }
  return pairs;
}

TEST(PorFootprint, MemoizedFootprintEqualsFreshOnAllBundledScenarios) {
  // FootprintMemo::get must be observationally identical to
  // compute_footprint — for every transition kind (memoized or bypassed),
  // in both key flavors (interned component ids / memoized component
  // hashes), on hits as well as misses. Each pair is queried twice so the
  // second query exercises the hit path against the same fresh value.
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const apps::Scenario s = ns.make();
    Executor executor(s.config, s.properties);
    const auto pairs = collect_pairs(s, executor, /*seed=*/7,
                                     /*max_steps=*/40);
    util::CollapseTable ids(/*shards=*/2);
    por::FootprintMemo with_ids(s.config, &ids, /*shards=*/2,
                                /*byte_budget=*/8u << 20);
    por::FootprintMemo with_hashes(s.config, nullptr, /*shards=*/2,
                                   /*byte_budget=*/8u << 20);
    for (const auto& [sp, t] : pairs) {
      SCOPED_TRACE(ns.name + " / " + t.label());
      const por::Footprint fresh =
          por::compute_footprint(s.config, *sp, t);
      EXPECT_EQ(with_ids.get(*sp, t), fresh);
      EXPECT_EQ(with_ids.get(*sp, t), fresh);  // hit path
      EXPECT_EQ(with_hashes.get(*sp, t), fresh);
      EXPECT_EQ(with_hashes.get(*sp, t), fresh);
    }
  }
}

TEST(PorFootprint, MemoizedFootprintSurvivesEvictionPressure) {
  // A budget far below the working set forces constant LRU eviction; the
  // memo must still answer every query identically to a fresh compute and
  // must hold its resident bytes at or under the budget throughout.
  const apps::Scenario s = apps::pyswitch_ping_chain(3);
  Executor executor(s.config, s.properties);
  const auto pairs = collect_pairs(s, executor, /*seed=*/11,
                                   /*max_steps=*/80);
  constexpr std::uint64_t kTinyBudget = 4096;
  por::FootprintMemo memo(s.config, nullptr, /*shards=*/1, kTinyBudget);
  for (int round = 0; round < 2; ++round) {
    for (const auto& [sp, t] : pairs) {
      EXPECT_EQ(memo.get(*sp, t), por::compute_footprint(s.config, *sp, t))
          << t.label();
      EXPECT_LE(memo.stats().bytes, kTinyBudget);
    }
  }
  EXPECT_GT(memo.stats().evictions, 0u);
}

TEST(PorFootprint, MemoizedFootprintIsThreadSafeUnderHammering) {
  // Shared-memo hammering: several threads query the same pair set
  // concurrently (mixed hits, misses and — with a small budget —
  // evictions). TSan builds of this test are the data-race oracle; every
  // thread must also observe values identical to a fresh compute.
  const apps::Scenario s = apps::pyswitch_ping_chain(2);
  Executor executor(s.config, s.properties);
  const auto pairs = collect_pairs(s, executor, /*seed=*/13,
                                   /*max_steps=*/60);
  ASSERT_FALSE(pairs.empty());
  std::vector<por::Footprint> fresh;
  fresh.reserve(pairs.size());
  for (const auto& [sp, t] : pairs) {
    fresh.push_back(por::compute_footprint(s.config, *sp, t));
  }
  por::FootprintMemo memo(s.config, nullptr, /*shards=*/4,
                          /*byte_budget=*/64u << 10);
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          // Stagger the iteration per worker so lookups overlap inserts.
          const std::size_t k =
              (i + static_cast<std::size_t>(w) * 7) % pairs.size();
          if (!(memo.get(*pairs[k].first, pairs[k].second) == fresh[k])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(PorFootprint, DisjointHostsAreIndependentWithoutMonitors) {
  // Ping chain, initial state: host A's send allocates a packet uid, so
  // it conflicts with other uid-allocating transitions but not with
  // switch-local work elsewhere.
  auto s = apps::pyswitch_ping_chain(2);
  Executor executor(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = executor.make_initial();
  const auto ts = executor.enabled(st, cache);
  ASSERT_FALSE(ts.empty());

  // Two consecutive sends of the same host conflict (burst + uid + queue).
  const por::Footprint send =
      por::compute_footprint(s.config, st, ts.front());
  EXPECT_TRUE(por::may_conflict(send, send, /*packet_keys=*/false));
}

TEST(PorFootprint, UidAllocatorsConflict) {
  // Packet uids feed canonical state identity (SystemState::next_uid is
  // serialized), so any two transitions minting uids must stay ordered.
  auto s = apps::lb_scenario({});
  Executor executor(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = executor.make_initial();
  const auto ts = executor.enabled(st, cache);

  std::vector<por::Footprint> sends;
  for (const Transition& t : ts) {
    if (t.kind == TKind::kHostSendScript) {
      sends.push_back(por::compute_footprint(s.config, st, t));
    }
  }
  for (std::size_t i = 0; i + 1 < sends.size(); ++i) {
    EXPECT_TRUE(por::may_conflict(sends[i], sends[i + 1], false));
  }
}

TEST(PorFootprint, TransitionHashSeparatesEnabledSet) {
  // Within one state every enabled transition must get a distinct hash —
  // the sleep machinery keys on it.
  auto s = apps::lb_scenario({});
  Executor executor(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = executor.make_initial();
  const auto ts = executor.enabled(st, cache);
  std::vector<std::uint64_t> hs;
  for (const Transition& t : ts) hs.push_back(por::transition_hash(t));
  std::sort(hs.begin(), hs.end());
  EXPECT_EQ(std::adjacent_find(hs.begin(), hs.end()), hs.end());
}

}  // namespace
}  // namespace nicemc::mc
