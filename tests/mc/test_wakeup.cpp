// The wakeup-tree layer (mc/por/wakeup.h) and its SleepStore integration:
// insertion / context-subsumption / antichain invariants of the trie,
// first-dispatch ordering, claimed wakeup sequences, targeted and
// claim-free arrivals, and the race-reversal replay property — recorded
// conflicting schedules replay deterministically to byte-identical
// canonical states, and genuinely race (the two orders can disagree),
// extending the commutation pattern of test_por_footprint.cpp to the
// dependent pairs the wakeup trees exist for.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/por/footprint.h"
#include "mc/por/sleep.h"
#include "mc/por/wakeup.h"
#include "util/hash.h"

namespace nicemc::mc::por {
namespace {

using Seq = std::vector<std::uint64_t>;

TEST(WakeupTree, InsertContainsAndInsertionOrderedRoots) {
  WakeupTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.insert({7}, {}));
  EXPECT_TRUE(t.insert({3}, {}));
  EXPECT_TRUE(t.insert({9}, {}));
  EXPECT_TRUE(t.contains({7}));
  EXPECT_FALSE(t.contains({8}));
  // Roots come back in first-dispatch (insertion) order, not key order.
  Seq roots;
  t.roots(roots);
  EXPECT_EQ(roots, (Seq{7, 3, 9}));
  EXPECT_EQ(t.nodes(), 3u);
  EXPECT_EQ(t.sequences(), 3u);
}

TEST(WakeupTree, DeepSequencesShareThePrefixPath) {
  WakeupTree t;
  EXPECT_TRUE(t.insert({1, 2}, {}));
  EXPECT_TRUE(t.insert({1, 4}, {}));
  EXPECT_TRUE(t.insert({1, 2, 8}, {}));
  // The shared prefix node is created once; contains() is context-blind
  // path existence, so the intermediate {1} path also reports present.
  EXPECT_EQ(t.nodes(), 4u);
  EXPECT_TRUE(t.contains({1}));
  EXPECT_TRUE(t.contains({1, 2, 8}));
  EXPECT_FALSE(t.contains({1, 8}));
  EXPECT_EQ(t.continuations(1), (Seq{2, 4}));
  EXPECT_TRUE(t.continuations(2).empty());
}

TEST(WakeupTree, ContextSubsumptionGovernsInsertAndCovered) {
  WakeupTree t;
  WakeupContext big{1, 2, 3};
  normalize_context(big);
  EXPECT_TRUE(t.insert({5}, big));
  // A dispatch under a superset context is covered: it would explore a
  // subset of what the recorded dispatch already reached.
  EXPECT_TRUE(t.covered({5}, {1, 2, 3}));
  EXPECT_TRUE(t.covered({5}, {1, 2, 3, 4}));
  EXPECT_FALSE(t.covered({5}, {1, 2}));
  EXPECT_FALSE(t.insert({5}, {1, 2, 3, 4}));  // already covered: no-op
  EXPECT_EQ(t.sequences(), 1u);

  // A smaller context replaces what it subsumes (minimal antichain).
  EXPECT_TRUE(t.insert({5}, {2}));
  EXPECT_TRUE(t.covered({5}, {2}));
  EXPECT_TRUE(t.covered({5}, {1, 2}));
  EXPECT_FALSE(t.covered({5}, {1, 3}));
  EXPECT_EQ(t.sequences(), 1u);  // same endpoint, tighter claim

  // Incomparable contexts coexist.
  EXPECT_TRUE(t.insert({5}, {1, 3}));
  EXPECT_TRUE(t.covered({5}, {1, 3}));
  EXPECT_TRUE(t.covered({5}, {2}));
  // The empty context subsumes everything.
  EXPECT_TRUE(t.insert({5}, {}));
  EXPECT_TRUE(t.covered({5}, {}));
  EXPECT_FALSE(t.insert({5}, {9}));  // {} already covers any context
}

TEST(WakeupTree, NormalizeAndSubsumeHelpers) {
  WakeupContext c{9, 1, 9, 4};
  normalize_context(c);
  EXPECT_EQ(c, (WakeupContext{1, 4, 9}));
  EXPECT_TRUE(context_subsumes({1, 4}, {1, 4, 9}));
  EXPECT_TRUE(context_subsumes({}, {1}));
  EXPECT_FALSE(context_subsumes({2}, {1, 4, 9}));
}

TEST(SleepStoreWakeup, RecordScheduleExposesDispatchOrderAndRaces) {
  SleepStore store(4);
  const std::string id = "state";
  Footprint fp;
  SleepSet z;
  z.push_back(SleepEntry{40, fp});
  EXPECT_TRUE(store.arrive(id, z, /*wakeups=*/true).first);

  // One batch: events 10, 20, 30 dispatched in that order; 10 and 30
  // conflict, recorded as the depth-2 race sequence 10·30.
  std::vector<WakeupContext> ctxs(3);
  EXPECT_EQ(store.record_schedule(id, {10, 20, 30}, std::move(ctxs),
                                  {{0, 2}}),
            4u);

  // A pure revisit (nothing re-expanded) skips the roots copy; a revisit
  // that wakes the stored 40 gets them in first-dispatch order.
  const auto pure = store.arrive(id, z, /*wakeups=*/true);
  EXPECT_FALSE(pure.first);
  EXPECT_TRUE(pure.explore.empty());
  EXPECT_TRUE(pure.dispatched.empty());
  const auto revisit = store.arrive(id, {}, /*wakeups=*/true);
  EXPECT_FALSE(revisit.first);
  EXPECT_EQ(revisit.explore, (Seq{40}));
  EXPECT_EQ(revisit.dispatched, (Seq{10, 20, 30}));

  const auto totals = store.wakeup_totals();
  EXPECT_EQ(totals.trees, 1u);
  EXPECT_EQ(totals.sequences, 4u);  // three roots + one race pair
  EXPECT_TRUE(store.covered(id, 20, {}));
  EXPECT_FALSE(store.covered(id, 40, {}));
}

TEST(SleepStoreWakeup, ClaimWakeupsIsOnceOnlyPerPair) {
  SleepStore store(2);
  const std::string id = "s";
  EXPECT_EQ(store.claim_wakeups(id, 10, {20, 30}), (Seq{20, 30}));
  // Second claim of the same pairs yields nothing; fresh wakees pass.
  EXPECT_EQ(store.claim_wakeups(id, 10, {20, 30, 40}), (Seq{40}));
  EXPECT_TRUE(store.claim_wakeups(id, 10, {30}).empty());
  // A different root event claims independently.
  EXPECT_EQ(store.claim_wakeups(id, 11, {20}), (Seq{20}));
}

TEST(SleepStoreWakeup, TargetedArrivalWakesExactlyTheWakeList) {
  SleepStore store(2);
  const std::string id = "s";
  Footprint fp;
  SleepSet z;
  z.push_back(SleepEntry{10, fp});
  z.push_back(SleepEntry{20, fp});
  z.push_back(SleepEntry{30, fp});
  EXPECT_TRUE(store.arrive(id, z).first);

  // Targeted: wake 20 (owed) and 40 (never slept here → nothing to do);
  // 10 and 30 keep their stored justification even though the carried
  // sleep set is empty.
  const Seq wake{20, 40};
  const auto t = store.arrive(id, {}, false, &wake);
  EXPECT_FALSE(t.first);
  EXPECT_EQ(t.explore, (Seq{20}));

  // The same wake again: 20 already dispatched, nothing owed.
  const auto t2 = store.arrive(id, {}, false, &wake);
  EXPECT_TRUE(t2.explore.empty());

  // A normal empty-sleep revisit still re-opens the untouched residue.
  const auto n = store.arrive(id, {});
  EXPECT_EQ(n.explore, (Seq{10, 30}));
}

TEST(SleepStoreWakeup, ObserveArrivalTouchesNothing) {
  SleepStore store(2);
  const std::string id = "s";
  Footprint fp;
  SleepSet z;
  z.push_back(SleepEntry{10, fp});
  EXPECT_TRUE(store.arrive(id, z).first);

  // Claim-free visit: no explore, and the stored set is left alone.
  const auto o = store.arrive(id, {}, false, nullptr, /*observe=*/true);
  EXPECT_FALSE(o.first);
  EXPECT_TRUE(o.explore.empty());
  const auto n = store.arrive(id, {});
  EXPECT_EQ(n.explore, (Seq{10}));

  // At an unknown state, observe falls back to a first arrival.
  const auto f =
      store.arrive("other", z, false, nullptr, /*observe=*/true);
  EXPECT_TRUE(f.first);
}

std::string canonical_bytes(const SystemState& st, bool canonical) {
  util::Ser s;
  st.serialize(s, canonical);
  const auto b = s.bytes();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

bool contains_t(const std::vector<Transition>& ts, const Transition& t) {
  return std::find(ts.begin(), ts.end(), t) != ts.end();
}

// Race-reversal replay: walk real scenario states; record every
// conflicting enabled pair (both orders applicable) as the depth-2
// schedule the search would commit to, then replay each recorded
// sequence twice — replays must be deterministic to byte-identical
// canonical states — and replay the reversal, counting how often the two
// orders genuinely disagree (the races the wakeup trees exist for).
TEST(WakeupReplay, RecordedRaceSequencesReplayDeterministically) {
  std::size_t recorded = 0;
  std::size_t disagreements = 0;
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const apps::Scenario s = ns.make();
    Executor executor(s.config, s.properties);
    DiscoveryCache cache;
    const bool keys = packet_keyed(s.properties);
    const bool canonical = s.config.canonical_flowtables;
    WakeupTree tree;

    for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    util::SplitMix64 rng(seed);
    SystemState state = executor.make_initial();
    for (int step = 0; step < 60; ++step) {
      const auto ts =
          apply_strategy(CheckerOptions{}.strategy, s.config, state,
                         executor.enabled(state, cache));
      if (ts.empty()) break;

      std::vector<Footprint> fps(ts.size());
      for (std::size_t i = 0; i < ts.size(); ++i) {
        fps[i] = compute_footprint(s.config, state, ts[i]);
      }
      for (std::size_t i = 0; i < ts.size(); ++i) {
        for (std::size_t j = i + 1; j < ts.size(); ++j) {
          if (!may_conflict(fps[i], fps[j], keys)) continue;
          const Seq seq{transition_hash(ts[i]), transition_hash(ts[j])};
          const bool fresh = tree.insert(seq, {});
          EXPECT_TRUE(tree.contains(seq));
          if (!fresh) continue;
          ++recorded;

          // Replay the recorded schedule twice: byte-identical states.
          const auto replay = [&](std::size_t a,
                                  std::size_t b) -> std::string {
            std::vector<Violation> ignored;
            SystemState st = state.clone();
            executor.apply(st, ts[a], ignored);
            if (!contains_t(executor.enabled(st, cache), ts[b])) {
              return {};  // conflicting partner got disabled: no replay
            }
            executor.apply(st, ts[b], ignored);
            return canonical_bytes(st, canonical);
          };
          const std::string once = replay(i, j);
          EXPECT_EQ(once, replay(i, j)) << ns.name;
          // The reversal (when applicable) is allowed to disagree —
          // that disagreement is what makes the pair a race.
          const std::string rev = replay(j, i);
          if (!once.empty() && !rev.empty() && once != rev) {
            ++disagreements;
          }
        }
      }

      const Transition& t =
          ts[static_cast<std::size_t>(rng.next_below(ts.size()))];
      std::vector<Violation> ignored;
      executor.apply(state, t, ignored);
    }
    }
  }
  // The sweep must exercise real races, and many must genuinely reorder
  // (that disagreement is exactly why the pair was recorded as ordered).
  EXPECT_GT(recorded, 50u);
  EXPECT_GT(disagreements, 20u);
}

}  // namespace
}  // namespace nicemc::mc::por
