// The durability layer (mc/checkpoint.h): A/B slot crash safety and
// corruption diagnostics, the interrupted-then-resumed differential gate
// (resumed totals must be exactly the uninterrupted run's) across
// reductions × frontiers × store modes × thread counts, cooperative
// interrupts, and the memory-budget watchdog.
#include "mc/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "util/seen_set.h"

namespace nicemc::mc {
namespace {

using StoreMode = util::ShardedSeenSet::Mode;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A fresh checkpoint path under the gtest temp dir with no stale slots.
std::string fresh_ckpt_path(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "nicemc_ckpt_" + tag;
  std::remove(checkpoint_slot_a(path).c_str());
  std::remove(checkpoint_slot_b(path).c_str());
  return path;
}

void drop_slots(const std::string& path) {
  std::remove(checkpoint_slot_a(path).c_str());
  std::remove(checkpoint_slot_b(path).c_str());
}

// ---- Slot file layer ------------------------------------------------------

TEST(CheckpointSlot, RoundTrip) {
  const std::string path = fresh_ckpt_path("roundtrip");
  const std::string slot = checkpoint_slot_a(path);
  const std::string payload = "the quick brown packet jumps the flowtable";
  std::string error;
  ASSERT_TRUE(write_checkpoint_slot(slot, 7, payload, error)) << error;
  const SlotInfo info = read_checkpoint_slot(slot);
  EXPECT_TRUE(info.valid) << info.error;
  EXPECT_EQ(info.sequence, 7u);
  EXPECT_EQ(info.payload, payload);
  EXPECT_TRUE(info.error.empty());
  drop_slots(path);
}

TEST(CheckpointSlot, MissingFileRejectedCleanly) {
  const SlotInfo info =
      read_checkpoint_slot(::testing::TempDir() + "nicemc_no_such_slot");
  EXPECT_FALSE(info.valid);
  EXPECT_FALSE(info.error.empty());
}

TEST(CheckpointSlot, TruncatedHeaderRejected) {
  const std::string path = fresh_ckpt_path("trunc_header");
  const std::string slot = checkpoint_slot_a(path);
  std::string error;
  ASSERT_TRUE(write_checkpoint_slot(slot, 1, "payload-bytes", error));
  spit(slot, slurp(slot).substr(0, 10));
  const SlotInfo info = read_checkpoint_slot(slot);
  EXPECT_FALSE(info.valid);
  EXPECT_NE(info.error.find("truncated"), std::string::npos) << info.error;
  drop_slots(path);
}

TEST(CheckpointSlot, TruncatedPayloadRejected) {
  const std::string path = fresh_ckpt_path("trunc_payload");
  const std::string slot = checkpoint_slot_a(path);
  std::string error;
  ASSERT_TRUE(write_checkpoint_slot(slot, 1, "0123456789abcdef", error));
  const std::string bytes = slurp(slot);
  spit(slot, bytes.substr(0, bytes.size() - 5));  // SIGKILL mid-write
  const SlotInfo info = read_checkpoint_slot(slot);
  EXPECT_FALSE(info.valid);
  EXPECT_NE(info.error.find("truncated"), std::string::npos) << info.error;
  drop_slots(path);
}

TEST(CheckpointSlot, BitFlipRejected) {
  const std::string path = fresh_ckpt_path("bitflip");
  const std::string slot = checkpoint_slot_a(path);
  std::string error;
  ASSERT_TRUE(write_checkpoint_slot(slot, 1, "0123456789abcdef", error));
  std::string bytes = slurp(slot);
  bytes[bytes.size() - 3] ^= 0x20;  // one flipped bit in the payload
  spit(slot, bytes);
  const SlotInfo info = read_checkpoint_slot(slot);
  EXPECT_FALSE(info.valid);
  EXPECT_NE(info.error.find("checksum"), std::string::npos) << info.error;
  drop_slots(path);
}

TEST(CheckpointSlot, VersionMismatchRejected) {
  const std::string path = fresh_ckpt_path("version");
  const std::string slot = checkpoint_slot_a(path);
  std::string error;
  ASSERT_TRUE(write_checkpoint_slot(slot, 1, "payload", error));
  std::string bytes = slurp(slot);
  // Header layout: magic u64, then version u32 (big-endian) at offset 8.
  bytes[8] = 0x7f;
  spit(slot, bytes);
  const SlotInfo info = read_checkpoint_slot(slot);
  EXPECT_FALSE(info.valid);
  EXPECT_NE(info.error.find("version mismatch"), std::string::npos)
      << info.error;
  drop_slots(path);
}

TEST(CheckpointSlot, BadMagicRejected) {
  const std::string path = fresh_ckpt_path("magic");
  const std::string slot = checkpoint_slot_a(path);
  std::string error;
  ASSERT_TRUE(write_checkpoint_slot(slot, 1, "payload", error));
  std::string bytes = slurp(slot);
  bytes[0] ^= 0x01;
  spit(slot, bytes);
  const SlotInfo info = read_checkpoint_slot(slot);
  EXPECT_FALSE(info.valid);
  EXPECT_NE(info.error.find("magic"), std::string::npos) << info.error;
  drop_slots(path);
}

// ---- Interrupted + resumed ≡ uninterrupted --------------------------------

CheckerResult run_once(const apps::Scenario& s, const CheckerOptions& opt) {
  Checker checker(s.config, opt, s.properties);
  return checker.run();
}

/// The differential gate: a run capped mid-way (the halt checkpoints),
/// then resumed without the cap, must report totals identical to the
/// uninterrupted search. Transition counts are order-dependent under a
/// reduction with threads > 1; everything else must match exactly always.
void expect_resume_identity(const apps::NamedScenario& ns, Reduction red,
                            FrontierKind frontier, unsigned threads,
                            StoreMode store, const std::string& tag) {
  SCOPED_TRACE(ns.name + " / " + tag);
  CheckerOptions base;
  base.stop_at_first_violation = false;
  base.reduction = red;
  base.frontier = frontier;
  base.threads = threads;
  base.state_store = store;

  const apps::Scenario ref_s = ns.make();
  const CheckerResult full = run_once(ref_s, base);
  ASSERT_TRUE(full.exhausted);

  const std::string path = fresh_ckpt_path(tag + "_" + ns.name);
  CheckerOptions opt = base;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;  // at-halt checkpoint only
  opt.max_transitions = full.transitions / 2 + 1;
  const apps::Scenario s1 = ns.make();
  const CheckerResult part = run_once(s1, opt);
  ASSERT_GE(part.durability.checkpoints_written, 1u);
  ASSERT_GT(part.durability.checkpoint_bytes, 0u);

  opt.max_transitions = ~0ULL;
  opt.resume = true;
  const apps::Scenario s2 = ns.make();
  const CheckerResult resumed = run_once(s2, opt);
  EXPECT_TRUE(resumed.exhausted);
  if (part.hit_limit == LimitReason::kTransitions) {
    EXPECT_TRUE(resumed.durability.resumed);
  }
  EXPECT_EQ(resumed.unique_states, full.unique_states);
  EXPECT_EQ(resumed.quiescent_states, full.quiescent_states);
  EXPECT_EQ(violation_key_set(resumed), violation_key_set(full));
  if (threads == 1 || red == Reduction::kNone) {
    EXPECT_EQ(resumed.transitions, full.transitions);
    EXPECT_EQ(resumed.revisits, full.revisits);
  }
  drop_slots(path);
}

/// The smaller bundled presets — every family is represented, the two
/// largest pyswitch bug hunts are left to the sequential sweep so the
/// matrix axes stay fast.
std::vector<apps::NamedScenario> small_scenarios() {
  std::vector<apps::NamedScenario> out;
  for (apps::NamedScenario& ns : apps::bundled_scenarios()) {
    if (ns.name == "pyswitch-bug1" || ns.name == "pyswitch-bug3") continue;
    out.push_back(std::move(ns));
  }
  return out;
}

TEST(CheckpointResume, SequentialDfsAllBundled) {
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    expect_resume_identity(ns, Reduction::kNone, FrontierKind::kDfs, 1,
                           StoreMode::kHash, "dfs_none");
    expect_resume_identity(ns, Reduction::kSourceDpor, FrontierKind::kDfs, 1,
                           StoreMode::kHash, "dfs_dpor");
  }
}

TEST(CheckpointResume, SequentialBfs) {
  for (const apps::NamedScenario& ns : small_scenarios()) {
    expect_resume_identity(ns, Reduction::kNone, FrontierKind::kBfs, 1,
                           StoreMode::kHash, "bfs_none");
    expect_resume_identity(ns, Reduction::kSourceDpor, FrontierKind::kBfs, 1,
                           StoreMode::kHash, "bfs_dpor");
  }
}

TEST(CheckpointResume, SequentialRandomFrontierRestoresRngState) {
  // The random frontier's pop order is driven by its RNG; identity across
  // an interrupt requires the checkpoint to carry the RNG state.
  for (const apps::NamedScenario& ns : small_scenarios()) {
    expect_resume_identity(ns, Reduction::kNone, FrontierKind::kRandom, 1,
                           StoreMode::kHash, "rand_none");
  }
}

TEST(CheckpointResume, ParallelFourThreads) {
  for (const apps::NamedScenario& ns : small_scenarios()) {
    expect_resume_identity(ns, Reduction::kNone, FrontierKind::kDfs, 4,
                           StoreMode::kHash, "par_none");
    expect_resume_identity(ns, Reduction::kSourceDpor, FrontierKind::kDfs, 4,
                           StoreMode::kHash, "par_dpor");
  }
}

TEST(CheckpointResume, CollapsedStoreRestoresInternTable) {
  // kCollapsed keys states by interned component-id tuples; restore must
  // re-intern blobs in dense id order for the stored tuples (and the
  // sleep store's identity keys) to stay valid.
  for (const apps::NamedScenario& ns : small_scenarios()) {
    expect_resume_identity(ns, Reduction::kSourceDpor, FrontierKind::kDfs, 1,
                           StoreMode::kCollapsed, "collapsed_dpor");
  }
}

TEST(CheckpointResume, FullStateStore) {
  expect_resume_identity(small_scenarios().front(), Reduction::kNone,
                         FrontierKind::kDfs, 1, StoreMode::kFullState,
                         "full_none");
}

TEST(CheckpointResume, WrongScenarioCheckpointIsRejected) {
  // A checkpoint from a different scenario (mismatching config
  // fingerprint) must not be resumed into: the run falls back to a fresh
  // search and still reports the correct totals.
  const auto scenarios = apps::bundled_scenarios();
  const apps::Scenario ping = scenarios.front().make();

  const std::string path = fresh_ckpt_path("wrong_scenario");
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;
  const CheckerResult ping_full = run_once(ping, opt);
  ASSERT_GE(ping_full.durability.checkpoints_written, 1u);

  const apps::Scenario other = scenarios.back().make();
  CheckerOptions fresh;
  fresh.stop_at_first_violation = false;
  const CheckerResult other_full = run_once(other, fresh);

  opt.resume = true;
  const CheckerResult other_resumed = run_once(other, opt);
  EXPECT_FALSE(other_resumed.durability.resumed);
  EXPECT_EQ(other_resumed.transitions, other_full.transitions);
  EXPECT_EQ(other_resumed.unique_states, other_full.unique_states);
  drop_slots(path);
}

TEST(CheckpointResume, MissingCheckpointFallsBackToFreshRun) {
  const apps::NamedScenario ns = apps::bundled_scenarios().front();
  const apps::Scenario s = ns.make();
  CheckerOptions base;
  base.stop_at_first_violation = false;
  const CheckerResult full = run_once(s, base);

  CheckerOptions opt = base;
  opt.checkpoint_path = fresh_ckpt_path("missing");
  opt.resume = true;
  const CheckerResult r = run_once(s, opt);
  EXPECT_FALSE(r.durability.resumed);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.transitions, full.transitions);
  drop_slots(opt.checkpoint_path);
}

TEST(CheckpointResume, FallsBackToOlderSlotWhenNewestCorrupt) {
  // Two interrupted runs populate both A/B slots (sequences 1 and 2);
  // flipping a bit in the newest forces the loader onto the older slot,
  // from which the resumed search must still reach the exact totals.
  const apps::NamedScenario ns = apps::bundled_scenarios()[1];  // ping2
  CheckerOptions base;
  base.stop_at_first_violation = false;

  const CheckerResult full = run_once(ns.make(), base);
  ASSERT_GT(full.transitions, 100u);

  const std::string path = fresh_ckpt_path("ab_fallback");
  CheckerOptions opt = base;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;
  opt.max_transitions = full.transitions / 3;
  (void)run_once(ns.make(), opt);
  opt.resume = true;
  opt.max_transitions = (2 * full.transitions) / 3;
  const CheckerResult mid = run_once(ns.make(), opt);
  ASSERT_TRUE(mid.durability.resumed);

  const SlotInfo a = read_checkpoint_slot(checkpoint_slot_a(path));
  const SlotInfo b = read_checkpoint_slot(checkpoint_slot_b(path));
  ASSERT_TRUE(a.valid) << a.error;
  ASSERT_TRUE(b.valid) << b.error;
  const std::string newest = a.sequence > b.sequence
                                 ? checkpoint_slot_a(path)
                                 : checkpoint_slot_b(path);
  std::string bytes = slurp(newest);
  bytes[bytes.size() / 2] ^= 0x04;
  spit(newest, bytes);
  ASSERT_FALSE(read_checkpoint_slot(newest).valid);

  opt.max_transitions = ~0ULL;
  const CheckerResult resumed = run_once(ns.make(), opt);
  EXPECT_TRUE(resumed.durability.resumed);
  EXPECT_TRUE(resumed.exhausted);
  EXPECT_EQ(resumed.transitions, full.transitions);
  EXPECT_EQ(resumed.unique_states, full.unique_states);
  EXPECT_EQ(violation_key_set(resumed), violation_key_set(full));
  drop_slots(path);
}

// ---- Cooperative interrupts ----------------------------------------------

TEST(CheckpointInterrupt, RequestAndClearFlag) {
  clear_interrupt();
  EXPECT_FALSE(interrupt_requested());
  request_interrupt();
  EXPECT_TRUE(interrupt_requested());
  clear_interrupt();
  EXPECT_FALSE(interrupt_requested());
}

TEST(CheckpointInterrupt, InterruptCheckpointsAndResumes) {
  const apps::NamedScenario ns = apps::bundled_scenarios()[3];  // bug1
  CheckerOptions base;
  base.stop_at_first_violation = false;
  const CheckerResult full = run_once(ns.make(), base);

  const std::string path = fresh_ckpt_path("interrupt");
  CheckerOptions opt = base;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;
  request_interrupt();
  const CheckerResult part = run_once(ns.make(), opt);
  EXPECT_EQ(part.hit_limit, LimitReason::kInterrupted);
  EXPECT_FALSE(part.exhausted);
  EXPECT_LT(part.transitions, full.transitions);
  EXPECT_GE(part.durability.checkpoints_written, 1u);
  EXPECT_FALSE(interrupt_requested()) << "honoring the interrupt clears it";

  opt.resume = true;
  const CheckerResult resumed = run_once(ns.make(), opt);
  EXPECT_TRUE(resumed.durability.resumed);
  EXPECT_TRUE(resumed.exhausted);
  EXPECT_EQ(resumed.transitions, full.transitions);
  EXPECT_EQ(resumed.unique_states, full.unique_states);
  EXPECT_EQ(violation_key_set(resumed), violation_key_set(full));
  drop_slots(path);
}

TEST(CheckpointInterrupt, ParallelInterruptCheckpointsAndResumes) {
  const apps::NamedScenario ns = apps::bundled_scenarios()[3];  // bug1
  CheckerOptions base;
  base.stop_at_first_violation = false;
  const CheckerResult full = run_once(ns.make(), base);

  const std::string path = fresh_ckpt_path("par_interrupt");
  CheckerOptions opt = base;
  opt.threads = 4;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;
  request_interrupt();
  const CheckerResult part = run_once(ns.make(), opt);
  clear_interrupt();  // in case the run finished before the first poll
  EXPECT_GE(part.durability.checkpoints_written, 1u);

  opt.resume = true;
  opt.threads = 4;
  const CheckerResult resumed = run_once(ns.make(), opt);
  EXPECT_TRUE(resumed.exhausted);
  EXPECT_EQ(resumed.transitions, full.transitions);
  EXPECT_EQ(resumed.unique_states, full.unique_states);
  EXPECT_EQ(resumed.quiescent_states, full.quiescent_states);
  EXPECT_EQ(violation_key_set(resumed), violation_key_set(full));
  drop_slots(path);
}

// ---- Memory-budget watchdog ----------------------------------------------

TEST(MemoryWatchdog, ImpossibleBudgetHaltsGracefullyWithCheckpoint) {
  // A budget below any working set: the eviction ladder empties the memo
  // tables, then the search checkpoints and halts with kMemory instead of
  // OOM-aborting — and the checkpoint is resumable to the exact totals.
  const apps::NamedScenario ns = apps::bundled_scenarios()[3];  // bug1
  CheckerOptions base;
  base.stop_at_first_violation = false;
  const CheckerResult full = run_once(ns.make(), base);

  const std::string path = fresh_ckpt_path("watchdog");
  CheckerOptions opt = base;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;
  opt.memory_budget_bytes = 1;
  const CheckerResult part = run_once(ns.make(), opt);
  EXPECT_EQ(part.hit_limit, LimitReason::kMemory);
  EXPECT_FALSE(part.exhausted);
  EXPECT_EQ(part.memo.bytes, 0u) << "ladder must shrink memos before halting";
  EXPECT_GT(part.durability.watchdog_bytes, opt.memory_budget_bytes);
  EXPECT_GE(part.durability.checkpoints_written, 1u);

  opt.memory_budget_bytes = 0;
  opt.resume = true;
  const CheckerResult resumed = run_once(ns.make(), opt);
  EXPECT_TRUE(resumed.durability.resumed);
  EXPECT_TRUE(resumed.exhausted);
  EXPECT_EQ(resumed.transitions, full.transitions);
  EXPECT_EQ(resumed.unique_states, full.unique_states);
  EXPECT_EQ(violation_key_set(resumed), violation_key_set(full));
  drop_slots(path);
}

TEST(MemoryWatchdog, GenerousBudgetRunsToCompletion) {
  const apps::NamedScenario ns = apps::bundled_scenarios()[1];  // ping2
  CheckerOptions base;
  base.stop_at_first_violation = false;
  const CheckerResult full = run_once(ns.make(), base);

  CheckerOptions opt = base;
  opt.memory_budget_bytes = 1ull << 30;
  const CheckerResult r = run_once(ns.make(), opt);
  EXPECT_EQ(r.hit_limit, LimitReason::kNone);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.transitions, full.transitions);
  EXPECT_EQ(r.unique_states, full.unique_states);
  EXPECT_GT(r.durability.watchdog_bytes, 0u);
}

TEST(MemoryWatchdog, ParallelBudgetHaltIsResumable) {
  const apps::NamedScenario ns = apps::bundled_scenarios()[3];  // bug1
  CheckerOptions base;
  base.stop_at_first_violation = false;
  const CheckerResult full = run_once(ns.make(), base);

  const std::string path = fresh_ckpt_path("par_watchdog");
  CheckerOptions opt = base;
  opt.threads = 4;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;
  opt.memory_budget_bytes = 1;
  const CheckerResult part = run_once(ns.make(), opt);
  EXPECT_EQ(part.hit_limit, LimitReason::kMemory);
  EXPECT_GE(part.durability.checkpoints_written, 1u);

  opt.memory_budget_bytes = 0;
  const CheckerResult resumed = [&] {
    CheckerOptions o = opt;
    o.resume = true;
    return run_once(ns.make(), o);
  }();
  EXPECT_TRUE(resumed.exhausted);
  EXPECT_EQ(resumed.transitions, full.transitions);
  EXPECT_EQ(resumed.unique_states, full.unique_states);
  EXPECT_EQ(violation_key_set(resumed), violation_key_set(full));
  drop_slots(path);
}

// ---- Periodic checkpointing ----------------------------------------------

TEST(CheckpointPeriodic, TinyIntervalWritesMoreThanTheHaltSnapshot) {
  const apps::NamedScenario ns = apps::bundled_scenarios()[1];  // ping2
  const std::string path = fresh_ckpt_path("periodic");
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 1e-9;  // due at every poll
  const CheckerResult r = run_once(ns.make(), opt);
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.durability.checkpoints_written, 1u);
  // Both slots end up populated and the loader picks the newest.
  const SlotInfo a = read_checkpoint_slot(checkpoint_slot_a(path));
  const SlotInfo b = read_checkpoint_slot(checkpoint_slot_b(path));
  EXPECT_TRUE(a.valid) << a.error;
  EXPECT_TRUE(b.valid) << b.error;
  EXPECT_NE(a.sequence, b.sequence);
  drop_slots(path);
}

}  // namespace
}  // namespace nicemc::mc
