// Integration tests for search telemetry (CheckerOptions::telemetry):
// observation must not perturb the search, phase accounting must be
// exhaustive, the flight recorder must capture truncating halts, and a
// killed-and-resumed run must emit one continuous monotone NDJSON
// progress stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/checkpoint.h"
#include "util/telemetry.h"

namespace nicemc::mc {
namespace {

CheckerResult run_bug2(bool telemetry, unsigned threads = 1) {
  auto s = apps::pyswitch_bug2();
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.telemetry = telemetry;
  opt.threads = threads;
  Checker checker(s.config, opt, s.properties);
  return checker.run();
}

TEST(Progress, TelemetryKnobIsCountInvisible) {
  const CheckerResult off = run_bug2(false);
  const CheckerResult on = run_bug2(true);
  EXPECT_EQ(on.transitions, off.transitions);
  EXPECT_EQ(on.unique_states, off.unique_states);
  EXPECT_EQ(on.quiescent_states, off.quiescent_states);
  EXPECT_EQ(violation_key_set(on), violation_key_set(off));
  EXPECT_FALSE(off.telemetry.enabled);
  EXPECT_TRUE(on.telemetry.enabled);
}

TEST(Progress, TelemetryKnobIsCountInvisibleParallel) {
  const CheckerResult off = run_bug2(false, 4);
  const CheckerResult on = run_bug2(true, 4);
  EXPECT_EQ(on.unique_states, off.unique_states);
  EXPECT_EQ(on.quiescent_states, off.quiescent_states);
  EXPECT_EQ(violation_key_set(on), violation_key_set(off));
  EXPECT_EQ(on.telemetry.workers, 4u);
}

TEST(Progress, PhaseTotalsSumToWallTime) {
  const CheckerResult r = run_bug2(true);
  ASSERT_TRUE(r.telemetry.enabled);
  EXPECT_EQ(r.telemetry.workers, 1u);
  EXPECT_GT(r.telemetry.wall_ns, 0u);
  std::uint64_t sum = 0;
  std::uint64_t slices = 0;
  for (const util::PhaseStat& p : r.telemetry.phases) {
    sum += p.total_ns;
    slices += p.count;
  }
  EXPECT_GT(slices, 0u);
  // Exhaustive attribution, up to TSC-calibration error: the phase sum
  // tracks the bound wall time within a few percent plus a small
  // absolute slack for very short searches.
  const std::uint64_t wall = r.telemetry.wall_ns;
  const std::uint64_t slack = wall / 10 + 2000000;
  EXPECT_LE(sum, wall + slack);
  EXPECT_GE(sum + slack, wall);
  // The search did real work in the instrumented phases.
  const auto ns_of = [&](util::Phase p) {
    return r.telemetry.phases[static_cast<std::size_t>(p)].total_ns;
  };
  EXPECT_GT(ns_of(util::Phase::kApply), 0u);
  EXPECT_GT(ns_of(util::Phase::kEnabled), 0u);
  EXPECT_GT(ns_of(util::Phase::kRemember), 0u);
}

TEST(Progress, CleanFinishLeavesNoFlightDump) {
  const CheckerResult r = run_bug2(true);
  EXPECT_EQ(r.hit_limit, LimitReason::kNone);
  EXPECT_TRUE(r.telemetry.flight.empty());
}

TEST(Progress, TruncatedRunDumpsFlightRecorder) {
  auto s = apps::pyswitch_bug2();
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.telemetry = true;
  opt.max_transitions = 50;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_EQ(r.hit_limit, LimitReason::kTransitions);
  ASSERT_FALSE(r.telemetry.flight.empty());
  // The dump ends with the limit event, preceded by expanded transitions.
  bool saw_limit = false;
  bool saw_expand = false;
  for (const std::string& line : r.telemetry.flight) {
    saw_limit = saw_limit ||
                line.find("halt transitions") != std::string::npos;
    saw_expand = saw_expand || line.find("expand") != std::string::npos;
  }
  EXPECT_TRUE(saw_limit);
  EXPECT_TRUE(saw_expand);
}

TEST(Progress, TelemetryOffCostsNothingInTheResult) {
  const CheckerResult r = run_bug2(false);
  EXPECT_FALSE(r.telemetry.enabled);
  EXPECT_EQ(r.telemetry.wall_ns, 0u);
  EXPECT_EQ(r.telemetry.progress_snapshots, 0u);
  for (const util::PhaseStat& p : r.telemetry.phases) {
    EXPECT_EQ(p.count, 0u);
    EXPECT_EQ(p.total_ns, 0u);
  }
}

TEST(Progress, KillAndResumeYieldsOneMonotoneStream) {
  // The stream contract for crash recovery: cap a checkpointed search
  // mid-way, resume it with --progress pointing at the same file, and
  // the concatenated NDJSON must read as ONE run — sequence numbers
  // strictly increasing, cumulative transitions nondecreasing across the
  // process boundary (the resumed run seeds its counters from the
  // checkpoint), exactly one final "halt" line.
  const std::string ckpt = ::testing::TempDir() + "nicemc_prog_ckpt";
  const std::string stream =
      ::testing::TempDir() + "nicemc_prog_stream.ndjson";
  std::remove(checkpoint_slot_a(ckpt).c_str());
  std::remove(checkpoint_slot_b(ckpt).c_str());
  std::remove(stream.c_str());

  const CheckerResult full = run_bug2(false);

  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.telemetry = true;
  opt.progress_path = stream;
  opt.progress_interval_seconds = 0.002;
  opt.checkpoint_path = ckpt;
  opt.checkpoint_interval_seconds = 0;  // at-halt checkpoint only
  opt.max_transitions = full.transitions / 2 + 1;
  {
    auto s = apps::pyswitch_bug2();
    Checker first(s.config, opt, s.properties);
    const CheckerResult r = first.run();
    EXPECT_EQ(r.hit_limit, LimitReason::kTransitions);
  }

  opt.max_transitions = ~0ULL;
  opt.resume = true;
  auto s = apps::pyswitch_bug2();
  Checker second(s.config, opt, s.properties);
  const CheckerResult resumed = second.run();
  EXPECT_TRUE(resumed.exhausted);
  EXPECT_EQ(resumed.transitions, full.transitions);
  EXPECT_EQ(resumed.unique_states, full.unique_states);

  std::ifstream in(stream);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  std::uint64_t halts = 0;
  std::uint64_t prev_seq = 0;
  std::uint64_t prev_transitions = 0;
  util::ProgressSnapshot last;
  while (std::getline(in, line)) {
    util::ProgressSnapshot snap;
    ASSERT_TRUE(util::ProgressSnapshot::parse(line + "\n", snap)) << line;
    if (lines > 0) {
      EXPECT_GT(snap.seq, prev_seq) << "line " << lines;
      EXPECT_GE(snap.transitions, prev_transitions) << "line " << lines;
    }
    prev_seq = snap.seq;
    prev_transitions = snap.transitions;
    if (snap.event == "halt") ++halts;
    last = snap;
    ++lines;
  }
  // One halt per process: the capped run's and the resumed run's final
  // line. The stream stays monotone across both.
  EXPECT_GE(lines, 2u);
  EXPECT_EQ(halts, 2u);
  EXPECT_EQ(last.event, "halt");
  EXPECT_EQ(last.reason, "none");
  EXPECT_EQ(last.transitions, full.transitions);

  std::remove(checkpoint_slot_a(ckpt).c_str());
  std::remove(checkpoint_slot_b(ckpt).c_str());
  std::remove(stream.c_str());
}

TEST(Progress, RandomWalkPublishesTelemetry) {
  auto s = apps::pyswitch_bug2();
  CheckerOptions opt;
  opt.telemetry = true;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.random_walk(/*seed=*/7, /*walks=*/20,
                                              /*max_steps=*/50);
  EXPECT_TRUE(r.telemetry.enabled);
  EXPECT_GT(r.transitions, 0u);
  std::uint64_t slices = 0;
  for (const util::PhaseStat& p : r.telemetry.phases) slices += p.count;
  EXPECT_GT(slices, 0u);
}

}  // namespace
}  // namespace nicemc::mc
