// Copy-on-write aliasing guarantees of the state pipeline (see
// ARCHITECTURE.md "state pipeline").
//
// The load-bearing contract: a clone shares every component snapshot with
// its parent, and mutating the clone through ANY mutate-on-write accessor
// unshares (and re-hashes) exactly that component — the parent's canonical
// bytes and hash never move, no matter what the child does.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "apps/pyswitch.h"
#include "apps/scenarios.h"
#include "mc/execute.h"
#include "mc/system.h"
#include "util/ser.h"

namespace nicemc::mc {
namespace {

std::string canon_bytes(const SystemState& st) {
  util::Ser s;
  st.serialize(s, /*canonical_tables=*/true);
  auto b = s.bytes();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

SystemState make_state(const apps::Scenario& s) {
  return Executor(s.config, s.properties).make_initial();
}

TEST(Cow, CloneSharesEveryComponentSnapshot) {
  auto s = apps::pyswitch_ping_chain(2);
  SystemState a = make_state(s);
  SystemState b = a.clone();
  EXPECT_TRUE(a.shares_ctrl(b));
  for (std::size_t i = 0; i < a.switch_count(); ++i) {
    EXPECT_TRUE(a.shares_switch(b, i)) << "switch " << i;
  }
  for (std::size_t i = 0; i < a.host_count(); ++i) {
    EXPECT_TRUE(a.shares_host(b, i)) << "host " << i;
  }
  for (std::size_t i = 0; i < a.prop_count(); ++i) {
    EXPECT_TRUE(a.shares_prop(b, i)) << "prop " << i;
  }
  EXPECT_EQ(canon_bytes(a), canon_bytes(b));
  EXPECT_EQ(a.hash(true), b.hash(true));
}

TEST(Cow, CtrlMutUnsharesOnlyTheController) {
  auto s = apps::pyswitch_ping_chain(1);
  SystemState parent = make_state(s);
  const std::string parent_bytes = canon_bytes(parent);
  const auto parent_hash = parent.hash(true);

  SystemState child = parent.clone();
  auto& app =
      static_cast<apps::PySwitchState&>(*child.ctrl_mut().app);
  app.mactable[0].put(0xbeef, 3);

  EXPECT_FALSE(parent.shares_ctrl(child));
  for (std::size_t i = 0; i < parent.switch_count(); ++i) {
    EXPECT_TRUE(parent.shares_switch(child, i));
  }
  for (std::size_t i = 0; i < parent.host_count(); ++i) {
    EXPECT_TRUE(parent.shares_host(child, i));
  }
  EXPECT_EQ(canon_bytes(parent), parent_bytes);
  EXPECT_EQ(parent.hash(true), parent_hash);
  EXPECT_NE(canon_bytes(child), parent_bytes);
  EXPECT_NE(child.hash(true), parent_hash);
}

TEST(Cow, SwMutUnsharesOnlyThatSwitch) {
  auto s = apps::pyswitch_ping_chain(1);
  SystemState parent = make_state(s);
  ASSERT_GE(parent.switch_count(), 2u);
  const std::string parent_bytes = canon_bytes(parent);
  const auto parent_hash = parent.hash(true);

  SystemState child = parent.clone();
  child.sw_mut(0).enqueue_packet(1, of::Packet{});

  EXPECT_FALSE(parent.shares_switch(child, 0));
  EXPECT_TRUE(parent.shares_switch(child, 1));
  EXPECT_TRUE(parent.shares_ctrl(child));
  EXPECT_EQ(canon_bytes(parent), parent_bytes);
  EXPECT_EQ(parent.hash(true), parent_hash);
  EXPECT_NE(canon_bytes(child), parent_bytes);
  EXPECT_NE(child.hash(true), parent_hash);
}

TEST(Cow, HostMutUnsharesOnlyThatHost) {
  auto s = apps::pyswitch_ping_chain(1);
  SystemState parent = make_state(s);
  ASSERT_GE(parent.host_count(), 2u);
  const std::string parent_bytes = canon_bytes(parent);
  const auto parent_hash = parent.hash(true);

  SystemState child = parent.clone();
  child.host_mut(1).burst += 1;

  EXPECT_FALSE(parent.shares_host(child, 1));
  EXPECT_TRUE(parent.shares_host(child, 0));
  EXPECT_TRUE(parent.shares_ctrl(child));
  EXPECT_EQ(canon_bytes(parent), parent_bytes);
  EXPECT_EQ(parent.hash(true), parent_hash);
  EXPECT_NE(canon_bytes(child), parent_bytes);
  EXPECT_NE(child.hash(true), parent_hash);
}

// A counting monitor state so the test can mutate a property component
// directly and watch its memoized form invalidate.
class CountingPropState final : public PropState {
 public:
  std::uint32_t count{0};
  [[nodiscard]] std::unique_ptr<PropState> clone() const override {
    auto c = std::make_unique<CountingPropState>();
    c->count = count;
    return c;
  }
  void serialize(util::Ser& s) const override {
    s.put_tag('C');
    s.put_u32(count);
  }
};

TEST(Cow, PropMutUnsharesOnlyThatMonitor) {
  SystemState parent;
  parent.add_prop(std::make_unique<CountingPropState>());
  parent.add_prop(std::make_unique<CountingPropState>());
  const std::string parent_bytes = canon_bytes(parent);
  const auto parent_hash = parent.hash(true);

  SystemState child = parent.clone();
  static_cast<CountingPropState&>(child.prop_mut(1)).count = 7;

  EXPECT_FALSE(parent.shares_prop(child, 1));
  EXPECT_TRUE(parent.shares_prop(child, 0));
  EXPECT_EQ(canon_bytes(parent), parent_bytes);
  EXPECT_EQ(parent.hash(true), parent_hash);
  EXPECT_NE(canon_bytes(child), parent_bytes);
  EXPECT_NE(child.hash(true), parent_hash);
}

TEST(Cow, MutWithoutChangeKeepsBytesAndHashEqual) {
  // The accessor itself must not perturb canonical forms: unsharing with
  // no semantic change leaves the child byte-identical to the parent
  // (the hash memo is invalidated, then recomputed to the same value).
  auto s = apps::pyswitch_ping_chain(1);
  SystemState parent = make_state(s);
  parent.add_prop(std::make_unique<CountingPropState>());
  SystemState child = parent.clone();
  (void)child.ctrl_mut();
  (void)child.sw_mut(0);
  (void)child.host_mut(0);
  (void)child.prop_mut(0);
  EXPECT_FALSE(parent.shares_ctrl(child));
  EXPECT_FALSE(parent.shares_switch(child, 0));
  EXPECT_FALSE(parent.shares_host(child, 0));
  EXPECT_FALSE(parent.shares_prop(child, 0));
  EXPECT_EQ(canon_bytes(parent), canon_bytes(child));
  EXPECT_EQ(parent.hash(true), child.hash(true));
  EXPECT_EQ(parent.hash(false), child.hash(false));
}

TEST(Cow, HashCacheInvalidationPerComponentType) {
  // For every component type: hash, mutate that one component through its
  // accessor, and the re-combined hash must change — i.e. the memoized
  // component form was dropped, not served stale.
  auto s = apps::pyswitch_ping_chain(1);

  {
    SystemState st = make_state(s);
    const auto h0 = st.hash(true);
    EXPECT_EQ(st.hash(true), h0);  // memo hit is stable
    static_cast<apps::PySwitchState&>(*st.ctrl_mut().app)
        .mactable[0]
        .put(0x42, 9);
    EXPECT_NE(st.hash(true), h0) << "stale controller form";
  }
  {
    SystemState st = make_state(s);
    const auto h0 = st.hash(true);
    st.sw_mut(0).enqueue_packet(1, of::Packet{});
    EXPECT_NE(st.hash(true), h0) << "stale switch form";
  }
  {
    SystemState st = make_state(s);
    const auto h0 = st.hash(true);
    st.host_mut(0).burst += 1;
    EXPECT_NE(st.hash(true), h0) << "stale host form";
  }
  {
    SystemState st;
    st.add_prop(std::make_unique<CountingPropState>());
    const auto h0 = st.hash(true);
    static_cast<CountingPropState&>(st.prop_mut(0)).count = 1;
    EXPECT_NE(st.hash(true), h0) << "stale prop form";
  }
}

TEST(Cow, ApplyingTransitionsNeverMovesParentBytes) {
  // The strongest aliasing guard: run real transitions (which mutate
  // through whatever accessors the executor uses) on clones and check the
  // parent snapshot byte-for-byte after each.
  auto s = apps::pyswitch_ping_chain(2);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState parent = ex.make_initial();
  const std::string parent_bytes = canon_bytes(parent);
  const auto parent_hash = parent.hash(true);

  const auto ts = ex.enabled(parent, cache);
  ASSERT_FALSE(ts.empty());
  for (const Transition& t : ts) {
    SystemState child = parent.clone();
    std::vector<Violation> vs;
    ex.apply(child, t, vs);
    EXPECT_EQ(canon_bytes(parent), parent_bytes)
        << "transition mutated the parent through a shared snapshot";
    EXPECT_EQ(parent.hash(true), parent_hash);
  }
}

TEST(Cow, SecondGenerationCloneChainKeepsAncestorsIntact) {
  // grandparent → parent → child, each generation mutates; every ancestor
  // keeps its exact bytes (regression guard for unshare-once bugs where
  // use_count bookkeeping goes wrong past the first generation).
  auto s = apps::pyswitch_ping_chain(1);
  SystemState g = make_state(s);
  const std::string g_bytes = canon_bytes(g);

  SystemState p = g.clone();
  p.host_mut(0).burst += 1;
  const std::string p_bytes = canon_bytes(p);

  SystemState c = p.clone();
  c.host_mut(0).burst += 1;
  c.sw_mut(0).enqueue_packet(1, of::Packet{});

  EXPECT_EQ(canon_bytes(g), g_bytes);
  EXPECT_EQ(canon_bytes(p), p_bytes);
  EXPECT_NE(canon_bytes(c), p_bytes);
  // Untouched components still shared across all three generations.
  EXPECT_TRUE(g.shares_ctrl(p));
  EXPECT_TRUE(p.shares_ctrl(c));
}

TEST(Cow, CombinedHashMatchesSerializedBytesEquality) {
  // hash() is combined from component hashes, not FNV over the whole
  // buffer — but the equality contract must hold in both directions on
  // real states: equal bytes ⇔ equal hash.
  auto s = apps::pyswitch_ping_chain(2);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  // Collect a small frontier of distinct reachable states (breadth-first,
  // a few levels deep — the initial state may enable only one transition).
  std::vector<SystemState> children;
  children.push_back(ex.make_initial());
  for (std::size_t depth = 0; depth < 4 && children.size() < 8; ++depth) {
    std::vector<SystemState> next;
    for (const SystemState& st : children) {
      for (const Transition& t : ex.enabled(st, cache)) {
        SystemState child = st.clone();
        std::vector<Violation> vs;
        ex.apply(child, t, vs);
        next.push_back(std::move(child));
      }
    }
    if (next.empty()) break;
    for (SystemState& st : next) children.push_back(std::move(st));
  }
  ASSERT_GE(children.size(), 2u);
  for (const auto& a : children) {
    for (const auto& b : children) {
      for (bool canonical : {true, false}) {
        util::Ser sa, sb;
        a.serialize(sa, canonical);
        b.serialize(sb, canonical);
        const bool same_bytes =
            sa.size() == sb.size() &&
            std::equal(sa.bytes().begin(), sa.bytes().end(),
                       sb.bytes().begin());
        EXPECT_EQ(same_bytes, a.hash(canonical) == b.hash(canonical));
      }
    }
  }
}

}  // namespace
}  // namespace nicemc::mc
