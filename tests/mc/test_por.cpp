// The partial-order-reduction subsystem (mc/por/): the differential
// soundness sweep over every bundled scenario — on exhaustive runs every
// reducing mode (kSleep, kSleepPersistent, kSourceDpor) must report the
// identical violation set, the identical unique-state and quiescent-state
// counts, and fewer (or equal) transitions than the unreduced search —
// plus strict-reduction checks on the paper scenarios, the Source-DPOR
// gate (never more transitions than kSleepPersistent), parallel/frontier
// composition, and SleepStore mechanics.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/por/sleep.h"

namespace nicemc::mc {
namespace {

CheckerResult run_reduced(apps::Scenario s, Reduction reduction,
                          unsigned threads = 1,
                          FrontierKind frontier = FrontierKind::kDfs) {
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.reduction = reduction;
  opt.threads = threads;
  opt.frontier = frontier;
  Checker checker(s.config, opt, s.properties);
  return checker.run();
}

// The hard contract of the tentpole: a sound reduction prunes only
// redundant interleavings, never states or violations. Unique-state and
// quiescent-state counts are exact equalities because this checker's
// properties are state predicates (quiescence checks run at every
// terminal state; monitor state is part of state identity).
TEST(Por, DifferentialSoundnessSweepAllBundledScenarios) {
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const CheckerResult none = run_reduced(ns.make(), Reduction::kNone);
    ASSERT_TRUE(none.exhausted) << ns.name;
    for (const Reduction r :
         {Reduction::kSleep, Reduction::kSleepPersistent,
          Reduction::kSourceDpor}) {
      const CheckerResult red = run_reduced(ns.make(), r);
      const std::string tag = ns.name + " / " + reduction_name(r);
      EXPECT_TRUE(red.exhausted) << tag;
      EXPECT_EQ(red.unique_states, none.unique_states) << tag;
      EXPECT_EQ(red.quiescent_states, none.quiescent_states) << tag;
      EXPECT_EQ(violation_key_set(red), violation_key_set(none)) << tag;
      EXPECT_LE(red.transitions, none.transitions) << tag;
      // Every state but the root is discovered by exactly one non-revisit
      // transition: transitions = (unique-1) + revisits + violating.
      EXPECT_GE(red.transitions - red.revisits, red.unique_states - 1)
          << tag;
    }
  }
}

TEST(Por, StrictReductionOnPaperScenarios) {
  // The acceptance bar: strictly fewer transitions on the 2-ping pyswitch
  // chain and the load-balancer scenarios.
  const auto strict = [](apps::Scenario a, apps::Scenario b,
                         const char* name) {
    const CheckerResult none = run_reduced(std::move(a), Reduction::kNone);
    const CheckerResult red =
        run_reduced(std::move(b), Reduction::kSleepPersistent);
    EXPECT_LT(red.transitions, none.transitions) << name;
  };
  strict(apps::pyswitch_ping_chain(2), apps::pyswitch_ping_chain(2),
         "pyswitch-ping2");
  apps::LbScenarioOptions lb;
  lb.fix_release_packet = true;
  lb.fix_install_before_delete = true;
  lb.fix_discard_arp = true;
  lb.fix_check_assignments = true;
  lb.client_sends_arp = true;
  strict(apps::lb_scenario(lb), apps::lb_scenario(lb), "lb-fixed");
  strict(apps::lb_scenario({}), apps::lb_scenario({}), "lb-bugs");
}

TEST(Por, SourceDporNeverExceedsSleepPersistent) {
  // The Source-DPOR acceptance gate: replays are attached lazily (only a
  // re-expanded child that discovers a new state pays for its conditional
  // sleeps), so the sequential DFS search must never explore more
  // transitions than kSleepPersistent on any bundled scenario.
  for (const apps::NamedScenario& ns : apps::bundled_scenarios()) {
    const CheckerResult sp =
        run_reduced(ns.make(), Reduction::kSleepPersistent);
    const CheckerResult src = run_reduced(ns.make(), Reduction::kSourceDpor);
    EXPECT_LE(src.transitions, sp.transitions) << ns.name;
    EXPECT_EQ(src.unique_states, sp.unique_states) << ns.name;
    // The wakeup trees must actually be recording the dispatch schedule.
    EXPECT_GT(src.wakeup.trees, 0u) << ns.name;
    EXPECT_GE(src.wakeup.sequences, src.wakeup.trees) << ns.name;
  }
}

TEST(Por, ReductionFindsKnownBugStopAtFirst) {
  // Default stop-at-first mode still finds BUG-II under reduction, with a
  // replayable trace.
  auto s = apps::pyswitch_bug2();
  CheckerOptions opt;
  opt.reduction = Reduction::kSleepPersistent;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation());
  EXPECT_FALSE(r.violations.front().trace.empty());
  EXPECT_EQ(r.violations.front().violation.property, "StrictDirectPaths");
}

TEST(Por, ParallelDriverComposesWithReduction) {
  // Sleep sets ride on SearchNodes and the SleepStore is lock-striped, so
  // the parallel driver keeps the soundness contract: same states, same
  // violations. (Which arrival claims a re-expansion is schedule-
  // dependent, so the exact transition count may vary between parallel
  // runs — but it never exceeds the unreduced count.)
  apps::LbScenarioOptions o;
  o.fix_install_before_delete = true;
  o.client_sends_arp = true;
  const CheckerResult none = run_reduced(apps::lb_scenario(o),
                                         Reduction::kNone);
  const CheckerResult seq = run_reduced(apps::lb_scenario(o),
                                        Reduction::kSleepPersistent);
  for (const Reduction r :
       {Reduction::kSleepPersistent, Reduction::kSourceDpor}) {
    for (unsigned threads : {2u, 4u}) {
      const std::string tag =
          reduction_name(r) + " x" + std::to_string(threads);
      const CheckerResult par =
          run_reduced(apps::lb_scenario(o), r, threads);
      EXPECT_TRUE(par.exhausted) << tag;
      EXPECT_EQ(par.unique_states, seq.unique_states) << tag;
      EXPECT_EQ(violation_key_set(par), violation_key_set(seq)) << tag;
      EXPECT_LE(par.transitions, none.transitions) << tag;
    }
  }
}

TEST(Por, AlternativeFrontiersKeepTheContract) {
  // BFS/random arrival orders shuffle which sleep sets reach a state
  // first; the stored-sleep re-expansion rule keeps coverage exact. For
  // kSourceDpor these frontiers matter doubly: under non-DFS orders a
  // re-expanded child can reach a still-unseen state, which is exactly
  // when the conditional sleeps activate and wakeup replays are emitted —
  // the claim-free/targeted arrival machinery must preserve the state
  // set.
  const CheckerResult none =
      run_reduced(apps::pyswitch_ping_chain(2), Reduction::kNone);
  for (const Reduction r : {Reduction::kSleep, Reduction::kSourceDpor}) {
    for (const FrontierKind kind :
         {FrontierKind::kBfs, FrontierKind::kRandom}) {
      const std::string tag =
          reduction_name(r) + " / " + frontier_name(kind);
      const CheckerResult red =
          run_reduced(apps::pyswitch_ping_chain(2), r, 1, kind);
      EXPECT_TRUE(red.exhausted) << tag;
      EXPECT_EQ(red.unique_states, none.unique_states) << tag;
      EXPECT_EQ(violation_key_set(red), violation_key_set(none)) << tag;
      EXPECT_LE(red.transitions, none.transitions) << tag;
    }
  }
}

TEST(Por, ReductionIsInertUnderNoDelay) {
  // NO-DELAY's drain_lockstep runs inside every apply — controller
  // dispatches and installs at arbitrary switches that no per-transition
  // footprint could attribute. compute_footprint therefore returns a
  // universal (conflicts-with-everything) footprint under cfg.no_delay:
  // the reduced search must degenerate to exactly the unreduced one —
  // same states, same violations, same transition count.
  const auto make = [](auto factory) {
    auto s = factory();
    CheckerOptions opt;
    opt.stop_at_first_violation = false;
    apps::set_strategy(s, opt, Strategy::kNoDelay);
    return std::pair{std::move(s), opt};
  };
  const auto sweep = [&](auto factory, const char* name) {
    auto [s_none, opt_none] = make(factory);
    Checker c_none(s_none.config, opt_none, s_none.properties);
    const CheckerResult none = c_none.run();
    for (const Reduction r :
         {Reduction::kSleep, Reduction::kSleepPersistent,
          Reduction::kSourceDpor}) {
      auto [s_red, opt_red] = make(factory);
      opt_red.reduction = r;
      Checker c_red(s_red.config, opt_red, s_red.properties);
      const CheckerResult red = c_red.run();
      const std::string tag = std::string(name) + " / " + reduction_name(r);
      EXPECT_EQ(red.transitions, none.transitions) << tag;
      EXPECT_EQ(red.unique_states, none.unique_states) << tag;
      EXPECT_EQ(violation_key_set(red), violation_key_set(none)) << tag;
      EXPECT_EQ(red.exhausted, none.exhausted) << tag;
    }
  };
  sweep([] { return apps::pyswitch_bug3(); }, "pyswitch-bug3");
  sweep([] { return apps::lb_scenario({}); }, "lb-bugs");
}

TEST(Por, ReductionComposesWithFlowIr) {
  // Strategies prune the enabled set before the reduction layer sees it.
  // FLOW-IR is a pure function of the canonical state (flow grouping over
  // packet headers), so reduction under FLOW-IR keeps the exact same
  // contract as under PKT-SEQ. UNUSUAL is deliberately absent here: its
  // filter keys on controller→switch send-order tags that are excluded
  // from canonical state identity, so which orderings survive depends on
  // which path first reaches a state — any change in arrival order
  // (reduction included) legitimately shifts its explored subspace.
  CheckerOptions base;
  base.stop_at_first_violation = false;
  base.strategy = Strategy::kFlowIr;
  auto s1 = apps::pyswitch_ping_chain(2);
  Checker c1(s1.config, base, s1.properties);
  const CheckerResult none = c1.run();

  CheckerOptions opt = base;
  opt.reduction = Reduction::kSleepPersistent;
  auto s2 = apps::pyswitch_ping_chain(2);
  Checker c2(s2.config, opt, s2.properties);
  const CheckerResult red = c2.run();

  EXPECT_TRUE(red.exhausted);
  EXPECT_EQ(red.unique_states, none.unique_states);
  EXPECT_LE(red.transitions, none.transitions);
}

TEST(Por, SleepStoreArrivalSemantics) {
  por::SleepStore store(4);
  const std::string id = "state-identity";
  por::Footprint fp;

  por::SleepSet z1;
  z1.push_back(por::SleepEntry{10, fp});
  z1.push_back(por::SleepEntry{20, fp});
  const auto first = store.arrive(id, z1);
  EXPECT_TRUE(first.first);
  EXPECT_TRUE(first.explore.empty());

  // Revisit with a smaller sleep set: the difference must be re-expanded
  // and the stored set shrinks to the intersection.
  por::SleepSet z2;
  z2.push_back(por::SleepEntry{20, fp});
  const auto second = store.arrive(id, z2);
  EXPECT_FALSE(second.first);
  EXPECT_EQ(second.explore, (std::vector<std::uint64_t>{10}));

  // 10 is no longer stored-slept; arriving without it re-expands nothing.
  const auto third = store.arrive(id, {});
  EXPECT_FALSE(third.first);
  EXPECT_EQ(third.explore, (std::vector<std::uint64_t>{20}));
  const auto fourth = store.arrive(id, {});
  EXPECT_FALSE(fourth.first);
  EXPECT_TRUE(fourth.explore.empty());

  EXPECT_EQ(store.states(), 1u);
}

TEST(Por, SleepStoreKeysOnTrueIdentity) {
  // Two distinct states must keep separate sleep sets even if they land
  // in the same shard: the store keys on the seen-set's true identity
  // (blob or id tuple); an internal hash of those bytes only selects the
  // shard.
  por::SleepStore store(4);
  por::Footprint fp;

  por::SleepSet z;
  z.push_back(por::SleepEntry{10, fp});
  EXPECT_TRUE(store.arrive("state-a", z).first);
  // A different state colliding on the hash is a fresh first arrival, and
  // its empty sleep set must not dig into state-a's bookkeeping.
  const auto other = store.arrive("state-b", {});
  EXPECT_TRUE(other.first);
  EXPECT_TRUE(other.explore.empty());
  EXPECT_EQ(store.states(), 2u);

  // state-a's stored sleep set survived the collision untouched.
  const auto revisit = store.arrive("state-a", {});
  EXPECT_FALSE(revisit.first);
  EXPECT_EQ(revisit.explore, (std::vector<std::uint64_t>{10}));
}

}  // namespace
}  // namespace nicemc::mc
