#include "mc/strategy.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/discover.h"
#include "mc/execute.h"

namespace nicemc::mc {
namespace {

TEST(Strategy, PktSeqOnlyPassesThrough) {
  auto s = apps::pyswitch_ping_chain(2);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  auto ts = ex.enabled(st, cache);
  const auto filtered =
      apply_strategy(Strategy::kPktSeqOnly, s.config, st, ts);
  EXPECT_EQ(filtered.size(), ts.size());
}

TEST(Strategy, UnusualKeepsOnlyLastSentOfMessage) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();
  // Simulate the controller having sent messages to SW0 then SW1.
  st.sw_mut(0).push_of(of::BarrierRequest{.xid = 1}, 1);
  st.sw_mut(1).push_of(of::BarrierRequest{.xid = 2}, 2);
  std::vector<Transition> ts = {
      Transition{.kind = TKind::kSwitchProcessOf, .a = 0},
      Transition{.kind = TKind::kSwitchProcessOf, .a = 1},
      Transition{.kind = TKind::kHostRecv, .a = 0},
  };
  const auto filtered = apply_strategy(Strategy::kUnusual, s.config, st, ts);
  ASSERT_EQ(filtered.size(), 2u);
  // Only the most recently sent (SW1) OF processing survives; unrelated
  // transitions are untouched.
  EXPECT_EQ(filtered[0].kind, TKind::kSwitchProcessOf);
  EXPECT_EQ(filtered[0].a, 1u);
  EXPECT_EQ(filtered[1].kind, TKind::kHostRecv);
}

TEST(Strategy, FlowIrKeepsSingleFlowGroup) {
  auto s = apps::pyswitch_ping_chain(2);
  // Give A two pings with *different* MAC destinations so they form two
  // independent flow groups under pyswitch's default isSameFlow.
  auto& script = s.config.host_behavior[0].script;
  ASSERT_EQ(script.size(), 2u);
  script[1].hdr.eth_dst = 0x00aa0000002aULL;

  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();
  // Both sends enabled simultaneously (burst = 2): fake two send
  // transitions, one per script position, by lowering sends_done.
  std::vector<Transition> ts = {
      Transition{.kind = TKind::kHostSendScript, .a = 0},
  };
  // Single send: nothing filtered.
  EXPECT_EQ(apply_strategy(Strategy::kFlowIr, s.config, st, ts).size(), 1u);
}

TEST(Strategy, FlowIrReducesSearchOnIndependentFlows) {
  // Two pings to *different destinations* are independent flows: FLOW-IR
  // must explore fewer (or equal) transitions than the full search.
  auto make = []() {
    auto s = apps::pyswitch_ping_chain(2);
    s.config.host_behavior[0].script[1].hdr.eth_dst = 0x00aa0000002aULL;
    return s;
  };
  auto full = [&]() {
    auto s = make();
    Checker c(s.config, CheckerOptions{}, s.properties);
    return c.run();
  }();
  auto flowir = [&]() {
    auto s = make();
    CheckerOptions opt;
    apps::set_strategy(s, opt, Strategy::kFlowIr);
    Checker c(s.config, opt, s.properties);
    return c.run();
  }();
  EXPECT_LE(flowir.transitions, full.transitions);
  EXPECT_TRUE(flowir.exhausted);
}

TEST(Strategy, NamesAreStable) {
  EXPECT_EQ(strategy_name(Strategy::kPktSeqOnly), "PKT-SEQ");
  EXPECT_EQ(strategy_name(Strategy::kNoDelay), "NO-DELAY");
  EXPECT_EQ(strategy_name(Strategy::kFlowIr), "FLOW-IR");
  EXPECT_EQ(strategy_name(Strategy::kUnusual), "UNUSUAL");
}

}  // namespace
}  // namespace nicemc::mc
