// The symmetry-reduction layer (mc/sym_reduce.h): orbit validation, the
// canonical-key unit contract on hand-built states, the differential
// soundness sweep (symmetry on must report the identical canonicalized
// violation set as symmetry off across stores, reduction knobs and thread
// counts, with no more unique states), the k!-collapse acceptance ratios,
// the uid-draw-order regression (states differing only in uid allocation
// history merge), and checkpoint/resume identity with symmetry on.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/checkpoint.h"
#include "mc/sym_reduce.h"
#include "util/ser.h"

namespace nicemc::mc {
namespace {

using StoreMode = util::ShardedSeenSet::Mode;

CheckerResult run_opt(const apps::Scenario& s, const CheckerOptions& opt) {
  Checker checker(s.config, opt, s.properties);
  return checker.run();
}

CheckerResult run_sym(const apps::Scenario& s, bool symmetry,
                      StoreMode store = StoreMode::kHash,
                      unsigned threads = 1,
                      Reduction reduction = Reduction::kNone) {
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.symmetry = symmetry;
  opt.state_store = store;
  opt.threads = threads;
  opt.reduction = reduction;
  return run_opt(s, opt);
}

/// Violation keys with orbit-member identifiers rewritten to orbit-slot
/// placeholders: the unreduced search reports one message per member, the
/// reduced search one per orbit, so *sets* are compared post-rewrite.
std::set<std::string> sym_violation_set(const CheckerResult& r,
                                        const SymContext& sym) {
  std::vector<Violation> vs;
  vs.reserve(r.violations.size());
  for (const ViolationRecord& rec : r.violations) {
    vs.push_back(Violation{rec.violation.property,
                           sym.canonicalize_violation(rec.violation.message)});
  }
  const std::vector<std::string> keys = violation_keys(vs);
  return {keys.begin(), keys.end()};
}

/// Host-send transitions of the initial state, indexed by host id.
std::vector<Transition> initial_sends(const Executor& ex,
                                      const SystemState& initial) {
  DiscoveryCache cache;
  std::vector<Transition> sends;
  for (const Transition& t : ex.enabled(initial, cache)) {
    if (t.kind == TKind::kHostSendScript) sends.push_back(t);
  }
  return sends;
}

// ---- Canonical-key unit contract ------------------------------------------

TEST(SymContext, SingleSendStatesShareOneCanonicalKey) {
  // Three interchangeable clients; after exactly one of them sent its
  // ping, the three successor states are images of each other under the
  // orbit permutation — one canonical key, three raw keys.
  const apps::Scenario s = apps::sym_ping_scenario(3);
  const SymContext sym(s.config);
  EXPECT_EQ(sym.orbit_count(), 1u);
  EXPECT_EQ(sym.orbit_host_count(), 3u);
  EXPECT_FALSE(sym.includes_next_uid());  // scripted senders only

  const Executor ex(s.config, s.properties);
  const SystemState initial = ex.make_initial();
  const std::vector<Transition> sends = initial_sends(ex, initial);
  ASSERT_EQ(sends.size(), 3u);

  std::set<std::string> canonical;
  std::set<std::string> raw;
  for (const Transition& t : sends) {
    SystemState next = initial.clone();
    std::vector<Violation> vs;
    ex.apply(next, t, vs);
    canonical.insert(sym.canonical_key(next, nullptr).key);
    util::Ser ser;
    next.serialize(ser, s.config.canonical_flowtables);
    raw.insert(ser.take());
  }
  EXPECT_EQ(canonical.size(), 1u);  // exactness: one orbit, one key
  EXPECT_EQ(raw.size(), 3u);
  EXPECT_EQ(sym.canonicalizations(), 3u);
}

TEST(SymContext, TwoSendInterleavingsMergeAcrossUidAndRole) {
  // All six ordered pairs (client i sends, then client j) land in three
  // raw two-sent states per unordered pair choice — but a single
  // canonical key: the role permutation maps any sent-pair onto any
  // other, and uid renumbering erases which send drew uid 0.
  const apps::Scenario s = apps::sym_ping_scenario(3);
  const SymContext sym(s.config);
  const Executor ex(s.config, s.properties);
  const SystemState initial = ex.make_initial();
  const std::vector<Transition> sends = initial_sends(ex, initial);
  ASSERT_EQ(sends.size(), 3u);

  std::set<std::string> canonical;
  int pairs = 0;
  for (const Transition& first : sends) {
    for (const Transition& second : sends) {
      if (first.a == second.a) continue;
      SystemState next = initial.clone();
      std::vector<Violation> vs;
      ex.apply(next, first, vs);
      ex.apply(next, second, vs);
      canonical.insert(sym.canonical_key(next, nullptr).key);
      ++pairs;
    }
  }
  EXPECT_EQ(pairs, 6);
  EXPECT_EQ(canonical.size(), 1u);
}

TEST(SymContext, UidDrawOrderAloneMergesWithoutAnyOrbit) {
  // The uid-canonicalization bugfix in isolation: no orbits declared, so
  // only the renumbering pass is active. Two interleavings that differ
  // only in which send drew which uid must produce one canonical key
  // while their raw serializations differ.
  apps::Scenario s = apps::sym_ping_scenario(2);
  s.symmetry.clear();
  s.config.symmetry_orbits.clear();
  const SymContext sym(s.config);
  EXPECT_EQ(sym.orbit_count(), 0u);

  const Executor ex(s.config, s.properties);
  const SystemState initial = ex.make_initial();
  const std::vector<Transition> sends = initial_sends(ex, initial);
  ASSERT_EQ(sends.size(), 2u);

  std::vector<std::string> canonical;
  std::set<std::string> raw;
  for (const auto& [first, second] :
       {std::pair{0, 1}, std::pair{1, 0}}) {
    SystemState next = initial.clone();
    std::vector<Violation> vs;
    ex.apply(next, sends[static_cast<std::size_t>(first)], vs);
    ex.apply(next, sends[static_cast<std::size_t>(second)], vs);
    canonical.push_back(sym.canonical_key(next, nullptr).key);
    util::Ser ser;
    next.serialize(ser, s.config.canonical_flowtables);
    raw.insert(ser.take());
  }
  EXPECT_EQ(raw.size(), 2u);  // next_uid draw order leaks into raw keys
  EXPECT_EQ(canonical[0], canonical[1]);
}

// ---- Orbit validation -----------------------------------------------------

TEST(SymContext, RejectsInvalidOrbitDeclarations) {
  {
    // Members attached to different switches are not interchangeable.
    apps::Scenario s = apps::pyswitch_ping_chain(2);
    s.config.symmetry_orbits = {{0, 1}};
    EXPECT_THROW(SymContext{s.config}, std::invalid_argument);
  }
  {
    apps::Scenario s = apps::sym_ping_scenario(2);
    s.config.symmetry_orbits = {{0}};  // singleton orbit
    EXPECT_THROW(SymContext{s.config}, std::invalid_argument);
  }
  {
    apps::Scenario s = apps::sym_ping_scenario(2);
    s.config.symmetry_orbits = {{0, 0}};  // repeated member
    EXPECT_THROW(SymContext{s.config}, std::invalid_argument);
  }
  {
    apps::Scenario s = apps::sym_ping_scenario(2);
    s.config.symmetry_orbits = {{0, 7}};  // out of range
    EXPECT_THROW(SymContext{s.config}, std::invalid_argument);
  }
  {
    apps::Scenario s = apps::sym_ping_scenario(3);
    s.config.symmetry_orbits = {{0, 1}, {1, 2}};  // overlapping orbits
    EXPECT_THROW(SymContext{s.config}, std::invalid_argument);
  }
  {
    // Client and replica have different behaviours and scripts.
    apps::Scenario s = apps::lb_scenario({});
    s.config.symmetry_orbits = {{0, 1}};
    EXPECT_THROW(SymContext{s.config}, std::invalid_argument);
  }
  {
    // Mobile hosts cannot be renamed (alt locations are per-host).
    apps::Scenario s = apps::pyswitch_bug1();
    s.config.symmetry_orbits = {{0, 1}};
    EXPECT_THROW(SymContext{s.config}, std::invalid_argument);
  }
}

// ---- Differential soundness sweep -----------------------------------------

struct SweepCase {
  std::string name;
  std::function<apps::Scenario()> make;
};

std::vector<SweepCase> sweep_cases() {
  return {
      {"sym-ping2", [] { return apps::sym_ping_scenario(2); }},
      {"lb-sym3", [] { return apps::lb_sym_scenario(3); }},
      {"lb-sym3-bugs", [] { return apps::lb_sym_scenario(3, false); }},
      {"te-sym2", [] { return apps::te_sym_scenario(2); }},
  };
}

TEST(SymDifferential, IdenticalViolationSetsAcrossStoresThreadsReductions) {
  for (const SweepCase& c : sweep_cases()) {
    const apps::Scenario ref = c.make();
    const SymContext sym(ref.config);
    const CheckerResult off = run_sym(ref, /*symmetry=*/false);
    ASSERT_TRUE(off.exhausted) << c.name;
    const std::set<std::string> off_vs = sym_violation_set(off, sym);

    for (const StoreMode store :
         {StoreMode::kHash, StoreMode::kFullState, StoreMode::kCollapsed}) {
      for (const unsigned threads : {1u, 4u}) {
        for (const Reduction red :
             {Reduction::kNone, Reduction::kSleep,
              Reduction::kSleepPersistent, Reduction::kSourceDpor}) {
          const apps::Scenario s = c.make();
          const CheckerResult on = run_sym(s, true, store, threads, red);
          const std::string tag = c.name + " / store=" +
                                  std::to_string(static_cast<int>(store)) +
                                  " threads=" + std::to_string(threads) +
                                  " red=" + reduction_name(red);
          EXPECT_TRUE(on.exhausted) << tag;
          EXPECT_EQ(sym_violation_set(on, sym), off_vs) << tag;
          EXPECT_LE(on.unique_states, off.unique_states) << tag;
          EXPECT_LE(on.quiescent_states, off.quiescent_states) << tag;
          EXPECT_TRUE(on.symmetry.enabled) << tag;
          EXPECT_EQ(on.symmetry.orbits, 1u) << tag;
          EXPECT_GT(on.symmetry.canonicalizations, 0u) << tag;
          // Symmetry forces partial-order reduction off: symmetric merges
          // break the sleep-set label contract.
          EXPECT_EQ(on.wakeup.trees, 0u) << tag;
        }
      }
    }
  }
}

TEST(SymDifferential, FactorialCollapseOnBundledFamilies) {
  // The acceptance ratio: on a k-client symmetric scenario the reduced
  // search explores at most 1/(k-1)! of the unreduced unique states.
  {
    const apps::Scenario off_s = apps::lb_sym_scenario(4);  // k = 4
    const CheckerResult off = run_sym(off_s, false);
    const CheckerResult on = run_sym(apps::lb_sym_scenario(4), true);
    ASSERT_TRUE(off.exhausted);
    ASSERT_TRUE(on.exhausted);
    EXPECT_LE(on.unique_states * 6, off.unique_states);  // 1/(4-1)!
  }
  {
    const CheckerResult off = run_sym(apps::sym_ping_scenario(3), false);
    const CheckerResult on = run_sym(apps::sym_ping_scenario(3), true);
    ASSERT_TRUE(off.exhausted);
    ASSERT_TRUE(on.exhausted);
    EXPECT_LE(on.unique_states * 2, off.unique_states);  // 1/(3-1)!
  }
}

// ---- Fault accounting: duplicate SYN spends the packet-fault budget -------

TEST(SymFaults, DupSynSpendsPacketFaultBudget) {
  apps::LbScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_install_before_delete = true;
  o.client_can_dup_syn = true;
  o.data_segments = 2;
  o.check_flow_affinity = true;

  // Default packet-fault budget (2): the duplicate SYN fires and BUG-VII
  // (flow affinity broken across the dup) is found.
  const CheckerResult with_budget = run_sym(apps::lb_scenario(o), false);
  ASSERT_TRUE(with_budget.exhausted);
  ASSERT_FALSE(with_budget.violations.empty());
  EXPECT_EQ(with_budget.violations.front().violation.property,
            "FlowAffinity");

  // Budget 0: the dup is a packet-class fault and must be disabled — the
  // bug becomes unreachable and the state space shrinks.
  apps::Scenario s = apps::lb_scenario(o);
  s.config.max_packet_faults = 0;
  const CheckerResult no_budget = run_sym(s, false);
  ASSERT_TRUE(no_budget.exhausted);
  EXPECT_TRUE(no_budget.violations.empty());
  EXPECT_LT(no_budget.unique_states, with_budget.unique_states);
}

// ---- Checkpoint / resume --------------------------------------------------

std::string sym_ckpt_path(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "nicemc_sym_" + tag;
  std::remove(checkpoint_slot_a(path).c_str());
  std::remove(checkpoint_slot_b(path).c_str());
  return path;
}

void drop_sym_slots(const std::string& path) {
  std::remove(checkpoint_slot_a(path).c_str());
  std::remove(checkpoint_slot_b(path).c_str());
}

TEST(SymResume, InterruptedPlusResumedEqualsUninterrupted) {
  for (const StoreMode store :
       {StoreMode::kHash, StoreMode::kFullState, StoreMode::kCollapsed}) {
    SCOPED_TRACE(static_cast<int>(store));
    CheckerOptions base;
    base.stop_at_first_violation = false;
    base.symmetry = true;
    base.state_store = store;

    const CheckerResult full = run_opt(apps::sym_ping_scenario(3), base);
    ASSERT_TRUE(full.exhausted);

    const std::string path =
        sym_ckpt_path("resume_" + std::to_string(static_cast<int>(store)));
    CheckerOptions opt = base;
    opt.checkpoint_path = path;
    opt.checkpoint_interval_seconds = 0;
    opt.max_transitions = full.transitions / 2 + 1;
    const CheckerResult part = run_opt(apps::sym_ping_scenario(3), opt);
    ASSERT_GE(part.durability.checkpoints_written, 1u);

    opt.max_transitions = ~0ULL;
    opt.resume = true;
    const CheckerResult resumed = run_opt(apps::sym_ping_scenario(3), opt);
    EXPECT_TRUE(resumed.exhausted);
    if (part.hit_limit == LimitReason::kTransitions) {
      EXPECT_TRUE(resumed.durability.resumed);
    }
    EXPECT_EQ(resumed.unique_states, full.unique_states);
    EXPECT_EQ(resumed.quiescent_states, full.quiescent_states);
    EXPECT_EQ(resumed.transitions, full.transitions);
    EXPECT_EQ(violation_key_set(resumed), violation_key_set(full));
    drop_sym_slots(path);
  }
}

TEST(SymResume, SymmetryKnobIsPartOfTheConfigFingerprint) {
  // A checkpoint written without symmetry must not be resumed into a
  // symmetric search (and vice versa): the stored keys mean different
  // things. The mismatch falls back to a fresh run.
  const std::string path = sym_ckpt_path("fingerprint");
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  opt.checkpoint_path = path;
  opt.checkpoint_interval_seconds = 0;
  const CheckerResult off = run_opt(apps::sym_ping_scenario(2), opt);
  ASSERT_TRUE(off.exhausted);
  ASSERT_GE(off.durability.checkpoints_written, 1u);

  opt.symmetry = true;
  opt.resume = true;
  const CheckerResult on = run_opt(apps::sym_ping_scenario(2), opt);
  EXPECT_TRUE(on.exhausted);
  EXPECT_FALSE(on.durability.resumed);
  drop_sym_slots(path);
}

}  // namespace
}  // namespace nicemc::mc
