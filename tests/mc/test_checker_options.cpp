// Checker option coverage: limits, collect-all-violations mode, depth
// bounds, and the interaction between strategies and baselines.
#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/checker.h"

namespace nicemc::mc {
namespace {

TEST(CheckerOptions, CollectAllViolationsExhaustsTheSpace) {
  // BUG-IV and BUG-VI are both live in this configuration: collect-all
  // mode keeps searching past the first violation and still reports the
  // space as exhausted.
  apps::LbScenarioOptions o;
  o.fix_install_before_delete = true;
  o.client_sends_arp = true;
  auto s = apps::lb_scenario(o);
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_GT(r.violations.size(), 1u);
  EXPECT_TRUE(r.exhausted);

  // Stop-at-first mode on the same scenario reports a truncated search.
  auto s2 = apps::lb_scenario(o);
  Checker first(s2.config, CheckerOptions{}, s2.properties);
  const CheckerResult rf = first.run();
  EXPECT_EQ(rf.violations.size(), 1u);
  EXPECT_FALSE(rf.exhausted);
}

TEST(CheckerOptions, DepthLimitBoundsTraceLength) {
  auto s = apps::pyswitch_ping_chain(2);
  CheckerOptions opt;
  opt.max_depth = 5;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  // With the frontier cut at depth 5, the searched region stays tiny.
  EXPECT_LT(r.unique_states, 200u);
}

TEST(CheckerOptions, UniqueStateLimitStopsSearch) {
  auto s = apps::pyswitch_ping_chain(3);
  CheckerOptions opt;
  opt.max_unique_states = 100;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.unique_states, 101u);
}

TEST(CheckerOptions, ViolationTraceLengthIsBugDepth) {
  // BUG-VIII manifests after send → process → dispatch → quiescence.
  auto s = apps::te_scenario({});
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation());
  EXPECT_LE(r.violations.front().trace.size(), 6u);
}

TEST(CheckerOptions, DiscoveryStatsAccumulate) {
  auto s = apps::pyswitch_bug2();
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_GT(r.discovery.packet_discoveries, 0u);
  EXPECT_GT(r.discovery.handler_runs, r.discovery.packet_discoveries);
  EXPECT_GT(r.discovery.packets_found, 0u);
}

TEST(CheckerOptions, DiscoveryIsMemoizedPerControllerState) {
  // Exhausting the same scenario twice with one checker instance reuses
  // the cache; a second checker re-discovers. Either way the searches are
  // identical — discovery is a pure function of the controller state.
  auto s = apps::pyswitch_bug2();
  Checker first(s.config, CheckerOptions{}, s.properties);
  const auto r1 = first.run();
  auto s2 = apps::pyswitch_bug2();
  Checker second(s2.config, CheckerOptions{}, s2.properties);
  const auto r2 = second.run();
  EXPECT_EQ(r1.transitions, r2.transitions);
  EXPECT_EQ(r1.discovery.packet_discoveries, r2.discovery.packet_discoveries);
}

TEST(CheckerOptions, RandomWalksDifferBySeedButReplayTheSame) {
  auto s = apps::pyswitch_ping_chain(2);
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const auto a = checker.random_walk(1, 3, 50);
  auto s2 = apps::pyswitch_ping_chain(2);
  Checker checker2(s2.config, CheckerOptions{}, s2.properties);
  const auto b = checker2.random_walk(1, 3, 50);
  EXPECT_EQ(a.transitions, b.transitions);  // same seed → same walks
}

TEST(CheckerOptions, FineInterleavingStillFindsBugs) {
  // The JPF-like baseline is slower but sound: it still finds BUG-II.
  auto s = apps::pyswitch_bug2();
  s.config.fine_interleaving = true;
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_TRUE(r.found_violation());
}

TEST(CheckerOptions, NoSwitchReductionStillFindsBugs) {
  // Disabling canonicalization wastes states but is sound.
  auto s = apps::pyswitch_bug2();
  s.config.canonical_flowtables = false;
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_TRUE(r.found_violation());
}

TEST(CheckerOptions, CountLimitsReportTheirReason) {
  auto s = apps::pyswitch_ping_chain(3);
  CheckerOptions opt;
  opt.max_transitions = 200;
  Checker by_transitions(s.config, opt, s.properties);
  const CheckerResult rt = by_transitions.run();
  EXPECT_FALSE(rt.exhausted);
  EXPECT_EQ(rt.hit_limit, LimitReason::kTransitions);

  auto s2 = apps::pyswitch_ping_chain(3);
  CheckerOptions opt2;
  opt2.max_unique_states = 100;
  Checker by_states(s2.config, opt2, s2.properties);
  const CheckerResult rs = by_states.run();
  EXPECT_FALSE(rs.exhausted);
  EXPECT_EQ(rs.hit_limit, LimitReason::kUniqueStates);

  // A run that actually exhausts reports no limit.
  auto s3 = apps::pyswitch_ping_chain(1);
  Checker clean(s3.config, CheckerOptions{}, s3.properties);
  const CheckerResult rc = clean.run();
  EXPECT_TRUE(rc.exhausted);
  EXPECT_EQ(rc.hit_limit, LimitReason::kNone);
}

TEST(CheckerOptions, TimeLimitStopsSequentialSearch) {
  // A wall-clock budget far below the scenario's full search time: the
  // run must stop, report kTime, and never claim exhaustion.
  auto s = apps::pyswitch_ping_chain(4);
  CheckerOptions opt;
  opt.time_limit_seconds = 0.005;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.hit_limit, LimitReason::kTime);
}

TEST(CheckerOptions, TimeLimitStopsParallelSearch) {
  auto s = apps::pyswitch_ping_chain(4);
  CheckerOptions opt;
  opt.threads = 4;
  opt.time_limit_seconds = 0.005;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.hit_limit, LimitReason::kTime);
}

TEST(CheckerOptions, TimeLimitStopsRandomWalks) {
  for (const unsigned threads : {1u, 4u}) {
    auto s = apps::pyswitch_ping_chain(3);
    CheckerOptions opt;
    opt.threads = threads;
    opt.time_limit_seconds = 0.005;
    Checker checker(s.config, opt, s.properties);
    const CheckerResult r = checker.random_walk(/*seed=*/7,
                                                /*walks=*/1000000,
                                                /*max_steps=*/1000);
    EXPECT_EQ(r.hit_limit, LimitReason::kTime) << threads;
    EXPECT_FALSE(r.exhausted) << threads;
  }
}

}  // namespace
}  // namespace nicemc::mc
