// Checker option coverage: limits, collect-all-violations mode, depth
// bounds, the interaction between strategies and baselines, and the full
// reduction × state-store option matrix (time limits, hit_limit
// reporting, store statistics).
#include <gtest/gtest.h>

#include <string>

#include "apps/scenarios.h"
#include "mc/checker.h"

namespace nicemc::mc {
namespace {

constexpr Reduction kAllReductions[] = {
    Reduction::kNone, Reduction::kSleep, Reduction::kSleepPersistent,
    Reduction::kSourceDpor};
constexpr util::ShardedSeenSet::Mode kAllStores[] = {
    util::ShardedSeenSet::Mode::kHash,
    util::ShardedSeenSet::Mode::kFullState,
    util::ShardedSeenSet::Mode::kCollapsed};

std::string cell_tag(Reduction r, util::ShardedSeenSet::Mode m) {
  return reduction_name(r) + " store=" +
         std::to_string(static_cast<int>(m));
}

TEST(CheckerOptions, CollectAllViolationsExhaustsTheSpace) {
  // BUG-IV and BUG-VI are both live in this configuration: collect-all
  // mode keeps searching past the first violation and still reports the
  // space as exhausted.
  apps::LbScenarioOptions o;
  o.fix_install_before_delete = true;
  o.client_sends_arp = true;
  auto s = apps::lb_scenario(o);
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_GT(r.violations.size(), 1u);
  EXPECT_TRUE(r.exhausted);

  // Stop-at-first mode on the same scenario reports a truncated search.
  auto s2 = apps::lb_scenario(o);
  Checker first(s2.config, CheckerOptions{}, s2.properties);
  const CheckerResult rf = first.run();
  EXPECT_EQ(rf.violations.size(), 1u);
  EXPECT_FALSE(rf.exhausted);
}

TEST(CheckerOptions, DepthLimitBoundsTraceLength) {
  auto s = apps::pyswitch_ping_chain(2);
  CheckerOptions opt;
  opt.max_depth = 5;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  // With the frontier cut at depth 5, the searched region stays tiny.
  EXPECT_LT(r.unique_states, 200u);
}

TEST(CheckerOptions, UniqueStateLimitStopsSearch) {
  auto s = apps::pyswitch_ping_chain(3);
  CheckerOptions opt;
  opt.max_unique_states = 100;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.unique_states, 101u);
}

TEST(CheckerOptions, ViolationTraceLengthIsBugDepth) {
  // BUG-VIII manifests after send → process → dispatch → quiescence.
  auto s = apps::te_scenario({});
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  ASSERT_TRUE(r.found_violation());
  EXPECT_LE(r.violations.front().trace.size(), 6u);
}

TEST(CheckerOptions, DiscoveryStatsAccumulate) {
  auto s = apps::pyswitch_bug2();
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_GT(r.discovery.packet_discoveries, 0u);
  EXPECT_GT(r.discovery.handler_runs, r.discovery.packet_discoveries);
  EXPECT_GT(r.discovery.packets_found, 0u);
}

TEST(CheckerOptions, DiscoveryIsMemoizedPerControllerState) {
  // Exhausting the same scenario twice with one checker instance reuses
  // the cache; a second checker re-discovers. Either way the searches are
  // identical — discovery is a pure function of the controller state.
  auto s = apps::pyswitch_bug2();
  Checker first(s.config, CheckerOptions{}, s.properties);
  const auto r1 = first.run();
  auto s2 = apps::pyswitch_bug2();
  Checker second(s2.config, CheckerOptions{}, s2.properties);
  const auto r2 = second.run();
  EXPECT_EQ(r1.transitions, r2.transitions);
  EXPECT_EQ(r1.discovery.packet_discoveries, r2.discovery.packet_discoveries);
}

TEST(CheckerOptions, RandomWalksDifferBySeedButReplayTheSame) {
  auto s = apps::pyswitch_ping_chain(2);
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const auto a = checker.random_walk(1, 3, 50);
  auto s2 = apps::pyswitch_ping_chain(2);
  Checker checker2(s2.config, CheckerOptions{}, s2.properties);
  const auto b = checker2.random_walk(1, 3, 50);
  EXPECT_EQ(a.transitions, b.transitions);  // same seed → same walks
}

TEST(CheckerOptions, FineInterleavingStillFindsBugs) {
  // The JPF-like baseline is slower but sound: it still finds BUG-II.
  auto s = apps::pyswitch_bug2();
  s.config.fine_interleaving = true;
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_TRUE(r.found_violation());
}

TEST(CheckerOptions, NoSwitchReductionStillFindsBugs) {
  // Disabling canonicalization wastes states but is sound.
  auto s = apps::pyswitch_bug2();
  s.config.canonical_flowtables = false;
  Checker checker(s.config, CheckerOptions{}, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_TRUE(r.found_violation());
}

TEST(CheckerOptions, CountLimitsReportTheirReason) {
  auto s = apps::pyswitch_ping_chain(3);
  CheckerOptions opt;
  opt.max_transitions = 200;
  Checker by_transitions(s.config, opt, s.properties);
  const CheckerResult rt = by_transitions.run();
  EXPECT_FALSE(rt.exhausted);
  EXPECT_EQ(rt.hit_limit, LimitReason::kTransitions);

  auto s2 = apps::pyswitch_ping_chain(3);
  CheckerOptions opt2;
  opt2.max_unique_states = 100;
  Checker by_states(s2.config, opt2, s2.properties);
  const CheckerResult rs = by_states.run();
  EXPECT_FALSE(rs.exhausted);
  EXPECT_EQ(rs.hit_limit, LimitReason::kUniqueStates);

  // A run that actually exhausts reports no limit.
  auto s3 = apps::pyswitch_ping_chain(1);
  Checker clean(s3.config, CheckerOptions{}, s3.properties);
  const CheckerResult rc = clean.run();
  EXPECT_TRUE(rc.exhausted);
  EXPECT_EQ(rc.hit_limit, LimitReason::kNone);
}

TEST(CheckerOptions, TimeLimitStopsSequentialSearch) {
  // A wall-clock budget far below the scenario's full search time: the
  // run must stop, report kTime, and never claim exhaustion.
  auto s = apps::pyswitch_ping_chain(4);
  CheckerOptions opt;
  opt.time_limit_seconds = 0.005;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.hit_limit, LimitReason::kTime);
}

TEST(CheckerOptions, TimeLimitStopsParallelSearch) {
  auto s = apps::pyswitch_ping_chain(4);
  CheckerOptions opt;
  opt.threads = 4;
  opt.time_limit_seconds = 0.005;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult r = checker.run();
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.hit_limit, LimitReason::kTime);
}

TEST(CheckerOptions, TimeLimitMatrixAcrossReductionsAndStores) {
  // Every reduction × state-store pair must honor the wall-clock budget:
  // a run truncated by time reports hit_limit = kTime and never claims
  // exhaustion, whatever bookkeeping (sleep store, wakeup trees,
  // interning tables) rides along.
  for (const Reduction r : kAllReductions) {
    for (const util::ShardedSeenSet::Mode m : kAllStores) {
      auto s = apps::pyswitch_ping_chain(4);
      CheckerOptions opt;
      opt.reduction = r;
      opt.state_store = m;
      opt.time_limit_seconds = 0.004;
      Checker checker(s.config, opt, s.properties);
      const CheckerResult res = checker.run();
      const std::string tag = cell_tag(r, m);
      EXPECT_FALSE(res.exhausted) << tag;
      EXPECT_EQ(res.hit_limit, LimitReason::kTime) << tag;
    }
  }
}

TEST(CheckerOptions, StoreStatsConsistentAcrossReductionMatrix) {
  // Exhaustive runs across the full matrix: store statistics must match
  // the store mode (interning counters exactly when collapsed; nonzero
  // store bytes always) and wakeup statistics must appear exactly in
  // kSourceDpor mode.
  for (const Reduction r : kAllReductions) {
    for (const util::ShardedSeenSet::Mode m : kAllStores) {
      auto s = apps::pyswitch_ping_chain(2);
      CheckerOptions opt;
      opt.stop_at_first_violation = false;
      opt.reduction = r;
      opt.state_store = m;
      Checker checker(s.config, opt, s.properties);
      const CheckerResult res = checker.run();
      const std::string tag = cell_tag(r, m);
      EXPECT_TRUE(res.exhausted) << tag;
      EXPECT_EQ(res.hit_limit, LimitReason::kNone) << tag;
      EXPECT_GT(res.store_bytes, 0u) << tag;
      if (m == util::ShardedSeenSet::Mode::kCollapsed) {
        EXPECT_GT(res.collapse.unique_blobs, 0u) << tag;
        EXPECT_GT(res.collapse.dedupe_ratio, 1.0) << tag;
      } else {
        EXPECT_EQ(res.collapse.unique_blobs, 0u) << tag;
      }
      if (r == Reduction::kSourceDpor) {
        EXPECT_GT(res.wakeup.trees, 0u) << tag;
        EXPECT_GT(res.wakeup.sequences, 0u) << tag;
      } else {
        EXPECT_EQ(res.wakeup.trees, 0u) << tag;
        EXPECT_EQ(res.wakeup.sequences, 0u) << tag;
      }
    }
  }
}

TEST(CheckerOptions, MemoStatsConsistentAcrossReductionMatrix) {
  // Memo accounting contract over the full reduction × store matrix on a
  // scenario with symbolic discovery enabled (BUG-II): with the memo on,
  // discovery lookups happen in every mode (the shared memo sees each
  // per-worker DiscoveryCache miss), footprint lookups exactly when a
  // reducer is active, and resident bytes never exceed the configured
  // budget. With the memo off, every memo counter stays zero.
  for (const Reduction r : kAllReductions) {
    for (const util::ShardedSeenSet::Mode m : kAllStores) {
      const std::string tag = cell_tag(r, m);
      for (const bool memo : {true, false}) {
        auto s = apps::pyswitch_bug2();
        CheckerOptions opt;
        opt.stop_at_first_violation = false;
        opt.reduction = r;
        opt.state_store = m;
        opt.memo = memo;
        Checker checker(s.config, opt, s.properties);
        const CheckerResult res = checker.run();
        EXPECT_TRUE(res.exhausted) << tag;
        if (!memo) {
          EXPECT_EQ(res.memo.footprint_hits, 0u) << tag;
          EXPECT_EQ(res.memo.footprint_misses, 0u) << tag;
          EXPECT_EQ(res.memo.discover_hits, 0u) << tag;
          EXPECT_EQ(res.memo.discover_misses, 0u) << tag;
          EXPECT_EQ(res.memo.evictions, 0u) << tag;
          EXPECT_EQ(res.memo.bytes, 0u) << tag;
          continue;
        }
        EXPECT_GT(res.memo.discover_hits + res.memo.discover_misses, 0u)
            << tag;
        EXPECT_LE(res.memo.bytes, opt.memo_budget_bytes) << tag;
        if (r == Reduction::kNone) {
          // No reducer → no footprint computations at all.
          EXPECT_EQ(res.memo.footprint_hits + res.memo.footprint_misses,
                    0u)
              << tag;
        } else {
          EXPECT_GT(res.memo.footprint_hits + res.memo.footprint_misses,
                    0u)
              << tag;
          // Reuse must actually happen on this scenario, not just
          // bookkeeping: the table answers some lookups.
          EXPECT_GT(res.memo.footprint_hits, 0u) << tag;
        }
        // The default budget is far above this scenario's working set, so
        // nothing should have been evicted.
        EXPECT_EQ(res.memo.evictions, 0u) << tag;
        EXPECT_GT(res.memo.bytes, 0u) << tag;
      }
    }
  }
}

TEST(CheckerOptions, MemoBudgetIsRespectedUnderPressure) {
  // A deliberately tiny budget forces the LRU to evict; the search must
  // still complete with identical counts, and the resident bytes must
  // stay within the budget.
  auto baseline_s = apps::pyswitch_ping_chain(3);
  CheckerOptions base_opt;
  base_opt.stop_at_first_violation = false;
  base_opt.reduction = Reduction::kSleepPersistent;
  Checker baseline(baseline_s.config, base_opt, baseline_s.properties);
  const CheckerResult want = baseline.run();

  auto s = apps::pyswitch_ping_chain(3);
  CheckerOptions opt = base_opt;
  opt.memo_budget_bytes = 8192;
  Checker checker(s.config, opt, s.properties);
  const CheckerResult res = checker.run();
  EXPECT_EQ(res.transitions, want.transitions);
  EXPECT_EQ(res.unique_states, want.unique_states);
  EXPECT_EQ(violation_key_set(res), violation_key_set(want));
  EXPECT_LE(res.memo.bytes, opt.memo_budget_bytes);
  EXPECT_GT(res.memo.evictions, 0u);
}

TEST(CheckerOptions, CountLimitsReportReasonUnderReduction) {
  // Transition / unique-state caps keep their reporting contract when
  // the reduction layer is active (the caps see reduced counts).
  for (const Reduction r :
       {Reduction::kSleepPersistent, Reduction::kSourceDpor}) {
    auto s = apps::pyswitch_ping_chain(3);
    CheckerOptions opt;
    opt.reduction = r;
    opt.max_transitions = 150;
    Checker by_transitions(s.config, opt, s.properties);
    const CheckerResult rt = by_transitions.run();
    EXPECT_FALSE(rt.exhausted) << reduction_name(r);
    EXPECT_EQ(rt.hit_limit, LimitReason::kTransitions) << reduction_name(r);

    auto s2 = apps::pyswitch_ping_chain(3);
    CheckerOptions opt2;
    opt2.reduction = r;
    opt2.max_unique_states = 80;
    Checker by_states(s2.config, opt2, s2.properties);
    const CheckerResult rs = by_states.run();
    EXPECT_FALSE(rs.exhausted) << reduction_name(r);
    EXPECT_EQ(rs.hit_limit, LimitReason::kUniqueStates) << reduction_name(r);
  }
}

TEST(CheckerOptions, TimeLimitStopsRandomWalks) {
  for (const unsigned threads : {1u, 4u}) {
    auto s = apps::pyswitch_ping_chain(3);
    CheckerOptions opt;
    opt.threads = threads;
    opt.time_limit_seconds = 0.005;
    Checker checker(s.config, opt, s.properties);
    const CheckerResult r = checker.random_walk(/*seed=*/7,
                                                /*walks=*/1000000,
                                                /*max_steps=*/1000);
    EXPECT_EQ(r.hit_limit, LimitReason::kTime) << threads;
    EXPECT_FALSE(r.exhausted) << threads;
  }
}

}  // namespace
}  // namespace nicemc::mc
