// Seeded random mini-scenario generator for differential fuzzing of the
// model checker: every seed deterministically produces a small,
// exhaustively-searchable Scenario with a random topology (1–3 switches,
// chain or ring links, random host placement), a random application
// (pyswitch / load balancer / respond-TE with randomized bug-fix knobs),
// a random host mix (scripts, bursts, echo, ARP, mobility, duplicate
// SYNs) and random model options (canonical tables, rule expiry, channel
// faults, properties).
//
// The generator is the input half of the reduction × state-store ×
// thread differential sweep (test_fuzz_scenarios.cpp): every mode
// combination must report identical violations / unique states /
// quiescent states on each generated scenario. It lives in a header so
// future suites (new reductions, new stores, distributed drivers) can
// reuse the same corpus.
#ifndef NICE_TESTS_MC_FUZZ_SCENARIOS_H
#define NICE_TESTS_MC_FUZZ_SCENARIOS_H

#include <cstdint>
#include <string>

#include "apps/scenarios.h"

namespace nicemc::apps {

/// Deterministically build the mini-scenario for `seed`. Scenarios are
/// sized for exhaustive search: the unreduced transition count stays in
/// the low thousands (enforced by the fuzz test's sanity bound).
Scenario fuzz_scenario(std::uint64_t seed);

/// A short human-readable tag of what `seed` generates (family + knobs),
/// for test failure messages.
std::string fuzz_scenario_name(std::uint64_t seed);

}  // namespace nicemc::apps

#endif  // NICE_TESTS_MC_FUZZ_SCENARIOS_H
