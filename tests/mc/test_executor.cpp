#include "mc/execute.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "mc/discover.h"
#include "props/no_black_holes.h"

namespace nicemc::mc {
namespace {

/// Find the first enabled transition of a kind (or fail).
Transition find_kind(const std::vector<Transition>& ts, TKind kind) {
  for (const Transition& t : ts) {
    if (t.kind == kind) return t;
  }
  ADD_FAILURE() << "no transition of requested kind";
  return {};
}

bool has_kind(const std::vector<Transition>& ts, TKind kind) {
  for (const Transition& t : ts) {
    if (t.kind == kind) return true;
  }
  return false;
}

TEST(Executor, InitialEnabledTransitionsAreHostSends) {
  auto s = apps::pyswitch_ping_chain(2);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  const auto ts = ex.enabled(st, cache);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].kind, TKind::kHostSendScript);
  EXPECT_EQ(ts[0].a, 0u);  // host A
}

TEST(Executor, SendProcessDeliverReceiveCycle) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  // A sends its ping.
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostSendScript), v);
  EXPECT_EQ(st.host(0).sends_done, 1);
  EXPECT_EQ(st.host(0).burst, 0);
  EXPECT_TRUE(st.sw(0).can_process_pkt());

  // SW0 processes: no rule → packet_in to controller.
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kSwitchProcessPkt),
           v);
  EXPECT_EQ(st.sw(0).of_out.size(), 1u);

  // Controller handles packet_in: pyswitch floods (dst unknown).
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kCtrlDispatch), v);
  EXPECT_TRUE(st.sw(0).can_process_of());

  // SW0 applies the packet_out: flood → out the inter-switch link.
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kSwitchProcessOf), v);
  EXPECT_TRUE(st.sw(1).can_process_pkt());
  EXPECT_TRUE(v.empty());
}

TEST(Executor, BurstTokenReplenishedOnReceive) {
  auto s = apps::pyswitch_ping_chain(2);
  // Throttle A to one outstanding ping.
  s.config.host_behavior[0].initial_burst = 1;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostSendScript), v);
  // Burst exhausted: no further send enabled.
  EXPECT_FALSE(has_kind(ex.enabled(st, cache), TKind::kHostSendScript));
  // Hand-deliver a packet to A and receive it: burst replenishes.
  st.host_mut(0).input.push(of::Packet{});
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostRecv), v);
  EXPECT_TRUE(has_kind(ex.enabled(st, cache), TKind::kHostSendScript));
}

TEST(Executor, EchoHostQueuesReplyOnlyForItsOwnMac) {
  auto s = apps::pyswitch_ping_chain(1);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  of::Packet to_b;
  to_b.hdr.eth_src = s.config.topology->host(0).mac;
  to_b.hdr.eth_dst = s.config.topology->host(1).mac;
  st.host_mut(1).input.push(to_b);
  ex.apply(st, Transition{.kind = TKind::kHostRecv, .a = 1}, v);
  EXPECT_EQ(st.host(1).pending_replies.size(), 1u);
  EXPECT_EQ(st.host(1).pending_replies.front().hdr.eth_src,
            s.config.topology->host(1).mac);

  of::Packet other;
  other.hdr.eth_dst = 0xdead;
  st.host_mut(1).input.push(other);
  ex.apply(st, Transition{.kind = TKind::kHostRecv, .a = 1}, v);
  EXPECT_EQ(st.host(1).pending_replies.size(), 1u);  // unchanged
}

TEST(Executor, NoDelayDrainsControllerCommunicationAtomically) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.no_delay = true;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostSendScript), v);
  // The packet sits in SW0's ingress channel; process_pkt triggers
  // packet_in → handler → flood packet_out → application, all in one step.
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kSwitchProcessPkt),
           v);
  EXPECT_TRUE(st.sw(0).of_out.empty());
  EXPECT_FALSE(st.sw(0).can_process_of());
  // The flooded packet is already on its way to SW1.
  EXPECT_TRUE(st.sw(1).can_process_pkt());
}

TEST(Executor, FineInterleavingQueuesCommandsIndividually) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.fine_interleaving = true;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostSendScript), v);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kSwitchProcessPkt),
           v);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kCtrlDispatch), v);
  // The flood command is parked in the controller, not at the switch.
  EXPECT_FALSE(st.ctrl().pending_commands.empty());
  EXPECT_FALSE(st.sw(0).can_process_of());
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kCtrlApplyCommand),
           v);
  EXPECT_TRUE(st.sw(0).can_process_of());
}

TEST(Executor, HostMoveChangesDeliveryTarget) {
  auto s = apps::pyswitch_bug1();
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;
  ASSERT_TRUE(s.config.host_behavior[1].can_move);
  ex.apply(st, Transition{.kind = TKind::kHostMove, .a = 1, .aux = 0}, v);
  EXPECT_EQ(st.host(1).port, 3u);
  // A second move to the same alternative is no longer enabled.
  EXPECT_FALSE(has_kind(ex.enabled(st, cache), TKind::kHostMove));
}

TEST(Executor, DeadPortDeliveryRaisesEvent) {
  auto s = apps::pyswitch_bug1();
  s.properties.clear();
  s.properties.push_back(std::make_unique<props::NoBlackHoles>());
  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();
  std::vector<Violation> v;
  // Move B away, then force a rule that forwards to the now-dead port 2.
  ex.apply(st, Transition{.kind = TKind::kHostMove, .a = 1, .aux = 0}, v);
  of::Rule r;
  r.match = of::Match::any();
  r.actions = {of::Action::output(2)};
  st.sw_mut(0).table.add(r);
  st.sw_mut(0).enqueue_packet(1, of::Packet{});
  ex.apply(st, Transition{.kind = TKind::kSwitchProcessPkt, .a = 0}, v);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].property, "NoBlackHoles");
}

}  // namespace
}  // namespace nicemc::mc
