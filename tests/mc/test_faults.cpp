// Bounded fault-injection layer: link failures, controller-channel loss
// and switch restarts as first-class transitions, the per-execution
// FaultBudget woven into state identity, and the fault-reaction paths of
// the bundled controller apps.
#include <gtest/gtest.h>

#include "apps/pyswitch.h"
#include "apps/scenarios.h"
#include "mc/checker.h"
#include "mc/discover.h"
#include "mc/execute.h"
#include "props/no_black_holes.h"
#include "props/no_stale_rules.h"

namespace nicemc::mc {
namespace {

Transition find_kind(const std::vector<Transition>& ts, TKind kind) {
  for (const Transition& t : ts) {
    if (t.kind == kind) return t;
  }
  ADD_FAILURE() << "no transition of requested kind";
  return {};
}

bool has_kind(const std::vector<Transition>& ts, TKind kind) {
  for (const Transition& t : ts) {
    if (t.kind == kind) return true;
  }
  return false;
}

CheckerResult exhaustive(const apps::Scenario& s) {
  CheckerOptions opt;
  opt.stop_at_first_violation = false;
  Checker c(s.config, opt, s.properties);
  return c.run();
}

// --- transition semantics ---

TEST(Faults, LinkDownMarksBothEndpointsAndNotifiesBothControllersEnds) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_link_faults = true;  // budget 1, repair on (defaults)
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  auto ts = ex.enabled(st, cache);
  EXPECT_TRUE(has_kind(ts, TKind::kLinkDown));
  EXPECT_FALSE(has_kind(ts, TKind::kLinkUp));

  // The ping chain has exactly one switch-switch link: sw0:2 — sw1:2.
  ex.apply(st, find_kind(ts, TKind::kLinkDown), v);
  EXPECT_TRUE(st.sw(0).down_ports.contains(2));
  EXPECT_TRUE(st.sw(1).down_ports.contains(2));
  EXPECT_EQ(st.faults.link_failures, 1u);
  ASSERT_EQ(st.sw(0).of_out.size(), 1u);
  ASSERT_EQ(st.sw(1).of_out.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<of::PortStatus>(st.sw(0).of_out.front()));
  EXPECT_TRUE(std::holds_alternative<of::PortStatus>(st.sw(1).of_out.front()));

  // Budget spent: only the repair is enabled now.
  ts = ex.enabled(st, cache);
  EXPECT_FALSE(has_kind(ts, TKind::kLinkDown));
  ASSERT_TRUE(has_kind(ts, TKind::kLinkUp));

  ex.apply(st, find_kind(ts, TKind::kLinkUp), v);
  EXPECT_TRUE(st.sw(0).down_ports.empty());
  EXPECT_TRUE(st.sw(1).down_ports.empty());
  EXPECT_EQ(st.sw(0).of_out.size(), 2u);  // down + up notifications

  // Repair does not refund the budget.
  ts = ex.enabled(st, cache);
  EXPECT_FALSE(has_kind(ts, TKind::kLinkDown));
  EXPECT_FALSE(has_kind(ts, TKind::kLinkUp));
  EXPECT_TRUE(v.empty());
}

TEST(Faults, SpentFaultBudgetIsPartOfStateIdentity) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_link_faults = true;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  const util::Hash128 initial = st.hash(true);
  std::vector<Violation> v;

  // Fail and repair the link, then drain the port-status notifications
  // (pyswitch without react_to_port_status ignores them).
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kLinkDown), v);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kLinkUp), v);
  while (has_kind(ex.enabled(st, cache), TKind::kCtrlDispatch)) {
    ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kCtrlDispatch), v);
  }

  // The network is back to its initial configuration, but the execution
  // has consumed its failure budget — the states must NOT merge, or the
  // search would wrongly prune the post-repair behaviours.
  EXPECT_TRUE(st.sw(0).down_ports.empty());
  EXPECT_EQ(st.faults.link_failures, 1u);
  EXPECT_FALSE(st.hash(true) == initial);
}

TEST(Faults, CtrlChannelLossWipesChannelsAndReconnectsWithHandshake) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_ctrl_channel_faults = true;  // budget 1 (default)
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  // Put a packet_in in flight so the disconnect has something to lose.
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostSendScript), v);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kSwitchProcessPkt), v);
  ASSERT_EQ(st.sw(0).of_out.size(), 1u);

  auto ts = ex.enabled(st, cache);
  ex.apply(st, Transition{.kind = TKind::kCtrlChannelDown, .a = 0}, v);
  EXPECT_TRUE(st.sw(0).ctrl_channel_down);
  EXPECT_TRUE(st.sw(0).of_out.empty());
  EXPECT_TRUE(st.sw(0).of_in.empty());
  EXPECT_EQ(st.faults.channel_losses, 1u);

  // Budget spent: no second disconnect anywhere, reconnect is free.
  ts = ex.enabled(st, cache);
  EXPECT_FALSE(has_kind(ts, TKind::kCtrlChannelDown));
  ASSERT_TRUE(has_kind(ts, TKind::kCtrlChannelUp));
  ex.apply(st, find_kind(ts, TKind::kCtrlChannelUp), v);
  EXPECT_FALSE(st.sw(0).ctrl_channel_down);
  ts = ex.enabled(st, cache);
  EXPECT_FALSE(has_kind(ts, TKind::kCtrlChannelUp));
  EXPECT_FALSE(has_kind(ts, TKind::kCtrlChannelDown));
}

TEST(Faults, SwitchRestartWipesTableAndConsumesBudget) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_switch_restarts = true;  // budget 1 (default)
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  of::Rule r;
  r.match = of::Match::any();
  r.actions = {of::Action::output(2)};
  st.sw_mut(0).table.add(r);

  ASSERT_TRUE(has_kind(ex.enabled(st, cache), TKind::kSwitchRestart));
  ex.apply(st, Transition{.kind = TKind::kSwitchRestart, .a = 0}, v);
  EXPECT_TRUE(st.sw(0).table.empty());
  EXPECT_EQ(st.faults.switch_restarts, 1u);
  EXPECT_FALSE(has_kind(ex.enabled(st, cache), TKind::kSwitchRestart));
}

TEST(Faults, PortStatusDispatchFlushesMacsLearnedOnTheFailedPort) {
  auto s = apps::pyswitch_linkfail(/*react=*/true);
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  // Pretend sw0 learned one MAC behind the inter-switch link (port 2) and
  // one local MAC (port 1) before the failure.
  {
    auto& mactable =
        static_cast<apps::PySwitchState&>(*st.ctrl_mut().app).mactable;
    mactable[0].put(0xbb, 2);
    mactable[0].put(0xaa, 1);
  }

  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kLinkDown), v);
  // Dispatch sw0's OFPT_PORT_STATUS: the reaction forgets only the MAC
  // whose learned location died with the link.
  ex.apply(st, Transition{.kind = TKind::kCtrlDispatch, .a = 0}, v);
  const auto& mactable =
      static_cast<const apps::PySwitchState&>(*st.ctrl().app).mactable;
  EXPECT_FALSE(mactable.at(0).raw().contains(0xbb));
  EXPECT_TRUE(mactable.at(0).raw().contains(0xaa));
}

// --- the packet drop/dup fold into the budget ---

TEST(Faults, UnboundedPacketFaultBudgetKeepsLegacyStateMerging) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_channel_faults = true;
  s.config.max_packet_faults = kUnboundedFaults;  // the escape hatch
  s.config.channel_depth_limit = 3;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostSendScript), v);
  const util::Hash128 before = st.hash(true);

  // Duplicate then drop: with an unbounded budget the counter never moves,
  // so the state merges back with the pre-fault one — exactly the legacy
  // behaviour (termination by state matching, not by budget).
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDupHead), v);
  EXPECT_EQ(st.faults.packet_faults, 0u);
  EXPECT_EQ(st.sw(0).in_ports.at(1).size(), 2u);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDropHead), v);
  EXPECT_EQ(st.faults.packet_faults, 0u);
  EXPECT_TRUE(st.hash(true) == before);

  // Even unbounded, duplication can never grow a channel past the depth
  // limit — the remaining guard against infinite queues.
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDupHead), v);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDupHead), v);
  ASSERT_EQ(st.sw(0).in_ports.at(1).size(), 3u);
  const auto ts = ex.enabled(st, cache);
  EXPECT_FALSE(has_kind(ts, TKind::kChannelDupHead));
  EXPECT_TRUE(has_kind(ts, TKind::kChannelDropHead));
}

TEST(Faults, BoundedPacketFaultBudgetSplitsStatesAndRunsDry) {
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_channel_faults = true;  // max_packet_faults = 2 (default)
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostSendScript), v);
  const util::Hash128 before = st.hash(true);

  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDupHead), v);
  EXPECT_EQ(st.faults.packet_faults, 1u);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDropHead), v);
  EXPECT_EQ(st.faults.packet_faults, 2u);
  // Same channel contents as before the dup/drop pair, but two units of
  // budget are gone: the states must not merge.
  EXPECT_EQ(st.sw(0).in_ports.at(1).size(), 1u);
  EXPECT_FALSE(st.hash(true) == before);

  // Budget exhausted: the fault transitions disappear.
  const auto ts = ex.enabled(st, cache);
  EXPECT_FALSE(has_kind(ts, TKind::kChannelDupHead));
  EXPECT_FALSE(has_kind(ts, TKind::kChannelDropHead));
}

TEST(Faults, BoundedChannelFaultSearchTerminatesExhaustively) {
  // With the default packet-fault budget a drop/dup-enabled search is
  // finite by construction; historically (unbounded) this relied on the
  // echo workload not amplifying forever.
  auto s = apps::pyswitch_ping_chain(1);
  s.config.enable_channel_faults = true;
  const CheckerResult r = exhaustive(s);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.hit_limit, LimitReason::kNone);
  EXPECT_FALSE(r.found_violation());
}

TEST(Faults, ChannelDupCountsAnExtraInFlightCopy) {
  auto s = apps::pyswitch_ping_chain(1);
  s.properties.clear();
  s.properties.push_back(std::make_unique<props::NoBlackHoles>());
  s.config.enable_channel_faults = true;
  Executor ex(s.config, s.properties);
  DiscoveryCache cache;
  SystemState st = ex.make_initial();
  std::vector<Violation> v;

  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kHostSendScript), v);
  ex.apply(st, find_kind(ex.enabled(st, cache), TKind::kChannelDupHead), v);
  const auto& bst = static_cast<const props::NoBlackHolesState&>(st.prop(0));
  ASSERT_EQ(bst.balance.size(), 1u);
  EXPECT_EQ(bst.balance.begin()->second, 2);  // original + duplicate
  EXPECT_TRUE(v.empty());
}

// --- NoStaleRules ---

TEST(Faults, NoStaleRulesFlagsRulesForwardingIntoFailedPorts) {
  auto s = apps::pyswitch_ping_chain(1);
  s.properties.clear();
  s.properties.push_back(std::make_unique<props::NoStaleRules>());
  Executor ex(s.config, s.properties);
  SystemState st = ex.make_initial();

  of::Rule r;
  r.match = of::Match::any();
  r.actions = {of::Action::output(2)};
  st.sw_mut(0).table.add(r);

  std::vector<Violation> v;
  ex.at_quiescence(st, v);
  EXPECT_TRUE(v.empty());  // port 2 is up: nothing stale

  st.sw_mut(0).down_ports.insert(2);
  ex.at_quiescence(st, v);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].property, "NoStaleRules");
}

// --- violation asymmetries of the bundled fault scenarios ---

TEST(Faults, PingChainViolationIsReachableOnlyWithTheFault) {
  // The fault-only-violation regression: the ping chain satisfies
  // NoBlackHoles in every interleaving until a link failure can kill an
  // in-flight copy at the dead port.
  {
    auto s = apps::pyswitch_linkfail(/*react=*/false);
    CheckerOptions opt;  // stop at the first violation
    Checker c(s.config, opt, s.properties);
    const CheckerResult r = c.run();
    ASSERT_TRUE(r.found_violation());
    EXPECT_EQ(r.violations.front().violation.property, "NoBlackHoles");
  }
  {
    auto s = apps::pyswitch_linkfail(/*react=*/false);
    s.config.enable_link_faults = false;  // same model, faults off
    const CheckerResult r = exhaustive(s);
    EXPECT_TRUE(r.exhausted);
    EXPECT_FALSE(r.found_violation());
  }
}

TEST(Faults, PingChainSurvivesCtrlChannelLossAndSwitchRestart) {
  // NoBlackHoles holds across a disconnect/reconnect and across a switch
  // reboot: lost packets were already buffered (= consumed) or are
  // accounted as environment losses, and the rejoin handshake resyncs the
  // controller's view.
  {
    const CheckerResult r = exhaustive(apps::pyswitch_ctrlloss());
    EXPECT_TRUE(r.exhausted);
    EXPECT_FALSE(r.found_violation()) << violation_keys(r).front();
  }
  {
    const CheckerResult r = exhaustive(apps::pyswitch_restart());
    EXPECT_TRUE(r.exhausted);
    EXPECT_FALSE(r.found_violation()) << violation_keys(r).front();
  }
}

TEST(Faults, LoadBalancerStaleWildcardsFixedByPortStatusReaction) {
  {
    auto s = apps::lb_linkfail(/*react=*/false);
    CheckerOptions opt;
    Checker c(s.config, opt, s.properties);
    const CheckerResult r = c.run();
    ASSERT_TRUE(r.found_violation());
    EXPECT_EQ(r.violations.front().violation.property, "NoStaleRules");
  }
  {
    const CheckerResult r = exhaustive(apps::lb_linkfail(/*react=*/true));
    EXPECT_TRUE(r.exhausted);
    EXPECT_FALSE(r.found_violation()) << violation_keys(r).front();
  }
}

TEST(Faults, RespondTeStalePathsFixedByPortStatusReaction) {
  {
    auto s = apps::te_linkfail(/*react=*/false);
    CheckerOptions opt;
    Checker c(s.config, opt, s.properties);
    const CheckerResult r = c.run();
    ASSERT_TRUE(r.found_violation());
    EXPECT_EQ(r.violations.front().violation.property, "NoStaleRules");
  }
  {
    const CheckerResult r = exhaustive(apps::te_linkfail(/*react=*/true));
    EXPECT_TRUE(r.exhausted);
    EXPECT_FALSE(r.found_violation()) << violation_keys(r).front();
  }
}

}  // namespace
}  // namespace nicemc::mc
