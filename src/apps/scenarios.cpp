#include "apps/scenarios.h"

#include "hosts/client.h"
#include "hosts/tcp.h"
#include "props/correct_routing_table.h"
#include "props/direct_paths.h"
#include "props/flow_affinity.h"
#include "props/no_black_holes.h"
#include "props/no_forgotten_packets.h"
#include "props/no_forwarding_loops.h"
#include "props/no_stale_rules.h"

namespace nicemc::apps {

namespace {

// Host identities used across scenarios.
constexpr std::uint64_t kMacA = 0x00aa0000000aULL;
constexpr std::uint64_t kMacB = 0x00aa0000000bULL;
constexpr std::uint32_t kIpA = 0x0a000001;  // 10.0.0.1
constexpr std::uint32_t kIpB = 0x0a000002;  // 10.0.0.2

void finish_config(Scenario& s) {
  s.config.topology = s.topology.get();
  s.config.app = s.app.get();
  s.config.symmetry_orbits = s.symmetry;
}

}  // namespace

void set_strategy(Scenario& s, mc::CheckerOptions& options,
                  mc::Strategy strategy) {
  options.strategy = strategy;
  s.config.no_delay = (strategy == mc::Strategy::kNoDelay);
}

Scenario pyswitch_ping_chain(int pings, bool canonical_tables) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  const auto sw0 = s.topology->add_switch({1, 2});
  const auto sw1 = s.topology->add_switch({1, 2});
  s.topology->add_link(sw0, 2, sw1, 2);
  const auto a = s.topology->add_host("A", kMacA, kIpA, sw0, 1);
  const auto b = s.topology->add_host("B", kMacB, kIpB, sw1, 1);

  PySwitchOptions ps_opt;
  ps_opt.microflow_grouping = true;  // pings are independent microflows
  s.app = std::make_unique<PySwitch>(ps_opt);

  hosts::HostBehavior ha;
  ha.script = hosts::l2_ping_script(s.topology->host(a),
                                    s.topology->host(b), pings,
                                    /*first_flow_id=*/1);
  // Distinguish concurrent pings by an echo id (modelled in tp_src), as
  // real pings are: this is what makes them independent flows for FLOW-IR.
  for (std::size_t i = 0; i < ha.script.size(); ++i) {
    ha.script[i].hdr.tp_src = 2000 + i;
  }
  ha.initial_burst = pings;  // concurrent pings (Table 1's knob)
  hosts::HostBehavior hb;
  hb.echo = true;
  s.config.host_behavior = {ha, hb};
  s.config.symbolic_discovery = false;
  s.config.canonical_flowtables = canonical_tables;
  finish_config(s);
  return s;
}

Scenario pyswitch_bug1(PySwitchOptions options) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  const auto sw0 = s.topology->add_switch({1, 2, 3});
  const auto a = s.topology->add_host("A", kMacA, kIpA, sw0, 1);
  const auto b = s.topology->add_host("B", kMacB, kIpB, sw0, 2);
  (void)a;
  s.topology->add_alt_location(b, sw0, 3);

  s.app = std::make_unique<PySwitch>(options);

  hosts::HostBehavior ha;
  ha.discovery_sends = true;
  ha.max_sends = 2;
  ha.initial_burst = 2;
  hosts::HostBehavior hb;
  hb.echo = true;
  hb.can_move = true;
  hb.discovery_sends = true;
  hb.max_sends = 1;
  s.config.host_behavior = {ha, hb};
  finish_config(s);
  s.properties.push_back(std::make_unique<props::NoBlackHoles>());
  return s;
}

Scenario pyswitch_bug2(PySwitchOptions options) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  const auto sw0 = s.topology->add_switch({1, 2});
  const auto a = s.topology->add_host("A", kMacA, kIpA, sw0, 1);
  const auto b = s.topology->add_host("B", kMacB, kIpB, sw0, 2);
  (void)a;
  (void)b;

  s.app = std::make_unique<PySwitch>(options);

  hosts::HostBehavior ha;
  ha.discovery_sends = true;
  ha.max_sends = 2;
  ha.initial_burst = 1;  // second ping waits for the reply (3-way shape)
  hosts::HostBehavior hb;
  hb.echo = true;
  hb.discovery_sends = true;
  hb.max_sends = 1;
  s.config.host_behavior = {ha, hb};
  finish_config(s);
  s.properties.push_back(std::make_unique<props::StrictDirectPaths>());
  return s;
}

Scenario pyswitch_bug3(PySwitchOptions options) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  const auto sw0 = s.topology->add_switch({1, 2, 3});
  const auto sw1 = s.topology->add_switch({1, 2, 3});
  const auto sw2 = s.topology->add_switch({1, 2, 3});
  s.topology->add_link(sw0, 2, sw1, 3);
  s.topology->add_link(sw1, 2, sw2, 3);
  s.topology->add_link(sw2, 2, sw0, 3);
  const auto a = s.topology->add_host("A", kMacA, kIpA, sw0, 1);
  const auto b = s.topology->add_host("B", kMacB, kIpB, sw1, 1);
  (void)a;
  (void)b;

  s.app = std::make_unique<PySwitch>(options);

  hosts::HostBehavior ha;
  ha.discovery_sends = true;
  ha.max_sends = 1;
  hosts::HostBehavior hb;
  hb.echo = true;
  s.config.host_behavior = {ha, hb};
  finish_config(s);
  s.properties.push_back(std::make_unique<props::NoForwardingLoops>());
  return s;
}

Scenario lb_scenario(const LbScenarioOptions& options) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  const auto sw0 = s.topology->add_switch({1, 2, 3});
  const std::uint32_t vip = 0x0a000064;        // 10.0.0.100
  const std::uint64_t vmac = 0x00aa00000099ULL;
  const auto client =
      s.topology->add_host("client", kMacA, kIpA, sw0, 1);
  const auto r1 =
      s.topology->add_host("replica1", 0x00aa00000011ULL, 0x0a000101, sw0, 2);
  const auto r2 =
      s.topology->add_host("replica2", 0x00aa00000012ULL, 0x0a000102, sw0, 3);

  LbOptions lb;
  lb.sw = sw0;
  lb.vip = vip;
  lb.vmac = vmac;
  lb.replicas = {
      LbReplica{r1, 2, 0x00aa00000011ULL, 0x0a000101},
      LbReplica{r2, 3, 0x00aa00000012ULL, 0x0a000102},
  };
  lb.fix_release_packet = options.fix_release_packet;
  lb.fix_install_before_delete = options.fix_install_before_delete;
  lb.fix_discard_arp = options.fix_discard_arp;
  lb.fix_check_assignments = options.fix_check_assignments;
  s.app = std::make_unique<LoadBalancer>(lb);

  hosts::HostBehavior hc;
  hosts::TcpConnectionSpec conn;
  conn.dst_ip = vip;
  conn.dst_mac = vmac;
  conn.src_port = 1024;
  conn.dst_port = 80;
  conn.data_segments = options.data_segments;
  conn.flow_id = 1;
  hc.script = hosts::tcp_connection(s.topology->host(client), conn);
  if (options.client_sends_arp) {
    auto arp = hosts::arp_request(s.topology->host(client), vip, 99);
    hc.script.insert(hc.script.begin(), arp);
  }
  hc.can_dup = options.client_can_dup_syn;
  hc.initial_burst = static_cast<int>(hc.script.size()) +
                     (options.client_can_dup_syn ? 1 : 0);

  hosts::HostBehavior hr1;
  hosts::HostBehavior hr2;
  if (options.replica_sends_arp) {
    hr1.script = {hosts::arp_request(s.topology->host(r1), kIpA, 98)};
    hr1.initial_burst = 1;
  }
  s.config.host_behavior = {hc, hr1, hr2};
  s.config.symbolic_discovery = false;  // scripted TCP clients
  s.config.extra_domain_ips = {vip};
  finish_config(s);

  if (options.check_flow_affinity) {
    s.properties.push_back(
        std::make_unique<props::FlowAffinity>(std::set<of::HostId>{r1, r2}));
  } else {
    s.properties.push_back(std::make_unique<props::NoForgottenPackets>());
  }
  return s;
}

Scenario te_scenario(const TeScenarioOptions& options) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  const auto s0 = s.topology->add_switch({1, 2, 3});     // ingress
  const auto s1 = s.topology->add_switch({1, 2, 3, 4});  // egress
  const auto s2 = s.topology->add_switch({2, 3});        // on-demand
  s.topology->add_link(s0, 2, s1, 3);
  s.topology->add_link(s0, 3, s2, 2);
  s.topology->add_link(s2, 3, s1, 4);
  const auto sender = s.topology->add_host("sender", kMacA, kIpA, s0, 1);
  const auto recv1 =
      s.topology->add_host("recv1", 0x00aa00000021ULL, 0x0a000201, s1, 1);
  const auto recv2 =
      s.topology->add_host("recv2", 0x00aa00000022ULL, 0x0a000202, s1, 2);

  TeOptions te;
  te.ingress = s0;
  te.monitored_port = 2;
  te.threshold = 500;
  te.paths[0x0a000201] = {TePath{{{s0, 2}, {s1, 1}}},
                          TePath{{{s0, 3}, {s2, 3}, {s1, 1}}}};
  te.paths[0x0a000202] = {TePath{{{s0, 2}, {s1, 2}}},
                          TePath{{{s0, 3}, {s2, 3}, {s1, 2}}}};
  te.fix_release_packet = options.fix_release_packet;
  te.fix_handle_intermediate = options.fix_handle_intermediate;
  te.fix_per_flow_table = options.fix_per_flow_table;
  te.fix_lookup_all_tables = options.fix_lookup_all_tables;
  te.react_to_port_status = options.react_to_port_status;
  auto te_app = std::make_unique<RespondTe>(te);
  const RespondTe* te_ptr = te_app.get();
  s.app = std::move(te_app);

  hosts::HostBehavior hs;
  const topo::HostSpec& sender_spec = s.topology->host(sender);
  for (int f = 0; f < options.flows; ++f) {
    hosts::TcpConnectionSpec conn;
    conn.dst_ip = f % 2 == 0 ? 0x0a000201 : 0x0a000202;
    conn.dst_mac = f % 2 == 0 ? 0x00aa00000021ULL : 0x00aa00000022ULL;
    conn.src_port = static_cast<std::uint16_t>(1024 + f);
    conn.dst_port = 80;
    conn.data_segments = 0;  // first packets only: TE routes per flow
    conn.flow_id = static_cast<std::uint32_t>(1 + f);
    for (auto& e : hosts::tcp_connection(sender_spec, conn)) {
      hs.script.push_back(e);
    }
  }
  hs.initial_burst = options.flows;
  hosts::HostBehavior hr1;
  hosts::HostBehavior hr2;
  s.config.host_behavior = {hs, hr1, hr2};
  s.config.symbolic_discovery = options.stats_rounds > 0;
  s.config.max_stats_rounds = options.stats_rounds;
  finish_config(s);
  (void)recv1;
  (void)recv2;

  if (options.check_stale_rules) {
    s.properties.push_back(std::make_unique<props::NoStaleRules>());
  } else if (options.check_routing_table) {
    s.properties.push_back(std::make_unique<props::UseCorrectRoutingTable>(
        s0, [te_ptr](const ctrl::AppState& app_state,
                     const sym::PacketFields& hdr) {
          const auto& st = static_cast<const RespondTeState&>(app_state);
          const TeTable table = te_ptr->correct_table(st, hdr);
          std::set<of::SwitchId> expected;
          const auto it = te_ptr->options().paths.find(
              static_cast<std::uint32_t>(hdr.ip_dst));
          if (it == te_ptr->options().paths.end()) return expected;
          for (const auto& [sw, port] :
               it->second[static_cast<std::size_t>(table)].hops) {
            expected.insert(sw);
          }
          return expected;
        }));
  } else {
    s.properties.push_back(std::make_unique<props::NoForgottenPackets>());
  }
  return s;
}

Scenario pyswitch_linkfail(bool react) {
  Scenario s = pyswitch_ping_chain(1);
  PySwitchOptions opt;
  opt.microflow_grouping = true;
  opt.react_to_port_status = react;
  s.app = std::make_unique<PySwitch>(opt);
  s.config.app = s.app.get();
  s.config.enable_link_faults = true;
  s.config.max_link_failures = 1;
  s.properties.push_back(std::make_unique<props::NoBlackHoles>());
  return s;
}

Scenario pyswitch_ctrlloss() {
  Scenario s = pyswitch_ping_chain(1);
  s.config.enable_ctrl_channel_faults = true;
  s.config.max_channel_losses = 1;
  s.properties.push_back(std::make_unique<props::NoBlackHoles>());
  return s;
}

Scenario pyswitch_restart() {
  Scenario s = pyswitch_ping_chain(1);
  s.config.enable_switch_restarts = true;
  s.config.max_switch_restarts = 1;
  s.properties.push_back(std::make_unique<props::NoBlackHoles>());
  return s;
}

Scenario lb_linkfail(bool react) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  const auto sw0 = s.topology->add_switch({1, 2, 3});  // front switch
  const auto sw1 = s.topology->add_switch({1, 2});     // access, replica 1
  const auto sw2 = s.topology->add_switch({1, 2});     // access, replica 2
  s.topology->add_link(sw0, 2, sw1, 2);
  s.topology->add_link(sw0, 3, sw2, 2);
  const std::uint32_t vip = 0x0a000064;        // 10.0.0.100
  const std::uint64_t vmac = 0x00aa00000099ULL;
  const auto client = s.topology->add_host("client", kMacA, kIpA, sw0, 1);
  const auto r1 =
      s.topology->add_host("replica1", 0x00aa00000011ULL, 0x0a000101, sw1, 1);
  const auto r2 =
      s.topology->add_host("replica2", 0x00aa00000012ULL, 0x0a000102, sw2, 1);

  LbOptions lb;
  lb.sw = sw0;
  lb.vip = vip;
  lb.vmac = vmac;
  lb.replicas = {
      LbReplica{r1, 2, 0x00aa00000011ULL, 0x0a000101},  // via uplink sw0:2
      LbReplica{r2, 3, 0x00aa00000012ULL, 0x0a000102},  // via uplink sw0:3
  };
  lb.fix_release_packet = true;
  lb.fix_install_before_delete = true;
  lb.fix_discard_arp = true;
  lb.fix_check_assignments = true;
  lb.access_switches = {{sw1, 1}, {sw2, 1}};
  lb.react_to_port_status = react;
  lb.enable_reconfig = false;  // keep failure interleavings in focus
  s.app = std::make_unique<LoadBalancer>(lb);

  hosts::HostBehavior hc;
  hosts::TcpConnectionSpec conn;
  conn.dst_ip = vip;
  conn.dst_mac = vmac;
  conn.src_port = 1024;
  conn.dst_port = 80;
  conn.data_segments = 1;
  conn.flow_id = 1;
  hc.script = hosts::tcp_connection(s.topology->host(client), conn);
  hc.initial_burst = static_cast<int>(hc.script.size());
  hosts::HostBehavior hr1;
  hosts::HostBehavior hr2;
  s.config.host_behavior = {hc, hr1, hr2};
  s.config.symbolic_discovery = false;
  s.config.extra_domain_ips = {vip};
  s.config.enable_link_faults = true;
  s.config.enable_link_repair = false;  // quiescent states keep the failure
  s.config.max_link_failures = 1;
  finish_config(s);
  s.properties.push_back(std::make_unique<props::NoStaleRules>());
  return s;
}

Scenario te_linkfail(bool react) {
  TeScenarioOptions o;
  o.fix_release_packet = true;
  o.fix_handle_intermediate = true;
  o.react_to_port_status = react;
  o.check_stale_rules = true;
  Scenario s = te_scenario(o);
  s.config.enable_link_faults = true;
  s.config.enable_link_repair = false;  // quiescent states keep the failure
  s.config.max_link_failures = 1;
  return s;
}

Scenario sym_ping_scenario(int clients) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  std::vector<of::PortId> ports;
  for (int p = 1; p <= clients + 1; ++p) {
    ports.push_back(static_cast<of::PortId>(p));
  }
  const auto sw0 = s.topology->add_switch(ports);
  const std::uint64_t server_mac = 0x00aa00000001ULL;
  const std::uint32_t server_ip = 0x0a0000fe;  // 10.0.0.254
  std::vector<of::HostId> orbit;
  for (int j = 0; j < clients; ++j) {
    // Identical clients modulo their own MAC/IP/flow id: same switch,
    // same script shape, same tp fields.
    const auto c = s.topology->add_host(
        "c" + std::to_string(j), 0x00aa00000030ULL + static_cast<std::uint64_t>(j),
        0x0a000001 + static_cast<std::uint32_t>(j), sw0,
        static_cast<of::PortId>(1 + j));
    orbit.push_back(c);
  }
  const auto server = s.topology->add_host(
      "server", server_mac, server_ip, sw0,
      static_cast<of::PortId>(clients + 1));

  PySwitchOptions ps_opt;
  ps_opt.microflow_grouping = true;
  s.app = std::make_unique<PySwitch>(ps_opt);

  for (int j = 0; j < clients; ++j) {
    hosts::HostBehavior hc;
    hc.script = hosts::l2_ping_script(
        s.topology->host(orbit[static_cast<std::size_t>(j)]),
        s.topology->host(server), /*count=*/1,
        /*first_flow_id=*/static_cast<std::uint32_t>(1 + j));
    hc.initial_burst = 1;
    s.config.host_behavior.push_back(hc);
  }
  hosts::HostBehavior hsrv;
  hsrv.echo = true;
  s.config.host_behavior.push_back(hsrv);
  s.config.symbolic_discovery = false;
  s.symmetry = {orbit};
  finish_config(s);
  s.properties.push_back(std::make_unique<props::DirectPaths>());
  s.properties.push_back(std::make_unique<props::NoBlackHoles>());
  return s;
}

Scenario lb_sym_scenario(int clients, bool fixed) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  std::vector<of::PortId> ports;
  for (int p = 1; p <= clients + 2; ++p) {
    ports.push_back(static_cast<of::PortId>(p));
  }
  const auto sw0 = s.topology->add_switch(ports);
  const std::uint32_t vip = 0x0a000064;        // 10.0.0.100
  const std::uint64_t vmac = 0x00aa00000099ULL;
  std::vector<of::HostId> orbit;
  for (int j = 0; j < clients; ++j) {
    // Client IPs all share the (ip >> 31) & 1 bucket the balancer hashes
    // on, so every client deterministically maps to the same replica and
    // the clients stay genuinely interchangeable.
    const auto c = s.topology->add_host(
        "c" + std::to_string(j), 0x00aa00000030ULL + static_cast<std::uint64_t>(j),
        0x0a000001 + static_cast<std::uint32_t>(j), sw0,
        static_cast<of::PortId>(1 + j));
    orbit.push_back(c);
  }
  const auto r1 = s.topology->add_host("replica1", 0x00aa00000011ULL,
                                       0x0a000101, sw0,
                                       static_cast<of::PortId>(clients + 1));
  const auto r2 = s.topology->add_host("replica2", 0x00aa00000012ULL,
                                       0x0a000102, sw0,
                                       static_cast<of::PortId>(clients + 2));

  LbOptions lb;
  lb.sw = sw0;
  lb.vip = vip;
  lb.vmac = vmac;
  lb.replicas = {
      LbReplica{r1, static_cast<of::PortId>(clients + 1), 0x00aa00000011ULL,
                0x0a000101},
      LbReplica{r2, static_cast<of::PortId>(clients + 2), 0x00aa00000012ULL,
                0x0a000102},
  };
  lb.fix_release_packet = fixed;
  lb.fix_install_before_delete = fixed;
  lb.fix_discard_arp = fixed;
  lb.fix_check_assignments = fixed;
  s.app = std::make_unique<LoadBalancer>(lb);

  for (int j = 0; j < clients; ++j) {
    hosts::HostBehavior hc;
    hosts::TcpConnectionSpec conn;
    conn.dst_ip = vip;
    conn.dst_mac = vmac;
    conn.src_port = 1024;  // clients are told apart by IP, not src port
    conn.dst_port = 80;
    conn.data_segments = 0;  // SYN only: rule install is the interesting part
    conn.flow_id = static_cast<std::uint32_t>(1 + j);
    hc.script = hosts::tcp_connection(
        s.topology->host(orbit[static_cast<std::size_t>(j)]), conn);
    hc.initial_burst = static_cast<int>(hc.script.size());
    s.config.host_behavior.push_back(hc);
  }
  s.config.host_behavior.push_back({});  // replica 1
  s.config.host_behavior.push_back({});  // replica 2
  s.config.symbolic_discovery = false;
  s.config.extra_domain_ips = {vip};
  s.symmetry = {orbit};
  finish_config(s);
  s.properties.push_back(std::make_unique<props::NoForgottenPackets>());
  return s;
}

Scenario te_sym_scenario(int clients) {
  Scenario s;
  s.topology = std::make_unique<topo::Topology>();
  std::vector<of::PortId> ingress_ports;
  for (int p = 1; p <= clients + 2; ++p) {
    ingress_ports.push_back(static_cast<of::PortId>(p));
  }
  const auto s0 = s.topology->add_switch(ingress_ports);     // ingress
  const auto s1 = s.topology->add_switch({1, 2, 3});         // egress
  const auto s2 = s.topology->add_switch({2, 3});            // on-demand
  const auto up1 = static_cast<of::PortId>(clients + 1);
  const auto up2 = static_cast<of::PortId>(clients + 2);
  s.topology->add_link(s0, up1, s1, 2);
  s.topology->add_link(s0, up2, s2, 2);
  s.topology->add_link(s2, 3, s1, 3);
  std::vector<of::HostId> orbit;
  for (int j = 0; j < clients; ++j) {
    const auto c = s.topology->add_host(
        "sender" + std::to_string(j),
        0x00aa00000030ULL + static_cast<std::uint64_t>(j),
        0x0a000001 + static_cast<std::uint32_t>(j), s0,
        static_cast<of::PortId>(1 + j));
    orbit.push_back(c);
  }
  const auto recv =
      s.topology->add_host("recv", 0x00aa00000021ULL, 0x0a000201, s1, 1);
  (void)recv;

  TeOptions te;
  te.ingress = s0;
  te.monitored_port = up1;
  te.threshold = 500;
  te.paths[0x0a000201] = {TePath{{{s0, up1}, {s1, 1}}},
                          TePath{{{s0, up2}, {s2, 3}, {s1, 1}}}};
  te.fix_release_packet = true;
  te.fix_handle_intermediate = true;
  s.app = std::make_unique<RespondTe>(te);

  for (int j = 0; j < clients; ++j) {
    hosts::HostBehavior hc;
    hosts::TcpConnectionSpec conn;
    conn.dst_ip = 0x0a000201;
    conn.dst_mac = 0x00aa00000021ULL;
    conn.src_port = 1024;
    conn.dst_port = 80;
    conn.data_segments = 0;  // first packets only: TE routes per flow
    conn.flow_id = static_cast<std::uint32_t>(1 + j);
    hc.script = hosts::tcp_connection(
        s.topology->host(orbit[static_cast<std::size_t>(j)]), conn);
    hc.initial_burst = 1;
    s.config.host_behavior.push_back(hc);
  }
  s.config.host_behavior.push_back({});  // receiver
  s.config.symbolic_discovery = false;
  s.symmetry = {orbit};
  finish_config(s);
  s.properties.push_back(std::make_unique<props::NoForgottenPackets>());
  return s;
}

std::vector<NamedScenario> bundled_scenarios() {
  std::vector<NamedScenario> out;
  out.push_back({"pyswitch-ping1", [] { return pyswitch_ping_chain(1); }});
  out.push_back({"pyswitch-ping2", [] { return pyswitch_ping_chain(2); }});
  // NO-SWITCH-REDUCTION baseline: copy ids and raw rule order split
  // states, so almost nothing commutes — exercises the conservative end.
  out.push_back({"pyswitch-ping2-raw",
                 [] { return pyswitch_ping_chain(2, false); }});
  out.push_back({"pyswitch-bug1", [] { return pyswitch_bug1(); }});
  out.push_back({"pyswitch-bug2", [] { return pyswitch_bug2(); }});
  out.push_back({"pyswitch-bug3", [] { return pyswitch_bug3(); }});
  out.push_back({"lb-fixed", [] {
                   LbScenarioOptions o;
                   o.fix_release_packet = true;
                   o.fix_install_before_delete = true;
                   o.fix_discard_arp = true;
                   o.fix_check_assignments = true;
                   o.client_sends_arp = true;
                   return lb_scenario(o);
                 }});
  out.push_back({"lb-bugs", [] { return lb_scenario({}); }});
  out.push_back({"lb-affinity", [] {
                   LbScenarioOptions o;
                   o.fix_release_packet = true;
                   o.fix_install_before_delete = true;
                   o.client_can_dup_syn = true;
                   o.data_segments = 2;
                   o.check_flow_affinity = true;
                   return lb_scenario(o);
                 }});
  out.push_back({"te", [] { return te_scenario({}); }});
  out.push_back({"te-routing", [] {
                   TeScenarioOptions o;
                   o.fix_release_packet = true;
                   o.fix_handle_intermediate = true;
                   o.stats_rounds = 1;
                   o.check_routing_table = true;
                   return te_scenario(o);
                 }});
  // Bounded fault-injection presets: link failures, controller-channel
  // loss and switch restarts as first-class transitions.
  out.push_back({"pyswitch-linkfail", [] { return pyswitch_linkfail(false); }});
  out.push_back(
      {"pyswitch-linkfail-react", [] { return pyswitch_linkfail(true); }});
  out.push_back({"pyswitch-ctrlloss", [] { return pyswitch_ctrlloss(); }});
  out.push_back({"pyswitch-restart", [] { return pyswitch_restart(); }});
  out.push_back({"lb-linkfail", [] { return lb_linkfail(false); }});
  out.push_back({"lb-linkfail-react", [] { return lb_linkfail(true); }});
  out.push_back({"te-linkfail", [] { return te_linkfail(false); }});
  out.push_back({"te-linkfail-react", [] { return te_linkfail(true); }});
  // Symmetric multi-client families (appended — tests index the entries
  // above positionally). Small instances only; the benchmarks scale the
  // same factories to 10+ clients.
  out.push_back({"sym-ping3", [] { return sym_ping_scenario(3); }});
  out.push_back({"lb-sym4", [] { return lb_sym_scenario(4); }});
  out.push_back({"te-sym2", [] { return te_sym_scenario(2); }});
  return out;
}

}  // namespace nicemc::apps
