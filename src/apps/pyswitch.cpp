#include "apps/pyswitch.h"

#include <algorithm>
#include <tuple>

namespace nicemc::apps {

void PySwitch::switch_join(ctrl::AppState& state, ctrl::Ctx& ctx,
                           of::SwitchId sw) const {
  (void)ctx;
  auto& st = static_cast<PySwitchState&>(state);
  st.mactable.try_emplace(sw);  // Figure 3 lines 17-19
}

void PySwitch::switch_leave(ctrl::AppState& state, ctrl::Ctx& ctx,
                            of::SwitchId sw) const {
  (void)ctx;
  auto& st = static_cast<PySwitchState&>(state);
  st.mactable.erase(sw);  // Figure 3 lines 20-22
}

void PySwitch::handle_port_status(ctrl::AppState& state, ctrl::Ctx& ctx,
                                  of::SwitchId sw, of::PortId port,
                                  bool up) const {
  (void)ctx;
  if (!options_.react_to_port_status || up) return;
  auto& st = static_cast<PySwitchState&>(state);
  const auto it = st.mactable.find(sw);
  if (it == st.mactable.end()) return;
  // Flush MACs learned behind the failed port: their location is now
  // unreachable, so the next packet to them floods and re-learns.
  std::vector<std::uint64_t> dead;
  for (const auto& [mac, learned_port] : it->second.raw()) {
    if (learned_port == std::uint64_t{port}) dead.push_back(mac);
  }
  for (std::uint64_t mac : dead) it->second.erase(mac);
}

bool PySwitch::is_same_flow(const sym::PacketFields& a,
                            const sym::PacketFields& b) const {
  if (!options_.microflow_grouping) return ctrl::App::is_same_flow(a, b);
  // Direction-insensitive microflow identity: an exchange and its reply
  // belong to the same group; distinct exchanges are independent.
  auto key = [](const sym::PacketFields& f) {
    return std::tuple{std::min(f.ip_src, f.ip_dst),
                      std::max(f.ip_src, f.ip_dst),
                      std::min(f.tp_src, f.tp_dst),
                      std::max(f.tp_src, f.tp_dst), f.ip_proto};
  };
  return key(a) == key(b);
}

void PySwitch::packet_in(ctrl::AppState& state, ctrl::Ctx& ctx,
                         of::SwitchId sw, of::PortId in_port,
                         const sym::SymPacket& pkt, std::uint32_t buffer_id,
                         of::PacketIn::Reason reason) const {
  (void)reason;
  auto& st = static_cast<PySwitchState&>(state);
  ctrl::SymTable& mactable = st.mactable[sw];

  // Figure 3 lines 4-7. The multicast-bit tests and the dictionary probes
  // below branch on concolic values: under discovery they carve the packet
  // space into the handler's equivalence classes.
  if (!pkt.src_is_multicast()) {
    mactable.put(pkt.eth_src.concrete(), in_port);
  }
  if (!pkt.dst_is_multicast() && mactable.contains(pkt.eth_dst)) {
    const of::PortId outport =
        static_cast<of::PortId>(mactable.at(pkt.eth_dst));
    if (outport != in_port) {  // Figure 3 line 10
      // Figure 3 lines 11-14: install the forwarding rule for this
      // (src, dst, type, in_port) microflow and release the packet.
      sym::PacketFields hdr;
      hdr.eth_src = pkt.eth_src.concrete();
      hdr.eth_dst = pkt.eth_dst.concrete();
      hdr.eth_type = pkt.eth_type.concrete();
      of::Rule rule;
      rule.match = of::Match::l2_exact(in_port, hdr);
      rule.actions = {of::Action::output(outport)};
      rule.idle_timeout = options_.idle_timeout;  // soft_timer=5
      rule.hard_timeout =
          options_.fix_hard_timeout ? options_.hard_timeout : of::kPermanent;

      of::Rule reverse;  // for the BUG-II fixes
      sym::PacketFields rev_hdr = hdr;
      std::swap(rev_hdr.eth_src, rev_hdr.eth_dst);
      reverse.match = of::Match::l2_exact(outport, rev_hdr);
      reverse.actions = {of::Action::output(in_port)};
      reverse.idle_timeout = options_.idle_timeout;
      reverse.hard_timeout = rule.hard_timeout;

      if (options_.bug2 == PySwitchOptions::Bug2Fix::kCorrect) {
        // Correct fix: the reverse-direction rule must be in place before
        // the released packet can trigger reply traffic.
        ctx.install_rule(sw, reverse);
      }
      ctx.install_rule(sw, rule);
      ctx.send_packet_out(sw, buffer_id, {of::Action::output(outport)});
      if (options_.bug2 == PySwitchOptions::Bug2Fix::kNaive) {
        // Naive fix: reverse rule installed after the packet_out — the
        // reply can still race ahead of it (Section 8.1).
        ctx.install_rule(sw, reverse);
      }
      return;
    }
  }
  ctx.flood_packet(sw, buffer_id);  // Figure 3 line 16
}

}  // namespace nicemc::apps
