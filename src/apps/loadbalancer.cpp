#include "apps/loadbalancer.h"

#include <cassert>

namespace nicemc::apps {

namespace {

constexpr std::uint16_t kWildcardPriority = 100;
constexpr std::uint16_t kInspectPriority = 90;  // below the wildcards
constexpr std::uint16_t kMicroflowPriority = 200;

}  // namespace

void LoadBalancerState::serialize(util::Ser& s) const {
  s.put_tag('L');
  s.put_u8(policy);
  s.put_bool(in_transition);
  s.put_bool(reconfigured);
  s.put_u32(static_cast<std::uint32_t>(assignments.size()));
  const util::Renamer* rn = util::Renamer::active();
  auto emit = [&s](const of::FiveTuple& t, std::uint8_t r) {
    s.put_u64(t.ip_src);
    s.put_u64(t.ip_dst);
    s.put_u64(t.ip_proto);
    s.put_u64(t.tp_src);
    s.put_u64(t.tp_dst);
    s.put_u8(r);
  };
  if (rn == nullptr) {
    for (const auto& [t, r] : assignments) emit(t, r);
  } else {
    // Client IPs rename; re-sort so the canonical form is key-ordered.
    std::map<of::FiveTuple, std::uint8_t> renamed;
    for (const auto& [t, r] : assignments) {
      of::FiveTuple rt = t;
      rt.ip_src = rn->r_ip(t.ip_src);
      rt.ip_dst = rn->r_ip(t.ip_dst);
      renamed.emplace(rt, r);
    }
    for (const auto& [t, r] : renamed) emit(t, r);
  }
}

of::Match LoadBalancer::wildcard_match(bool high_half) const {
  of::Match m;
  m.fields = of::MatchField::kEthType | of::MatchField::kIpDst |
             of::MatchField::kIpSrc | of::MatchField::kIpProto;
  m.eth_type = of::kEthTypeIpv4;
  m.ip_dst = options_.vip;
  m.ip_dst_plen = 32;
  m.ip_src = high_half ? 0x80000000ULL : 0;
  m.ip_src_plen = 1;
  m.ip_proto = of::kIpProtoTcp;
  return m;
}

void LoadBalancer::switch_join(ctrl::AppState& state, ctrl::Ctx& ctx,
                               of::SwitchId sw) const {
  if (const auto acc = options_.access_switches.find(sw);
      acc != options_.access_switches.end()) {
    // Access switch fronting one replica: everything that arrives (i.e.
    // traffic steered over the uplink) goes to the server port.
    of::Rule r;
    r.match = of::Match::any();
    r.priority = kWildcardPriority;
    r.actions = {of::Action::output(acc->second)};
    ctx.install_rule(sw, r);
    return;
  }
  if (sw != options_.sw) return;
  const auto& st = static_cast<LoadBalancerState&>(state);
  assert(options_.replicas.size() == 2);
  for (bool high : {false, true}) {
    const std::uint8_t replica =
        replica_for(st.policy, high ? 0x80000000ULL : 0);
    of::Rule r;
    r.match = wildcard_match(high);
    r.priority = kWildcardPriority;
    r.actions = {of::Action::output(options_.replicas[replica].port)};
    ctx.install_rule(sw, r);
  }
}

std::vector<std::string> LoadBalancer::external_events(
    const ctrl::AppState& state) const {
  if (!options_.enable_reconfig) return {};
  const auto& st = static_cast<const LoadBalancerState&>(state);
  if (st.reconfigured) return {};
  return {"reconfig"};
}

void LoadBalancer::handle_port_status(ctrl::AppState& state, ctrl::Ctx& ctx,
                                      of::SwitchId sw, of::PortId port,
                                      bool up) const {
  if (!options_.react_to_port_status || up || sw != options_.sw) return;
  auto& st = static_cast<LoadBalancerState&>(state);

  // Is the failed port one of the replica uplinks?
  std::size_t dead = options_.replicas.size();
  for (std::size_t i = 0; i < options_.replicas.size(); ++i) {
    if (options_.replicas[i].port == port) dead = i;
  }
  if (dead >= options_.replicas.size()) return;
  const std::uint8_t survivor = static_cast<std::uint8_t>(1 - dead);
  const of::PortId out = options_.replicas[survivor].port;

  // Re-steer the wildcard halves that forward to the dead replica. A
  // FlowMod add replaces an existing rule with the same match and priority
  // in place, so a single install swaps the action atomically — a
  // delete-then-install pair would reopen the BUG-V window where packets
  // miss every wildcard mid-repair. After the policy transition the
  // wildcards are inspect rules (every flow goes through packet_in), so
  // there is nothing to re-steer at this level.
  if (!st.reconfigured) {
    for (bool high : {false, true}) {
      if (replica_for(st.policy, high ? 0x80000000ULL : 0) !=
          static_cast<std::uint8_t>(dead)) {
        continue;
      }
      of::Rule r;
      r.match = wildcard_match(high);
      r.priority = kWildcardPriority;
      r.actions = {of::Action::output(out)};
      ctx.install_rule(options_.sw, r);
    }
  }

  // Established connections pinned to the dead replica move over too:
  // replace their microflow rules and update the assignment map.
  for (auto& [conn, replica] : st.assignments) {
    if (replica != static_cast<std::uint8_t>(dead)) continue;
    replica = survivor;
    sym::PacketFields hdr;
    hdr.ip_src = conn.ip_src;
    hdr.ip_dst = conn.ip_dst;
    hdr.ip_proto = conn.ip_proto;
    hdr.tp_src = conn.tp_src;
    hdr.tp_dst = conn.tp_dst;
    of::Rule micro;
    micro.match = of::Match::five_tuple(hdr);
    micro.priority = kMicroflowPriority;
    micro.actions = {of::Action::output(out)};
    ctx.install_rule(options_.sw, micro);  // in-place action swap (see above)
  }
}

void LoadBalancer::on_external(ctrl::AppState& state, ctrl::Ctx& ctx,
                               std::size_t event_index) const {
  (void)event_index;
  auto& st = static_cast<LoadBalancerState&>(state);
  assert(!st.reconfigured);
  st.reconfigured = true;
  st.in_transition = true;
  st.policy = 1;

  // Replace the wildcard forwarding rules with send-to-controller rules so
  // the controller can inspect the next packet of each flow.
  for (bool high : {false, true}) {
    of::Rule inspect;
    inspect.match = wildcard_match(high);
    inspect.actions = {of::Action::controller()};

    of::Rule old;
    old.match = wildcard_match(high);
    old.priority = kWildcardPriority;

    if (options_.fix_install_before_delete) {
      // BUG-V fix: the inspect rule (lower priority) goes in first; there
      // is never a moment where no rule matches.
      inspect.priority = kInspectPriority;
      ctx.install_rule(options_.sw, inspect);
      ctx.delete_rule(options_.sw, old.match, kWildcardPriority);
    } else {
      // BUG-V: delete-then-install leaves a window in which packets miss
      // every rule and reach the controller with reason NO_MATCH.
      inspect.priority = kWildcardPriority;
      ctx.delete_rule(options_.sw, old.match, kWildcardPriority);
      ctx.install_rule(options_.sw, inspect);
    }
  }
}

bool LoadBalancer::is_same_flow(const sym::PacketFields& a,
                                const sym::PacketFields& b) const {
  // The app's own logic treats any SYN as the first packet of a new flow;
  // the FLOW-IR grouping the paper used mirrors that — so a duplicate SYN
  // lands in its own group and its orderings are pruned (missing BUG-VII).
  if ((a.tcp_flags & of::kTcpSyn) != 0 || (b.tcp_flags & of::kTcpSyn) != 0) {
    return false;
  }
  return of::FiveTuple::of_packet(a) == of::FiveTuple::of_packet(b);
}

void LoadBalancer::packet_in(ctrl::AppState& state, ctrl::Ctx& ctx,
                             of::SwitchId sw, of::PortId in_port,
                             const sym::SymPacket& pkt,
                             std::uint32_t buffer_id,
                             of::PacketIn::Reason reason) const {
  auto& st = static_cast<LoadBalancerState&>(state);
  if (sw != options_.sw) return;

  // --- ARP proxy (the controller answers for the VIP and the replicas) ---
  if (pkt.eth_type == of::kEthTypeArp) {
    of::Packet reply;
    reply.hdr.eth_src = options_.vmac;
    reply.hdr.eth_dst = pkt.eth_src.concrete();
    reply.hdr.eth_type = of::kEthTypeArp;
    reply.hdr.ip_src = pkt.ip_dst.concrete();
    reply.hdr.ip_dst = pkt.ip_src.concrete();
    ctx.send_packet_out_full(sw, reply, /*in_port=*/0,
                             {of::Action::output(in_port)});
    if (options_.fix_discard_arp) {
      // BUG-VI fix: release the buffered request with no actions.
      ctx.send_packet_out(sw, buffer_id, {});
    }
    return;
  }

  // Only TCP traffic addressed to the virtual IP is load-balanced.
  if (!(pkt.eth_type == of::kEthTypeIpv4)) return;
  if (!(pkt.ip_proto == of::kIpProtoTcp)) return;
  if (!(pkt.ip_dst == std::uint64_t{options_.vip})) return;

  // BUG-V: mid-transition packets that miss every rule arrive with reason
  // NO_MATCH; "as written, the handler ignores such (unexpected) packets".
  if (reason == of::PacketIn::Reason::kNoMatch &&
      !options_.fix_install_before_delete) {
    return;
  }

  const of::FiveTuple conn{pkt.ip_src.concrete(), pkt.ip_dst.concrete(),
                           pkt.ip_proto.concrete(), pkt.tp_src.concrete(),
                           pkt.tp_dst.concrete()};

  std::uint8_t replica;
  const auto known = st.assignments.find(conn);
  if (options_.fix_check_assignments && known != st.assignments.end()) {
    // BUG-VII fix: an established connection keeps its replica, duplicate
    // SYN or not.
    replica = known->second;
  } else if ((pkt.tcp_flags & std::uint64_t{of::kTcpSyn}) != std::uint64_t{0}) {
    // SYN ⇒ (assumed) new flow: follow the *new* policy. A retransmitted
    // SYN of an established connection takes this path too — BUG-VII.
    replica = replica_for(st.policy, pkt.ip_src.concrete());
  } else {
    // Ongoing transfer: stay with the old policy's replica.
    replica = known != st.assignments.end()
                  ? known->second
                  : replica_for(static_cast<std::uint8_t>(st.policy == 0),
                                pkt.ip_src.concrete());
  }
  st.assignments[conn] = replica;

  sym::PacketFields hdr;
  hdr.ip_src = conn.ip_src;
  hdr.ip_dst = conn.ip_dst;
  hdr.ip_proto = conn.ip_proto;
  hdr.tp_src = conn.tp_src;
  hdr.tp_dst = conn.tp_dst;
  of::Rule micro;
  micro.match = of::Match::five_tuple(hdr);
  micro.priority = kMicroflowPriority;
  micro.actions = {of::Action::output(options_.replicas[replica].port)};
  ctx.install_rule(sw, micro);

  if (options_.fix_release_packet) {
    // BUG-IV fix: tell the switch what to do with the trigger packet.
    ctx.send_packet_out(sw, buffer_id,
                        {of::Action::output(options_.replicas[replica].port)});
  }
}

}  // namespace nicemc::apps
