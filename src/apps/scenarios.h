// Ready-made experiment scenarios: the exact topologies, host models,
// application configurations and properties used by the paper's evaluation
// (Sections 7 and 8). Tests, examples and benchmarks all build on these.
#ifndef NICE_APPS_SCENARIOS_H
#define NICE_APPS_SCENARIOS_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/loadbalancer.h"
#include "apps/pyswitch.h"
#include "apps/respond_te.h"
#include "ctrl/app.h"
#include "mc/checker.h"
#include "mc/property.h"
#include "mc/strategy.h"
#include "mc/system.h"
#include "topo/topology.h"

namespace nicemc::apps {

/// A self-contained, movable bundle: topology + app + model configuration +
/// properties. `config` holds pointers into the heap-allocated topology and
/// app, so moving the Scenario is safe.
struct Scenario {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<ctrl::App> app;
  mc::SystemConfig config;
  mc::PropertyList properties;
  /// Interchangeable-host orbits (host indices), e.g. {{0,1,2}} for three
  /// identical clients. Copied into config.symmetry_orbits by the scenario
  /// factories; acted on only when CheckerOptions::symmetry is set, and
  /// validated then by mc::SymContext.
  std::vector<std::vector<of::HostId>> symmetry;
};

/// Apply a search strategy to a scenario + checker options pair (NO-DELAY
/// changes execution semantics, the others filter transitions).
void set_strategy(Scenario& s, mc::CheckerOptions& options,
                  mc::Strategy strategy);

// --- Section 7 (performance evaluation) ---

/// Figure 1 topology: host A — SW0 — SW1 — host B, pyswitch controller.
/// A sends `pings` concurrent layer-2 pings, B echoes. Scripted sends,
/// symbolic execution off — the Table 1 / Figure 6 workload.
/// `canonical_tables = false` gives the NO-SWITCH-REDUCTION baseline.
Scenario pyswitch_ping_chain(int pings, bool canonical_tables = true);

// --- Section 8.1: pyswitch bugs ---

/// BUG-I: A streams to mobile host B on one switch; B moves; the learned
/// rule keeps forwarding to the old port. Property: NoBlackHoles.
Scenario pyswitch_bug1(PySwitchOptions options = {});

/// BUG-II: one switch, A and B; only the sender→destination rule is
/// installed. Property: StrictDirectPaths.
Scenario pyswitch_bug2(PySwitchOptions options = {});

/// BUG-III: 3-switch cycle; flooding loops. Property: NoForwardingLoops.
Scenario pyswitch_bug3(PySwitchOptions options = {});

// --- Section 8.2: load balancer bugs ---

struct LbScenarioOptions {
  bool fix_release_packet{false};         // BUG-IV fixed
  bool fix_install_before_delete{false};  // BUG-V fixed
  bool fix_discard_arp{false};            // BUG-VI fixed
  bool fix_check_assignments{false};      // BUG-VII fixed
  bool client_sends_arp{false};           // include an ARP request (BUG-VI)
  bool replica_sends_arp{false};          // server-generated ARP (BUG-VI)
  bool client_can_dup_syn{false};         // duplicate SYN (BUG-VII)
  int data_segments{1};
  bool check_flow_affinity{false};        // property set for BUG-VII
};

/// One switch, one client, two replicas behind a virtual IP.
Scenario lb_scenario(const LbScenarioOptions& options);

// --- Section 8.3: traffic-engineering bugs ---

struct TeScenarioOptions {
  bool fix_release_packet{false};       // BUG-VIII fixed
  bool fix_handle_intermediate{false};  // BUG-IX fixed
  bool fix_per_flow_table{false};       // BUG-X fixed
  bool fix_lookup_all_tables{false};    // BUG-XI fixed
  bool react_to_port_status{false};     // route around failed links
  std::uint32_t stats_rounds{0};        // port-stats query budget
  bool check_routing_table{false};      // property set for BUG-X
  bool check_stale_rules{false};        // property set for link failures
  int flows{1};                         // concurrent flows from the sender
};

/// Triangle topology: ingress S0 (sender), egress S1 (two receivers),
/// on-demand switch S2.
Scenario te_scenario(const TeScenarioOptions& options);

// --- Fault-injection scenarios (bounded environment faults) ---

/// Figure 1 ping chain under a bounded link failure (budget 1, repair
/// enabled). Property: NoBlackHoles — violated *only* when the fault
/// fires (a flooded/forwarded copy dies at the failed port), which makes
/// this the fault-only-violation regression scenario. `react` turns on
/// the MAC-flush port-status reaction (same property; exercises the
/// OFPT_PORT_STATUS dispatch path).
Scenario pyswitch_linkfail(bool react = false);

/// Ping chain under bounded controller-channel loss (budget 1).
/// NoBlackHoles holds across the disconnect and the handshake replay.
Scenario pyswitch_ctrlloss();

/// Ping chain under a bounded switch restart (budget 1). NoBlackHoles
/// holds across the wipe: buffered packets count as consumed, and the
/// rejoin handshake restores the controller's view.
Scenario pyswitch_restart();

/// Load balancer with the replicas behind two access switches, each on
/// its own front-switch uplink, under a bounded link failure with repair
/// off. Property: NoStaleRules — holds iff the app re-steers the wildcard
/// rules on OFPT_PORT_STATUS (`react`).
Scenario lb_linkfail(bool react);

/// TE triangle under a bounded link failure with repair off. Property:
/// NoStaleRules — holds iff the app re-routes established flows and
/// routes new ones around the failure (`react`).
Scenario te_linkfail(bool react);

// --- Symmetric multi-client families (the "millions of users" lever) ---

/// Single pyswitch switch, `clients` identical hosts (ports 1..k) each
/// pinging one echo server (port k+1) with identical scripts modulo
/// their own MAC/IP/flow id. Declares all clients as one symmetry orbit:
/// with CheckerOptions::symmetry the search merges the k! role
/// permutations. Property: DirectPaths.
Scenario sym_ping_scenario(int clients);

/// Load balancer with `clients` identical clients behind the virtual IP
/// (all client IPs share the `(ip >> 31) & 1` bucket, so every client maps
/// to the same replica set deterministically). One symmetry orbit over the
/// clients. `fixed = false` leaves the Section 8.2 bugs live, so the
/// scenario violates NoForgottenPackets — the differential tests use it to
/// compare violation *sets* between symmetry on and off.
Scenario lb_sym_scenario(int clients, bool fixed = true);

/// TE triangle with `clients` identical senders on the ingress switch,
/// one flow each to the first receiver. One symmetry orbit over the
/// senders. Property: NoBlackHoles.
Scenario te_sym_scenario(int clients);

// --- Bundled scenario registry ---

/// A named, repeatably-constructible experiment preset. The factory
/// returns a fresh Scenario each call (Scenario owns its topology/app, so
/// sweeps that run one scenario several times rebuild it per run).
struct NamedScenario {
  std::string name;
  std::function<Scenario()> make;
};

/// Every bundled experiment preset across the paper's evaluation:
/// pyswitch ping chains (canonical + raw-table baseline), BUG-I–III, the
/// load balancer presets (all-fixed, all-bugs-live, BUG-VII flow
/// affinity), and the traffic-engineering presets (BUG-VIII,
/// BUG-X routing table). This is the sweep surface of the reduction
/// differential test (tests/mc/test_por.cpp) and scripts/bench_por.sh.
std::vector<NamedScenario> bundled_scenarios();

}  // namespace nicemc::apps

#endif  // NICE_APPS_SCENARIOS_H
