// Wildcard-rule web server load balancer, after Wang et al. [9] as tested
// in paper Section 8.2.
//
// One switch fronts a virtual IP. Client-IP space is split by the top
// address bit into two wildcard rules that forward directly to a replica.
// A policy change swaps the mapping: existing wildcard rules are replaced
// by send-to-controller rules so the controller can inspect the "next"
// packet of every flow — ongoing transfers keep their old replica (via an
// exact-match microflow rule), new flows follow the new policy.
//
// Bugs (each on by default, fixable via options):
//   BUG-IV  the handler installs the microflow rule but never releases the
//           buffered trigger packet (fix_release_packet).
//   BUG-V   reconfiguration deletes the old wildcard rules *before*
//           installing the controller rules; packets slipping through the
//           window arrive with reason NO_MATCH, which the handler ignores
//           (fix_install_before_delete reverses the steps, at lower
//           priority).
//   BUG-VI  ARP requests (from clients or replicas) are answered by the
//           controller, but the buffered request is never discarded
//           (fix_discard_arp).
//   BUG-VII during a policy transition a duplicate SYN makes the handler
//           treat an established connection as new, splitting it across
//           replicas (fix_check_assignments consults the microflow
//           assignment map first).
#ifndef NICE_APPS_LOADBALANCER_H
#define NICE_APPS_LOADBALANCER_H

#include <map>
#include <vector>

#include "ctrl/app.h"

namespace nicemc::apps {

struct LbReplica {
  of::HostId host{0};
  of::PortId port{0};  // switch port the replica hangs off
  std::uint64_t mac{0};
  std::uint32_t ip{0};
};

struct LbOptions {
  of::SwitchId sw{0};
  std::uint32_t vip{0};
  std::uint64_t vmac{0};
  std::uint16_t service_port{80};
  std::vector<LbReplica> replicas;  // exactly two

  bool fix_release_packet{false};        // BUG-IV
  bool fix_install_before_delete{false};  // BUG-V
  bool fix_discard_arp{false};           // BUG-VI
  bool fix_check_assignments{false};     // BUG-VII

  /// Multi-switch deployments: access switch → port its replica hangs off.
  /// switch_join installs a catch-all forwarding rule there, so replica
  /// traffic crossing the front-switch uplink reaches the server.
  std::map<of::SwitchId, of::PortId> access_switches;
  /// React to OFPT_PORT_STATUS on a replica uplink of the front switch:
  /// re-steer the wildcard halves and established assignments that point
  /// at the dead replica onto the surviving one. Off reproduces the
  /// original app, which leaves black-hole rules behind.
  bool react_to_port_status{false};
  /// Expose the policy-change external event (paper Section 8.2). Fault
  /// scenarios turn it off to keep failure interleavings in focus.
  bool enable_reconfig{true};
};

class LoadBalancerState final : public ctrl::AppState {
 public:
  std::uint8_t policy{0};
  bool in_transition{false};
  bool reconfigured{false};
  /// Established-connection assignments: 5-tuple → replica index.
  std::map<of::FiveTuple, std::uint8_t> assignments;

  [[nodiscard]] std::unique_ptr<ctrl::AppState> clone() const override {
    return std::make_unique<LoadBalancerState>(*this);
  }
  void serialize(util::Ser& s) const override;
};

class LoadBalancer final : public ctrl::App {
 public:
  explicit LoadBalancer(LbOptions options) : options_(std::move(options)) {}

  [[nodiscard]] std::string name() const override { return "loadbalancer"; }
  [[nodiscard]] std::unique_ptr<ctrl::AppState> make_initial_state()
      const override {
    return std::make_unique<LoadBalancerState>();
  }

  void switch_join(ctrl::AppState& state, ctrl::Ctx& ctx,
                   of::SwitchId sw) const override;
  void packet_in(ctrl::AppState& state, ctrl::Ctx& ctx, of::SwitchId sw,
                 of::PortId in_port, const sym::SymPacket& pkt,
                 std::uint32_t buffer_id,
                 of::PacketIn::Reason reason) const override;

  void handle_port_status(ctrl::AppState& state, ctrl::Ctx& ctx,
                          of::SwitchId sw, of::PortId port,
                          bool up) const override;

  /// One external event: the load-balancing policy change.
  [[nodiscard]] std::vector<std::string> external_events(
      const ctrl::AppState& state) const override;
  void on_external(ctrl::AppState& state, ctrl::Ctx& ctx,
                   std::size_t event_index) const override;

  /// The paper's FLOW-IR configuration for this app treats a SYN as the
  /// start of a new, independent flow — which is exactly why FLOW-IR
  /// misses BUG-VII.
  [[nodiscard]] bool is_same_flow(const sym::PacketFields& a,
                                  const sym::PacketFields& b) const override;

 private:
  /// Replica index a policy assigns to a client source IP (split on the
  /// top address bit).
  [[nodiscard]] std::uint8_t replica_for(std::uint8_t policy,
                                         std::uint64_t ip_src) const {
    const std::uint8_t side = static_cast<std::uint8_t>((ip_src >> 31) & 1);
    return policy == 0 ? side : static_cast<std::uint8_t>(1 - side);
  }

  [[nodiscard]] of::Match wildcard_match(bool high_half) const;

  LbOptions options_;
};

}  // namespace nicemc::apps

#endif  // NICE_APPS_LOADBALANCER_H
