// Energy-efficient traffic engineering after REsPoNse [28], as tested in
// paper Section 8.3.
//
// The app precomputes two routing tables per destination: an always-on
// path (enough for light load) and an on-demand path (extra capacity). It
// learns link utilization by querying port statistics of the ingress
// switch; above a threshold the network is perceived as highly loaded and
// new flows should be split between the two path classes. On the first
// packet of a flow the packet_in handler picks a table, looks up the
// switch list of the path, and installs a rule at each hop.
//
// Bugs (Section 8.3), on by default:
//   BUG-VIII the handler never releases the buffered first packet
//            (fix_release_packet).
//   BUG-IX   a packet can reach the second switch before its rule; the
//            handler implicitly ignores non-ingress packet_ins
//            (fix_handle_intermediate installs the rule at that switch and
//            releases the packet).
//   BUG-X    the stats handler records the chosen table in a global; under
//            high load *all* new flows take on-demand routes instead of
//            splitting (fix_per_flow_table chooses per flow).
//   BUG-XI   after the load drops, a switch that is only on on-demand
//            paths is no longer found in the recomputed lists, so its
//            packet_in is ignored (fix_lookup_all_tables searches both
//            tables).
#ifndef NICE_APPS_RESPOND_TE_H
#define NICE_APPS_RESPOND_TE_H

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <vector>

#include "ctrl/app.h"

namespace nicemc::apps {

/// One precomputed path: (switch, egress port) per hop, ingress first.
struct TePath {
  std::vector<std::pair<of::SwitchId, of::PortId>> hops;
};

enum class TeTable : std::uint8_t { kAlwaysOn = 0, kOnDemand = 1 };

struct TeOptions {
  of::SwitchId ingress{0};
  /// Port of the ingress switch whose tx_bytes proxies network load.
  of::PortId monitored_port{2};
  std::uint32_t threshold{500};
  /// Destination IP → {always-on path, on-demand path}.
  std::map<std::uint32_t, std::array<TePath, 2>> paths;

  bool fix_release_packet{false};       // BUG-VIII
  bool fix_handle_intermediate{false};  // BUG-IX
  bool fix_per_flow_table{false};      // BUG-X
  bool fix_lookup_all_tables{false};   // BUG-XI
  /// React to OFPT_PORT_STATUS: remember failed ports, route new flows
  /// around them, and re-route established flows whose path crosses the
  /// dead link onto the other path class. Off reproduces the original app,
  /// which leaves rules forwarding into the failed link.
  bool react_to_port_status{false};
};

class RespondTeState final : public ctrl::AppState {
 public:
  /// Perceived energy state — doubles as the "extra global routing table"
  /// of BUG-X (true = use on-demand for everything).
  bool energy_high{false};
  /// Fault bookkeeping, populated only under react_to_port_status:
  /// per-flow chosen path class, and the failed ports learned from
  /// OFPT_PORT_STATUS (routing avoids paths that cross them).
  std::map<of::FiveTuple, std::uint8_t> routed;
  std::map<of::SwitchId, std::set<of::PortId>> down_ports;

  [[nodiscard]] std::unique_ptr<ctrl::AppState> clone() const override {
    return std::make_unique<RespondTeState>(*this);
  }
  void serialize(util::Ser& s) const override {
    const util::Renamer* rn = util::Renamer::active();
    s.put_tag('T');
    s.put_bool(energy_high);
    s.put_u32(static_cast<std::uint32_t>(routed.size()));
    auto emit = [&s](const of::FiveTuple& t, std::uint8_t tbl) {
      s.put_u64(t.ip_src);
      s.put_u64(t.ip_dst);
      s.put_u64(t.ip_proto);
      s.put_u64(t.tp_src);
      s.put_u64(t.tp_dst);
      s.put_u8(tbl);
    };
    if (rn == nullptr) {
      for (const auto& [t, tbl] : routed) emit(t, tbl);
    } else {
      std::map<of::FiveTuple, std::uint8_t> renamed;
      for (const auto& [t, tbl] : routed) {
        of::FiveTuple rt = t;
        rt.ip_src = rn->r_ip(t.ip_src);
        rt.ip_dst = rn->r_ip(t.ip_dst);
        renamed.emplace(rt, tbl);
      }
      for (const auto& [t, tbl] : renamed) emit(t, tbl);
    }
    s.put_u32(static_cast<std::uint32_t>(down_ports.size()));
    for (const auto& [sw, ports] : down_ports) {
      s.put_u32(sw);
      s.put_u32(static_cast<std::uint32_t>(ports.size()));
      if (rn == nullptr) {
        for (of::PortId p : ports) s.put_u32(p);
      } else {
        std::vector<of::PortId> renamed_ports;
        renamed_ports.reserve(ports.size());
        for (of::PortId p : ports) renamed_ports.push_back(rn->r_port(sw, p));
        std::sort(renamed_ports.begin(), renamed_ports.end());
        for (of::PortId p : renamed_ports) s.put_u32(p);
      }
    }
  }
};

class RespondTe final : public ctrl::App {
 public:
  explicit RespondTe(TeOptions options) : options_(std::move(options)) {}

  [[nodiscard]] std::string name() const override { return "respond-te"; }
  [[nodiscard]] std::unique_ptr<ctrl::AppState> make_initial_state()
      const override {
    return std::make_unique<RespondTeState>();
  }

  void packet_in(ctrl::AppState& state, ctrl::Ctx& ctx, of::SwitchId sw,
                 of::PortId in_port, const sym::SymPacket& pkt,
                 std::uint32_t buffer_id,
                 of::PacketIn::Reason reason) const override;

  void stats_in(ctrl::AppState& state, ctrl::Ctx& ctx, of::SwitchId sw,
                const ctrl::SymStats& stats) const override;

  void handle_port_status(ctrl::AppState& state, ctrl::Ctx& ctx,
                          of::SwitchId sw, of::PortId port,
                          bool up) const override;

  [[nodiscard]] bool wants_stats(const ctrl::AppState& state,
                                 of::SwitchId sw) const override {
    (void)state;
    return sw == options_.ingress;
  }

  [[nodiscard]] bool is_same_flow(const sym::PacketFields& a,
                                  const sym::PacketFields& b) const override {
    return of::FiveTuple::of_packet(a) == of::FiveTuple::of_packet(b);
  }

  /// The table the *correct* app would pick for this packet in this state
  /// (exposed for the UseCorrectRoutingTable property).
  [[nodiscard]] TeTable correct_table(const RespondTeState& st,
                                      const sym::PacketFields& hdr) const {
    if (!st.energy_high) return TeTable::kAlwaysOn;
    return (hdr.tp_src & 1) != 0 ? TeTable::kOnDemand : TeTable::kAlwaysOn;
  }

  [[nodiscard]] const TeOptions& options() const noexcept { return options_; }

 private:
  [[nodiscard]] TeTable chosen_table(const RespondTeState& st,
                                     const sym::SymPacket& pkt) const;

  TeOptions options_;
};

}  // namespace nicemc::apps

#endif  // NICE_APPS_RESPOND_TE_H
