// MAC-learning switch — a faithful port of Figure 3 (NOX pyswitch).
//
// The packet_in handler learns the input port of every non-broadcast
// source MAC; if the destination MAC is known (and not the ingress port),
// it installs a forwarding rule with a soft timeout and releases the
// buffered packet along it; otherwise it floods.
//
// Bugs (Section 8.1), each reproduced by default and fixable via options:
//   BUG-I   host unreachable after moving — the rule's soft timeout never
//           expires while traffic flows, so packets blackhole at the old
//           port. fix_hard_timeout adds a hard timeout.
//   BUG-II  delayed direct path — only the sender→destination rule is
//           installed, so the reply direction goes to the controller
//           again. bug2 = kNaive installs the reverse rule *after*
//           releasing the packet (still racy); kCorrect installs the
//           reverse rule first.
//   BUG-III excess flooding — no spanning tree, so flooding on a cyclic
//           topology loops (no fix provided; the paper's fix would be a
//           spanning-tree computation).
#ifndef NICE_APPS_PYSWITCH_H
#define NICE_APPS_PYSWITCH_H

#include <map>

#include "ctrl/app.h"

namespace nicemc::apps {

struct PySwitchOptions {
  bool fix_hard_timeout{false};  // BUG-I
  enum class Bug2Fix : std::uint8_t { kNone, kNaive, kCorrect };
  Bug2Fix bug2{Bug2Fix::kNone};
  std::uint16_t idle_timeout{5};
  std::uint16_t hard_timeout{10};  // used when fix_hard_timeout
  /// FLOW-IR grouping at microflow granularity (unordered 5-tuple) instead
  /// of MAC pairs — the Section 4 example "in some scenarios different
  /// microflows are independent". Used by the ping workload, where
  /// concurrent pings are independent exchanges.
  bool microflow_grouping{false};
  /// React to OFPT_PORT_STATUS: forget every MAC learned on a failed port
  /// so later traffic floods (and re-learns) instead of following the
  /// stale location. Off reproduces the Figure 3 app, which ignores port
  /// status entirely.
  bool react_to_port_status{false};
};

class PySwitchState final : public ctrl::AppState {
 public:
  /// Per-switch MAC table: MAC → learned input port (Figure 3 ctrl_state).
  std::map<of::SwitchId, ctrl::SymTable> mactable;

  [[nodiscard]] std::unique_ptr<ctrl::AppState> clone() const override {
    return std::make_unique<PySwitchState>(*this);
  }
  void serialize(util::Ser& s) const override {
    s.put_tag('p');
    s.put_u32(static_cast<std::uint32_t>(mactable.size()));
    const util::Renamer* rn = util::Renamer::active();
    for (const auto& [sw, table] : mactable) {
      s.put_u32(sw);
      if (rn == nullptr) {
        table.serialize(s);
      } else {
        // MAC keys and learned ports both rename; re-sort the keys so the
        // emission matches put_map_u64's byte format on the renamed map.
        std::map<std::uint64_t, std::uint64_t> renamed;
        for (const auto& [m, p] : table.raw()) {
          renamed.emplace(rn->r_mac(m),
                          rn->r_port(sw, static_cast<std::uint32_t>(p)));
        }
        s.put_map_u64(renamed);
      }
    }
  }
};

class PySwitch final : public ctrl::App {
 public:
  explicit PySwitch(PySwitchOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "pyswitch"; }
  [[nodiscard]] std::unique_ptr<ctrl::AppState> make_initial_state()
      const override {
    return std::make_unique<PySwitchState>();
  }

  void packet_in(ctrl::AppState& state, ctrl::Ctx& ctx, of::SwitchId sw,
                 of::PortId in_port, const sym::SymPacket& pkt,
                 std::uint32_t buffer_id,
                 of::PacketIn::Reason reason) const override;

  void switch_join(ctrl::AppState& state, ctrl::Ctx& ctx,
                   of::SwitchId sw) const override;
  void switch_leave(ctrl::AppState& state, ctrl::Ctx& ctx,
                    of::SwitchId sw) const override;

  void handle_port_status(ctrl::AppState& state, ctrl::Ctx& ctx,
                          of::SwitchId sw, of::PortId port,
                          bool up) const override;

  [[nodiscard]] bool is_same_flow(const sym::PacketFields& a,
                                  const sym::PacketFields& b) const override;

 private:
  PySwitchOptions options_;
};

}  // namespace nicemc::apps

#endif  // NICE_APPS_PYSWITCH_H
