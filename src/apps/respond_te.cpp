#include "apps/respond_te.h"

namespace nicemc::apps {

namespace {

constexpr std::uint16_t kRulePriority = 100;

of::Rule path_rule(const sym::PacketFields& hdr, of::PortId out_port) {
  of::Rule r;
  r.match = of::Match::five_tuple(hdr);
  r.priority = kRulePriority;
  r.actions = {of::Action::output(out_port)};
  return r;
}

}  // namespace

void RespondTe::stats_in(ctrl::AppState& state, ctrl::Ctx& ctx,
                         of::SwitchId sw, const ctrl::SymStats& stats) const {
  (void)ctx;
  if (sw != options_.ingress) return;
  auto& st = static_cast<RespondTeState&>(state);
  const auto it = stats.tx_bytes.find(options_.monitored_port);
  if (it == stats.tx_bytes.end()) return;
  // Concolic branch: discover_stats finds both load classes from here.
  if (it->second > std::uint64_t{options_.threshold}) {
    st.energy_high = true;  // BUG-X: a global table choice for all flows
  } else {
    st.energy_high = false;
  }
}

TeTable RespondTe::chosen_table(const RespondTeState& st,
                                const sym::SymPacket& pkt) const {
  if (!options_.fix_per_flow_table) {
    // BUG-X: everything follows the global table.
    return st.energy_high ? TeTable::kOnDemand : TeTable::kAlwaysOn;
  }
  if (!st.energy_high) return TeTable::kAlwaysOn;
  // Correct behaviour: split flows between the classes (parity of the
  // source port models the paper's probabilistic split deterministically).
  if ((pkt.tp_src & std::uint64_t{1}) == std::uint64_t{1}) {
    return TeTable::kOnDemand;
  }
  return TeTable::kAlwaysOn;
}

void RespondTe::packet_in(ctrl::AppState& state, ctrl::Ctx& ctx,
                          of::SwitchId sw, of::PortId in_port,
                          const sym::SymPacket& pkt, std::uint32_t buffer_id,
                          of::PacketIn::Reason reason) const {
  (void)in_port;
  (void)reason;
  auto& st = static_cast<RespondTeState&>(state);
  if (!(pkt.eth_type == of::kEthTypeIpv4)) return;
  if (!(pkt.ip_proto == of::kIpProtoTcp)) return;

  const auto dst = static_cast<std::uint32_t>(pkt.ip_dst.concrete());
  const auto path_it = options_.paths.find(dst);
  if (path_it == options_.paths.end()) return;

  sym::PacketFields hdr;
  hdr.ip_src = pkt.ip_src.concrete();
  hdr.ip_dst = pkt.ip_dst.concrete();
  hdr.ip_proto = pkt.ip_proto.concrete();
  hdr.tp_src = pkt.tp_src.concrete();
  hdr.tp_dst = pkt.tp_dst.concrete();

  const TeTable table = chosen_table(st, pkt);
  const TePath& path =
      path_it->second[static_cast<std::size_t>(table)];

  if (sw == options_.ingress) {
    // First packet of a flow: install the end-to-end path. Rules go in
    // *reverse* path order (egress switch first) — the obvious mitigation
    // for install races, which the paper's BUG-IX discussion notes is
    // still not sufficient under unequal installation delays.
    for (auto it = path.hops.rbegin(); it != path.hops.rend(); ++it) {
      ctx.install_rule(it->first, path_rule(hdr, it->second));
    }
    if (options_.fix_release_packet) {
      // BUG-VIII fix: release the trigger packet along the first hop.
      ctx.send_packet_out(sw, buffer_id,
                          {of::Action::output(path.hops.front().second)});
    }
    return;
  }

  // A packet_in from a non-ingress switch: the rule had not been installed
  // yet when the packet arrived (communication delays, Figure 1).
  if (!options_.fix_handle_intermediate) {
    return;  // BUG-IX: implicitly ignored; the packet stays buffered
  }
  auto find_hop = [&](const TePath& p) -> const std::pair<of::SwitchId,
                                                          of::PortId>* {
    for (const auto& hop : p.hops) {
      if (hop.first == sw) return &hop;
    }
    return nullptr;
  };
  const auto* hop = find_hop(path);
  if (hop == nullptr && options_.fix_lookup_all_tables) {
    // BUG-XI fix: the load may have changed since the flow was routed —
    // search the other table too.
    for (const TePath& p : path_it->second) {
      hop = find_hop(p);
      if (hop != nullptr) break;
    }
  }
  if (hop == nullptr) {
    return;  // BUG-XI: switch not on any recomputed path list; ignored
  }
  ctx.install_rule(sw, path_rule(hdr, hop->second));
  ctx.send_packet_out(sw, buffer_id, {of::Action::output(hop->second)});
}

}  // namespace nicemc::apps
