#include "apps/respond_te.h"

namespace nicemc::apps {

namespace {

constexpr std::uint16_t kRulePriority = 100;

of::Rule path_rule(const sym::PacketFields& hdr, of::PortId out_port) {
  of::Rule r;
  r.match = of::Match::five_tuple(hdr);
  r.priority = kRulePriority;
  r.actions = {of::Action::output(out_port)};
  return r;
}

bool path_has_hop(const TePath& p, of::SwitchId sw, of::PortId port) {
  for (const auto& hop : p.hops) {
    if (hop.first == sw && hop.second == port) return true;
  }
  return false;
}

bool path_blocked(const RespondTeState& st, const TePath& p) {
  for (const auto& [sw, port] : p.hops) {
    const auto it = st.down_ports.find(sw);
    if (it != st.down_ports.end() && it->second.contains(port)) return true;
  }
  return false;
}

sym::PacketFields conn_fields(const of::FiveTuple& conn) {
  sym::PacketFields hdr;
  hdr.ip_src = conn.ip_src;
  hdr.ip_dst = conn.ip_dst;
  hdr.ip_proto = conn.ip_proto;
  hdr.tp_src = conn.tp_src;
  hdr.tp_dst = conn.tp_dst;
  return hdr;
}

}  // namespace

void RespondTe::stats_in(ctrl::AppState& state, ctrl::Ctx& ctx,
                         of::SwitchId sw, const ctrl::SymStats& stats) const {
  (void)ctx;
  if (sw != options_.ingress) return;
  auto& st = static_cast<RespondTeState&>(state);
  const auto it = stats.tx_bytes.find(options_.monitored_port);
  if (it == stats.tx_bytes.end()) return;
  // Concolic branch: discover_stats finds both load classes from here.
  if (it->second > std::uint64_t{options_.threshold}) {
    st.energy_high = true;  // BUG-X: a global table choice for all flows
  } else {
    st.energy_high = false;
  }
}

TeTable RespondTe::chosen_table(const RespondTeState& st,
                                const sym::SymPacket& pkt) const {
  if (!options_.fix_per_flow_table) {
    // BUG-X: everything follows the global table.
    return st.energy_high ? TeTable::kOnDemand : TeTable::kAlwaysOn;
  }
  if (!st.energy_high) return TeTable::kAlwaysOn;
  // Correct behaviour: split flows between the classes (parity of the
  // source port models the paper's probabilistic split deterministically).
  if ((pkt.tp_src & std::uint64_t{1}) == std::uint64_t{1}) {
    return TeTable::kOnDemand;
  }
  return TeTable::kAlwaysOn;
}

void RespondTe::handle_port_status(ctrl::AppState& state, ctrl::Ctx& ctx,
                                   of::SwitchId sw, of::PortId port,
                                   bool up) const {
  if (!options_.react_to_port_status) return;
  auto& st = static_cast<RespondTeState&>(state);
  if (up) {
    const auto it = st.down_ports.find(sw);
    if (it != st.down_ports.end()) {
      it->second.erase(port);
      if (it->second.empty()) st.down_ports.erase(it);
    }
    return;
  }
  st.down_ports[sw].insert(port);

  // Re-route every established flow whose path crosses the failed port:
  // tear down the old hop rules and install the other path class.
  for (auto& [conn, tbl] : st.routed) {
    const auto path_it =
        options_.paths.find(static_cast<std::uint32_t>(conn.ip_dst));
    if (path_it == options_.paths.end()) continue;
    const TePath& cur = path_it->second[tbl];
    if (!path_has_hop(cur, sw, port)) continue;
    const auto other = static_cast<std::uint8_t>(1 - tbl);
    const TePath& alt = path_it->second[other];
    const sym::PacketFields hdr = conn_fields(conn);
    for (const auto& hop : cur.hops) {
      ctx.delete_rule(hop.first, of::Match::five_tuple(hdr), kRulePriority);
    }
    for (auto it = alt.hops.rbegin(); it != alt.hops.rend(); ++it) {
      ctx.install_rule(it->first, path_rule(hdr, it->second));
    }
    tbl = other;
  }
}

void RespondTe::packet_in(ctrl::AppState& state, ctrl::Ctx& ctx,
                          of::SwitchId sw, of::PortId in_port,
                          const sym::SymPacket& pkt, std::uint32_t buffer_id,
                          of::PacketIn::Reason reason) const {
  (void)in_port;
  (void)reason;
  auto& st = static_cast<RespondTeState&>(state);
  if (!(pkt.eth_type == of::kEthTypeIpv4)) return;
  if (!(pkt.ip_proto == of::kIpProtoTcp)) return;

  const auto dst = static_cast<std::uint32_t>(pkt.ip_dst.concrete());
  const auto path_it = options_.paths.find(dst);
  if (path_it == options_.paths.end()) return;

  sym::PacketFields hdr;
  hdr.ip_src = pkt.ip_src.concrete();
  hdr.ip_dst = pkt.ip_dst.concrete();
  hdr.ip_proto = pkt.ip_proto.concrete();
  hdr.tp_src = pkt.tp_src.concrete();
  hdr.tp_dst = pkt.tp_dst.concrete();

  TeTable table = chosen_table(st, pkt);
  if (options_.react_to_port_status &&
      path_blocked(st, path_it->second[static_cast<std::size_t>(table)])) {
    // Route around known link failures: prefer the other path class when
    // the chosen one crosses a failed port (fall back to the choice if
    // both are blocked — there is nothing better to do).
    const TeTable other =
        table == TeTable::kAlwaysOn ? TeTable::kOnDemand : TeTable::kAlwaysOn;
    if (!path_blocked(st, path_it->second[static_cast<std::size_t>(other)])) {
      table = other;
    }
  }
  const TePath& path =
      path_it->second[static_cast<std::size_t>(table)];

  if (sw == options_.ingress) {
    // First packet of a flow: install the end-to-end path. Rules go in
    // *reverse* path order (egress switch first) — the obvious mitigation
    // for install races, which the paper's BUG-IX discussion notes is
    // still not sufficient under unequal installation delays.
    for (auto it = path.hops.rbegin(); it != path.hops.rend(); ++it) {
      ctx.install_rule(it->first, path_rule(hdr, it->second));
    }
    if (options_.react_to_port_status) {
      st.routed[of::FiveTuple::of_packet(hdr)] =
          static_cast<std::uint8_t>(table);
    }
    if (options_.fix_release_packet) {
      // BUG-VIII fix: release the trigger packet along the first hop.
      ctx.send_packet_out(sw, buffer_id,
                          {of::Action::output(path.hops.front().second)});
    }
    return;
  }

  // A packet_in from a non-ingress switch: the rule had not been installed
  // yet when the packet arrived (communication delays, Figure 1).
  if (!options_.fix_handle_intermediate) {
    return;  // BUG-IX: implicitly ignored; the packet stays buffered
  }
  auto find_hop = [&](const TePath& p) -> const std::pair<of::SwitchId,
                                                          of::PortId>* {
    for (const auto& hop : p.hops) {
      if (hop.first == sw) return &hop;
    }
    return nullptr;
  };
  const auto* hop = find_hop(path);
  if (hop == nullptr && options_.fix_lookup_all_tables) {
    // BUG-XI fix: the load may have changed since the flow was routed —
    // search the other table too.
    for (const TePath& p : path_it->second) {
      hop = find_hop(p);
      if (hop != nullptr) break;
    }
  }
  if (hop == nullptr) {
    return;  // BUG-XI: switch not on any recomputed path list; ignored
  }
  ctx.install_rule(sw, path_rule(hdr, hop->second));
  ctx.send_packet_out(sw, buffer_id, {of::Action::output(hop->second)});
}

}  // namespace nicemc::apps
