// Concrete packets and model-level identifiers.
//
// A packet carries (a) the header fields that flow tables match on and
// (b) model metadata used by the correctness properties: a flow id (for
// FLOW-IR and FlowAffinity), an injection uid shared by all copies made by
// flooding, a per-copy id, and the list of <switch, in_port> hops visited
// so far (NoForwardingLoops, Section 5.2). Metadata is part of the hashed
// system state — it travels with the packet through channels and buffers.
#ifndef NICE_OF_PACKET_H
#define NICE_OF_PACKET_H

#include <cstdint>
#include <string>
#include <vector>

#include "sym/sympacket.h"
#include "util/rename.h"
#include "util/ser.h"

namespace nicemc::of {

using SwitchId = std::uint32_t;
using PortId = std::uint32_t;
using HostId = std::uint32_t;

inline constexpr std::uint64_t kBroadcastMac = 0xffffffffffffULL;
inline constexpr std::uint64_t kEthTypeIpv4 = 0x0800;
inline constexpr std::uint64_t kEthTypeArp = 0x0806;
inline constexpr std::uint64_t kIpProtoTcp = 6;
inline constexpr std::uint64_t kIpProtoIcmp = 1;

// TCP flag bits (subset used by the load-balancer model).
inline constexpr std::uint64_t kTcpSyn = 0x02;
inline constexpr std::uint64_t kTcpAck = 0x10;
inline constexpr std::uint64_t kTcpFin = 0x01;

/// One hop in a packet's journey (for loop detection).
struct Hop {
  SwitchId sw{0};
  PortId port{0};

  friend bool operator==(const Hop&, const Hop&) = default;

  void serialize(util::Ser& s) const {
    const util::Renamer* rn = util::Renamer::active();
    s.put_u32(sw);
    s.put_u32(util::rn_port(rn, sw, port));
  }
};

struct Packet {
  sym::PacketFields hdr;

  /// Logical flow tag assigned by the sending host model; packets of the
  /// same end-to-end exchange (e.g. a ping and its reply, or one TCP
  /// connection) share a flow id. Used by FLOW-IR and by properties.
  std::uint32_t flow_id{0};
  /// Injection id: shared by every copy made by flooding/duplication.
  std::uint32_t uid{0};
  /// Distinct per physical copy in flight.
  std::uint32_t copy_id{0};
  /// Host that injected the packet.
  HostId sender{0};
  /// Nominal wire size in bytes (for switch port statistics).
  std::uint32_t size_bytes{100};
  /// <switch, in_port> pairs this copy has entered (loop detection).
  std::vector<Hop> visited;

  friend bool operator==(const Packet&, const Packet&) = default;

  /// `include_copy_id = false` gives the canonical form: the copy id is a
  /// bookkeeping name assigned in processing order, so two interleavings
  /// that produce the same packets with different copy numbering are
  /// semantically equivalent (part of the Section 2.2.2 switch-state
  /// canonicalization; the NO-SWITCH-REDUCTION baseline keeps it).
  void serialize(util::Ser& s, bool include_copy_id = true) const {
    const util::Renamer* rn = util::Renamer::active();
    s.put_tag('P');
    s.put_u64(util::rn_mac(rn, hdr.eth_src));
    s.put_u64(util::rn_mac(rn, hdr.eth_dst));
    s.put_u64(hdr.eth_type);
    s.put_u64(util::rn_ip(rn, hdr.ip_src));
    s.put_u64(util::rn_ip(rn, hdr.ip_dst));
    s.put_u64(hdr.ip_proto);
    s.put_u64(hdr.tp_src);
    s.put_u64(hdr.tp_dst);
    s.put_u64(hdr.tcp_flags);
    s.put_u32(util::rn_flow(rn, flow_id));
    s.put_u32(util::rn_uid(rn, uid));
    if (include_copy_id) s.put_u32(copy_id);
    s.put_u32(util::rn_host(rn, sender));
    s.put_u32(size_bytes);
    s.put_u32(static_cast<std::uint32_t>(visited.size()));
    for (const Hop& h : visited) h.serialize(s);
  }

  [[nodiscard]] bool visited_before(SwitchId sw, PortId port) const {
    for (const Hop& h : visited) {
      if (h.sw == sw && h.port == port) return true;
    }
    return false;
  }

  /// Human-readable one-liner for traces.
  [[nodiscard]] std::string brief() const;
};

/// Key identifying a TCP/UDP connection (FlowAffinity property).
struct FiveTuple {
  std::uint64_t ip_src{0}, ip_dst{0}, ip_proto{0}, tp_src{0}, tp_dst{0};

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  static FiveTuple of_packet(const sym::PacketFields& h) {
    return FiveTuple{h.ip_src, h.ip_dst, h.ip_proto, h.tp_src, h.tp_dst};
  }
};

/// Key identifying a MAC-level conversation direction (DirectPaths).
struct MacPair {
  std::uint64_t src{0}, dst{0};

  friend bool operator==(const MacPair&, const MacPair&) = default;
  friend auto operator<=>(const MacPair&, const MacPair&) = default;

  static MacPair of_packet(const sym::PacketFields& h) {
    return MacPair{h.eth_src, h.eth_dst};
  }
  [[nodiscard]] MacPair reversed() const { return MacPair{dst, src}; }
};

}  // namespace nicemc::of

#endif  // NICE_OF_PACKET_H
