#include "of/switch.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace nicemc::of {

Switch::Switch(SwitchId sw_id, std::vector<PortId> port_list,
               std::size_t buf_capacity)
    : id(sw_id), ports(std::move(port_list)), buffer_capacity(buf_capacity) {
  for (PortId p : ports) {
    in_ports.emplace(p, Fifo<Packet>{});
    port_stats.emplace(p, PortStatsEntry{});
  }
}

void Switch::enqueue_packet(PortId port, Packet p) {
  assert(in_ports.contains(port) && "delivery to unknown port");
  in_ports.at(port).push(std::move(p));
}

bool Switch::can_process_pkt() const {
  for (const auto& [port, chan] : in_ports) {
    if (!chan.empty()) return true;
  }
  return false;
}

std::vector<std::pair<PortId, Packet>> Switch::expand_action(
    const Action& a, PortId in_port, const Packet& p) const {
  std::vector<std::pair<PortId, Packet>> out;
  switch (a.type) {
    case ActionType::kOutput:
      out.emplace_back(a.port, p);
      break;
    case ActionType::kFlood:
      for (PortId port : ports) {
        if (port != in_port) out.emplace_back(port, p);
      }
      break;
    case ActionType::kController:
      break;  // handled by the caller (buffering)
  }
  return out;
}

PacketOutcome Switch::run_pipeline(Packet p, PortId in_port, bool record_hop) {
  PacketOutcome oc;
  oc.in_port = in_port;
  if (record_hop) {
    oc.revisited = p.visited_before(id, in_port);
    p.visited.push_back(Hop{id, in_port});
    auto& rx = port_stats[in_port];
    rx.rx_packets += 1;
    rx.rx_bytes += p.size_bytes;
  }
  oc.packet = p;

  const std::optional<std::size_t> hit = table.lookup(in_port, p.hdr);
  if (!hit) {
    // No matching rule: buffer the packet and punt to the controller
    // (OpenFlow NO_MATCH behaviour).
    if (ctrl_channel_down) {
      oc.dropped_no_ctrl = true;
      return oc;
    }
    if (buffer.size() >= buffer_capacity) {
      oc.dropped_buffer_full = true;
      return oc;
    }
    const std::uint32_t bid = next_buffer_id++;
    buffer.emplace(bid, BufferedPacket{p, in_port});
    of_out.push(PacketIn{.packet = p,
                         .in_port = in_port,
                         .buffer_id = bid,
                         .reason = PacketIn::Reason::kNoMatch});
    oc.to_controller = true;
    oc.buffer_id = bid;
    oc.reason = PacketIn::Reason::kNoMatch;
    return oc;
  }

  oc.rule_idx = hit;
  table.count_hit(*hit, p.size_bytes);
  const Rule& rule = table.rules()[*hit];
  if (rule.actions.empty()) {
    oc.dropped_by_rule = true;
    return oc;
  }
  for (const Action& a : rule.actions) {
    if (a.type == ActionType::kController) {
      if (ctrl_channel_down) {
        oc.dropped_no_ctrl = true;
        continue;
      }
      if (buffer.size() >= buffer_capacity) {
        oc.dropped_buffer_full = true;
        continue;
      }
      const std::uint32_t bid = next_buffer_id++;
      buffer.emplace(bid, BufferedPacket{p, in_port});
      of_out.push(PacketIn{.packet = p,
                           .in_port = in_port,
                           .buffer_id = bid,
                           .reason = PacketIn::Reason::kAction});
      oc.to_controller = true;
      oc.buffer_id = bid;
      oc.reason = PacketIn::Reason::kAction;
      continue;
    }
    for (auto& [port, pkt] : expand_action(a, in_port, p)) {
      auto& tx = port_stats[port];
      tx.tx_packets += 1;
      tx.tx_bytes += pkt.size_bytes;
      oc.forwards.emplace_back(port, std::move(pkt));
    }
  }
  return oc;
}

PacketOutcome Switch::apply_actions(Packet p, PortId in_port,
                                    const ActionList& actions) {
  PacketOutcome oc;
  oc.in_port = in_port;
  oc.packet = p;
  if (actions.empty()) {
    // Explicit "no actions": the packet is consumed (this is how an app
    // discards a buffered packet it handled itself, e.g. an ARP request).
    oc.dropped_by_rule = true;
    return oc;
  }
  for (const Action& a : actions) {
    assert(a.type != ActionType::kController &&
           "packet_out back to controller is not modelled");
    for (auto& [port, pkt] : expand_action(a, in_port, p)) {
      auto& tx = port_stats[port];
      tx.tx_packets += 1;
      tx.tx_bytes += pkt.size_bytes;
      oc.forwards.emplace_back(port, std::move(pkt));
    }
  }
  return oc;
}

std::vector<PacketOutcome> Switch::process_pkt() {
  assert(can_process_pkt());
  std::vector<PacketOutcome> outcomes;
  // Paper: dequeue the first packet from each channel and process all of
  // them as a single transition.
  for (auto& [port, chan] : in_ports) {
    if (chan.empty()) continue;
    outcomes.push_back(run_pipeline(chan.pop(), port, /*record_hop=*/true));
  }
  return outcomes;
}

OfOutcome Switch::process_of() {
  assert(can_process_of());
  OfOutcome oc;
  ToSwitch msg = of_in.pop();
  if (!of_in_seq.empty()) of_in_seq.pop_front();
  if (auto* fm = std::get_if<FlowMod>(&msg)) {
    switch (fm->cmd) {
      case FlowMod::Cmd::kAdd:
        table.add(fm->rule);
        oc.installed = fm->rule;
        break;
      case FlowMod::Cmd::kDelete:
        oc.removed_count = table.remove(fm->rule.match, std::nullopt);
        oc.removed_match = fm->rule.match;
        break;
      case FlowMod::Cmd::kDeleteStrict:
        oc.removed_count = table.remove(fm->rule.match, fm->rule.priority);
        oc.removed_match = fm->rule.match;
        break;
    }
    return oc;
  }
  if (auto* po = std::get_if<PacketOut>(&msg)) {
    Packet p;
    PortId in_port = po->in_port;
    if (po->buffer_id != kNoBuffer) {
      auto it = buffer.find(po->buffer_id);
      if (it == buffer.end()) {
        oc.missing_buffer = true;
        return oc;
      }
      p = it->second.packet;
      in_port = it->second.in_port;
      buffer.erase(it);
    } else {
      assert(po->packet.has_value() &&
             "packet_out without buffer must carry a packet");
      p = *po->packet;
    }
    const bool from_buffer = po->buffer_id != kNoBuffer;
    oc.packet = apply_actions(std::move(p), in_port, po->actions);
    oc.packet->from_buffer = from_buffer;
    if (po->actions.empty()) oc.packet->explicit_discard = true;
    return oc;
  }
  if (auto* sr = std::get_if<StatsRequest>(&msg)) {
    of_out.push(StatsReply{.xid = sr->xid, .ports = port_stats});
    oc.stats_replied = true;
    return oc;
  }
  const auto& br = std::get<BarrierRequest>(msg);
  of_out.push(BarrierReply{.xid = br.xid});
  oc.barrier_replied = true;
  return oc;
}

Switch::ChannelLoss Switch::disconnect_ctrl() {
  ChannelLoss loss{.lost_to_switch = of_in.size(),
                   .lost_to_ctrl = of_out.size()};
  of_in = Fifo<ToSwitch>{};
  of_in_seq.clear();
  of_out = Fifo<ToController>{};
  ctrl_channel_down = true;
  return loss;
}

Switch::RestartSummary Switch::restart() {
  RestartSummary sum{.lost_rules = table.size(),
                     .lost_buffered = buffer.size(),
                     .lost_to_switch = of_in.size(),
                     .lost_to_ctrl = of_out.size()};
  table = FlowTable{};
  buffer.clear();
  of_in = Fifo<ToSwitch>{};
  of_in_seq.clear();
  of_out = Fifo<ToController>{};
  for (auto& [port, st] : port_stats) st = PortStatsEntry{};
  ctrl_channel_down = false;
  return sum;
}

std::vector<std::size_t> Switch::expirable_rules() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < table.rules().size(); ++i) {
    if (table.rules()[i].can_expire()) out.push_back(i);
  }
  return out;
}

std::map<std::uint32_t, std::uint32_t> Switch::canonical_buffer_ids() const {
  // Dense renaming of buffer ids by buffered-packet content: two
  // interleavings that buffered the same packets under different raw ids
  // serialize identically. The rename is applied consistently to the
  // buffer map and to every in-flight message that references a buffer id,
  // so the renamed state is behaviourally isomorphic to the original.
  std::vector<std::pair<std::string, std::uint32_t>> entries;
  entries.reserve(buffer.size());
  const util::Renamer* rn = util::Renamer::active();
  for (const auto& [bid, bp] : buffer) {
    util::Ser content;
    bp.packet.serialize(content, /*include_copy_id=*/false);
    content.put_u32(util::rn_port(rn, id, bp.in_port));
    entries.emplace_back(content.take(), bid);
  }
  std::sort(entries.begin(), entries.end());
  std::map<std::uint32_t, std::uint32_t> rename;
  for (std::uint32_t rank = 0; rank < entries.size(); ++rank) {
    rename.emplace(entries[rank].second, rank + 1);
  }
  return rename;
}

std::size_t Switch::serialized_size_hint() const {
  std::size_t ingress = 0;
  for (const auto& [port, chan] : in_ports) ingress += 8 + chan.size() * 160;
  return 64 + table.rules().size() * 96 + ingress + of_in.size() * 160 +
         of_out.size() * 192 + buffer.size() * 176 + port_stats.size() * 40 +
         8 + down_ports.size() * 4;
}

void Switch::serialize(util::Ser& s, bool canonical) const {
  std::size_t bounds[kSerializeParts + 1];
  serialize_parts(s, canonical, bounds);
}

void Switch::serialize_parts(util::Ser& s, bool canonical,
                             std::size_t* bounds) const {
  const std::size_t base = s.size();
  // All port fields below belong to this switch.
  const util::Renamer::SwScope sw_scope(id);
  const util::Renamer* rn = util::Renamer::active();
  const std::map<std::uint32_t, std::uint32_t> rename =
      canonical ? canonical_buffer_ids()
                : std::map<std::uint32_t, std::uint32_t>{};
  auto mapped = [&](std::uint32_t bid) {
    if (!canonical || bid == kNoBuffer) return bid;
    const auto it = rename.find(bid);
    return it == rename.end() ? bid : it->second;
  };

  // part 0: identity + fault state + flow table
  bounds[0] = s.size() - base;
  s.put_tag('W');
  s.put_u32(id);
  s.put_bool(ctrl_channel_down);
  s.put_u32(static_cast<std::uint32_t>(down_ports.size()));
  if (rn == nullptr) {
    for (PortId p : down_ports) s.put_u32(p);
  } else {
    std::vector<PortId> renamed_down;
    renamed_down.reserve(down_ports.size());
    for (PortId p : down_ports) renamed_down.push_back(rn->r_port(id, p));
    std::sort(renamed_down.begin(), renamed_down.end());
    for (PortId p : renamed_down) s.put_u32(p);
  }
  table.serialize(s, canonical);

  // part 1: ingress packet channels
  bounds[1] = s.size() - base;
  s.put_u32(static_cast<std::uint32_t>(in_ports.size()));
  auto emit_chan = [&](PortId port, const Fifo<Packet>& chan) {
    s.put_u32(port);
    chan.serialize(s, [&](util::Ser& ser, const Packet& p) {
      p.serialize(ser, /*include_copy_id=*/!canonical);
    });
  };
  if (rn == nullptr) {
    for (const auto& [port, chan] : in_ports) emit_chan(port, chan);
  } else {
    // Port renaming can reorder the channel keys; re-sort them.
    std::vector<std::pair<PortId, const Fifo<Packet>*>> chans;
    chans.reserve(in_ports.size());
    for (const auto& [port, chan] : in_ports) {
      chans.emplace_back(rn->r_port(id, port), &chan);
    }
    std::sort(chans.begin(), chans.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [port, chan] : chans) emit_chan(port, *chan);
  }

  // part 2: controller → switch channel
  bounds[2] = s.size() - base;
  of_in.serialize(s, [&](util::Ser& ser, const ToSwitch& m) {
    if (canonical) {
      if (const auto* po = std::get_if<PacketOut>(&m)) {
        PacketOut copy = *po;
        copy.buffer_id = mapped(copy.buffer_id);
        if (copy.packet) copy.packet->copy_id = 0;
        serialize_message(ser, ToSwitch{copy});
        return;
      }
    }
    serialize_message(ser, m);
  });

  // part 3: switch → controller channel
  bounds[3] = s.size() - base;
  of_out.serialize(s, [&](util::Ser& ser, const ToController& m) {
    if (canonical) {
      if (const auto* pin = std::get_if<PacketIn>(&m)) {
        PacketIn copy = *pin;
        copy.buffer_id = mapped(copy.buffer_id);
        copy.packet.copy_id = 0;
        serialize_message(ser, ToController{copy});
        return;
      }
    }
    serialize_message(ser, m);
  });

  // part 4: awaiting-controller buffer
  bounds[4] = s.size() - base;
  s.put_u32(static_cast<std::uint32_t>(buffer.size()));
  if (canonical) {
    // Iterate in renamed (content) order so the bytes are canonical.
    std::map<std::uint32_t, std::uint32_t> inverse;
    for (const auto& [raw, dense] : rename) inverse.emplace(dense, raw);
    for (const auto& [dense, raw] : inverse) {
      s.put_u32(dense);
      const BufferedPacket& bp = buffer.at(raw);
      bp.packet.serialize(s, /*include_copy_id=*/false);
      s.put_u32(util::rn_port(rn, id, bp.in_port));
    }
  } else {
    for (const auto& [bid, bp] : buffer) {
      s.put_u32(bid);
      bp.serialize(s);
    }
    s.put_u32(next_buffer_id);
  }

  // part 5: port statistics
  bounds[5] = s.size() - base;
  s.put_u32(static_cast<std::uint32_t>(port_stats.size()));
  if (rn == nullptr) {
    for (const auto& [port, st] : port_stats) {
      s.put_u32(port);
      st.serialize(s);
    }
  } else {
    std::vector<std::pair<PortId, const PortStatsEntry*>> stats;
    stats.reserve(port_stats.size());
    for (const auto& [port, st] : port_stats) {
      stats.emplace_back(rn->r_port(id, port), &st);
    }
    std::sort(stats.begin(), stats.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [port, st] : stats) {
      s.put_u32(port);
      st->serialize(s);
    }
  }
  bounds[6] = s.size() - base;
}

}  // namespace nicemc::of
