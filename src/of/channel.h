// FIFO communication channels (paper Section 2.2.2, "simple communication
// channels"). Packet channels can enable a fault model — the model checker
// then enumerates drop/duplicate transitions for the head packet. The
// OpenFlow control channel is reliable and in-order.
#ifndef NICE_OF_CHANNEL_H
#define NICE_OF_CHANNEL_H

#include <cassert>
#include <cstdint>
#include <deque>

#include "util/ser.h"

namespace nicemc::of {

/// Fault-model switches for a packet channel.
struct ChannelFaults {
  bool may_drop{false};
  bool may_duplicate{false};

  friend bool operator==(const ChannelFaults&, const ChannelFaults&) = default;
};

template <typename T>
class Fifo {
 public:
  void push(T v) { items_.push_back(std::move(v)); }

  T pop() {
    assert(!items_.empty());
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  [[nodiscard]] const T& front() const {
    assert(!items_.empty());
    return items_.front();
  }

  /// Duplicate the head element in place (fault model).
  void duplicate_head() {
    assert(!items_.empty());
    items_.push_front(items_.front());
  }

  /// Drop the head element (fault model).
  void drop_head() {
    assert(!items_.empty());
    items_.pop_front();
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const std::deque<T>& items() const noexcept { return items_; }

  friend bool operator==(const Fifo&, const Fifo&) = default;

  template <typename SerFn>
  void serialize(util::Ser& s, SerFn&& f) const {
    s.put_u32(static_cast<std::uint32_t>(items_.size()));
    for (const T& v : items_) f(s, v);
  }

 private:
  std::deque<T> items_;
};

}  // namespace nicemc::of

#endif  // NICE_OF_CHANNEL_H
