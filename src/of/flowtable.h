// Flow table with the canonical representation of paper Section 2.2.2.
//
// Rules are stored in insertion order (what a naive model would hash), but
// lookups and the default serialization use a canonical order: descending
// priority, then ascending rule key. Two tables holding the same rule set in
// different insertion orders therefore hash identically — this is the
// "merging equivalent flow tables" optimization whose effect Table 1
// quantifies (the NO-SWITCH-REDUCTION baseline serializes insertion order).
#ifndef NICE_OF_FLOWTABLE_H
#define NICE_OF_FLOWTABLE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "of/rule.h"
#include "util/ser.h"

namespace nicemc::of {

class FlowTable {
 public:
  /// flow_mod ADD semantics: a rule with the same match and priority as an
  /// existing rule replaces it (counters reset); otherwise append.
  void add(Rule r);

  /// flow_mod DELETE: remove all rules whose match equals `m` (strict) or
  /// is subsumed-equal (we implement strict equality on the pattern, which
  /// is what the Section 8 applications need). If `priority` is given, only
  /// rules with that priority are removed. Returns the number removed.
  std::size_t remove(const Match& m, std::optional<std::uint16_t> priority);

  /// Highest-priority matching rule for a packet arriving on `port`; ties
  /// are broken by the canonical order so lookup semantics are independent
  /// of insertion order. Returns index into rules() or nullopt.
  [[nodiscard]] std::optional<std::size_t> lookup(
      PortId port, const sym::PacketFields& h) const;

  /// Update counters of the rule at `idx` for one matched packet.
  void count_hit(std::size_t idx, std::uint32_t bytes);

  void erase_at(std::size_t idx) {
    rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(idx));
  }

  [[nodiscard]] const std::vector<Rule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }

  /// Indices of rules in canonical order.
  [[nodiscard]] std::vector<std::size_t> canonical_order() const;

  /// Canonical serialization (default) or raw insertion-order serialization
  /// (the NO-SWITCH-REDUCTION baseline of Table 1).
  void serialize(util::Ser& s, bool canonical = true) const;

 private:
  std::vector<Rule> rules_;  // insertion order
};

}  // namespace nicemc::of

#endif  // NICE_OF_FLOWTABLE_H
