// OpenFlow protocol messages exchanged between controller and switches.
//
// Per the paper's simplified switch model (Section 2.2.2), the control
// channel carries these messages over a reliable, in-order FIFO — no
// SSL/TCP encoding.
#ifndef NICE_OF_MESSAGES_H
#define NICE_OF_MESSAGES_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "of/packet.h"
#include "of/rule.h"
#include "util/rename.h"
#include "util/ser.h"

namespace nicemc::of {

inline constexpr std::uint32_t kNoBuffer = 0xffffffffu;

// ---- controller → switch ----

struct FlowMod {
  enum class Cmd : std::uint8_t { kAdd, kDelete, kDeleteStrict };
  Cmd cmd{Cmd::kAdd};
  Rule rule;  // for deletes only match (+priority when strict) is used

  friend bool operator==(const FlowMod&, const FlowMod&) = default;
  void serialize(util::Ser& s) const {
    s.put_tag('F');
    s.put_u8(static_cast<std::uint8_t>(cmd));
    rule.serialize(s);
  }
};

struct PacketOut {
  /// kNoBuffer means `packet` carries the full frame; otherwise the switch
  /// retrieves (and releases) the buffered packet with this id.
  std::uint32_t buffer_id{kNoBuffer};
  std::optional<Packet> packet;
  PortId in_port{0};  // ingress context for kFlood semantics
  ActionList actions;  // empty = drop/release the packet

  friend bool operator==(const PacketOut&, const PacketOut&) = default;
  void serialize(util::Ser& s) const {
    s.put_tag('O');
    s.put_u32(buffer_id);
    s.put_bool(packet.has_value());
    if (packet) packet->serialize(s);
    s.put_u32(util::rn_port_cur(util::Renamer::active(), in_port));
    serialize_actions(s, actions);
  }
};

struct StatsRequest {
  std::uint32_t xid{0};

  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
  void serialize(util::Ser& s) const {
    s.put_tag('S');
    s.put_u32(xid);
  }
};

struct BarrierRequest {
  std::uint32_t xid{0};

  friend bool operator==(const BarrierRequest&,
                         const BarrierRequest&) = default;
  void serialize(util::Ser& s) const {
    s.put_tag('B');
    s.put_u32(xid);
  }
};

using ToSwitch = std::variant<FlowMod, PacketOut, StatsRequest, BarrierRequest>;

// ---- switch → controller ----

struct PacketIn {
  Packet packet;
  PortId in_port{0};
  std::uint32_t buffer_id{kNoBuffer};
  enum class Reason : std::uint8_t { kNoMatch, kAction };
  Reason reason{Reason::kNoMatch};

  friend bool operator==(const PacketIn&, const PacketIn&) = default;
  void serialize(util::Ser& s) const {
    s.put_tag('I');
    packet.serialize(s);
    s.put_u32(util::rn_port_cur(util::Renamer::active(), in_port));
    s.put_u32(buffer_id);
    s.put_u8(static_cast<std::uint8_t>(reason));
  }
};

struct PortStatsEntry {
  std::uint64_t tx_packets{0};
  std::uint64_t tx_bytes{0};
  std::uint64_t rx_packets{0};
  std::uint64_t rx_bytes{0};

  friend bool operator==(const PortStatsEntry&,
                         const PortStatsEntry&) = default;
  void serialize(util::Ser& s) const {
    s.put_u64(tx_packets);
    s.put_u64(tx_bytes);
    s.put_u64(rx_packets);
    s.put_u64(rx_bytes);
  }
};

struct StatsReply {
  std::uint32_t xid{0};
  std::map<PortId, PortStatsEntry> ports;

  friend bool operator==(const StatsReply&, const StatsReply&) = default;
  void serialize(util::Ser& s) const {
    s.put_tag('s');
    s.put_u32(xid);
    s.put_u32(static_cast<std::uint32_t>(ports.size()));
    const util::Renamer* rn = util::Renamer::active();
    if (rn == nullptr) {
      for (const auto& [p, st] : ports) {
        s.put_u32(p);
        st.serialize(s);
      }
    } else {
      // Port renaming can reorder the keys; re-sort so the canonical form
      // stays independent of the original port naming.
      std::vector<std::pair<PortId, const PortStatsEntry*>> renamed;
      renamed.reserve(ports.size());
      for (const auto& [p, st] : ports) {
        renamed.emplace_back(rn->r_port_cur(p), &st);
      }
      std::sort(renamed.begin(), renamed.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [p, st] : renamed) {
        s.put_u32(p);
        st->serialize(s);
      }
    }
  }
};

struct BarrierReply {
  std::uint32_t xid{0};

  friend bool operator==(const BarrierReply&, const BarrierReply&) = default;
  void serialize(util::Ser& s) const {
    s.put_tag('b');
    s.put_u32(xid);
  }
};

/// Asynchronous port-status notification (OFPT_PORT_STATUS): the switch
/// reports that one of its ports went down (link failure) or came back up.
struct PortStatus {
  PortId port{0};
  bool up{true};

  friend bool operator==(const PortStatus&, const PortStatus&) = default;
  void serialize(util::Ser& s) const {
    s.put_tag('P');
    s.put_u32(util::rn_port_cur(util::Renamer::active(), port));
    s.put_bool(up);
  }
};

using ToController = std::variant<PacketIn, StatsReply, BarrierReply, PortStatus>;

template <typename Variant>
void serialize_message(util::Ser& s, const Variant& m) {
  s.put_u8(static_cast<std::uint8_t>(m.index()));
  std::visit([&s](const auto& inner) { inner.serialize(s); }, m);
}

/// One-line rendering for traces.
std::string brief(const ToSwitch& m);
std::string brief(const ToController& m);

}  // namespace nicemc::of

#endif  // NICE_OF_MESSAGES_H
