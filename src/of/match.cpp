#include "of/match.h"

#include "util/rename.h"
#include "util/strings.h"

namespace nicemc::of {

namespace {

/// IPv4 prefix comparison: do the top `plen` bits agree?
bool prefix_match(std::uint64_t rule_ip, std::uint8_t plen,
                  std::uint64_t pkt_ip) {
  if (plen == 0) return true;
  const std::uint32_t mask =
      plen >= 32 ? 0xffffffffu : ~((1u << (32 - plen)) - 1);
  return (static_cast<std::uint32_t>(rule_ip) & mask) ==
         (static_cast<std::uint32_t>(pkt_ip) & mask);
}

}  // namespace

bool Match::matches(PortId port, const sym::PacketFields& h) const {
  if (has(MatchField::kInPort) && in_port != port) return false;
  if (has(MatchField::kEthSrc) && eth_src != h.eth_src) return false;
  if (has(MatchField::kEthDst) && eth_dst != h.eth_dst) return false;
  if (has(MatchField::kEthType) && eth_type != h.eth_type) return false;
  if (has(MatchField::kIpSrc) && !prefix_match(ip_src, ip_src_plen, h.ip_src)) {
    return false;
  }
  if (has(MatchField::kIpDst) && !prefix_match(ip_dst, ip_dst_plen, h.ip_dst)) {
    return false;
  }
  if (has(MatchField::kIpProto) && ip_proto != h.ip_proto) return false;
  if (has(MatchField::kTpSrc) && tp_src != h.tp_src) return false;
  if (has(MatchField::kTpDst) && tp_dst != h.tp_dst) return false;
  return true;
}

Match Match::l2_exact(PortId port, const sym::PacketFields& h) {
  Match m;
  m.fields = MatchField::kInPort | MatchField::kEthSrc | MatchField::kEthDst |
             MatchField::kEthType;
  m.in_port = port;
  m.eth_src = h.eth_src;
  m.eth_dst = h.eth_dst;
  m.eth_type = h.eth_type;
  return m;
}

Match Match::five_tuple(const sym::PacketFields& h) {
  Match m;
  m.fields = MatchField::kEthType | MatchField::kIpSrc | MatchField::kIpDst |
             MatchField::kIpProto | MatchField::kTpSrc | MatchField::kTpDst;
  m.eth_type = kEthTypeIpv4;
  m.ip_src = h.ip_src;
  m.ip_dst = h.ip_dst;
  m.ip_src_plen = 32;
  m.ip_dst_plen = 32;
  m.ip_proto = h.ip_proto;
  m.tp_src = h.tp_src;
  m.tp_dst = h.tp_dst;
  return m;
}

void Match::serialize(util::Ser& s) const {
  const util::Renamer* rn = util::Renamer::active();
  s.put_tag('M');
  s.put_u16(fields);
  s.put_u32(util::rn_port_cur(rn, in_port));
  s.put_u64(util::rn_mac(rn, eth_src));
  s.put_u64(util::rn_mac(rn, eth_dst));
  s.put_u64(eth_type);
  s.put_u64(util::rn_ip(rn, ip_src));
  s.put_u64(util::rn_ip(rn, ip_dst));
  s.put_u8(ip_src_plen);
  s.put_u8(ip_dst_plen);
  s.put_u64(ip_proto);
  s.put_u64(tp_src);
  s.put_u64(tp_dst);
}

std::string Match::brief() const {
  std::string s = "match{";
  bool first = true;
  auto add = [&](const std::string& part) {
    if (!first) s += " ";
    s += part;
    first = false;
  };
  if (has(MatchField::kInPort)) add("in=" + std::to_string(in_port));
  if (has(MatchField::kEthSrc)) add("src=" + util::mac_to_string(eth_src));
  if (has(MatchField::kEthDst)) add("dst=" + util::mac_to_string(eth_dst));
  if (has(MatchField::kEthType)) add("type=0x" + util::hex_u64(eth_type, 4));
  if (has(MatchField::kIpSrc)) {
    add("nw_src=" + util::ip_to_string(static_cast<std::uint32_t>(ip_src)) +
        "/" + std::to_string(ip_src_plen));
  }
  if (has(MatchField::kIpDst)) {
    add("nw_dst=" + util::ip_to_string(static_cast<std::uint32_t>(ip_dst)) +
        "/" + std::to_string(ip_dst_plen));
  }
  if (has(MatchField::kIpProto)) add("proto=" + std::to_string(ip_proto));
  if (has(MatchField::kTpSrc)) add("tp_src=" + std::to_string(tp_src));
  if (has(MatchField::kTpDst)) add("tp_dst=" + std::to_string(tp_dst));
  if (first) add("*");
  s += "}";
  return s;
}

}  // namespace nicemc::of
