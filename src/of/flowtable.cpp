#include "of/flowtable.h"

#include <algorithm>

namespace nicemc::of {

namespace {

std::vector<std::byte> key_bytes(const Rule& r) {
  util::Ser s;
  r.serialize_key(s);
  const auto b = s.bytes();
  return {b.begin(), b.end()};
}

}  // namespace

void FlowTable::add(Rule r) {
  for (Rule& existing : rules_) {
    if (existing.match == r.match && existing.priority == r.priority) {
      existing = std::move(r);
      return;
    }
  }
  rules_.push_back(std::move(r));
}

std::size_t FlowTable::remove(const Match& m,
                              std::optional<std::uint16_t> priority) {
  const std::size_t before = rules_.size();
  std::erase_if(rules_, [&](const Rule& r) {
    return r.match == m && (!priority || r.priority == *priority);
  });
  return before - rules_.size();
}

std::optional<std::size_t> FlowTable::lookup(
    PortId port, const sym::PacketFields& h) const {
  // Highest priority wins; equal-priority ties break by canonical key so
  // lookups are insertion-order independent. The key is only materialized
  // when a tie actually occurs (the common case is a unique priority).
  std::optional<std::size_t> best;
  std::vector<std::byte> best_key;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (!rules_[i].match.matches(port, h)) continue;
    if (!best) {
      best = i;
      best_key.clear();
      continue;
    }
    if (rules_[i].priority != rules_[*best].priority) {
      if (rules_[i].priority > rules_[*best].priority) {
        best = i;
        best_key.clear();
      }
      continue;
    }
    if (best_key.empty()) best_key = key_bytes(rules_[*best]);
    std::vector<std::byte> key = key_bytes(rules_[i]);
    if (key < best_key) {
      best = i;
      best_key = std::move(key);
    }
  }
  return best;
}

void FlowTable::count_hit(std::size_t idx, std::uint32_t bytes) {
  rules_[idx].packet_count += 1;
  rules_[idx].byte_count += bytes;
}

std::vector<std::size_t> FlowTable::canonical_order() const {
  // Cache each rule's key bytes once; sorting then never re-serializes.
  std::vector<std::vector<std::byte>> keys(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    keys[i] = key_bytes(rules_[i]);
  }
  std::vector<std::size_t> order(rules_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this, &keys](std::size_t a, std::size_t b) {
              if (rules_[a].priority != rules_[b].priority) {
                return rules_[a].priority > rules_[b].priority;
              }
              return keys[a] < keys[b];
            });
  return order;
}

void FlowTable::serialize(util::Ser& s, bool canonical) const {
  s.put_tag('T');
  s.put_u32(static_cast<std::uint32_t>(rules_.size()));
  if (canonical) {
    for (std::size_t i : canonical_order()) rules_[i].serialize(s);
  } else {
    for (const Rule& r : rules_) r.serialize(s);
  }
}

}  // namespace nicemc::of
