#include "of/messages.h"

namespace nicemc::of {

std::string brief(const ToSwitch& m) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, FlowMod>) {
          const char* cmd = v.cmd == FlowMod::Cmd::kAdd ? "add"
                            : v.cmd == FlowMod::Cmd::kDelete ? "del"
                                                             : "del_strict";
          return std::string("flow_mod(") + cmd + " " + v.rule.brief() + ")";
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          std::string s = "packet_out(buf=";
          s += v.buffer_id == kNoBuffer ? "none"
                                        : std::to_string(v.buffer_id);
          s += " actions=" + std::to_string(v.actions.size()) + ")";
          return s;
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          return "stats_request(xid=" + std::to_string(v.xid) + ")";
        } else {
          return "barrier_request(xid=" + std::to_string(v.xid) + ")";
        }
      },
      m);
}

std::string brief(const ToController& m) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, PacketIn>) {
          std::string s = "packet_in(" + v.packet.brief();
          s += v.reason == PacketIn::Reason::kNoMatch ? " NO_MATCH"
                                                      : " ACTION";
          s += ")";
          return s;
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          return "stats_reply(xid=" + std::to_string(v.xid) + ")";
        } else if constexpr (std::is_same_v<T, BarrierReply>) {
          return "barrier_reply(xid=" + std::to_string(v.xid) + ")";
        } else {
          return "port_status(port=" + std::to_string(v.port) +
                 (v.up ? " up)" : " down)");
        }
      },
      m);
}

}  // namespace nicemc::of
