#include "of/packet.h"

#include "util/strings.h"

namespace nicemc::of {

std::string Packet::brief() const {
  std::string s = "pkt{";
  s += util::mac_to_string(hdr.eth_src);
  s += "->";
  s += util::mac_to_string(hdr.eth_dst);
  s += " type=0x" + util::hex_u64(hdr.eth_type, 4);
  if (hdr.eth_type == kEthTypeIpv4) {
    s += " " + util::ip_to_string(static_cast<std::uint32_t>(hdr.ip_src));
    s += "->" + util::ip_to_string(static_cast<std::uint32_t>(hdr.ip_dst));
    s += " proto=" + std::to_string(hdr.ip_proto);
    s += " tp=" + std::to_string(hdr.tp_src) + ":" +
         std::to_string(hdr.tp_dst);
    if (hdr.ip_proto == kIpProtoTcp) {
      s += " flags=0x" + util::hex_u64(hdr.tcp_flags, 2);
    }
  }
  s += " flow=" + std::to_string(flow_id);
  s += " uid=" + std::to_string(uid) + "." + std::to_string(copy_id);
  s += "}";
  return s;
}

}  // namespace nicemc::of
