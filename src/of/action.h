// Flow-rule actions: output to a port, flood (all ports except ingress),
// punt to the controller, or drop (an empty action list also drops).
#ifndef NICE_OF_ACTION_H
#define NICE_OF_ACTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "of/packet.h"
#include "util/ser.h"

namespace nicemc::of {

enum class ActionType : std::uint8_t {
  kOutput,      // forward out a specific port
  kFlood,       // all ports except the ingress port
  kController,  // send to the controller (packet_in with reason ACTION)
};

struct Action {
  ActionType type{ActionType::kOutput};
  PortId port{0};  // meaningful for kOutput

  friend bool operator==(const Action&, const Action&) = default;

  static Action output(PortId p) { return Action{ActionType::kOutput, p}; }
  static Action flood() { return Action{ActionType::kFlood, 0}; }
  static Action controller() { return Action{ActionType::kController, 0}; }

  void serialize(util::Ser& s) const {
    s.put_u8(static_cast<std::uint8_t>(type));
    s.put_u32(type == ActionType::kOutput
                  ? util::rn_port_cur(util::Renamer::active(), port)
                  : port);
  }

  [[nodiscard]] std::string brief() const {
    switch (type) {
      case ActionType::kOutput:
        return "output(" + std::to_string(port) + ")";
      case ActionType::kFlood:
        return "flood";
      case ActionType::kController:
        return "controller";
    }
    return "?";
  }
};

/// Empty list = drop.
using ActionList = std::vector<Action>;

inline void serialize_actions(util::Ser& s, const ActionList& a) {
  s.put_u32(static_cast<std::uint32_t>(a.size()));
  for (const Action& x : a) x.serialize(s);
}

}  // namespace nicemc::of

#endif  // NICE_OF_ACTION_H
