// The simplified OpenFlow switch model of paper Section 2.2.2.
//
// A switch is: per-port ingress packet FIFOs, one reliable in-order OpenFlow
// channel in each direction, a flow table with canonical representation, a
// finite buffer of packets awaiting controller instruction, and two
// transitions:
//   * process_pkt — dequeues the head packet of EVERY non-empty ingress
//     channel and processes them against the flow table in one transition
//     (safe because the model checker already explores arrival orderings);
//   * process_of — dequeues and applies one OpenFlow message.
//
// The switch is a pure state machine: it never touches the topology. Packet
// emissions are returned as structured outcomes; the model checker's
// executor resolves output ports to link peers and generates property
// events.
#ifndef NICE_OF_SWITCH_H
#define NICE_OF_SWITCH_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "of/channel.h"
#include "of/flowtable.h"
#include "of/messages.h"
#include "of/packet.h"
#include "util/ser.h"

namespace nicemc::of {

struct BufferedPacket {
  Packet packet;
  PortId in_port{0};

  friend bool operator==(const BufferedPacket&,
                         const BufferedPacket&) = default;
  void serialize(util::Ser& s) const {
    packet.serialize(s);
    s.put_u32(util::rn_port_cur(util::Renamer::active(), in_port));
  }
};

/// What happened to one packet run through the pipeline (either on ingress
/// or on release by a packet_out).
struct PacketOutcome {
  Packet packet;      // with the new hop already appended (ingress only)
  PortId in_port{0};
  /// (out_port, packet) emissions, flood already expanded.
  std::vector<std::pair<PortId, Packet>> forwards;
  bool to_controller{false};
  std::uint32_t buffer_id{kNoBuffer};
  PacketIn::Reason reason{PacketIn::Reason::kNoMatch};
  bool dropped_by_rule{false};
  bool dropped_buffer_full{false};
  /// Needed the controller (no match / kController action) while the
  /// control channel was down: the packet is lost, not buffered.
  bool dropped_no_ctrl{false};
  /// The packet had already entered this <switch, in_port> — forwarding loop.
  bool revisited{false};
  /// Released from the awaiting-controller buffer by a packet_out.
  bool from_buffer{false};
  /// packet_out with an empty action list: deliberate consume, not a drop.
  bool explicit_discard{false};
  /// Index of the matched rule in the table's insertion order, if any.
  std::optional<std::size_t> rule_idx;
};

/// Effect of applying one controller→switch message.
struct OfOutcome {
  std::optional<Rule> installed;
  std::size_t removed_count{0};
  std::optional<Match> removed_match;
  std::optional<PacketOutcome> packet;  // packet_out emission
  bool barrier_replied{false};
  bool stats_replied{false};
  /// packet_out referenced a buffer id that does not exist (double release).
  bool missing_buffer{false};
};

struct Switch {
  SwitchId id{0};
  std::vector<PortId> ports;          // all ports, for flood expansion
  std::size_t buffer_capacity{64};
  FlowTable table;
  std::map<PortId, Fifo<Packet>> in_ports;   // ingress packet channels
  Fifo<ToSwitch> of_in;                      // controller → switch
  /// Global send-order tags parallel to of_in. Bookkeeping for the UNUSUAL
  /// search strategy only — deterministic in the transition history, and
  /// deliberately excluded from serialization so it never splits states.
  std::deque<std::uint64_t> of_in_seq;
  Fifo<ToController> of_out;                 // switch → controller
  std::map<std::uint32_t, BufferedPacket> buffer;
  std::uint32_t next_buffer_id{1};
  std::map<PortId, PortStatsEntry> port_stats;
  ChannelFaults pkt_channel_faults;
  /// Ports whose attached link is down (kLinkDown marks both endpoints).
  /// Forwarding into a down port loses the packet at delivery time.
  std::set<PortId> down_ports;
  /// Controller connection lost (kCtrlChannelDown): both OpenFlow channels
  /// are wiped and stay frozen until kCtrlChannelUp replays the handshake.
  bool ctrl_channel_down{false};

  Switch() = default;
  Switch(SwitchId sw_id, std::vector<PortId> port_list,
         std::size_t buf_capacity = 64);

  /// Enqueue a packet on an ingress channel (link delivery).
  void enqueue_packet(PortId port, Packet p);

  /// Enqueue a controller→switch message with its global send-order tag.
  void push_of(ToSwitch msg, std::uint64_t seq) {
    of_in.push(std::move(msg));
    of_in_seq.push_back(seq);
  }

  /// Send-order tag of the head OpenFlow message (0 when empty).
  [[nodiscard]] std::uint64_t head_of_seq() const {
    return of_in_seq.empty() ? 0 : of_in_seq.front();
  }

  [[nodiscard]] bool can_process_pkt() const;
  [[nodiscard]] bool can_process_of() const { return !of_in.empty(); }

  /// The process_pkt transition: one head packet per non-empty ingress
  /// channel, each run through the flow table.
  std::vector<PacketOutcome> process_pkt();

  /// The process_of transition: apply the head OpenFlow message.
  OfOutcome process_of();

  /// Insertion-order indices of rules that have a timeout and could expire
  /// (drives the optional rule-expiry transitions).
  [[nodiscard]] std::vector<std::size_t> expirable_rules() const;
  void expire_rule(std::size_t idx) { table.erase_at(idx); }

  /// All packets awaiting a controller decision (NoForgottenPackets).
  [[nodiscard]] std::size_t forgotten_packets() const { return buffer.size(); }

  /// Messages lost when the controller connection drops.
  struct ChannelLoss {
    std::size_t lost_to_switch{0};
    std::size_t lost_to_ctrl{0};
  };
  /// kCtrlChannelDown: wipe both OpenFlow channels, freeze the connection.
  ChannelLoss disconnect_ctrl();
  /// kCtrlChannelUp: unfreeze; the executor replays the app handshake.
  void reconnect_ctrl() { ctrl_channel_down = false; }

  /// Push an OFPT_PORT_STATUS notification unless the connection is down.
  void emit_port_status(PortId port, bool up) {
    if (!ctrl_channel_down) of_out.push(PortStatus{.port = port, .up = up});
  }

  /// What a kSwitchRestart wiped (for the EvSwitchRestart event).
  struct RestartSummary {
    std::size_t lost_rules{0};
    std::size_t lost_buffered{0};
    std::size_t lost_to_switch{0};
    std::size_t lost_to_ctrl{0};
  };
  /// kSwitchRestart: wipe flow table, buffer and both OpenFlow channels,
  /// zero port counters, and come back with a fresh controller connection.
  /// `down_ports` persists (links stay physically down across the reboot)
  /// and so does next_buffer_id, so stale packet_outs from before the
  /// restart can never alias a fresh buffer entry.
  RestartSummary restart();

  /// Canonical serialization (Section 2.2.2): rules in canonical order,
  /// buffer ids densely renamed by content, copy ids and the buffer-id
  /// counter omitted. `canonical = false` is the raw form the
  /// NO-SWITCH-REDUCTION baseline hashes.
  void serialize(util::Ser& s, bool canonical = true) const;

  /// Two-level COLLAPSE support: the serialization splits into
  /// kSerializeParts contiguous sections whose concatenation (in part
  /// order) is byte-identical to serialize(). The flow table, each
  /// channel direction, the ingress queues, the buffer and the port stats
  /// vary semi-independently during a search, so interning them
  /// separately turns the product of their variants into a sum
  /// (util::Snap::form_id interns each part, then the part-id tuple).
  /// Each part is a deterministic function of the whole switch (the
  /// message/buffer sections consult the canonical buffer-id renaming).
  /// serialize_parts emits all sections in one pass and records the
  /// kSerializeParts + 1 boundary offsets (relative to s's size on entry)
  /// in `bounds`.
  static constexpr std::size_t kSerializeParts = 6;
  void serialize_parts(util::Ser& s, bool canonical,
                       std::size_t* bounds) const;

  /// Rough upper estimate of serialize()'s output size — lets the state
  /// pipeline pre-size per-component buffers (see util::Snap::form).
  [[nodiscard]] std::size_t serialized_size_hint() const;

 private:
  /// Content-ordered dense renaming of the live buffer ids.
  [[nodiscard]] std::map<std::uint32_t, std::uint32_t> canonical_buffer_ids()
      const;

 public:

 private:
  /// Run one packet through the flow table (shared by ingress processing
  /// and by packet_out action application when actions come from a rule).
  PacketOutcome run_pipeline(Packet p, PortId in_port, bool record_hop);

  /// Apply an explicit action list to a packet (packet_out).
  PacketOutcome apply_actions(Packet p, PortId in_port,
                              const ActionList& actions);

  std::vector<std::pair<PortId, Packet>> expand_action(const Action& a,
                                                       PortId in_port,
                                                       const Packet& p) const;
};

}  // namespace nicemc::of

#endif  // NICE_OF_SWITCH_H
