#include "of/rule.h"

namespace nicemc::of {

std::string Rule::brief() const {
  std::string s = "rule{pri=" + std::to_string(priority) + " ";
  s += match.brief();
  s += " -> [";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) s += ",";
    s += actions[i].brief();
  }
  s += "]";
  if (idle_timeout != kPermanent) {
    s += " idle=" + std::to_string(idle_timeout);
  }
  if (hard_timeout != kPermanent) {
    s += " hard=" + std::to_string(hard_timeout);
  }
  s += "}";
  return s;
}

}  // namespace nicemc::of
