// A flow-table rule: match pattern, priority, actions, timeouts, counters.
#ifndef NICE_OF_RULE_H
#define NICE_OF_RULE_H

#include <cstdint>
#include <string>

#include "of/action.h"
#include "of/match.h"
#include "util/ser.h"

namespace nicemc::of {

inline constexpr std::uint16_t kPermanent = 0;  // timeout value "never"

struct Rule {
  Match match;
  std::uint16_t priority{100};
  ActionList actions;  // empty = drop
  std::uint16_t idle_timeout{kPermanent};  // "soft" timeout in the paper
  std::uint16_t hard_timeout{kPermanent};
  std::uint64_t packet_count{0};
  std::uint64_t byte_count{0};

  friend bool operator==(const Rule&, const Rule&) = default;

  [[nodiscard]] bool can_expire() const {
    return idle_timeout != kPermanent || hard_timeout != kPermanent;
  }

  /// Canonical serialization used both for state hashing and as the
  /// canonical sort key (counters included: they are switch state).
  void serialize(util::Ser& s) const {
    s.put_tag('R');
    match.serialize(s);
    s.put_u16(priority);
    serialize_actions(s, actions);
    s.put_u16(idle_timeout);
    s.put_u16(hard_timeout);
    s.put_u64(packet_count);
    s.put_u64(byte_count);
  }

  /// Key identifying the rule for canonical ordering; excludes counters so
  /// two rules differing only in counters order deterministically by the
  /// pattern first.
  void serialize_key(util::Ser& s) const {
    match.serialize(s);
    s.put_u16(priority);
    serialize_actions(s, actions);
  }

  [[nodiscard]] std::string brief() const;
};

}  // namespace nicemc::of

#endif  // NICE_OF_RULE_H
