#include "of/channel.h"

// Fifo is header-only; this TU anchors the library target.
namespace nicemc::of {}
