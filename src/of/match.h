// OpenFlow 1.0-style match: exact or wildcarded header fields, with CIDR
// prefix masks on the IP addresses (needed by the load balancer of
// Section 8.2, which partitions client IP space with wildcard rules).
#ifndef NICE_OF_MATCH_H
#define NICE_OF_MATCH_H

#include <cstdint>
#include <string>

#include "of/packet.h"
#include "util/ser.h"

namespace nicemc::of {

/// Presence bits: a set bit means the field participates in matching.
enum class MatchField : std::uint16_t {
  kInPort = 1 << 0,
  kEthSrc = 1 << 1,
  kEthDst = 1 << 2,
  kEthType = 1 << 3,
  kIpSrc = 1 << 4,   // with ip_src_plen prefix length
  kIpDst = 1 << 5,   // with ip_dst_plen prefix length
  kIpProto = 1 << 6,
  kTpSrc = 1 << 7,
  kTpDst = 1 << 8,
};

constexpr std::uint16_t operator|(MatchField a, MatchField b) {
  return static_cast<std::uint16_t>(a) | static_cast<std::uint16_t>(b);
}
constexpr std::uint16_t operator|(std::uint16_t a, MatchField b) {
  return a | static_cast<std::uint16_t>(b);
}

struct Match {
  std::uint16_t fields{0};  // OR of MatchField bits
  PortId in_port{0};
  std::uint64_t eth_src{0};
  std::uint64_t eth_dst{0};
  std::uint64_t eth_type{0};
  std::uint64_t ip_src{0};
  std::uint64_t ip_dst{0};
  std::uint8_t ip_src_plen{32};  // prefix length, meaningful iff kIpSrc set
  std::uint8_t ip_dst_plen{32};
  std::uint64_t ip_proto{0};
  std::uint64_t tp_src{0};
  std::uint64_t tp_dst{0};

  friend bool operator==(const Match&, const Match&) = default;

  [[nodiscard]] bool has(MatchField f) const {
    return (fields & static_cast<std::uint16_t>(f)) != 0;
  }

  /// Does the packet (arriving on `port`) match?
  [[nodiscard]] bool matches(PortId port, const sym::PacketFields& h) const;

  /// Wildcard match-all (lowest specificity).
  static Match any() { return Match{}; }

  /// Exact match on all L2 fields + in_port (the microflow rule of the
  /// MAC-learning switch, Figure 3 line 11).
  static Match l2_exact(PortId port, const sym::PacketFields& h);

  /// Exact 5-tuple + L2 type (microflow rule of the load balancer).
  static Match five_tuple(const sym::PacketFields& h);

  /// Canonical total order key: used to sort flow-table rules with equal
  /// priority into a unique order (paper Section 2.2.2, "merging
  /// equivalent flow tables").
  void serialize(util::Ser& s) const;

  [[nodiscard]] std::string brief() const;
};

}  // namespace nicemc::of

#endif  // NICE_OF_MATCH_H
