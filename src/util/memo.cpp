#include "util/memo.h"

#include <algorithm>

namespace nicemc::util {

namespace {
/// Per-entry accounting overhead: list node links, index slot, shared_ptr
/// control block. A coarse constant keeps the budget honest without
/// platform-specific sizing.
constexpr std::size_t kEntryOverhead = 96;
}  // namespace

MemoCore::MemoCore(std::size_t shards, std::uint64_t byte_budget)
    : select_(shards), budget_total_(byte_budget) {
  shards_.reserve(select_.count());
  for (std::size_t i = 0; i < select_.count(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  budget_per_shard_ = budget_total_ / select_.count();
}

std::shared_ptr<const void> MemoCore::find(std::string_view key) {
  Shard& sh = shard_of(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key);
  if (it == sh.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void MemoCore::insert(std::string_view key,
                      std::shared_ptr<const void> value,
                      std::size_t value_bytes) {
  Shard& sh = shard_of(key);
  std::lock_guard<std::mutex> lock(sh.mu);

  const auto existing = sh.index.find(key);
  if (existing != sh.index.end()) {
    // Pure-function values are byte-identical per key; just refresh the
    // pointer and recency so concurrent racers agree on one handle.
    existing->second->value = std::move(value);
    sh.lru.splice(sh.lru.begin(), sh.lru, existing->second);
    return;
  }

  const std::uint64_t slice = budget_per_shard_.load(std::memory_order_relaxed);
  const std::size_t cost = key.size() + value_bytes + kEntryOverhead;
  if (cost > slice) return;  // would bust the shard alone

  while (sh.bytes + cost > slice && !sh.lru.empty()) {
    const Entry& victim = sh.lru.back();
    sh.bytes -= victim.bytes;
    sh.index.erase(std::string_view(victim.key));
    sh.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  sh.lru.push_front(Entry{std::string(key), std::move(value), cost});
  sh.index.emplace(std::string_view(sh.lru.front().key), sh.lru.begin());
  sh.bytes += cost;
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

MemoCore::Stats MemoCore::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    s.bytes += sh->bytes;
    s.entries += sh->lru.size();
  }
  return s;
}

void MemoCore::shrink_to(std::uint64_t new_budget) {
  if (new_budget >= budget_total_.load(std::memory_order_relaxed)) return;
  budget_total_.store(new_budget, std::memory_order_relaxed);
  const std::uint64_t slice = new_budget / select_.count();
  budget_per_shard_.store(slice, std::memory_order_relaxed);
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    while (sh->bytes > slice && !sh->lru.empty()) {
      const Entry& victim = sh->lru.back();
      sh->bytes -= victim.bytes;
      sh->index.erase(std::string_view(victim.key));
      sh->lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void MemoCore::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->index.clear();
    sh->lru.clear();
    sh->bytes = 0;
  }
}

}  // namespace nicemc::util
