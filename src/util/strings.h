// Human-readable formatting of network identifiers for traces and logs.
#ifndef NICE_UTIL_STRINGS_H
#define NICE_UTIL_STRINGS_H

#include <cstdint>
#include <string>

namespace nicemc::util {

/// "aa:bb:cc:dd:ee:ff" from a 48-bit MAC stored in the low bits.
std::string mac_to_string(std::uint64_t mac);

/// Dotted quad from a 32-bit IPv4 address.
std::string ip_to_string(std::uint32_t ip);

/// Fixed-width lowercase hex, e.g. hex_u64(0x2a, 4) == "002a".
std::string hex_u64(std::uint64_t v, int digits);

}  // namespace nicemc::util

#endif  // NICE_UTIL_STRINGS_H
