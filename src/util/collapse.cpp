#include "util/collapse.h"

namespace nicemc::util {

namespace {

// Epoch values are drawn from one process-wide monotonic counter, so a
// (table address, epoch) pair can never be recycled: a new table at a
// freed table's address still gets a fresh epoch, and Snap::form_id
// memos keyed on the pair can never serve an id from a dead table.
std::atomic<std::uint64_t> g_epoch_source{1};

}  // namespace

CollapseTable::CollapseTable(std::size_t shards)
    : select_(shards),
      epoch_(g_epoch_source.fetch_add(1, std::memory_order_relaxed)) {
  shards_.reserve(select_.count());
  for (std::size_t i = 0; i < select_.count(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::uint32_t CollapseTable::intern(std::string_view bytes) {
  Shard& s = shard_of(bytes);
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.calls;  // under the shard lock: no shared cache line on the hot path
  const auto it = s.ids.find(bytes);
  if (it != s.ids.end()) return it->second;
  // Equal bytes always hash to the same shard, so allocating under this
  // shard's lock keeps one id per blob; the shared counter keeps ids
  // dense across shards.
  const std::uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  s.ids.emplace(std::string(bytes), id);
  s.bytes += bytes.size();
  return id;
}

std::uint64_t CollapseTable::interned_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->bytes;
  }
  return total;
}

std::uint64_t CollapseTable::intern_calls() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->calls;
  }
  return total;
}

double CollapseTable::dedupe_ratio() const {
  const std::uint64_t blobs = unique_blobs();
  return blobs > 0 ? static_cast<double>(intern_calls()) /
                         static_cast<double>(blobs)
                   : 0.0;
}

void CollapseTable::serialize(Ser& s) const {
  const std::uint64_t n = unique_blobs();
  // Invert the shard maps into id order: ids are dense in [0, n).
  std::vector<const std::string*> by_id(n, nullptr);
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    for (const auto& [blob, id] : sh->ids) by_id[id] = &blob;
  }
  s.put_u64(n);
  for (const std::string* blob : by_id) s.put_str(*blob);
  s.put_u64(intern_calls());
}

bool CollapseTable::restore(Des& d) {
  if (unique_blobs() != 0) return false;
  const std::uint64_t n = d.get_count(4);
  if (!d.ok()) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string_view blob = d.get_str();
    if (!d.ok()) return false;
    // Dense in-order allocation: re-interning the i-th blob into an empty
    // table must hand back id i, or the id tuples referencing this table
    // would silently point at the wrong blobs.
    if (intern(blob) != i) {
      d.fail();
      return false;
    }
  }
  const std::uint64_t calls = d.get_u64();
  if (!d.ok() || calls < n) return d.ok();
  // The restore itself issued n intern calls; top shard 0 up so
  // intern_calls()/dedupe_ratio() report the original run's totals.
  std::lock_guard<std::mutex> lock(shards_[0]->mu);
  shards_[0]->calls += calls - n;
  return true;
}

void CollapseTable::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->ids.clear();
    s->bytes = 0;
    s->calls = 0;
  }
  next_id_.store(0, std::memory_order_relaxed);
  epoch_.store(g_epoch_source.fetch_add(1, std::memory_order_relaxed),
               std::memory_order_relaxed);
}

}  // namespace nicemc::util
