#include "util/collapse.h"

namespace nicemc::util {

namespace {

// Epoch values are drawn from one process-wide monotonic counter, so a
// (table address, epoch) pair can never be recycled: a new table at a
// freed table's address still gets a fresh epoch, and Snap::form_id
// memos keyed on the pair can never serve an id from a dead table.
std::atomic<std::uint64_t> g_epoch_source{1};

}  // namespace

CollapseTable::CollapseTable(std::size_t shards)
    : select_(shards),
      epoch_(g_epoch_source.fetch_add(1, std::memory_order_relaxed)) {
  shards_.reserve(select_.count());
  for (std::size_t i = 0; i < select_.count(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::uint32_t CollapseTable::intern(std::string_view bytes) {
  Shard& s = shard_of(bytes);
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.calls;  // under the shard lock: no shared cache line on the hot path
  const auto it = s.ids.find(bytes);
  if (it != s.ids.end()) return it->second;
  // Equal bytes always hash to the same shard, so allocating under this
  // shard's lock keeps one id per blob; the shared counter keeps ids
  // dense across shards.
  const std::uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  s.ids.emplace(std::string(bytes), id);
  s.bytes += bytes.size();
  return id;
}

std::uint64_t CollapseTable::interned_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->bytes;
  }
  return total;
}

std::uint64_t CollapseTable::intern_calls() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->calls;
  }
  return total;
}

double CollapseTable::dedupe_ratio() const {
  const std::uint64_t blobs = unique_blobs();
  return blobs > 0 ? static_cast<double>(intern_calls()) /
                         static_cast<double>(blobs)
                   : 0.0;
}

void CollapseTable::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->ids.clear();
    s->bytes = 0;
    s->calls = 0;
  }
  next_id_.store(0, std::memory_order_relaxed);
  epoch_.store(g_epoch_source.fetch_add(1, std::memory_order_relaxed),
               std::memory_order_relaxed);
}

}  // namespace nicemc::util
