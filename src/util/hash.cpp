#include "util/hash.h"

namespace nicemc::util {

std::uint64_t fnv1a64(std::span<const std::byte> bytes,
                      std::uint64_t basis) noexcept {
  std::uint64_t h = basis;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

Hash128 hash128(std::span<const std::byte> bytes) noexcept {
  // Two FNV-1a streams with independent offset bases. The second basis is
  // the first basis run through the splitmix64 finalizer.
  return Hash128{
      .lo = fnv1a64(bytes, 0xcbf29ce484222325ULL),
      .hi = fnv1a64(bytes, 0x9ae16a3b2f90404fULL),
  };
}

}  // namespace nicemc::util
