#include "util/seen_set.h"

namespace nicemc::util {

namespace {

/// Placement hash of a key-mode entry: a pure function of the key bytes,
/// so the shard an entry lands in can be re-derived from the entry alone
/// (checkpoint restore) and never depends on caller-supplied state hashes.
Hash128 key_placement(std::string_view key) {
  return hash128({reinterpret_cast<const std::byte*>(key.data()), key.size()});
}

}  // namespace

ShardedSeenSet::ShardedSeenSet(Mode mode, std::size_t shards)
    : mode_(mode), select_(shards) {
  shards_.reserve(select_.count());
  for (std::size_t i = 0; i < select_.count(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ShardedSeenSet::insert(const Hash128& h) {
  Shard& s = shard_of(h);
  std::lock_guard<std::mutex> lock(s.mu);
  const bool inserted = s.hashes.insert(h).second;
  if (inserted) s.bytes += sizeof(Hash128);
  return inserted;
}

bool ShardedSeenSet::insert_key(std::string key) {
  Shard& s = shard_of(key_placement(key));
  std::lock_guard<std::mutex> lock(s.mu);
  const auto [it, inserted] = s.keys.insert(std::move(key));
  if (inserted) s.bytes += it->size();
  return inserted;
}

std::uint64_t ShardedSeenSet::size() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->hashes.size() + s->keys.size();
  }
  return total;
}

std::uint64_t ShardedSeenSet::store_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->bytes;
  }
  return total;
}

void ShardedSeenSet::serialize(Ser& s) const {
  s.put_u8(static_cast<std::uint8_t>(mode_));
  s.put_u64(size());
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    if (mode_ == Mode::kHash) {
      for (const Hash128& h : sh->hashes) {
        s.put_u64(h.lo);
        s.put_u64(h.hi);
      }
    } else {
      for (const std::string& k : sh->keys) s.put_str(k);
    }
  }
}

bool ShardedSeenSet::restore(Des& d) {
  if (static_cast<Mode>(d.get_u8()) != mode_) d.fail();
  const std::uint64_t n =
      d.get_count(mode_ == Mode::kHash ? sizeof(Hash128) : 4);
  if (!d.ok()) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (mode_ == Mode::kHash) {
      Hash128 h;
      h.lo = d.get_u64();
      h.hi = d.get_u64();
      if (!d.ok()) return false;
      insert(h);
    } else {
      const std::string_view k = d.get_str();
      if (!d.ok()) return false;
      insert_key(std::string(k));
    }
  }
  return d.ok();
}

void ShardedSeenSet::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->hashes.clear();
    s->keys.clear();
    s->bytes = 0;
  }
}

}  // namespace nicemc::util
