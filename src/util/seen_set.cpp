#include "util/seen_set.h"

namespace nicemc::util {

ShardedSeenSet::ShardedSeenSet(Mode mode, std::size_t shards)
    : mode_(mode), select_(shards) {
  shards_.reserve(select_.count());
  for (std::size_t i = 0; i < select_.count(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ShardedSeenSet::insert(const Hash128& h) {
  Shard& s = shard_of(h);
  std::lock_guard<std::mutex> lock(s.mu);
  const bool inserted = s.hashes.insert(h).second;
  if (inserted) s.bytes += sizeof(Hash128);
  return inserted;
}

bool ShardedSeenSet::insert_key(const Hash128& h, std::string key) {
  Shard& s = shard_of(h);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto [it, inserted] = s.keys.insert(std::move(key));
  if (inserted) s.bytes += it->size();
  return inserted;
}

std::uint64_t ShardedSeenSet::size() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->hashes.size() + s->keys.size();
  }
  return total;
}

std::uint64_t ShardedSeenSet::store_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->bytes;
  }
  return total;
}

void ShardedSeenSet::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->hashes.clear();
    s->keys.clear();
    s->bytes = 0;
  }
}

}  // namespace nicemc::util
