#include "util/strings.h"

#include <array>
#include <cstdio>

namespace nicemc::util {

std::string mac_to_string(std::uint64_t mac) {
  std::array<char, 18> buf{};
  std::snprintf(buf.data(), buf.size(), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((mac >> 40) & 0xff),
                static_cast<unsigned>((mac >> 32) & 0xff),
                static_cast<unsigned>((mac >> 24) & 0xff),
                static_cast<unsigned>((mac >> 16) & 0xff),
                static_cast<unsigned>((mac >> 8) & 0xff),
                static_cast<unsigned>(mac & 0xff));
  return std::string(buf.data());
}

std::string ip_to_string(std::uint32_t ip) {
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return std::string(buf.data());
}

std::string hex_u64(std::uint64_t v, int digits) {
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace nicemc::util
