// Process resource introspection for the memory watchdog and reporting.
//
// The search engine's own accounting (seen-set bytes, collapse-table
// bytes, memo bytes, frontier estimate) drives the memory-budget ladder —
// it is deterministic and schedule-independent. The OS-reported peak RSS
// is the ground truth those numbers are validated against, so benches and
// CheckerResult report both side by side.
#ifndef NICE_UTIL_RESOURCE_H
#define NICE_UTIL_RESOURCE_H

#include <cstdint>

namespace nicemc::util {

/// Peak resident set size of this process in bytes (getrusage ru_maxrss),
/// 0 where the platform does not report it. Monotone over the process
/// lifetime — per-run deltas require recording the value before the run.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace nicemc::util

#endif  // NICE_UTIL_RESOURCE_H
