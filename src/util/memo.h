// Lock-striped memoization tables with per-shard LRU eviction.
//
// The model checker's dominant per-transition costs are pure functions of
// a small set of inputs: a footprint is a function of (component bytes,
// transition), a discovery run of (app-state bytes, client location).
// util::CollapseTable already maps component bytes to dense ids whose
// equality is byte equality, so those inputs compress into short,
// collision-proof keys — exactly what a memo table needs. MemoCore is the
// shared machinery: byte-string keys, values held as shared_ptr<const
// void> (a hit hands out the pointer, so eviction never invalidates a
// reader), ShardSelect striping like the seen-set, and a per-shard byte
// budget enforced by least-recently-used eviction.
//
// MemoTable<V> is the typed wrapper the mc layer uses (por::FootprintMemo,
// mc::DiscoveryMemo). Entries larger than a shard's whole budget are
// computed but never stored, so resident bytes stay ≤ the budget at all
// times — CheckerResult::memo.bytes reports the figure.
#ifndef NICE_UTIL_MEMO_H
#define NICE_UTIL_MEMO_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/seen_set.h"

namespace nicemc::util {

class MemoCore {
 public:
  /// `shards` is rounded up to a power of two and clamped to [1, 1024]
  /// (ShardSelect). `byte_budget` is split evenly across the shards; each
  /// shard evicts least-recently-used entries to stay under its slice.
  MemoCore(std::size_t shards, std::uint64_t byte_budget);

  /// Look up `key`. A hit moves the entry to the front of its shard's LRU
  /// list and returns the stored value; the shared_ptr keeps the value
  /// alive even if a concurrent insert evicts the entry. Miss = nullptr.
  /// Every call counts as exactly one hit or one miss.
  [[nodiscard]] std::shared_ptr<const void> find(std::string_view key);

  /// Store `value` under `key`, charging key bytes + `value_bytes` +
  /// fixed per-entry overhead against the shard budget (evicting from the
  /// LRU tail first). An entry that alone exceeds the shard budget is
  /// dropped; re-inserting an existing key refreshes its value.
  void insert(std::string_view key, std::shared_ptr<const void> value,
              std::size_t value_bytes);

  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t insertions{0};
    std::uint64_t evictions{0};
    std::uint64_t bytes{0};    // resident entry bytes (≤ budget)
    std::uint64_t entries{0};  // resident entry count
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::uint64_t byte_budget() const noexcept {
    return budget_total_.load(std::memory_order_relaxed);
  }

  /// Lower the byte budget to `new_budget` (no-op if already at or below)
  /// and immediately evict LRU entries until every shard fits its new
  /// slice. This is the memory watchdog's first rung: memo contents are
  /// count-invisible by construction, so shrinking mid-search changes
  /// wall-clock time only. Safe against concurrent find/insert.
  void shrink_to(std::uint64_t new_budget);

  void clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> value;
    std::size_t bytes{0};
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. List nodes are stable, so the index
    /// below may key on views into the node-owned key strings.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::uint64_t bytes{0};
  };

  [[nodiscard]] Shard& shard_of(std::string_view key) const {
    const std::uint64_t h = std::hash<std::string_view>{}(key);
    return *shards_[select_.index(Hash128{h, h})];
  }

  ShardSelect select_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Atomic so shrink_to() can lower the budget while workers insert; each
  // insert reads the per-shard slice once (relaxed — a stale read admits
  // at most one entry over a budget that just shrank).
  std::atomic<std::uint64_t> budget_total_;
  std::atomic<std::uint64_t> budget_per_shard_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Typed façade over MemoCore: values live behind shared_ptr<const V>, so
/// a hit is one pointer copy and eviction can never pull a value out from
/// under a reader.
template <typename V>
class MemoTable {
 public:
  MemoTable(std::size_t shards, std::uint64_t byte_budget)
      : core_(shards, byte_budget) {}

  [[nodiscard]] std::shared_ptr<const V> find(std::string_view key) {
    return std::static_pointer_cast<const V>(core_.find(key));
  }

  /// Store a freshly computed value; returns the shared handle so the
  /// caller can keep using it without a copy. `value_bytes` is the
  /// caller's estimate of the payload size (the key is charged
  /// automatically).
  std::shared_ptr<const V> insert(std::string_view key, V value,
                                  std::size_t value_bytes) {
    auto sp = std::make_shared<const V>(std::move(value));
    core_.insert(key, sp, value_bytes);
    return sp;
  }

  [[nodiscard]] MemoCore::Stats stats() const { return core_.stats(); }
  [[nodiscard]] std::uint64_t byte_budget() const noexcept {
    return core_.byte_budget();
  }
  void shrink_to(std::uint64_t new_budget) { core_.shrink_to(new_budget); }
  void clear() { core_.clear(); }

 private:
  MemoCore core_;
};

}  // namespace nicemc::util

#endif  // NICE_UTIL_MEMO_H
