// Search observability: per-worker phase profiling, progress streaming,
// and a halt-time flight recorder.
//
// The design contract (ISSUE 8 / ARCHITECTURE.md "Observability layer"):
//   * zero hot-path locks — every published number is a relaxed atomic on
//     a cache-line-isolated per-worker slot, written only by its owning
//     thread and read (racily, by design) by the progress reporter;
//   * strictly zero cost when telemetry is off — instrumentation points
//     read one thread-local pointer and branch; no clock is ever read,
//     no atomic ever touched;
//   * cheap when on — phase attribution uses *slicing*: one timestamp per
//     phase boundary (not two per scope), taken from the TSC where
//     available (~10ns) instead of clock_gettime (~25ns), so a fully
//     instrumented expand step costs ~100–150ns against a ~4.5µs budget
//     (the bench_por overhead gate enforces ≤ 1.05× wall time).
//
// Phase attribution is exhaustive: from bind to unbind every nanosecond
// of a worker's wall time lands in exactly one phase accumulator (kOther
// catches driver overhead no explicit scope claims), which is what makes
// "per-phase times sum to ≈ wall time per worker" checkable.
#ifndef NICE_UTIL_TELEMETRY_H
#define NICE_UTIL_TELEMETRY_H

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace nicemc::util {

/// The phase taxonomy of one search worker's wall time. Every instant a
/// worker is bound to a telemetry slot is attributed to exactly one phase.
enum class Phase : std::uint8_t {
  kClone,          // SystemState::clone() of the expansion source
  kApply,          // Executor::apply — transition semantics
  kEnabled,        // enabled-set enumeration incl. symbolic discovery
  kFootprint,      // por footprint computation (memo lookups included)
  kPropertyCheck,  // property monitors: on_events + at_quiescence
  kRemember,       // seen-set/sleep-store arrival: serialize, hash, insert
  kCheckpoint,     // durability snapshot serialization + slot write
  kIdle,           // parallel worker parked waiting for work / quiesce
  kOther,          // driver overhead not claimed by any scope above
};
inline constexpr std::size_t kPhaseCount = 9;
[[nodiscard]] const char* phase_name(Phase p) noexcept;

/// Plain (non-atomic) per-phase aggregate: slice count, total time, and a
/// log2 histogram of slice durations — mergeable across workers and runs.
struct PhaseStat {
  /// Bucket i holds slices with floor(log2(ns)) == i (bucket 0 also takes
  /// 0ns slices; the last bucket is open-ended: ≥ ~134ms).
  static constexpr std::size_t kBuckets = 28;
  std::uint64_t count{0};
  std::uint64_t total_ns{0};
  std::array<std::uint64_t, kBuckets> buckets{};

  void merge(const PhaseStat& o) noexcept;
};

/// One flight-recorder entry. Payload fields are generic u32/u64 slots so
/// the recorder stays engine-agnostic; the search layer maps kExpand's
/// (a, b, c) back to a transition (kind, actor, aux) when rendering.
/// `detail` must point at a string with static storage duration — the
/// ring never owns or copies it.
struct FlightEvent {
  enum class Kind : std::uint8_t {
    kExpand,      // a transition was expanded: a=kind, b=actor, c=aux
    kCheckpoint,  // durability snapshot written: value=payload bytes
    kWatchdog,    // memory-ladder step: value=accounted bytes
    kSignal,      // cooperative interrupt observed by the driver
    kLimit,       // a LimitReason halted the search: detail=reason
  };
  std::uint64_t seq{0};   // per-worker monotone sequence number
  std::uint64_t t_ns{0};  // nanoseconds since the owning Telemetry's epoch
  Kind kind{Kind::kExpand};
  std::uint32_t a{0};
  std::uint32_t b{0};
  std::uint32_t c{0};
  std::uint64_t value{0};
  const char* detail{nullptr};
};

/// Fixed ring of the most recent FlightEvents. Owner-thread writes only;
/// read after the worker unbinds (join/halt provides the happens-before),
/// never by the live progress reporter — so the fields stay plain.
class FlightRing {
 public:
  static constexpr std::size_t kSize = 64;

  void push(FlightEvent e) noexcept {
    e.seq = seq_;
    ring_[seq_ % kSize] = e;
    ++seq_;
  }
  /// Recorded events, oldest first (at most kSize).
  [[nodiscard]] std::vector<FlightEvent> events() const;
  [[nodiscard]] std::uint64_t recorded() const noexcept { return seq_; }

 private:
  std::array<FlightEvent, kSize> ring_{};
  std::uint64_t seq_{0};
};

class Telemetry;

/// Per-worker telemetry slot. The owning worker thread is the only writer
/// of every field; the atomics exist so the reporter thread's concurrent
/// reads are race-free (relaxed — monotone counters, any torn-free value
/// is a valid snapshot).
class alignas(64) WorkerTelemetry {
 public:
  /// End the current phase slice (attributing it) and start `p`.
  /// Returns the previous phase so scopes can restore it.
  Phase switch_phase(Phase p) noexcept;

  void add_transitions(std::uint64_t n = 1) noexcept {
    transitions_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_unique(std::uint64_t n = 1) noexcept {
    unique_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_revisits(std::uint64_t n = 1) noexcept {
    revisits_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_quiescent(std::uint64_t n = 1) noexcept {
    quiescent_.fetch_add(n, std::memory_order_relaxed);
  }

  void record_expand(std::uint32_t kind, std::uint32_t actor,
                     std::uint32_t aux) noexcept;
  void record_event(FlightEvent::Kind kind, std::uint64_t value,
                    const char* detail) noexcept;

  /// Exact per-phase aggregate. Owner-thread or post-join/flush reads
  /// only (the fields are plain; the live reporter must use
  /// published_phase_ns instead).
  [[nodiscard]] PhaseStat phase(Phase p) const noexcept;
  /// Reporter-safe per-phase total: the atomic mirror the owner publishes
  /// every kPublishStride slices (and on any slice ≥ 1ms, so long idle
  /// waits stay live). Slightly stale by design — staleness is bounded
  /// per worker, and snapshots are seconds apart.
  [[nodiscard]] std::uint64_t published_phase_ns(Phase p) const noexcept {
    return pub_ns_[static_cast<std::size_t>(p)].load(
        std::memory_order_relaxed);
  }
  /// Wall nanoseconds this slot has been bound (completed bindings plus
  /// the live one, if any).
  [[nodiscard]] std::uint64_t wall_ns() const noexcept;

  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t unique_states() const noexcept {
    return unique_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t revisits() const noexcept {
    return revisits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t quiescent() const noexcept {
    return quiescent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const FlightRing& ring() const noexcept { return ring_; }
  [[nodiscard]] std::size_t id() const noexcept { return id_; }

  /// If the calling thread currently owns this slot, close the live phase
  /// slice so phase totals are exact up to now (used before reading the
  /// profile into a CheckerResult mid-binding).
  void flush_if_current() noexcept;

 private:
  friend class Telemetry;

  void bind() noexcept;
  void unbind() noexcept;
  void publish_phases() noexcept;

  /// Phase-total publication cadence, in slices. The hot path must not
  /// touch atomics (a relaxed RMW is ~7ns and a boundary fires ~30 times
  /// per transition); plain accumulators plus a strided 9-store publish
  /// keep the boundary at roughly the cost of the TSC read.
  static constexpr std::uint32_t kPublishStride = 256;

  // Owner-thread-only hot state.
  Phase current_{Phase::kOther};
  std::uint64_t phase_start_tick_{0};
  double ns_per_tick_{1.0};
  std::uint64_t epoch_tick_{0};
  std::uint32_t slices_since_publish_{0};
  std::array<PhaseStat, kPhaseCount> local_{};
  FlightRing ring_;
  std::size_t id_{0};

  // Reporter-visible state (relaxed atomics).
  std::array<std::atomic<std::uint64_t>, kPhaseCount> pub_ns_{};
  std::atomic<std::uint64_t> transitions_{0};
  std::atomic<std::uint64_t> unique_{0};
  std::atomic<std::uint64_t> revisits_{0};
  std::atomic<std::uint64_t> quiescent_{0};
  std::atomic<std::uint64_t> wall_ns_{0};     // completed bindings
  std::atomic<std::uint64_t> bind_ns_{0};     // epoch-ns of the live bind
  std::atomic<bool> bound_{false};
};

/// The telemetry context of one search: per-worker slots, shared gauges
/// the drivers publish at poll points, and resumed-counter bases so a
/// resumed run's stream continues the uninterrupted totals.
class Telemetry {
 public:
  explicit Telemetry(std::size_t workers);

  [[nodiscard]] std::size_t workers() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] WorkerTelemetry& worker(std::size_t i) noexcept {
    return *slots_[i];
  }
  [[nodiscard]] const WorkerTelemetry& worker(std::size_t i) const noexcept {
    return *slots_[i];
  }

  /// The slot bound to the calling thread, or nullptr when telemetry is
  /// off / the thread is unbound. The single branch every instrumentation
  /// point pays when telemetry is disabled.
  [[nodiscard]] static WorkerTelemetry* current() noexcept { return tls_; }

  /// RAII thread→slot binding. A null Telemetry binds nothing (and makes
  /// every scope in the dynamic extent a no-op). Restores the previous
  /// binding on destruction, so nested searches compose.
  class Binding {
   public:
    Binding(Telemetry* t, std::size_t worker) noexcept;
    ~Binding();
    Binding(const Binding&) = delete;
    Binding& operator=(const Binding&) = delete;

   private:
    WorkerTelemetry* prev_{nullptr};
    WorkerTelemetry* slot_{nullptr};
  };

  /// Resumed-run seed totals (counted into totals() alongside the slot
  /// counters, so a resumed run's stream continues where it left off).
  void set_base(std::uint64_t transitions, std::uint64_t unique,
                std::uint64_t revisits, std::uint64_t quiescent) noexcept;

  /// Shared gauges, published by the drivers at their poll/quiesce points
  /// (never computed on the hot path).
  std::atomic<std::uint64_t> frontier{0};
  std::atomic<std::uint64_t> engine_bytes{0};
  std::atomic<std::uint64_t> memo_fp_hits{0};
  std::atomic<std::uint64_t> memo_fp_misses{0};
  std::atomic<std::uint64_t> memo_disc_hits{0};
  std::atomic<std::uint64_t> memo_disc_misses{0};
  std::atomic<std::uint64_t> wakeup_replays{0};
  std::atomic<std::uint64_t> wakeup_woken{0};

  struct Totals {
    std::uint64_t transitions{0};
    std::uint64_t unique_states{0};
    std::uint64_t revisits{0};
    std::uint64_t quiescent_states{0};
    std::uint64_t wall_ns{0};  // summed bound wall time across workers
    std::uint64_t idle_ns{0};
  };
  [[nodiscard]] Totals totals() const noexcept;
  /// Exact merged phase profile — halt-time only (plain per-worker fields;
  /// requires owner-thread, post-flush, or post-join reads).
  [[nodiscard]] std::array<PhaseStat, kPhaseCount> merged_phases() const;
  /// Reporter-safe merged phase totals (published atomic mirrors only).
  [[nodiscard]] std::array<std::uint64_t, kPhaseCount> published_phase_ns()
      const noexcept;
  /// Flight events of every worker merged, oldest first.
  [[nodiscard]] std::vector<FlightEvent> merged_flight() const;

  [[nodiscard]] double ns_per_tick() const noexcept { return ns_per_tick_; }
  /// Nanoseconds since this Telemetry was constructed.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

 private:
  static thread_local WorkerTelemetry* tls_;

  std::vector<std::unique_ptr<WorkerTelemetry>> slots_;
  double ns_per_tick_{1.0};
  std::uint64_t epoch_tick_{0};
  // Relaxed atomics: set_base() runs on the driver thread after a resume
  // restore, by which point the reporter thread may already be summing
  // totals(). Cold (once per run), so the atomic costs nothing.
  std::atomic<std::uint64_t> base_transitions_{0};
  std::atomic<std::uint64_t> base_unique_{0};
  std::atomic<std::uint64_t> base_revisits_{0};
  std::atomic<std::uint64_t> base_quiescent_{0};
};

/// Scoped phase attribution. Reads the thread-local slot once; when no
/// slot is bound (telemetry off) the constructor is a branch and nothing
/// else. Nested scopes *slice*: the inner phase's time is subtracted from
/// the outer's, so per-phase totals always sum to the bound wall time.
class PhaseScope {
 public:
  explicit PhaseScope(Phase p) noexcept : w_(Telemetry::current()) {
    if (w_ != nullptr) prev_ = w_->switch_phase(p);
  }
  ~PhaseScope() {
    if (w_ != nullptr) (void)w_->switch_phase(prev_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  WorkerTelemetry* w_;
  Phase prev_{Phase::kOther};
};

/// ---- Progress streaming ---------------------------------------------------

/// One line of the NDJSON progress stream. Counters are cumulative over
/// the logical run (resume-seeded), so a kill-and-resume stream stays
/// monotone; rates and phase times describe the current process's run.
struct ProgressSnapshot {
  std::string event{"progress"};  // "progress" | "halt"
  std::string reason;             // halt lines: the LimitReason name
  std::uint64_t seq{0};
  double elapsed_seconds{0.0};
  std::uint64_t workers{0};
  std::uint64_t transitions{0};
  std::uint64_t unique_states{0};
  std::uint64_t revisits{0};
  std::uint64_t quiescent_states{0};
  std::uint64_t frontier{0};
  double transitions_per_sec{0.0};  // since the previous snapshot
  double unique_per_sec{0.0};
  double utilization{0.0};  // 1 - idle/wall across workers, in [0, 1]
  double memo_footprint_hit_rate{0.0};
  double memo_discover_hit_rate{0.0};
  std::uint64_t wakeup_replays{0};
  std::uint64_t wakeup_woken{0};
  std::uint64_t engine_bytes{0};
  std::uint64_t peak_rss_bytes{0};
  std::array<std::uint64_t, kPhaseCount> phase_ns{};

  /// One NDJSON line, newline-terminated.
  [[nodiscard]] std::string to_ndjson() const;
  /// Exact inverse of to_ndjson for this schema (not a general JSON
  /// parser). Returns false on any missing/malformed field.
  [[nodiscard]] static bool parse(std::string_view line,
                                  ProgressSnapshot& out);
};

/// Background reporter thread: every `interval_seconds` it snapshots the
/// Telemetry (relaxed reads only — it never blocks a worker), appends an
/// NDJSON line to `path`, and optionally repaints a one-line TTY summary
/// on stderr. stop() emits a final "halt" line carrying the limit reason.
class ProgressReporter {
 public:
  struct Options {
    std::string path;  // empty = no file (TTY only)
    double interval_seconds{1.0};
    bool tty{false};
    /// Append to an existing stream (resumed runs): the sequence number
    /// continues from the lines already present.
    bool append{false};
  };

  ProgressReporter(Telemetry& telemetry, Options options);
  ~ProgressReporter();

  /// Open the stream and start the reporter thread. Returns false (no
  /// thread started) when the file cannot be opened.
  bool start();
  /// Emit the final snapshot (event="halt", reason=`halt_reason`), stop
  /// and join the reporter thread. Idempotent.
  void stop(const char* halt_reason);

  [[nodiscard]] std::uint64_t snapshots_emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  [[nodiscard]] ProgressSnapshot make_snapshot();
  void emit(const ProgressSnapshot& snap);

  Telemetry& telemetry_;
  Options options_;
  std::FILE* file_{nullptr};
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_{false};
  bool started_{false};
  std::uint64_t seq_{0};
  std::atomic<std::uint64_t> emitted_{0};
  // Previous-snapshot state for rate computation.
  double prev_elapsed_{0.0};
  std::uint64_t prev_transitions_{0};
  std::uint64_t prev_unique_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace nicemc::util

#endif  // NICE_UTIL_TELEMETRY_H
