#include "util/ser.h"

// Ser is header-only; this TU anchors the library target.
namespace nicemc::util {}
