// Hashing utilities used for state matching in the model checker.
//
// The paper (Section 6, "Model checker details") matches states by hashing a
// canonical serialization of the whole system state (Python cPickle + hash).
// We use 128-bit FNV-1a over the canonical byte serialization produced by
// util/ser.h, which makes accidental collisions negligible for the state
// counts involved (< 2^26 states in the largest experiment).
#ifndef NICE_UTIL_HASH_H
#define NICE_UTIL_HASH_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>

namespace nicemc::util {

/// 128-bit hash value (two independent 64-bit FNV-1a streams with distinct
/// offset bases). Comparable and usable as a key in ordered/unordered maps.
struct Hash128 {
  std::uint64_t lo{0};
  std::uint64_t hi{0};

  friend bool operator==(const Hash128&, const Hash128&) = default;
  friend auto operator<=>(const Hash128&, const Hash128&) = default;
};

/// FNV-1a over a byte span, 64-bit, with a configurable offset basis so the
/// two halves of Hash128 are decorrelated.
std::uint64_t fnv1a64(std::span<const std::byte> bytes,
                      std::uint64_t basis = 0xcbf29ce484222325ULL) noexcept;

/// 128-bit hash of a byte span.
Hash128 hash128(std::span<const std::byte> bytes) noexcept;

/// Boost-style combiner for incremental 64-bit hashing.
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t v) noexcept {
  // splitmix64 finalizer on v, xor-rotated into seed.
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Fold a component's 128-bit hash into a running 128-bit combined hash.
/// The two 64-bit streams stay independent (lo combines with lo, hi with
/// hi), mirroring how hash128() derives them from distinct FNV bases. Order
/// sensitive: combining [a, b] and [b, a] gives different results.
constexpr Hash128 hash128_combine(const Hash128& seed,
                                  const Hash128& v) noexcept {
  return Hash128{hash_combine(seed.lo, v.lo), hash_combine(seed.hi, v.hi)};
}

/// Fold a plain integer (a count, a counter) into a combined 128-bit hash.
constexpr Hash128 hash128_combine(const Hash128& seed,
                                  std::uint64_t v) noexcept {
  // Offset the hi stream so the two halves see decorrelated inputs.
  return Hash128{hash_combine(seed.lo, v),
                 hash_combine(seed.hi, v + 0x9e3779b97f4a7c15ULL)};
}

/// Transparent hasher for unordered containers keyed by std::string: lets
/// lookups probe with a string_view without materializing a std::string
/// (pair with std::equal_to<> as KeyEqual). Used by the byte-keyed
/// lock-striped stores (CollapseTable, por::SleepStore).
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Deterministic, seedable PRNG (splitmix64). Used for random-walk search;
/// never std::rand, so runs are reproducible from the seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// The raw generator state — checkpointable: restoring it reproduces
  /// the exact remaining output sequence.
  [[nodiscard]] constexpr std::uint64_t state() const noexcept {
    return state_;
  }
  constexpr void set_state(std::uint64_t s) noexcept { state_ = s; }

 private:
  std::uint64_t state_;
};

}  // namespace nicemc::util

template <>
struct std::hash<nicemc::util::Hash128> {
  std::size_t operator()(const nicemc::util::Hash128& h) const noexcept {
    return static_cast<std::size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
  }
};

#endif  // NICE_UTIL_HASH_H
