// Copy-on-write component snapshots with memoized canonical forms.
//
// Snap<T> holds one model component (a switch, a host state, the controller
// state, a property-monitor state) behind a shared pointer. Copying a Snap
// shares the underlying snapshot — this is what makes SystemState::clone()
// O(#components) pointer copies — and mut() is the explicit mutate-on-write
// accessor: it deep-copies the component only when the snapshot is shared
// with another state, and always drops the snapshot's memoized forms.
//
// Each snapshot lazily memoizes its canonical serialization (bytes + their
// 128-bit hash, one slot per canonical/raw flag). Because the memo lives on
// the *shared* node, a child state that did not touch a component reuses the
// bytes and hash its parent already computed — remember() re-hashes only
// what the transition changed.
//
// Thread-safety contract (matches the search engine's publication order):
// a snapshot shared between threads is immutable — mut() may only be called
// while the owning SystemState is not yet published to other workers. Lazy
// form computation on a shared node is internally synchronized, so two
// workers serializing states that share a parent's component race safely.
#ifndef NICE_UTIL_SNAP_H
#define NICE_UTIL_SNAP_H

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/collapse.h"
#include "util/hash.h"
#include "util/ser.h"

namespace nicemc::util {

/// One memoized serialization of a component: the canonical bytes and the
/// 128-bit hash of exactly those bytes.
struct CanonForm {
  std::string bytes;
  Hash128 hash;
};

template <typename T>
class Snap {
 public:
  Snap() : node_(std::make_shared<Node>()) {}
  explicit Snap(T value) : node_(std::make_shared<Node>(std::move(value))) {}

  // Copying shares the snapshot (copy-on-write); moving transfers it.
  Snap(const Snap&) = default;
  Snap& operator=(const Snap&) = default;
  Snap(Snap&&) noexcept = default;
  Snap& operator=(Snap&&) noexcept = default;

  /// Read access — never copies.
  [[nodiscard]] const T& get() const noexcept { return node_->value; }
  [[nodiscard]] const T& operator*() const noexcept { return node_->value; }
  [[nodiscard]] const T* operator->() const noexcept {
    return &node_->value;
  }

  /// Explicit mutate-on-write accessor. Deep-copies the component iff the
  /// snapshot is shared with another Snap; always invalidates the memoized
  /// forms. The returned reference stays valid (no further reallocation)
  /// until this Snap is copied and mut() is called again.
  [[nodiscard]] T& mut() {
    if (node_.use_count() == 1) {
      node_->reset_forms();
      return node_->value;
    }
    node_ = std::make_shared<Node>(node_->value);
    return node_->value;
  }

  /// True when this snapshot is shared with at least one other Snap.
  [[nodiscard]] bool is_shared() const noexcept {
    return node_.use_count() > 1;
  }
  /// True when two Snaps alias the identical snapshot (test hook).
  [[nodiscard]] bool same_snapshot(const Snap& o) const noexcept {
    return node_ == o.node_;
  }

  /// The component's serialization in the requested form (bytes + hash),
  /// memoized on the shared snapshot. Only full-state mode and trace
  /// output need the bytes — hash-mode searches should use form_hash(),
  /// which does not pin a copy of the serialization on every live state.
  [[nodiscard]] const CanonForm& form(bool canonical) const {
    Node& n = *node_;
    std::lock_guard<std::mutex> lock(n.mu);
    std::optional<CanonForm>& slot = n.form[canonical ? 1 : 0];
    if (!slot) {
      Ser s;
      serialize_value(n, s, canonical);
      CanonForm cf;
      cf.hash = s.hash();
      cf.bytes = s.take();
      slot.emplace(std::move(cf));
    }
    return *slot;
  }

  /// Memoized hash of the component's serialization. Unlike form(), this
  /// retains only the 16-byte hash: the bytes pass through a per-thread
  /// scratch buffer, so the default hash-mode search stores no component
  /// serializations at all (Section 6's computation-for-memory trade).
  [[nodiscard]] Hash128 form_hash(bool canonical) const {
    Node& n = *node_;
    std::lock_guard<std::mutex> lock(n.mu);
    const int i = canonical ? 1 : 0;
    if (n.form[i]) return n.form[i]->hash;
    std::optional<Hash128>& slot = n.hash_only[i];
    if (!slot) {
      thread_local Ser scratch;  // clear() keeps capacity across calls
      scratch.clear();
      serialize_value(n, scratch, canonical);
      slot = scratch.hash();
    }
    return *slot;
  }

  /// Intern the component's serialization in `table` (COLLAPSE mode) and
  /// return the assigned blob id, memoized per (table, form) on the shared
  /// snapshot. Serializes and interns in one pass: like form_hash(), the
  /// bytes go through a per-thread scratch buffer and are never pinned on
  /// the snapshot — a collapsed-mode search retains one copy of each
  /// *distinct* blob in the table, not one per live state. The component's
  /// form hash is memoized as a side effect, so a SystemState::hash() that
  /// follows a collapse is free.
  ///
  /// Components whose sections vary semi-independently (e.g. of::Switch:
  /// flow table × queues × buffer) expose `kSerializeParts` +
  /// `serialize_parts(Ser&, canonical, bounds)` and get two-level
  /// COLLAPSE: each section is interned separately and the component's id
  /// is the id of its packed part-id tuple — the table then stores the
  /// sum of the per-part variants, not their product. Soundness is
  /// unchanged: the parts' concatenation is byte-identical to
  /// serialize(), every part is length-prefixed/tag-structured
  /// (prefix-unambiguous), and one scheme is used per type, so id
  /// equality ⇔ component-bytes equality still holds.
  [[nodiscard]] std::uint32_t form_id(bool canonical,
                                      CollapseTable& table) const {
    Node& n = *node_;
    std::lock_guard<std::mutex> lock(n.mu);
    const int i = canonical ? 1 : 0;
    if (n.id_table[i] == &table && n.id_epoch[i] == table.epoch()) {
      return n.id[i];
    }
    std::uint32_t id;
    if constexpr (requires(const T& t, Ser& out, std::size_t* b) {
                    { T::kSerializeParts } -> std::convertible_to<std::size_t>;
                    t.serialize_parts(out, canonical, b);
                  }) {
      thread_local Ser scratch;  // clear() keeps capacity across calls
      scratch.clear();
      if constexpr (requires(const T& t) { t.serialized_size_hint(); }) {
        scratch.reserve(n.value.serialized_size_hint());
      }
      // Serialize every part into one buffer (their concatenation is the
      // component's canonical serialization — memoize its hash), then
      // intern each slice and the packed part-id tuple.
      std::size_t bounds[T::kSerializeParts + 1];
      n.value.serialize_parts(scratch, canonical, bounds);
      if (!n.hash_only[i]) n.hash_only[i] = scratch.hash();
      const auto bytes = scratch.bytes();
      char tuple[4 * T::kSerializeParts];
      for (std::size_t p = 0; p < T::kSerializeParts; ++p) {
        const auto slice = bytes.subspan(bounds[p], bounds[p + 1] - bounds[p]);
        const std::uint32_t pid = table.intern(
            std::string_view(reinterpret_cast<const char*>(slice.data()),
                             slice.size()));
        tuple[4 * p] = static_cast<char>(pid >> 24);
        tuple[4 * p + 1] = static_cast<char>(pid >> 16);
        tuple[4 * p + 2] = static_cast<char>(pid >> 8);
        tuple[4 * p + 3] = static_cast<char>(pid);
      }
      id = table.intern(std::string_view(tuple, sizeof(tuple)));
    } else if (n.form[i]) {
      id = table.intern(n.form[i]->bytes);
    } else {
      thread_local Ser scratch;  // clear() keeps capacity across calls
      scratch.clear();
      serialize_value(n, scratch, canonical);
      if (!n.hash_only[i]) n.hash_only[i] = scratch.hash();
      const auto bytes = scratch.bytes();
      id = table.intern(
          std::string_view(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size()));
    }
    n.id_table[i] = &table;
    n.id_epoch[i] = table.epoch();
    n.id[i] = id;
    return id;
  }

  /// Memoized hash of an arbitrary projection of the component (e.g. the
  /// controller's app-only hash used as the discovery-cache key). The
  /// caller must pass the same projection on every call for a given T.
  template <typename F>
  [[nodiscard]] Hash128 projection_hash(F&& compute) const {
    Node& n = *node_;
    std::lock_guard<std::mutex> lock(n.mu);
    if (!n.aux) n.aux = compute(static_cast<const T&>(n.value));
    return *n.aux;
  }

  /// Intern an arbitrary projection of the component in `table` and return
  /// the blob id, memoized per (table, epoch) like form_id(). `emit` must
  /// serialize the same projection on every call for a given T — the memo
  /// layer uses this for the controller's app-only bytes, giving discovery
  /// a collision-proof AppState-id (id equality ⇔ projection-bytes
  /// equality) instead of a 128-bit hash.
  template <typename F>
  [[nodiscard]] std::uint32_t projection_id(CollapseTable& table,
                                            F&& emit) const {
    Node& n = *node_;
    std::lock_guard<std::mutex> lock(n.mu);
    if (n.aux_id_table == &table && n.aux_id_epoch == table.epoch()) {
      return n.aux_id;
    }
    thread_local Ser scratch;  // clear() keeps capacity across calls
    scratch.clear();
    emit(static_cast<const T&>(n.value), scratch);
    const auto bytes = scratch.bytes();
    const std::uint32_t id = table.intern(
        std::string_view(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size()));
    n.aux_id_table = &table;
    n.aux_id_epoch = table.epoch();
    n.aux_id = id;
    return id;
  }

 private:
  struct Node {
    T value;
    mutable std::mutex mu;  // guards lazy memo fill on shared snapshots
    mutable std::optional<CanonForm> form[2];   // [raw, canonical]
    mutable std::optional<Hash128> hash_only[2];  // hash without the bytes
    mutable std::optional<Hash128> aux;
    // Interned blob id per form, valid only for the (table, epoch) it was
    // interned in: differential runs intern one snapshot in several
    // tables, and a clear()ed table restarts its id space.
    mutable const CollapseTable* id_table[2]{nullptr, nullptr};
    mutable std::uint64_t id_epoch[2]{0, 0};
    mutable std::uint32_t id[2]{0, 0};
    // Interned projection id (projection_id), same (table, epoch) rules.
    mutable const CollapseTable* aux_id_table{nullptr};
    mutable std::uint64_t aux_id_epoch{0};
    mutable std::uint32_t aux_id{0};

    Node() = default;
    explicit Node(const T& v) : value(v) {}
    explicit Node(T&& v) : value(std::move(v)) {}
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    // Only legal while the node is uniquely owned (no concurrent readers).
    void reset_forms() {
      form[0].reset();
      form[1].reset();
      hash_only[0].reset();
      hash_only[1].reset();
      aux.reset();
      id_table[0] = nullptr;
      id_table[1] = nullptr;
      aux_id_table = nullptr;
    }
  };

  // Serialize n.value into s (caller holds n.mu). Dispatches to
  // `serialize(Ser&, bool canonical)` when the component distinguishes
  // forms, else to `serialize(Ser&)`.
  static void serialize_value(const Node& n, Ser& s, bool canonical) {
    if constexpr (requires(const T& t) { t.serialized_size_hint(); }) {
      s.reserve(n.value.serialized_size_hint());
    }
    if constexpr (requires(const T& t, Ser& out) {
                    t.serialize(out, canonical);
                  }) {
      n.value.serialize(s, canonical);
    } else {
      n.value.serialize(s);
    }
  }

  std::shared_ptr<Node> node_;
};

/// Lightweight iterable view over a vector of Snaps that yields `const T&`,
/// so read loops look like loops over plain components.
template <typename T>
class SnapListView {
 public:
  using Storage = std::vector<Snap<T>>;

  explicit SnapListView(const Storage& v) noexcept : v_(&v) {}

  class iterator {
   public:
    explicit iterator(const Snap<T>* p) noexcept : p_(p) {}
    const T& operator*() const noexcept { return p_->get(); }
    const T* operator->() const noexcept { return &p_->get(); }
    iterator& operator++() noexcept {
      ++p_;
      return *this;
    }
    friend bool operator==(iterator a, iterator b) noexcept {
      return a.p_ == b.p_;
    }

   private:
    const Snap<T>* p_;
  };

  [[nodiscard]] iterator begin() const noexcept {
    return iterator(v_->data());
  }
  [[nodiscard]] iterator end() const noexcept {
    return iterator(v_->data() + v_->size());
  }
  [[nodiscard]] std::size_t size() const noexcept { return v_->size(); }
  [[nodiscard]] bool empty() const noexcept { return v_->empty(); }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return (*v_)[i].get();
  }

 private:
  const Storage* v_;
};

}  // namespace nicemc::util

#endif  // NICE_UTIL_SNAP_H
