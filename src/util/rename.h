// Identifier renaming for symmetry canonicalization (mc/sym_reduce.h).
//
// The symmetry layer canonicalizes a state by serializing the *renamed*
// state: MACs, IPs, host ids, attach ports and flow ids of interchangeable
// hosts are mapped onto a canonical orbit slot, and packet uids are
// renumbered densely in order of first appearance. Rather than clone and
// rewrite every component, the canonicalizer installs a thread-local
// Renamer and re-runs the ordinary serializers: every serializer that
// writes a packet-visible identifier funnels it through the rn_* helpers
// below, which are identity (and branch-predictable no-ops) when no
// renamer is active — the normal hashing/collapse hot path pays one
// thread-local load per serializer body, nothing more.
//
// Port numbers are per-switch names, so the port map is keyed on
// (switch << 32 | port) and serializers that write ports without an
// explicit switch id (rules, OpenFlow messages, host attach ports) rely on
// a "current switch" context set by the enclosing component via SwScope.
//
// Uid renumbering is two-pass (see sym_reduce.cpp): a kAssign pass walks
// the serialization order once, handing out dense uids at first
// appearance; containers *keyed* on uids cannot know their sorted
// position until the map is complete, so they register their keys with
// note_uid() and emit in raw order during the assign pass. finalize_uids()
// then maps any still-unseen registered uids, and a kFrozen pass produces
// the final byte form with uid-keyed containers sorted by renamed uid.
#ifndef NICE_UTIL_RENAME_H
#define NICE_UTIL_RENAME_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace nicemc::util {

class Renamer {
 public:
  enum class UidMode : std::uint8_t {
    kKeep,    // uids pass through unchanged
    kElide,   // uids serialize as 0 (signature passes: allocation-neutral)
    kAssign,  // dense renumbering, assigned at first appearance
    kFrozen,  // dense renumbering, map complete — misses pass through
  };

  std::map<std::uint64_t, std::uint64_t> mac;
  std::map<std::uint64_t, std::uint64_t> ip;
  std::map<std::uint32_t, std::uint32_t> host;
  std::map<std::uint32_t, std::uint32_t> flow;
  /// Ports are per-switch names: keyed (switch << 32 | port).
  std::map<std::uint64_t, std::uint32_t> port;

  UidMode uid_mode{UidMode::kKeep};

  /// Current-switch context for serializers that write port numbers
  /// without an explicit switch id (set via SwScope by the enclosing
  /// switch / host / controller-command serializer).
  std::uint32_t cur_sw{0xffffffffu};

  [[nodiscard]] std::uint64_t r_mac(std::uint64_t m) const {
    const auto it = mac.find(m);
    return it == mac.end() ? m : it->second;
  }
  [[nodiscard]] std::uint64_t r_ip(std::uint64_t i) const {
    const auto it = ip.find(i);
    return it == ip.end() ? i : it->second;
  }
  [[nodiscard]] std::uint32_t r_host(std::uint32_t h) const {
    const auto it = host.find(h);
    return it == host.end() ? h : it->second;
  }
  [[nodiscard]] std::uint32_t r_flow(std::uint32_t f) const {
    const auto it = flow.find(f);
    return it == flow.end() ? f : it->second;
  }
  [[nodiscard]] std::uint32_t r_port(std::uint32_t sw, std::uint32_t p) const {
    const auto it = port.find((static_cast<std::uint64_t>(sw) << 32) | p);
    return it == port.end() ? p : it->second;
  }
  [[nodiscard]] std::uint32_t r_port_cur(std::uint32_t p) const {
    return r_port(cur_sw, p);
  }

  /// Renamed uid under the active mode. kAssign allocates on first sight;
  /// uid 0 ("no uid") is always preserved.
  [[nodiscard]] std::uint32_t r_uid(std::uint32_t u) const {
    switch (uid_mode) {
      case UidMode::kKeep:
        return u;
      case UidMode::kElide:
        return 0;
      case UidMode::kAssign: {
        if (u == 0) return 0;
        const auto [it, inserted] = uid_.try_emplace(u, next_dense_uid_);
        if (inserted) ++next_dense_uid_;
        return it->second;
      }
      case UidMode::kFrozen: {
        const auto it = uid_.find(u);
        return it == uid_.end() ? u : it->second;
      }
    }
    return u;
  }

  /// Register a uid that keys a container (order-sensitive emission is
  /// deferred to the frozen pass). Assignments happen in finalize_uids()
  /// for uids that never appear as packet fields.
  void note_uid(std::uint32_t u) const {
    if (uid_mode == UidMode::kAssign && u != 0) deferred_uids_.push_back(u);
  }

  /// After the assign pass: map any registered-but-unassigned uids, in
  /// ascending original order (a canonicality heuristic, not a soundness
  /// requirement — the map just has to be a permutation).
  void finalize_uids() {
    std::sort(deferred_uids_.begin(), deferred_uids_.end());
    for (const std::uint32_t u : deferred_uids_) {
      const auto [it, inserted] = uid_.try_emplace(u, next_dense_uid_);
      if (inserted) ++next_dense_uid_;
    }
    deferred_uids_.clear();
  }

  [[nodiscard]] std::uint32_t uids_assigned() const {
    return next_dense_uid_ - 1;
  }

  void reset_uids() {
    uid_.clear();
    deferred_uids_.clear();
    next_dense_uid_ = 1;
  }

  /// The thread's active renamer, or nullptr outside a canonicalization
  /// pass (the common case: plain hashing, collapse, checkpointing).
  [[nodiscard]] static const Renamer* active() noexcept { return tls_; }

  /// RAII activation. Not nestable (the canonicalizer is the only user).
  class Scope {
   public:
    explicit Scope(const Renamer* r) noexcept { tls_ = r; }
    ~Scope() { tls_ = nullptr; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

  /// RAII current-switch context (no-op when no renamer is active).
  class SwScope {
   public:
    explicit SwScope(std::uint32_t sw) noexcept {
      if (tls_ != nullptr) {
        prev_ = tls_->cur_sw;
        const_cast<Renamer*>(tls_)->cur_sw = sw;
      }
    }
    ~SwScope() {
      if (tls_ != nullptr) const_cast<Renamer*>(tls_)->cur_sw = prev_;
    }
    SwScope(const SwScope&) = delete;
    SwScope& operator=(const SwScope&) = delete;

   private:
    std::uint32_t prev_{0xffffffffu};
  };

 private:
  // Uid state is logically part of serialization *output*, so the const
  // serializers can grow it through a const Renamer*.
  mutable std::map<std::uint32_t, std::uint32_t> uid_;
  mutable std::vector<std::uint32_t> deferred_uids_;
  mutable std::uint32_t next_dense_uid_{1};

  static inline thread_local const Renamer* tls_ = nullptr;
};

// --- Serializer-side helpers: identity when no renamer is active. ---

[[nodiscard]] inline std::uint64_t rn_mac(const Renamer* r, std::uint64_t m) {
  return r == nullptr ? m : r->r_mac(m);
}
[[nodiscard]] inline std::uint64_t rn_ip(const Renamer* r, std::uint64_t i) {
  return r == nullptr ? i : r->r_ip(i);
}
[[nodiscard]] inline std::uint32_t rn_host(const Renamer* r, std::uint32_t h) {
  return r == nullptr ? h : r->r_host(h);
}
[[nodiscard]] inline std::uint32_t rn_flow(const Renamer* r, std::uint32_t f) {
  return r == nullptr ? f : r->r_flow(f);
}
[[nodiscard]] inline std::uint32_t rn_port(const Renamer* r, std::uint32_t sw,
                                           std::uint32_t p) {
  return r == nullptr ? p : r->r_port(sw, p);
}
[[nodiscard]] inline std::uint32_t rn_port_cur(const Renamer* r,
                                               std::uint32_t p) {
  return r == nullptr ? p : r->r_port_cur(p);
}
[[nodiscard]] inline std::uint32_t rn_uid(const Renamer* r, std::uint32_t u) {
  return r == nullptr ? u : r->r_uid(u);
}

/// True while a uid-keyed container must defer its sorted emission: the
/// assign pass registers keys (note_uid) and emits raw order; the frozen
/// pass emits sorted by renamed uid.
[[nodiscard]] inline bool rn_uid_assigning(const Renamer* r) {
  return r != nullptr && r->uid_mode == Renamer::UidMode::kAssign;
}
[[nodiscard]] inline bool rn_uid_renumbering(const Renamer* r) {
  return r != nullptr && (r->uid_mode == Renamer::UidMode::kAssign ||
                          r->uid_mode == Renamer::UidMode::kFrozen ||
                          r->uid_mode == Renamer::UidMode::kElide);
}

}  // namespace nicemc::util

#endif  // NICE_UTIL_RENAME_H
