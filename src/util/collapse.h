// Component-interning blob table (SPIN's COLLAPSE compression).
//
// Full-state search stores the canonical serialization of every unique
// state, but consecutive states share almost all of their bytes: a
// transition touches one or two components, and the copy-on-write state
// pipeline (util/snap.h) already memoizes each component's canonical form
// on its shared snapshot. CollapseTable exploits exactly that structure:
// each distinct component blob is stored once and mapped to a stable,
// dense 32-bit id, so a state can be remembered as the fixed-width tuple
// of its component ids instead of the concatenated blobs.
//
// The interning contract — id equality ⇔ blob equality — is by
// construction (the blob itself is the map key), so an id tuple is a
// collision-proof state key, exactly like the full blob and unlike a
// 128-bit hash. The table is lock-striped with the same ShardSelect
// striping as the seen-set; the id counter is a shared atomic, so ids are
// dense across shards and stable once assigned.
#ifndef NICE_UTIL_COLLAPSE_H
#define NICE_UTIL_COLLAPSE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/hash.h"
#include "util/seen_set.h"

namespace nicemc::util {

class CollapseTable {
 public:
  /// `shards` is rounded up to a power of two and clamped to [1, 1024],
  /// like the seen-set.
  explicit CollapseTable(std::size_t shards = 1);

  /// Intern `bytes` and return its id (allocating the next dense id on
  /// first sight). The shard is selected by a fast internal hash of the
  /// bytes; the bytes themselves are the key, so two distinct blobs
  /// always get distinct ids even under a hash collision.
  std::uint32_t intern(std::string_view bytes);

  /// Distinct blobs interned so far (== ids handed out; ids are dense in
  /// [0, unique_blobs())).
  [[nodiscard]] std::uint64_t unique_blobs() const noexcept {
    return next_id_.load(std::memory_order_relaxed);
  }
  /// Bytes of blob payload held by the table (one copy per distinct blob).
  [[nodiscard]] std::uint64_t interned_bytes() const;
  /// Total intern() requests (every distinct snapshot that reached the
  /// table; per-snapshot memoization in Snap::form_id dedupes upstream).
  [[nodiscard]] std::uint64_t intern_calls() const;
  /// intern_calls / unique_blobs: 1.0 = every request was a new blob,
  /// higher = more component sharing across states.
  [[nodiscard]] double dedupe_ratio() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Generation stamp: drawn from a process-wide monotonic counter at
  /// construction and re-drawn by clear(), so no two table generations —
  /// even at the same heap address — ever share an epoch. Callers that
  /// memoize ids against this table (util::Snap::form_id) key their memo
  /// on (table, epoch); ids are only stable within one epoch.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Drop every interned blob and restart ids at 0 in a new epoch. Must
  /// not race intern() (callers clear between searches, not during one).
  void clear();

  /// Checkpoint section: blob count + every blob in ascending id order,
  /// plus the intern-call counter (so dedupe statistics survive a
  /// restore). Not safe against concurrent intern() — callers quiesce
  /// first.
  void serialize(Ser& s) const;
  /// Restore a serialize() section into this (must-be-empty) table by
  /// re-interning every blob in id order — ids are dense and allocated in
  /// intern order, so each blob receives exactly the id it held when the
  /// section was written, and id tuples stored elsewhere (seen-set keys,
  /// sleep-store identities) remain valid verbatim. Returns false on a
  /// malformed section or an id mismatch.
  bool restore(Des& d);

 private:
  struct Shard {
    mutable std::mutex mu;
    // Heterogeneous lookup: intern() probes with a string_view and copies
    // the bytes only when inserting a new blob.
    std::unordered_map<std::string, std::uint32_t, TransparentStringHash,
                       std::equal_to<>>
        ids;
    std::uint64_t bytes{0};
    std::uint64_t calls{0};
  };

  [[nodiscard]] Shard& shard_of(std::string_view bytes) const {
    // One cheap hash pass selects the shard; equal bytes always land in
    // the same shard, which is all uniqueness needs.
    const std::uint64_t h = std::hash<std::string_view>{}(bytes);
    return *shards_[select_.index(Hash128{h, h})];
  }

  ShardSelect select_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint32_t> next_id_{0};
  std::atomic<std::uint64_t> epoch_;
};

}  // namespace nicemc::util

#endif  // NICE_UTIL_COLLAPSE_H
