#include "util/resource.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace nicemc::util {

std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#elif defined(__unix__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux and the BSDs report ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

}  // namespace nicemc::util
