// Canonical byte serialization for state hashing and state comparison.
//
// Every model component (flow tables, channels, host state, controller app
// state, property-monitor state) serializes itself into a Ser buffer; the
// model checker hashes the buffer to detect revisited states (paper
// Section 6). Two states are "the same" exactly when their canonical
// serializations are byte-identical, so serializers must write data in a
// canonical order (e.g. std::map iteration, canonically sorted flow tables).
//
// The buffer is std::string-backed so a finished serialization can be moved
// out with take() — straight into the full-state seen-set — without a copy,
// and so append() of a cached component form is a single memcpy.
#ifndef NICE_UTIL_SER_H
#define NICE_UTIL_SER_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace nicemc::util {

/// Append-only canonical byte buffer.
class Ser {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v >> 8));
    put_u8(static_cast<std::uint8_t>(v));
  }

  void put_u32(std::uint32_t v) {
    put_u16(static_cast<std::uint16_t>(v >> 16));
    put_u16(static_cast<std::uint16_t>(v));
  }

  void put_u64(std::uint64_t v) {
    put_u32(static_cast<std::uint32_t>(v >> 32));
    put_u32(static_cast<std::uint32_t>(v));
  }

  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Length-prefixed string (prevents ambiguity between adjacent fields).
  void put_str(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }

  /// Tag byte for discriminating variants / sections; improves hash quality
  /// and debuggability of canonical forms.
  void put_tag(char c) { put_u8(static_cast<std::uint8_t>(c)); }

  template <typename T>
  void put_vec(const std::vector<T>& v, void (*f)(Ser&, const T&)) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) f(*this, x);
  }

  /// Serialize any type that exposes `void serialize(Ser&) const`.
  template <typename T>
  void put(const T& v) {
    v.serialize(*this);
  }

  /// Ordered map of integers — iteration order of std::map is canonical.
  void put_map_u64(const std::map<std::uint64_t, std::uint64_t>& m) {
    put_u32(static_cast<std::uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      put_u64(k);
      put_u64(v);
    }
  }

  /// Bulk-append raw bytes (e.g. a memoized component serialization).
  void append(std::string_view bytes) { buf_.append(bytes); }
  void append(std::span<const std::byte> bytes) {
    buf_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }

  /// Pre-size the buffer so repeated puts do not regrow it.
  void reserve(std::size_t n) { buf_.reserve(n); }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {reinterpret_cast<const std::byte*>(buf_.data()), buf_.size()};
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] Hash128 hash() const noexcept { return hash128(bytes()); }

  /// Move the accumulated bytes out, leaving the buffer empty (and its
  /// capacity surrendered with it). The caller owns the returned string —
  /// no copy is made.
  [[nodiscard]] std::string take() noexcept {
    std::string out = std::move(buf_);
    buf_.clear();  // moved-from state is unspecified; make it empty again
    return out;
  }

  void clear() noexcept { buf_.clear(); }

 private:
  std::string buf_;
};

/// Hash any serializable object in one call.
template <typename T>
Hash128 hash_of(const T& v) {
  Ser s;
  v.serialize(s);
  return s.hash();
}

/// Bounds-checked reader over bytes produced by Ser — the inverse half of
/// the serialization layer, used by the checkpoint/restore subsystem
/// (mc/checkpoint.h). Unlike the writer, the reader must survive hostile
/// input: a truncated or bit-flipped checkpoint may present impossible
/// lengths and counts, so every read is range-checked and the first
/// failure latches `ok() == false` (subsequent reads return zero values
/// and never touch memory out of range). Callers check ok() at section
/// boundaries instead of after every field.
class Des {
 public:
  explicit Des(std::string_view bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  [[nodiscard]] std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(*p_++);
  }

  [[nodiscard]] std::uint16_t get_u16() {
    const std::uint16_t hi = get_u8();
    return static_cast<std::uint16_t>((hi << 8) | get_u8());
  }

  [[nodiscard]] std::uint32_t get_u32() {
    const std::uint32_t hi = get_u16();
    return (hi << 16) | get_u16();
  }

  [[nodiscard]] std::uint64_t get_u64() {
    const std::uint64_t hi = get_u32();
    return (hi << 32) | get_u32();
  }

  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }

  [[nodiscard]] bool get_bool() { return get_u8() != 0; }

  /// Length-prefixed string written by Ser::put_str. The returned view
  /// aliases the input buffer (no copy); empty on underflow.
  [[nodiscard]] std::string_view get_str() {
    const std::uint32_t n = get_u32();
    if (!need(n)) return {};
    const std::string_view out(p_, n);
    p_ += n;
    return out;
  }

  /// An element count about to drive a loop of elements each at least
  /// `min_elem_bytes` long. Rejects counts the remaining bytes cannot
  /// possibly satisfy, so corrupt headers can never trigger huge
  /// allocations or quadratic scans.
  [[nodiscard]] std::uint64_t get_count(std::size_t min_elem_bytes = 1) {
    const std::uint64_t n = get_u64();
    if (min_elem_bytes == 0) min_elem_bytes = 1;
    if (n > remaining() / min_elem_bytes) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True when the buffer was fully and cleanly consumed.
  [[nodiscard]] bool done() const noexcept { return ok_ && p_ == end_; }
  /// Latch a caller-detected inconsistency (bad tag, mismatched id, ...).
  void fail() noexcept { ok_ = false; }

 private:
  bool need(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      p_ = end_;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_{true};
};

}  // namespace nicemc::util

#endif  // NICE_UTIL_SER_H
