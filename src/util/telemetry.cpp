#include "util/telemetry.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdlib>

#include "util/resource.h"

namespace nicemc::util {

namespace {

/// Raw timebase read. On x86_64 the TSC is invariant and core-synchronized
/// on every CPU this project targets, and costs ~10ns against ~25ns for
/// clock_gettime — the difference is what keeps a fully instrumented
/// expand step inside the 1.05× overhead gate. Elsewhere fall back to the
/// steady clock (ticks are then nanoseconds and calibration is identity).
inline std::uint64_t read_ticks() noexcept {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Nanoseconds per tick, measured once per Telemetry over a short busy
/// window. 200µs keeps construction cheap while bounding the calibration
/// error well under 1%.
double calibrate_ns_per_tick() noexcept {
#if defined(__x86_64__)
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t k0 = read_ticks();
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const auto el =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - t0)
            .count();
    if (el >= 200'000) {
      const std::uint64_t k1 = read_ticks();
      if (k1 <= k0) return 1.0;  // non-monotone TSC: degrade gracefully
      return static_cast<double>(el) / static_cast<double>(k1 - k0);
    }
  }
#else
  return 1.0;
#endif
}

inline std::size_t log2_bucket(std::uint64_t ns) noexcept {
  const std::size_t b =
      static_cast<std::size_t>(std::bit_width(ns | 1) - 1);
  return b < PhaseStat::kBuckets ? b : PhaseStat::kBuckets - 1;
}

}  // namespace

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kClone: return "clone";
    case Phase::kApply: return "apply";
    case Phase::kEnabled: return "enabled";
    case Phase::kFootprint: return "footprint";
    case Phase::kPropertyCheck: return "property_check";
    case Phase::kRemember: return "remember";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kIdle: return "idle";
    case Phase::kOther: return "other";
  }
  return "?";
}

void PhaseStat::merge(const PhaseStat& o) noexcept {
  count += o.count;
  total_ns += o.total_ns;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
}

std::vector<FlightEvent> FlightRing::events() const {
  std::vector<FlightEvent> out;
  const std::uint64_t n = seq_ < kSize ? seq_ : kSize;
  out.reserve(n);
  const std::uint64_t first = seq_ - n;
  for (std::uint64_t s = first; s < seq_; ++s) {
    out.push_back(ring_[s % kSize]);
  }
  return out;
}

// ---- WorkerTelemetry --------------------------------------------------------

Phase WorkerTelemetry::switch_phase(Phase p) noexcept {
  const std::uint64_t now = read_ticks();
  const std::uint64_t dt = now - phase_start_tick_;
  const auto ns =
      static_cast<std::uint64_t>(static_cast<double>(dt) * ns_per_tick_);
  // Plain owner-only accumulation: the boundary costs the TSC read plus a
  // handful of arithmetic ops, no atomics (see kPublishStride).
  PhaseStat& ph = local_[static_cast<std::size_t>(current_)];
  ph.count += 1;
  ph.total_ns += ns;
  ph.buckets[log2_bucket(ns)] += 1;
  const Phase prev = current_;
  current_ = p;
  phase_start_tick_ = now;
  // The ≥1ms clause keeps rare long slices (idle waits, checkpoint
  // writes) visible to the reporter without waiting out the stride.
  if (++slices_since_publish_ >= kPublishStride || ns >= 1000000) {
    publish_phases();
  }
  return prev;
}

void WorkerTelemetry::publish_phases() noexcept {
  slices_since_publish_ = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    pub_ns_[p].store(local_[p].total_ns, std::memory_order_relaxed);
  }
}

void WorkerTelemetry::record_expand(std::uint32_t kind, std::uint32_t actor,
                                    std::uint32_t aux) noexcept {
  FlightEvent e;
  e.kind = FlightEvent::Kind::kExpand;
  e.a = kind;
  e.b = actor;
  e.c = aux;
  e.t_ns = static_cast<std::uint64_t>(
      static_cast<double>(read_ticks() - epoch_tick_) * ns_per_tick_);
  ring_.push(e);
}

void WorkerTelemetry::record_event(FlightEvent::Kind kind,
                                   std::uint64_t value,
                                   const char* detail) noexcept {
  FlightEvent e;
  e.kind = kind;
  e.value = value;
  e.detail = detail;
  e.t_ns = static_cast<std::uint64_t>(
      static_cast<double>(read_ticks() - epoch_tick_) * ns_per_tick_);
  ring_.push(e);
}

PhaseStat WorkerTelemetry::phase(Phase p) const noexcept {
  return local_[static_cast<std::size_t>(p)];
}

std::uint64_t WorkerTelemetry::wall_ns() const noexcept {
  std::uint64_t ns = wall_ns_.load(std::memory_order_relaxed);
  if (bound_.load(std::memory_order_relaxed)) {
    const std::uint64_t now_ns = static_cast<std::uint64_t>(
        static_cast<double>(read_ticks() - epoch_tick_) * ns_per_tick_);
    const std::uint64_t bind = bind_ns_.load(std::memory_order_relaxed);
    if (now_ns > bind) ns += now_ns - bind;
  }
  return ns;
}

void WorkerTelemetry::flush_if_current() noexcept {
  if (Telemetry::current() == this) {
    (void)switch_phase(current_);
    publish_phases();
  }
}

void WorkerTelemetry::bind() noexcept {
  const std::uint64_t now = read_ticks();
  phase_start_tick_ = now;
  current_ = Phase::kOther;
  bind_ns_.store(
      static_cast<std::uint64_t>(static_cast<double>(now - epoch_tick_) *
                                 ns_per_tick_),
      std::memory_order_relaxed);
  bound_.store(true, std::memory_order_relaxed);
}

void WorkerTelemetry::unbind() noexcept {
  // Close the live phase slice so phase totals equal the bound wall time.
  (void)switch_phase(Phase::kOther);
  publish_phases();
  const std::uint64_t now_ns = static_cast<std::uint64_t>(
      static_cast<double>(read_ticks() - epoch_tick_) * ns_per_tick_);
  const std::uint64_t bind = bind_ns_.load(std::memory_order_relaxed);
  if (now_ns > bind) {
    wall_ns_.fetch_add(now_ns - bind, std::memory_order_relaxed);
  }
  bound_.store(false, std::memory_order_relaxed);
}

// ---- Telemetry --------------------------------------------------------------

thread_local WorkerTelemetry* Telemetry::tls_ = nullptr;

Telemetry::Telemetry(std::size_t workers) {
  ns_per_tick_ = calibrate_ns_per_tick();
  epoch_tick_ = read_ticks();
  if (workers == 0) workers = 1;
  slots_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    auto w = std::make_unique<WorkerTelemetry>();
    w->ns_per_tick_ = ns_per_tick_;
    w->epoch_tick_ = epoch_tick_;
    w->id_ = i;
    slots_.push_back(std::move(w));
  }
}

Telemetry::Binding::Binding(Telemetry* t, std::size_t worker) noexcept {
  if (t == nullptr || worker >= t->workers()) return;
  prev_ = tls_;
  slot_ = &t->worker(worker);
  slot_->bind();
  tls_ = slot_;
}

Telemetry::Binding::~Binding() {
  if (slot_ == nullptr) return;
  slot_->unbind();
  tls_ = prev_;
}

void Telemetry::set_base(std::uint64_t transitions, std::uint64_t unique,
                         std::uint64_t revisits,
                         std::uint64_t quiescent) noexcept {
  base_transitions_.store(transitions, std::memory_order_relaxed);
  base_unique_.store(unique, std::memory_order_relaxed);
  base_revisits_.store(revisits, std::memory_order_relaxed);
  base_quiescent_.store(quiescent, std::memory_order_relaxed);
}

Telemetry::Totals Telemetry::totals() const noexcept {
  Totals t;
  t.transitions = base_transitions_.load(std::memory_order_relaxed);
  t.unique_states = base_unique_.load(std::memory_order_relaxed);
  t.revisits = base_revisits_.load(std::memory_order_relaxed);
  t.quiescent_states = base_quiescent_.load(std::memory_order_relaxed);
  for (const auto& w : slots_) {
    t.transitions += w->transitions();
    t.unique_states += w->unique_states();
    t.revisits += w->revisits();
    t.quiescent_states += w->quiescent();
    t.wall_ns += w->wall_ns();
    // Published mirror, not the exact profile: totals() runs on the live
    // reporter thread while workers keep writing their plain stats.
    t.idle_ns += w->published_phase_ns(Phase::kIdle);
  }
  return t;
}

std::array<PhaseStat, kPhaseCount> Telemetry::merged_phases() const {
  std::array<PhaseStat, kPhaseCount> out{};
  for (const auto& w : slots_) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      out[p].merge(w->phase(static_cast<Phase>(p)));
    }
  }
  return out;
}

std::array<std::uint64_t, kPhaseCount> Telemetry::published_phase_ns()
    const noexcept {
  std::array<std::uint64_t, kPhaseCount> out{};
  for (const auto& w : slots_) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      out[p] += w->published_phase_ns(static_cast<Phase>(p));
    }
  }
  return out;
}

std::vector<FlightEvent> Telemetry::merged_flight() const {
  std::vector<std::pair<std::size_t, FlightEvent>> tagged;
  for (const auto& w : slots_) {
    for (const FlightEvent& e : w->ring().events()) {
      tagged.emplace_back(w->id(), e);
    }
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& x, const auto& y) {
              return x.second.t_ns < y.second.t_ns;
            });
  std::vector<FlightEvent> out;
  out.reserve(tagged.size());
  for (auto& [id, e] : tagged) {
    // Reuse the seq slot to carry the worker id to the renderer; the
    // per-worker ordering is preserved by the stable time sort above.
    e.seq = id;
    out.push_back(e);
  }
  return out;
}

std::uint64_t Telemetry::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      static_cast<double>(read_ticks() - epoch_tick_) * ns_per_tick_);
}

// ---- ProgressSnapshot -------------------------------------------------------

namespace {

void append_kv(std::string& s, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, key, v);
  s += buf;
}

void append_kv(std::string& s, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.6f", key, v);
  s += buf;
}

void append_kv(std::string& s, const char* key, const std::string& v) {
  s += '"';
  s += key;
  s += "\":\"";
  s += v;  // schema strings are identifier-like; no escaping needed
  s += '"';
}

/// Locate `"key":` in `line` and return the text after the colon, or an
/// empty view when absent.
std::string_view value_after(std::string_view line, const char* key) {
  std::string pat = "\"";
  pat += key;
  pat += "\":";
  const auto pos = line.find(pat);
  if (pos == std::string_view::npos) return {};
  return line.substr(pos + pat.size());
}

bool parse_u64(std::string_view line, const char* key, std::uint64_t& out) {
  const std::string_view v = value_after(line, key);
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(std::string(v.substr(0, 24)).c_str(), &end, 10);
  return end != nullptr;
}

bool parse_f64(std::string_view line, const char* key, double& out) {
  const std::string_view v = value_after(line, key);
  if (v.empty()) return false;
  out = std::strtod(std::string(v.substr(0, 32)).c_str(), nullptr);
  return true;
}

bool parse_str(std::string_view line, const char* key, std::string& out) {
  std::string_view v = value_after(line, key);
  if (v.empty() || v.front() != '"') return false;
  v.remove_prefix(1);
  const auto end = v.find('"');
  if (end == std::string_view::npos) return false;
  out = std::string(v.substr(0, end));
  return true;
}

}  // namespace

std::string ProgressSnapshot::to_ndjson() const {
  std::string s = "{";
  append_kv(s, "event", event);
  if (!reason.empty()) {
    s += ',';
    append_kv(s, "reason", reason);
  }
  s += ',';
  append_kv(s, "seq", seq);
  s += ',';
  append_kv(s, "elapsed_seconds", elapsed_seconds);
  s += ',';
  append_kv(s, "workers", workers);
  s += ',';
  append_kv(s, "transitions", transitions);
  s += ',';
  append_kv(s, "unique_states", unique_states);
  s += ',';
  append_kv(s, "revisits", revisits);
  s += ',';
  append_kv(s, "quiescent_states", quiescent_states);
  s += ',';
  append_kv(s, "frontier", frontier);
  s += ',';
  append_kv(s, "transitions_per_sec", transitions_per_sec);
  s += ',';
  append_kv(s, "unique_per_sec", unique_per_sec);
  s += ',';
  append_kv(s, "utilization", utilization);
  s += ',';
  append_kv(s, "memo_footprint_hit_rate", memo_footprint_hit_rate);
  s += ',';
  append_kv(s, "memo_discover_hit_rate", memo_discover_hit_rate);
  s += ',';
  append_kv(s, "wakeup_replays", wakeup_replays);
  s += ',';
  append_kv(s, "wakeup_woken", wakeup_woken);
  s += ',';
  append_kv(s, "engine_bytes", engine_bytes);
  s += ',';
  append_kv(s, "peak_rss_bytes", peak_rss_bytes);
  s += ",\"phase_ns\":{";
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    if (p != 0) s += ',';
    append_kv(s, phase_name(static_cast<Phase>(p)), phase_ns[p]);
  }
  s += "}}\n";
  return s;
}

bool ProgressSnapshot::parse(std::string_view line, ProgressSnapshot& out) {
  out = ProgressSnapshot{};
  if (!parse_str(line, "event", out.event)) return false;
  (void)parse_str(line, "reason", out.reason);  // progress lines omit it
  bool ok = parse_u64(line, "seq", out.seq);
  ok = ok && parse_f64(line, "elapsed_seconds", out.elapsed_seconds);
  ok = ok && parse_u64(line, "workers", out.workers);
  ok = ok && parse_u64(line, "transitions", out.transitions);
  ok = ok && parse_u64(line, "unique_states", out.unique_states);
  ok = ok && parse_u64(line, "revisits", out.revisits);
  ok = ok && parse_u64(line, "quiescent_states", out.quiescent_states);
  ok = ok && parse_u64(line, "frontier", out.frontier);
  ok = ok && parse_f64(line, "transitions_per_sec", out.transitions_per_sec);
  ok = ok && parse_f64(line, "unique_per_sec", out.unique_per_sec);
  ok = ok && parse_f64(line, "utilization", out.utilization);
  ok = ok && parse_f64(line, "memo_footprint_hit_rate",
                       out.memo_footprint_hit_rate);
  ok = ok && parse_f64(line, "memo_discover_hit_rate",
                       out.memo_discover_hit_rate);
  ok = ok && parse_u64(line, "wakeup_replays", out.wakeup_replays);
  ok = ok && parse_u64(line, "wakeup_woken", out.wakeup_woken);
  ok = ok && parse_u64(line, "engine_bytes", out.engine_bytes);
  ok = ok && parse_u64(line, "peak_rss_bytes", out.peak_rss_bytes);
  const auto obj = line.find("\"phase_ns\":{");
  if (obj == std::string_view::npos) return false;
  const std::string_view phases = line.substr(obj);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    ok = ok && parse_u64(phases, phase_name(static_cast<Phase>(p)),
                         out.phase_ns[p]);
  }
  return ok;
}

// ---- ProgressReporter -------------------------------------------------------

ProgressReporter::ProgressReporter(Telemetry& telemetry, Options options)
    : telemetry_(telemetry), options_(std::move(options)) {}

ProgressReporter::~ProgressReporter() { stop(nullptr); }

bool ProgressReporter::start() {
  if (started_) return true;
  if (!options_.path.empty()) {
    if (options_.append) {
      // Continue an interrupted stream: the next seq follows the lines
      // already present so the combined file reads as one monotone run.
      if (std::FILE* prev = std::fopen(options_.path.c_str(), "rb")) {
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof buf, prev)) > 0) {
          for (std::size_t i = 0; i < n; ++i) {
            if (buf[i] == '\n') ++seq_;
          }
        }
        std::fclose(prev);
      }
      file_ = std::fopen(options_.path.c_str(), "ab");
    } else {
      file_ = std::fopen(options_.path.c_str(), "wb");
    }
    if (file_ == nullptr) return false;
  }
  start_time_ = std::chrono::steady_clock::now();
  stop_ = false;
  started_ = true;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void ProgressReporter::stop(const char* halt_reason) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (halt_reason != nullptr) {
    ProgressSnapshot snap = make_snapshot();
    snap.event = "halt";
    snap.reason = halt_reason;
    emit(snap);
  }
  if (options_.tty) std::fputc('\n', stderr);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  started_ = false;
}

void ProgressReporter::loop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds > 0 ? options_.interval_seconds : 1.0);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    lock.unlock();
    emit(make_snapshot());
    lock.lock();
  }
}

ProgressSnapshot ProgressReporter::make_snapshot() {
  ProgressSnapshot s;
  const auto now = std::chrono::steady_clock::now();
  s.elapsed_seconds =
      std::chrono::duration<double>(now - start_time_).count();
  s.seq = seq_;
  s.workers = telemetry_.workers();

  const Telemetry::Totals t = telemetry_.totals();
  s.transitions = t.transitions;
  s.unique_states = t.unique_states;
  s.revisits = t.revisits;
  s.quiescent_states = t.quiescent_states;
  s.frontier = telemetry_.frontier.load(std::memory_order_relaxed);
  s.engine_bytes = telemetry_.engine_bytes.load(std::memory_order_relaxed);
  s.peak_rss_bytes = peak_rss_bytes();

  const double dt = s.elapsed_seconds - prev_elapsed_;
  if (dt > 1e-9) {
    s.transitions_per_sec =
        static_cast<double>(s.transitions - prev_transitions_) / dt;
    s.unique_per_sec =
        static_cast<double>(s.unique_states - prev_unique_) / dt;
  }
  prev_elapsed_ = s.elapsed_seconds;
  prev_transitions_ = s.transitions;
  prev_unique_ = s.unique_states;

  if (t.wall_ns > 0) {
    const double util = 1.0 - static_cast<double>(t.idle_ns) /
                                  static_cast<double>(t.wall_ns);
    s.utilization = util < 0.0 ? 0.0 : (util > 1.0 ? 1.0 : util);
  }

  const auto hit_rate = [](std::uint64_t h, std::uint64_t m) {
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  };
  s.memo_footprint_hit_rate =
      hit_rate(telemetry_.memo_fp_hits.load(std::memory_order_relaxed),
               telemetry_.memo_fp_misses.load(std::memory_order_relaxed));
  s.memo_discover_hit_rate =
      hit_rate(telemetry_.memo_disc_hits.load(std::memory_order_relaxed),
               telemetry_.memo_disc_misses.load(std::memory_order_relaxed));
  s.wakeup_replays =
      telemetry_.wakeup_replays.load(std::memory_order_relaxed);
  s.wakeup_woken = telemetry_.wakeup_woken.load(std::memory_order_relaxed);

  // The published mirrors, never merged_phases(): the exact profile is
  // plain per-worker state and must not be read while workers run.
  s.phase_ns = telemetry_.published_phase_ns();
  return s;
}

void ProgressReporter::emit(const ProgressSnapshot& snap) {
  if (file_ != nullptr) {
    const std::string line = snap.to_ndjson();
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }
  if (options_.tty) {
    std::fprintf(
        stderr,
        "\r[nicemc] %7.1fs  trans %10" PRIu64 " (%9.0f/s)  unique %9" PRIu64
        "  frontier %7" PRIu64 "  util %3.0f%%  rss %5.1f MiB   ",
        snap.elapsed_seconds, snap.transitions, snap.transitions_per_sec,
        snap.unique_states, snap.frontier, 100.0 * snap.utilization,
        static_cast<double>(snap.peak_rss_bytes) / (1024.0 * 1024.0));
    std::fflush(stderr);
  }
  seq_ = snap.seq + 1;
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace nicemc::util
