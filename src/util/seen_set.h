// Sharded explored-state store for the model checker.
//
// The search remembers which system states it has visited. A single global
// unordered_set serializes every worker on one lock, so the store is split
// into N lock-striped shards selected by the top bits of the state's
// Hash128 — concurrent inserts of different states almost never contend.
// Two modes mirror the paper's Section 6 trade-off:
//   * kHash      — store 16-byte hashes (NICE's "trading computation for
//                  memory");
//   * kFullState — store the canonical serialized state bytes (the
//                  SPIN-like baseline), keyed by the full blob so hash
//                  collisions can never merge distinct states.
#ifndef NICE_UTIL_SEEN_SET_H
#define NICE_UTIL_SEEN_SET_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/hash.h"

namespace nicemc::util {

class ShardedSeenSet {
 public:
  enum class Mode : std::uint8_t { kHash, kFullState };

  /// `shards` is rounded up to a power of two (so shard selection is a
  /// shift of the hash's top bits) and clamped to [1, 1024].
  explicit ShardedSeenSet(Mode mode = Mode::kHash, std::size_t shards = 1);

  /// Hash mode: remember `h`. Returns true when it was not seen before.
  bool insert(const Hash128& h);

  /// Full-state mode: remember the serialized state `blob`; `h` (any
  /// deterministic hash of the state — callers pass the combined
  /// per-component hash, NOT necessarily hash128(blob)) only selects the
  /// shard; the blob itself is the key. Returns true when new.
  bool insert_full(const Hash128& h, std::string blob);

  /// Unique entries across all shards.
  [[nodiscard]] std::uint64_t size() const;

  /// Bytes held by the store: sizeof(Hash128) per entry in hash mode, the
  /// serialized state bytes in full-state mode.
  [[nodiscard]] std::uint64_t store_bytes() const;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<Hash128> hashes;
    std::unordered_set<std::string> blobs;
    std::uint64_t bytes{0};
  };

  [[nodiscard]] Shard& shard_of(const Hash128& h) const {
    return *shards_[(h.hi >> shift_) & mask_];
  }

  Mode mode_;
  // Shard index = top log2(N) bits of Hash128::hi. shift_ stays < 64 even
  // for a single shard (mask_ == 0 then selects shard 0).
  unsigned shift_;
  std::uint64_t mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nicemc::util

#endif  // NICE_UTIL_SEEN_SET_H
