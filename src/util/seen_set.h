// Sharded explored-state store for the model checker.
//
// The search remembers which system states it has visited. A single global
// unordered_set serializes every worker on one lock, so the store is split
// into N lock-striped shards selected by the top bits of the state's
// Hash128 — concurrent inserts of different states almost never contend.
// Three modes span the memory/soundness trade-off (paper Section 6 +
// SPIN's COLLAPSE):
//   * kHash      — store 16-byte hashes (NICE's "trading computation for
//                  memory"); a vanishingly small but nonzero chance of
//                  merging distinct states;
//   * kFullState — store the canonical serialized state bytes (the
//                  SPIN-like baseline), keyed by the full blob so hash
//                  collisions can never merge distinct states;
//   * kCollapsed — store the packed tuple of component ids interned in a
//                  util::CollapseTable: collision-proof like kFullState
//                  (id equality ⇔ blob equality by construction) at a
//                  fraction of the bytes.
#ifndef NICE_UTIL_SEEN_SET_H
#define NICE_UTIL_SEEN_SET_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/hash.h"
#include "util/ser.h"

namespace nicemc::util {

/// Shard selection shared by the lock-striped stores (ShardedSeenSet and
/// the reduction layer's SleepStore): normalizes the shard count to a
/// power of two in [1, 1024] and maps a Hash128 to a shard index via its
/// top bits, so related stores stripe the same way.
class ShardSelect {
 public:
  explicit ShardSelect(std::size_t shards) {
    std::size_t n = 1;
    while (n < shards && n < 1024) n <<= 1;
    unsigned lg = 0;
    while ((std::size_t{1} << lg) < n) ++lg;
    // shift_ stays < 64 even for a single shard (mask_ == 0 then selects
    // shard 0).
    shift_ = 64 - (lg == 0 ? 1 : lg);
    mask_ = n - 1;
    count_ = n;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t index(const Hash128& h) const noexcept {
    return (h.hi >> shift_) & mask_;
  }

 private:
  unsigned shift_;
  std::uint64_t mask_;
  std::size_t count_;
};

class ShardedSeenSet {
 public:
  enum class Mode : std::uint8_t { kHash, kFullState, kCollapsed };

  /// `shards` is rounded up to a power of two (so shard selection is a
  /// shift of the hash's top bits) and clamped to [1, 1024].
  explicit ShardedSeenSet(Mode mode = Mode::kHash, std::size_t shards = 1);

  /// Hash mode: remember `h`. Returns true when it was not seen before.
  bool insert(const Hash128& h);

  /// Full-state / collapsed modes: remember the state's identity key —
  /// the canonical serialized blob (kFullState) or the packed tuple of
  /// interned component ids (kCollapsed). The shard is selected by an
  /// internal hash of the key bytes, so placement is a pure function of
  /// the key — which is what lets a checkpoint restore entries into the
  /// correct shards under any future shard count (mc/checkpoint.h). The
  /// key itself is the store key, so hash collisions can never merge
  /// distinct states. Returns true when new.
  bool insert_key(std::string key);

  /// Unique entries across all shards.
  [[nodiscard]] std::uint64_t size() const;

  /// Bytes held by the store: sizeof(Hash128) per entry in hash mode, the
  /// key bytes (serialized state / id tuple) otherwise. Collapsed mode's
  /// total footprint is this plus the shared CollapseTable's
  /// interned_bytes() — CheckerResult::store_bytes reports the sum.
  [[nodiscard]] std::uint64_t store_bytes() const;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Checkpoint section: entry count + every entry (16-byte hashes in
  /// hash mode, length-prefixed keys otherwise). Iteration order is
  /// shard-then-bucket order — placement on restore is re-derived, so the
  /// order carries no meaning. Not safe against concurrent inserts (the
  /// drivers quiesce before snapshotting).
  void serialize(Ser& s) const;
  /// Restore a serialize() section into this (must-be-empty) store.
  /// Returns false — leaving the store partially filled — on a malformed
  /// section; callers discard the store on failure.
  bool restore(Des& d);

  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<Hash128> hashes;
    std::unordered_set<std::string> keys;  // blobs or id tuples, by mode
    std::uint64_t bytes{0};
  };

  [[nodiscard]] Shard& shard_of(const Hash128& h) const {
    return *shards_[select_.index(h)];
  }

  Mode mode_;
  ShardSelect select_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nicemc::util

#endif  // NICE_UTIL_SEEN_SET_H
