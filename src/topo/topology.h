// Static network topology: switches with ports, switch-switch links, hosts
// with initial attachment points and L2/L3 identifiers.
//
// The topology is configuration, not model state: it never changes during a
// search (host *location* can — mobile hosts carry their current attachment
// in their own state). It also supplies the domain knowledge of paper
// Section 3.2: the candidate MAC/IP values the solver may assign to
// symbolic packet fields.
#ifndef NICE_TOPO_TOPOLOGY_H
#define NICE_TOPO_TOPOLOGY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "of/packet.h"
#include "sym/sympacket.h"

namespace nicemc::topo {

using of::HostId;
using of::PortId;
using of::SwitchId;

struct SwitchSpec {
  SwitchId id{0};
  std::vector<PortId> ports;
};

struct HostSpec {
  HostId id{0};
  std::string name;
  std::uint64_t mac{0};
  std::uint32_t ip{0};
  SwitchId attach_switch{0};
  PortId attach_port{0};
  /// Alternative <switch, port> locations a mobile host may move to.
  std::vector<std::pair<SwitchId, PortId>> alt_locations;
};

struct LinkSpec {
  SwitchId sw_a{0};
  PortId port_a{0};
  SwitchId sw_b{0};
  PortId port_b{0};
};

/// What is attached on the far side of a switch port.
struct PortPeer {
  enum class Kind : std::uint8_t { kNone, kSwitchLink } kind{Kind::kNone};
  SwitchId sw{0};
  PortId port{0};
};

class Topology {
 public:
  SwitchId add_switch(std::vector<PortId> ports);
  HostId add_host(std::string name, std::uint64_t mac, std::uint32_t ip,
                  SwitchId sw, PortId port);
  void add_link(SwitchId a, PortId port_a, SwitchId b, PortId port_b);
  void add_alt_location(HostId h, SwitchId sw, PortId port);

  [[nodiscard]] const std::vector<SwitchSpec>& switches() const noexcept {
    return switches_;
  }
  [[nodiscard]] const std::vector<HostSpec>& hosts() const noexcept {
    return hosts_;
  }
  [[nodiscard]] const HostSpec& host(HostId h) const { return hosts_[h]; }
  [[nodiscard]] const std::vector<LinkSpec>& links() const noexcept {
    return links_;
  }

  /// Static switch-switch peer of a port (host attachment is dynamic and
  /// resolved by the model checker against current host locations).
  [[nodiscard]] PortPeer switch_peer(SwitchId sw, PortId port) const;

  /// Host whose MAC is `mac`, if any.
  [[nodiscard]] std::optional<HostId> host_by_mac(std::uint64_t mac) const;

  /// Domain-knowledge candidate sets: all host MACs + broadcast (+ one
  /// fresh MAC), all host IPs (+ provided extras such as a load balancer's
  /// virtual IP).
  [[nodiscard]] sym::PacketDomain packet_domain(
      std::vector<std::uint64_t> extra_ips = {},
      std::vector<std::uint64_t> extra_ports = {}) const;

 private:
  std::vector<SwitchSpec> switches_;
  std::vector<HostSpec> hosts_;
  std::vector<LinkSpec> links_;
};

}  // namespace nicemc::topo

#endif  // NICE_TOPO_TOPOLOGY_H
