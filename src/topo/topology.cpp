#include "topo/topology.h"

#include <algorithm>
#include <cassert>

namespace nicemc::topo {

SwitchId Topology::add_switch(std::vector<PortId> ports) {
  const SwitchId id = static_cast<SwitchId>(switches_.size());
  switches_.push_back(SwitchSpec{.id = id, .ports = std::move(ports)});
  return id;
}

HostId Topology::add_host(std::string name, std::uint64_t mac,
                          std::uint32_t ip, SwitchId sw, PortId port) {
  assert(sw < switches_.size());
  const HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(HostSpec{.id = id,
                            .name = std::move(name),
                            .mac = mac,
                            .ip = ip,
                            .attach_switch = sw,
                            .attach_port = port,
                            .alt_locations = {}});
  return id;
}

void Topology::add_link(SwitchId a, PortId port_a, SwitchId b, PortId port_b) {
  assert(a < switches_.size() && b < switches_.size());
  links_.push_back(LinkSpec{a, port_a, b, port_b});
}

void Topology::add_alt_location(HostId h, SwitchId sw, PortId port) {
  hosts_[h].alt_locations.emplace_back(sw, port);
}

PortPeer Topology::switch_peer(SwitchId sw, PortId port) const {
  for (const LinkSpec& l : links_) {
    if (l.sw_a == sw && l.port_a == port) {
      return PortPeer{PortPeer::Kind::kSwitchLink, l.sw_b, l.port_b};
    }
    if (l.sw_b == sw && l.port_b == port) {
      return PortPeer{PortPeer::Kind::kSwitchLink, l.sw_a, l.port_a};
    }
  }
  return PortPeer{};
}

std::optional<HostId> Topology::host_by_mac(std::uint64_t mac) const {
  for (const HostSpec& h : hosts_) {
    if (h.mac == mac) return h.id;
  }
  return std::nullopt;
}

sym::PacketDomain Topology::packet_domain(
    std::vector<std::uint64_t> extra_ips,
    std::vector<std::uint64_t> extra_ports) const {
  sym::PacketDomain d;
  for (const HostSpec& h : hosts_) {
    d.eth_addrs.push_back(h.mac);
    d.ip_addrs.push_back(h.ip);
  }
  d.eth_addrs.push_back(of::kBroadcastMac);
  // One fresh MAC outside the topology: lets symbolic execution produce the
  // "unknown destination" equivalence class.
  d.eth_addrs.push_back(0x00feed000001ULL);
  d.eth_types = {of::kEthTypeIpv4, of::kEthTypeArp};
  d.ip_protos = {of::kIpProtoTcp, of::kIpProtoIcmp};
  for (std::uint64_t ip : extra_ips) d.ip_addrs.push_back(ip);
  d.tp_ports = {80, 1024, 1025};
  for (std::uint64_t p : extra_ports) d.tp_ports.push_back(p);
  d.tcp_flag_values = {0, of::kTcpSyn, of::kTcpAck,
                       of::kTcpSyn | of::kTcpAck, of::kTcpFin};
  // De-duplicate candidate sets (hosts may share addresses in tests).
  auto dedup = [](std::vector<std::uint64_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(d.eth_addrs);
  dedup(d.ip_addrs);
  dedup(d.tp_ports);
  return d;
}

}  // namespace nicemc::topo
