// Symmetry reduction over interchangeable hosts (clients/replicas that
// differ only in their identifiers). Scenarios with k identical clients
// explore k! permutations of the same behaviour; no partial-order mode can
// collapse them, because the permuted executions touch *different* state
// components. This layer collapses them at the seen-set instead: the
// remembered key of a state is the canonical serialization of a symmetric
// image of the state, so two states that differ only by a permutation of
// orbit members (plus the identifier renaming that permutation induces on
// packets in flight, learned tables, rules, property monitors and uids)
// produce the same key and merge.
//
// Soundness does not depend on how well the representative permutation is
// chosen: the key of s is serialize(pi(s)) for *some* orbit permutation
// pi, and orbit members are validated to be behaviourally interchangeable,
// so key(s1) == key(s2) implies pi1(s1) == pi2(s2) as states — s1 and s2
// have isomorphic futures and one representative suffices. The selection
// heuristic (per-member structural signatures) only determines how often
// equivalent states actually map to the *same* permutation image, i.e. the
// reduction strength, never correctness. See ARCHITECTURE.md ("Symmetry
// layer").
#ifndef NICE_MC_SYM_REDUCE_H
#define NICE_MC_SYM_REDUCE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mc/system.h"
#include "util/collapse.h"
#include "util/hash.h"
#include "util/rename.h"

namespace nicemc::mc {

/// Canonical seen-set key for one state under the symmetry map.
struct SymKey {
  /// Store key: the canonical byte blob (kHash/kFullState) or the packed
  /// component-id tuple interned per renamed component (kCollapsed).
  std::string key;
  /// Hash of the canonical blob — shard selection and kHash inserts.
  util::Hash128 hash;
};

struct SymmetryStats {
  bool enabled{false};
  std::uint32_t orbits{0};
  std::uint32_t orbit_hosts{0};
  /// Canonical keys built (== symmetry-reduced remember() calls).
  std::uint64_t canonicalizations{0};
};

/// Compiled, validated symmetry declaration for one search. Built once by
/// the Checker from SystemConfig::symmetry_orbits; const and shared across
/// worker threads (the per-canonicalization Renamer is thread-local).
class SymContext {
 public:
  /// Validates every declared orbit against the topology, host behaviours
  /// and scripts; throws std::invalid_argument when members are not
  /// actually interchangeable (different attach switch, mobile hosts,
  /// behaviour-flag or script-shape mismatches, scripts that are not equal
  /// modulo the member renaming, inconsistent flow-id correspondence).
  explicit SymContext(const SystemConfig& cfg);

  /// The canonical key of `state`: pick a representative orbit permutation
  /// by structural signature, then serialize the permuted, renamed,
  /// uid-renumbered state. `table` must be the search's collapse table in
  /// kCollapsed mode (per-component interning; key = packed id tuple) and
  /// nullptr otherwise (key = the blob itself).
  [[nodiscard]] SymKey canonical_key(const SystemState& state,
                                     util::CollapseTable* table) const;

  /// Rewrite orbit-member identifiers inside a violation message to
  /// orbit-slot placeholders, so violation *sets* can be compared between
  /// symmetry-on and symmetry-off searches (the unsymmetrized search
  /// reports one message per member, the reduced search one per orbit).
  [[nodiscard]] std::string canonicalize_violation(std::string msg) const;

  [[nodiscard]] std::uint32_t orbit_count() const {
    return static_cast<std::uint32_t>(orbits_.size());
  }
  [[nodiscard]] std::uint32_t orbit_host_count() const;
  [[nodiscard]] std::uint64_t canonicalizations() const {
    return canonicalizations_.load(std::memory_order_relaxed);
  }
  /// Whether next_uid is part of the canonical key (it must be whenever a
  /// host's sends *consume* it semantically — discovery sends use it as
  /// the flow id — and is allocation-history noise otherwise).
  [[nodiscard]] bool includes_next_uid() const { return include_next_uid_; }

 private:
  /// One interchangeable host, with every packet-visible identifier the
  /// renaming has to cover.
  struct Member {
    std::uint32_t host_index{0};  // == of::HostId == SystemState host slot
    std::uint64_t mac{0};
    std::uint64_t ip{0};
    of::SwitchId sw{0};
    of::PortId port{0};
    /// flow ids in script order (the positional flow correspondence).
    std::vector<std::uint32_t> flows;
  };
  struct Orbit {
    std::vector<Member> members;  // in ascending host-index order
  };

  /// Per-member discrimination signature: the state serialized with this
  /// member's identifiers mapped to a TAG, every other member of the same
  /// orbit mapped to a shared BOTTOM, uids elided, and the orbit's host
  /// components emitted as a sorted multiset — invariant under renaming of
  /// the *other* members, so equal-signature members really are
  /// interchangeable in this state and any rank tie-break is harmless.
  [[nodiscard]] std::string member_signature(const SystemState& state,
                                             const Orbit& orbit,
                                             std::size_t member) const;

  void serialize_whole(
      const SystemState& state, util::Ser& s,
      const std::vector<std::uint32_t>& host_emit_order,
      std::vector<std::pair<std::size_t, std::size_t>>* bounds) const;

  const SystemConfig* cfg_;
  bool canonical_;
  bool include_next_uid_;
  std::vector<Orbit> orbits_;
  mutable std::atomic<std::uint64_t> canonicalizations_{0};
};

}  // namespace nicemc::mc

#endif  // NICE_MC_SYM_REDUCE_H
