// Pluggable search frontiers: the order in which pending (state,
// transition) pairs are expanded.
//
//   * kDfs    — LIFO stack; exactly the seed checker's depth-first order,
//               so 1-thread DFS search is bit-for-bit deterministic;
//   * kBfs    — FIFO queue; shortest counterexamples first;
//   * kRandom — pop a uniformly random pending entry (seeded, so a given
//               seed reproduces the same exploration order).
//
// Frontiers are NOT thread-safe; the parallel driver owns its own shared
// work deque and uses frontiers only in single-threaded mode.
#ifndef NICE_MC_FRONTIER_H
#define NICE_MC_FRONTIER_H

#include <cstdint>
#include <memory>
#include <string>

#include "mc/por/sleep.h"
#include "mc/system.h"
#include "mc/trace.h"
#include "mc/transition.h"

namespace nicemc::mc {

/// One pending unit of search work: apply `transition` to `*state`.
/// `state` is shared between all siblings enumerated from it; `path` is
/// the shared-parent trace chain used to reconstruct counterexamples.
/// `sleep` is the partial-order-reduction sleep set the resulting state
/// arrives with (always empty under Reduction::kNone); it is per-node, so
/// the parallel driver needs no extra shared state beyond the SleepStore.
struct SearchNode {
  std::shared_ptr<const SystemState> state;
  Transition transition;
  std::shared_ptr<const PathNode> path;
  std::size_t depth{0};
  por::SleepSet sleep;
};

enum class FrontierKind : std::uint8_t { kDfs, kBfs, kRandom };

std::string frontier_name(FrontierKind kind);

class Frontier {
 public:
  virtual ~Frontier() = default;

  virtual void push(SearchNode node) = 0;
  /// Remove the next node per this frontier's policy. Returns false when
  /// the frontier is empty.
  virtual bool pop(SearchNode& out) = 0;
  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
};

/// `seed` is only used by the random-priority frontier.
std::unique_ptr<Frontier> make_frontier(FrontierKind kind,
                                        std::uint64_t seed);

}  // namespace nicemc::mc

#endif  // NICE_MC_FRONTIER_H
