// Pluggable search frontiers: the order in which pending (state,
// transition) pairs are expanded.
//
//   * kDfs    — LIFO stack; exactly the seed checker's depth-first order,
//               so 1-thread DFS search is bit-for-bit deterministic;
//   * kBfs    — FIFO queue; shortest counterexamples first;
//   * kRandom — pop a uniformly random pending entry (seeded, so a given
//               seed reproduces the same exploration order).
//
// Frontiers are NOT thread-safe; the parallel driver owns its own shared
// work deque and uses frontiers only in single-threaded mode.
#ifndef NICE_MC_FRONTIER_H
#define NICE_MC_FRONTIER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mc/por/sleep.h"
#include "mc/system.h"
#include "mc/trace.h"
#include "mc/transition.h"

namespace nicemc::mc {

/// One pending unit of search work: apply `transition` to `*state`.
/// `state` is shared between all siblings enumerated from it; `path` is
/// the shared-parent trace chain used to reconstruct counterexamples.
/// `sleep` is the partial-order-reduction sleep set the resulting state
/// arrives with (always empty under Reduction::kNone); it is per-node, so
/// the parallel driver needs no extra shared state beyond the SleepStore.
/// `wake` (Reduction::kSourceDpor only) marks a *targeted re-dispatch*: a
/// wakeup sequence being replayed. The resulting arrival re-opens exactly
/// the still-owed events in `wake` (stored-slept ∩ wake) instead of the
/// generic smaller-sleep difference — the surgical backtrack-point seeding
/// that lets re-expanded siblings sleep this node's transition.
/// A conditional sleep entry (Reduction::kSourceDpor): a previously
/// dispatched sibling the node's transition commutes with. If the node
/// discovers a *new* state, the entry joins the children's sleep sets and
/// the owed wakeup sequence (replay the sibling, wake this transition) is
/// emitted from the parent state the node still holds; at an already-seen
/// state it is dropped for free.
struct CondSleep {
  Transition transition;
  por::Footprint fp;
  std::uint64_t thash{0};
};

/// `claim_free` marks a woken successor of a targeted replay: its arrival
/// exists purely to visit the commuted twin state — it makes no sleep
/// claims, so at a seen state it explores nothing (the state's own
/// obligations are untouched), and only a genuinely new state expands.
struct SearchNode {
  std::shared_ptr<const SystemState> state;
  Transition transition;
  std::shared_ptr<const PathNode> path;
  std::size_t depth{0};
  por::SleepSet sleep;
  std::vector<std::uint64_t> wake;
  std::vector<CondSleep> cond;
  bool claim_free{false};
};

enum class FrontierKind : std::uint8_t { kDfs, kBfs, kRandom };

std::string frontier_name(FrontierKind kind);

class Frontier {
 public:
  virtual ~Frontier() = default;

  virtual void push(SearchNode node) = 0;
  /// Remove the next node per this frontier's policy. Returns false when
  /// the frontier is empty.
  virtual bool pop(SearchNode& out) = 0;
  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Visit every pending node in *reconstruction order*: pushing the
  /// visited nodes into a fresh frontier of the same kind, in visit
  /// order, reproduces this frontier's future pop sequence exactly (for
  /// the random frontier, together with rng_state()). The checkpoint
  /// writer snapshots frontiers through this.
  virtual void for_each(
      const std::function<void(const SearchNode&)>& fn) const = 0;

  /// Pop-policy RNG state (random frontier only; 0 elsewhere). Restoring
  /// it via set_rng_state() resumes the exact pop sequence.
  [[nodiscard]] virtual std::uint64_t rng_state() const { return 0; }
  virtual void set_rng_state(std::uint64_t /*state*/) {}
};

/// `seed` is only used by the random-priority frontier.
std::unique_ptr<Frontier> make_frontier(FrontierKind kind,
                                        std::uint64_t seed);

}  // namespace nicemc::mc

#endif  // NICE_MC_FRONTIER_H
