// Events generated while executing a transition.
//
// Correctness properties are monitors over the event stream (paper
// Section 5: property snippets "register callbacks invoked by NICE to
// observe important transitions"). The executor appends one event per
// observable micro-step; after the transition completes, every property
// sees the batch together with the resulting state.
#ifndef NICE_MC_EVENTS_H
#define NICE_MC_EVENTS_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "of/messages.h"
#include "of/packet.h"
#include "of/rule.h"

namespace nicemc::mc {

/// A host injected a packet into the network (balance +1).
struct EvPacketSent {
  of::HostId host{0};
  of::Packet pkt;
};

/// The controller injected a packet via a bufferless packet_out
/// (balance +1), e.g. a proxied ARP reply.
struct EvCtrlPacketInjected {
  of::SwitchId sw{0};
  of::Packet pkt;
};

/// A switch ran one packet through its pipeline (ingress or packet_out
/// release). Balance delta: +copies_out, −1 if the packet came out of
/// flight (ingress) or out of the awaiting-controller buffer.
struct EvPacketProcessed {
  of::SwitchId sw{0};
  of::PortId in_port{0};
  of::Packet pkt;
  int copies_out{0};
  bool to_controller{false};   // buffered + packet_in emitted
  bool dropped_by_rule{false};  // matched a rule with no actions
  bool dropped_buffer_full{false};
  bool dropped_no_ctrl{false};  // needed the controller while disconnected
  bool revisited{false};        // forwarding-loop signal
  bool from_buffer{false};      // packet_out release (vs. ingress)
  bool explicit_discard{false};  // packet_out with empty actions
};

/// A forwarded copy left a port with nothing attached (host moved away or
/// unconnected port): the copy vanishes — a black hole.
struct EvPacketDeadPort {
  of::SwitchId sw{0};
  of::PortId port{0};
  of::Packet pkt;
};

/// A host consumed a packet from its input queue (balance −1).
struct EvPacketDelivered {
  of::HostId host{0};
  of::Packet pkt;
  /// MAC of the receiving host: flooded copies reach hosts that are not
  /// the packet's L2 destination; DirectPaths-style properties only treat
  /// pkt.hdr.eth_dst == host_mac as "reached its destination".
  std::uint64_t host_mac{0};
};

/// The controller received a packet_in (for DirectPaths and the
/// UseCorrectRoutingTable properties).
struct EvPacketIn {
  of::SwitchId sw{0};
  of::PortId in_port{0};
  of::Packet pkt;
  of::PacketIn::Reason reason{of::PacketIn::Reason::kNoMatch};
};

/// The packet_in handler finished; `installs` are the rule installations it
/// issued and `sent_packet_out` says whether it released/forwarded the
/// triggering packet (UseCorrectRoutingTable inspects this batch).
struct EvPacketInHandled {
  of::SwitchId sw{0};
  of::PortId in_port{0};
  of::Packet pkt;
  std::vector<std::pair<of::SwitchId, of::Rule>> installs;
  bool sent_packet_out{false};
};

struct EvRuleInstalled {
  of::SwitchId sw{0};
  of::Rule rule;
};

struct EvRuleRemoved {
  of::SwitchId sw{0};
  of::Match match;
  std::size_t count{0};
};

struct EvRuleExpired {
  of::SwitchId sw{0};
  of::Rule rule;
};

/// Fault-model event: the head packet of an ingress channel was dropped.
struct EvChannelDrop {
  of::SwitchId sw{0};
  of::PortId port{0};
  of::Packet pkt;
};

/// Fault-model event: the head packet of an ingress channel was duplicated
/// (balance +1: one extra in-flight copy).
struct EvChannelDup {
  of::SwitchId sw{0};
  of::PortId port{0};
  of::Packet pkt;
};

struct EvStatsHandled {
  of::SwitchId sw{0};
};

struct EvHostMoved {
  of::HostId host{0};
  of::SwitchId to_sw{0};
  of::PortId to_port{0};
};

/// Fault-model event: topology link `link` (both endpoint ports) failed.
struct EvLinkDown {
  std::uint32_t link{0};
  of::SwitchId sw_a{0};
  of::PortId port_a{0};
  of::SwitchId sw_b{0};
  of::PortId port_b{0};
};

/// Fault-model event: topology link `link` repaired.
struct EvLinkUp {
  std::uint32_t link{0};
  of::SwitchId sw_a{0};
  of::PortId port_a{0};
  of::SwitchId sw_b{0};
  of::PortId port_b{0};
};

/// Fault-model event: switch `sw` lost its controller connection; the
/// counts are the OpenFlow messages wiped from the two channel directions.
struct EvCtrlChannelDown {
  of::SwitchId sw{0};
  std::size_t lost_to_switch{0};
  std::size_t lost_to_ctrl{0};
};

/// Fault-model event: switch `sw` reconnected and the handshake replayed.
struct EvCtrlChannelUp {
  of::SwitchId sw{0};
};

/// Fault-model event: switch `sw` rebooted — flow table, buffer and both
/// OpenFlow channels wiped.
struct EvSwitchRestart {
  of::SwitchId sw{0};
  std::size_t lost_rules{0};
  std::size_t lost_buffered{0};
};

/// The controller dispatched an OFPT_PORT_STATUS notification.
struct EvPortStatusHandled {
  of::SwitchId sw{0};
  of::PortId port{0};
  bool up{true};
};

using Event =
    std::variant<EvPacketSent, EvCtrlPacketInjected, EvPacketProcessed,
                 EvPacketDeadPort, EvPacketDelivered, EvPacketIn,
                 EvPacketInHandled, EvRuleInstalled, EvRuleRemoved,
                 EvRuleExpired, EvChannelDrop, EvChannelDup, EvStatsHandled,
                 EvHostMoved, EvLinkDown, EvLinkUp, EvCtrlChannelDown,
                 EvCtrlChannelUp, EvSwitchRestart, EvPortStatusHandled>;

using EventList = std::vector<Event>;

/// One-line rendering for traces and debugging.
std::string brief(const Event& e);

}  // namespace nicemc::mc

#endif  // NICE_MC_EVENTS_H
