#include "mc/discover.h"

#include <algorithm>
#include <cassert>

namespace nicemc::mc {

const std::vector<sym::PacketFields>* DiscoveryCache::find_packets(
    of::HostId host, util::Hash128 ctrl_hash) const {
  auto it = packets_.find(PacketKey{host, ctrl_hash});
  return it == packets_.end() ? nullptr : &it->second;
}

const std::vector<StatsValues>* DiscoveryCache::find_stats(
    of::SwitchId sw, util::Hash128 ctrl_hash) const {
  auto it = stats_values_.find(StatsKey{sw, ctrl_hash});
  return it == stats_values_.end() ? nullptr : &it->second;
}

void DiscoveryCache::store_packets(of::HostId host, util::Hash128 ctrl_hash,
                                   std::vector<sym::PacketFields> packets) {
  packets_.emplace(PacketKey{host, ctrl_hash}, std::move(packets));
}

void DiscoveryCache::store_stats(of::SwitchId sw, util::Hash128 ctrl_hash,
                                 std::vector<StatsValues> values) {
  stats_values_.emplace(StatsKey{sw, ctrl_hash}, std::move(values));
}

namespace {

std::string_view ser_view(const util::Ser& s) {
  const auto b = s.bytes();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace

void DiscoveryMemo::put_app_id(util::Ser& key,
                               const SystemState& state) const {
  if (ids_ != nullptr) {
    key.put_u32(state.app_state_id(*ids_));
  } else {
    const util::Hash128 h = state.ctrl_hash();
    key.put_u64(h.lo);
    key.put_u64(h.hi);
  }
}

void DiscoveryMemo::packets_key(util::Ser& key, const SystemState& state,
                                of::HostId host) const {
  key.put_u8('P');
  const hosts::HostState& hs = state.host(host);
  key.put_u32(host);
  key.put_u32(static_cast<std::uint32_t>(hs.sw));
  key.put_u32(static_cast<std::uint32_t>(hs.port));
  put_app_id(key, state);
}

void DiscoveryMemo::stats_key(util::Ser& key, const SystemState& state,
                              of::SwitchId sw) const {
  key.put_u8('S');
  key.put_u32(sw);
  put_app_id(key, state);
  // The exact symbolic seeds discover_stats registers per port.
  const of::Switch& swm = state.sw(sw);
  for (const of::PortId p : swm.ports) {
    const auto it = swm.port_stats.find(p);
    key.put_u32(p);
    key.put_u64(it == swm.port_stats.end()
                    ? 0
                    : (it->second.tx_bytes & 0xffffffffULL));
  }
}

std::shared_ptr<const std::vector<sym::PacketFields>>
DiscoveryMemo::find_packets(const SystemState& state, of::HostId host) {
  thread_local util::Ser key;  // clear() keeps capacity across calls
  key.clear();
  packets_key(key, state, host);
  return packets_.find(ser_view(key));
}

void DiscoveryMemo::store_packets(
    const SystemState& state, of::HostId host,
    const std::vector<sym::PacketFields>& packets) {
  thread_local util::Ser key;
  key.clear();
  packets_key(key, state, host);
  packets_.insert(ser_view(key), packets,
                  packets.size() * sizeof(sym::PacketFields) +
                      sizeof(packets));
}

std::shared_ptr<const std::vector<StatsValues>> DiscoveryMemo::find_stats(
    const SystemState& state, of::SwitchId sw) {
  thread_local util::Ser key;
  key.clear();
  stats_key(key, state, sw);
  return stats_.find(ser_view(key));
}

void DiscoveryMemo::store_stats(const SystemState& state, of::SwitchId sw,
                                const std::vector<StatsValues>& values) {
  thread_local util::Ser key;
  key.clear();
  stats_key(key, state, sw);
  std::size_t bytes = sizeof(values);
  for (const StatsValues& v : values) {
    bytes += sizeof(v) + v.size() * sizeof(StatsValues::value_type);
  }
  stats_.insert(ser_view(key), values, bytes);
}

std::vector<sym::PacketFields> discover_packets(const SystemConfig& cfg,
                                                const SystemState& state,
                                                of::HostId host,
                                                DiscoveryStats& stats) {
  const topo::HostSpec& spec = cfg.topology->host(host);
  const hosts::HostState& hs = state.host(host);

  sym::Concolic engine(cfg.concolic);

  // Seed packet: the host's own identity, destination = the first other
  // host (or broadcast if alone). Any in-domain seed works; this one makes
  // the first explored path a "normal" unicast.
  sym::PacketFields seed;
  seed.eth_src = spec.mac;
  seed.ip_src = spec.ip;
  seed.eth_dst = of::kBroadcastMac;
  seed.ip_dst = spec.ip;
  for (const topo::HostSpec& other : cfg.topology->hosts()) {
    if (other.id != host) {
      seed.eth_dst = other.mac;
      seed.ip_dst = other.ip;
      break;
    }
  }
  seed.eth_type = of::kEthTypeIpv4;
  seed.ip_proto = of::kIpProtoTcp;
  seed.tp_src = 1024;
  seed.tp_dst = 80;
  seed.tcp_flags = of::kTcpSyn;

  const sym::SymPacketVars vars = sym::SymPacketVars::register_with(
      engine, seed);
  sym::PacketDomain domain = cfg.topology->packet_domain(
      cfg.extra_domain_ips, cfg.extra_domain_ports);
  domain.apply(engine, vars);
  if (cfg.constrain_src_to_sender) {
    engine.restrict_to(vars.eth_src, {spec.mac});
    engine.restrict_to(vars.ip_src, {spec.ip});
  }

  // Context: the client's current <switch, input port> location (Figure 4).
  const of::SwitchId sw = hs.sw;
  const of::PortId port = hs.port;
  const ctrl::AppState& base = *state.ctrl().app;

  const auto results = engine.explore([&](const sym::Inputs& in) {
    // Fresh clone of the concrete controller state per run (handlers may
    // mutate it; mutations must not leak across path explorations).
    std::unique_ptr<ctrl::AppState> st = base.clone();
    std::uint32_t xid = 1;
    ctrl::Ctx ctx(&xid);
    cfg.app->packet_in(*st, ctx, sw, port, vars.bind(in), /*buffer_id=*/1,
                       of::PacketIn::Reason::kNoMatch);
    // Commands are discarded: discovery only observes control flow.
  });

  ++stats.packet_discoveries;
  stats.handler_runs += engine.stats().runs;
  stats.solver_queries += engine.stats().solver_queries;

  std::vector<sym::PacketFields> packets;
  packets.reserve(results.size());
  for (const sym::Assignment& asg : results) {
    packets.push_back(vars.materialize(asg));
  }
  // De-duplicate representatives (two paths can share one witness packet
  // when a later branch does not constrain the inputs further).
  std::sort(packets.begin(), packets.end());
  packets.erase(std::unique(packets.begin(), packets.end()), packets.end());
  stats.packets_found += packets.size();
  return packets;
}

std::vector<StatsValues> discover_stats(const SystemConfig& cfg,
                                        const SystemState& state,
                                        of::SwitchId sw,
                                        DiscoveryStats& stats) {
  const of::Switch& swm = state.sw(sw);
  sym::Concolic engine(cfg.concolic);

  std::vector<std::pair<of::PortId, sym::VarHandle>> port_vars;
  port_vars.reserve(swm.ports.size());
  for (of::PortId p : swm.ports) {
    const auto it = swm.port_stats.find(p);
    const std::uint64_t initial =
        it == swm.port_stats.end() ? 0 : (it->second.tx_bytes & 0xffffffffULL);
    port_vars.emplace_back(
        p, engine.add_var("tx_bytes_p" + std::to_string(p), 32, initial));
  }

  const ctrl::AppState& base = *state.ctrl().app;
  const auto results = engine.explore([&](const sym::Inputs& in) {
    std::unique_ptr<ctrl::AppState> st = base.clone();
    std::uint32_t xid = 1;
    ctrl::Ctx ctx(&xid);
    ctrl::SymStats sym_stats;
    for (const auto& [p, vh] : port_vars) {
      sym_stats.tx_bytes.emplace(p, in[vh]);
    }
    cfg.app->stats_in(*st, ctx, sw, sym_stats);
  });

  ++stats.stats_discoveries;
  stats.handler_runs += engine.stats().runs;
  stats.solver_queries += engine.stats().solver_queries;

  std::vector<StatsValues> out;
  out.reserve(results.size());
  for (const sym::Assignment& asg : results) {
    StatsValues v;
    for (const auto& [p, vh] : port_vars) {
      v.emplace_back(p, asg[vh.id]);
    }
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace nicemc::mc
