#include "mc/execute.h"

#include <cassert>

#include "hosts/server.h"
#include "util/telemetry.h"

namespace nicemc::mc {

namespace {

/// Does this command forward/release the packet buffered under `buffer_id`
/// at switch `sw`? (Used to report whether a handler remembered to tell the
/// switch what to do with the triggering packet.)
bool releases_buffer(const ctrl::Command& c, of::SwitchId sw,
                     std::uint32_t buffer_id) {
  const auto* po = std::get_if<ctrl::CmdPacketOut>(&c);
  return po != nullptr && po->sw == sw && po->msg.buffer_id == buffer_id;
}

}  // namespace

SystemState Executor::make_initial() const {
  assert(cfg_.topology != nullptr && cfg_.app != nullptr);
  assert(cfg_.host_behavior.size() == cfg_.topology->hosts().size());

  SystemState st;
  st.ctrl_mut().app = cfg_.app->make_initial_state();

  for (const topo::SwitchSpec& spec : cfg_.topology->switches()) {
    of::Switch sw(spec.id, spec.ports, cfg_.switch_buffer_capacity);
    // enable_channel_faults arms every switch; callers can still narrow
    // the fault surface by clearing individual switches' flags afterwards.
    sw.pkt_channel_faults = {.may_drop = cfg_.enable_channel_faults,
                             .may_duplicate = cfg_.enable_channel_faults};
    st.add_switch(std::move(sw));
  }
  for (const topo::HostSpec& spec : cfg_.topology->hosts()) {
    hosts::HostState hs;
    hs.id = spec.id;
    hs.sw = spec.attach_switch;
    hs.port = spec.attach_port;
    hs.burst = cfg_.host_behavior[spec.id].initial_burst;
    st.add_host(std::move(hs));
  }
  for (const auto& prop : props_) st.add_prop(prop->make_state());

  // Dispatch switch_join for every switch and apply resulting commands
  // synchronously (deterministic setup; not part of the explored space).
  for (const topo::SwitchSpec& spec : cfg_.topology->switches()) {
    ctrl::ControllerState& ctrl = st.ctrl_mut();
    ctrl::Ctx ctx(&ctrl.next_xid);
    cfg_.app->switch_join(*ctrl.app, ctx, spec.id);
    EventList ignored;
    push_commands(st, ctx.take_commands(), ignored);
  }
  for (std::size_t i = 0; i < st.switch_count(); ++i) {
    EventList ignored;
    while (st.sw(i).can_process_of()) {
      run_switch_of(st, static_cast<of::SwitchId>(i), ignored);
    }
  }
  return st;
}

std::vector<Transition> Executor::enabled(const SystemState& state,
                                          DiscoveryCache& cache) const {
  // Covers symbolic-discovery candidate checks too: discovery runs as
  // part of enumerating the enabled set.
  const util::PhaseScope phase(util::Phase::kEnabled);
  std::vector<Transition> out;
  const util::Hash128 chash = state.ctrl_hash();

  // --- controller ---
  if (cfg_.fine_interleaving && !state.ctrl().pending_commands.empty()) {
    out.push_back(Transition{.kind = TKind::kCtrlApplyCommand});
  }
  for (const of::Switch& sw : state.switches()) {
    if (sw.of_out.empty()) continue;
    const bool head_is_stats =
        std::holds_alternative<of::StatsReply>(sw.of_out.front());
    if (head_is_stats && cfg_.symbolic_discovery) {
      // Key the per-run cache on every input discover_stats reads: the
      // controller application state AND the per-port tx_bytes seeds
      // (discover.cpp seeds one symbolic var per port with the current
      // counter, so the representatives depend on them). Keying on the
      // app state alone would alias states that differ only in counters,
      // making the cached representatives depend on which state happened
      // to discover first — visit-order-dependent transition payloads
      // that break checkpoint/resume count-identity.
      util::Hash128 skey = chash;
      for (const of::PortId p : sw.ports) {
        const auto it = sw.port_stats.find(p);
        skey = util::hash128_combine(skey, static_cast<std::uint64_t>(p));
        skey = util::hash128_combine(
            skey, it == sw.port_stats.end()
                      ? 0
                      : (it->second.tx_bytes & 0xffffffffULL));
      }
      const std::vector<StatsValues>* vals = cache.find_stats(sw.id, skey);
      if (vals == nullptr) {
        std::vector<StatsValues> discovered;
        if (const auto hit =
                memo_ ? memo_->find_stats(state, sw.id) : nullptr) {
          discovered = *hit;
        } else {
          discovered = discover_stats(cfg_, state, sw.id, cache.stats());
          if (memo_) memo_->store_stats(state, sw.id, discovered);
        }
        cache.store_stats(sw.id, skey, std::move(discovered));
        vals = cache.find_stats(sw.id, skey);
      }
      for (const StatsValues& v : *vals) {
        out.push_back(Transition{.kind = TKind::kCtrlProcessStats,
                                 .a = sw.id,
                                 .stats = v});
      }
      continue;
    }
    out.push_back(Transition{.kind = TKind::kCtrlDispatch, .a = sw.id});
  }
  const auto externals = cfg_.app->external_events(*state.ctrl().app);
  for (std::size_t i = 0; i < externals.size(); ++i) {
    out.push_back(Transition{.kind = TKind::kCtrlExternal,
                             .aux = static_cast<std::uint32_t>(i)});
  }
  for (const of::Switch& sw : state.switches()) {
    if (cfg_.app->wants_stats(*state.ctrl().app, sw.id) &&
        !state.ctrl().pending_stats.contains(sw.id) &&
        state.ctrl().stats_rounds < cfg_.max_stats_rounds) {
      out.push_back(Transition{.kind = TKind::kCtrlRequestStats, .a = sw.id});
    }
  }

  // --- switches ---
  const bool pkt_faults_ok =
      cfg_.max_packet_faults == kUnboundedFaults ||
      state.faults.packet_faults < cfg_.max_packet_faults;
  const bool channel_losses_ok =
      cfg_.max_channel_losses == kUnboundedFaults ||
      state.faults.channel_losses < cfg_.max_channel_losses;
  const bool restarts_ok =
      cfg_.max_switch_restarts == kUnboundedFaults ||
      state.faults.switch_restarts < cfg_.max_switch_restarts;
  for (const of::Switch& sw : state.switches()) {
    if (sw.can_process_pkt()) {
      out.push_back(Transition{.kind = TKind::kSwitchProcessPkt, .a = sw.id});
    }
    if (sw.can_process_of()) {
      out.push_back(Transition{.kind = TKind::kSwitchProcessOf, .a = sw.id});
    }
    if (cfg_.enable_rule_expiry) {
      for (std::size_t idx : sw.expirable_rules()) {
        out.push_back(Transition{.kind = TKind::kRuleExpire,
                                 .a = sw.id,
                                 .aux = static_cast<std::uint32_t>(idx)});
      }
    }
    if (cfg_.enable_channel_faults && pkt_faults_ok) {
      for (const auto& [port, chan] : sw.in_ports) {
        if (chan.empty()) continue;
        if (sw.pkt_channel_faults.may_drop) {
          out.push_back(Transition{.kind = TKind::kChannelDropHead,
                                   .a = sw.id,
                                   .aux = port});
        }
        if (sw.pkt_channel_faults.may_duplicate &&
            chan.size() < cfg_.channel_depth_limit) {
          out.push_back(Transition{.kind = TKind::kChannelDupHead,
                                   .a = sw.id,
                                   .aux = port});
        }
      }
    }
    if (cfg_.enable_ctrl_channel_faults) {
      if (sw.ctrl_channel_down) {
        // Reconnect is free: the number of disconnects is what's bounded.
        out.push_back(Transition{.kind = TKind::kCtrlChannelUp, .a = sw.id});
      } else if (channel_losses_ok) {
        out.push_back(Transition{.kind = TKind::kCtrlChannelDown,
                                 .a = sw.id});
      }
    }
    if (cfg_.enable_switch_restarts && restarts_ok) {
      out.push_back(Transition{.kind = TKind::kSwitchRestart, .a = sw.id});
    }
  }

  // --- topology links (fault model) ---
  if (cfg_.enable_link_faults) {
    const bool link_failures_ok =
        cfg_.max_link_failures == kUnboundedFaults ||
        state.faults.link_failures < cfg_.max_link_failures;
    const auto& links = cfg_.topology->links();
    for (std::size_t li = 0; li < links.size(); ++li) {
      const topo::LinkSpec& l = links[li];
      const bool down = state.sw(l.sw_a).down_ports.contains(l.port_a);
      if (down) {
        if (cfg_.enable_link_repair) {
          out.push_back(Transition{.kind = TKind::kLinkUp,
                                   .a = static_cast<std::uint32_t>(li)});
        }
      } else if (link_failures_ok) {
        out.push_back(Transition{.kind = TKind::kLinkDown,
                                 .a = static_cast<std::uint32_t>(li)});
      }
    }
  }

  // --- hosts ---
  for (const hosts::HostState& hs : state.hosts()) {
    const hosts::HostBehavior& hb = cfg_.host_behavior[hs.id];
    if (!hs.input.empty()) {
      out.push_back(Transition{.kind = TKind::kHostRecv, .a = hs.id});
    }
    if (!hs.pending_replies.empty()) {
      out.push_back(Transition{.kind = TKind::kHostSendReply, .a = hs.id});
    }
    if (hb.can_move) {
      const auto& alts = cfg_.topology->host(hs.id).alt_locations;
      for (std::size_t i = 0; i < alts.size(); ++i) {
        if ((hs.moves_used & (1u << i)) == 0) {
          out.push_back(Transition{.kind = TKind::kHostMove,
                                   .a = hs.id,
                                   .aux = static_cast<std::uint32_t>(i)});
        }
      }
    }
    // A duplicate SYN is a packet-level fault like a channel dup, and
    // spends from the same FaultBudget class (it predates the budget and
    // used to be free, letting --faults exclude channels but not this).
    if (hb.can_dup && !hs.dup_used && hs.sends_done > 0 && hs.burst > 0 &&
        !hb.script.empty() && pkt_faults_ok) {
      out.push_back(Transition{.kind = TKind::kHostSendDup, .a = hs.id});
    }
    if (!hs.can_send(hb)) continue;
    if (hb.discovery_sends && cfg_.symbolic_discovery) {
      // Same completeness rule as the stats key above: discover_packets
      // reads the host's current <switch, port> location (hosts move via
      // kHostMove), so the location joins the cache key.
      const util::Hash128 pkey = util::hash128_combine(
          util::hash128_combine(chash, static_cast<std::uint64_t>(hs.sw)),
          static_cast<std::uint64_t>(hs.port));
      const std::vector<sym::PacketFields>* pkts =
          cache.find_packets(hs.id, pkey);
      if (pkts == nullptr) {
        std::vector<sym::PacketFields> discovered;
        if (const auto hit =
                memo_ ? memo_->find_packets(state, hs.id) : nullptr) {
          discovered = *hit;
        } else {
          discovered = discover_packets(cfg_, state, hs.id, cache.stats());
          if (memo_) memo_->store_packets(state, hs.id, discovered);
        }
        cache.store_packets(hs.id, pkey, std::move(discovered));
        pkts = cache.find_packets(hs.id, pkey);
      }
      for (const sym::PacketFields& f : *pkts) {
        out.push_back(Transition{.kind = TKind::kHostSendDiscovered,
                                 .a = hs.id,
                                 .fields = f});
      }
    } else if (!hb.discovery_sends) {
      out.push_back(Transition{.kind = TKind::kHostSendScript, .a = hs.id});
    }
  }
  return out;
}

void Executor::inject_host_packet(SystemState& state, of::HostId host,
                                  const sym::PacketFields& hdr,
                                  std::uint32_t flow,
                                  EventList& events) const {
  hosts::HostState& hs = state.host_mut(host);
  of::Packet pkt;
  pkt.hdr = hdr;
  pkt.flow_id = flow;
  pkt.uid = state.next_uid++;
  pkt.copy_id = state.next_copy++;
  pkt.sender = host;
  events.push_back(EvPacketSent{host, pkt});
  state.sw_mut(hs.sw).enqueue_packet(hs.port, std::move(pkt));
}

void Executor::deliver(SystemState& state, of::SwitchId from_sw,
                       of::PortId out_port, of::Packet pkt,
                       EventList& events) const {
  if (state.sw(from_sw).down_ports.contains(out_port)) {
    // The attached link is down: the copy is lost on the wire. A rule that
    // keeps forwarding here after the failure is a stale-state black hole.
    events.push_back(EvPacketDeadPort{from_sw, out_port, std::move(pkt)});
    return;
  }
  const topo::PortPeer peer = cfg_.topology->switch_peer(from_sw, out_port);
  if (peer.kind == topo::PortPeer::Kind::kSwitchLink) {
    state.sw_mut(peer.sw).enqueue_packet(peer.port, std::move(pkt));
    return;
  }
  for (std::size_t i = 0; i < state.host_count(); ++i) {
    const hosts::HostState& hs = state.host(i);
    if (hs.sw == from_sw && hs.port == out_port) {
      state.host_mut(i).input.push(std::move(pkt));
      return;
    }
  }
  // Nothing attached (e.g. the host moved away): the copy vanishes.
  events.push_back(EvPacketDeadPort{from_sw, out_port, std::move(pkt)});
}

void Executor::handle_outcome(SystemState& state, of::SwitchId sw,
                              const of::PacketOutcome& oc,
                              EventList& events) const {
  events.push_back(EvPacketProcessed{
      .sw = sw,
      .in_port = oc.in_port,
      .pkt = oc.packet,
      .copies_out = static_cast<int>(oc.forwards.size()),
      .to_controller = oc.to_controller,
      .dropped_by_rule = oc.dropped_by_rule && !oc.explicit_discard,
      .dropped_buffer_full = oc.dropped_buffer_full,
      .dropped_no_ctrl = oc.dropped_no_ctrl,
      .revisited = oc.revisited,
      .from_buffer = oc.from_buffer,
      .explicit_discard = oc.explicit_discard,
  });
  for (const auto& [port, pkt] : oc.forwards) {
    of::Packet copy = pkt;
    copy.copy_id = state.next_copy++;
    deliver(state, sw, port, std::move(copy), events);
  }
}

void Executor::run_switch_pkt(SystemState& state, of::SwitchId sw,
                              EventList& events) const {
  for (const of::PacketOutcome& oc : state.sw_mut(sw).process_pkt()) {
    handle_outcome(state, sw, oc, events);
  }
}

void Executor::run_switch_of(SystemState& state, of::SwitchId sw,
                             EventList& events) const {
  const of::OfOutcome oc = state.sw_mut(sw).process_of();
  if (oc.installed) events.push_back(EvRuleInstalled{sw, *oc.installed});
  if (oc.removed_match) {
    events.push_back(EvRuleRemoved{sw, *oc.removed_match, oc.removed_count});
  }
  if (oc.packet) {
    if (!oc.packet->from_buffer && !oc.packet->explicit_discard) {
      events.push_back(EvCtrlPacketInjected{sw, oc.packet->packet});
    }
    handle_outcome(state, sw, *oc.packet, events);
  }
}

void Executor::ctrl_dispatch(SystemState& state, of::SwitchId sw,
                             EventList& events) const {
  const of::ToController msg = state.sw_mut(sw).of_out.pop();
  ctrl::DispatchResult res =
      ctrl::dispatch_message(*cfg_.app, state.ctrl_mut(), sw, msg);
  if (res.was_packet_in) {
    events.push_back(EvPacketIn{sw, res.packet_in.in_port,
                                res.packet_in.packet,
                                res.packet_in.reason});
    EvPacketInHandled handled;
    handled.sw = sw;
    handled.in_port = res.packet_in.in_port;
    handled.pkt = res.packet_in.packet;
    for (const ctrl::Command& c : res.commands) {
      if (const auto* ir = std::get_if<ctrl::CmdInstallRule>(&c)) {
        handled.installs.emplace_back(ir->sw, ir->rule);
      }
      if (releases_buffer(c, sw, res.packet_in.buffer_id)) {
        handled.sent_packet_out = true;
      }
    }
    events.push_back(std::move(handled));
  } else if (std::holds_alternative<of::StatsReply>(msg)) {
    events.push_back(EvStatsHandled{sw});
  } else if (const auto* ps = std::get_if<of::PortStatus>(&msg)) {
    events.push_back(EvPortStatusHandled{sw, ps->port, ps->up});
  }
  push_commands(state, std::move(res.commands), events);
}

void Executor::push_commands(SystemState& state,
                             std::vector<ctrl::Command> cmds,
                             EventList& events) const {
  (void)events;
  if (cmds.empty()) return;
  ctrl::ControllerState& ctrl = state.ctrl_mut();
  for (ctrl::Command& c : cmds) {
    const of::SwitchId target = ctrl::command_target(c);
    of::ToSwitch msg = ctrl::command_to_message(c);
    // Controller-constructed packets (bufferless packet_out) get their
    // model identity here, deterministically.
    if (auto* po = std::get_if<of::PacketOut>(&msg)) {
      if (po->buffer_id == of::kNoBuffer && po->packet.has_value()) {
        po->packet->uid = state.next_uid++;
        po->packet->copy_id = state.next_copy++;
      }
    }
    if (cfg_.fine_interleaving) {
      ctrl.pending_commands.emplace_back(target, std::move(msg));
    } else if (!state.sw(target).ctrl_channel_down) {
      // A message sent to a disconnected switch is lost in transit.
      state.sw_mut(target).push_of(std::move(msg), ctrl.next_of_seq++);
    }
  }
}

void Executor::replay_handshake(SystemState& state, of::SwitchId sw,
                                EventList& events) const {
  ctrl::ControllerState& ctrl = state.ctrl_mut();
  // An outstanding stats request to this switch can never be answered
  // across a reconnect; clear it so stats polling stays live.
  ctrl.pending_stats.erase(sw);
  ctrl::Ctx ctx(&ctrl.next_xid);
  cfg_.app->switch_leave(*ctrl.app, ctx, sw);
  cfg_.app->switch_join(*ctrl.app, ctx, sw);
  push_commands(state, ctx.take_commands(), events);
  const std::vector<of::PortId> down(state.sw(sw).down_ports.begin(),
                                     state.sw(sw).down_ports.end());
  if (!down.empty()) {
    of::Switch& swm = state.sw_mut(sw);
    for (of::PortId p : down) swm.emit_port_status(p, /*up=*/false);
  }
}

void Executor::drain_lockstep(SystemState& state, EventList& events) const {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < state.switch_count(); ++i) {
      while (state.sw(i).can_process_of()) {
        run_switch_of(state, static_cast<of::SwitchId>(i), events);
        progress = true;
      }
    }
    for (std::size_t i = 0; i < state.switch_count(); ++i) {
      if (state.sw(i).of_out.empty()) continue;
      // Stats replies are consumed here too, with their *concrete* values:
      // in lock-step there is no delayed-statistics nondeterminism to
      // discover. This is why NO-DELAY misses the load-dependent TE bugs
      // (BUG-X, BUG-XI), matching Table 2 of the paper.
      ctrl_dispatch(state, static_cast<of::SwitchId>(i), events);
      progress = true;
    }
  }
}

void Executor::apply(SystemState& state, const Transition& t,
                     std::vector<Violation>& violations) const {
  const util::PhaseScope phase(util::Phase::kApply);
  EventList events;
  switch (t.kind) {
    case TKind::kHostSendScript: {
      hosts::HostState& hs = state.host_mut(t.a);
      const hosts::HostBehavior& hb = cfg_.host_behavior[t.a];
      assert(hs.sends_done < static_cast<int>(hb.script.size()));
      const hosts::ScriptEntry& e =
          hb.script[static_cast<std::size_t>(hs.sends_done)];
      inject_host_packet(state, t.a, e.hdr, e.flow_id, events);
      ++hs.sends_done;
      --hs.burst;
      break;
    }
    case TKind::kHostSendDiscovered: {
      hosts::HostState& hs = state.host_mut(t.a);
      // Discovered packets carry a synthetic flow tag (their uid); flow
      // grouping for FLOW-IR uses App::is_same_flow on the headers instead.
      inject_host_packet(state, t.a, t.fields, state.next_uid, events);
      ++hs.sends_done;
      --hs.burst;
      break;
    }
    case TKind::kHostSendDup: {
      hosts::HostState& hs = state.host_mut(t.a);
      const hosts::HostBehavior& hb = cfg_.host_behavior[t.a];
      const hosts::ScriptEntry& e = hb.script.front();
      inject_host_packet(state, t.a, e.hdr, e.flow_id, events);
      hs.dup_used = true;
      --hs.burst;
      if (cfg_.max_packet_faults != kUnboundedFaults) {
        ++state.faults.packet_faults;
      }
      break;
    }
    case TKind::kHostSendReply: {
      hosts::HostState& hs = state.host_mut(t.a);
      assert(!hs.pending_replies.empty());
      const hosts::PendingReply r = hs.pending_replies.front();
      hs.pending_replies.pop_front();
      inject_host_packet(state, t.a, r.hdr, r.flow_id, events);
      break;
    }
    case TKind::kHostRecv: {
      hosts::HostState& hs = state.host_mut(t.a);
      of::Packet pkt = hs.input.pop();
      ++hs.received;
      ++hs.burst;  // PKT-SEQ replenishment: +1 per received packet
      const hosts::HostBehavior& hb = cfg_.host_behavior[t.a];
      const topo::HostSpec& spec = cfg_.topology->host(t.a);
      events.push_back(EvPacketDelivered{t.a, pkt, spec.mac});
      if (hb.echo && hosts::should_reply(spec, pkt)) {
        hs.pending_replies.push_back(hosts::echo_reply(spec, pkt));
      }
      break;
    }
    case TKind::kHostMove: {
      hosts::HostState& hs = state.host_mut(t.a);
      const auto& alts = cfg_.topology->host(t.a).alt_locations;
      const auto [to_sw, to_port] = alts[t.aux];
      hs.sw = to_sw;
      hs.port = to_port;
      hs.moves_used |= static_cast<std::uint8_t>(1u << t.aux);
      events.push_back(EvHostMoved{t.a, to_sw, to_port});
      break;
    }
    case TKind::kSwitchProcessPkt:
      run_switch_pkt(state, t.a, events);
      break;
    case TKind::kSwitchProcessOf:
      run_switch_of(state, t.a, events);
      break;
    case TKind::kCtrlDispatch:
      ctrl_dispatch(state, t.a, events);
      break;
    case TKind::kCtrlApplyCommand: {
      assert(!state.ctrl().pending_commands.empty());
      ctrl::ControllerState& ctrl = state.ctrl_mut();
      auto [target, msg] = std::move(ctrl.pending_commands.front());
      ctrl.pending_commands.pop_front();
      if (!state.sw(target).ctrl_channel_down) {
        state.sw_mut(target).push_of(std::move(msg), ctrl.next_of_seq++);
      }
      break;
    }
    case TKind::kCtrlExternal: {
      ctrl::ControllerState& ctrl = state.ctrl_mut();
      ctrl::Ctx ctx(&ctrl.next_xid);
      cfg_.app->on_external(*ctrl.app, ctx, t.aux);
      push_commands(state, ctx.take_commands(), events);
      break;
    }
    case TKind::kCtrlRequestStats: {
      ctrl::ControllerState& ctrl = state.ctrl_mut();
      ctrl::Ctx ctx(&ctrl.next_xid);
      ctx.request_stats(t.a);
      ctrl.pending_stats.insert(t.a);
      ++ctrl.stats_rounds;
      push_commands(state, ctx.take_commands(), events);
      break;
    }
    case TKind::kCtrlProcessStats: {
      of::Switch& swm = state.sw_mut(t.a);
      assert(!swm.of_out.empty() &&
             std::holds_alternative<of::StatsReply>(swm.of_out.front()));
      swm.of_out.pop();
      auto cmds = ctrl::dispatch_stats_with_values(*cfg_.app,
                                                   state.ctrl_mut(), t.a,
                                                   t.stats);
      events.push_back(EvStatsHandled{t.a});
      push_commands(state, std::move(cmds), events);
      break;
    }
    case TKind::kRuleExpire: {
      of::Switch& swm = state.sw_mut(t.a);
      events.push_back(EvRuleExpired{t.a, swm.table.rules()[t.aux]});
      swm.expire_rule(t.aux);
      break;
    }
    case TKind::kChannelDropHead: {
      of::Switch& swm = state.sw_mut(t.a);
      auto& chan = swm.in_ports.at(t.aux);
      events.push_back(EvChannelDrop{t.a, t.aux, chan.front()});
      chan.drop_head();
      if (cfg_.max_packet_faults != kUnboundedFaults) {
        ++state.faults.packet_faults;
      }
      break;
    }
    case TKind::kChannelDupHead: {
      of::Switch& swm = state.sw_mut(t.a);
      auto& chan = swm.in_ports.at(t.aux);
      events.push_back(EvChannelDup{t.a, t.aux, chan.front()});
      chan.duplicate_head();
      if (cfg_.max_packet_faults != kUnboundedFaults) {
        ++state.faults.packet_faults;
      }
      break;
    }
    case TKind::kDiscoverPackets:
    case TKind::kDiscoverStats:
      // Discovery runs synchronously inside enabled(); these labels exist
      // for trace output only.
      break;
    case TKind::kLinkDown: {
      const topo::LinkSpec& l = cfg_.topology->links()[t.a];
      {
        of::Switch& swm = state.sw_mut(l.sw_a);
        swm.down_ports.insert(l.port_a);
        swm.emit_port_status(l.port_a, /*up=*/false);
      }
      {
        of::Switch& swm = state.sw_mut(l.sw_b);
        swm.down_ports.insert(l.port_b);
        swm.emit_port_status(l.port_b, /*up=*/false);
      }
      if (cfg_.max_link_failures != kUnboundedFaults) {
        ++state.faults.link_failures;
      }
      events.push_back(EvLinkDown{t.a, l.sw_a, l.port_a, l.sw_b, l.port_b});
      break;
    }
    case TKind::kLinkUp: {
      const topo::LinkSpec& l = cfg_.topology->links()[t.a];
      {
        of::Switch& swm = state.sw_mut(l.sw_a);
        swm.down_ports.erase(l.port_a);
        swm.emit_port_status(l.port_a, /*up=*/true);
      }
      {
        of::Switch& swm = state.sw_mut(l.sw_b);
        swm.down_ports.erase(l.port_b);
        swm.emit_port_status(l.port_b, /*up=*/true);
      }
      events.push_back(EvLinkUp{t.a, l.sw_a, l.port_a, l.sw_b, l.port_b});
      break;
    }
    case TKind::kCtrlChannelDown: {
      const of::Switch::ChannelLoss loss =
          state.sw_mut(t.a).disconnect_ctrl();
      if (cfg_.max_channel_losses != kUnboundedFaults) {
        ++state.faults.channel_losses;
      }
      events.push_back(
          EvCtrlChannelDown{t.a, loss.lost_to_switch, loss.lost_to_ctrl});
      break;
    }
    case TKind::kCtrlChannelUp: {
      state.sw_mut(t.a).reconnect_ctrl();
      replay_handshake(state, t.a, events);
      events.push_back(EvCtrlChannelUp{t.a});
      break;
    }
    case TKind::kSwitchRestart: {
      const of::Switch::RestartSummary sum = state.sw_mut(t.a).restart();
      if (cfg_.max_switch_restarts != kUnboundedFaults) {
        ++state.faults.switch_restarts;
      }
      replay_handshake(state, t.a, events);
      events.push_back(
          EvSwitchRestart{t.a, sum.lost_rules, sum.lost_buffered});
      break;
    }
  }

  if (cfg_.no_delay) drain_lockstep(state, events);
  feed_properties(state, events, violations);
}

void Executor::at_quiescence(SystemState& state,
                             std::vector<Violation>& violations) const {
  const util::PhaseScope phase(util::Phase::kPropertyCheck);
  for (std::size_t i = 0; i < props_.size(); ++i) {
    props_[i]->at_quiescence(state.prop_mut(i), state, violations);
  }
}

void Executor::feed_properties(SystemState& state, const EventList& events,
                               std::vector<Violation>& violations) const {
  // Nested inside kApply: the property slice is carved out of the apply
  // time, so the two phases never double-count.
  const util::PhaseScope phase(util::Phase::kPropertyCheck);
  // Monitors only react to events; with none, prop_mut() would unshare
  // and re-hash every monitor snapshot for nothing.
  if (events.empty()) return;
  for (std::size_t i = 0; i < props_.size(); ++i) {
    props_[i]->on_events(state.prop_mut(i), events, state, violations);
  }
}

}  // namespace nicemc::mc
