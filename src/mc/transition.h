// Transitions of the system model (paper Section 2.2): host sends/receives
// and moves, switch packet/OpenFlow processing, controller dispatch, rule
// expiry, channel faults, external application events, and NICE's special
// discover_packets / discover_stats transitions (Figure 5).
//
// Transitions are self-describing values: replaying the sequence of
// transitions from the initial state deterministically reproduces a state
// (this is how counterexample traces work, paper Section 6).
#ifndef NICE_MC_TRANSITION_H
#define NICE_MC_TRANSITION_H

#include <cstdint>
#include <string>
#include <vector>

#include "of/packet.h"
#include "sym/sympacket.h"
#include "util/ser.h"

namespace nicemc::mc {

enum class TKind : std::uint8_t {
  kHostSendScript,     // host sends its next scripted packet
  kHostSendDiscovered,  // host sends a discovered relevant packet (fields)
  kHostSendDup,        // host re-sends script entry 0 (duplicate SYN)
  kHostSendReply,      // host sends the head pending reply
  kHostRecv,           // host consumes the head of its input queue
  kHostMove,           // mobile host moves to alt location `aux`
  kSwitchProcessPkt,   // paper's process_pkt
  kSwitchProcessOf,    // paper's process_of
  kCtrlDispatch,       // controller consumes head switch→controller message
  kCtrlApplyCommand,   // FINE-INTERLEAVING: apply one pending command
  kCtrlExternal,       // app-level external event `aux` (e.g. LB reconfig)
  kCtrlRequestStats,   // controller queries port stats of switch `a`
  kCtrlProcessStats,   // consume a stats reply with representative values
  kRuleExpire,         // rule `aux` (insertion index) of switch `a` expires
  kChannelDropHead,    // fault model: drop head of <switch a, port aux>
  kChannelDupHead,     // fault model: duplicate head of <switch a, port aux>
  kDiscoverPackets,    // run symbolic execution of packet_in for host `a`
  kDiscoverStats,      // run symbolic execution of stats handler, switch `a`
  kLinkDown,           // fault model: topology link `a` fails (both ends)
  kLinkUp,             // fault model: topology link `a` repairs
  kCtrlChannelDown,    // fault model: switch `a` loses its controller link
  kCtrlChannelUp,      // fault model: switch `a` reconnects (handshake)
  kSwitchRestart,      // fault model: switch `a` reboots (table/buffers wiped)
};

/// Stable machine-readable name of a TKind ("host_send_script", ...), for
/// the structured trace exports (mc/trace.h) — Transition::label() is the
/// human form with actor ids baked in.
[[nodiscard]] const char* tkind_name(TKind kind) noexcept;

struct Transition {
  TKind kind{TKind::kHostRecv};
  std::uint32_t a{0};    // host or switch id
  std::uint32_t aux{0};  // alt-location / external-event / rule / port index
  /// Payload of kHostSendDiscovered: the representative packet.
  sym::PacketFields fields;
  /// Payload of kCtrlProcessStats: representative per-port tx_bytes.
  std::vector<std::pair<of::PortId, std::uint64_t>> stats;

  friend bool operator==(const Transition&, const Transition&) = default;

  [[nodiscard]] std::string label() const;
  void serialize(util::Ser& s) const;
  /// Exact inverse of serialize() — transitions are self-describing
  /// values, so a checkpointed frontier stores them verbatim and replays
  /// them to rebuild states (mc/checkpoint.h).
  [[nodiscard]] static Transition deserialize(util::Des& d);
};

}  // namespace nicemc::mc

#endif  // NICE_MC_TRANSITION_H
