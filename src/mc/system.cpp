#include "mc/system.h"

namespace nicemc::mc {

SystemState SystemState::clone() const {
  SystemState c;
  // Snap copies share the underlying snapshots: O(#components) refcount
  // bumps, no component is deep-copied until someone calls a *_mut().
  c.ctrl_ = ctrl_;
  c.switches_ = switches_;
  c.hosts_ = hosts_;
  c.props_ = props_;
  c.next_uid = next_uid;
  c.next_copy = next_copy;
  c.faults = faults;
  return c;
}

void SystemState::serialize(util::Ser& s, bool canonical) const {
  // Byte-identical to serializing every component directly into `s` (the
  // load-bearing canonical-bytes invariant): same order, same count
  // prefixes, same per-component bytes — just bulk-appended from the
  // memoized forms.
  s.append(ctrl_.form(canonical).bytes);
  s.put_u32(static_cast<std::uint32_t>(switches_.size()));
  for (const auto& sw : switches_) s.append(sw.form(canonical).bytes);
  s.put_u32(static_cast<std::uint32_t>(hosts_.size()));
  for (const auto& h : hosts_) s.append(h.form(canonical).bytes);
  s.put_u32(static_cast<std::uint32_t>(props_.size()));
  for (const auto& p : props_) s.append(p.form(canonical).bytes);
  s.put_u32(next_uid);
  // The consumed fault budget is semantic state: a state with one link
  // failure left differs from the same configuration with none.
  faults.serialize(s);
  // The copy-id counter is naming bookkeeping (see of::Packet::serialize);
  // only the raw (NO-SWITCH-REDUCTION) form distinguishes states by it.
  if (!canonical) s.put_u32(next_copy);
}

std::string SystemState::collapse_key(util::CollapseTable& table,
                                      bool canonical) const {
  // Component ids in serialization order, prefixed by one packed shape
  // word (the three component counts): id-tuple equality ⇔ canonical-
  // bytes equality, because id equality ⇔ blob equality (CollapseTable's
  // interning contract), the order fixes which id sits at which position,
  // and the shape word disambiguates the variable-length sections (counts
  // are fixed within one search — the topology never changes — but the
  // key stays self-describing at 4 bytes instead of three count words).
  util::Ser s;
  s.reserve(4 * (switches_.size() + hosts_.size() + props_.size() + 4));
  s.put_u32(static_cast<std::uint32_t>((switches_.size() << 20) |
                                       (hosts_.size() << 10) |
                                       props_.size()));
  s.put_u32(ctrl_.form_id(canonical, table));
  for (const auto& sw : switches_) s.put_u32(sw.form_id(canonical, table));
  for (const auto& h : hosts_) s.put_u32(h.form_id(canonical, table));
  for (const auto& p : props_) s.put_u32(p.form_id(canonical, table));
  s.put_u32(next_uid);
  faults.serialize(s);
  if (!canonical) s.put_u32(next_copy);
  return s.take();
}

util::Hash128 SystemState::hash(bool canonical) const {
  // Combine the memoized component hashes in serialization order. Two
  // states have equal combined hashes iff their canonical serializations
  // are byte-identical (up to negligible hash collisions): component
  // hashes are hashes of exactly the bytes serialize() would append, and
  // the counts + trailing counters are mixed in the same positions.
  util::Hash128 h{0x6e6963652d6d6321ULL, 0x73746174652d6832ULL};
  h = util::hash128_combine(h, ctrl_.form_hash(canonical));
  h = util::hash128_combine(h, static_cast<std::uint64_t>(switches_.size()));
  for (const auto& sw : switches_) {
    h = util::hash128_combine(h, sw.form_hash(canonical));
  }
  h = util::hash128_combine(h, static_cast<std::uint64_t>(hosts_.size()));
  for (const auto& hs : hosts_) {
    h = util::hash128_combine(h, hs.form_hash(canonical));
  }
  h = util::hash128_combine(h, static_cast<std::uint64_t>(props_.size()));
  for (const auto& p : props_) {
    h = util::hash128_combine(h, p.form_hash(canonical));
  }
  h = util::hash128_combine(h, static_cast<std::uint64_t>(next_uid));
  h = util::hash128_combine(
      h, (static_cast<std::uint64_t>(faults.link_failures) << 32) |
             faults.channel_losses);
  h = util::hash128_combine(
      h, (static_cast<std::uint64_t>(faults.switch_restarts) << 32) |
             faults.packet_faults);
  if (!canonical) {
    h = util::hash128_combine(h, static_cast<std::uint64_t>(next_copy));
  }
  return h;
}

std::size_t SystemState::total_forgotten() const {
  std::size_t n = 0;
  for (const of::Switch& sw : switches()) n += sw.forgotten_packets();
  return n;
}

}  // namespace nicemc::mc
