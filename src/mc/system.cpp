#include "mc/system.h"

namespace nicemc::mc {

SystemState SystemState::clone() const {
  SystemState c;
  c.ctrl = ctrl;  // ControllerState copy ctor deep-clones the app state
  c.switches = switches;
  c.hosts = hosts;
  c.props.reserve(props.size());
  for (const auto& p : props) c.props.push_back(p->clone());
  c.next_uid = next_uid;
  c.next_copy = next_copy;
  return c;
}

void SystemState::serialize(util::Ser& s, bool canonical) const {
  ctrl.serialize(s);
  s.put_u32(static_cast<std::uint32_t>(switches.size()));
  for (const of::Switch& sw : switches) sw.serialize(s, canonical);
  s.put_u32(static_cast<std::uint32_t>(hosts.size()));
  for (const hosts::HostState& h : hosts) h.serialize(s, canonical);
  s.put_u32(static_cast<std::uint32_t>(props.size()));
  for (const auto& p : props) p->serialize(s);
  s.put_u32(next_uid);
  // The copy-id counter is naming bookkeeping (see of::Packet::serialize);
  // only the raw (NO-SWITCH-REDUCTION) form distinguishes states by it.
  if (!canonical) s.put_u32(next_copy);
}

util::Hash128 SystemState::hash(bool canonical_tables) const {
  util::Ser s;
  serialize(s, canonical_tables);
  return s.hash();
}

std::size_t SystemState::total_forgotten() const {
  std::size_t n = 0;
  for (const of::Switch& sw : switches) n += sw.forgotten_packets();
  return n;
}

}  // namespace nicemc::mc
