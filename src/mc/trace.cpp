#include "mc/trace.h"

#include <algorithm>

namespace nicemc::mc {

std::vector<Transition> trace_of(std::shared_ptr<const PathNode> node) {
  std::vector<Transition> out;
  for (const PathNode* n = node.get(); n != nullptr; n = n->parent.get()) {
    out.push_back(n->transition);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<std::string> trace_lines(const std::vector<Transition>& trace) {
  std::vector<std::string> out;
  out.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out.push_back(std::to_string(i + 1) + ". " + trace[i].label());
  }
  return out;
}

namespace {

/// Escape for both JSON strings and DOT double-quoted labels (the shared
/// subset: backslash, quote, and control characters).
std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

void append_steps_json(std::string& out,
                       const std::vector<Transition>& trace) {
  out += "\"steps\":[";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out += ',';
    const Transition& t = trace[i];
    out += "{\"step\":" + std::to_string(i + 1);
    out += ",\"kind\":\"";
    out += tkind_name(t.kind);
    out += "\",\"actor\":" + std::to_string(t.a);
    out += ",\"aux\":" + std::to_string(t.aux);
    out += ",\"label\":\"" + escaped(t.label()) + "\"}";
  }
  out += ']';
}

std::string steps_dot(const std::vector<Transition>& trace,
                      std::string_view final_label) {
  std::string out = "digraph trace {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=box, fontname=\"monospace\"];\n";
  out += "  s0 [label=\"s0: initial\"];\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::string to = "s" + std::to_string(i + 1);
    if (i + 1 == trace.size() && !final_label.empty()) {
      out += "  " + to + " [label=\"" + to + ": " +
             escaped(final_label) + "\", color=red, fontcolor=red];\n";
    } else {
      out += "  " + to + " [label=\"" + to + "\"];\n";
    }
    out += "  s" + std::to_string(i) + " -> " + to + " [label=\"" +
           std::to_string(i + 1) + ". " + escaped(trace[i].label()) +
           "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace

std::string trace_json(const std::vector<Transition>& trace) {
  std::string out = "{\"length\":" + std::to_string(trace.size()) + ",";
  append_steps_json(out, trace);
  out += '}';
  return out;
}

std::string violation_trace_json(std::string_view property,
                                 std::string_view message,
                                 const std::vector<Transition>& trace) {
  std::string out = "{\"property\":\"";
  out += escaped(property);
  out += "\",\"message\":\"";
  out += escaped(message);
  out += "\",\"length\":" + std::to_string(trace.size()) + ",";
  append_steps_json(out, trace);
  out += '}';
  return out;
}

std::string trace_dot(const std::vector<Transition>& trace) {
  return steps_dot(trace, {});
}

std::string violation_trace_dot(std::string_view property,
                                std::string_view message,
                                const std::vector<Transition>& trace) {
  std::string label = "VIOLATION ";
  label += property;
  if (!message.empty()) {
    label += "\n";
    label += message;
  }
  return steps_dot(trace, label);
}

SystemState replay(const Executor& executor,
                   const std::vector<Transition>& trace,
                   std::vector<Violation>& violations) {
  SystemState state = executor.make_initial();
  for (const Transition& t : trace) {
    executor.apply(state, t, violations);
  }
  return state;
}

}  // namespace nicemc::mc
