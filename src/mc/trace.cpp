#include "mc/trace.h"

#include <algorithm>

namespace nicemc::mc {

std::vector<Transition> trace_of(std::shared_ptr<const PathNode> node) {
  std::vector<Transition> out;
  for (const PathNode* n = node.get(); n != nullptr; n = n->parent.get()) {
    out.push_back(n->transition);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<std::string> trace_lines(const std::vector<Transition>& trace) {
  std::vector<std::string> out;
  out.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out.push_back(std::to_string(i + 1) + ". " + trace[i].label());
  }
  return out;
}

SystemState replay(const Executor& executor,
                   const std::vector<Transition>& trace,
                   std::vector<Violation>& violations) {
  SystemState state = executor.make_initial();
  for (const Transition& t : trace) {
    executor.apply(state, t, violations);
  }
  return state;
}

}  // namespace nicemc::mc
