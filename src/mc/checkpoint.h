// Durable search: crash-safe checkpoint/restore of the full search state,
// the memory-budget watchdog, and cooperative signal handling.
//
// A checkpoint snapshots everything an exhaustive run needs to continue
// as if it had never stopped: the explored-state store (util/seen_set.h),
// the component-interning table (util/collapse.h — restored first, so the
// id tuples stored elsewhere stay valid verbatim), the reduction layer's
// sleep store with its wakeup trees (mc/por/sleep.h), the pending
// frontier, and the run counters/violations. Shard placement in every
// store is a pure function of the entry bytes, so a snapshot is
// self-contained and restores correctly under any shard count.
//
// Frontier nodes are the one piece with no byte-level deserializer:
// SystemState has a canonical serializer but no inverse. The checkpoint
// leans on the engine's deterministic-replay contract instead (mc/trace.h,
// paper Section 6): every SearchNode satisfies
//     node.state ≡ replay(trace_of(node.path))
// so the snapshot stores the shared PathNode DAG as a parent-indexed
// table of self-describing transitions and rebuilds states on restore by
// one memoized replay pass — prefixes are computed once and shared, just
// like the live search shares them.
//
// Crash safety: two slot files (`<path>.a` / `<path>.b`) written
// alternately via write-to-temp + fsync + atomic rename, each carrying a
// version, a monotonically increasing sequence number, and a 128-bit
// payload checksum. A SIGKILL at any instant leaves at least one fully
// valid slot; the loader validates both and picks the highest valid
// sequence, reporting a per-slot diagnostic for anything it rejects
// (truncation, bit flips, version mismatch).
#ifndef NICE_MC_CHECKPOINT_H
#define NICE_MC_CHECKPOINT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mc/frontier.h"
#include "mc/search_core.h"
#include "util/hash.h"
#include "util/ser.h"

namespace nicemc::mc {

/// ---- Cooperative signal handling ----------------------------------------
///
/// One process-wide flag, set by SIGINT/SIGTERM (when installed) or by
/// request_interrupt() from tests. The drivers poll it between expansions
/// when a Durability context is active, checkpoint, and halt with
/// LimitReason::kInterrupted — honoring it clears the flag.
void install_cooperative_signal_handlers();
void request_interrupt();
void clear_interrupt();
[[nodiscard]] bool interrupt_requested();

/// ---- Checkpoint file layer ----------------------------------------------

/// The two A/B slot paths for a configured checkpoint path.
[[nodiscard]] std::string checkpoint_slot_a(const std::string& path);
[[nodiscard]] std::string checkpoint_slot_b(const std::string& path);

/// One slot file, read and validated (magic, version, declared payload
/// size, 128-bit payload checksum). `error` explains any rejection —
/// truncation, corruption, and version mismatch each get a distinct,
/// human-readable diagnostic.
struct SlotInfo {
  bool valid{false};
  std::uint64_t sequence{0};
  std::string payload;  // checksum-verified payload bytes
  std::string error;    // non-empty exactly when !valid
};
[[nodiscard]] SlotInfo read_checkpoint_slot(const std::string& slot_path);

/// Frame `payload` into the on-disk format and write it crash-safely to
/// `slot_path` (temp file + fsync + atomic rename). Returns false (with
/// `error`) on I/O failure; the previous slot contents survive any
/// failure or kill mid-write.
bool write_checkpoint_slot(const std::string& slot_path,
                           std::uint64_t sequence, std::string_view payload,
                           std::string& error);

/// Fingerprint of everything a checkpoint must agree on to be resumable:
/// the search-shaping options (strategy, store mode, reduction, depth cap,
/// stop-at-first) and the scenario's canonical initial state (topology,
/// app, host scripts, installed property monitors). A sanity gate against
/// resuming the wrong scenario — not a security boundary.
[[nodiscard]] util::Hash128 search_config_fingerprint(
    const SystemConfig& cfg, const CheckerOptions& options,
    const Executor& executor);

/// ---- Durability context --------------------------------------------------

/// Per-run durability state owned by the Checker façade and threaded into
/// the drivers: periodic/at-halt checkpointing, resume seeding, the
/// memory-budget watchdog, and interrupt polling. Thread-safe where the
/// parallel driver needs it (save() is called with workers quiesced; the
/// watchdog and due() checks are called by any worker).
class Durability {
 public:
  /// `config_fp` fingerprints everything a checkpoint must agree on to be
  /// resumable (scenario initial state, strategy, store mode, reduction,
  /// depth cap); a mismatching checkpoint is rejected on resume.
  Durability(const CheckerOptions& options, util::Hash128 config_fp,
             por::FootprintMemo* fp_memo, DiscoveryMemo* disc_memo);

  [[nodiscard]] bool checkpointing() const noexcept {
    return !options_.checkpoint_path.empty();
  }

  /// Time for a periodic checkpoint (interval elapsed since the last
  /// save). Always false when no checkpoint path is configured.
  [[nodiscard]] bool due() const;

  /// Counters + live stores of a quiesced search, gathered for save().
  struct Snapshot {
    std::uint64_t transitions{0};
    std::uint64_t unique_states{0};
    std::uint64_t revisits{0};
    std::uint64_t quiescent_states{0};
    const std::vector<ViolationRecord>* violations{nullptr};
    DiscoveryStats discovery;
    std::uint64_t frontier_rng{0};
    /// Visits every pending node in the owning driver's reconstruction
    /// order (Frontier::for_each, or the parallel deque front-to-back).
    std::function<void(const std::function<void(const SearchNode&)>&)>
        for_each_node;
  };

  /// Serialize the full search state and write it to the next A/B slot.
  /// No-op (returns true) when checkpointing is off. The caller must have
  /// quiesced the search: no concurrent mutation of the stores or the
  /// frontier.
  bool save(const SearchCore& core, const Snapshot& snap);

  /// Load the best valid slot, restore the stores through `core` (they
  /// must be empty — resume before searching), rebuild the frontier nodes
  /// by deterministic replay, and stash the counters for seed(). Returns
  /// false with a diagnostic when no usable checkpoint exists (the caller
  /// falls back to a fresh run).
  bool resume(const SearchCore& core, std::string& error);

  [[nodiscard]] bool resumed() const noexcept { return resumed_; }

  /// Seed `result` with the resumed counters/violations/discovery (no-op
  /// when resumed() is false; the stashed violations are moved out, so
  /// call once per resume).
  void seed(CheckerResult& result);

  /// The rebuilt pending nodes of a resumed run (moved out; call once).
  [[nodiscard]] std::vector<SearchNode> take_nodes() {
    return std::move(nodes_);
  }
  [[nodiscard]] std::uint64_t frontier_rng() const noexcept {
    return frontier_rng_;
  }

  /// Between-expansions poll: interrupt flag first, then the memory
  /// ladder. Over budget, the memo tables are halved repeatedly (memo
  /// contents are count-invisible, so this only costs wall-clock time);
  /// when they are empty and the accounted bytes still exceed the budget,
  /// returns kMemory — the driver checkpoints and halts instead of
  /// OOM-aborting. Returns kNone to continue.
  [[nodiscard]] LimitReason poll(const SearchCore& core,
                                 std::uint64_t frontier_nodes);

  /// Whether poll() needs to run at all (budget set or signals handled).
  [[nodiscard]] bool polling() const noexcept {
    return options_.memory_budget_bytes > 0 || options_.handle_signals;
  }

  /// Copy the layer's statistics into `result.durability`.
  void fill(CheckerResult& result) const;

 private:
  bool parse_payload(const SearchCore& core, util::Des& d,
                     std::string& error);

  const CheckerOptions& options_;
  util::Hash128 config_fp_;
  por::FootprintMemo* fp_memo_;
  DiscoveryMemo* disc_memo_;

  detail::SearchClock::time_point last_save_;
  std::uint64_t sequence_{1};

  bool resumed_{false};
  std::uint64_t seed_transitions_{0};
  std::uint64_t seed_unique_{0};
  std::uint64_t seed_revisits_{0};
  std::uint64_t seed_quiescent_{0};
  std::vector<ViolationRecord> seed_violations_;
  DiscoveryStats seed_discovery_;
  std::uint64_t frontier_rng_{0};
  std::vector<SearchNode> nodes_;

  std::uint64_t checkpoints_written_{0};
  std::uint64_t checkpoint_bytes_{0};
  std::uint64_t memo_shrinks_{0};
  std::uint64_t watchdog_bytes_{0};
};

}  // namespace nicemc::mc

#endif  // NICE_MC_CHECKPOINT_H
