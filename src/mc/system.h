// System model: configuration + the complete, hashable system state
// (controller, switches, hosts, channels, property monitors) of paper
// Section 2.2.
#ifndef NICE_MC_SYSTEM_H
#define NICE_MC_SYSTEM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ctrl/app.h"
#include "ctrl/controller.h"
#include "hosts/host.h"
#include "mc/property.h"
#include "of/switch.h"
#include "sym/concolic.h"
#include "topo/topology.h"
#include "util/hash.h"
#include "util/ser.h"

namespace nicemc::mc {

/// Static model configuration — everything that stays fixed during a
/// search. Owned by the caller; the checker and executor hold pointers.
struct SystemConfig {
  const topo::Topology* topology{nullptr};
  const ctrl::App* app{nullptr};
  /// Per-host behaviour, parallel to topology->hosts().
  std::vector<hosts::HostBehavior> host_behavior;

  /// Enable discover_packets / discover_stats (Sections 3.3 and Figure 5).
  bool symbolic_discovery{true};
  /// Canonical flow-table representation (Section 2.2.2); false gives the
  /// NO-SWITCH-REDUCTION baseline of Table 1.
  bool canonical_flowtables{true};
  /// NO-DELAY strategy: controller↔switch communication is atomic
  /// (lock-step); finds design errors but misses race conditions.
  bool no_delay{false};
  /// FINE-INTERLEAVING baseline: each command a handler emits becomes an
  /// individually interleavable transition (JPF-thread-like granularity).
  bool fine_interleaving{false};
  /// Enable nondeterministic expiry transitions for rules with timeouts.
  bool enable_rule_expiry{false};
  /// Enable drop/duplicate fault transitions on ingress packet channels.
  bool enable_channel_faults{false};

  std::size_t switch_buffer_capacity{64};
  /// Bound on stats request/reply rounds (keeps the state space finite).
  std::uint32_t max_stats_rounds{1};
  /// Constrain discovered packets to carry the sending host's own MAC/IP
  /// as source (domain knowledge; disable to explore spoofed sources).
  bool constrain_src_to_sender{true};
  sym::ConcolicConfig concolic;
  /// Extra candidate values for the packet-field domains (e.g. the load
  /// balancer's virtual IP / service port).
  std::vector<std::uint64_t> extra_domain_ips;
  std::vector<std::uint64_t> extra_domain_ports;
};

/// The complete system state. Value-semantic apart from the polymorphic
/// controller app state and property states, which clone() deep-copies.
struct SystemState {
  ctrl::ControllerState ctrl;
  std::vector<of::Switch> switches;
  std::vector<hosts::HostState> hosts;
  std::vector<std::unique_ptr<PropState>> props;
  std::uint32_t next_uid{1};
  std::uint32_t next_copy{1};

  SystemState() = default;
  SystemState(SystemState&&) noexcept = default;
  SystemState& operator=(SystemState&&) noexcept = default;
  SystemState(const SystemState&) = delete;
  SystemState& operator=(const SystemState&) = delete;

  [[nodiscard]] SystemState clone() const;

  void serialize(util::Ser& s, bool canonical_tables) const;
  [[nodiscard]] util::Hash128 hash(bool canonical_tables) const;

  /// Hash of the controller application state only — key of the
  /// discovered-packets cache (`client.packets[state(ctrl)]`, Figure 5).
  [[nodiscard]] util::Hash128 ctrl_hash() const { return ctrl.app_hash(); }

  /// Total packets parked in switch buffers (NoForgottenPackets).
  [[nodiscard]] std::size_t total_forgotten() const;
};

}  // namespace nicemc::mc

#endif  // NICE_MC_SYSTEM_H
