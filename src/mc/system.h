// System model: configuration + the complete, hashable system state
// (controller, switches, hosts, channels, property monitors) of paper
// Section 2.2.
//
// SystemState is copy-on-write: each component lives in a shared immutable
// snapshot (util::Snap), so clone() is O(#components) pointer copies and a
// transition deep-copies only the components it actually touches — through
// the explicit *_mut() accessors. Each snapshot memoizes its canonical
// serialization and hash, so hashing a child state re-serializes only the
// components that changed since the parent. See ARCHITECTURE.md ("state
// pipeline").
#ifndef NICE_MC_SYSTEM_H
#define NICE_MC_SYSTEM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/app.h"
#include "util/collapse.h"
#include "ctrl/controller.h"
#include "hosts/host.h"
#include "mc/property.h"
#include "of/switch.h"
#include "sym/concolic.h"
#include "topo/topology.h"
#include "util/hash.h"
#include "util/ser.h"
#include "util/snap.h"

namespace nicemc::mc {

/// Sentinel fault cap: the class is not budgeted at all — its counter is
/// never incremented (and never splits states), restoring the legacy
/// unbounded-fault behaviour. Searches with an unbounded cap may not
/// terminate; that is the caller's deliberate choice.
inline constexpr std::uint32_t kUnboundedFaults = 0xffffffffu;

/// Static model configuration — everything that stays fixed during a
/// search. Owned by the caller; the checker and executor hold pointers.
struct SystemConfig {
  const topo::Topology* topology{nullptr};
  const ctrl::App* app{nullptr};
  /// Per-host behaviour, parallel to topology->hosts().
  std::vector<hosts::HostBehavior> host_behavior;

  /// Enable discover_packets / discover_stats (Sections 3.3 and Figure 5).
  bool symbolic_discovery{true};
  /// Canonical flow-table representation (Section 2.2.2); false gives the
  /// NO-SWITCH-REDUCTION baseline of Table 1.
  bool canonical_flowtables{true};
  /// NO-DELAY strategy: controller↔switch communication is atomic
  /// (lock-step); finds design errors but misses race conditions.
  bool no_delay{false};
  /// FINE-INTERLEAVING baseline: each command a handler emits becomes an
  /// individually interleavable transition (JPF-thread-like granularity).
  bool fine_interleaving{false};
  /// Enable nondeterministic expiry transitions for rules with timeouts.
  bool enable_rule_expiry{false};
  /// Enable drop/duplicate fault transitions on ingress packet channels.
  bool enable_channel_faults{false};

  // ---- bounded fault-injection layer (paper Sections 2.2 and 4:
  // environment faults as explicit transitions, capped per execution) ----
  /// Enable kLinkDown/kLinkUp on every topology link.
  bool enable_link_faults{false};
  /// Allow failed links to repair (kLinkUp). With repair on, quiescent
  /// states only exist with all links up; turn it off to model permanent
  /// failures and check quiescent-state properties like NoStaleRules.
  bool enable_link_repair{true};
  /// Enable kCtrlChannelDown/kCtrlChannelUp per switch.
  bool enable_ctrl_channel_faults{false};
  /// Enable kSwitchRestart per switch.
  bool enable_switch_restarts{false};
  /// Per-execution fault caps (see FaultBudget). kUnboundedFaults removes
  /// the cap for that class.
  std::uint32_t max_link_failures{1};
  std::uint32_t max_channel_losses{1};
  std::uint32_t max_switch_restarts{1};
  /// Cap folding in the pre-existing per-packet drop/dup faults, which were
  /// historically unbounded (kUnboundedFaults keeps them that way).
  std::uint32_t max_packet_faults{2};
  /// kChannelDupHead never grows an ingress channel past this depth, even
  /// under an unbounded packet-fault budget.
  std::size_t channel_depth_limit{8};

  std::size_t switch_buffer_capacity{64};
  /// Bound on stats request/reply rounds (keeps the state space finite).
  std::uint32_t max_stats_rounds{1};
  /// Constrain discovered packets to carry the sending host's own MAC/IP
  /// as source (domain knowledge; disable to explore spoofed sources).
  bool constrain_src_to_sender{true};
  sym::ConcolicConfig concolic;
  /// Extra candidate values for the packet-field domains (e.g. the load
  /// balancer's virtual IP / service port).
  std::vector<std::uint64_t> extra_domain_ips;
  std::vector<std::uint64_t> extra_domain_ports;

  /// Interchangeable-host orbits for symmetry reduction: each inner vector
  /// lists host indices that are behaviourally identical up to their
  /// identifiers (MAC, IP, attach port, script flow ids). Declared by the
  /// scenario (apps::Scenario::symmetry), validated by mc::SymContext, and
  /// only acted on when CheckerOptions::symmetry is set.
  std::vector<std::vector<of::HostId>> symmetry_orbits;
};

/// Per-execution fault consumption, carried inside SystemState so it
/// collapses/checkpoints/hashes with everything else and enabled() stays a
/// pure function of the state: a fault transition is enabled iff its class
/// counter is below the configured cap. Classes capped at kUnboundedFaults
/// never increment their counter (legacy behaviour, identical state space).
struct FaultBudget {
  std::uint32_t link_failures{0};
  std::uint32_t channel_losses{0};
  std::uint32_t switch_restarts{0};
  std::uint32_t packet_faults{0};

  friend bool operator==(const FaultBudget&, const FaultBudget&) = default;
  void serialize(util::Ser& s) const {
    s.put_u32(link_failures);
    s.put_u32(channel_losses);
    s.put_u32(switch_restarts);
    s.put_u32(packet_faults);
  }
};

/// The complete system state. Components are held in shared copy-on-write
/// snapshots; reads go through the const accessors, mutations through the
/// explicit *_mut() accessors (which unshare and invalidate the memoized
/// serialization of exactly that component).
struct SystemState {
  std::uint32_t next_uid{1};
  std::uint32_t next_copy{1};
  FaultBudget faults;

  SystemState() = default;
  SystemState(SystemState&&) noexcept = default;
  SystemState& operator=(SystemState&&) noexcept = default;
  SystemState(const SystemState&) = delete;
  SystemState& operator=(const SystemState&) = delete;

  /// O(#components): shares every component snapshot with the clone.
  [[nodiscard]] SystemState clone() const;

  // --- construction (used by Executor::make_initial and tests) ---
  void add_switch(of::Switch sw) {
    switches_.emplace_back(util::Snap<of::Switch>(std::move(sw)));
  }
  void add_host(hosts::HostState hs) {
    hosts_.emplace_back(util::Snap<hosts::HostState>(std::move(hs)));
  }
  void add_prop(std::unique_ptr<PropState> ps) {
    props_.emplace_back(util::Snap<PropSlot>(PropSlot(std::move(ps))));
  }

  // --- reads (never copy) ---
  [[nodiscard]] const ctrl::ControllerState& ctrl() const noexcept {
    return ctrl_.get();
  }
  [[nodiscard]] const of::Switch& sw(std::size_t i) const noexcept {
    return switches_[i].get();
  }
  [[nodiscard]] const hosts::HostState& host(std::size_t i) const noexcept {
    return hosts_[i].get();
  }
  [[nodiscard]] const PropState& prop(std::size_t i) const noexcept {
    return *props_[i].get().state;
  }
  [[nodiscard]] std::size_t switch_count() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] std::size_t host_count() const noexcept {
    return hosts_.size();
  }
  [[nodiscard]] std::size_t prop_count() const noexcept {
    return props_.size();
  }
  [[nodiscard]] util::SnapListView<of::Switch> switches() const noexcept {
    return util::SnapListView<of::Switch>(switches_);
  }
  [[nodiscard]] util::SnapListView<hosts::HostState> hosts() const noexcept {
    return util::SnapListView<hosts::HostState>(hosts_);
  }

  // --- mutate-on-write accessors ---
  [[nodiscard]] ctrl::ControllerState& ctrl_mut() { return ctrl_.mut(); }
  [[nodiscard]] of::Switch& sw_mut(std::size_t i) {
    return switches_[i].mut();
  }
  [[nodiscard]] hosts::HostState& host_mut(std::size_t i) {
    return hosts_[i].mut();
  }
  [[nodiscard]] PropState& prop_mut(std::size_t i) {
    return *props_[i].mut().state;
  }

  // --- sharing introspection (test hooks) ---
  [[nodiscard]] bool shares_ctrl(const SystemState& o) const noexcept {
    return ctrl_.same_snapshot(o.ctrl_);
  }
  [[nodiscard]] bool shares_switch(const SystemState& o,
                                   std::size_t i) const noexcept {
    return switches_[i].same_snapshot(o.switches_[i]);
  }
  [[nodiscard]] bool shares_host(const SystemState& o,
                                 std::size_t i) const noexcept {
    return hosts_[i].same_snapshot(o.hosts_[i]);
  }
  [[nodiscard]] bool shares_prop(const SystemState& o,
                                 std::size_t i) const noexcept {
    return props_[i].same_snapshot(o.props_[i]);
  }

  /// Canonical byte serialization — identical bytes to serializing every
  /// component in place, but assembled from the memoized per-component
  /// forms with bulk appends.
  void serialize(util::Ser& s, bool canonical_tables) const;

  /// COLLAPSE-mode state key: intern every component's canonical form in
  /// `table` (via Snap::form_id — one serialize+intern pass, no bytes
  /// pinned on the snapshots) and pack the resulting component ids, the
  /// component counts and the trailing counters into a fixed-layout byte
  /// string. The layout mirrors serialize(), so two states have equal id
  /// tuples exactly when their canonical serializations are byte-identical
  /// — a collision-proof state key at ~4 bytes per component. Memoizes
  /// each component's form hash as a side effect, making a following
  /// hash() call free.
  [[nodiscard]] std::string collapse_key(util::CollapseTable& table,
                                         bool canonical_tables) const;

  /// 128-bit state hash combined from the memoized per-component hashes —
  /// only components mutated since the parent state are re-serialized.
  /// NOTE: this is a hash of the canonical bytes' component structure, not
  /// FNV over the concatenated bytes; equal serializations still imply
  /// equal hashes and vice versa (up to negligible collisions).
  [[nodiscard]] util::Hash128 hash(bool canonical_tables) const;

  /// Hash of the controller application state only — key of the
  /// discovered-packets cache (`client.packets[state(ctrl)]`, Figure 5).
  /// Memoized on the controller snapshot.
  [[nodiscard]] util::Hash128 ctrl_hash() const {
    return ctrl_.projection_hash(
        [](const ctrl::ControllerState& c) { return c.app_hash(); });
  }

  // --- interned component ids (memo-layer keys; see util/memo.h) ---
  // Passthroughs to Snap::form_id: dense ids whose equality is byte
  // equality of the component's serialization, memoized per (table,
  // epoch) on the shared snapshot. In kCollapsed mode the search's own
  // collapse_key() interning warms these memos, so the memo layer reads
  // them back for free.
  [[nodiscard]] std::uint32_t sw_id(std::size_t i, bool canonical,
                                    util::CollapseTable& table) const {
    return switches_[i].form_id(canonical, table);
  }
  // Memoized per-component form hash (Snap::form_hash) — the memo
  // layer's key fallback in the non-collapsed store modes, where the
  // search already hashes every component to remember the state, so
  // this is a warm read rather than a fresh serialization.
  [[nodiscard]] util::Hash128 sw_form_hash(std::size_t i,
                                           bool canonical) const {
    return switches_[i].form_hash(canonical);
  }
  /// Interned id of the controller *application* state alone — the exact
  /// projection app_hash() hashes, but collision-proof. Key of the shared
  /// discovery memo (the paper's `client.packets[state(ctrl)]` index).
  [[nodiscard]] std::uint32_t app_state_id(util::CollapseTable& table) const {
    return ctrl_.projection_id(
        table, [](const ctrl::ControllerState& c, util::Ser& s) {
          if (c.app) c.app->serialize(s);
        });
  }

  /// Total packets parked in switch buffers (NoForgottenPackets).
  [[nodiscard]] std::size_t total_forgotten() const;

 private:
  util::Snap<ctrl::ControllerState> ctrl_;
  std::vector<util::Snap<of::Switch>> switches_;
  std::vector<util::Snap<hosts::HostState>> hosts_;
  std::vector<util::Snap<PropSlot>> props_;
};

}  // namespace nicemc::mc

#endif  // NICE_MC_SYSTEM_H
