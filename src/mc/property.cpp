#include "mc/property.h"

// Interface classes; this TU anchors their vtables.
namespace nicemc::mc {}
