#include "mc/sym_reduce.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/ser.h"
#include "util/strings.h"

namespace nicemc::mc {

namespace {

// Signature-pass placeholder identities: the ranked member maps to TAG,
// every other member of the same orbit to a shared BOTTOM. All values live
// outside the ranges real identifiers can take (MACs are 48-bit, IPs
// 32-bit, host/port ids small dense ints, flow ids scenario-assigned small
// ints), so a placeholder can never alias a non-orbit identifier.
constexpr std::uint64_t kSigTagMac = 0xffffffffffff0001ULL;
constexpr std::uint64_t kSigBotMac = 0xffffffffffff0002ULL;
constexpr std::uint64_t kSigTagIp = 0xffffffff00000001ULL;
constexpr std::uint64_t kSigBotIp = 0xffffffff00000002ULL;
constexpr std::uint32_t kSigTagHost = 0xffffff01u;
constexpr std::uint32_t kSigBotHost = 0xffffff02u;
constexpr std::uint32_t kSigTagPort = 0xffffff01u;
constexpr std::uint32_t kSigBotPort = 0xffffff02u;
constexpr std::uint32_t kSigTagFlowBase = 0xff000000u;
constexpr std::uint32_t kSigBotFlowBase = 0xfe000000u;

std::uint64_t port_key(of::SwitchId sw, of::PortId p) {
  return (static_cast<std::uint64_t>(sw) << 32) | p;
}

[[noreturn]] void invalid(const std::string& why) {
  throw std::invalid_argument("symmetry orbit: " + why);
}

/// Replace every occurrence of `needle` in `s` with `with`.
void replace_all(std::string& s, const std::string& needle,
                 const std::string& with) {
  if (needle.empty()) return;
  std::size_t pos = 0;
  while ((pos = s.find(needle, pos)) != std::string::npos) {
    s.replace(pos, needle.size(), with);
    pos += with.size();
  }
}

}  // namespace

SymContext::SymContext(const SystemConfig& cfg)
    : cfg_(&cfg), canonical_(cfg.canonical_flowtables) {
  if (cfg.topology == nullptr) invalid("config has no topology");
  const topo::Topology& topo = *cfg.topology;

  include_next_uid_ = false;
  for (const hosts::HostBehavior& hb : cfg.host_behavior) {
    // Discovery sends consume next_uid as the discovered flow id, so the
    // counter is semantic there and must stay in the canonical key.
    if (hb.discovery_sends) include_next_uid_ = true;
  }

  std::set<of::HostId> claimed;
  for (const std::vector<of::HostId>& decl : cfg.symmetry_orbits) {
    if (decl.size() < 2) invalid("needs at least two member hosts");
    Orbit orbit;
    std::vector<of::HostId> ids = decl;
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
      invalid("repeats a member host");
    }
    for (const of::HostId id : ids) {
      if (id >= topo.hosts().size() || id >= cfg.host_behavior.size()) {
        invalid("member host index out of range");
      }
      if (!claimed.insert(id).second) invalid("host in two orbits");
      const topo::HostSpec& spec = topo.host(id);
      const hosts::HostBehavior& hb = cfg.host_behavior[id];
      if (hb.can_move || !spec.alt_locations.empty()) {
        invalid("mobile hosts are not interchangeable");
      }
      Member m;
      m.host_index = id;
      m.mac = spec.mac;
      m.ip = spec.ip;
      m.sw = spec.attach_switch;
      m.port = spec.attach_port;
      m.flows.reserve(hb.script.size());
      for (const hosts::ScriptEntry& e : hb.script) m.flows.push_back(e.flow_id);
      orbit.members.push_back(std::move(m));
    }

    // Members must be behaviourally identical up to the identifier
    // renaming this layer applies. Anything the renaming does not cover
    // (behaviour flags, script length, non-renamed header fields) must be
    // exactly equal, and the positional flow-id correspondence must be a
    // consistent function.
    const Member& m0 = orbit.members.front();
    const hosts::HostBehavior& hb0 = cfg.host_behavior[m0.host_index];
    for (std::size_t j = 1; j < orbit.members.size(); ++j) {
      const Member& mj = orbit.members[j];
      const hosts::HostBehavior& hbj = cfg.host_behavior[mj.host_index];
      if (mj.sw != m0.sw) invalid("members attach to different switches");
      if (hbj.echo != hb0.echo || hbj.can_dup != hb0.can_dup ||
          hbj.discovery_sends != hb0.discovery_sends ||
          hbj.max_sends != hb0.max_sends ||
          hbj.initial_burst != hb0.initial_burst) {
        invalid("members have different behaviour flags");
      }
      if (hbj.script.size() != hb0.script.size()) {
        invalid("members have different script lengths");
      }
      std::map<std::uint32_t, std::uint32_t> flow_map;
      std::map<std::uint32_t, std::uint32_t> flow_rev;
      for (std::size_t e = 0; e < hb0.script.size(); ++e) {
        const sym::PacketFields& h0 = hb0.script[e].hdr;
        const sym::PacketFields& hj = hbj.script[e].hdr;
        auto rename_mac = [&](std::uint64_t v) {
          return v == m0.mac ? mj.mac : v;
        };
        auto rename_ip = [&](std::uint64_t v) {
          return v == m0.ip ? mj.ip : v;
        };
        if (rename_mac(h0.eth_src) != hj.eth_src ||
            rename_mac(h0.eth_dst) != hj.eth_dst ||
            h0.eth_type != hj.eth_type ||
            rename_ip(h0.ip_src) != hj.ip_src ||
            rename_ip(h0.ip_dst) != hj.ip_dst ||
            h0.ip_proto != hj.ip_proto || h0.tp_src != hj.tp_src ||
            h0.tp_dst != hj.tp_dst || h0.tcp_flags != hj.tcp_flags) {
          invalid("scripts differ beyond the member renaming");
        }
        const auto [it, inserted] =
            flow_map.try_emplace(m0.flows[e], mj.flows[e]);
        if (!inserted && it->second != mj.flows[e]) {
          invalid("flow-id correspondence is inconsistent across entries");
        }
        const auto [rit, rinserted] =
            flow_rev.try_emplace(mj.flows[e], m0.flows[e]);
        if (!rinserted && rit->second != m0.flows[e]) {
          invalid("flow-id correspondence is not a bijection");
        }
      }
    }
    orbits_.push_back(std::move(orbit));
  }
}

std::uint32_t SymContext::orbit_host_count() const {
  std::uint32_t n = 0;
  for (const Orbit& o : orbits_) n += static_cast<std::uint32_t>(o.members.size());
  return n;
}

void SymContext::serialize_whole(
    const SystemState& state, util::Ser& s,
    const std::vector<std::uint32_t>& host_emit_order,
    std::vector<std::pair<std::size_t, std::size_t>>* bounds) const {
  // Mirrors SystemState::serialize byte-for-byte, but serializes the live
  // component values directly: the Snap-memoized forms are shared across
  // states and must never be built under an active Renamer.
  auto mark = [&](auto&& emit) {
    const std::size_t begin = s.size();
    emit();
    if (bounds != nullptr) bounds->emplace_back(begin, s.size());
  };
  mark([&] { state.ctrl().serialize(s); });
  s.put_u32(static_cast<std::uint32_t>(state.switch_count()));
  for (std::size_t i = 0; i < state.switch_count(); ++i) {
    mark([&] { state.sw(i).serialize(s, canonical_); });
  }
  s.put_u32(static_cast<std::uint32_t>(state.host_count()));
  for (std::size_t i = 0; i < state.host_count(); ++i) {
    mark([&] { state.host(host_emit_order[i]).serialize(s, canonical_); });
  }
  s.put_u32(static_cast<std::uint32_t>(state.prop_count()));
  for (std::size_t i = 0; i < state.prop_count(); ++i) {
    mark([&] { state.prop(i).serialize(s); });
  }
  if (include_next_uid_) s.put_u32(state.next_uid);
  state.faults.serialize(s);
  if (!canonical_) s.put_u32(state.next_copy);
}

std::string SymContext::member_signature(const SystemState& state,
                                         const Orbit& orbit,
                                         std::size_t member) const {
  util::Renamer rn;
  rn.uid_mode = util::Renamer::UidMode::kElide;
  for (std::size_t j = 0; j < orbit.members.size(); ++j) {
    const Member& m = orbit.members[j];
    const bool tag = (j == member);
    rn.mac.emplace(m.mac, tag ? kSigTagMac : kSigBotMac);
    rn.ip.emplace(m.ip, tag ? kSigTagIp : kSigBotIp);
    rn.host.emplace(m.host_index, tag ? kSigTagHost : kSigBotHost);
    rn.port.emplace(port_key(m.sw, m.port), tag ? kSigTagPort : kSigBotPort);
    for (std::size_t e = 0; e < m.flows.size(); ++e) {
      rn.flow.try_emplace(m.flows[e],
                          (tag ? kSigTagFlowBase : kSigBotFlowBase) +
                              static_cast<std::uint32_t>(e));
    }
  }

  const util::Renamer::Scope scope(&rn);
  util::Ser s;
  state.ctrl().serialize(s);
  for (std::size_t i = 0; i < state.switch_count(); ++i) {
    state.sw(i).serialize(s, canonical_);
  }
  // The orbit's own host components are emitted as a sorted multiset so
  // the signature is invariant under relabelings of the non-tagged
  // members (they all map to the same BOTTOM identity, leaving only
  // their dynamic payload to distinguish the blobs).
  std::vector<std::string> orbit_blobs;
  orbit_blobs.reserve(orbit.members.size());
  for (const Member& m : orbit.members) {
    util::Ser tmp;
    state.host(m.host_index).serialize(tmp, canonical_);
    orbit_blobs.push_back(tmp.take());
  }
  std::sort(orbit_blobs.begin(), orbit_blobs.end());
  std::size_t next_blob = 0;
  std::size_t next_member = 0;
  for (std::size_t i = 0; i < state.host_count(); ++i) {
    if (next_member < orbit.members.size() &&
        orbit.members[next_member].host_index == i) {
      s.append(orbit_blobs[next_blob++]);
      ++next_member;
    } else {
      state.host(i).serialize(s, canonical_);
    }
  }
  for (std::size_t i = 0; i < state.prop_count(); ++i) {
    state.prop(i).serialize(s);
  }
  return s.take();
}

SymKey SymContext::canonical_key(const SystemState& state,
                                 util::CollapseTable* table) const {
  canonicalizations_.fetch_add(1, std::memory_order_relaxed);

  // 1. Rank each orbit's members by structural signature; rank r is
  // renamed onto orbit slot r. Ties mean the tied members are genuinely
  // interchangeable in this state (signatures are invariant under
  // relabelings of the other members), so the index tie-break of
  // stable_sort is harmless.
  std::vector<std::uint32_t> emit(state.host_count());
  for (std::size_t i = 0; i < emit.size(); ++i) {
    emit[i] = static_cast<std::uint32_t>(i);
  }
  util::Renamer rn;
  for (const Orbit& orbit : orbits_) {
    const std::size_t k = orbit.members.size();
    std::vector<std::pair<std::string, std::size_t>> ranked;
    ranked.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      ranked.emplace_back(member_signature(state, orbit, j), j);
    }
    std::stable_sort(
        ranked.begin(), ranked.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t r = 0; r < k; ++r) {
      const Member& src = orbit.members[ranked[r].second];
      const Member& dst = orbit.members[r];
      emit[dst.host_index] = src.host_index;
      rn.mac.emplace(src.mac, dst.mac);
      rn.ip.emplace(src.ip, dst.ip);
      rn.host.emplace(src.host_index, dst.host_index);
      rn.port.emplace(port_key(src.sw, src.port), dst.port);
      for (std::size_t e = 0; e < src.flows.size(); ++e) {
        // Positional flow correspondence; validation guaranteed that
        // repeated flow ids map consistently.
        rn.flow.try_emplace(src.flows[e], dst.flows[e]);
      }
    }
  }

  // 2. Assign pass: walk the serialization once to hand out dense uids at
  // first appearance (bytes discarded), then map uids that only key
  // containers.
  rn.uid_mode = util::Renamer::UidMode::kAssign;
  {
    const util::Renamer::Scope scope(&rn);
    util::Ser discard;
    serialize_whole(state, discard, emit, nullptr);
  }
  rn.finalize_uids();

  // 3. Frozen pass: the real canonical bytes.
  rn.uid_mode = util::Renamer::UidMode::kFrozen;
  util::Ser blob;
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  {
    const util::Renamer::Scope scope(&rn);
    serialize_whole(state, blob, emit, table != nullptr ? &bounds : nullptr);
  }

  SymKey out;
  out.hash = blob.hash();
  if (table == nullptr) {
    out.key = blob.take();
    return out;
  }

  // kCollapsed: intern each renamed component and pack the id tuple in
  // the same layout as SystemState::collapse_key. The memoized Snap ids
  // cannot be used here — the renaming is per-state — but interning keeps
  // the per-state key at ~4 bytes per component.
  const auto bytes = blob.bytes();
  const std::string_view view(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());
  util::Ser key;
  key.reserve(4 * (bounds.size() + 4));
  key.put_u32(static_cast<std::uint32_t>((state.switch_count() << 20) |
                                         (state.host_count() << 10) |
                                         state.prop_count()));
  for (const auto& [begin, end] : bounds) {
    key.put_u32(table->intern(view.substr(begin, end - begin)));
  }
  if (include_next_uid_) key.put_u32(state.next_uid);
  state.faults.serialize(key);
  if (!canonical_) key.put_u32(state.next_copy);
  out.key = key.take();
  return out;
}

std::string SymContext::canonicalize_violation(std::string msg) const {
  // Violation messages embed concrete identifiers via Packet::brief()
  // (MAC/IP strings, "flow=N") — rewrite every orbit member's spelling to
  // a member-independent placeholder. uids are already normalized by
  // violation_keys() ("uid=#").
  for (std::size_t o = 0; o < orbits_.size(); ++o) {
    const std::string slot = "<sym" + std::to_string(o) + ">";
    for (const Member& m : orbits_[o].members) {
      replace_all(msg, util::mac_to_string(m.mac), slot + "mac");
      replace_all(msg,
                  util::ip_to_string(static_cast<std::uint32_t>(m.ip)),
                  slot + "ip");
      for (std::size_t e = 0; e < m.flows.size(); ++e) {
        replace_all(msg, "flow=" + std::to_string(m.flows[e]),
                    "flow=" + slot + std::to_string(e));
      }
    }
  }
  return msg;
}

}  // namespace nicemc::mc
