// Execution semantics: enabled-transition enumeration and transition
// application, including the NO-DELAY lock-step mode and the
// FINE-INTERLEAVING baseline.
#ifndef NICE_MC_EXECUTE_H
#define NICE_MC_EXECUTE_H

#include <vector>

#include "mc/discover.h"
#include "mc/events.h"
#include "mc/property.h"
#include "mc/system.h"
#include "mc/transition.h"

namespace nicemc::mc {

class Executor {
 public:
  Executor(const SystemConfig& cfg, const PropertyList& props)
      : cfg_(cfg), props_(props) {}

  /// Initial system state: app state created, switch_join dispatched for
  /// every switch (with resulting commands applied synchronously).
  [[nodiscard]] SystemState make_initial() const;

  /// Enabled transitions in deterministic order. Performs discover_packets/
  /// discover_stats on demand (memoized in `cache`) — operationally
  /// equivalent to Figure 5's explicit discover transitions, see DESIGN.md.
  std::vector<Transition> enabled(const SystemState& state,
                                  DiscoveryCache& cache) const;

  /// Attach the search-wide discovery memo (nullptr = off). Consulted only
  /// on a local-cache miss and stored into after every fresh symbolic run,
  /// so per-worker behavior is unchanged — hits merely skip recomputation.
  void set_discovery_memo(DiscoveryMemo* memo) noexcept { memo_ = memo; }

  /// Execute `t` on `state`; property monitors observe the generated
  /// events and append any violations.
  void apply(SystemState& state, const Transition& t,
             std::vector<Violation>& violations) const;

  /// Invoke terminal checks (quiescent state = no enabled transitions).
  void at_quiescence(SystemState& state,
                     std::vector<Violation>& violations) const;

  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }

 private:
  void inject_host_packet(SystemState& state, of::HostId host,
                          const sym::PacketFields& hdr, std::uint32_t flow,
                          EventList& events) const;
  void deliver(SystemState& state, of::SwitchId from_sw, of::PortId out_port,
               of::Packet pkt, EventList& events) const;
  void handle_outcome(SystemState& state, of::SwitchId sw,
                      const of::PacketOutcome& oc, EventList& events) const;
  void run_switch_pkt(SystemState& state, of::SwitchId sw,
                      EventList& events) const;
  void run_switch_of(SystemState& state, of::SwitchId sw,
                     EventList& events) const;
  void ctrl_dispatch(SystemState& state, of::SwitchId sw,
                     EventList& events) const;
  void push_commands(SystemState& state, std::vector<ctrl::Command> cmds,
                     EventList& events) const;
  /// Reconnect handshake (kCtrlChannelUp / kSwitchRestart): replay
  /// switch_leave + switch_join so the app resyncs, then report every
  /// still-down port over the fresh connection.
  void replay_handshake(SystemState& state, of::SwitchId sw,
                        EventList& events) const;
  /// NO-DELAY: drain all pending controller↔switch communication so the
  /// exchange appears atomic. Leaves stats replies in place when symbolic
  /// discovery is on (they are consumed by discover/process-stats).
  void drain_lockstep(SystemState& state, EventList& events) const;
  void feed_properties(SystemState& state, const EventList& events,
                       std::vector<Violation>& violations) const;

  const SystemConfig& cfg_;
  const PropertyList& props_;
  DiscoveryMemo* memo_{nullptr};
};

}  // namespace nicemc::mc

#endif  // NICE_MC_EXECUTE_H
