#include "mc/search_core.h"

#include <memory>
#include <string>
#include <utility>

#include "util/hash.h"
#include "util/ser.h"

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

bool SearchCore::remember(const SystemState& state) const {
  if (!options_.store_full_states) {
    // Combined from the per-component hashes memoized on the shared
    // snapshots: only components the transition touched are re-serialized
    // (and no component bytes are retained — hash mode is Section 6's
    // computation-for-memory trade).
    return seen_.insert(state.hash(cfg_.canonical_flowtables));
  }

  // Full-state mode: serialize first so each changed component's bytes +
  // hash are memoized in one pass (hash() below then reads the memoized
  // hashes), assemble the blob pre-sized to the previous state's length,
  // and move (not copy) it into the store. The hash only selects the
  // shard; the blob itself is the store key, so collisions can never
  // merge states.
  thread_local std::size_t last_size = 0;
  util::Ser s;
  s.reserve(last_size);
  state.serialize(s, cfg_.canonical_flowtables);
  last_size = s.size();
  const util::Hash128 h = state.hash(cfg_.canonical_flowtables);
  return seen_.insert_full(h, s.take());
}

std::vector<SearchNode> SearchCore::init(CheckerResult& result,
                                         DiscoveryCache& cache) const {
  // Build the shared initial state exactly once (the seed cloned it twice:
  // make_initial → local → clone into the shared_ptr).
  auto initial_sp =
      std::make_shared<const SystemState>(executor_.make_initial());
  remember(*initial_sp);
  result.unique_states = 1;

  std::vector<SearchNode> roots;
  auto ts = apply_strategy(options_.strategy, cfg_, *initial_sp,
                           executor_.enabled(*initial_sp, cache));
  if (ts.empty()) {
    ++result.quiescent_states;
    std::vector<Violation> vs;
    // COW clone: O(#components) pointer copies. Monitors may mutate their
    // local state in at_quiescence, which must not leak into the published
    // initial state.
    SystemState tmp = initial_sp->clone();
    executor_.at_quiescence(tmp, vs);
    for (Violation& v : vs) {
      result.violations.push_back(ViolationRecord{std::move(v), {}});
    }
  }
  roots.reserve(ts.size());
  for (Transition& t : ts) {
    roots.push_back(SearchNode{initial_sp, std::move(t), nullptr, 1});
  }
  return roots;
}

SearchCore::Expansion SearchCore::expand(const SearchNode& node,
                                         DiscoveryCache& cache) const {
  Expansion out;

  SystemState next = node.state->clone();
  std::vector<Violation> violations;
  executor_.apply(next, node.transition, violations);

  auto path = std::make_shared<const PathNode>(
      PathNode{node.path, node.transition});

  if (!violations.empty()) {
    out.transition_violated = true;
    const auto trace = trace_of(path);
    out.violations.reserve(violations.size());
    for (Violation& v : violations) {
      out.violations.push_back(ViolationRecord{std::move(v), trace});
    }
    return out;  // do not remember or expand beyond an erroneous state
  }

  if (!remember(next)) return out;  // revisit
  out.new_state = true;

  if (node.depth >= options_.max_depth) return out;

  auto ts = apply_strategy(options_.strategy, cfg_, next,
                           executor_.enabled(next, cache));
  if (ts.empty()) {
    out.quiescent = true;
    std::vector<Violation> vs;
    executor_.at_quiescence(next, vs);
    if (!vs.empty()) {
      const auto trace = trace_of(path);
      for (Violation& v : vs) {
        out.violations.push_back(ViolationRecord{std::move(v), trace});
      }
    }
    return out;
  }

  auto next_sp = std::make_shared<const SystemState>(std::move(next));
  out.children.reserve(ts.size());
  for (Transition& t : ts) {
    out.children.push_back(
        SearchNode{next_sp, std::move(t), path, node.depth + 1});
  }
  return out;
}

CheckerResult SearchCore::run_sequential(Frontier& frontier,
                                         DiscoveryCache& cache) const {
  const auto start = SearchClock::now();
  CheckerResult result;

  for (SearchNode& root : init(result, cache)) {
    frontier.push(std::move(root));
  }

  while (!frontier.empty()) {
    if (result.transitions >= options_.max_transitions ||
        result.unique_states >= options_.max_unique_states) {
      result.seconds = seconds_since(start);
      result.discovery = cache.stats();
      result.store_bytes = seen_.store_bytes();
      return result;  // hit a limit: not exhausted
    }
    if (options_.stop_at_first_violation && result.found_violation()) break;

    SearchNode node;
    frontier.pop(node);

    Expansion e = expand(node, cache);
    ++result.transitions;

    if (e.transition_violated) {
      for (ViolationRecord& v : e.violations) {
        result.violations.push_back(std::move(v));
      }
      if (options_.stop_at_first_violation) break;
      continue;
    }

    if (!e.new_state) {
      ++result.revisits;
      continue;
    }
    ++result.unique_states;

    if (e.quiescent) {
      ++result.quiescent_states;
      if (!e.violations.empty()) {
        for (ViolationRecord& v : e.violations) {
          result.violations.push_back(std::move(v));
        }
        if (options_.stop_at_first_violation) break;
      }
      continue;
    }

    for (SearchNode& child : e.children) {
      frontier.push(std::move(child));
    }
  }

  // "Exhausted" = the bounded state space was fully explored. In
  // collect-all mode a violation does not negate exhaustion; in
  // stop-at-first mode it does (the search was cut short).
  result.exhausted =
      frontier.empty() &&
      !(options_.stop_at_first_violation && result.found_violation());
  result.seconds = seconds_since(start);
  result.discovery = cache.stats();
  result.store_bytes = seen_.store_bytes();
  return result;
}

}  // namespace nicemc::mc
