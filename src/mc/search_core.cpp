#include "mc/search_core.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <regex>
#include <string>
#include <string_view>
#include <utility>

#include "mc/checkpoint.h"
#include "util/hash.h"
#include "util/resource.h"
#include "util/ser.h"

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

const char* limit_reason_name(LimitReason r) noexcept {
  switch (r) {
    case LimitReason::kNone: return "none";
    case LimitReason::kTransitions: return "transitions";
    case LimitReason::kUniqueStates: return "unique_states";
    case LimitReason::kTime: return "time";
    case LimitReason::kMemory: return "memory";
    case LimitReason::kInterrupted: return "interrupted";
  }
  return "?";
}

std::vector<std::string> violation_keys(const std::vector<Violation>& vs) {
  static const std::regex uid_re("uid=[0-9]+(\\.[0-9]+)?");
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const Violation& v : vs) {
    keys.push_back(v.property + "|" +
                   std::regex_replace(v.message, uid_re, "uid=#"));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> violation_keys(const CheckerResult& r) {
  std::vector<Violation> vs;
  vs.reserve(r.violations.size());
  for (const ViolationRecord& v : r.violations) vs.push_back(v.violation);
  return violation_keys(vs);
}

std::vector<std::string> violation_key_set(const CheckerResult& r) {
  std::vector<std::string> keys = violation_keys(r);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

namespace {

/// The 16 bytes of a Hash128 in a fixed order — hash mode's state
/// identity key for the sleep store.
std::array<char, 16> hash_identity(const util::Hash128& h) {
  std::array<char, 16> out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<char>(h.lo >> (8 * (7 - i)));
    out[static_cast<std::size_t>(8 + i)] =
        static_cast<char>(h.hi >> (8 * (7 - i)));
  }
  return out;
}

}  // namespace

SearchCore::StateKey SearchCore::state_key(const SystemState& state) const {
  // Byte-keyed modes only (kFullState / kCollapsed). One implementation
  // feeds both the plain remember() and the reduction path, so a future
  // change to the key construction cannot make reduced and unreduced
  // searches key states differently.
  const bool canon = cfg_.canonical_flowtables;
  StateKey k;
  if (sym_ != nullptr) {
    // Symmetry mode: the store key is the canonical serialization of a
    // permuted/renamed/uid-renumbered image of the state, so symmetric
    // states merge. In kCollapsed mode the canonicalizer interns each
    // renamed component itself (the Snap-memoized form ids belong to the
    // *un*-renamed bytes and cannot be reused — the renaming is
    // per-state).
    SymKey sk = sym_->canonical_key(
        state, seen_.mode() == util::ShardedSeenSet::Mode::kCollapsed
                   ? collapse_
                   : nullptr);
    k.hash = sk.hash;
    k.key = std::move(sk.key);
    return k;
  }
  if (seen_.mode() == util::ShardedSeenSet::Mode::kFullState) {
    // Serialize first so each changed component's bytes + hash are
    // memoized in one pass (hash() below then reads the memoized
    // hashes), assembling the blob pre-sized to the previous state's
    // length. The hash only selects the shard; the blob itself is the
    // store key, so collisions can never merge states.
    util::Ser s;
    s.reserve(last_blob_size_.load(std::memory_order_relaxed));
    state.serialize(s, canon);
    last_blob_size_.store(s.size(), std::memory_order_relaxed);
    k.key = s.take();
  } else {
    // Interning memoizes each component's form hash, so the hash() for
    // shard selection reads memos only.
    k.key = state.collapse_key(*collapse_, canon);
  }
  k.hash = state.hash(canon);
  return k;
}

bool SearchCore::remember(const SystemState& state) const {
  const util::PhaseScope ps(util::Phase::kRemember);
  if (seen_.mode() == util::ShardedSeenSet::Mode::kHash) {
    if (sym_ != nullptr) {
      // Hash of the canonical symmetric image (the blob is built and
      // dropped — hash mode keeps the memory trade, paying one full
      // canonicalization per arrival instead of per-component memos).
      return seen_.insert(sym_->canonical_key(state, nullptr).hash);
    }
    // Combined from the per-component hashes memoized on the shared
    // snapshots: only components the transition touched are re-serialized
    // (and no component bytes are retained — hash mode is Section 6's
    // computation-for-memory trade).
    return seen_.insert(state.hash(cfg_.canonical_flowtables));
  }
  StateKey k = state_key(state);
  return seen_.insert_key(std::move(k.key));
}

SearchCore::StateKey SearchCore::identity_key(const SystemState& state) const {
  // The store's true identity: packed hash bytes in kHash mode (memoized
  // on the snapshots, so this is cheap), the canonical blob / id tuple in
  // the byte-keyed modes.
  if (seen_.mode() == util::ShardedSeenSet::Mode::kHash) {
    StateKey k;
    // Reduction never runs together with symmetry (the Checker enforces
    // it), but keep the identity consistent with remember() regardless.
    k.hash = sym_ != nullptr ? sym_->canonical_key(state, nullptr).hash
                             : state.hash(cfg_.canonical_flowtables);
    const std::array<char, 16> id = hash_identity(k.hash);
    k.key.assign(id.data(), id.size());
    return k;
  }
  return state_key(state);
}

SearchCore::ArriveOutcome SearchCore::arrive_reduced(
    const SystemState& state, const por::SleepSet& sleep,
    const std::vector<std::uint64_t>* wake, bool observe) const {
  // One lock in the SleepStore covers the first/revisit verdict, the
  // sleep bookkeeping and (wakeup mode) the previously dispatched events
  // (parallel workers agree); the seen-set insert is deferred to
  // sync_seen() so the identity bytes — computed once — can first key the
  // wakeup-tree recording. The sleep keying is therefore exactly as
  // collision-proof as the seen-set mode.
  const util::PhaseScope ps(util::Phase::kRemember);
  ArriveOutcome at;
  StateKey k = identity_key(state);
  at.hash = k.hash;
  at.identity = std::move(k.key);
  at.arr = reducer_->store().arrive(at.identity, sleep, reducer_->wakeups(),
                                    wake, observe);
  return at;
}

void SearchCore::sync_seen(ArriveOutcome&& at) const {
  const util::PhaseScope ps(util::Phase::kRemember);
  if (seen_.mode() == util::ShardedSeenSet::Mode::kHash) {
    seen_.insert(at.hash);
  } else {
    seen_.insert_key(std::move(at.identity));
  }
}

void SearchCore::fill_store_stats(CheckerResult& result) const {
  result.store_bytes = seen_.store_bytes();
  if (collapse_ != nullptr) {
    result.store_bytes += collapse_->interned_bytes();
    result.collapse.unique_blobs = collapse_->unique_blobs();
    result.collapse.interned_bytes = collapse_->interned_bytes();
    result.collapse.intern_calls = collapse_->intern_calls();
    result.collapse.dedupe_ratio = collapse_->dedupe_ratio();
  }
  if (reducer_ != nullptr && reducer_->wakeups()) {
    result.wakeup.replays = replays_.load(std::memory_order_relaxed);
    result.wakeup.woken = woken_.load(std::memory_order_relaxed);
    const por::SleepStore::WakeupTotals t = reducer_->store().wakeup_totals();
    result.wakeup.trees = t.trees;
    result.wakeup.nodes = t.nodes;
    result.wakeup.sequences = t.sequences;
  }
  if (fp_memo_ != nullptr) {
    const util::MemoCore::Stats s = fp_memo_->stats();
    result.memo.footprint_hits = s.hits;
    result.memo.footprint_misses = s.misses;
    result.memo.evictions += s.evictions;
    result.memo.bytes += s.bytes;
  }
  if (disc_memo_ != nullptr) {
    for (const util::MemoCore::Stats& s :
         {disc_memo_->packet_stats(), disc_memo_->stats_stats()}) {
      result.memo.discover_hits += s.hits;
      result.memo.discover_misses += s.misses;
      result.memo.evictions += s.evictions;
      result.memo.bytes += s.bytes;
    }
  }
}

namespace {

/// Human rendering of one flight-recorder entry. The per-worker rings
/// store compact payloads (no strings on the hot path); the transition
/// label is reconstructed here, at dump time, from (kind, actor, aux).
std::string render_flight_event(const util::FlightEvent& e) {
  char head[48];
  std::snprintf(head, sizeof head, "w%u +%.3fs ",
                static_cast<unsigned>(e.seq),
                static_cast<double>(e.t_ns) / 1e9);
  std::string out = head;
  switch (e.kind) {
    case util::FlightEvent::Kind::kExpand: {
      Transition t;
      t.kind = static_cast<TKind>(e.a);
      t.a = e.b;
      t.aux = e.c;
      out += "expand ";
      out += t.label();
      break;
    }
    case util::FlightEvent::Kind::kCheckpoint:
      out += "checkpoint ";
      if (e.detail != nullptr) {
        out += e.detail;
        out += ' ';
      }
      out += std::to_string(e.value) + "B";
      break;
    case util::FlightEvent::Kind::kWatchdog:
      out += "watchdog ";
      if (e.detail != nullptr) {
        out += e.detail;
        out += ' ';
      }
      out += "bytes=" + std::to_string(e.value);
      break;
    case util::FlightEvent::Kind::kSignal:
      out += "signal ";
      if (e.detail != nullptr) out += e.detail;
      break;
    case util::FlightEvent::Kind::kLimit:
      out += "halt ";
      if (e.detail != nullptr) out += e.detail;
      break;
  }
  return out;
}

}  // namespace

void SearchCore::fill_telemetry(CheckerResult& result) const {
  if (telem_ == nullptr) return;
  CheckerResult::TelemetryStats& t = result.telemetry;
  t.enabled = true;
  t.workers = telem_->workers();
  // The sequential drivers reach here still bound; close the live phase
  // slice so the reported profile sums to the wall time exactly. (The
  // parallel drivers joined their workers first — already flushed.)
  if (util::WorkerTelemetry* wt = util::Telemetry::current();
      wt != nullptr) {
    wt->flush_if_current();
  }
  t.phases = telem_->merged_phases();
  t.wall_ns = 0;
  for (std::size_t i = 0; i < telem_->workers(); ++i) {
    t.wall_ns += telem_->worker(i).wall_ns();
  }
  if (result.hit_limit != LimitReason::kNone) {
    const std::vector<util::FlightEvent> events = telem_->merged_flight();
    t.flight.reserve(events.size());
    for (const util::FlightEvent& e : events) {
      t.flight.push_back(render_flight_event(e));
    }
  }
}

void SearchCore::finish_stats(CheckerResult& result, Durability* dur) const {
  fill_store_stats(result);
  if (sym_ != nullptr) {
    result.symmetry.enabled = true;
    result.symmetry.orbits = sym_->orbit_count();
    result.symmetry.orbit_hosts = sym_->orbit_host_count();
    result.symmetry.canonicalizations = sym_->canonicalizations();
  }
  if (dur != nullptr) dur->fill(result);
  fill_telemetry(result);
  result.peak_rss_bytes = util::peak_rss_bytes();
}

void SearchCore::publish_gauges(std::uint64_t frontier_nodes) const {
  if (telem_ == nullptr) return;
  telem_->frontier.store(frontier_nodes, std::memory_order_relaxed);
  telem_->engine_bytes.store(resident_bytes(frontier_nodes),
                             std::memory_order_relaxed);
  if (fp_memo_ != nullptr) {
    const util::MemoCore::Stats s = fp_memo_->stats();
    telem_->memo_fp_hits.store(s.hits, std::memory_order_relaxed);
    telem_->memo_fp_misses.store(s.misses, std::memory_order_relaxed);
  }
  if (disc_memo_ != nullptr) {
    const util::MemoCore::Stats p = disc_memo_->packet_stats();
    const util::MemoCore::Stats q = disc_memo_->stats_stats();
    telem_->memo_disc_hits.store(p.hits + q.hits,
                                 std::memory_order_relaxed);
    telem_->memo_disc_misses.store(p.misses + q.misses,
                                   std::memory_order_relaxed);
  }
  telem_->wakeup_replays.store(replays_.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  telem_->wakeup_woken.store(woken_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
}

std::vector<SearchNode> SearchCore::init(CheckerResult& result,
                                         DiscoveryCache& cache) const {
  // Build the shared initial state exactly once (the seed cloned it twice:
  // make_initial → local → clone into the shared_ptr).
  auto initial_sp =
      std::make_shared<const SystemState>(executor_.make_initial());
  ArriveOutcome root_at;
  if (reducer_ != nullptr) {
    // Register the root arrival (empty sleep set) so later re-arrivals at
    // the initial state are pure revisits.
    root_at = arrive_reduced(*initial_sp, {}, nullptr);
  } else {
    remember(*initial_sp);
  }
  result.unique_states = 1;

  std::vector<SearchNode> roots;
  auto ts = apply_strategy(options_.strategy, cfg_, *initial_sp,
                           executor_.enabled(*initial_sp, cache));
  if (ts.empty()) {
    if (reducer_ != nullptr) sync_seen(std::move(root_at));
    ++result.quiescent_states;
    std::vector<Violation> vs;
    // COW clone: O(#components) pointer copies. Monitors may mutate their
    // local state in at_quiescence, which must not leak into the published
    // initial state.
    SystemState tmp = initial_sp->clone();
    executor_.at_quiescence(tmp, vs);
    for (Violation& v : vs) {
      result.violations.push_back(ViolationRecord{std::move(v), {}});
    }
    return roots;
  }
  if (reducer_ != nullptr) {
    make_reduced_children(initial_sp, nullptr, 1, std::move(ts), {}, nullptr,
                          root_at, /*targeted=*/false, roots);
    sync_seen(std::move(root_at));
    return roots;
  }
  roots.reserve(ts.size());
  for (Transition& t : ts) {
    roots.push_back(
        SearchNode{initial_sp, std::move(t), nullptr, 1, {}, {}, {}, false});
  }
  return roots;
}

SearchCore::Expansion SearchCore::expand(const SearchNode& node,
                                         DiscoveryCache& cache) const {
  Expansion out;

  SystemState next = [&node] {
    const util::PhaseScope ps(util::Phase::kClone);
    return node.state->clone();
  }();
  std::vector<Violation> violations;
  executor_.apply(next, node.transition, violations);

  auto path = std::make_shared<const PathNode>(
      PathNode{node.path, node.transition});

  if (!violations.empty()) {
    out.transition_violated = true;
    // A wakeup replay re-executes an edge whose original dispatch (same
    // source state, deterministic apply) already reported exactly these
    // violations — re-reporting would duplicate the records in
    // collect-all mode. The wake it carried needs no delivery either:
    // nothing is ever explored beyond an erroneous transition, in any
    // mode.
    if (!node.wake.empty()) return out;
    const auto trace = trace_of(path);
    out.violations.reserve(violations.size());
    for (Violation& v : violations) {
      out.violations.push_back(ViolationRecord{std::move(v), trace});
    }
    return out;  // do not remember or expand beyond an erroneous state
  }

  if (reducer_ != nullptr) {
    expand_reduced(out, std::move(next), node, std::move(path), cache);
    return out;
  }

  if (!remember(next)) return out;  // revisit
  out.new_state = true;

  if (node.depth >= options_.max_depth) return out;

  auto ts = apply_strategy(options_.strategy, cfg_, next,
                           executor_.enabled(next, cache));
  if (ts.empty()) {
    out.quiescent = true;
    std::vector<Violation> vs;
    executor_.at_quiescence(next, vs);
    if (!vs.empty()) {
      const auto trace = trace_of(path);
      for (Violation& v : vs) {
        out.violations.push_back(ViolationRecord{std::move(v), trace});
      }
    }
    return out;
  }

  auto next_sp = std::make_shared<const SystemState>(std::move(next));
  out.children.reserve(ts.size());
  for (Transition& t : ts) {
    out.children.push_back(
        SearchNode{next_sp, std::move(t), path, node.depth + 1, {}, {}, {}, false});
  }
  return out;
}

void SearchCore::expand_reduced(Expansion& out, SystemState&& next,
                                const SearchNode& node,
                                std::shared_ptr<const PathNode> path,
                                DiscoveryCache& cache) const {
  const bool targeted = !node.wake.empty();
  ArriveOutcome at = arrive_reduced(
      next, node.sleep, targeted ? &node.wake : nullptr, node.claim_free);
  out.new_state = at.arr.first;
  if (targeted && !at.arr.explore.empty()) {
    woken_.fetch_add(at.arr.explore.size(), std::memory_order_relaxed);
  }

  if (!at.arr.first && at.arr.explore.empty()) {
    return sync_seen(std::move(at));  // pure revisit
  }
  if (node.depth >= options_.max_depth) return sync_seen(std::move(at));

  auto ts = apply_strategy(options_.strategy, cfg_, next,
                           executor_.enabled(next, cache));
  if (ts.empty()) {
    // Quiescence is a state predicate on the strategy-filtered enabled
    // set, never affected by sleep filtering; check it once (first
    // arrival), exactly like the unreduced search.
    if (at.arr.first) {
      out.quiescent = true;
      std::vector<Violation> vs;
      executor_.at_quiescence(next, vs);
      if (!vs.empty()) {
        const auto trace = trace_of(path);
        for (Violation& v : vs) {
          out.violations.push_back(ViolationRecord{std::move(v), trace});
        }
      }
    }
    return sync_seen(std::move(at));
  }

  // A re-expanded child that discovered a new state activates its
  // conditional sleep entries: the commuting previously-dispatched events
  // join the arrival sleep set (their exploration here would only
  // re-derive states their own subtrees reach after the owed replay), and
  // the owed wakeup sequences — replay the event from the parent state,
  // wake this node's transition at its successor — are emitted, deduped
  // per (event, wakee) pair through the parent tree's claimed sequences.
  const por::SleepSet* arrival_sleep = &node.sleep;
  por::SleepSet augmented;
  if (at.arr.first && !node.cond.empty()) {
    const bool keys = reducer_->packet_keys();
    const StateKey pk = identity_key(*node.state);
    const std::uint64_t me = por::transition_hash(node.transition);
    const std::vector<std::uint64_t> want{me};
    augmented = node.sleep;
    for (const CondSleep& c : node.cond) {
      augmented.push_back(por::SleepEntry{c.thash, c.fp});
      if (reducer_->store().claim_wakeups(pk.key, c.thash, want).empty()) {
        continue;  // an earlier activation already owes this replay
      }
      replays_.fetch_add(1, std::memory_order_relaxed);
      por::SleepSet replay_sleep;
      for (const por::SleepEntry& z : node.sleep) {
        if (!por::may_conflict(z.fp, c.fp, keys)) replay_sleep.push_back(z);
      }
      out.children.push_back(SearchNode{node.state, c.transition, node.path,
                                        node.depth, std::move(replay_sleep),
                                        {me}, {}, false});
    }
    arrival_sleep = &augmented;
  }

  auto next_sp = std::make_shared<const SystemState>(std::move(next));
  make_reduced_children(next_sp, path, node.depth + 1, std::move(ts),
                        *arrival_sleep,
                        at.arr.first ? nullptr : &at.arr.explore, at,
                        targeted, out.children);
  sync_seen(std::move(at));
}

void SearchCore::make_reduced_children(
    const std::shared_ptr<const SystemState>& sp,
    const std::shared_ptr<const PathNode>& path, std::size_t depth,
    std::vector<Transition>&& ts, const por::SleepSet& arrival_sleep,
    const std::vector<std::uint64_t>* explore_only,
    const ArriveOutcome& at, bool targeted,
    std::vector<SearchNode>& out) const {
  const bool keys = reducer_->packet_keys();
  const bool wake = reducer_->wakeups();

  std::vector<std::uint64_t> th(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    th[i] = por::transition_hash(ts[i]);
  }
  const auto slept = [&arrival_sleep](std::uint64_t x) {
    for (const por::SleepEntry& z : arrival_sleep) {
      if (z.thash == x) return true;
    }
    return false;
  };

  // First arrival: everything outside the arrival sleep set. Revisit:
  // exactly the transitions every earlier arrival slept but this one does
  // not (intersected with the enabled set — stored entries can reference
  // inherited sleep members not enabled here; those need no exploration).
  std::vector<std::size_t> sel;
  sel.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (explore_only != nullptr) {
      if (std::find(explore_only->begin(), explore_only->end(), th[i]) !=
          explore_only->end()) {
        sel.push_back(i);
      }
    } else if (!slept(th[i])) {
      sel.push_back(i);
    }
  }
  if (sel.empty()) return;

  std::vector<por::Footprint> fps(ts.size());
  {
    // One scope around the whole batch, not one per call: at ~200ns of
    // total telemetry budget per transition, per-footprint boundaries
    // would cost more than they attribute.
    const util::PhaseScope ps(util::Phase::kFootprint);
    for (const std::size_t i : sel) {
      fps[i] = footprint_of(*sp, ts[i]);
    }
  }

  // Source-DPOR revisits: a re-expanded transition may sleep a previously
  // dispatched independent event only if some dispatch of that event ran
  // with the re-expanded transition awake — and every earlier dispatch
  // had it asleep (it sat in every prior arrival's sleep set, or it would
  // not be re-expanded now). The entitlement must therefore be *bought*
  // by replaying the event's wakeup sequence (re-dispatch it, wake the
  // re-expanded transition at its successor). Replays cost two real
  // transitions, so they are attached lazily: each re-expanded child
  // carries the commuting dispatched events as conditional sleep entries
  // (SearchNode::cond) and pays for them — emitting the owed replays from
  // the parent state it still holds — only if it discovers a genuinely
  // new state, where the sleeping propagates into a fresh subtree. At an
  // already-seen state the entries are dropped for free.
  std::vector<std::size_t> redispatch;
  if (wake && !targeted && explore_only != nullptr &&
      !at.arr.dispatched.empty()) {
    const util::PhaseScope ps(util::Phase::kFootprint);
    for (const std::uint64_t d : at.arr.dispatched) {
      // First-dispatch order; skip events not enabled here (strategy
      // filters that key on non-canonical tags can differ per path),
      // asleep at this arrival (their commuted orders are covered by the
      // ancestor that put them to sleep), or in the batch itself.
      const auto pos = std::find(th.begin(), th.end(), d);
      if (pos == th.end() || slept(d)) continue;
      const std::size_t i = static_cast<std::size_t>(pos - th.begin());
      if (std::find(sel.begin(), sel.end(), i) != sel.end()) continue;
      fps[i] = footprint_of(*sp, ts[i]);
      redispatch.push_back(i);
    }
  }

  if (reducer_->clusters()) {
    por::cluster_order(fps, keys, sel);
  }

  // Wakeup bookkeeping of this batch: the dispatched events in scheduled
  // order, each with the sleep context it ran under, plus the conflicting
  // pairs (the race order this schedule commits to).
  std::vector<std::uint64_t> events;
  std::vector<por::WakeupContext> contexts;
  std::vector<std::size_t> emitted;  // ts indices behind `events`

  out.reserve(out.size() + sel.size());
  for (std::size_t k = 0; k < sel.size(); ++k) {
    const std::size_t i = sel[k];
    por::SleepSet child;
    // Inherit arrival-sleep entries still independent of this transition.
    for (const por::SleepEntry& z : arrival_sleep) {
      if (!por::may_conflict(z.fp, fps[i], keys)) child.push_back(z);
    }
    // Earlier-expanded independent siblings go to sleep: exploring them
    // after `ts[i]` would only commute into states the sibling-first
    // order already reaches.
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t pj = sel[j];
      if (!por::may_conflict(fps[pj], fps[i], keys)) {
        child.push_back(por::SleepEntry{th[pj], fps[pj]});
      }
    }
    std::vector<CondSleep> cond;
    if (wake && !targeted) {
      // Note the recorded context deliberately excludes the conditional
      // entries: whether they end up slept is decided at the child's own
      // expansion, and underclaiming what a dispatch kept awake is the
      // conservative direction for any future subsumption consumer.
      por::WakeupContext ctx;
      ctx.reserve(child.size());
      for (const por::SleepEntry& z : child) ctx.push_back(z.thash);
      por::normalize_context(ctx);
      events.push_back(th[i]);
      contexts.push_back(std::move(ctx));
      emitted.push_back(i);
      for (const std::size_t d : redispatch) {
        if (!por::may_conflict(fps[d], fps[i], keys)) {
          cond.push_back(CondSleep{ts[d], fps[d], th[d]});
        }
      }
    }
    // Woken successors of a targeted replay are claim-free (and never
    // recorded as dispatches above): their arrival visits the commuted
    // twin state, claiming nothing about its residue.
    out.push_back(SearchNode{sp, std::move(ts[i]), path, depth,
                             std::move(child), {}, std::move(cond),
                             targeted});
  }

  if (wake && !events.empty()) {
    // Race pairs among the emitted children, in scheduled order.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> races;
    for (std::size_t a = 0; a < emitted.size(); ++a) {
      for (std::size_t b = a + 1; b < emitted.size(); ++b) {
        if (por::may_conflict(fps[emitted[a]], fps[emitted[b]], keys)) {
          races.emplace_back(static_cast<std::uint32_t>(a),
                             static_cast<std::uint32_t>(b));
        }
      }
    }
    reducer_->store().record_schedule(at.identity, events,
                                      std::move(contexts), races);
  }
}

CheckerResult SearchCore::run_sequential(Frontier& frontier,
                                         DiscoveryCache& cache,
                                         Durability* dur) const {
  const auto start = SearchClock::now();
  CheckerResult result;

  // Snapshot of the run as of *now*: counters (seeded totals + this run),
  // the frontier in reconstruction order, and the combined discovery
  // stats the caller passes in.
  const auto make_snapshot = [&](const DiscoveryStats& disc) {
    Durability::Snapshot snap;
    snap.transitions = result.transitions;
    snap.unique_states = result.unique_states;
    snap.revisits = result.revisits;
    snap.quiescent_states = result.quiescent_states;
    snap.violations = &result.violations;
    snap.discovery = disc;
    snap.frontier_rng = frontier.rng_state();
    snap.for_each_node =
        [&frontier](const std::function<void(const SearchNode&)>& fn) {
          frontier.for_each(fn);
        };
    return snap;
  };

  // Worker slot 0 for the single-threaded search; a null telemetry
  // context binds nothing and every scope below degrades to one branch.
  const util::Telemetry::Binding bind(telem_, 0);
  util::WorkerTelemetry* const wt = util::Telemetry::current();

  const auto finalize = [&](LimitReason reason) -> CheckerResult& {
    result.hit_limit = reason;
    result.seconds = seconds_since(start);
    // Accumulate, not assign: a resumed run's seed discovery counters are
    // already in result.discovery.
    add_discovery_stats(result.discovery, cache.stats());
    if (wt != nullptr && reason != LimitReason::kNone) {
      wt->record_event(util::FlightEvent::Kind::kLimit, 0,
                       limit_reason_name(reason));
    }
    publish_gauges(frontier.size());
    if (dur != nullptr) {
      // Every halt — limit, interrupt, memory, exhaustion — leaves a
      // final checkpoint, so resuming a finished run is an idempotent
      // no-op and an interrupted one continues where it stopped.
      dur->save(*this, make_snapshot(result.discovery));
    }
    finish_stats(result, dur);
    return result;
  };

  if (dur != nullptr && dur->resumed()) {
    // The stores were already reloaded by Durability::resume; seed the
    // carried counters/violations and re-push the rebuilt frontier.
    dur->seed(result);
    frontier.set_rng_state(dur->frontier_rng());
    for (SearchNode& node : dur->take_nodes()) {
      frontier.push(std::move(node));
    }
  } else {
    for (SearchNode& root : init(result, cache)) {
      frontier.push(std::move(root));
    }
  }
  if (telem_ != nullptr) {
    // Seed the reporter's cumulative totals: the resumed counters (or
    // init's root state) are not re-counted by the per-worker counters.
    telem_->set_base(result.transitions, result.unique_states,
                     result.revisits, result.quiescent_states);
  }

  // Interrupt/watchdog polls, checkpoint-due checks, and telemetry gauge
  // publication run every kPollStride expansions — cheap enough to never
  // show up in profiles, frequent enough that a signal halts promptly.
  constexpr std::uint64_t kPollStride = 32;
  std::uint64_t since_poll = 0;
  std::uint64_t polls = 0;

  while (!frontier.empty()) {
    if (result.transitions >= options_.max_transitions) {
      return finalize(LimitReason::kTransitions);  // hit a limit: not exhausted
    }
    if (result.unique_states >= options_.max_unique_states) {
      return finalize(LimitReason::kUniqueStates);
    }
    if (options_.time_limit_seconds > 0 &&
        seconds_since(start) >= options_.time_limit_seconds) {
      return finalize(LimitReason::kTime);
    }
    if ((dur != nullptr || telem_ != nullptr) &&
        ++since_poll >= kPollStride) {
      since_poll = 0;
      ++polls;
      if (dur != nullptr) {
        const LimitReason r = dur->poll(*this, frontier.size());
        if (r != LimitReason::kNone) return finalize(r);
        if (dur->due()) {
          DiscoveryStats disc = result.discovery;
          add_discovery_stats(disc, cache.stats());
          dur->save(*this, make_snapshot(disc));
        }
      }
      if (telem_ != nullptr) {
        telem_->frontier.store(frontier.size(), std::memory_order_relaxed);
        // The expensive gauges (engine bytes, memo stats) every ~1k
        // expansions; they take shard locks, so not every poll.
        if (polls % 32 == 0) publish_gauges(frontier.size());
      }
    }
    if (options_.stop_at_first_violation && result.found_violation()) break;

    SearchNode node;
    frontier.pop(node);

    if (wt != nullptr) {
      wt->record_expand(static_cast<std::uint32_t>(node.transition.kind),
                        node.transition.a, node.transition.aux);
    }
    Expansion e = expand(node, cache);
    ++result.transitions;
    if (wt != nullptr) wt->add_transitions();

    if (e.transition_violated) {
      for (ViolationRecord& v : e.violations) {
        result.violations.push_back(std::move(v));
      }
      if (options_.stop_at_first_violation) break;
      continue;
    }

    if (!e.new_state) {
      ++result.revisits;
      if (wt != nullptr) wt->add_revisits();
      // Reduction mode only: a revisit carrying a smaller sleep set
      // re-expands the difference; e.children is empty otherwise.
      for (SearchNode& child : e.children) {
        frontier.push(std::move(child));
      }
      continue;
    }
    ++result.unique_states;
    if (wt != nullptr) wt->add_unique();

    if (e.quiescent) {
      ++result.quiescent_states;
      if (wt != nullptr) wt->add_quiescent();
      if (!e.violations.empty()) {
        for (ViolationRecord& v : e.violations) {
          result.violations.push_back(std::move(v));
        }
        if (options_.stop_at_first_violation) break;
      }
      continue;
    }

    for (SearchNode& child : e.children) {
      frontier.push(std::move(child));
    }
  }

  // "Exhausted" = the bounded state space was fully explored. In
  // collect-all mode a violation does not negate exhaustion; in
  // stop-at-first mode it does (the search was cut short).
  result.exhausted =
      frontier.empty() &&
      !(options_.stop_at_first_violation && result.found_violation());
  return finalize(LimitReason::kNone);
}

}  // namespace nicemc::mc
