#include "mc/search_core.h"

#include <algorithm>
#include <array>
#include <memory>
#include <regex>
#include <string>
#include <string_view>
#include <utility>

#include "util/hash.h"
#include "util/ser.h"

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

std::vector<std::string> violation_keys(const std::vector<Violation>& vs) {
  static const std::regex uid_re("uid=[0-9]+(\\.[0-9]+)?");
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const Violation& v : vs) {
    keys.push_back(v.property + "|" +
                   std::regex_replace(v.message, uid_re, "uid=#"));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> violation_keys(const CheckerResult& r) {
  std::vector<Violation> vs;
  vs.reserve(r.violations.size());
  for (const ViolationRecord& v : r.violations) vs.push_back(v.violation);
  return violation_keys(vs);
}

std::vector<std::string> violation_key_set(const CheckerResult& r) {
  std::vector<std::string> keys = violation_keys(r);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

namespace {

/// The 16 bytes of a Hash128 in a fixed order — hash mode's state
/// identity key for the sleep store.
std::array<char, 16> hash_identity(const util::Hash128& h) {
  std::array<char, 16> out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<char>(h.lo >> (8 * (7 - i)));
    out[static_cast<std::size_t>(8 + i)] =
        static_cast<char>(h.hi >> (8 * (7 - i)));
  }
  return out;
}

}  // namespace

SearchCore::StateKey SearchCore::state_key(const SystemState& state) const {
  // Byte-keyed modes only (kFullState / kCollapsed). One implementation
  // feeds both the plain remember() and the reduction path, so a future
  // change to the key construction cannot make reduced and unreduced
  // searches key states differently.
  const bool canon = cfg_.canonical_flowtables;
  StateKey k;
  if (seen_.mode() == util::ShardedSeenSet::Mode::kFullState) {
    // Serialize first so each changed component's bytes + hash are
    // memoized in one pass (hash() below then reads the memoized
    // hashes), assembling the blob pre-sized to the previous state's
    // length. The hash only selects the shard; the blob itself is the
    // store key, so collisions can never merge states.
    util::Ser s;
    s.reserve(last_blob_size_.load(std::memory_order_relaxed));
    state.serialize(s, canon);
    last_blob_size_.store(s.size(), std::memory_order_relaxed);
    k.key = s.take();
  } else {
    // Interning memoizes each component's form hash, so the hash() for
    // shard selection reads memos only.
    k.key = state.collapse_key(*collapse_, canon);
  }
  k.hash = state.hash(canon);
  return k;
}

bool SearchCore::remember(const SystemState& state) const {
  if (seen_.mode() == util::ShardedSeenSet::Mode::kHash) {
    // Combined from the per-component hashes memoized on the shared
    // snapshots: only components the transition touched are re-serialized
    // (and no component bytes are retained — hash mode is Section 6's
    // computation-for-memory trade).
    return seen_.insert(state.hash(cfg_.canonical_flowtables));
  }
  StateKey k = state_key(state);
  return seen_.insert_key(k.hash, std::move(k.key));
}

por::SleepStore::Arrival SearchCore::arrive_and_remember(
    const SystemState& state, const por::SleepSet& sleep) const {
  // One lock in the SleepStore covers both the first/revisit verdict and
  // the sleep bookkeeping (parallel workers agree); the seen-set insert
  // that follows keeps the storage and byte accounting in sync. The
  // identity bytes are computed once and used for both stores, so the
  // sleep keying is exactly as collision-proof as the seen-set mode.
  por::SleepStore& store = reducer_->store();
  if (seen_.mode() == util::ShardedSeenSet::Mode::kHash) {
    const util::Hash128 h = state.hash(cfg_.canonical_flowtables);
    const std::array<char, 16> id = hash_identity(h);
    por::SleepStore::Arrival arr =
        store.arrive(h, std::string_view(id.data(), id.size()), sleep);
    seen_.insert(h);
    return arr;
  }
  StateKey k = state_key(state);
  por::SleepStore::Arrival arr = store.arrive(k.hash, k.key, sleep);
  seen_.insert_key(k.hash, std::move(k.key));
  return arr;
}

void SearchCore::fill_store_stats(CheckerResult& result) const {
  result.store_bytes = seen_.store_bytes();
  if (collapse_ != nullptr) {
    result.store_bytes += collapse_->interned_bytes();
    result.collapse.unique_blobs = collapse_->unique_blobs();
    result.collapse.interned_bytes = collapse_->interned_bytes();
    result.collapse.intern_calls = collapse_->intern_calls();
    result.collapse.dedupe_ratio = collapse_->dedupe_ratio();
  }
}

std::vector<SearchNode> SearchCore::init(CheckerResult& result,
                                         DiscoveryCache& cache) const {
  // Build the shared initial state exactly once (the seed cloned it twice:
  // make_initial → local → clone into the shared_ptr).
  auto initial_sp =
      std::make_shared<const SystemState>(executor_.make_initial());
  if (reducer_ != nullptr) {
    // Register the root arrival (empty sleep set) so later re-arrivals at
    // the initial state are pure revisits.
    (void)arrive_and_remember(*initial_sp, {});
  } else {
    remember(*initial_sp);
  }
  result.unique_states = 1;

  std::vector<SearchNode> roots;
  auto ts = apply_strategy(options_.strategy, cfg_, *initial_sp,
                           executor_.enabled(*initial_sp, cache));
  if (ts.empty()) {
    ++result.quiescent_states;
    std::vector<Violation> vs;
    // COW clone: O(#components) pointer copies. Monitors may mutate their
    // local state in at_quiescence, which must not leak into the published
    // initial state.
    SystemState tmp = initial_sp->clone();
    executor_.at_quiescence(tmp, vs);
    for (Violation& v : vs) {
      result.violations.push_back(ViolationRecord{std::move(v), {}});
    }
    return roots;
  }
  if (reducer_ != nullptr) {
    make_reduced_children(initial_sp, nullptr, 1, std::move(ts), {}, nullptr,
                          roots);
    return roots;
  }
  roots.reserve(ts.size());
  for (Transition& t : ts) {
    roots.push_back(SearchNode{initial_sp, std::move(t), nullptr, 1, {}});
  }
  return roots;
}

SearchCore::Expansion SearchCore::expand(const SearchNode& node,
                                         DiscoveryCache& cache) const {
  Expansion out;

  SystemState next = node.state->clone();
  std::vector<Violation> violations;
  executor_.apply(next, node.transition, violations);

  auto path = std::make_shared<const PathNode>(
      PathNode{node.path, node.transition});

  if (!violations.empty()) {
    out.transition_violated = true;
    const auto trace = trace_of(path);
    out.violations.reserve(violations.size());
    for (Violation& v : violations) {
      out.violations.push_back(ViolationRecord{std::move(v), trace});
    }
    return out;  // do not remember or expand beyond an erroneous state
  }

  if (reducer_ != nullptr) {
    expand_reduced(out, std::move(next), node, std::move(path), cache);
    return out;
  }

  if (!remember(next)) return out;  // revisit
  out.new_state = true;

  if (node.depth >= options_.max_depth) return out;

  auto ts = apply_strategy(options_.strategy, cfg_, next,
                           executor_.enabled(next, cache));
  if (ts.empty()) {
    out.quiescent = true;
    std::vector<Violation> vs;
    executor_.at_quiescence(next, vs);
    if (!vs.empty()) {
      const auto trace = trace_of(path);
      for (Violation& v : vs) {
        out.violations.push_back(ViolationRecord{std::move(v), trace});
      }
    }
    return out;
  }

  auto next_sp = std::make_shared<const SystemState>(std::move(next));
  out.children.reserve(ts.size());
  for (Transition& t : ts) {
    out.children.push_back(
        SearchNode{next_sp, std::move(t), path, node.depth + 1, {}});
  }
  return out;
}

void SearchCore::expand_reduced(Expansion& out, SystemState&& next,
                                const SearchNode& node,
                                std::shared_ptr<const PathNode> path,
                                DiscoveryCache& cache) const {
  por::SleepStore::Arrival arr = arrive_and_remember(next, node.sleep);
  out.new_state = arr.first;

  if (!arr.first && arr.explore.empty()) return;  // pure revisit
  if (node.depth >= options_.max_depth) return;

  auto ts = apply_strategy(options_.strategy, cfg_, next,
                           executor_.enabled(next, cache));
  if (ts.empty()) {
    // Quiescence is a state predicate on the strategy-filtered enabled
    // set, never affected by sleep filtering; check it once (first
    // arrival), exactly like the unreduced search.
    if (arr.first) {
      out.quiescent = true;
      std::vector<Violation> vs;
      executor_.at_quiescence(next, vs);
      if (!vs.empty()) {
        const auto trace = trace_of(path);
        for (Violation& v : vs) {
          out.violations.push_back(ViolationRecord{std::move(v), trace});
        }
      }
    }
    return;
  }

  auto next_sp = std::make_shared<const SystemState>(std::move(next));
  make_reduced_children(next_sp, path, node.depth + 1, std::move(ts),
                        node.sleep, arr.first ? nullptr : &arr.explore,
                        out.children);
}

void SearchCore::make_reduced_children(
    const std::shared_ptr<const SystemState>& sp,
    const std::shared_ptr<const PathNode>& path, std::size_t depth,
    std::vector<Transition>&& ts, const por::SleepSet& arrival_sleep,
    const std::vector<std::uint64_t>* explore_only,
    std::vector<SearchNode>& out) const {
  const bool keys = reducer_->packet_keys();

  std::vector<std::uint64_t> th(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    th[i] = por::transition_hash(ts[i]);
  }
  const auto slept = [&arrival_sleep](std::uint64_t x) {
    for (const por::SleepEntry& z : arrival_sleep) {
      if (z.thash == x) return true;
    }
    return false;
  };

  // First arrival: everything outside the arrival sleep set. Revisit:
  // exactly the transitions every earlier arrival slept but this one does
  // not (intersected with the enabled set — stored entries can reference
  // inherited sleep members not enabled here; those need no exploration).
  std::vector<std::size_t> sel;
  sel.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (explore_only != nullptr) {
      if (std::find(explore_only->begin(), explore_only->end(), th[i]) !=
          explore_only->end()) {
        sel.push_back(i);
      }
    } else if (!slept(th[i])) {
      sel.push_back(i);
    }
  }
  if (sel.empty()) return;

  std::vector<por::Footprint> fps(ts.size());
  for (const std::size_t i : sel) {
    fps[i] = por::compute_footprint(cfg_, *sp, ts[i]);
  }

  if (reducer_->mode() == Reduction::kSleepPersistent) {
    por::cluster_order(fps, keys, sel);
  }

  out.reserve(out.size() + sel.size());
  for (std::size_t k = 0; k < sel.size(); ++k) {
    const std::size_t i = sel[k];
    por::SleepSet child;
    // Inherit arrival-sleep entries still independent of this transition.
    for (const por::SleepEntry& z : arrival_sleep) {
      if (!por::may_conflict(z.fp, fps[i], keys)) child.push_back(z);
    }
    // Earlier-expanded independent siblings go to sleep: exploring them
    // after `ts[i]` would only commute into states the sibling-first
    // order already reaches.
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t pj = sel[j];
      if (!por::may_conflict(fps[pj], fps[i], keys)) {
        child.push_back(por::SleepEntry{th[pj], fps[pj]});
      }
    }
    out.push_back(SearchNode{sp, std::move(ts[i]), path, depth,
                             std::move(child)});
  }
}

CheckerResult SearchCore::run_sequential(Frontier& frontier,
                                         DiscoveryCache& cache) const {
  const auto start = SearchClock::now();
  CheckerResult result;

  const auto finalize = [&](LimitReason reason) -> CheckerResult& {
    result.hit_limit = reason;
    result.seconds = seconds_since(start);
    result.discovery = cache.stats();
    fill_store_stats(result);
    return result;
  };

  for (SearchNode& root : init(result, cache)) {
    frontier.push(std::move(root));
  }

  while (!frontier.empty()) {
    if (result.transitions >= options_.max_transitions) {
      return finalize(LimitReason::kTransitions);  // hit a limit: not exhausted
    }
    if (result.unique_states >= options_.max_unique_states) {
      return finalize(LimitReason::kUniqueStates);
    }
    if (options_.time_limit_seconds > 0 &&
        seconds_since(start) >= options_.time_limit_seconds) {
      return finalize(LimitReason::kTime);
    }
    if (options_.stop_at_first_violation && result.found_violation()) break;

    SearchNode node;
    frontier.pop(node);

    Expansion e = expand(node, cache);
    ++result.transitions;

    if (e.transition_violated) {
      for (ViolationRecord& v : e.violations) {
        result.violations.push_back(std::move(v));
      }
      if (options_.stop_at_first_violation) break;
      continue;
    }

    if (!e.new_state) {
      ++result.revisits;
      // Reduction mode only: a revisit carrying a smaller sleep set
      // re-expands the difference; e.children is empty otherwise.
      for (SearchNode& child : e.children) {
        frontier.push(std::move(child));
      }
      continue;
    }
    ++result.unique_states;

    if (e.quiescent) {
      ++result.quiescent_states;
      if (!e.violations.empty()) {
        for (ViolationRecord& v : e.violations) {
          result.violations.push_back(std::move(v));
        }
        if (options_.stop_at_first_violation) break;
      }
      continue;
    }

    for (SearchNode& child : e.children) {
      frontier.push(std::move(child));
    }
  }

  // "Exhausted" = the bounded state space was fully explored. In
  // collect-all mode a violation does not negate exhaustion; in
  // stop-at-first mode it does (the search was cut short).
  result.exhausted =
      frontier.empty() &&
      !(options_.stop_at_first_violation && result.found_violation());
  return finalize(LimitReason::kNone);
}

}  // namespace nicemc::mc
