// Counterexample traces: a shared-parent chain of transitions from the
// initial state, plus deterministic replay (paper Section 6: states are
// restored by replaying the transition sequence; component determinism
// makes the replay exact).
#ifndef NICE_MC_TRACE_H
#define NICE_MC_TRACE_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mc/execute.h"
#include "mc/property.h"
#include "mc/transition.h"

namespace nicemc::mc {

struct PathNode {
  std::shared_ptr<const PathNode> parent;
  Transition transition;
};

/// Transitions from the initial state to (and including) `node`.
std::vector<Transition> trace_of(std::shared_ptr<const PathNode> node);

/// Human-readable rendering, one line per step.
std::vector<std::string> trace_lines(const std::vector<Transition>& trace);

/// Structured trace exports. The JSON form carries one object per step —
/// {"step": 1-based index, "kind": tkind_name, "actor": a, "aux": aux,
/// "label": human label} — so downstream tooling never re-parses labels;
/// the DOT form renders the trace as a Graphviz state chain
/// (s0 -> s1 -> ... with transition labels on the edges). The violation
/// variants wrap the same steps with the property/message (JSON) or mark
/// the final state red with the violation text (DOT).
[[nodiscard]] std::string trace_json(const std::vector<Transition>& trace);
[[nodiscard]] std::string violation_trace_json(
    std::string_view property, std::string_view message,
    const std::vector<Transition>& trace);
[[nodiscard]] std::string trace_dot(const std::vector<Transition>& trace);
[[nodiscard]] std::string violation_trace_dot(
    std::string_view property, std::string_view message,
    const std::vector<Transition>& trace);

/// Replay a trace from the initial state; returns the final state.
/// Violations raised along the way are appended to `violations`.
SystemState replay(const Executor& executor,
                   const std::vector<Transition>& trace,
                   std::vector<Violation>& violations);

}  // namespace nicemc::mc

#endif  // NICE_MC_TRACE_H
