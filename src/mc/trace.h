// Counterexample traces: a shared-parent chain of transitions from the
// initial state, plus deterministic replay (paper Section 6: states are
// restored by replaying the transition sequence; component determinism
// makes the replay exact).
#ifndef NICE_MC_TRACE_H
#define NICE_MC_TRACE_H

#include <memory>
#include <string>
#include <vector>

#include "mc/execute.h"
#include "mc/property.h"
#include "mc/transition.h"

namespace nicemc::mc {

struct PathNode {
  std::shared_ptr<const PathNode> parent;
  Transition transition;
};

/// Transitions from the initial state to (and including) `node`.
std::vector<Transition> trace_of(std::shared_ptr<const PathNode> node);

/// Human-readable rendering, one line per step.
std::vector<std::string> trace_lines(const std::vector<Transition>& trace);

/// Replay a trace from the initial state; returns the final state.
/// Violations raised along the way are appended to `violations`.
SystemState replay(const Executor& executor,
                   const std::vector<Transition>& trace,
                   std::vector<Violation>& violations);

}  // namespace nicemc::mc

#endif  // NICE_MC_TRACE_H
