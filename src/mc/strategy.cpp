#include "mc/strategy.h"

#include <algorithm>
#include <optional>

#include "util/ser.h"

namespace nicemc::mc {

namespace {

// Sends subject to FLOW-IR grouping. Discovered sends are exempt: the
// packets discovered for one host are *alternative* behaviours competing
// for the same PKT-SEQ send budget, so pruning all but one group would
// remove behaviours rather than redundant orderings.
bool is_groupable_send(const Transition& t) {
  return t.kind == TKind::kHostSendScript ||
         t.kind == TKind::kHostSendDup || t.kind == TKind::kHostSendReply;
}

/// Header the send transition would inject (for flow grouping).
sym::PacketFields send_fields(const SystemConfig& cfg,
                              const SystemState& state,
                              const Transition& t) {
  const hosts::HostState& hs = state.host(t.a);
  const hosts::HostBehavior& hb = cfg.host_behavior[t.a];
  switch (t.kind) {
    case TKind::kHostSendScript:
      return hb.script[static_cast<std::size_t>(hs.sends_done)].hdr;
    case TKind::kHostSendDup:
      return hb.script.front().hdr;
    case TKind::kHostSendReply:
      return hs.pending_replies.front().hdr;
    case TKind::kHostSendDiscovered:
    default:
      return t.fields;
  }
}

std::vector<std::byte> field_key(const sym::PacketFields& f) {
  util::Ser s;
  s.put_u64(f.eth_src);
  s.put_u64(f.eth_dst);
  s.put_u64(f.eth_type);
  s.put_u64(f.ip_src);
  s.put_u64(f.ip_dst);
  s.put_u64(f.ip_proto);
  s.put_u64(f.tp_src);
  s.put_u64(f.tp_dst);
  s.put_u64(f.tcp_flags);
  const auto bytes = s.bytes();
  return {bytes.begin(), bytes.end()};
}

std::vector<Transition> flow_ir_filter(const SystemConfig& cfg,
                                       const SystemState& state,
                                       std::vector<Transition> enabled) {
  // Partition the enabled sends into flow groups with is_same_flow, pick
  // the group whose (canonical) representative key is smallest, and drop
  // all sends outside it. Non-send transitions are untouched, so
  // intra-flow orderings and switch/controller races remain fully explored.
  struct Group {
    sym::PacketFields rep;
    std::vector<std::byte> key;
  };
  std::vector<Group> groups;
  std::vector<std::optional<std::size_t>> group_of(enabled.size());
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (!is_groupable_send(enabled[i])) continue;
    const sym::PacketFields f = send_fields(cfg, state, enabled[i]);
    std::size_t g = groups.size();
    for (std::size_t j = 0; j < groups.size(); ++j) {
      if (cfg.app->is_same_flow(groups[j].rep, f)) {
        g = j;
        break;
      }
    }
    if (g == groups.size()) groups.push_back(Group{f, field_key(f)});
    group_of[i] = g;
  }
  if (groups.size() <= 1) return enabled;
  std::size_t min_group = 0;
  for (std::size_t j = 1; j < groups.size(); ++j) {
    if (groups[j].key < groups[min_group].key) min_group = j;
  }
  std::vector<Transition> out;
  out.reserve(enabled.size());
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (!group_of[i] || *group_of[i] == min_group) {
      out.push_back(std::move(enabled[i]));
    }
  }
  return out;
}

std::vector<Transition> unusual_filter(const SystemState& state,
                                       std::vector<Transition> enabled) {
  // Keep only the process_of transition of the switch whose head message
  // was sent last — forcing reversed cross-switch installation orders, the
  // "unusual delays and reorderings" the paper targets at race conditions.
  std::uint64_t best_seq = 0;
  bool have = false;
  for (const Transition& t : enabled) {
    if (t.kind != TKind::kSwitchProcessOf) continue;
    const std::uint64_t seq = state.sw(t.a).head_of_seq();
    if (!have || seq > best_seq) {
      best_seq = seq;
      have = true;
    }
  }
  if (!have) return enabled;
  std::erase_if(enabled, [&](const Transition& t) {
    return t.kind == TKind::kSwitchProcessOf &&
           state.sw(t.a).head_of_seq() != best_seq;
  });
  return enabled;
}

}  // namespace

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kPktSeqOnly:
      return "PKT-SEQ";
    case Strategy::kNoDelay:
      return "NO-DELAY";
    case Strategy::kFlowIr:
      return "FLOW-IR";
    case Strategy::kUnusual:
      return "UNUSUAL";
  }
  return "?";
}

std::vector<Transition> apply_strategy(Strategy strategy,
                                       const SystemConfig& cfg,
                                       const SystemState& state,
                                       std::vector<Transition> enabled) {
  switch (strategy) {
    case Strategy::kPktSeqOnly:
    case Strategy::kNoDelay:  // semantics change lives in cfg.no_delay
      return enabled;
    case Strategy::kFlowIr:
      return flow_ir_filter(cfg, state, std::move(enabled));
    case Strategy::kUnusual:
      return unusual_filter(state, std::move(enabled));
  }
  return enabled;
}

}  // namespace nicemc::mc
