#include "mc/por/footprint.h"

#include <algorithm>
#include <utility>

#include "ctrl/commands.h"
#include "ctrl/controller.h"
#include "hosts/server.h"
#include "util/hash.h"
#include "util/ser.h"

namespace nicemc::mc::por {

namespace {

// Tags decorrelate the three key families (uid / MAC pair / IP pair).
constexpr std::uint64_t kUidTag = 0x756964ULL;
constexpr std::uint64_t kMacTag = 0x6d6163ULL;
constexpr std::uint64_t kIpTag = 0x6970ULL;

void add_hdr_keys(Footprint& fp, const sym::PacketFields& h) {
  // Unordered pairs: DirectPaths tracks a flow and its reverse, so a send
  // A→B must conflict with a delivery B→A.
  fp.key(util::hash_combine(util::hash_combine(kMacTag,
                                               std::min(h.eth_src, h.eth_dst)),
                            std::max(h.eth_src, h.eth_dst)));
  fp.key(util::hash_combine(util::hash_combine(kIpTag,
                                               std::min(h.ip_src, h.ip_dst)),
                            std::max(h.ip_src, h.ip_dst)));
}

void add_packet_keys(Footprint& fp, const of::Packet& p) {
  fp.key(util::hash_combine(kUidTag, p.uid));
  add_hdr_keys(fp, p.hdr);
}

/// Host currently attached to <sw, port>, if any (the executor's deliver()
/// resolution).
int attached_host(const SystemState& state, of::SwitchId sw, of::PortId port) {
  for (std::size_t i = 0; i < state.host_count(); ++i) {
    const hosts::HostState& hs = state.host(i);
    if (hs.sw == sw && hs.port == port) return static_cast<int>(i);
  }
  return -1;
}

/// Footprint of one simulated packet run through switch `sw`'s pipeline:
/// emissions resolved exactly like Executor::deliver against the current
/// topology and host attachments.
void add_outcome(Footprint& fp, const SystemConfig& cfg,
                 const SystemState& state, of::SwitchId sw,
                 const of::PacketOutcome& oc) {
  add_packet_keys(fp, oc.packet);
  if (oc.to_controller) fp.write(rid(Res::kSwOfOutTail, sw));
  if (oc.forwards.empty()) return;
  // Forward resolution reads the attachment map of this switch (a host
  // moving onto/off one of these ports changes where copies land) and the
  // switch's down-port set (link faults redirect copies into a dead port).
  fp.read(rid(Res::kSwAttach, sw));
  if (!cfg.canonical_flowtables) fp.write(rid(Res::kCopyCounter));
  for (const auto& [port, pkt] : oc.forwards) {
    add_packet_keys(fp, pkt);
    if (state.sw(sw).down_ports.contains(port)) {
      continue;  // mirror of Executor::deliver: dies at the down port
    }
    const topo::PortPeer peer = cfg.topology->switch_peer(sw, port);
    if (peer.kind == topo::PortPeer::Kind::kSwitchLink) {
      fp.write(rid(Res::kSwInTail, peer.sw, peer.port));
      continue;
    }
    const int h = attached_host(state, sw, port);
    if (h >= 0) fp.write(rid(Res::kHostInTail, static_cast<unsigned>(h)));
    // No peer and no host: the copy dies at the port (event only).
  }
}

/// Footprint of handler-emitted commands (Executor::push_commands).
void add_commands(Footprint& fp, const SystemConfig& cfg,
                  const std::vector<ctrl::Command>& cmds) {
  for (const ctrl::Command& c : cmds) {
    if (const auto* po = std::get_if<ctrl::CmdPacketOut>(&c)) {
      if (po->msg.buffer_id == of::kNoBuffer && po->msg.packet.has_value()) {
        // Bufferless packet_out mints a fresh packet identity.
        fp.write(rid(Res::kUidCounter));
        if (!cfg.canonical_flowtables) fp.write(rid(Res::kCopyCounter));
      }
    }
    if (!cfg.fine_interleaving) {
      fp.write(rid(Res::kSwOfInTail, ctrl::command_target(c)));
    }
    // FINE-INTERLEAVING parks commands in the controller's pending queue;
    // kCtrl (written by every controller transition) already covers it.
  }
}

void host_send_common(Footprint& fp, const SystemConfig& cfg,
                      const SystemState& state, std::uint32_t host) {
  const hosts::HostState& hs = state.host(host);
  fp.read(rid(Res::kHostLoc, host));
  fp.write(rid(Res::kSwInTail, hs.sw, hs.port));
  fp.write(rid(Res::kUidCounter));
  if (!cfg.canonical_flowtables) fp.write(rid(Res::kCopyCounter));
}

/// Conflict keys of every packet a channel wipe / restart destroys:
/// packet-keyed monitors account for those packets, so destroying them
/// order-interferes with any transition touching the same identities.
void add_wiped_packet_keys(Footprint& fp, const of::Switch& sw,
                           bool include_buffer) {
  for (const of::ToSwitch& m : sw.of_in.items()) {
    if (const auto* po = std::get_if<of::PacketOut>(&m)) {
      if (po->packet.has_value()) add_packet_keys(fp, *po->packet);
    }
  }
  for (const of::ToController& m : sw.of_out.items()) {
    if (const auto* pin = std::get_if<of::PacketIn>(&m)) {
      add_packet_keys(fp, pin->packet);
    }
  }
  if (include_buffer) {
    for (const auto& [bid, bp] : sw.buffer) add_packet_keys(fp, bp.packet);
  }
}

/// Footprint of the kCtrlChannelUp / kSwitchRestart reconnect handshake
/// (Executor::replay_handshake): app handlers run, commands flow to their
/// targets, and every still-down port is reported over the new connection.
void add_handshake(Footprint& fp, const SystemConfig& cfg,
                   const SystemState& state, of::SwitchId sw) {
  fp.write(rid(Res::kCtrl));  // app state + pending_stats reset
  ctrl::ControllerState sim(state.ctrl());
  ctrl::Ctx ctx(&sim.next_xid);
  cfg.app->switch_leave(*sim.app, ctx, sw);
  cfg.app->switch_join(*sim.app, ctx, sw);
  add_commands(fp, cfg, ctx.take_commands());
  // The port-status replay reads down_ports (written under kSwAttach).
  fp.read(rid(Res::kSwAttach, sw));
  fp.write(rid(Res::kSwOfOutTail, sw));
}

}  // namespace

void Footprint::finish() {
  auto norm = [](std::vector<std::uint64_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  norm(reads);
  norm(writes);
  norm(keys);
}

void Footprint::serialize(util::Ser& s) const {
  auto put_ids = [&s](const std::vector<std::uint64_t>& v) {
    s.put_u32(static_cast<std::uint32_t>(v.size()));
    for (const std::uint64_t x : v) s.put_u64(x);
  };
  put_ids(reads);
  put_ids(writes);
  put_ids(keys);
  s.put_bool(universal);
}

Footprint Footprint::deserialize(util::Des& d) {
  Footprint fp;
  auto get_ids = [&d](std::vector<std::uint64_t>& v) {
    const std::uint32_t n = d.get_u32();
    if (n > d.remaining() / sizeof(std::uint64_t)) d.fail();
    if (!d.ok()) return;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(d.get_u64());
  };
  get_ids(fp.reads);
  get_ids(fp.writes);
  get_ids(fp.keys);
  fp.universal = d.get_bool();
  return fp;
}

Footprint compute_footprint(const SystemConfig& cfg, const SystemState& state,
                            const Transition& t) {
  Footprint fp;
  if (cfg.no_delay) {
    // NO-DELAY runs drain_lockstep inside every apply: controller
    // dispatches and rule installs at arbitrary switches, none of it
    // attributable to this transition's own resources. Every transition
    // conflicts with every other — the reduction degenerates to the
    // unreduced search (sound; NO-DELAY already collapses interleavings).
    fp.universal = true;
    return fp;
  }
  switch (t.kind) {
    case TKind::kHostSendScript: {
      const hosts::HostState& hs = state.host(t.a);
      const hosts::HostBehavior& hb = cfg.host_behavior[t.a];
      fp.write(rid(Res::kHostCore, t.a));  // sends_done, burst
      host_send_common(fp, cfg, state, t.a);
      add_hdr_keys(fp,
                   hb.script[static_cast<std::size_t>(hs.sends_done)].hdr);
      break;
    }
    case TKind::kHostSendDiscovered: {
      fp.write(rid(Res::kHostCore, t.a));
      host_send_common(fp, cfg, state, t.a);
      add_hdr_keys(fp, t.fields);
      break;
    }
    case TKind::kHostSendDup: {
      fp.write(rid(Res::kHostCore, t.a));  // dup_used, burst
      host_send_common(fp, cfg, state, t.a);
      add_hdr_keys(fp, cfg.host_behavior[t.a].script.front().hdr);
      break;
    }
    case TKind::kHostSendReply: {
      const hosts::HostState& hs = state.host(t.a);
      fp.write(rid(Res::kHostReplyHead, t.a));
      host_send_common(fp, cfg, state, t.a);
      add_hdr_keys(fp, hs.pending_replies.front().hdr);
      break;
    }
    case TKind::kHostRecv: {
      const hosts::HostState& hs = state.host(t.a);
      const hosts::HostBehavior& hb = cfg.host_behavior[t.a];
      fp.write(rid(Res::kHostInHead, t.a));
      fp.write(rid(Res::kHostCore, t.a));  // received, burst replenishment
      const of::Packet& head = hs.input.front();
      add_packet_keys(fp, head);
      if (hb.echo && hosts::should_reply(cfg.topology->host(t.a), head)) {
        fp.write(rid(Res::kHostReplyTail, t.a));
      }
      break;
    }
    case TKind::kHostMove: {
      const hosts::HostState& hs = state.host(t.a);
      const auto& alts = cfg.topology->host(t.a).alt_locations;
      fp.write(rid(Res::kHostLoc, t.a));
      fp.write(rid(Res::kHostCore, t.a));  // moves_used
      fp.write(rid(Res::kSwAttach, hs.sw));
      fp.write(rid(Res::kSwAttach, alts[t.aux].first));
      break;
    }
    case TKind::kSwitchProcessPkt: {
      const of::Switch& sw = state.sw(t.a);
      fp.write(rid(Res::kSwCore, t.a));  // table lookups, buffer, stats
      for (const of::PortId p : sw.ports) {
        const auto it = sw.in_ports.find(p);
        const bool has = it != sw.in_ports.end() && !it->second.empty();
        // Non-empty channels lose their head; an append to an *empty*
        // channel changes which packets this transition would process, so
        // empty channels are tail-reads.
        if (has) {
          fp.write(rid(Res::kSwInHead, t.a, p));
        } else {
          fp.read(rid(Res::kSwInTail, t.a, p));
        }
      }
      // Exact emissions: run the pipeline on a private copy of the switch
      // (deterministic, self-contained).
      of::Switch sim = sw;
      for (const of::PacketOutcome& oc : sim.process_pkt()) {
        add_outcome(fp, cfg, state, t.a, oc);
      }
      break;
    }
    case TKind::kSwitchProcessOf: {
      fp.write(rid(Res::kSwOfInHead, t.a));
      fp.write(rid(Res::kSwCore, t.a));
      of::Switch sim = state.sw(t.a);
      const of::OfOutcome oc = sim.process_of();
      if (oc.barrier_replied || oc.stats_replied) {
        fp.write(rid(Res::kSwOfOutTail, t.a));
      }
      if (oc.packet) add_outcome(fp, cfg, state, t.a, *oc.packet);
      break;
    }
    case TKind::kCtrlDispatch: {
      fp.write(rid(Res::kCtrl));
      fp.write(rid(Res::kSwOfOutHead, t.a));
      // Run the handler on a cloned controller state for the exact command
      // targets (the clone is discarded; handlers are deterministic).
      ctrl::ControllerState sim(state.ctrl());
      const ctrl::DispatchResult res = ctrl::dispatch_message(
          *cfg.app, sim, t.a, state.sw(t.a).of_out.front());
      if (res.was_packet_in) add_packet_keys(fp, res.packet_in.packet);
      add_commands(fp, cfg, res.commands);
      break;
    }
    case TKind::kCtrlApplyCommand: {
      fp.write(rid(Res::kCtrl));
      fp.write(rid(Res::kSwOfInTail,
                   state.ctrl().pending_commands.front().first));
      break;
    }
    case TKind::kCtrlExternal: {
      fp.write(rid(Res::kCtrl));
      ctrl::ControllerState sim(state.ctrl());
      ctrl::Ctx ctx(&sim.next_xid);
      cfg.app->on_external(*sim.app, ctx, t.aux);
      add_commands(fp, cfg, ctx.take_commands());
      break;
    }
    case TKind::kCtrlRequestStats: {
      fp.write(rid(Res::kCtrl));
      fp.write(rid(Res::kSwOfInTail, t.a));
      break;
    }
    case TKind::kCtrlProcessStats: {
      fp.write(rid(Res::kCtrl));
      fp.write(rid(Res::kSwOfOutHead, t.a));
      ctrl::ControllerState sim(state.ctrl());
      add_commands(fp, cfg,
                   ctrl::dispatch_stats_with_values(*cfg.app, sim, t.a,
                                                    t.stats));
      break;
    }
    case TKind::kRuleExpire: {
      fp.write(rid(Res::kSwCore, t.a));
      break;
    }
    case TKind::kChannelDropHead: {
      fp.write(rid(Res::kSwInHead, t.a, t.aux));
      add_packet_keys(fp, state.sw(t.a).in_ports.at(t.aux).front());
      if (cfg.max_packet_faults != kUnboundedFaults) {
        fp.write(rid(Res::kFaultBudget, 3));
      }
      break;
    }
    case TKind::kChannelDupHead: {
      fp.write(rid(Res::kSwInHead, t.a, t.aux));
      fp.write(rid(Res::kSwInTail, t.a, t.aux));
      add_packet_keys(fp, state.sw(t.a).in_ports.at(t.aux).front());
      if (cfg.max_packet_faults != kUnboundedFaults) {
        fp.write(rid(Res::kFaultBudget, 3));
      }
      break;
    }
    case TKind::kDiscoverPackets:
    case TKind::kDiscoverStats:
      // Never enabled (discovery runs inline); conflict with everything.
      fp.universal = true;
      break;
    case TKind::kLinkDown:
    case TKind::kLinkUp: {
      const topo::LinkSpec& l = cfg.topology->links()[t.a];
      if (t.kind == TKind::kLinkDown &&
          cfg.max_link_failures != kUnboundedFaults) {
        fp.write(rid(Res::kFaultBudget, 0));
      }
      // Both endpoint down-port sets change (delivery resolution state,
      // filed under kSwAttach), and each live connection gets a
      // port-status push. The of_out write also orders link transitions
      // against the channel-state writers (disconnect wipes of_out), which
      // is exactly the read of ctrl_channel_down that emit_port_status
      // performs.
      fp.write(rid(Res::kSwAttach, l.sw_a));
      fp.write(rid(Res::kSwAttach, l.sw_b));
      fp.write(rid(Res::kSwOfOutTail, l.sw_a));
      fp.write(rid(Res::kSwOfOutTail, l.sw_b));
      break;
    }
    case TKind::kCtrlChannelDown: {
      if (cfg.max_channel_losses != kUnboundedFaults) {
        fp.write(rid(Res::kFaultBudget, 1));
      }
      // The wipe empties both OpenFlow channels (head and tail) and flips
      // the connection flag, which the pipeline (kSwCore) and every sender
      // to this switch read.
      fp.write(rid(Res::kSwCore, t.a));
      fp.write(rid(Res::kSwOfInHead, t.a));
      fp.write(rid(Res::kSwOfInTail, t.a));
      fp.write(rid(Res::kSwOfOutHead, t.a));
      fp.write(rid(Res::kSwOfOutTail, t.a));
      add_wiped_packet_keys(fp, state.sw(t.a), /*include_buffer=*/false);
      break;
    }
    case TKind::kCtrlChannelUp: {
      fp.write(rid(Res::kSwCore, t.a));  // connection flag
      fp.write(rid(Res::kSwOfInTail, t.a));  // handshake commands land here
      add_handshake(fp, cfg, state, t.a);
      break;
    }
    case TKind::kSwitchRestart: {
      if (cfg.max_switch_restarts != kUnboundedFaults) {
        fp.write(rid(Res::kFaultBudget, 2));
      }
      // Everything on the switch is wiped: table/buffer/stats (kSwCore)
      // and both OpenFlow channels; the handshake then touches the
      // controller and the fresh channels.
      fp.write(rid(Res::kSwCore, t.a));
      fp.write(rid(Res::kSwOfInHead, t.a));
      fp.write(rid(Res::kSwOfInTail, t.a));
      fp.write(rid(Res::kSwOfOutHead, t.a));
      fp.write(rid(Res::kSwOfOutTail, t.a));
      add_wiped_packet_keys(fp, state.sw(t.a), /*include_buffer=*/true);
      add_handshake(fp, cfg, state, t.a);
      break;
    }
  }
  fp.finish();
  return fp;
}

namespace {

bool intersects(const std::vector<std::uint64_t>& a,
                const std::vector<std::uint64_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

bool may_conflict(const Footprint& a, const Footprint& b, bool packet_keys) {
  if (a.universal || b.universal) return true;
  if (intersects(a.writes, b.writes) || intersects(a.writes, b.reads) ||
      intersects(a.reads, b.writes)) {
    return true;
  }
  return packet_keys && intersects(a.keys, b.keys);
}

std::uint64_t transition_hash(const Transition& t) {
  util::Ser s;
  t.serialize(s);
  return util::fnv1a64(s.bytes());
}

namespace {

/// Only the kinds whose footprint analysis does real work — simulating
/// the switch pipeline or cloning the controller and running a handler —
/// go through the memo. The host/queue kinds compute their footprint with
/// a handful of vector pushes; for those even a warm lookup (key build +
/// shard lock + entry copy) costs more than recomputation.
constexpr bool memoizable(TKind k) {
  switch (k) {
    case TKind::kSwitchProcessPkt:
    case TKind::kSwitchProcessOf:
    case TKind::kCtrlDispatch:
    case TKind::kCtrlExternal:
    case TKind::kCtrlProcessStats:
      return true;
    default:
      return false;
  }
}

}  // namespace

Footprint FootprintMemo::get(const SystemState& state, const Transition& t) {
  // NO-DELAY footprints are universal (computed in O(1)); the non-
  // memoizable kinds are cheaper to recompute than to look up.
  if (cfg_.no_delay || !memoizable(t.kind)) {
    return compute_footprint(cfg_, state, t);
  }

  // Key = the transition's full serialization + the identities of the
  // components its footprint analysis reads (see compute_footprint):
  // interned ids in kCollapsed mode, memoized form hashes otherwise —
  // both already warm from the seen-set's own bookkeeping.
  thread_local util::Ser key;  // clear() keeps capacity across calls
  key.clear();
  t.serialize(key);
  const bool canon = cfg_.canonical_flowtables;
  // Controller kinds read only the *application* state (handlers run on
  // state.app; next_xid mints ids the footprint never sees, and the
  // pending_stats bookkeeping is covered by the kCtrl write) — keying on
  // the app-only projection keeps xid/stats churn from fragmenting the
  // cache. Same identity the discovery memo uses.
  const auto put_app = [&] {
    if (ids_ != nullptr) {
      key.put_u32(state.app_state_id(*ids_));
    } else {
      const util::Hash128 h = state.ctrl_hash();
      key.put_u64(h.lo);
      key.put_u64(h.hi);
    }
  };
  const auto put_sw = [&] {
    if (ids_ != nullptr) {
      key.put_u32(state.sw_id(t.a, canon, *ids_));
    } else {
      const util::Hash128 h = state.sw_form_hash(t.a, canon);
      key.put_u64(h.lo);
      key.put_u64(h.hi);
    }
  };
  switch (t.kind) {
    case TKind::kSwitchProcessPkt:
    case TKind::kSwitchProcessOf:
      // The pipeline simulation reads the whole switch component (flow
      // table, buffer, every ingress head), and add_outcome resolves
      // forwards through attached_host, which scans every host's
      // <switch, port> — switch identity plus the attachment signature
      // is the function's exact input.
      put_sw();
      for (const hosts::HostState& hs : state.hosts()) {
        key.put_u32(static_cast<std::uint32_t>(hs.sw));
        key.put_u32(static_cast<std::uint32_t>(hs.port));
      }
      break;
    case TKind::kCtrlDispatch:
      // dispatch_message reads the head of the switch's of_out queue and
      // nothing else of the switch — key the message bytes, not the
      // switch component (whose queue churn would kill the hit rate).
      put_app();
      of::serialize_message(key, state.sw(t.a).of_out.front());
      break;
    default:  // kCtrlExternal / kCtrlProcessStats: app state only
      put_app();
      break;
  }

  const auto kb = key.bytes();
  const std::string_view kv(reinterpret_cast<const char*>(kb.data()),
                            kb.size());
  if (const auto hit = table_.find(kv)) return *hit;
  Footprint fp = compute_footprint(cfg_, state, t);
  const std::size_t bytes =
      sizeof(Footprint) +
      (fp.reads.size() + fp.writes.size() + fp.keys.size()) *
          sizeof(std::uint64_t);
  table_.insert(kv, fp, bytes);
  return fp;
}

}  // namespace nicemc::mc::por
