// Wakeup trees (Abdulla/Aronis/Jonsson/Sagonas, adapted): per-state
// ordered tries of event sequences, the bookkeeping behind the
// Reduction::kSourceDpor mode.
//
// A classical wakeup tree tells a *selective* explorer which sequences it
// still owes from a backtrack point. This checker is not selective — its
// contract is that the full reachable state set is visited (properties
// are state predicates), so the tree's role is inverted: it records, per
// canonical state, which event sequences have already been *dispatched*
// from it and under which sleep context, so that later arrivals at the
// same state can (a) treat every previously dispatched independent event
// as asleep in the children they re-dispatch (the source-set extension of
// the stateful revisit rule — see sleep.h and the lazy replay activation
// in search_core.cpp), and (b) keep recorded claims minimal through
// context subsumption (a context w ⊆ w' explores a superset of what w'
// would — insert() maintains the antichain, and SleepStore::covered
// exposes the query to tooling and tests).
//
// Structure: a trie over 64-bit event hashes (por::transition_hash).
// Children keep *insertion order* — the order events were first
// dispatched, which is the order the source-set sleeping rule needs.
// Each node holds a minimal antichain of sleep contexts (sorted hash
// sets) under which the sequence ending at that node was dispatched;
// context subsumption is plain subset inclusion. Race-reversal pairs
// detected through the footprint may_conflict oracle are inserted as
// depth-2 sequences, so the recorded schedule keeps the conflict order
// that produced it.
#ifndef NICE_MC_POR_WAKEUP_H
#define NICE_MC_POR_WAKEUP_H

#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/ser.h"

namespace nicemc::mc::por {

/// A sleep context: the sorted, deduplicated transition hashes slept at
/// the moment a sequence was dispatched. Empty = dispatched with nothing
/// asleep (subsumes every other context).
using WakeupContext = std::vector<std::uint64_t>;

/// Normalize a context in place (sort + dedupe) so subsumption is a
/// linear std::includes walk.
void normalize_context(WakeupContext& ctx);

/// True when `small` ⊆ `big`; both must be normalized.
[[nodiscard]] bool context_subsumes(const WakeupContext& small,
                                    const WakeupContext& big);

class WakeupTree {
 public:
  /// Record that `seq` (non-empty) was dispatched under `ctx` (must be
  /// normalized). Returns false — and records nothing — when an existing
  /// context at the sequence's node already subsumes `ctx`; otherwise
  /// inserts the path, replaces any recorded contexts that `ctx`
  /// subsumes (keeping the antichain minimal), and returns true.
  bool insert(const std::vector<std::uint64_t>& seq, WakeupContext ctx);

  /// True when `seq` has been recorded with a context ⊆ `ctx` (`ctx`
  /// normalized): a dispatch of `seq` under `ctx` would re-derive states
  /// the recorded dispatch already reaches.
  [[nodiscard]] bool covered(const std::vector<std::uint64_t>& seq,
                             const WakeupContext& ctx) const;

  /// True when the exact event path of `seq` exists (context-blind).
  [[nodiscard]] bool contains(const std::vector<std::uint64_t>& seq) const;

  /// Depth-1 events — everything ever dispatched from the owning state —
  /// appended to `out` in first-dispatch order.
  void roots(std::vector<std::uint64_t>& out) const;

  /// The recorded continuations of depth-1 event `event`, in
  /// first-dispatch order (empty when the event or its subtree is
  /// absent). Exposes the race-reversal schedule to tests and tooling.
  [[nodiscard]] std::vector<std::uint64_t> continuations(
      std::uint64_t event) const;

  /// Checkpoint section: the full trie — every node with its event, its
  /// kid indices in insertion order, and its context antichain — plus the
  /// sequence counter. Insertion order is preserved verbatim because the
  /// source-set sleeping rule consumes roots() in first-dispatch order.
  void serialize(util::Ser& s) const;
  /// Restore a serialize() section into this (must-be-empty) tree.
  /// Returns false on a malformed section.
  bool restore(util::Des& d);

  /// Resident bytes (node vectors + contexts), for watchdog accounting.
  [[nodiscard]] std::uint64_t bytes() const;

  /// Trie nodes, excluding the root.
  [[nodiscard]] std::size_t nodes() const noexcept {
    return nodes_.size() - 1;
  }
  /// Nodes currently holding at least one context (recorded sequence
  /// endpoints that no later insertion subsumed away).
  [[nodiscard]] std::size_t sequences() const noexcept { return sequences_; }
  [[nodiscard]] bool empty() const noexcept { return nodes_.size() == 1; }

 private:
  struct Node {
    std::uint64_t event{0};
    /// Child node indices in first-insertion order.
    std::vector<std::uint32_t> kids;
    /// Minimal antichain of contexts this node's sequence was dispatched
    /// under (no element subsumes another).
    std::vector<WakeupContext> contexts;
  };

  /// Index of `event` under `nodes_[at]`, or npos.
  [[nodiscard]] std::uint32_t find_child(std::uint32_t at,
                                         std::uint64_t event) const;

  static constexpr std::uint32_t kNpos = ~0U;

  std::vector<Node> nodes_{Node{}};  // nodes_[0] is the root
  std::size_t sequences_{0};
};

}  // namespace nicemc::mc::por

#endif  // NICE_MC_POR_WAKEUP_H
