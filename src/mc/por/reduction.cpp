#include "mc/por/reduction.h"

namespace nicemc::mc {

std::string reduction_name(Reduction r) {
  switch (r) {
    case Reduction::kNone:
      return "NONE";
    case Reduction::kSleep:
      return "SLEEP";
    case Reduction::kSleepPersistent:
      return "SLEEP+PERSISTENT";
    case Reduction::kSourceDpor:
      return "SOURCE-DPOR";
  }
  return "?";
}

}  // namespace nicemc::mc
