// The shared partial-order-reduction interface: the mode enum every
// layer keys on (CheckerOptions::reduction), and the Reducer context the
// Checker owns and every search driver shares.
//
// Three reduction families sit behind one store (por::SleepStore):
//
//   * kSleep            — sleep sets: per-node sets of sibling transitions
//                         whose exploration would only re-derive states a
//                         commuted order already produces, plus the
//                         Godefroid/Holzmann/Pirottin stateful revisit
//                         rule (re-expand exactly what every earlier
//                         arrival slept).
//   * kSleepPersistent  — sleep sets + persistent-cluster scheduling:
//                         conflict-closure clusters of the expansion set
//                         are committed consecutively, which maximizes
//                         what the sleep sets can prove.
//   * kSourceDpor       — the source-set/wakeup-tree formulation adapted
//                         to this checker's full-state-coverage contract:
//                         per-state wakeup trees (por/wakeup.h) record
//                         every dispatched event with the sleep context
//                         it ran under plus the race order of its batch,
//                         and re-expanded children may sleep previously
//                         dispatched independent events — an entitlement
//                         bought lazily by replaying the event's wakeup
//                         sequence when (and only when) the child opens
//                         a genuinely new subtree (see search_core.cpp).
//
// All three visit the identical state set and report the identical
// violation set as an unreduced search; they differ only in how many
// redundant transitions they prune. The enforced ordering is every
// reducing mode ≤ kNone and kSourceDpor ≤ kSleepPersistent
// (tests/mc/test_por.cpp, the fuzz sweep in
// tests/mc/test_fuzz_scenarios.cpp, and bench_por's runtime gate);
// kSleep and kSleepPersistent are incomparable in general — cluster
// scheduling usually helps, but not on every scenario.
#ifndef NICE_MC_POR_REDUCTION_H
#define NICE_MC_POR_REDUCTION_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "mc/por/sleep.h"

namespace nicemc::mc {

/// Partial-order-reduction mode (CheckerOptions::reduction).
enum class Reduction : std::uint8_t {
  kNone,             // expand every strategy-filtered enabled transition
  kSleep,            // sleep sets (sound; prunes commuted re-derivations)
  kSleepPersistent,  // sleep sets + persistent-cluster scheduling
  kSourceDpor,       // + per-state wakeup trees and source-set sleeping
};

std::string reduction_name(Reduction r);

/// True for every mode that prunes at all (owns a Reducer).
[[nodiscard]] constexpr bool reduces(Reduction r) noexcept {
  return r != Reduction::kNone;
}
/// True for the modes that schedule conflict-closure clusters.
[[nodiscard]] constexpr bool schedules_clusters(Reduction r) noexcept {
  return r == Reduction::kSleepPersistent || r == Reduction::kSourceDpor;
}
/// True for the mode that records/consumes per-state wakeup trees.
[[nodiscard]] constexpr bool uses_wakeups(Reduction r) noexcept {
  return r == Reduction::kSourceDpor;
}

namespace por {

/// Reduction context owned by the Checker and shared by every worker:
/// the mode, whether packet conflict keys are live (any packet-keyed
/// property monitor installed), and the per-state sleep/wakeup store.
class Reducer {
 public:
  Reducer(Reduction mode, bool packet_keys, std::size_t shards)
      : mode_(mode), packet_keys_(packet_keys), store_(shards) {}

  [[nodiscard]] Reduction mode() const noexcept { return mode_; }
  [[nodiscard]] bool packet_keys() const noexcept { return packet_keys_; }
  [[nodiscard]] bool clusters() const noexcept {
    return schedules_clusters(mode_);
  }
  [[nodiscard]] bool wakeups() const noexcept { return uses_wakeups(mode_); }
  [[nodiscard]] SleepStore& store() noexcept { return store_; }

 private:
  Reduction mode_;
  bool packet_keys_;
  SleepStore store_;
};

}  // namespace por
}  // namespace nicemc::mc

#endif  // NICE_MC_POR_REDUCTION_H
