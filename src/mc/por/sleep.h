// Sound dynamic partial-order reduction over SearchCore: sleep sets with
// per-state bookkeeping, a persistent-set selector that schedules
// expansion cluster-by-cluster, and (Reduction::kSourceDpor) per-state
// wakeup trees that extend the stateful revisit rule with source-set
// sleeping. The mode enum and the Reducer context live in
// mc/por/reduction.h — this header is the store and the selectors.
//
// A sleep set rides on each SearchNode: the sibling transitions explored
// before it (and inherited entries) that are independent of everything
// executed since — re-exploring them would only re-derive a state the
// search already produces through the commuted order. At each state the
// engine expands `filtered_enabled \ sleep` instead of all of
// `filtered_enabled`.
//
// Stateful searches need one extra piece (Godefroid/Holzmann/Pirottin):
// the seen-set collapses commuting paths into one state, but different
// arrivals can carry different sleep sets. The SleepStore keeps, per
// canonical state hash, the set of transitions slept at *every* arrival
// so far. A later arrival whose sleep set no longer covers a stored entry
// re-expands exactly the difference (the classic "visited state revisited
// with a smaller sleep set" rule). This preserves the full reachable
// state set — only redundant transitions are pruned — which is the
// contract the differential test enforces: identical violation sets,
// identical unique-state counts, fewer (or equal) transitions.
//
// The persistent-set selector (kSleepPersistent, kSourceDpor) computes
// the conflict-closure clusters of the transitions about to be expanded
// and schedules whole clusters consecutively (the cluster of the first
// enabled transition first — the persistent set a Flanagan–Godefroid
// explorer would commit to). It deliberately schedules rather than
// discards: dropping the complement of a persistent set prunes the
// intermediate states reachable only through deferred orders, and this
// checker's properties are state predicates (quiescence checks run at
// every terminal state; monitor state is part of state identity), so the
// reduction must keep the visited-state set intact. When the footprints
// all alias into one cluster the selector degenerates to the full set.
//
// kSourceDpor adds the wakeup-tree layer (mc/por/wakeup.h): each state's
// entry carries a trie of the event sequences dispatched from it — every
// dispatched transition with the sleep context it ran under, plus the
// race-reversal order of its batch. The revisit rule consumes it: a
// re-dispatched child treats every previously dispatched independent
// event as asleep (Godefroid's "already explored at this state" rule,
// extended across arrivals — the commuted order through the earlier
// dispatch is already covered, with the GHP machinery guaranteeing its
// residue), which keeps downstream sleep sets large and stored
// intersections from decaying, so fewer re-expansions cascade.
#ifndef NICE_MC_POR_SLEEP_H
#define NICE_MC_POR_SLEEP_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mc/por/footprint.h"
#include "mc/por/wakeup.h"
#include "util/hash.h"
#include "util/seen_set.h"

namespace nicemc::mc::por {

/// One slept transition: its identity hash plus the footprint computed at
/// the state where it entered the sleep set. The footprint stays valid
/// down the path because every step it survives is independent of it (its
/// inputs are untouched).
struct SleepEntry {
  std::uint64_t thash{0};
  Footprint fp;
};

using SleepSet = std::vector<SleepEntry>;

/// Per-state reduction bookkeeping shared by all drivers, lock-striped
/// like the seen-set (same util::ShardSelect striping). Stores, per
/// state, the transition hashes slept at every arrival so far (the
/// intersection over arrivals) and — in wakeup mode — the WakeupTree of
/// dispatched event sequences.
///
/// States are matched by the seen-set's *true* identity key — the packed
/// 128-bit hash in kHash mode, the canonical blob in kFullState, the
/// interned component-id tuple in kCollapsed — so the sleep bookkeeping
/// is exactly as collision-proof as the store it rides on: a hash
/// collision can never merge two states' sleep sets in the modes whose
/// seen-set it cannot merge either.
class SleepStore {
 public:
  /// `shards` rounded up to a power of two, clamped to [1, 1024].
  explicit SleepStore(std::size_t shards);

  struct Arrival {
    /// First arrival at this state (the caller expands enabled \ sleep).
    bool first{false};
    /// Revisits only: transition hashes slept at every earlier arrival
    /// but not in this arrival's sleep set — they must be expanded now.
    std::vector<std::uint64_t> explore;
    /// Wakeup mode only, and only on revisits that re-expand something
    /// (`explore` non-empty — pure revisits skip the copy): every event
    /// previously dispatched from this state, in first-dispatch order
    /// (the wakeup tree's roots). The revisit rule turns the independent
    /// ones into conditional sleeps of the re-expanded children.
    std::vector<std::uint64_t> dispatched;
  };

  /// Record an arrival at the state identified by `identity` (the
  /// seen-set store key; the shard is selected by an internal hash of the
  /// identity bytes, so placement is a pure function of the entry and a
  /// checkpoint restore re-derives it under any shard count) carrying
  /// `sleep`; atomically updates the stored slept-set to its intersection
  /// with `sleep` and returns what the caller must expand. The
  /// first/revisit verdict is made here (not by the seen-set) so parallel
  /// workers agree under one lock. `identity` is copied only on first
  /// arrival. With `wakeups` the previously dispatched events are
  /// returned too.
  ///
  /// A non-null `wake` marks a *targeted* arrival (a replayed wakeup
  /// sequence, Reduction::kSourceDpor): on a revisit the caller must
  /// expand exactly the still-owed events `stored ∩ wake` — which are
  /// removed from the stored set, since they are dispatched now — and the
  /// stored set is otherwise left alone (`sleep` claims nothing; the
  /// arrival is additive, so events outside `wake` keep their earlier
  /// arrivals' justifications). `observe` marks a *claim-free* arrival (a
  /// woken successor of a replay): at a known state it neither expands
  /// nor touches the stored set — the visit itself is the point — and at
  /// an unknown state both fall back to a normal first arrival.
  Arrival arrive(std::string_view identity, const SleepSet& sleep,
                 bool wakeups = false,
                 const std::vector<std::uint64_t>* wake = nullptr,
                 bool observe = false);

  /// Wakeup mode: record one arrival's dispatch schedule at `identity` —
  /// `events` in scheduled order, each under its (normalized) sleep
  /// `context`, plus the `races` detected by the caller through the
  /// footprint oracle as (earlier, later) positions into `events`; each
  /// race is recorded as the depth-2 sequence it was scheduled in.
  /// Returns the number of newly recorded sequences.
  std::size_t record_schedule(
      std::string_view identity, const std::vector<std::uint64_t>& events,
      std::vector<WakeupContext>&& contexts,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& races);

  /// Wakeup mode: true when the tree at `identity` records a dispatch of
  /// `event` under a context ⊆ `ctx` (`ctx` normalized) — a re-dispatch
  /// under `ctx` would explore a subset of what that dispatch already
  /// covers. Diagnostic/tooling surface over the antichain semantics
  /// that WakeupTree::insert enforces internally; the search itself
  /// dedupes replays through claim_wakeups.
  [[nodiscard]] bool covered(std::string_view identity, std::uint64_t event,
                             const WakeupContext& ctx) const;

  /// Wakeup mode: atomically claim the wakeup sequences `event`·t (t ∈
  /// `want`) at `identity`, returning the subset whose sequence was not
  /// already in the tree. Each claimed pair is recorded as a depth-2
  /// sequence, so a given (event, wakee) pair is replayed at most once
  /// per state — concurrent revisits agree under the shard lock.
  std::vector<std::uint64_t> claim_wakeups(
      std::string_view identity, std::uint64_t event,
      const std::vector<std::uint64_t>& want);

  [[nodiscard]] std::uint64_t states() const;

  /// Approximate resident bytes (identity keys, slept sets, wakeup-tree
  /// node estimates), maintained as a running counter so the memory
  /// watchdog can poll it without walking the shards.
  [[nodiscard]] std::uint64_t store_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Checkpoint section: entry count + every entry (identity key, slept
  /// hashes, optional wakeup-tree section). Placement on restore is
  /// re-derived from the identity bytes, so iteration order carries no
  /// meaning. Not safe against concurrent mutation — drivers quiesce
  /// before snapshotting.
  void serialize(util::Ser& s) const;
  /// Restore a serialize() section into this (must-be-empty) store.
  /// Returns false on a malformed section.
  bool restore(util::Des& d);

  /// Aggregate wakeup-tree statistics (zeros outside wakeup mode).
  struct WakeupTotals {
    std::uint64_t trees{0};      // states carrying a wakeup tree
    std::uint64_t nodes{0};      // trie nodes across all trees
    std::uint64_t sequences{0};  // recorded sequences across all trees
  };
  [[nodiscard]] WakeupTotals wakeup_totals() const;

  void clear();

 private:
  struct Entry {
    /// Intersection over arrivals of their sleep sets.
    std::vector<std::uint64_t> slept;
    /// Wakeup mode only (lazily allocated on the first recorded
    /// schedule): the dispatched-sequence trie.
    std::unique_ptr<WakeupTree> wakeups;
  };

  struct Shard {
    mutable std::mutex mu;
    // Heterogeneous lookup: revisits probe with a string_view and
    // allocate nothing. Note the identity copy stored on first arrival:
    // in kFullState mode under reduction this holds each unique state's
    // blob a second time (the price of collision-proof sleep keying
    // there) — kCollapsed pays ~4 bytes per component instead, which is
    // one more reason it is the collision-proof mode of choice.
    std::unordered_map<std::string, Entry, util::TransparentStringHash,
                       std::equal_to<>>
        slept;
  };

  [[nodiscard]] Shard& shard_of(std::string_view identity) const {
    // Placement is a pure function of the identity bytes — the property
    // checkpoint restore relies on to re-shard entries.
    return *shards_[select_.index(util::hash128(
        {reinterpret_cast<const std::byte*>(identity.data()),
         identity.size()}))];
  }

  util::ShardSelect select_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> bytes_{0};
};

/// Persistent-set scheduling: permute `order` (indices into `fps`) so
/// that conflict-closure clusters are expanded consecutively, the cluster
/// of the first transition first. No-op when everything aliases into one
/// cluster.
void cluster_order(const std::vector<Footprint>& fps, bool packet_keys,
                   std::vector<std::size_t>& order);

}  // namespace nicemc::mc::por

#endif  // NICE_MC_POR_SLEEP_H
