// Sound dynamic partial-order reduction over SearchCore: sleep sets with
// per-state bookkeeping, plus a persistent-set selector that schedules
// expansion cluster-by-cluster.
//
// A sleep set rides on each SearchNode: the sibling transitions explored
// before it (and inherited entries) that are independent of everything
// executed since — re-exploring them would only re-derive a state the
// search already produces through the commuted order. At each state the
// engine expands `filtered_enabled \ sleep` instead of all of
// `filtered_enabled`.
//
// Stateful searches need one extra piece (Godefroid/Holzmann/Pirottin):
// the seen-set collapses commuting paths into one state, but different
// arrivals can carry different sleep sets. The SleepStore keeps, per
// canonical state hash, the set of transitions slept at *every* arrival
// so far. A later arrival whose sleep set no longer covers a stored entry
// re-expands exactly the difference (the classic "visited state revisited
// with a smaller sleep set" rule). This preserves the full reachable
// state set — only redundant transitions are pruned — which is the
// contract the differential test enforces: identical violation sets,
// identical unique-state counts, fewer (or equal) transitions.
//
// The persistent-set selector (Reduction::kSleepPersistent) computes the
// conflict-closure clusters of the transitions about to be expanded and
// schedules whole clusters consecutively (the cluster of the first
// enabled transition first — the persistent set a Flanagan–Godefroid
// explorer would commit to). It deliberately schedules rather than
// discards: dropping the complement of a persistent set prunes the
// intermediate states reachable only through deferred orders, and this
// checker's properties are state predicates (quiescence checks run at
// every terminal state; monitor state is part of state identity), so the
// reduction must keep the visited-state set intact. When the footprints
// all alias into one cluster the selector degenerates to the full set.
#ifndef NICE_MC_POR_SLEEP_H
#define NICE_MC_POR_SLEEP_H

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mc/por/footprint.h"
#include "util/hash.h"
#include "util/seen_set.h"

namespace nicemc::mc {

/// Partial-order-reduction mode (CheckerOptions::reduction).
enum class Reduction : std::uint8_t {
  kNone,             // expand every strategy-filtered enabled transition
  kSleep,            // sleep sets (sound; prunes commuted re-derivations)
  kSleepPersistent,  // sleep sets + persistent-cluster scheduling
};

std::string reduction_name(Reduction r);

namespace por {

/// One slept transition: its identity hash plus the footprint computed at
/// the state where it entered the sleep set. The footprint stays valid
/// down the path because every step it survives is independent of it (its
/// inputs are untouched).
struct SleepEntry {
  std::uint64_t thash{0};
  Footprint fp;
};

using SleepSet = std::vector<SleepEntry>;

/// Per-state sleep bookkeeping shared by all drivers, lock-striped like
/// the seen-set (same util::ShardSelect striping). Stores, per state, the
/// transition hashes slept at every arrival so far (the intersection over
/// arrivals).
///
/// States are matched by the seen-set's *true* identity key — the packed
/// 128-bit hash in kHash mode, the canonical blob in kFullState, the
/// interned component-id tuple in kCollapsed — so the sleep bookkeeping
/// is exactly as collision-proof as the store it rides on: a hash
/// collision can never merge two states' sleep sets in the modes whose
/// seen-set it cannot merge either.
class SleepStore {
 public:
  /// `shards` rounded up to a power of two, clamped to [1, 1024].
  explicit SleepStore(std::size_t shards);

  struct Arrival {
    /// First arrival at this state (the caller expands enabled \ sleep).
    bool first{false};
    /// Revisits only: transition hashes slept at every earlier arrival
    /// but not in this arrival's sleep set — they must be expanded now.
    std::vector<std::uint64_t> explore;
  };

  /// Record an arrival at the state identified by `identity` (the
  /// seen-set store key; `h` only selects the shard) carrying `sleep`;
  /// atomically updates the stored slept-set to its intersection with
  /// `sleep` and returns what the caller must expand. The first/revisit
  /// verdict is made here (not by the seen-set) so parallel workers agree
  /// under one lock. `identity` is copied only on first arrival.
  Arrival arrive(const util::Hash128& h, std::string_view identity,
                 const SleepSet& sleep);

  [[nodiscard]] std::uint64_t states() const;
  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    // Heterogeneous lookup: revisits probe with a string_view and
    // allocate nothing. Note the identity copy stored on first arrival:
    // in kFullState mode under reduction this holds each unique state's
    // blob a second time (the price of collision-proof sleep keying
    // there) — kCollapsed pays ~4 bytes per component instead, which is
    // one more reason it is the collision-proof mode of choice.
    std::unordered_map<std::string, std::vector<std::uint64_t>,
                       util::TransparentStringHash, std::equal_to<>>
        slept;
  };

  [[nodiscard]] Shard& shard_of(const util::Hash128& h) const {
    return *shards_[select_.index(h)];
  }

  util::ShardSelect select_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Reduction context owned by the Checker and shared by every worker:
/// the mode, whether packet conflict keys are live (any packet-keyed
/// property monitor installed), and the per-state sleep store.
class Reducer {
 public:
  Reducer(Reduction mode, bool packet_keys, std::size_t shards)
      : mode_(mode), packet_keys_(packet_keys), store_(shards) {}

  [[nodiscard]] Reduction mode() const noexcept { return mode_; }
  [[nodiscard]] bool packet_keys() const noexcept { return packet_keys_; }
  [[nodiscard]] SleepStore& store() noexcept { return store_; }

 private:
  Reduction mode_;
  bool packet_keys_;
  SleepStore store_;
};

/// Persistent-set scheduling: permute `order` (indices into `fps`) so
/// that conflict-closure clusters are expanded consecutively, the cluster
/// of the first transition first. No-op when everything aliases into one
/// cluster.
void cluster_order(const std::vector<Footprint>& fps, bool packet_keys,
                   std::vector<std::size_t>& order);

}  // namespace por
}  // namespace nicemc::mc

#endif  // NICE_MC_POR_SLEEP_H
