// Footprints: the typed read/write sets of transitions, computed
// dynamically from the source state — the independence oracle of the
// partial-order-reduction layer (mc/por/sleep.h).
//
// Every resource a transition can touch is named by a packed 64-bit id:
// the controller component, a switch's core (flow table / buffer / port
// stats), the head and tail of each FIFO (per-port ingress channels, the
// two OpenFlow channel directions, host input queues, pending replies),
// host counters and attachment points, and the global uid/copy-id
// counters that feed canonical state identity. Head and tail of a FIFO
// are distinct resources on purpose: a pop and a push to the same
// non-empty queue commute, which is exactly the pipeline concurrency
// (switch forwards while the downstream host drains) the reduction must
// recognize.
//
// Footprints are *dynamic*: for switch and controller transitions the
// exact effect is obtained by running the deterministic component on a
// private copy (the same code the executor runs), so the footprint can
// never drift from the semantics. Where the effect cannot be pinned
// down, the footprint is conservative (more conflicts = less reduction,
// never unsoundness).
//
// Besides resources, a footprint carries the *conflict keys* of the
// packets the transition touches (uid, unordered MAC pair, unordered IP
// pair). Property monitors fold their bookkeeping into the hashed state
// keyed by exactly these identities (NoBlackHoles per uid, DirectPaths
// per L2 flow, FlowAffinity per five-tuple), so two transitions whose
// resources are disjoint but whose packets share an identity may still
// order-interfere through a monitor — they are declared dependent when
// any installed property is packet-keyed (Property::monitor_domain).
#ifndef NICE_MC_POR_FOOTPRINT_H
#define NICE_MC_POR_FOOTPRINT_H

#include <cstdint>
#include <vector>

#include "mc/system.h"
#include "mc/transition.h"
#include "util/collapse.h"
#include "util/memo.h"

namespace nicemc::mc::por {

/// Resource types. `a`/`b` in rid() are the switch/host id and (for
/// per-port resources) the port id.
enum class Res : std::uint8_t {
  kCtrl,         // controller component: app state, xid, stats bookkeeping
  kUidCounter,   // SystemState::next_uid (part of canonical identity)
  kCopyCounter,  // SystemState::next_copy (raw / NO-SWITCH-REDUCTION only)
  kSwCore,       // switch a: flow table, awaiting-controller buffer, stats
  kSwInHead,     // switch a, port b: ingress FIFO head (pop side)
  kSwInTail,     // switch a, port b: ingress FIFO tail (append side)
  kSwOfInHead,   // switch a: ctrl→switch channel head
  kSwOfInTail,   // switch a: ctrl→switch channel tail
  kSwOfOutHead,  // switch a: switch→ctrl channel head
  kSwOfOutTail,  // switch a: switch→ctrl channel tail
  kSwAttach,     // switch a: which hosts are attached to its ports
  kHostCore,     // host a: burst / sends_done / received / dup / moves
  kHostLoc,      // host a: current <switch, port> attachment
  kHostInHead,   // host a: input FIFO head
  kHostInTail,   // host a: input FIFO tail
  kHostReplyHead,  // host a: pending_replies front
  kHostReplyTail,  // host a: pending_replies back
  kFaultBudget,  // per-class consumed fault budget, a = fault class
                 // (0 = link, 1 = ctrl channel, 2 = restart, 3 = packet)
};

[[nodiscard]] constexpr std::uint64_t rid(Res r, std::uint64_t a = 0,
                                          std::uint64_t b = 0) noexcept {
  return (static_cast<std::uint64_t>(r) << 56) | (a << 28) | b;
}

struct Footprint {
  /// Sorted, deduplicated resource ids (finish() establishes the order).
  std::vector<std::uint64_t> reads;
  std::vector<std::uint64_t> writes;
  /// Sorted packet conflict keys (uid / MAC pair / IP pair hashes).
  std::vector<std::uint64_t> keys;
  /// Escape hatch: conflicts with everything (unknown transition kinds).
  bool universal{false};

  void read(std::uint64_t r) { reads.push_back(r); }
  void write(std::uint64_t r) { writes.push_back(r); }
  void key(std::uint64_t k) { keys.push_back(k); }
  /// Sort + dedupe the id vectors; must be called before may_conflict.
  void finish();

  /// Checkpoint encoding (frontier nodes carry conditional-sleep
  /// footprints); deserialize() is the exact inverse.
  void serialize(nicemc::util::Ser& s) const;
  [[nodiscard]] static Footprint deserialize(nicemc::util::Des& d);

  friend bool operator==(const Footprint&, const Footprint&) = default;
};

/// Compute the footprint of `t` as enabled in `state`. `t` must be one of
/// the transitions Executor::enabled would produce for `state`.
[[nodiscard]] Footprint compute_footprint(const SystemConfig& cfg,
                                          const SystemState& state,
                                          const Transition& t);

/// Conservative dependence check: true when executing `a` and `b` in
/// either order from the same state may yield different successor states
/// (including property-monitor components) or different violations.
/// `packet_keys` enables the monitor conflict-key check and must be true
/// whenever a packet-keyed property monitor is installed.
[[nodiscard]] bool may_conflict(const Footprint& a, const Footprint& b,
                                bool packet_keys);

/// 64-bit identity hash of a transition (over its canonical
/// serialization). Distinct transitions enabled in one state always
/// serialize differently, so within a state the hash is a faithful key.
[[nodiscard]] std::uint64_t transition_hash(const Transition& t);

/// Memoized compute_footprint, shared by all workers of one search.
///
/// A footprint is a pure function of (the transition's serialized bytes,
/// the state the per-kind analysis reads, the fixed SystemConfig). The
/// key appends to the transition bytes exactly that state — switch kinds
/// the switch component plus the host-attachment signature (add_outcome
/// resolves forwards against every host's <switch, port>), controller
/// kinds the app-only projection (handlers run on state.app; xid and
/// stats bookkeeping never reach the footprint), kCtrlDispatch also the
/// serialized head of the switch's of_out queue — the one message the
/// handler reads, not the whole switch.
///
/// Component identity comes in two flavors, picked per store mode:
///   * kCollapsed (`ids` non-null): the store's interned component id —
///     warmed by collapse_key as a side effect of remembering the state,
///     and collision-proof (id equality ⇔ component-bytes equality);
///   * kHash / kFullState (`ids` null): the memoized 128-bit component
///     form hash — also already warm (the store hashed every component to
///     remember the state), at the same negligible collision risk the
///     kHash store itself accepts. Interning into a private table instead
///     would serialize every component a second time (the hash memo and
///     id memo are separate Snap slots), which benchmarks as a net loss.
///
/// Only the expensive kinds are memoized (see `memoizable` in the .cpp):
/// switch-pipeline simulation and controller-handler clones. The cheap
/// kinds recompute directly — a warm lookup costs more than they do.
/// NO-DELAY searches bypass the table entirely: every footprint is
/// `universal` there and the lookup would be pure overhead.
class FootprintMemo {
 public:
  /// `ids` is the seen-set's component-interning table in kCollapsed mode,
  /// nullptr otherwise (memoized-hash keys). `byte_budget` bounds the
  /// resident entry bytes (util::MemoCore LRU eviction).
  FootprintMemo(const SystemConfig& cfg, util::CollapseTable* ids,
                std::size_t shards, std::uint64_t byte_budget)
      : cfg_(cfg), ids_(ids), table_(shards, byte_budget) {}

  /// Drop-in replacement for compute_footprint(cfg, state, t).
  [[nodiscard]] Footprint get(const SystemState& state, const Transition& t);

  [[nodiscard]] util::MemoCore::Stats stats() const { return table_.stats(); }

  /// Memory-watchdog hook: lower the byte budget and evict to fit.
  void shrink_to(std::uint64_t new_budget) { table_.shrink_to(new_budget); }
  [[nodiscard]] std::uint64_t byte_budget() const noexcept {
    return table_.byte_budget();
  }

 private:
  const SystemConfig& cfg_;
  util::CollapseTable* ids_;
  util::MemoTable<Footprint> table_;
};

}  // namespace nicemc::mc::por

#endif  // NICE_MC_POR_FOOTPRINT_H
