#include "mc/por/wakeup.h"

#include <algorithm>

namespace nicemc::mc::por {

void normalize_context(WakeupContext& ctx) {
  std::sort(ctx.begin(), ctx.end());
  ctx.erase(std::unique(ctx.begin(), ctx.end()), ctx.end());
}

bool context_subsumes(const WakeupContext& small, const WakeupContext& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

std::uint32_t WakeupTree::find_child(std::uint32_t at,
                                     std::uint64_t event) const {
  for (const std::uint32_t k : nodes_[at].kids) {
    if (nodes_[k].event == event) return k;
  }
  return kNpos;
}

bool WakeupTree::insert(const std::vector<std::uint64_t>& seq,
                        WakeupContext ctx) {
  if (seq.empty()) return false;
  std::uint32_t at = 0;
  for (const std::uint64_t e : seq) {
    std::uint32_t next = find_child(at, e);
    if (next == kNpos) {
      next = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{e, {}, {}});
      nodes_[at].kids.push_back(next);
    }
    at = next;
  }
  std::vector<WakeupContext>& ctxs = nodes_[at].contexts;
  for (const WakeupContext& c : ctxs) {
    if (context_subsumes(c, ctx)) return false;  // already covered
  }
  const bool was_sequence = !ctxs.empty();
  // Keep the antichain minimal: drop every recorded context the new one
  // subsumes (the new dispatch slept less, so it covers their claims).
  std::erase_if(ctxs, [&ctx](const WakeupContext& c) {
    return context_subsumes(ctx, c);
  });
  ctxs.push_back(std::move(ctx));
  if (!was_sequence) ++sequences_;
  return true;
}

bool WakeupTree::covered(const std::vector<std::uint64_t>& seq,
                         const WakeupContext& ctx) const {
  std::uint32_t at = 0;
  for (const std::uint64_t e : seq) {
    at = find_child(at, e);
    if (at == kNpos) return false;
  }
  for (const WakeupContext& c : nodes_[at].contexts) {
    if (context_subsumes(c, ctx)) return true;
  }
  return false;
}

bool WakeupTree::contains(const std::vector<std::uint64_t>& seq) const {
  std::uint32_t at = 0;
  for (const std::uint64_t e : seq) {
    at = find_child(at, e);
    if (at == kNpos) return false;
  }
  return at != 0;
}

void WakeupTree::roots(std::vector<std::uint64_t>& out) const {
  out.reserve(out.size() + nodes_[0].kids.size());
  for (const std::uint32_t k : nodes_[0].kids) {
    out.push_back(nodes_[k].event);
  }
}

void WakeupTree::serialize(util::Ser& s) const {
  s.put_u64(nodes_.size());
  for (const Node& n : nodes_) {
    s.put_u64(n.event);
    s.put_u32(static_cast<std::uint32_t>(n.kids.size()));
    for (const std::uint32_t k : n.kids) s.put_u32(k);
    s.put_u32(static_cast<std::uint32_t>(n.contexts.size()));
    for (const WakeupContext& c : n.contexts) {
      s.put_u32(static_cast<std::uint32_t>(c.size()));
      for (const std::uint64_t t : c) s.put_u64(t);
    }
  }
  s.put_u64(sequences_);
}

bool WakeupTree::restore(util::Des& d) {
  if (nodes_.size() != 1) return false;
  const std::uint64_t n = d.get_count(sizeof(std::uint64_t));
  if (!d.ok() || n == 0) return false;  // even an empty tree has its root
  std::vector<Node> nodes;
  nodes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Node node;
    node.event = d.get_u64();
    const std::uint32_t kids = d.get_u32();
    if (kids > d.remaining() / sizeof(std::uint32_t)) d.fail();
    if (!d.ok()) return false;
    node.kids.reserve(kids);
    for (std::uint32_t k = 0; k < kids; ++k) {
      const std::uint32_t kid = d.get_u32();
      if (kid == 0 || kid >= n) d.fail();  // the root is nobody's kid
      node.kids.push_back(kid);
    }
    const std::uint32_t ctxs = d.get_u32();
    if (ctxs > d.remaining() / sizeof(std::uint32_t)) d.fail();
    if (!d.ok()) return false;
    node.contexts.reserve(ctxs);
    for (std::uint32_t c = 0; c < ctxs; ++c) {
      const std::uint32_t len = d.get_u32();
      if (len > d.remaining() / sizeof(std::uint64_t)) d.fail();
      if (!d.ok()) return false;
      WakeupContext ctx;
      ctx.reserve(len);
      for (std::uint32_t t = 0; t < len; ++t) ctx.push_back(d.get_u64());
      node.contexts.push_back(std::move(ctx));
    }
    if (!d.ok()) return false;
    nodes.push_back(std::move(node));
  }
  const std::uint64_t seqs = d.get_u64();
  if (!d.ok()) return false;
  nodes_ = std::move(nodes);
  sequences_ = static_cast<std::size_t>(seqs);
  return true;
}

std::uint64_t WakeupTree::bytes() const {
  std::uint64_t total = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    total += n.kids.capacity() * sizeof(std::uint32_t);
    total += n.contexts.capacity() * sizeof(WakeupContext);
    for (const WakeupContext& c : n.contexts) {
      total += c.capacity() * sizeof(std::uint64_t);
    }
  }
  return total;
}

std::vector<std::uint64_t> WakeupTree::continuations(
    std::uint64_t event) const {
  std::vector<std::uint64_t> out;
  const std::uint32_t at = find_child(0, event);
  if (at == kNpos) return out;
  out.reserve(nodes_[at].kids.size());
  for (const std::uint32_t k : nodes_[at].kids) {
    out.push_back(nodes_[k].event);
  }
  return out;
}

}  // namespace nicemc::mc::por
