#include "mc/por/wakeup.h"

#include <algorithm>

namespace nicemc::mc::por {

void normalize_context(WakeupContext& ctx) {
  std::sort(ctx.begin(), ctx.end());
  ctx.erase(std::unique(ctx.begin(), ctx.end()), ctx.end());
}

bool context_subsumes(const WakeupContext& small, const WakeupContext& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

std::uint32_t WakeupTree::find_child(std::uint32_t at,
                                     std::uint64_t event) const {
  for (const std::uint32_t k : nodes_[at].kids) {
    if (nodes_[k].event == event) return k;
  }
  return kNpos;
}

bool WakeupTree::insert(const std::vector<std::uint64_t>& seq,
                        WakeupContext ctx) {
  if (seq.empty()) return false;
  std::uint32_t at = 0;
  for (const std::uint64_t e : seq) {
    std::uint32_t next = find_child(at, e);
    if (next == kNpos) {
      next = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{e, {}, {}});
      nodes_[at].kids.push_back(next);
    }
    at = next;
  }
  std::vector<WakeupContext>& ctxs = nodes_[at].contexts;
  for (const WakeupContext& c : ctxs) {
    if (context_subsumes(c, ctx)) return false;  // already covered
  }
  const bool was_sequence = !ctxs.empty();
  // Keep the antichain minimal: drop every recorded context the new one
  // subsumes (the new dispatch slept less, so it covers their claims).
  std::erase_if(ctxs, [&ctx](const WakeupContext& c) {
    return context_subsumes(ctx, c);
  });
  ctxs.push_back(std::move(ctx));
  if (!was_sequence) ++sequences_;
  return true;
}

bool WakeupTree::covered(const std::vector<std::uint64_t>& seq,
                         const WakeupContext& ctx) const {
  std::uint32_t at = 0;
  for (const std::uint64_t e : seq) {
    at = find_child(at, e);
    if (at == kNpos) return false;
  }
  for (const WakeupContext& c : nodes_[at].contexts) {
    if (context_subsumes(c, ctx)) return true;
  }
  return false;
}

bool WakeupTree::contains(const std::vector<std::uint64_t>& seq) const {
  std::uint32_t at = 0;
  for (const std::uint64_t e : seq) {
    at = find_child(at, e);
    if (at == kNpos) return false;
  }
  return at != 0;
}

void WakeupTree::roots(std::vector<std::uint64_t>& out) const {
  out.reserve(out.size() + nodes_[0].kids.size());
  for (const std::uint32_t k : nodes_[0].kids) {
    out.push_back(nodes_[k].event);
  }
}

std::vector<std::uint64_t> WakeupTree::continuations(
    std::uint64_t event) const {
  std::vector<std::uint64_t> out;
  const std::uint32_t at = find_child(0, event);
  if (at == kNpos) return out;
  out.reserve(nodes_[at].kids.size());
  for (const std::uint32_t k : nodes_[at].kids) {
    out.push_back(nodes_[k].event);
  }
  return out;
}

}  // namespace nicemc::mc::por
