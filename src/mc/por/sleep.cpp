#include "mc/por/sleep.h"

#include <algorithm>
#include <string>

namespace nicemc::mc::por {

namespace {
/// Coarse per-entry accounting overhead (map node, Entry, vectors) and
/// per-wakeup-node cost used by the running store_bytes() counter — the
/// watchdog needs honest magnitudes, not exact heap telemetry.
constexpr std::uint64_t kEntryOverhead = 96;
constexpr std::uint64_t kWakeupNodeCost = 96;
}  // namespace

SleepStore::SleepStore(std::size_t shards) : select_(shards) {
  shards_.reserve(select_.count());
  for (std::size_t i = 0; i < select_.count(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SleepStore::Arrival SleepStore::arrive(std::string_view identity,
                                       const SleepSet& sleep, bool wakeups,
                                       const std::vector<std::uint64_t>* wake,
                                       bool observe) {
  std::vector<std::uint64_t> mine;
  mine.reserve(sleep.size());
  for (const SleepEntry& z : sleep) mine.push_back(z.thash);
  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());

  Shard& sh = shard_of(identity);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.slept.find(identity);
  if (it == sh.slept.end()) {
    bytes_.fetch_add(identity.size() + kEntryOverhead +
                         mine.size() * sizeof(std::uint64_t),
                     std::memory_order_relaxed);
    sh.slept.emplace(std::string(identity), Entry{std::move(mine), nullptr});
    return Arrival{.first = true, .explore = {}, .dispatched = {}};
  }

  Arrival out;
  if (observe) return out;  // claim-free: the visit itself was the point
  Entry& entry = it->second;
  std::vector<std::uint64_t>& stored = entry.slept;
  if (stored.empty()) return out;

  if (wake != nullptr) {
    // Targeted arrival: dispatch exactly the still-owed wake events (they
    // leave the stored set because they are explored now); everything
    // else keeps the justification its own arrivals established.
    std::erase_if(stored, [&](std::uint64_t th) {
      if (std::find(wake->begin(), wake->end(), th) == wake->end()) {
        return false;
      }
      out.explore.push_back(th);
      return true;
    });
    bytes_.fetch_sub(out.explore.size() * sizeof(std::uint64_t),
                     std::memory_order_relaxed);
    return out;
  }

  // Revisit: expand what every earlier arrival slept but this one does
  // not, and shrink the stored set to the intersection (an entry stays
  // slept only while *all* arrivals justify sleeping it).
  std::vector<std::uint64_t> kept;
  kept.reserve(stored.size());
  for (const std::uint64_t th : stored) {
    if (std::binary_search(mine.begin(), mine.end(), th)) {
      kept.push_back(th);
    } else {
      out.explore.push_back(th);
    }
  }
  stored = std::move(kept);
  bytes_.fetch_sub(out.explore.size() * sizeof(std::uint64_t),
                   std::memory_order_relaxed);
  // The dispatched roots only matter to a re-expanding caller, so pure
  // revisits (the dominant case) skip the copy and keep the critical
  // section short.
  if (wakeups && !out.explore.empty() && entry.wakeups != nullptr) {
    entry.wakeups->roots(out.dispatched);
  }
  return out;
}

std::size_t SleepStore::record_schedule(
    std::string_view identity, const std::vector<std::uint64_t>& events,
    std::vector<WakeupContext>&& contexts,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& races) {
  if (events.empty()) return 0;
  Shard& sh = shard_of(identity);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.slept.find(identity);
  if (it == sh.slept.end()) {
    // The arrival that schedules a dispatch always registered first, so
    // the entry exists; tolerate direct store use (tests) anyway.
    it = sh.slept.emplace(std::string(identity), Entry{}).first;
    bytes_.fetch_add(identity.size() + kEntryOverhead,
                     std::memory_order_relaxed);
  }
  if (it->second.wakeups == nullptr) {
    it->second.wakeups = std::make_unique<WakeupTree>();
  }
  WakeupTree& tree = *it->second.wakeups;
  const std::size_t nodes_before = tree.nodes();
  std::size_t recorded = 0;
  std::vector<std::uint64_t> seq(1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    seq[0] = events[i];
    WakeupContext ctx =
        i < contexts.size() ? std::move(contexts[i]) : WakeupContext{};
    if (tree.insert(seq, std::move(ctx))) ++recorded;
  }
  std::vector<std::uint64_t> pair_seq(2);
  for (const auto& [a, b] : races) {
    pair_seq[0] = events[a];
    pair_seq[1] = events[b];
    if (tree.insert(pair_seq, {})) ++recorded;
  }
  bytes_.fetch_add((tree.nodes() - nodes_before) * kWakeupNodeCost,
                   std::memory_order_relaxed);
  return recorded;
}

bool SleepStore::covered(std::string_view identity, std::uint64_t event,
                         const WakeupContext& ctx) const {
  Shard& sh = shard_of(identity);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.slept.find(identity);
  if (it == sh.slept.end() || it->second.wakeups == nullptr) return false;
  return it->second.wakeups->covered(std::vector<std::uint64_t>{event}, ctx);
}

std::vector<std::uint64_t> SleepStore::claim_wakeups(
    std::string_view identity, std::uint64_t event,
    const std::vector<std::uint64_t>& want) {
  std::vector<std::uint64_t> fresh;
  Shard& sh = shard_of(identity);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.slept.find(identity);
  if (it == sh.slept.end()) {
    it = sh.slept.emplace(std::string(identity), Entry{}).first;
    bytes_.fetch_add(identity.size() + kEntryOverhead,
                     std::memory_order_relaxed);
  }
  if (it->second.wakeups == nullptr) {
    it->second.wakeups = std::make_unique<WakeupTree>();
  }
  WakeupTree& tree = *it->second.wakeups;
  const std::size_t nodes_before = tree.nodes();
  std::vector<std::uint64_t> seq{event, 0};
  for (const std::uint64_t t : want) {
    seq[1] = t;
    if (tree.contains(seq)) continue;
    tree.insert(seq, {});
    fresh.push_back(t);
  }
  bytes_.fetch_add((tree.nodes() - nodes_before) * kWakeupNodeCost,
                   std::memory_order_relaxed);
  return fresh;
}

std::uint64_t SleepStore::states() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    n += sh->slept.size();
  }
  return n;
}

SleepStore::WakeupTotals SleepStore::wakeup_totals() const {
  WakeupTotals t;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    for (const auto& [key, entry] : sh->slept) {
      if (entry.wakeups == nullptr) continue;
      ++t.trees;
      t.nodes += entry.wakeups->nodes();
      t.sequences += entry.wakeups->sequences();
    }
  }
  return t;
}

void SleepStore::serialize(util::Ser& s) const {
  s.put_u64(states());
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    for (const auto& [identity, entry] : sh->slept) {
      s.put_str(identity);
      s.put_u64(entry.slept.size());
      for (const std::uint64_t th : entry.slept) s.put_u64(th);
      s.put_bool(entry.wakeups != nullptr);
      if (entry.wakeups != nullptr) entry.wakeups->serialize(s);
    }
  }
}

bool SleepStore::restore(util::Des& d) {
  if (states() != 0) return false;
  const std::uint64_t n = d.get_count(sizeof(std::uint32_t));
  if (!d.ok()) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string_view identity = d.get_str();
    const std::uint64_t slept_n = d.get_count(sizeof(std::uint64_t));
    if (!d.ok()) return false;
    Entry entry;
    entry.slept.reserve(slept_n);
    for (std::uint64_t j = 0; j < slept_n; ++j) {
      entry.slept.push_back(d.get_u64());
    }
    std::uint64_t tree_bytes = 0;
    if (d.get_bool()) {
      entry.wakeups = std::make_unique<WakeupTree>();
      if (!entry.wakeups->restore(d)) return false;
      tree_bytes = entry.wakeups->nodes() * kWakeupNodeCost;
    }
    if (!d.ok()) return false;
    Shard& sh = shard_of(identity);
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto [it, inserted] =
        sh.slept.emplace(std::string(identity), std::move(entry));
    if (!inserted) {
      d.fail();  // duplicate identity: the section is corrupt
      return false;
    }
    bytes_.fetch_add(identity.size() + kEntryOverhead +
                         it->second.slept.size() * sizeof(std::uint64_t) +
                         tree_bytes,
                     std::memory_order_relaxed);
  }
  return d.ok();
}

void SleepStore::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->slept.clear();
  }
  bytes_.store(0, std::memory_order_relaxed);
}

void cluster_order(const std::vector<Footprint>& fps, bool packet_keys,
                   std::vector<std::size_t>& order) {
  const std::size_t n = order.size();
  if (n < 3) return;  // with ≤ 2 transitions every order is clustered

  // Union-find over positions of `order`, edges = footprint conflicts.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (may_conflict(fps[order[i]], fps[order[j]], packet_keys)) {
        parent[find(i)] = find(j);
      }
    }
  }

  // Stable partition: clusters in order of first appearance, members in
  // original order — the cluster of the first transition (the persistent
  // set committed to first) leads.
  std::vector<std::size_t> roots;
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = find(i);
    if (std::find(roots.begin(), roots.end(), r) != roots.end()) continue;
    roots.push_back(r);
    for (std::size_t j = i; j < n; ++j) {
      if (find(j) == r) out.push_back(order[j]);
    }
  }
  order = std::move(out);
}

}  // namespace nicemc::mc::por
