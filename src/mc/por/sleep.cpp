#include "mc/por/sleep.h"

#include <algorithm>
#include <string>

namespace nicemc::mc {

std::string reduction_name(Reduction r) {
  switch (r) {
    case Reduction::kNone:
      return "NONE";
    case Reduction::kSleep:
      return "SLEEP";
    case Reduction::kSleepPersistent:
      return "SLEEP+PERSISTENT";
  }
  return "?";
}

namespace por {

SleepStore::SleepStore(std::size_t shards) : select_(shards) {
  shards_.reserve(select_.count());
  for (std::size_t i = 0; i < select_.count(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SleepStore::Arrival SleepStore::arrive(const util::Hash128& h,
                                       std::string_view identity,
                                       const SleepSet& sleep) {
  std::vector<std::uint64_t> mine;
  mine.reserve(sleep.size());
  for (const SleepEntry& z : sleep) mine.push_back(z.thash);
  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());

  Shard& sh = shard_of(h);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.slept.find(identity);
  if (it == sh.slept.end()) {
    sh.slept.emplace(std::string(identity), std::move(mine));
    return Arrival{.first = true, .explore = {}};
  }

  // Revisit: expand what every earlier arrival slept but this one does
  // not, and shrink the stored set to the intersection (an entry stays
  // slept only while *all* arrivals justify sleeping it).
  Arrival out;
  std::vector<std::uint64_t>& stored = it->second;
  if (stored.empty()) return out;
  std::vector<std::uint64_t> kept;
  kept.reserve(stored.size());
  for (const std::uint64_t th : stored) {
    if (std::binary_search(mine.begin(), mine.end(), th)) {
      kept.push_back(th);
    } else {
      out.explore.push_back(th);
    }
  }
  stored = std::move(kept);
  return out;
}

std::uint64_t SleepStore::states() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    n += sh->slept.size();
  }
  return n;
}

void SleepStore::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->slept.clear();
  }
}

void cluster_order(const std::vector<Footprint>& fps, bool packet_keys,
                   std::vector<std::size_t>& order) {
  const std::size_t n = order.size();
  if (n < 3) return;  // with ≤ 2 transitions every order is clustered

  // Union-find over positions of `order`, edges = footprint conflicts.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (may_conflict(fps[order[i]], fps[order[j]], packet_keys)) {
        parent[find(i)] = find(j);
      }
    }
  }

  // Stable partition: clusters in order of first appearance, members in
  // original order — the cluster of the first transition (the persistent
  // set committed to first) leads.
  std::vector<std::size_t> roots;
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = find(i);
    if (std::find(roots.begin(), roots.end(), r) != roots.end()) continue;
    roots.push_back(r);
    for (std::size_t j = i; j < n; ++j) {
      if (find(j) == r) out.push_back(order[j]);
    }
  }
  order = std::move(out);
}

}  // namespace por
}  // namespace nicemc::mc
