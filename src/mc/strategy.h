// OpenFlow-specific search strategies (paper Section 4).
//
// PKT-SEQ is always active (it lives in the host models' send/burst
// bounds). The strategies here prune the *orderings* the checker explores:
//   * NO-DELAY  — lock-step semantics, configured via SystemConfig::no_delay
//                 (the filter below is a no-op);
//   * FLOW-IR   — among enabled host-send transitions belonging to several
//                 independent flow groups (per App::is_same_flow), explore
//                 only the canonically-smallest group's sends;
//   * UNUSUAL   — among enabled switch process_of transitions, explore only
//                 the one whose head message was sent *last* (reverse
//                 installation order across switches).
#ifndef NICE_MC_STRATEGY_H
#define NICE_MC_STRATEGY_H

#include <string>
#include <vector>

#include "mc/system.h"
#include "mc/transition.h"

namespace nicemc::mc {

enum class Strategy : std::uint8_t {
  kPktSeqOnly,  // full search over orderings (PKT-SEQ bounds only)
  kNoDelay,
  kFlowIr,
  kUnusual,
};

std::string strategy_name(Strategy s);

/// Filter/prune the enabled-transition set according to the strategy.
std::vector<Transition> apply_strategy(Strategy strategy,
                                       const SystemConfig& cfg,
                                       const SystemState& state,
                                       std::vector<Transition> enabled);

}  // namespace nicemc::mc

#endif  // NICE_MC_STRATEGY_H
