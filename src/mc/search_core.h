// The search engine core shared by every exploration mode.
//
// SearchCore factors the per-transition expand step of the model checker —
// clone → apply → check properties → remember in the seen-set → enumerate
// successors — out of the search loop, so the same semantics drive:
//   * the single-threaded search over any pluggable Frontier (DFS order is
//     bit-for-bit the original recursive checker);
//   * the multi-threaded shared-deque driver in mc/parallel.h;
//   * the random-walk simulator (sequential and portfolio).
//
// The explored-state store is a util::ShardedSeenSet, lock-striped so
// parallel workers can insert concurrently; in single-threaded mode the
// locks are uncontended and the counts are identical to a plain set.
#ifndef NICE_MC_SEARCH_CORE_H
#define NICE_MC_SEARCH_CORE_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mc/discover.h"
#include "mc/execute.h"
#include "mc/frontier.h"
#include "mc/por/reduction.h"
#include "mc/property.h"
#include "mc/strategy.h"
#include "mc/sym_reduce.h"
#include "mc/system.h"
#include "mc/trace.h"
#include "util/collapse.h"
#include "util/seen_set.h"
#include "util/telemetry.h"

namespace nicemc::mc {

namespace detail {

using SearchClock = std::chrono::steady_clock;

inline double seconds_since(SearchClock::time_point start) {
  return std::chrono::duration<double>(SearchClock::now() - start).count();
}

}  // namespace detail

struct CheckerOptions {
  Strategy strategy{Strategy::kPktSeqOnly};
  std::uint64_t max_transitions{~0ULL};
  std::uint64_t max_unique_states{~0ULL};
  std::size_t max_depth{100000};
  bool stop_at_first_violation{true};
  /// Explored-state store representation (see ARCHITECTURE.md, "State
  /// storage"):
  ///   * kHash (default) — 16 bytes per state; Section 6's computation-
  ///     for-memory trade, with a vanishingly small but nonzero chance of
  ///     merging distinct states;
  ///   * kFullState — the canonical serialized state per entry: the
  ///     collision-proof SPIN-like ground truth, at full blob cost;
  ///   * kCollapsed — COLLAPSE-style component interning: each distinct
  ///     component blob is stored once in a shared util::CollapseTable
  ///     and states are keyed by their packed component-id tuple —
  ///     collision-proof like kFullState at a fraction of the bytes.
  util::ShardedSeenSet::Mode state_store{util::ShardedSeenSet::Mode::kHash};
  /// Exploration order for the single-threaded search. kDfs reproduces the
  /// original checker exactly; kBfs finds shortest counterexamples first;
  /// kRandom is a seeded random-priority order. Ignored when threads > 1:
  /// the parallel driver always pulls LIFO from its shared work deque.
  FrontierKind frontier{FrontierKind::kDfs};
  std::uint64_t frontier_seed{0x9e3779b97f4a7c15ULL};
  /// Worker threads. 1 = deterministic single-threaded search; N > 1 pulls
  /// from a shared work deque and is count-equivalent on exhaustive runs
  /// (same unique states / transitions / violation set, any order).
  unsigned threads{1};
  /// Shards of the seen-set (rounded up to a power of two). 0 = automatic:
  /// 1 shard single-threaded, 4× threads when parallel.
  std::size_t seen_shards{0};
  /// Sound partial-order reduction (mc/por/): every reducing mode visits
  /// the same unique states and reports the same violation set as kNone
  /// on exhaustive runs, with fewer (or equal) transitions; kSourceDpor
  /// additionally never explores more than kSleepPersistent (per-state
  /// wakeup trees with lazily-paid replays; see mc/por/reduction.h for
  /// the enforced ordering). Composes with the heuristic
  /// strategies (inert under NO-DELAY, whose lock-step drain defeats
  /// per-transition footprints) and with every exhaustive driver; ignored
  /// by the random-walk simulator (a walk is a single path). The
  /// reduction's per-state bookkeeping matches states by the store's true
  /// identity key (hash bytes / blob / id tuple), so it is exactly as
  /// collision-proof as the configured state_store mode (see
  /// por::SleepStore).
  Reduction reduction{Reduction::kNone};
  /// Symmetry reduction over the scenario's declared interchangeable-host
  /// orbits (SystemConfig::symmetry_orbits; see mc/sym_reduce.h): the
  /// seen-set key becomes the canonical serialization of a permuted,
  /// identifier-renamed, uid-renumbered image of the state, so executions
  /// that differ only by which orbit member played which role merge. An
  /// exponential cut (up to k! per k-host orbit) that no partial-order
  /// mode can make — and one that composes with every store mode, driver
  /// and the checkpoint layer, but NOT with partial-order reduction: the
  /// sleep/wakeup bookkeeping assumes key-equal states have identical
  /// enabled-transition *labels*, which symmetric merging breaks, so the
  /// Checker runs symmetry with the reducer disabled (reduction is
  /// ignored while this is set). Default off. With empty orbits this
  /// still canonicalizes uid allocation order (and drops next_uid from
  /// keys when no host uses discovery sends).
  bool symmetry{false};
  /// Wall-clock budget in seconds; 0 = off. Honored by the sequential,
  /// parallel and random-walk drivers; a timed-out search reports
  /// hit_limit = kTime and never claims exhaustion.
  double time_limit_seconds{0.0};
  /// Footprint + discovery memoization (util/memo.h): cache
  /// por::compute_footprint and discover_packets / discover_stats results
  /// under collision-proof interned-component-id keys, shared by all
  /// workers. Pure-function caching — violation/unique/quiescent/
  /// transition counts are identical with the memo on or off (the fuzz
  /// harness and bench_por enforce this differentially).
  bool memo{true};
  /// Resident-byte budget across the memo tables (per-shard LRU eviction;
  /// entries that alone exceed a shard's slice are never stored, so
  /// CheckerResult::memo.bytes ≤ this at all times).
  std::uint64_t memo_budget_bytes{64ull << 20};
  /// Shards of the memo tables (rounded up to a power of two). 0 =
  /// automatic: the seen-set's shard count.
  std::size_t memo_shards{0};
  /// Durability layer (mc/checkpoint.h). Non-empty = periodically write a
  /// crash-safe A/B-slot checkpoint of the full search state (seen-set,
  /// collapse table, sleep store, frontier, counters) to
  /// `<checkpoint_path>.a` / `.b`, and write a final one at every halt —
  /// so a SIGKILL at any point leaves a resumable latest-good snapshot.
  std::string checkpoint_path;
  /// Seconds between periodic checkpoints (checked between expansions).
  double checkpoint_interval_seconds{30.0};
  /// Load the latest valid checkpoint slot before searching and continue
  /// from it; falls back to a fresh run when no valid slot exists. An
  /// interrupted-and-resumed run reports totals (transitions, unique
  /// states, violations) as if it had never been interrupted.
  bool resume{false};
  /// Memory-budget watchdog: 0 = off. When the engine-accounted resident
  /// bytes (store + collapse + sleep + memo + frontier estimate) exceed
  /// the budget, the memo tables are shrunk/evicted first (they are
  /// count-invisible); if that cannot fit the budget, the search
  /// checkpoints (when checkpoint_path is set) and halts with
  /// LimitReason::kMemory instead of OOM-aborting.
  std::uint64_t memory_budget_bytes{0};
  /// Install cooperative SIGINT/SIGTERM handlers: the first signal
  /// requests a graceful halt — the drivers checkpoint and return
  /// LimitReason::kInterrupted instead of dying mid-write.
  bool handle_signals{false};
  /// Search observability (util/telemetry.h): per-worker phase profiling
  /// and the halt-time flight recorder, reported in
  /// CheckerResult::telemetry. Off (the default) costs strictly nothing
  /// on the hot path — no clock reads, no atomics, one thread-local
  /// null-pointer branch per instrumentation point. On, the overhead is
  /// bounded by the bench_por gate (≤ 1.05× wall time) and the counts
  /// (violations / unique / quiescent / transitions) are identical by
  /// construction — telemetry only observes, never steers.
  bool telemetry{false};
  /// NDJSON progress-stream path (requires telemetry; empty = no stream):
  /// the ProgressReporter appends one snapshot line per interval plus a
  /// final "halt" line. A resumed run appends to the existing file and
  /// continues its sequence numbers, so kill-and-resume yields one
  /// continuous monotone stream.
  std::string progress_path;
  /// Seconds between progress snapshots.
  double progress_interval_seconds{1.0};
  /// Repaint a single-line live summary on stderr each interval.
  bool progress_tty{false};
  /// Append to an existing progress stream even on a fresh (non-resumed)
  /// run — lets multi-scenario harnesses chain one stream file.
  bool progress_append{false};
};

/// Which bound cut a search short (CheckerResult::hit_limit).
enum class LimitReason : std::uint8_t {
  kNone,          // ran to completion (exhausted, or stopped at violation)
  kTransitions,   // max_transitions reached
  kUniqueStates,  // max_unique_states reached
  kTime,          // time_limit_seconds elapsed
  kMemory,        // memory_budget_bytes exceeded past the eviction ladder
  kInterrupted,   // cooperative SIGINT/SIGTERM (or a test-injected request)
};

/// Stable lower-case name of a LimitReason ("none", "transitions", ...),
/// shared by the JSON emitters, the progress stream's halt line, and the
/// flight recorder.
[[nodiscard]] const char* limit_reason_name(LimitReason r) noexcept;

struct ViolationRecord {
  Violation violation;
  std::vector<Transition> trace;
};

struct CheckerResult {
  std::uint64_t transitions{0};
  std::uint64_t unique_states{0};
  std::uint64_t revisits{0};
  std::uint64_t quiescent_states{0};
  double seconds{0.0};
  /// True when the search exhausted the (bounded) state space rather than
  /// stopping at a violation or a limit.
  bool exhausted{false};
  /// The limit that truncated the search, if any — so "exhausted" is
  /// never misreported on a timeout or count cap.
  LimitReason hit_limit{LimitReason::kNone};
  /// Bytes held by the explored-state store: 16 per state in hash mode,
  /// the serialized states in full-state mode, and in collapsed mode the
  /// id-tuple keys *plus* the shared interned-blob table (the complete
  /// footprint of representing the explored set).
  std::uint64_t store_bytes{0};
  /// Component-interning statistics (kCollapsed mode only; zeros
  /// otherwise).
  struct CollapseStats {
    std::uint64_t unique_blobs{0};    // distinct component blobs interned
    std::uint64_t interned_bytes{0};  // blob payload held by the table
    std::uint64_t intern_calls{0};    // total intern requests
    double dedupe_ratio{0.0};         // intern_calls / unique_blobs
  };
  CollapseStats collapse;
  /// Wakeup-tree statistics (Reduction::kSourceDpor only; zeros
  /// otherwise). `replays` counts targeted wakeup-sequence re-dispatches,
  /// `woken` the stored-slept events those replays re-opened; trees /
  /// nodes / sequences describe the recorded tries.
  struct WakeupStats {
    std::uint64_t replays{0};
    std::uint64_t woken{0};
    std::uint64_t trees{0};
    std::uint64_t nodes{0};
    std::uint64_t sequences{0};
  };
  WakeupStats wakeup;
  /// Memoization-layer statistics (CheckerOptions::memo; zeros when
  /// disabled). Hits + misses = lookups; `bytes` is the resident memo
  /// entry footprint (≤ memo_budget_bytes by construction). The memo
  /// keys through identities the store computes anyway — interned ids
  /// (kCollapsed, reported under `collapse`) or memoized component
  /// hashes — so there is no separate key-table cost to account.
  struct MemoStats {
    std::uint64_t footprint_hits{0};
    std::uint64_t footprint_misses{0};
    std::uint64_t discover_hits{0};
    std::uint64_t discover_misses{0};
    std::uint64_t evictions{0};
    std::uint64_t bytes{0};
  };
  MemoStats memo;
  /// OS-reported peak resident set size of the process at search end
  /// (getrusage ru_maxrss; monotone over the process, so multi-run
  /// processes see the max across runs). Ground truth the engine's own
  /// byte accounting is validated against.
  std::uint64_t peak_rss_bytes{0};
  /// Durability-layer statistics (zeros when no checkpoint path, memory
  /// budget, or signal handling is configured).
  struct DurabilityStats {
    std::uint64_t checkpoints_written{0};  // snapshots persisted this run
    std::uint64_t checkpoint_bytes{0};     // size of the last snapshot
    bool resumed{false};                   // run continued a checkpoint
    std::uint64_t memo_shrinks{0};         // watchdog eviction-ladder steps
    std::uint64_t watchdog_bytes{0};       // last engine-accounted bytes
  };
  DurabilityStats durability;
  /// Observability-layer report (CheckerOptions::telemetry; enabled=false
  /// and all-zero otherwise). Phase totals are exact at halt: every
  /// nanosecond a worker was bound lands in exactly one phase, so
  /// sum(phases[p].total_ns) == wall_ns up to clock-calibration error.
  struct TelemetryStats {
    bool enabled{false};
    std::uint64_t workers{0};
    /// Summed per-worker bound wall time (≈ workers × driver wall time
    /// when utilization is high).
    std::uint64_t wall_ns{0};
    std::array<util::PhaseStat, util::kPhaseCount> phases{};
    /// Halt-time flight recorder: the most recent per-worker events
    /// (expanded transitions, checkpoint writes, watchdog ladder steps,
    /// signal receipt), rendered human-readable and merged in time
    /// order. Populated only when hit_limit != kNone — a cleanly
    /// finished search needs no post-mortem.
    std::vector<std::string> flight;
    /// Progress-stream lines emitted this run (0 when no stream).
    std::uint64_t progress_snapshots{0};
  };
  TelemetryStats telemetry;
  /// Symmetry-reduction statistics (CheckerOptions::symmetry; enabled =
  /// false and zeros otherwise).
  SymmetryStats symmetry;
  std::vector<ViolationRecord> violations;
  DiscoveryStats discovery;

  [[nodiscard]] bool found_violation() const { return !violations.empty(); }
};

/// Violation identities with path-dependent packet naming normalized
/// ("uid=N[.M]" → "uid=#"), sorted: several interleavings reach the same
/// canonical state, and the arrival that wins the seen-set insert reports
/// the violation with its own path's packet uid/copy numbers. Used by the
/// parallel count-equivalence and reduction-soundness checks.
[[nodiscard]] std::vector<std::string> violation_keys(
    const std::vector<Violation>& vs);
[[nodiscard]] std::vector<std::string> violation_keys(const CheckerResult& r);
/// As violation_keys, deduplicated — a sound reduction prunes *duplicate*
/// reports of one violation reached through commuting orders, so set
/// semantics are what its equivalence checks compare.
[[nodiscard]] std::vector<std::string> violation_key_set(
    const CheckerResult& r);

class Durability;  // mc/checkpoint.h — checkpoint/watchdog/signal context

class SearchCore {
 public:
  /// `reducer` (owned by the caller, e.g. Checker) enables partial-order
  /// reduction; nullptr = expand every strategy-filtered transition (the
  /// exact seed semantics). `collapse` is the shared component-interning
  /// table, required (and used) exactly when `seen` is in kCollapsed mode.
  /// `fp_memo` / `disc_memo` are the shared memo tables (nullptr = memo
  /// off). `telem` is the observability context (nullptr = telemetry
  /// off; the drivers then skip every counter/gauge publication).
  /// `sym` (nullable) is the compiled symmetry context: when set, every
  /// remembered key goes through SymContext::canonical_key and `reducer`
  /// must be nullptr (the Checker enforces this).
  SearchCore(const SystemConfig& cfg, const CheckerOptions& options,
             const Executor& executor, util::ShardedSeenSet& seen,
             por::Reducer* reducer = nullptr,
             util::CollapseTable* collapse = nullptr,
             por::FootprintMemo* fp_memo = nullptr,
             DiscoveryMemo* disc_memo = nullptr,
             util::Telemetry* telem = nullptr,
             const SymContext* sym = nullptr)
      : cfg_(cfg),
        options_(options),
        executor_(executor),
        seen_(seen),
        reducer_(reducer),
        collapse_(collapse),
        fp_memo_(fp_memo),
        disc_memo_(disc_memo),
        telem_(telem),
        sym_(sym) {}

  /// Result of expanding one SearchNode (applying its transition).
  struct Expansion {
    /// Successor work items (empty on violation, revisit, quiescence or
    /// depth cap). Under partial-order reduction a *revisit* can also
    /// carry children: a state reached again with a smaller sleep set
    /// re-expands exactly the transitions every earlier arrival slept.
    std::vector<SearchNode> children;
    /// Violations raised by the transition itself, or by the quiescence
    /// check when the resulting state is terminal. Traces included.
    std::vector<ViolationRecord> violations;
    /// The transition itself violated a property (the resulting state is
    /// not remembered and never expanded).
    bool transition_violated{false};
    /// The resulting state was new (remembered); false = revisit.
    bool new_state{false};
    /// The resulting state is new and has no enabled transitions.
    bool quiescent{false};
  };

  /// The expand step: clone the node's source state, apply its transition,
  /// check properties, remember the result, enumerate successors. Thread-
  /// safe given a per-caller DiscoveryCache (the seen-set is internally
  /// lock-striped).
  [[nodiscard]] Expansion expand(const SearchNode& node,
                                 DiscoveryCache& cache) const;

  /// Remember the initial state (accounting it in `result`), handle
  /// initial quiescence, and return the root work items in deterministic
  /// enumeration order.
  [[nodiscard]] std::vector<SearchNode> init(CheckerResult& result,
                                             DiscoveryCache& cache) const;

  /// Single-threaded search loop over `frontier` — with a DFS frontier,
  /// transition/state counts reproduce the original checker exactly.
  /// `dur` (optional) enables the durability layer: resume seeding,
  /// periodic + at-halt checkpoints, the memory watchdog, and cooperative
  /// interrupts.
  [[nodiscard]] CheckerResult run_sequential(Frontier& frontier,
                                             DiscoveryCache& cache,
                                             Durability* dur = nullptr) const;

  /// Returns true when the state was not seen before.
  bool remember(const SystemState& state) const;

  /// Fill `result` with the store's memory footprint and (in collapsed
  /// mode) the interning counters — one implementation shared by the
  /// sequential, parallel, and random-walk drivers.
  void fill_store_stats(CheckerResult& result) const;

  /// The shared end-of-run stat fill: store/collapse/wakeup/memo stats,
  /// durability stats (when `dur` is non-null), the telemetry profile +
  /// flight recorder, and peak_rss_bytes — every driver calls exactly
  /// this, so a new stats block is filled in one place. The caller must
  /// have set result.hit_limit first (the flight recorder dumps only on
  /// a truncating halt) and have written any final checkpoint already.
  void finish_stats(CheckerResult& result, Durability* dur) const;

  /// Publish the poll-point gauges (frontier size, engine-accounted
  /// bytes, memo hit/miss totals, wakeup counters) into the telemetry
  /// context for the progress reporter. No-op when telemetry is off;
  /// never called from the per-transition hot path.
  void publish_gauges(std::uint64_t frontier_nodes) const;

  [[nodiscard]] util::Telemetry* telemetry() const noexcept {
    return telem_;
  }

  [[nodiscard]] const CheckerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Executor& executor() const noexcept {
    return executor_;
  }
  [[nodiscard]] util::ShardedSeenSet& seen() const noexcept { return seen_; }
  [[nodiscard]] util::CollapseTable* collapse() const noexcept {
    return collapse_;
  }
  [[nodiscard]] por::Reducer* reducer() const noexcept { return reducer_; }
  [[nodiscard]] por::FootprintMemo* footprint_memo() const noexcept {
    return fp_memo_;
  }
  [[nodiscard]] DiscoveryMemo* discovery_memo() const noexcept {
    return disc_memo_;
  }
  [[nodiscard]] const SymContext* sym() const noexcept { return sym_; }

  /// Engine-accounted resident bytes of the search: seen-set + collapse
  /// table + sleep store + memo tables + a coarse per-node estimate for
  /// `frontier_nodes` pending nodes. The memory watchdog's trigger — a
  /// pure function of engine state, so the budget ladder behaves the same
  /// on every platform (peak_rss_bytes is reported alongside as the OS
  /// ground truth, not used as a trigger).
  [[nodiscard]] std::uint64_t resident_bytes(
      std::uint64_t frontier_nodes) const;

  /// Wakeup-replay counters (kSourceDpor accounting), exposed so the
  /// checkpoint layer can carry them across a halt/resume boundary.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t>
  wakeup_replay_counters() const noexcept {
    return {replays_.load(std::memory_order_relaxed),
            woken_.load(std::memory_order_relaxed)};
  }
  void seed_wakeup_replay_counters(std::uint64_t replays,
                                   std::uint64_t woken) const noexcept {
    replays_.store(replays, std::memory_order_relaxed);
    woken_.store(woken, std::memory_order_relaxed);
  }

 private:
  /// Telemetry leg of finish_stats: merge the per-worker phase profiles
  /// and counters into result.telemetry, and render the flight recorder
  /// when the run was truncated.
  void fill_telemetry(CheckerResult& result) const;

  /// Reduction-mode tail of expand(): arrival bookkeeping in the
  /// SleepStore, sleep-filtered child enumeration, sleep inheritance,
  /// and (kSourceDpor) wakeup-tree recording.
  void expand_reduced(Expansion& out, SystemState&& next,
                      const SearchNode& node,
                      std::shared_ptr<const PathNode> path,
                      DiscoveryCache& cache) const;

  /// One reduced arrival: the SleepStore verdict plus the state identity
  /// it was registered under — kept around so the wakeup recording and
  /// the deferred seen-set sync reuse the same bytes.
  struct ArriveOutcome {
    por::SleepStore::Arrival arr;
    util::Hash128 hash;
    /// The store's true identity key (packed hash bytes in kHash mode,
    /// canonical blob in kFullState, component-id tuple in kCollapsed).
    std::string identity;
  };

  /// Reduction mode: register the arrival in the SleepStore under the
  /// store's true state identity (matching the seen-set mode). A non-null
  /// `wake` marks a targeted wakeup-sequence replay (kSourceDpor). The
  /// caller must pass the outcome to sync_seen() on every path so the
  /// seen-set storage and byte accounting stay in sync.
  ArriveOutcome arrive_reduced(const SystemState& state,
                               const por::SleepSet& sleep,
                               const std::vector<std::uint64_t>* wake,
                               bool observe = false) const;

  /// Mirror a reduced arrival into the seen-set (the SleepStore already
  /// made the authoritative first/revisit verdict).
  void sync_seen(ArriveOutcome&& at) const;

  /// A state's identity in the byte-keyed store modes: the store key
  /// (canonical blob in kFullState, packed component-id tuple in
  /// kCollapsed) plus the 128-bit hash that selects the shard.
  struct StateKey {
    util::Hash128 hash;
    std::string key;
  };
  StateKey state_key(const SystemState& state) const;
  /// As state_key, but also valid in kHash mode (packed hash bytes).
  StateKey identity_key(const SystemState& state) const;

  /// Build the sleep-filtered, sleep-carrying children of a state.
  /// `explore_only` selects the revisit re-expansion set (nullptr = first
  /// arrival: expand everything outside `arrival_sleep`). In wakeup mode,
  /// revisits with a re-expansion set prepend targeted re-dispatches of
  /// the previously dispatched independent events (`at.arr.dispatched`),
  /// which is what entitles the re-expanded children to sleep them; the
  /// batch's schedule + race pairs are recorded in the state's wakeup
  /// tree. `targeted` (the node carried a wake list) suppresses new
  /// re-dispatches — a replayed sequence must not spawn replays of its
  /// own, or chains of them would cascade.
  void make_reduced_children(
      const std::shared_ptr<const SystemState>& sp,
      const std::shared_ptr<const PathNode>& path, std::size_t depth,
      std::vector<Transition>&& ts, const por::SleepSet& arrival_sleep,
      const std::vector<std::uint64_t>* explore_only,
      const ArriveOutcome& at, bool targeted,
      std::vector<SearchNode>& out) const;

  /// Memo-aware footprint computation (make_reduced_children).
  [[nodiscard]] por::Footprint footprint_of(const SystemState& state,
                                            const Transition& t) const {
    return fp_memo_ != nullptr ? fp_memo_->get(state, t)
                               : por::compute_footprint(cfg_, state, t);
  }

  const SystemConfig& cfg_;
  const CheckerOptions& options_;
  const Executor& executor_;
  util::ShardedSeenSet& seen_;
  por::Reducer* reducer_;
  util::CollapseTable* collapse_;
  por::FootprintMemo* fp_memo_;
  DiscoveryMemo* disc_memo_;
  util::Telemetry* telem_;
  const SymContext* sym_;
  /// Pre-sizing hint for full-state blobs: the previous remembered state's
  /// serialized length. Per-core (a core serves one search), so concurrent
  /// searches in one process never cross-pollinate their hints; relaxed
  /// atomic because parallel workers of the same search update it
  /// concurrently and any of their values is a fine hint.
  mutable std::atomic<std::size_t> last_blob_size_{0};
  /// Wakeup-replay accounting (kSourceDpor): emitted replay nodes and the
  /// events their targeted arrivals re-opened. Relaxed — counters only.
  mutable std::atomic<std::uint64_t> replays_{0};
  mutable std::atomic<std::uint64_t> woken_{0};
};

}  // namespace nicemc::mc

#endif  // NICE_MC_SEARCH_CORE_H
