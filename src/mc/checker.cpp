#include "mc/checker.h"

#include <memory>

#include "util/hash.h"

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

CheckerResult Checker::run() {
  if (options_.threads > 1) {
    return run_parallel(core_, options_.threads);
  }
  auto frontier = make_frontier(options_.frontier, options_.frontier_seed);
  return core_.run_sequential(*frontier, cache_);
}

CheckerResult Checker::random_walk(std::uint64_t seed, int walks,
                                   int max_steps) {
  if (options_.threads > 1) {
    return run_random_walk_portfolio(core_, options_.threads, seed, walks,
                                     max_steps);
  }

  const auto start = SearchClock::now();
  CheckerResult result;
  util::SplitMix64 rng(seed);

  for (int w = 0; w < walks; ++w) {
    if (result.hit_limit == LimitReason::kTime) break;
    SystemState state = executor_.make_initial();
    std::shared_ptr<const PathNode> path;
    for (int step = 0; step < max_steps; ++step) {
      if (options_.time_limit_seconds > 0 &&
          seconds_since(start) >= options_.time_limit_seconds) {
        result.hit_limit = LimitReason::kTime;
        break;
      }
      auto ts = apply_strategy(options_.strategy, cfg_, state,
                               executor_.enabled(state, cache_));
      if (ts.empty()) {
        ++result.quiescent_states;
        std::vector<Violation> vs;
        executor_.at_quiescence(state, vs);
        for (Violation& v : vs) {
          result.violations.push_back(
              ViolationRecord{std::move(v), trace_of(path)});
        }
        break;
      }
      const Transition t = ts[static_cast<std::size_t>(
          rng.next_below(ts.size()))];
      std::vector<Violation> violations;
      executor_.apply(state, t, violations);
      ++result.transitions;
      path = std::make_shared<const PathNode>(PathNode{path, t});
      if (core_.remember(state)) {
        ++result.unique_states;
      } else {
        ++result.revisits;
      }
      if (!violations.empty()) {
        for (Violation& v : violations) {
          result.violations.push_back(
              ViolationRecord{std::move(v), trace_of(path)});
        }
        break;
      }
    }
    if (options_.stop_at_first_violation && result.found_violation()) break;
  }

  result.seconds = seconds_since(start);
  result.discovery = cache_.stats();
  core_.fill_store_stats(result);
  return result;
}

}  // namespace nicemc::mc
